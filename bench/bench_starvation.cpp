// Ablation A3 (paper Sec. 6): starvation when the client outruns the
// infrastructure. Sweeps the client's residence time Δ against the
// uncertainty horizon and reports the delivered fraction relative to the
// flooding reference — showing both the failure regime the paper warns
// about and the adaptive profile's fix.
#include <iomanip>
#include <iostream>
#include <set>

#include "src/broker/overlay.hpp"
#include "src/client/client.hpp"
#include "src/net/topology.hpp"

using namespace rebeca;

namespace {

std::size_t run(const location::UncertaintyProfile& profile, double delta_ms,
                bool flooding_reference) {
  auto graph = location::LocationGraph::line(30);
  sim::Simulation sim(9);
  broker::OverlayConfig cfg;
  cfg.broker.locations = &graph;
  cfg.broker_link_delay = sim::DelayModel::fixed(sim::millis(15));
  broker::Overlay overlay(sim, net::Topology::chain(5), cfg);

  client::ClientConfig cc;
  cc.id = ClientId(1);
  cc.locations = &graph;
  client::Client consumer(sim, cc);
  overlay.connect_client(consumer, 0);
  consumer.move_to("l0");

  location::LdSpec spec;
  spec.vicinity_radius = 1;
  spec.profile =
      flooding_reference ? location::UncertaintyProfile::flooding() : profile;
  consumer.subscribe(spec);

  client::ClientConfig pc;
  pc.id = ClientId(2);
  client::Client producer(sim, pc);
  overlay.connect_client(producer, 4);

  sim.run_until(sim::seconds(1));

  // The client sprints down the line; the producer publishes at the
  // client's upcoming location just before each arrival.
  for (int i = 1; i < 25; ++i) {
    sim.schedule_at(sim::seconds(1) + sim::millis(delta_ms * i),
                    [&consumer, i] { consumer.move_to("l" + std::to_string(i)); });
    sim.schedule_at(sim::seconds(1) + sim::millis(delta_ms * i + delta_ms * 0.5),
                    [&producer, i] {
                      producer.publish(filter::Notification()
                                           .set("service", "s")
                                           .set("location",
                                                "l" + std::to_string(i)));
                    });
  }
  sim.run_until(sim::seconds(1) + sim::millis(delta_ms * 30) + sim::seconds(3));
  return consumer.deliveries().size();
}

}  // namespace

int main() {
  std::cout << "A3: starvation — delivered fraction vs. movement speed\n"
            << "(5-broker chain with 15 ms hops; producer targets the "
               "client's location)\n\n";
  std::cout << std::left << std::setw(14) << "delta (ms)" << std::right
            << std::setw(12) << "flooding" << std::setw(12) << "exact(q=0)"
            << std::setw(12) << "resub(q=1)" << std::setw(12) << "adaptive"
            << "\n";

  for (double delta : {1000.0, 300.0, 100.0, 40.0, 15.0}) {
    const auto reference =
        run(location::UncertaintyProfile::flooding(), delta, true);
    const auto exact =
        run(location::UncertaintyProfile::explicit_steps({0}), delta, false);
    const auto resub =
        run(location::UncertaintyProfile::global_resub(), delta, false);
    const auto adaptive = run(
        location::UncertaintyProfile::adaptive(
            sim::millis(delta),
            {sim::millis(4), sim::millis(32), sim::millis(32), sim::millis(32)}),
        delta, false);
    std::cout << std::left << std::setw(14) << delta << std::right
              << std::setw(12) << reference << std::setw(12) << exact
              << std::setw(12) << resub << std::setw(12) << adaptive << "\n";
  }

  std::cout << "\nexpected shape: the exact profile starves as delta shrinks "
               "(the paper's 'client too fast' caveat); one-step lookahead "
               "holds on longer; the adaptive profile widens its horizon "
               "with falling delta and tracks the flooding reference.\n";
  return 0;
}
