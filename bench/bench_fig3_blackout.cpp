// Reproduces paper Fig. 3: the blackout period after subscribing.
//
//  (a) simple/covering routing: a fresh subscription needs ~t_d to reach
//      the producers and the first matching notification needs ~t_d to
//      travel back — a blackout of ≈ 2·t_d.
//  (b) flooding with client-side filtering: notifications are already
//      everywhere; the first delivery arrives almost immediately.
//
// The bench sweeps the broker-chain length (t_d grows with the path) and
// prints the measured blackout against the predicted 2·t_d.
#include <iomanip>
#include <iostream>

#include "src/broker/overlay.hpp"
#include "src/client/client.hpp"
#include "src/metrics/checkers.hpp"
#include "src/net/topology.hpp"
#include "src/workload/publisher.hpp"

using namespace rebeca;

namespace {

struct Blackout {
  double first_published_ms = -1;  // publish-time offset of first delivery
  double first_delivered_ms = -1;
};

Blackout run(std::size_t chain, routing::Strategy strategy) {
  sim::Simulation sim(5);
  broker::OverlayConfig cfg;
  cfg.broker.strategy = strategy;
  broker::Overlay overlay(sim, net::Topology::chain(chain), cfg);

  client::ClientConfig pc;
  pc.id = ClientId(2);
  client::Client producer(sim, pc);
  overlay.connect_client(producer, chain - 1);
  workload::PublisherConfig wc;
  wc.rate = workload::RateModel::periodic(sim::millis(1));  // dense probe
  wc.prototype = filter::Notification().set("sym", "X");
  workload::Publisher pub(sim, producer, wc);

  client::ClientConfig cc;
  cc.id = ClientId(1);
  client::Client consumer(sim, cc);
  overlay.connect_client(consumer, 0);

  sim.run_until(sim::seconds(1));
  pub.start();
  sim.run_until(sim.now() + sim::millis(500));

  const auto subscribe_time = sim.now();
  consumer.subscribe(filter::Filter().where("sym", filter::Constraint::eq("X")));
  sim.run_until(sim.now() + sim::seconds(2));
  pub.stop();

  const auto rep = metrics::analyze_blackout(consumer.deliveries(), subscribe_time);
  Blackout b;
  if (rep.any_delivery) {
    b.first_published_ms = sim::to_millis(rep.first_published_offset);
    b.first_delivered_ms = sim::to_millis(rep.first_delivered_offset);
  }
  return b;
}

}  // namespace

int main() {
  std::cout << "Fig. 3: blackout after subscribing (5 ms broker hops, 1 ms "
               "client links)\n\n";
  std::cout << std::left << std::setw(10) << "brokers" << std::setw(12)
            << "t_d (ms)" << std::setw(26) << "routed: blackout (ms)"
            << std::setw(26) << "flooding: blackout (ms)" << "\n";

  for (std::size_t chain : {2, 4, 6, 8, 10}) {
    // One-way delay: producer client link + broker hops + consumer link.
    const double td = 1.0 + 5.0 * static_cast<double>(chain - 1) + 1.0;
    const auto routed = run(chain, routing::Strategy::covering);
    const auto flooded = run(chain, routing::Strategy::flooding);
    std::cout << std::left << std::setw(10) << chain << std::setw(12) << td
              << std::setw(26) << routed.first_delivered_ms << std::setw(26)
              << flooded.first_delivered_ms << "\n";
  }

  std::cout << "\nexpected shape (paper Fig. 3): routed blackout tracks "
               "2*t_d; flooding delivers after ~t_d (the notification that "
               "was already in flight), i.e. no subscription blackout.\n";
  return 0;
}
