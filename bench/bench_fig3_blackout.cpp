// Reproduces paper Fig. 3: the blackout period after subscribing.
//
//  (a) simple/covering routing: a fresh subscription needs ~t_d to reach
//      the producers and the first matching notification needs ~t_d to
//      travel back — a blackout of ≈ 2·t_d.
//  (b) flooding with client-side filtering: notifications are already
//      everywhere; the first delivery arrives almost immediately.
//
// The bench sweeps the broker-chain length (t_d grows with the path);
// each point is one scenario declaration swept over N seeds with
// stochastic broker-hop delays, reported as mean ± 95% CI. The probe
// subscription is issued by a phase-entry callback mid-stream, and the
// blackout is measured per run by a sweep probe.
//
//   bench_fig3_blackout [runs] [threads]
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <limits>
#include <sstream>

#include "src/scenario/sweep.hpp"

using namespace rebeca;

namespace {

// The probe subscribes at the entry of phase "probe": settle + traffic.
constexpr sim::TimePoint kSubscribeTime = sim::seconds(1) + sim::millis(500);

scenario::ScenarioSweep::Declare declare(std::size_t chain,
                                         routing::Strategy strategy) {
  return [chain, strategy](scenario::ScenarioBuilder& b) {
    b.topology(scenario::TopologySpec::chain(chain)).routing(strategy);
    // Mean 5 ms per broker hop, jittered per seed: the sweep averages
    // over delay realizations instead of trusting one fixed draw.
    b.broker_link_delay(sim::DelayModel::uniform(sim::millis(3), sim::millis(7)));

    b.client("producer")
        .with_id(2)
        .at_broker(chain - 1)
        .publishes(scenario::PublishSpec()
                       .every(sim::millis(1))  // dense probe
                       .body(filter::Notification().set("sym", "X"))
                       .from_phase("traffic")
                       .until_phase_end("probe"));
    b.client("consumer").with_id(1).at_broker(0);

    b.phase("settle", sim::seconds(1));
    b.phase("traffic", sim::millis(500));
    // The probe: subscribe mid-stream and measure how long until the
    // first matching notification reaches the application.
    b.phase("probe", sim::seconds(2), [](scenario::Scenario& s) {
      s.client("consumer").subscribe(
          filter::Filter().where("sym", filter::Constraint::eq("X")));
    });
  };
}

void blackout_probe(scenario::Scenario& s,
                    std::map<std::string, double>& metrics) {
  const auto rep = metrics::analyze_blackout(s.client("consumer").deliveries(),
                                             kSubscribeTime);
  // No delivery after the subscribe: NaN, so the run drops out of the
  // aggregate (visible in n) instead of skewing the mean.
  metrics["blackout_ms"] = rep.any_delivery
                               ? sim::to_millis(rep.first_delivered_offset)
                               : std::numeric_limits<double>::quiet_NaN();
}

std::string cell(const scenario::SweepResult& r) {
  const scenario::MetricStats s = r.stats("blackout_ms");
  std::ostringstream os;
  os << std::fixed << std::setprecision(1) << s.mean << " ±" << s.ci95;
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  scenario::SweepConfig cfg;
  cfg.base_seed = 5;
  cfg.runs = argc > 1 ? static_cast<std::size_t>(std::atol(argv[1])) : 5;
  cfg.threads = argc > 2 ? static_cast<std::size_t>(std::atol(argv[2])) : 0;

  std::cout << "Fig. 3: blackout after subscribing (5 ms mean broker hops, "
               "1 ms client links;\nmean ± 95% CI over "
            << cfg.runs << " seeds)\n\n";
  std::cout << std::left << std::setw(10) << "brokers" << std::setw(12)
            << "t_d (ms)" << std::setw(26) << "routed: blackout (ms)"
            << std::setw(26) << "flooding: blackout (ms)" << "\n";

  for (std::size_t chain : {2, 4, 6, 8, 10}) {
    // One-way delay: producer client link + broker hops + consumer link.
    const double td = 1.0 + 5.0 * static_cast<double>(chain - 1) + 1.0;
    scenario::ScenarioSweep routed(declare(chain, routing::Strategy::covering));
    routed.probe(blackout_probe);
    scenario::ScenarioSweep flooded(declare(chain, routing::Strategy::flooding));
    flooded.probe(blackout_probe);
    std::cout << std::left << std::setw(10) << chain << std::setw(12) << td
              << std::setw(26) << cell(routed.run(cfg)) << std::setw(26)
              << cell(flooded.run(cfg)) << "\n";
  }

  std::cout << "\nexpected shape (paper Fig. 3): routed blackout tracks "
               "2*t_d; flooding delivers after ~t_d (the notification that "
               "was already in flight), i.e. no subscription blackout.\n";
  return 0;
}
