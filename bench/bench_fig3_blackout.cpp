// Reproduces paper Fig. 3: the blackout period after subscribing.
//
//  (a) simple/covering routing: a fresh subscription needs ~t_d to reach
//      the producers and the first matching notification needs ~t_d to
//      travel back — a blackout of ≈ 2·t_d.
//  (b) flooding with client-side filtering: notifications are already
//      everywhere; the first delivery arrives almost immediately.
//
// The bench sweeps the broker-chain length (t_d grows with the path);
// each point is a scenario whose probe subscription is issued by a
// phase-entry callback mid-stream.
#include <iomanip>
#include <iostream>

#include "src/scenario/scenario.hpp"

using namespace rebeca;

namespace {

struct Blackout {
  double first_published_ms = -1;  // publish-time offset of first delivery
  double first_delivered_ms = -1;
};

Blackout run(std::size_t chain, routing::Strategy strategy) {
  sim::TimePoint subscribe_time = 0;

  scenario::ScenarioBuilder b;
  b.seed(5).topology(scenario::TopologySpec::chain(chain)).routing(strategy);

  b.client("producer")
      .with_id(2)
      .at_broker(chain - 1)
      .publishes(scenario::PublishSpec()
                     .every(sim::millis(1))  // dense probe
                     .body(filter::Notification().set("sym", "X"))
                     .from_phase("traffic")
                     .until_phase_end("probe"));
  b.client("consumer").with_id(1).at_broker(0);

  b.phase("settle", sim::seconds(1));
  b.phase("traffic", sim::millis(500));
  // The probe: subscribe mid-stream and measure how long until the first
  // matching notification reaches the application.
  b.phase("probe", sim::seconds(2), [&subscribe_time](scenario::Scenario& s) {
    subscribe_time = s.sim().now();
    s.client("consumer")
        .subscribe(filter::Filter().where("sym", filter::Constraint::eq("X")));
  });

  auto s = b.build();
  s->run();

  const auto rep =
      metrics::analyze_blackout(s->client("consumer").deliveries(), subscribe_time);
  Blackout result;
  if (rep.any_delivery) {
    result.first_published_ms = sim::to_millis(rep.first_published_offset);
    result.first_delivered_ms = sim::to_millis(rep.first_delivered_offset);
  }
  return result;
}

}  // namespace

int main() {
  std::cout << "Fig. 3: blackout after subscribing (5 ms broker hops, 1 ms "
               "client links)\n\n";
  std::cout << std::left << std::setw(10) << "brokers" << std::setw(12)
            << "t_d (ms)" << std::setw(26) << "routed: blackout (ms)"
            << std::setw(26) << "flooding: blackout (ms)" << "\n";

  for (std::size_t chain : {2, 4, 6, 8, 10}) {
    // One-way delay: producer client link + broker hops + consumer link.
    const double td = 1.0 + 5.0 * static_cast<double>(chain - 1) + 1.0;
    const auto routed = run(chain, routing::Strategy::covering);
    const auto flooded = run(chain, routing::Strategy::flooding);
    std::cout << std::left << std::setw(10) << chain << std::setw(12) << td
              << std::setw(26) << routed.first_delivered_ms << std::setw(26)
              << flooded.first_delivered_ms << "\n";
  }

  std::cout << "\nexpected shape (paper Fig. 3): routed blackout tracks "
               "2*t_d; flooding delivers after ~t_d (the notification that "
               "was already in flight), i.e. no subscription blackout.\n";
  return 0;
}
