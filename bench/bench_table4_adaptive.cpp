// Reproduces paper Table 4: ploc under the adaptive rule with the
// concrete timing values of Sec. 5.3 — Δ = 100 ms and per-hop
// subscription-processing delays δ = (120, 50, 50, 20) ms.
//
// Expected (paper): rows t=1 and t=2 are the 1-step sets, row t=3 is the
// full set — one level of buffering inserted between B1/B2 and another
// between B3/B4; the uncertainty steps are q = (0, 1, 1, 2, 2).
//
// Part 1 prints the analytic table and checks the q vector. Part 2 is
// the simulation cross-check on ScenarioSweep: an LD consumer
// random-walks Fig. 7 over a 4-broker chain with the adaptive profile
// installed; a sweep probe reads the realized installed location-set
// widths per hop (mean ± 95% CI over seeds), which must match the
// analytic widths of the q_i balls.
//
//   bench_table4_adaptive [runs] [threads]
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "src/location/ld_spec.hpp"
#include "src/location/location_graph.hpp"
#include "src/location/profile.hpp"
#include "src/scenario/sweep.hpp"

using namespace rebeca;

namespace {

constexpr std::size_t kBrokers = 4;  // chain B0..B3: hops carry F1..F4

std::string set_to_string(const location::LocationGraph& g,
                          const location::LocationSet& s) {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (auto id : s) {
    if (!first) os << ",";
    os << g.name(id);
    first = false;
  }
  os << "}";
  return os.str();
}

location::UncertaintyProfile paper_profile() {
  return location::UncertaintyProfile::adaptive(
      sim::millis(100),
      {sim::millis(120), sim::millis(50), sim::millis(50), sim::millis(20)});
}

void declare(scenario::ScenarioBuilder& b) {
  b.topology(scenario::TopologySpec::chain(kBrokers));
  b.locations(scenario::LocationSpec::paper_fig7());
  b.broker_link_delay(sim::DelayModel::uniform(sim::millis(2), sim::millis(6)));
  b.client_link_delay(
      sim::DelayModel::uniform(sim::micros(500), sim::micros(1500)));

  location::LdSpec spec;
  spec.profile = paper_profile();
  b.client("consumer")
      .with_id(1)
      .at_broker(0)
      .starts_at("a")
      .subscribes(spec)
      .walks(scenario::WalkSpec()
                 .residing(sim::millis(200))
                 .moves(20)
                 .from_phase("walk"));

  b.client("producer")
      .with_id(2)
      .at_broker(kBrokers - 1)
      .publishes(scenario::PublishSpec()
                     .every(sim::millis(20))
                     .body(filter::Notification().set("service", "s"))
                     .uniform_locations()
                     .count(250)
                     .from_phase("walk"));

  b.phase("settle", sim::seconds(1));
  b.phase("walk", sim::seconds(5));
  b.phase("drain", sim::seconds(2));
}

/// Realized ploc widths: broker i-1 holds filter F_i of Fig. 6.
void ball_probe(scenario::Scenario& s, std::map<std::string, double>& m) {
  const SubKey key{ClientId(1), 1};
  for (std::size_t i = 0; i < kBrokers; ++i) {
    auto set = s.overlay().broker(i).ld_concrete_set(key);
    m["ploc_hop" + std::to_string(i + 1)] =
        set.has_value() ? static_cast<double>(set->size()) : 0.0;
  }
}

}  // namespace

int main(int argc, char** argv) {
  auto g = location::LocationGraph::paper_fig7();
  auto profile = paper_profile();
  location::LdSpec spec;
  spec.profile = profile;

  // ---- part 1: the paper's exact analytic table ----
  std::cout << "Table 4 part 1 — analytic: ploc(x,t) under the adaptive "
               "rule, " << profile.to_string() << "\n";
  std::cout << std::left << std::setw(4) << "t";
  for (const char* x : {"a", "b", "c", "d"}) {
    std::cout << std::setw(12) << (std::string("x = ") + x);
  }
  std::cout << "\n";
  for (std::size_t t = 0; t <= 3; ++t) {
    std::cout << std::left << std::setw(4) << t;
    for (const char* x : {"a", "b", "c", "d"}) {
      std::cout << std::setw(12)
                << set_to_string(g, spec.concrete_set(g, g.id_of(x), t));
    }
    std::cout << "\n";
  }

  std::cout << "\nuncertainty steps q_i: ";
  for (std::size_t i = 0; i <= 4; ++i) {
    std::cout << "q_" << i << "=" << profile.steps(i) << " ";
  }
  std::cout << "\npaper check: q = (0, 1, 1, 2, 2) "
            << (profile.steps(0) == 0 && profile.steps(1) == 1 &&
                        profile.steps(2) == 1 && profile.steps(3) == 2 &&
                        profile.steps(4) == 2
                    ? "OK"
                    : "MISMATCH")
            << "\n\n";

  // ---- part 2: simulation cross-check, swept over stochastic seeds ----
  scenario::SweepConfig cfg;
  cfg.base_seed = 4;
  cfg.runs = argc > 1 ? static_cast<std::size_t>(std::atol(argv[1])) : 8;
  cfg.threads = argc > 2 ? static_cast<std::size_t>(std::atol(argv[2])) : 0;

  scenario::ScenarioSweep sweep(declare);
  sweep.probe(ball_probe);
  const scenario::SweepResult r = sweep.run(cfg);

  std::cout << "Table 4 part 2 — simulated: LD consumer random-walking "
               "Fig. 7 over a " << kBrokers
            << "-broker chain, adaptive profile\n(realized installed "
               "location-set sizes per hop, mean ± 95% CI over "
            << cfg.runs << " seeds)\n\n";
  std::cout << std::left << std::setw(10) << "hop i" << std::right
            << std::setw(14) << "|ploc| at B_i" << std::setw(16)
            << "analytic width" << "\n";
  for (std::size_t i = 1; i <= kBrokers; ++i) {
    // Width of the q_i ball; location-independent on Fig. 7.
    const std::size_t analytic = spec.concrete_set(g, g.id_of("a"), i).size();
    std::cout << std::left << std::setw(10) << i << std::right << std::setw(14)
              << r.stats("ploc_hop" + std::to_string(i)).mean_ci()
              << std::setw(16) << analytic << "\n";
  }
  std::cout << "\nreading: buffering pushes hops 1-2 down to the 1-step "
               "ball and hops 3-4 to the 2-step (= full) set — the q = "
               "(0, 1, 1, 2, 2) structure realized in the live network; "
               "delivery completeness rides on these sets ("
            << r.stats("client.consumer.delivered").mean_ci() << " delivered, "
            << r.stats("client.consumer.filtered").mean_ci()
            << " client-side filtered per seed).\n";
  return 0;
}
