// Reproduces paper Table 4: ploc under the adaptive rule with the
// concrete timing values of Sec. 5.3 — Δ = 100 ms and per-hop
// subscription-processing delays δ = (120, 50, 50, 20) ms.
//
// Expected (paper): rows t=1 and t=2 are the 1-step sets, row t=3 is the
// full set — one level of buffering inserted between B1/B2 and another
// between B3/B4.
#include <iomanip>
#include <iostream>
#include <sstream>

#include "src/location/ld_spec.hpp"
#include "src/location/location_graph.hpp"
#include "src/location/profile.hpp"

using namespace rebeca;

namespace {

std::string set_to_string(const location::LocationGraph& g,
                          const location::LocationSet& s) {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (auto id : s) {
    if (!first) os << ",";
    os << g.name(id);
    first = false;
  }
  os << "}";
  return os.str();
}

}  // namespace

int main() {
  auto g = location::LocationGraph::paper_fig7();
  auto profile = location::UncertaintyProfile::adaptive(
      sim::millis(100),
      {sim::millis(120), sim::millis(50), sim::millis(50), sim::millis(20)});
  location::LdSpec spec;
  spec.profile = profile;

  std::cout << "Table 4: ploc(x,t) under the adaptive rule, "
            << profile.to_string() << "\n";
  std::cout << std::left << std::setw(4) << "t";
  for (const char* x : {"a", "b", "c", "d"}) {
    std::cout << std::setw(12) << (std::string("x = ") + x);
  }
  std::cout << "\n";
  for (std::size_t t = 0; t <= 3; ++t) {
    std::cout << std::left << std::setw(4) << t;
    for (const char* x : {"a", "b", "c", "d"}) {
      std::cout << std::setw(12)
                << set_to_string(g, spec.concrete_set(g, g.id_of(x), t));
    }
    std::cout << "\n";
  }

  std::cout << "\nuncertainty steps q_i: ";
  for (std::size_t i = 0; i <= 4; ++i) {
    std::cout << "q_" << i << "=" << profile.steps(i) << " ";
  }
  std::cout << "\npaper check: q = (0, 1, 1, 2, 2) "
            << (profile.steps(0) == 0 && profile.steps(1) == 1 &&
                        profile.steps(2) == 1 && profile.steps(3) == 2 &&
                        profile.steps(4) == 2
                    ? "OK"
                    : "MISMATCH")
            << "\n";
  return 0;
}
