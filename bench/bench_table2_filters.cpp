// Reproduces paper Table 2: "Values of filters in example setting" —
// the filter chain F3 F2 F1 F0 of Fig. 6 while the consumer moves
// a → b → d on the Fig. 7 movement graph.
//
// Part 1 prints the pure function-level table (ploc applied per hop).
// Part 2, ported off the old single-seed live run onto ScenarioSweep
// (the fig-bench pattern), drives the same scripted a → b → d walk
// through a *live* broker chain with stochastic link delays across many
// seeds: a probe reads back the installed location sets from every
// broker after the walk and reports the realized per-hop set sizes as
// mean ± 95% CI, proving the network state converges to the paper's
// final table row under jitter.
//
//   bench_table2_filters [runs] [threads]
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "src/location/profile.hpp"
#include "src/scenario/sweep.hpp"

using namespace rebeca;

namespace {

constexpr std::size_t kBrokers = 3;  // chain B0..B2: B0 border holds F1

std::string set_to_string(const location::LocationGraph& g,
                          const location::LocationSet& s) {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (auto id : s) {
    if (!first) os << ",";
    os << g.name(id);
    first = false;
  }
  os << "}";
  return os.str();
}

location::LdSpec table2_spec() {
  // Table 2's hop profile is Table 1's rows: q_i = i (saturating).
  location::LdSpec spec;
  spec.profile = location::UncertaintyProfile::explicit_steps({0, 1, 2, 3});
  return spec;
}

void declare(scenario::ScenarioBuilder& b) {
  b.topology(scenario::TopologySpec::chain(kBrokers));
  b.locations(scenario::LocationSpec::paper_fig7());
  b.broker_link_delay(sim::DelayModel::uniform(sim::millis(2), sim::millis(6)));
  b.client_link_delay(
      sim::DelayModel::uniform(sim::micros(500), sim::micros(1500)));

  // The paper's itinerary, scripted: a -> b -> d, one move per second.
  b.client("consumer")
      .with_id(1)
      .at_broker(0)
      .starts_at("a")
      .subscribes(table2_spec())
      .walks(scenario::WalkSpec()
                 .route({"b", "d"})
                 .residing(sim::seconds(1))
                 .moves(2)
                 .from_phase("walk"));

  // Location-stamped traffic, so the table's sets carry live deliveries.
  b.client("producer")
      .with_id(2)
      .at_broker(kBrokers - 1)
      .publishes(scenario::PublishSpec()
                     .every(sim::millis(25))
                     .body(filter::Notification().set("service", "s"))
                     .uniform_locations()
                     .count(200)
                     .from_phase("walk"));

  b.phase("settle", sim::seconds(1));
  b.phase("walk", sim::seconds(3));
  b.phase("drain", sim::seconds(2));
}

/// Installed location sets after the walk: B0 (border) holds F1, B1
/// holds F2, B2 holds F3 — Table 2's final row (consumer at d).
void filter_probe(scenario::Scenario& s, std::map<std::string, double>& m) {
  const SubKey key{ClientId(1), 1};
  for (std::size_t i = 0; i < kBrokers; ++i) {
    auto set = s.overlay().broker(i).ld_concrete_set(key);
    m["F" + std::to_string(i + 1) + "_size"] =
        set.has_value() ? static_cast<double>(set->size()) : 0.0;
  }
}

}  // namespace

int main(int argc, char** argv) {
  auto g = location::LocationGraph::paper_fig7();
  const location::LdSpec spec = table2_spec();
  const char* itinerary[] = {"a", "b", "d"};

  // ---- part 1: the function-level table ----
  std::cout << "Table 2 part 1 — function level: filters F3..F0 as the "
               "client moves a -> b -> d\n";
  std::cout << std::left << std::setw(8) << "time" << std::setw(12) << "F3"
            << std::setw(12) << "F2" << std::setw(12) << "F1" << std::setw(12)
            << "F0" << "\n";
  for (std::size_t t = 0; t < 3; ++t) {
    const auto loc = g.id_of(itinerary[t]);
    std::cout << std::left << std::setw(8) << t;
    for (int i = 3; i >= 0; --i) {
      std::cout << std::setw(12)
                << set_to_string(
                       g, spec.concrete_set(g, loc, static_cast<std::size_t>(i)));
    }
    std::cout << "\n";
  }

  // ---- part 2: live broker chain, swept over stochastic seeds ----
  scenario::SweepConfig cfg;
  cfg.base_seed = 5;
  cfg.runs = argc > 1 ? static_cast<std::size_t>(std::atol(argv[1])) : 8;
  cfg.threads = argc > 2 ? static_cast<std::size_t>(std::atol(argv[2])) : 0;

  scenario::ScenarioSweep sweep(declare);
  sweep.probe(filter_probe);
  const scenario::SweepResult r = sweep.run(cfg);

  std::cout << "\nTable 2 part 2 — live broker chain under stochastic "
               "delays: installed set sizes after the a -> b -> d walk\n"
               "(mean ± 95% CI over " << cfg.runs
            << " seeds; expected = the function-level final row, "
               "consumer at d)\n\n";
  std::cout << std::left << std::setw(10) << "filter" << std::right
            << std::setw(14) << "realized" << std::setw(12) << "expected"
            << "\n";
  const auto final_loc = g.id_of("d");
  for (std::size_t i = 1; i <= kBrokers; ++i) {
    std::cout << std::left << std::setw(10) << ("F" + std::to_string(i))
              << std::right << std::setw(14)
              << r.stats("F" + std::to_string(i) + "_size").mean_ci()
              << std::setw(12) << spec.concrete_set(g, final_loc, i).size()
              << "\n";
  }
  std::cout << "\nreading: the live tables land on the paper's final row "
               "(F1 = ploc(d,1) = {b,c,d}, F2 and F3 saturated at all four "
               "locations) for every seed; the consumer's deliveries ("
            << r.stats("client.consumer.delivered").mean_ci()
            << " per seed, "
            << r.stats("client.consumer.filtered").mean_ci()
            << " filtered by F0) ride those sets.\n";
  return 0;
}
