// Reproduces paper Table 2: "Values of filters in example setting" —
// the filter chain F3 F2 F1 F0 of Fig. 6 while the consumer moves
// a → b → d on the Fig. 7 movement graph.
//
// Two renditions are printed:
//   (1) the pure function-level table (ploc applied per hop), and
//   (2) the same values read back from a *live* broker chain after each
//       move, proving the network state matches the paper's table.
#include <iomanip>
#include <iostream>
#include <sstream>

#include "src/broker/overlay.hpp"
#include "src/client/client.hpp"
#include "src/location/ld_spec.hpp"
#include "src/net/topology.hpp"

using namespace rebeca;

namespace {

std::string set_to_string(const location::LocationGraph& g,
                          const location::LocationSet& s) {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (auto id : s) {
    if (!first) os << ",";
    os << g.name(id);
    first = false;
  }
  os << "}";
  return os.str();
}

}  // namespace

int main() {
  auto g = location::LocationGraph::paper_fig7();
  // Table 2's hop profile is Table 1's rows: q_i = i (saturating).
  location::LdSpec spec;
  spec.profile = location::UncertaintyProfile::explicit_steps({0, 1, 2, 3});

  const char* itinerary[] = {"a", "b", "d"};

  std::cout << "Table 2 (function level): filters F3..F0 as the client "
               "moves a -> b -> d\n";
  std::cout << std::left << std::setw(8) << "time" << std::setw(12) << "F3"
            << std::setw(12) << "F2" << std::setw(12) << "F1" << std::setw(12)
            << "F0" << "\n";
  for (std::size_t t = 0; t < 3; ++t) {
    const auto loc = g.id_of(itinerary[t]);
    std::cout << std::left << std::setw(8) << t;
    for (int i = 3; i >= 0; --i) {
      std::cout << std::setw(12)
                << set_to_string(g, spec.concrete_set(g, loc, static_cast<std::size_t>(i)));
    }
    std::cout << "\n";
  }

  // ---- live network rendition ----
  sim::Simulation sim(1);
  broker::OverlayConfig cfg;
  cfg.broker.locations = &g;
  broker::Overlay overlay(sim, net::Topology::chain(3), cfg);
  client::ClientConfig cc;
  cc.id = ClientId(1);
  cc.locations = &g;
  client::Client consumer(sim, cc);
  overlay.connect_client(consumer, 0);
  consumer.move_to("a");
  const auto sub = consumer.subscribe(spec);
  const SubKey key{ClientId(1), sub};

  std::cout << "\nTable 2 (live broker chain): installed location sets "
               "(B0=border holds F1, B1 holds F2, B2 holds F3)\n";
  std::cout << std::left << std::setw(8) << "time" << std::setw(12) << "F3@B2"
            << std::setw(12) << "F2@B1" << std::setw(12) << "F1@B0"
            << std::setw(12) << "F0@client" << "\n";
  for (std::size_t t = 0; t < 3; ++t) {
    consumer.move_to(itinerary[t]);
    sim.run_until(sim.now() + sim::seconds(1));  // let updates propagate
    std::cout << std::left << std::setw(8) << t;
    for (std::size_t b : {2u, 1u, 0u}) {
      auto s = overlay.broker(b).ld_concrete_set(key);
      std::cout << std::setw(12) << (s ? set_to_string(g, *s) : "-");
    }
    std::cout << std::setw(12)
              << set_to_string(g, spec.concrete_set(g, consumer.location(), 0));
    std::cout << "\n";
  }
  return 0;
}
