// Reproduces paper Fig. 9: "Total number of messages generated for
// flooding and two scenarios of the new algorithm (Δ = 1 s and
// Δ = 10 s)", cumulative over time, log-scale y.
//
// Part 1 keeps the analytic model at paper scale (100 brokers, 200
// locations, 1000 notifications/s aggregate). Part 2 is the simulator
// cross-check, ported off the old single-seed hand-wired run onto
// ScenarioSweep + checkpoint counter series: each curve is one
// declaration (flooding / LD Δ=1s / LD Δ=10s) with
// checkpoint_every(2s), swept over N seeds under stochastic link
// delays; the printed rows are the cumulative total-message counts at
// every checkpoint as mean ± 95% CI, matching fig2–fig5. Pass
// --csv-series as the last argument to dump the per-class cumulative
// series (SweepResult::csv_series) for each curve instead of the
// summary table.
//
//   bench_fig9_message_counts [runs] [threads] [--csv-series]
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "src/analysis/fig9_model.hpp"
#include "src/scenario/sweep.hpp"

using namespace rebeca;

namespace {

analysis::MessageModel paper_scale_model(const net::Topology& topo,
                                         const location::LocationGraph& graph,
                                         std::vector<std::size_t> producers,
                                         sim::Duration delta) {
  analysis::Fig9Config cfg;
  cfg.topology = &topo;
  cfg.consumer_broker = 0;
  cfg.producer_brokers = std::move(producers);
  cfg.locations = &graph;
  cfg.profile = location::UncertaintyProfile::global_resub();
  cfg.vicinity_radius = 0;
  cfg.publish_rate_hz = 1000.0;
  cfg.delta = delta;
  return analysis::build_message_model(cfg);
}

// ---- part 2: the swept simulation ----

constexpr double kHorizonSec = 20.0;
constexpr sim::Duration kCheckpoint = sim::seconds(2);

/// One fig9 curve: flooding, or the new algorithm at residence `delta`.
scenario::ScenarioSweep::Declare declare(bool flooding, sim::Duration delta) {
  return [flooding, delta](scenario::ScenarioBuilder& b) {
    b.topology(scenario::TopologySpec::balanced_tree(2, 4));  // 21 brokers
    b.locations(scenario::LocationSpec::grid(8, 8));
    b.routing(flooding ? routing::Strategy::flooding
                       : routing::Strategy::covering);
    b.broker_link_delay(sim::DelayModel::uniform(sim::millis(3), sim::millis(7)));
    b.client_link_delay(
        sim::DelayModel::uniform(sim::micros(500), sim::micros(1500)));
    b.checkpoint_every(kCheckpoint);

    auto& consumer =
        b.client("consumer").with_id(1).at_broker(0).starts_at("g0_0");
    if (flooding) {
      consumer.subscribes(filter::Filter());  // everything; filter at client
    } else {
      location::LdSpec spec;
      spec.profile = location::UncertaintyProfile::global_resub();
      consumer.subscribes(spec);
    }
    consumer.walks(scenario::WalkSpec().residing(delta).from_phase("traffic"));

    // Three producers publishing uniformly over the locations, ~100
    // notifications/s aggregate (the admin-dominated regime the paper's
    // plot shows).
    const std::size_t producer_brokers[] = {20, 10, 6};
    std::uint32_t id = 10;
    for (std::size_t broker : producer_brokers) {
      b.client("producer" + std::to_string(id))
          .with_id(id)
          .at_broker(broker)
          .publishes(scenario::PublishSpec()
                         .every(sim::millis(30))
                         .body(filter::Notification().set("service", "s"))
                         .uniform_locations()
                         .from_phase("traffic"));
      ++id;
    }

    b.phase("traffic", sim::seconds(kHorizonSec));
  };
}

/// Mean ± 95% CI of the cumulative total message count at checkpoint k,
/// computed over the per-seed reports (seed order, deterministic) with
/// the sweep module's canonical statistics.
std::string total_at(const scenario::SweepResult& r, std::size_t k) {
  std::vector<double> xs;
  for (const auto& report : r.reports) {
    if (k < report.checkpoints.size()) {
      xs.push_back(static_cast<double>(report.checkpoints[k].counters.total()));
    }
  }
  if (xs.empty()) return "-";
  return scenario::stats_over(xs).mean_ci(0);
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv_series =
      argc > 1 && std::strcmp(argv[argc - 1], "--csv-series") == 0;

  std::cout << "Fig. 9: total messages — flooding vs. the new algorithm\n\n";

  // ---- part 1: analytic model at paper scale ----
  sim::Simulation scratch(41);
  auto topo = net::Topology::random_tree(100, scratch.rng());
  auto graph = location::LocationGraph::grid(20, 10);  // 200 locations
  std::vector<std::size_t> producers;
  for (std::size_t b = 3; b < 100; b += 3) producers.push_back(b);

  const auto model1 = paper_scale_model(topo, graph, producers, sim::seconds(1));
  const auto model10 = paper_scale_model(topo, graph, producers, sim::seconds(10));

  std::cout << "part 1 — analytic, 100 brokers / 200 locations / "
               "1000 notifications/s aggregate / 32 producers:\n\n";
  std::cout << std::left << std::setw(8) << "t (s)" << std::right
            << std::setw(14) << "flooding" << std::setw(16) << "new, D=1s"
            << std::setw(16) << "new, D=10s" << std::setw(12) << "saving"
            << "\n";
  for (double t : {10.0, 20.0, 40.0, 60.0, 80.0, 100.0}) {
    const double fl = model1.flooding_total(t);
    const double n1 = model1.newalg_total(t);
    const double n10 = model10.newalg_total(t);
    std::cout << std::left << std::setw(8) << t << std::right << std::fixed
              << std::setprecision(0) << std::setw(14) << fl << std::setw(16)
              << n1 << std::setw(16) << n10 << std::setw(11)
              << std::setprecision(1) << fl / n1 << "x\n";
  }
  std::cout << std::setprecision(2)
            << "\nper-notification hops: flooding "
            << model1.flooding_per_notification << ", new algorithm "
            << model1.newalg_per_notification
            << "; admin messages per move: " << model1.newalg_admin_per_move
            << "\n\n";

  // ---- part 2: swept simulator curves at reduced scale ----
  scenario::SweepConfig cfg;
  cfg.base_seed = 11;
  cfg.runs = argc > 1 && argv[1][0] != '-'
                 ? static_cast<std::size_t>(std::atol(argv[1]))
                 : 4;
  cfg.threads = argc > 2 && argv[2][0] != '-'
                    ? static_cast<std::size_t>(std::atol(argv[2]))
                    : 0;

  struct Curve {
    const char* name;
    bool flooding;
    sim::Duration delta;
  };
  const Curve curves[] = {
      {"flooding", true, sim::seconds(1)},
      {"new, D=1s", false, sim::seconds(1)},
      {"new, D=10s", false, sim::seconds(10)},
  };

  std::cout << "part 2 — simulated, 21 brokers / 64 locations / ~100 "
               "notifications/s / " << kHorizonSec << " s horizon\n(cumulative "
               "total messages at each checkpoint, mean ± 95% CI over "
            << cfg.runs << " seeds):\n\n";

  std::vector<scenario::SweepResult> results;
  for (const auto& c : curves) {
    scenario::ScenarioSweep sweep(declare(c.flooding, c.delta));
    results.push_back(sweep.run(cfg));
  }

  if (csv_series) {
    for (std::size_t i = 0; i < results.size(); ++i) {
      std::cout << "# " << curves[i].name << "\n"
                << results[i].csv_series() << "\n";
    }
    return 0;
  }

  const std::size_t checkpoints =
      static_cast<std::size_t>(kHorizonSec / sim::to_seconds(kCheckpoint));
  std::cout << std::left << std::setw(8) << "t (s)";
  for (const auto& c : curves) std::cout << std::right << std::setw(18) << c.name;
  std::cout << "\n";
  for (std::size_t k = 0; k < checkpoints; ++k) {
    std::cout << std::left << std::setw(8)
              << sim::to_seconds(kCheckpoint) * static_cast<double>(k + 1);
    for (const auto& r : results) {
      std::cout << std::right << std::setw(18) << total_at(r, k);
    }
    std::cout << "\n";
  }

  // ---- part 3: analytic-model cross-check against the swept simulator ----
  // The same closed-form model, instantiated at the part-2 scenario's
  // scale, predicted against the sweep means: this is the only place
  // analysis::build_message_model is validated against the simulator.
  auto sim_topo = net::Topology::balanced_tree(2, 4);
  auto sim_graph = location::LocationGraph::grid(8, 8);
  analysis::Fig9Config vcfg;
  vcfg.topology = &sim_topo;
  vcfg.consumer_broker = 0;
  vcfg.producer_brokers = {20, 10, 6};
  vcfg.locations = &sim_graph;
  vcfg.profile = location::UncertaintyProfile::global_resub();
  vcfg.publish_rate_hz = 100.0;
  vcfg.delta = sim::seconds(1);
  const auto vmodel = analysis::build_message_model(vcfg);

  const auto mean_of = [](const scenario::SweepResult& r, auto&& metric) {
    std::vector<double> xs;
    for (const auto& report : r.reports) xs.push_back(metric(report));
    return scenario::stats_over(xs).mean;
  };
  const auto check_row = [](const char* label, double simulated, double model) {
    std::cout << std::left << std::setw(24) << label << std::right << std::fixed
              << std::setprecision(0) << std::setw(12) << simulated
              << std::setw(12) << model << std::setw(9) << std::setprecision(1)
              << 100.0 * std::abs(simulated - model) / std::max(model, 1.0)
              << "%\n";
  };

  std::cout << "\npart 3 — model cross-check (sweep means vs. the analytic "
               "model at part-2 scale):\n\n";
  std::cout << std::left << std::setw(24) << "" << std::right << std::setw(12)
            << "simulated" << std::setw(12) << "model" << std::setw(10)
            << "error" << "\n";
  const auto& flood = results[0];
  const auto& newalg = results[1];  // D = 1s
  check_row("flooding notifications",
            mean_of(flood,
                    [](const scenario::ScenarioReport& r) {
                      return static_cast<double>(
                          r.messages.count(metrics::MessageClass::notification) +
                          r.messages.count(metrics::MessageClass::delivery));
                    }),
            vmodel.flooding_per_notification *
                mean_of(flood, [](const scenario::ScenarioReport& r) {
                  return static_cast<double>(r.published);
                }));
  // The walker paces one move per Δ, so moves ≈ horizon / Δ.
  check_row("new alg admin",
            mean_of(newalg,
                    [](const scenario::ScenarioReport& r) {
                      return static_cast<double>(
                          r.messages.count(metrics::MessageClass::location_update));
                    }),
            vmodel.newalg_admin_per_move *
                (kHorizonSec / sim::to_seconds(sim::seconds(1))));

  std::cout << "\nexpected shape: flooding well above both new-algorithm "
               "curves at every checkpoint; D=10s at or below D=1s (fewer "
               "location updates); all three cumulative curves near-linear "
               "in t; the model within ~15% of the simulator on both "
               "cross-check rows.\n";
  return 0;
}
