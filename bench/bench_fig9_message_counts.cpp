// Reproduces paper Fig. 9: "Total number of messages generated for
// flooding and two scenarios of the new algorithm (Δ = 1 s and
// Δ = 10 s)", cumulative over t = 0..100 s, log-scale y.
//
// The paper computed these numbers analytically for "an arguably
// realistic network setting" with one consumer and producers publishing
// uniformly over the locations (the exact network of tech report [9] is
// not in the paper; parameters below are chosen to that description and
// documented). We print:
//
//   part 1 — the analytic model at paper scale (100 brokers, 200
//            locations, 1000 notifications/s aggregate), t = 0..100 s;
//   part 2 — a reduced-scale cross-check: the same model against the
//            actual simulator, per message class.
//
// Expected shape (the reproduction target): flooding 1–2 orders of
// magnitude above the new algorithm; Δ = 10 s strictly below Δ = 1 s;
// all three curves linear in t (straight, slightly converging lines on
// the log plot).
#include <cmath>
#include <iomanip>
#include <iostream>
#include <memory>

#include "src/analysis/fig9_model.hpp"
#include "src/broker/overlay.hpp"
#include "src/client/client.hpp"
#include "src/net/topology.hpp"
#include "src/workload/mover.hpp"
#include "src/workload/publisher.hpp"

using namespace rebeca;

namespace {

analysis::MessageModel paper_scale_model(const net::Topology& topo,
                                         const location::LocationGraph& graph,
                                         std::vector<std::size_t> producers,
                                         sim::Duration delta) {
  analysis::Fig9Config cfg;
  cfg.topology = &topo;
  cfg.consumer_broker = 0;
  cfg.producer_brokers = std::move(producers);
  cfg.locations = &graph;
  cfg.profile = location::UncertaintyProfile::global_resub();
  cfg.vicinity_radius = 0;
  cfg.publish_rate_hz = 1000.0;
  cfg.delta = delta;
  return analysis::build_message_model(cfg);
}

struct SimResult {
  double notifications = 0;
  double admin = 0;
  std::uint64_t published = 0;
  std::uint64_t moves = 0;
};

SimResult simulate(const net::Topology& topo,
                   const location::LocationGraph& graph, bool flooding,
                   sim::Duration delta, double rate_hz, double horizon_sec) {
  sim::Simulation sim(11);
  broker::OverlayConfig cfg;
  cfg.broker.locations = &graph;
  cfg.broker.strategy =
      flooding ? routing::Strategy::flooding : routing::Strategy::covering;
  broker::Overlay overlay(sim, topo, cfg);

  client::ClientConfig cc;
  cc.id = ClientId(1);
  cc.locations = &graph;
  client::Client consumer(sim, cc);
  overlay.connect_client(consumer, 0);
  consumer.move_to(LocationId(0));
  if (flooding) {
    consumer.subscribe(filter::Filter());
  } else {
    location::LdSpec spec;
    spec.profile = location::UncertaintyProfile::global_resub();
    consumer.subscribe(spec);
  }

  const std::vector<std::size_t> producer_brokers{
      topo.broker_count() - 1, topo.broker_count() / 2, topo.broker_count() / 3};
  std::vector<std::unique_ptr<client::Client>> producers;
  std::vector<std::unique_ptr<workload::Publisher>> pubs;
  std::uint32_t id = 10;
  for (std::size_t b : producer_brokers) {
    client::ClientConfig pc;
    pc.id = ClientId(id++);
    producers.push_back(std::make_unique<client::Client>(sim, pc));
    overlay.connect_client(*producers.back(), b);
    workload::PublisherConfig wc;
    wc.rate = workload::RateModel::periodic(static_cast<sim::Duration>(
        sim::seconds(static_cast<double>(producer_brokers.size()) / rate_hz)));
    wc.locations = &graph;
    wc.seed = id * 97;
    pubs.push_back(std::make_unique<workload::Publisher>(sim, *producers.back(), wc));
  }

  workload::LogicalMoverConfig mc;
  mc.locations = &graph;
  mc.delta = delta;
  mc.seed = 23;
  workload::LogicalMover mover(sim, consumer, mc);

  sim.run_until(sim::seconds(1));
  overlay.counters().reset();
  for (auto& p : pubs) p->start();
  mover.start();
  sim.run_until(sim.now() + sim::seconds(horizon_sec));
  for (auto& p : pubs) p->stop();
  mover.stop();

  SimResult r;
  const auto& c = overlay.counters();
  r.notifications = static_cast<double>(
      c.count(metrics::MessageClass::notification) +
      c.count(metrics::MessageClass::delivery));
  r.admin = static_cast<double>(c.count(metrics::MessageClass::location_update));
  for (auto& p : pubs) r.published += p->published();
  r.moves = mover.moves();
  return r;
}

}  // namespace

int main() {
  std::cout << "Fig. 9: total messages — flooding vs. the new algorithm\n\n";

  // ---- part 1: analytic model at paper scale ----
  sim::Simulation scratch(41);
  auto topo = net::Topology::random_tree(100, scratch.rng());
  auto graph = location::LocationGraph::grid(20, 10);  // 200 locations
  std::vector<std::size_t> producers;
  for (std::size_t b = 3; b < 100; b += 3) producers.push_back(b);

  const auto model1 = paper_scale_model(topo, graph, producers, sim::seconds(1));
  const auto model10 = paper_scale_model(topo, graph, producers, sim::seconds(10));

  std::cout << "part 1 — analytic, 100 brokers / 200 locations / "
               "1000 notifications/s aggregate / 32 producers:\n\n";
  std::cout << std::left << std::setw(8) << "t (s)" << std::right
            << std::setw(14) << "flooding" << std::setw(16) << "new, D=1s"
            << std::setw(16) << "new, D=10s" << std::setw(12) << "saving"
            << "\n";
  for (double t : {10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0}) {
    const double fl = model1.flooding_total(t);
    const double n1 = model1.newalg_total(t);
    const double n10 = model10.newalg_total(t);
    std::cout << std::left << std::setw(8) << t << std::right << std::fixed
              << std::setprecision(0) << std::setw(14) << fl << std::setw(16)
              << n1 << std::setw(16) << n10 << std::setw(11)
              << std::setprecision(1) << fl / n1 << "x\n";
  }
  std::cout << std::setprecision(2)
            << "\nper-notification hops: flooding "
            << model1.flooding_per_notification << ", new algorithm "
            << model1.newalg_per_notification
            << "; admin messages per move: " << model1.newalg_admin_per_move
            << "\n\n";

  // Lower publish rate: administrative traffic dominates and the Δ=1s /
  // Δ=10s curves separate clearly (the regime the paper's plot shows).
  std::cout << "part 1b — admin-dominated regime (100 notifications/s "
               "aggregate, otherwise identical):\n\n";
  auto m1b = model1;
  auto m10b = model10;
  m1b.publish_rate_hz = 100.0;
  m10b.publish_rate_hz = 100.0;
  std::cout << std::left << std::setw(8) << "t (s)" << std::right
            << std::setw(14) << "flooding" << std::setw(16) << "new, D=1s"
            << std::setw(16) << "new, D=10s" << std::setw(12) << "D-ratio"
            << "\n";
  for (double t : {10.0, 50.0, 100.0}) {
    const double fl = m1b.flooding_total(t);
    const double n1 = m1b.newalg_total(t);
    const double n10 = m10b.newalg_total(t);
    std::cout << std::left << std::setw(8) << t << std::right << std::fixed
              << std::setprecision(0) << std::setw(14) << fl << std::setw(16)
              << n1 << std::setw(16) << n10 << std::setw(11)
              << std::setprecision(2) << n1 / n10 << "x\n";
  }
  std::cout << "\n";

  // ---- part 2: simulator cross-check at reduced scale ----
  auto small_topo = net::Topology::balanced_tree(2, 4);  // 21 brokers
  auto small_graph = location::LocationGraph::grid(8, 8);
  std::vector<std::size_t> small_producers{20, 10, 6};

  analysis::Fig9Config vcfg;
  vcfg.topology = &small_topo;
  vcfg.consumer_broker = 0;
  vcfg.producer_brokers = small_producers;
  vcfg.locations = &small_graph;
  vcfg.profile = location::UncertaintyProfile::global_resub();
  vcfg.publish_rate_hz = 100.0;
  vcfg.delta = sim::seconds(1);
  const auto vmodel = analysis::build_message_model(vcfg);

  std::cout << "part 2 — simulator cross-check (21 brokers / 64 locations / "
               "100 notifications/s / 20 s):\n\n";
  std::cout << std::left << std::setw(22) << "" << std::right << std::setw(14)
            << "simulated" << std::setw(14) << "model" << std::setw(10)
            << "error" << "\n";

  const double horizon = 20.0;
  const auto flood_sim = simulate(small_topo, small_graph, true,
                                  sim::seconds(1), 100.0, horizon);
  const double flood_pred = vmodel.flooding_per_notification *
                            static_cast<double>(flood_sim.published);
  std::cout << std::left << std::setw(22) << "flooding notifications"
            << std::right << std::fixed << std::setprecision(0) << std::setw(14)
            << flood_sim.notifications << std::setw(14) << flood_pred
            << std::setw(9) << std::setprecision(1)
            << 100.0 * std::abs(flood_sim.notifications - flood_pred) / flood_pred
            << "%\n";

  const auto new_sim = simulate(small_topo, small_graph, false, sim::seconds(1),
                                100.0, horizon);
  const double new_pred = vmodel.newalg_per_notification *
                          static_cast<double>(new_sim.published);
  const double adm_pred =
      vmodel.newalg_admin_per_move * static_cast<double>(new_sim.moves);
  std::cout << std::left << std::setw(22) << "new alg notifications"
            << std::right << std::setprecision(0) << std::setw(14)
            << new_sim.notifications << std::setw(14) << new_pred << std::setw(9)
            << std::setprecision(1)
            << 100.0 * std::abs(new_sim.notifications - new_pred) /
                   std::max(new_pred, 1.0)
            << "%\n";
  std::cout << std::left << std::setw(22) << "new alg admin" << std::right
            << std::setprecision(0) << std::setw(14) << new_sim.admin
            << std::setw(14) << adm_pred << std::setw(9) << std::setprecision(1)
            << 100.0 * std::abs(new_sim.admin - adm_pred) /
                   std::max(adm_pred, 1.0)
            << "%\n";

  std::cout << "\nexpected shape: flooding 1-2 orders of magnitude above the "
               "new algorithm at every t; D=10s strictly below D=1s; model "
               "within ~10% of the simulator.\n";
  return 0;
}
