// Sharded intra-scenario execution: wall-clock scaling on a big overlay.
//
// One Scenario used to be single-threaded no matter how many cores the
// host had; sweeps only parallelized *across* seeds. This bench runs the
// identical declaration — a 13-broker tree under heavy content-routing
// load — through the sharded engine at shard counts 1, 2 and 4, timing
// the same ScenarioSweep each time, and verifies the acceptance
// contract on the way: the per-seed reports and the aggregate table must
// be byte-identical at every shard count.
//
//   bench_sharded_scaling [runs] [traffic_seconds]
#include <chrono>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <string>

#include "src/scenario/sweep.hpp"

using namespace rebeca;

namespace {

scenario::ScenarioSweep::Declare declare(double traffic_seconds) {
  return [traffic_seconds](scenario::ScenarioBuilder& b) {
    // 13 brokers: root, 3 inner, 9 leaves. Fixed delays keep the
    // lookahead at a full 5ms so windows stay fat.
    b.topology(scenario::TopologySpec::balanced_tree(2, 3));
    b.routing(routing::Strategy::covering);
    b.broker_link_delay(sim::DelayModel::fixed(sim::millis(5)));
    b.client_link_delay(sim::DelayModel::fixed(sim::millis(5)));

    // One consumer per leaf broker, each with a selective filter: most
    // routing work is matching that *fails* at inner brokers — the
    // broker-plane load sharding parallelizes.
    const char* syms[] = {"A", "B", "C"};
    for (std::size_t leaf = 0; leaf < 9; ++leaf) {
      b.client("consumer" + std::to_string(leaf))
          .with_id(static_cast<std::uint32_t>(10 + leaf))
          .at_broker(4 + leaf)
          .subscribes(filter::Filter()
                          .where("sym", filter::Constraint::eq(syms[leaf % 3]))
                          .where("px", filter::Constraint::range(
                                           static_cast<std::int64_t>(leaf * 10),
                                           static_cast<std::int64_t>(leaf * 10 + 200))));
    }
    for (std::size_t p = 0; p < 4; ++p) {
      b.client("producer" + std::to_string(p))
          .with_id(static_cast<std::uint32_t>(1 + p))
          .at_broker(p)  // root + the three inner brokers
          .publishes(scenario::PublishSpec()
                         .every(sim::micros(500))
                         .body(filter::Notification()
                                   .set("sym", syms[p % 3])
                                   .set("px", static_cast<std::int64_t>(p * 40)))
                         .from_phase("traffic")
                         .until_phase_end("traffic"));
    }
    b.phase("settle", sim::millis(500));
    b.phase("traffic", sim::seconds(traffic_seconds));
    b.phase("drain", sim::seconds(1));
  };
}

struct Timed {
  scenario::SweepResult result;
  double wall_ms = 0;
};

Timed run(const scenario::ScenarioSweep& sweep, scenario::SweepConfig cfg,
          std::size_t shards) {
  cfg.shards = shards;
  const auto t0 = std::chrono::steady_clock::now();
  Timed t{sweep.run(cfg), 0};
  t.wall_ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  scenario::SweepConfig cfg;
  cfg.base_seed = 7;
  cfg.runs = argc > 1 ? static_cast<std::size_t>(std::atol(argv[1])) : 2;
  const double traffic =
      argc > 2 ? std::atof(argv[2]) : 8.0;  // virtual seconds of load
  cfg.threads = 1;  // serialize runs: the bench isolates intra-run scaling

  scenario::ScenarioSweep sweep(declare(traffic));

  std::cout << "sharded scaling: 13-broker tree, 4 producers x 2k msg/s, "
               "9 selective consumers, " << cfg.runs << " seed(s), "
            << traffic << "s of traffic\n\n";
  std::cout << std::left << std::setw(10) << "shards" << std::setw(14)
            << "wall (ms)" << "speedup vs shards=1\n";

  const Timed base = run(sweep, cfg, 1);
  std::cout << std::left << std::setw(10) << 1 << std::setw(14) << std::fixed
            << std::setprecision(0) << base.wall_ms << "1.00x\n";

  bool identical = true;
  for (std::size_t shards : {2u, 4u}) {
    const Timed t = run(sweep, cfg, shards);
    std::cout << std::left << std::setw(10) << shards << std::setw(14)
              << std::fixed << std::setprecision(0) << t.wall_ms
              << std::setprecision(2) << base.wall_ms / t.wall_ms << "x\n";
    if (t.result.table() != base.result.table()) {
      identical = false;
      std::cout << "  !! aggregate table diverged from shards=1\n";
    }
    for (std::size_t i = 0; i < t.result.reports.size(); ++i) {
      if (t.result.reports[i].to_string() != base.result.reports[i].to_string()) {
        identical = false;
        std::cout << "  !! per-seed report " << i << " diverged\n";
      }
    }
  }

  std::cout << "\ndeterminism: per-seed reports "
            << (identical ? "byte-identical across shard counts"
                          : "DIVERGED — contract broken")
            << "\n";
  std::cout << "\nexpected shape: wall-clock drops as shards rise (the "
               "broker plane parallelizes; the client plane and window "
               "barriers bound the speedup), with identical reports.\n";
  return identical ? 0 : 1;
}
