// Ablation A5: routing-engine micro-benchmarks (google-benchmark) —
// forward-set computation per strategy as the subscription population
// grows, and end-to-end publish cost through a simulated broker chain.
#include <benchmark/benchmark.h>

#include <memory>

#include "src/broker/overlay.hpp"
#include "src/client/client.hpp"
#include "src/net/topology.hpp"
#include "src/routing/strategy.hpp"

using namespace rebeca;

namespace {

std::vector<routing::ForwardInput> make_inputs(std::size_t n) {
  std::vector<routing::ForwardInput> inputs;
  for (std::size_t i = 0; i < n; ++i) {
    filter::Filter f;
    f.where("service", filter::Constraint::eq("quote"));
    switch (i % 3) {
      case 0:
        f.where("px", filter::Constraint::lt(static_cast<int>(100 + i)));
        break;
      case 1:
        f.where("sym", filter::Constraint::eq("S" + std::to_string(i % 16)));
        break;
      default:
        f.where("px", filter::Constraint::range(
                          filter::Value(static_cast<int>(i)),
                          filter::Value(static_cast<int>(i + 40))));
        break;
    }
    inputs.push_back({std::move(f),
                      {SubKey{ClientId(static_cast<std::uint32_t>(i)), 1}}});
  }
  return inputs;
}

void BM_ForwardSet(benchmark::State& state, routing::Strategy strategy) {
  const auto inputs = make_inputs(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::compute_forward_set(strategy, inputs));
  }
}
BENCHMARK_CAPTURE(BM_ForwardSet, simple, routing::Strategy::simple)
    ->Arg(8)->Arg(64)->Arg(256);
BENCHMARK_CAPTURE(BM_ForwardSet, identity, routing::Strategy::identity)
    ->Arg(8)->Arg(64)->Arg(256);
BENCHMARK_CAPTURE(BM_ForwardSet, covering, routing::Strategy::covering)
    ->Arg(8)->Arg(64)->Arg(256);
BENCHMARK_CAPTURE(BM_ForwardSet, merging, routing::Strategy::merging)
    ->Arg(8)->Arg(64);

void BM_ForwardDiff(benchmark::State& state) {
  const auto inputs = make_inputs(static_cast<std::size_t>(state.range(0)));
  auto sent = routing::compute_forward_set(routing::Strategy::covering, inputs);
  auto inputs2 = inputs;
  inputs2.pop_back();
  auto target = routing::compute_forward_set(routing::Strategy::covering, inputs2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::diff_forward_sets(sent, target));
  }
}
BENCHMARK(BM_ForwardDiff)->Arg(64)->Arg(256);

/// End-to-end: one publish through an 8-broker chain with 32 consumers,
/// measured in simulated events per publish.
void BM_PublishThroughChain(benchmark::State& state) {
  const auto strategy = static_cast<routing::Strategy>(state.range(0));
  sim::Simulation sim(3);
  broker::OverlayConfig cfg;
  cfg.broker.strategy = strategy;
  broker::Overlay overlay(sim, net::Topology::chain(8), cfg);

  std::vector<std::unique_ptr<client::Client>> consumers;
  for (std::uint32_t i = 0; i < 32; ++i) {
    client::ClientConfig cc;
    cc.id = ClientId(i + 1);
    consumers.push_back(std::make_unique<client::Client>(sim, cc));
    overlay.connect_client(*consumers.back(), i % 8);
    filter::Filter f;
    f.where("sym", filter::Constraint::eq("S" + std::to_string(i % 4)));
    consumers.back()->subscribe(std::move(f));
  }
  client::ClientConfig pc;
  pc.id = ClientId(1000);
  client::Client producer(sim, pc);
  overlay.connect_client(producer, 7);
  sim.run_until(sim::seconds(1));

  int i = 0;
  for (auto _ : state) {
    producer.publish(
        filter::Notification().set("sym", "S" + std::to_string(i++ % 4)));
    sim.run_until(sim.now() + sim::millis(100));
  }
}
BENCHMARK(BM_PublishThroughChain)
    ->Arg(static_cast<int>(routing::Strategy::flooding))
    ->Arg(static_cast<int>(routing::Strategy::simple))
    ->Arg(static_cast<int>(routing::Strategy::covering));

}  // namespace

BENCHMARK_MAIN();
