// Ablation A5: routing-engine micro-benchmarks (google-benchmark) —
// forward-set computation per strategy as the subscription population
// grows, the per-hop forwarding decision under both matchers, and
// end-to-end publish cost through a simulated broker chain.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <memory>

#include "src/broker/overlay.hpp"
#include "src/client/client.hpp"
#include "src/net/topology.hpp"
#include "src/routing/cover_index.hpp"
#include "src/routing/match_index.hpp"
#include "src/routing/strategy.hpp"

using namespace rebeca;

namespace {

std::vector<routing::ForwardInput> make_inputs(std::size_t n) {
  std::vector<routing::ForwardInput> inputs;
  for (std::size_t i = 0; i < n; ++i) {
    filter::Filter f;
    f.where("service", filter::Constraint::eq("quote"));
    switch (i % 3) {
      case 0:
        f.where("px", filter::Constraint::lt(static_cast<int>(100 + i)));
        break;
      case 1:
        f.where("sym", filter::Constraint::eq("S" + std::to_string(i % 16)));
        break;
      default:
        f.where("px", filter::Constraint::range(
                          filter::Value(static_cast<int>(i)),
                          filter::Value(static_cast<int>(i + 40))));
        break;
    }
    inputs.push_back({std::move(f),
                      {SubKey{ClientId(static_cast<std::uint32_t>(i)), 1}}});
  }
  return inputs;
}

void BM_ForwardSet(benchmark::State& state, routing::Strategy strategy) {
  const auto inputs = make_inputs(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::compute_forward_set(strategy, inputs));
  }
}
BENCHMARK_CAPTURE(BM_ForwardSet, simple, routing::Strategy::simple)
    ->Arg(8)->Arg(64)->Arg(256);
BENCHMARK_CAPTURE(BM_ForwardSet, identity, routing::Strategy::identity)
    ->Arg(8)->Arg(64)->Arg(256);
BENCHMARK_CAPTURE(BM_ForwardSet, covering, routing::Strategy::covering)
    ->Arg(8)->Arg(64)->Arg(256);
BENCHMARK_CAPTURE(BM_ForwardSet, merging, routing::Strategy::merging)
    ->Arg(8)->Arg(64);

/// The per-hop forwarding decision — "does any of this link's table
/// entries match?" — over a table of N distinct filters, as the linear
/// scan and as a MatchIndex query. The >= 2x index advantage at >= 1k
/// filters is this redesign's acceptance bar (see also the HopMatch pair
/// in bench_micro_filters, which isolates the pure matching cost).
void BM_HopDecisionLinear(benchmark::State& state) {
  const auto inputs = make_inputs(static_cast<std::size_t>(state.range(0)));
  const auto fs = routing::compute_forward_set(routing::Strategy::simple, inputs);
  const auto n = filter::Notification()
                     .set("service", "quote")
                     .set("sym", "S7")
                     .set("px", 1000000);  // matches nothing: full scan
  for (auto _ : state) {
    const bool forward = std::any_of(fs.begin(), fs.end(), [&](const auto& e) {
      return e.first.matches(n);
    });
    benchmark::DoNotOptimize(forward);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_HopDecisionLinear)->Arg(64)->Arg(1024)->Arg(4096);

void BM_HopDecisionIndex(benchmark::State& state) {
  const auto inputs = make_inputs(static_cast<std::size_t>(state.range(0)));
  const auto fs = routing::compute_forward_set(routing::Strategy::simple, inputs);
  routing::MatchIndex index;
  for (const auto& [f, tags] : fs) index.add_remote(LinkId(1), f);
  const auto n = filter::Notification()
                     .set("service", "quote")
                     .set("sym", "S7")
                     .set("px", 1000000);
  routing::MatchHits hits;
  for (auto _ : state) {
    index.collect(n, hits);
    benchmark::DoNotOptimize(hits.links.empty());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_HopDecisionIndex)->Arg(64)->Arg(1024)->Arg(4096);

/// The admin-plane covering collapse — the O(n²) reference pairwise pass
/// vs the CoverEngine-backed pass. The >= 2x index advantage at >= 1k
/// filters is the covering-index acceptance bar.
void BM_CollapseCoveringLinear(benchmark::State& state) {
  const auto inputs = make_inputs(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        routing::compute_forward_set(routing::Strategy::covering, inputs));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_CollapseCoveringLinear)->Arg(64)->Arg(1024)->Arg(4096);

void BM_CollapseCoveringIndex(benchmark::State& state) {
  const auto inputs = make_inputs(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::compute_forward_set(
        routing::Strategy::covering, inputs, routing::AdminIndex::index));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_CollapseCoveringIndex)->Arg(64)->Arg(1024)->Arg(4096);

/// The re-expose query (answer_reexpose): every forwarding input a
/// narrow mover filter covers, as the linear covered_by scan over the
/// collapsed table vs one CoverIndex query.
void BM_CoveredByLinear(benchmark::State& state) {
  const auto inputs = make_inputs(static_cast<std::size_t>(state.range(0)));
  routing::ForwardSet fs;
  for (const auto& in : inputs) fs[in.f].insert(in.tags.begin(), in.tags.end());
  filter::Filter f;
  f.where("service", filter::Constraint::eq("quote"));
  f.where("px", filter::Constraint::lt(140));
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::covered_by(f, fs));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_CoveredByLinear)->Arg(64)->Arg(1024)->Arg(4096);

void BM_CoveredByIndex(benchmark::State& state) {
  const auto inputs = make_inputs(static_cast<std::size_t>(state.range(0)));
  routing::CoverIndex index;
  std::uint32_t i = 0;
  for (const auto& in : inputs) {
    index.upsert_remote(LinkId(1 + (i++ % 4)), in.f, in.tags);
  }
  filter::Filter f;
  f.where("service", filter::Constraint::eq("quote"));
  f.where("px", filter::Constraint::lt(140));
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.covered_inputs(f, LinkId(99)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_CoveredByIndex)->Arg(64)->Arg(1024)->Arg(4096);

/// A moveout burst (begin_moveout's planning step): the moveout program
/// for one key over a large hop table, linear tag scan vs the cover
/// index's per-link table walk.
void BM_MoveoutPlanLinear(benchmark::State& state) {
  const auto inputs = make_inputs(static_cast<std::size_t>(state.range(0)));
  const SubKey mover{ClientId(7), 1};
  routing::ForwardSet fs;
  std::size_t i = 0;
  for (const auto& in : inputs) {
    auto& tags = fs[in.f];
    tags.insert(in.tags.begin(), in.tags.end());
    if (i++ % 8 == 0) tags.insert(mover);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        routing::plan_moveout(routing::Strategy::covering, mover, fs));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_MoveoutPlanLinear)->Arg(64)->Arg(1024)->Arg(4096);

void BM_MoveoutPlanIndex(benchmark::State& state) {
  const auto inputs = make_inputs(static_cast<std::size_t>(state.range(0)));
  const SubKey mover{ClientId(7), 1};
  routing::CoverIndex index;
  std::size_t i = 0;
  for (const auto& in : inputs) {
    auto tags = in.tags;
    if (i++ % 8 == 0) tags.insert(mover);
    index.upsert_remote(LinkId(1), in.f, tags);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::plan_moveout(
        routing::Strategy::covering, index.tagged_filters(LinkId(1), mover)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_MoveoutPlanIndex)->Arg(64)->Arg(1024)->Arg(4096);

void BM_ForwardDiff(benchmark::State& state) {
  const auto inputs = make_inputs(static_cast<std::size_t>(state.range(0)));
  auto sent = routing::compute_forward_set(routing::Strategy::covering, inputs);
  auto inputs2 = inputs;
  inputs2.pop_back();
  auto target = routing::compute_forward_set(routing::Strategy::covering, inputs2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::diff_forward_sets(sent, target));
  }
}
BENCHMARK(BM_ForwardDiff)->Arg(64)->Arg(256);

/// End-to-end: one publish through an 8-broker chain with 32 consumers,
/// measured in simulated events per publish, under either matcher.
void BM_PublishThroughChain(benchmark::State& state) {
  const auto strategy = static_cast<routing::Strategy>(state.range(0));
  sim::Simulation sim(3);
  broker::OverlayConfig cfg;
  cfg.broker.strategy = strategy;
  cfg.broker.matcher = static_cast<broker::Matcher>(state.range(1));
  broker::Overlay overlay(sim, net::Topology::chain(8), cfg);

  std::vector<std::unique_ptr<client::Client>> consumers;
  for (std::uint32_t i = 0; i < 32; ++i) {
    client::ClientConfig cc;
    cc.id = ClientId(i + 1);
    consumers.push_back(std::make_unique<client::Client>(sim, cc));
    overlay.connect_client(*consumers.back(), i % 8);
    filter::Filter f;
    f.where("sym", filter::Constraint::eq("S" + std::to_string(i % 4)));
    consumers.back()->subscribe(std::move(f));
  }
  client::ClientConfig pc;
  pc.id = ClientId(1000);
  client::Client producer(sim, pc);
  overlay.connect_client(producer, 7);
  sim.run_until(sim::seconds(1));

  int i = 0;
  for (auto _ : state) {
    producer.publish(
        filter::Notification().set("sym", "S" + std::to_string(i++ % 4)));
    sim.run_until(sim.now() + sim::millis(100));
  }
}
BENCHMARK(BM_PublishThroughChain)
    ->ArgsProduct({{static_cast<long>(routing::Strategy::flooding),
                    static_cast<long>(routing::Strategy::simple),
                    static_cast<long>(routing::Strategy::covering)},
                   {static_cast<long>(broker::Matcher::linear),
                    static_cast<long>(broker::Matcher::index)}});

}  // namespace

BENCHMARK_MAIN();
