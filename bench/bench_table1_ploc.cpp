// Reproduces paper Table 1: "Values of ploc(x, t) for the example
// setting" — the movement graph of Fig. 7 (a–b, a–c, b–d, c–d).
//
// Part 1 prints the paper's exact analytic table:
//   t=0:  {a}        {b}        {c}        {d}
//   t=1:  {a,b,c}    {a,b,d}    {a,c,d}    {b,c,d}
//   t=2:  {a,b,c,d}  ...        (all locations)
//   t=3:  {a,b,c,d}  ...        (all locations)
//
// Part 2 is the simulation cross-check, ported off the old single-seed
// run onto ScenarioSweep (the fig-bench pattern): a location-dependent
// consumer walks the Fig. 7 graph randomly over a broker chain with
// stochastic link delays, its per-hop uncertainty profile set to Table
// 1's rows (q_i = i). A sweep probe reads the realized installed
// location-set sizes per hop — the live network's materialization of
// the ploc(x, t) column widths — reported as mean ± 95% CI over seeds.
//
//   bench_table1_ploc [runs] [threads]
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "src/location/profile.hpp"
#include "src/scenario/sweep.hpp"

using namespace rebeca;

namespace {

constexpr std::size_t kBrokers = 4;  // chain B0..B3: hops carry F1..F4

std::string set_to_string(const location::LocationGraph& g,
                          const location::LocationSet& s) {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (auto id : s) {
    if (!first) os << ",";
    os << g.name(id);
    first = false;
  }
  os << "}";
  return os.str();
}

void declare(scenario::ScenarioBuilder& b) {
  b.topology(scenario::TopologySpec::chain(kBrokers));
  b.locations(scenario::LocationSpec::paper_fig7());
  b.broker_link_delay(sim::DelayModel::uniform(sim::millis(2), sim::millis(6)));
  b.client_link_delay(
      sim::DelayModel::uniform(sim::micros(500), sim::micros(1500)));

  // Table 1's rows as the per-hop profile: hop i widens by q_i = i steps.
  location::LdSpec spec;
  spec.profile = location::UncertaintyProfile::explicit_steps({0, 1, 2, 3});
  b.client("consumer")
      .with_id(1)
      .at_broker(0)
      .starts_at("a")
      .subscribes(spec)
      .walks(scenario::WalkSpec()
                 .residing(sim::millis(200))
                 .moves(20)
                 .from_phase("walk"));

  b.client("producer")
      .with_id(2)
      .at_broker(kBrokers - 1)
      .publishes(scenario::PublishSpec()
                     .every(sim::millis(20))
                     .body(filter::Notification().set("service", "s"))
                     .uniform_locations()
                     .count(250)
                     .from_phase("walk"));

  b.phase("settle", sim::seconds(1));
  b.phase("walk", sim::seconds(5));
  b.phase("drain", sim::seconds(2));
}

/// Realized ploc widths: broker i holds F_{i+1}, the consumer's location
/// ball widened by q_{i+1} = i+1 movement steps (4 locations saturate at
/// radius 2, Table 1's t >= 2 rows).
void ball_probe(scenario::Scenario& s, std::map<std::string, double>& m) {
  const SubKey key{ClientId(1), 1};
  for (std::size_t i = 0; i < kBrokers; ++i) {
    auto set = s.overlay().broker(i).ld_concrete_set(key);
    m["ploc_hop" + std::to_string(i + 1)] =
        set.has_value() ? static_cast<double>(set->size()) : 0.0;
  }
}

}  // namespace

int main(int argc, char** argv) {
  // ---- part 1: the paper's exact table ----
  auto g = location::LocationGraph::paper_fig7();

  std::cout << "Table 1 part 1 — analytic: values of ploc(x, t) on the "
               "Fig. 7 movement graph\n";
  std::cout << std::left << std::setw(4) << "t";
  for (const char* x : {"a", "b", "c", "d"}) {
    std::cout << std::setw(12) << (std::string("x = ") + x);
  }
  std::cout << "\n";

  for (std::size_t t = 0; t <= 3; ++t) {
    std::cout << std::left << std::setw(4) << t;
    for (const char* x : {"a", "b", "c", "d"}) {
      std::cout << std::setw(12) << set_to_string(g, g.ploc(g.id_of(x), t));
    }
    std::cout << "\n";
  }

  std::cout << "\npaper row t=1 check: ploc(a,1)={a,b,c} "
            << (set_to_string(g, g.ploc(g.id_of("a"), 1)) == "{a,b,c}" ? "OK"
                                                                       : "MISMATCH")
            << "\n\n";

  // ---- part 2: simulation cross-check, swept over stochastic seeds ----
  scenario::SweepConfig cfg;
  cfg.base_seed = 2;
  cfg.runs = argc > 1 ? static_cast<std::size_t>(std::atol(argv[1])) : 8;
  cfg.threads = argc > 2 ? static_cast<std::size_t>(std::atol(argv[2])) : 0;

  scenario::ScenarioSweep sweep(declare);
  sweep.probe(ball_probe);
  const scenario::SweepResult r = sweep.run(cfg);

  std::cout << "Table 1 part 2 — simulated: LD consumer random-walking the "
               "Fig. 7 graph over a " << kBrokers
            << "-broker chain, profile q_i = i\n(realized installed "
               "location-set sizes per hop, mean ± 95% CI over "
            << cfg.runs << " seeds)\n\n";
  std::cout << std::left << std::setw(10) << "hop i" << std::right
            << std::setw(14) << "|ploc| at B_i" << std::setw(16)
            << "analytic width" << "\n";
  for (std::size_t i = 1; i <= kBrokers; ++i) {
    // The analytic width of row q_i for a mid-walk location: |ploc(x, i)|
    // is location-independent on Fig. 7 at every radius (1 -> 3 -> 4 -> 4).
    const std::size_t analytic = g.ploc(g.id_of("a"), i).size();
    std::cout << std::left << std::setw(10) << i << std::right << std::setw(14)
              << r.stats("ploc_hop" + std::to_string(i)).mean_ci()
              << std::setw(16) << analytic << "\n";
  }
  std::cout << "\nreading: each hop's realized set matches Table 1's row for "
               "its q_i — saturation at 4 locations from hop 2 on, exactly "
               "the paper's t >= 2 rows; delivery completeness rides on "
               "these sets ("
            << r.stats("client.consumer.delivered").mean_ci() << " delivered, "
            << r.stats("client.consumer.filtered").mean_ci()
            << " client-side filtered per seed).\n";
  return 0;
}
