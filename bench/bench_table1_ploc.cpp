// Reproduces paper Table 1: "Values of ploc(x, t) for the example
// setting" — the movement graph of Fig. 7 (a–b, a–c, b–d, c–d).
//
// Expected output (the paper's exact table):
//   t=0:  {a}        {b}        {c}        {d}
//   t=1:  {a,b,c}    {a,b,d}    {a,c,d}    {b,c,d}
//   t=2:  {a,b,c,d}  ...        (all locations)
//   t=3:  {a,b,c,d}  ...        (all locations)
#include <iomanip>
#include <iostream>
#include <sstream>

#include "src/location/location_graph.hpp"

using namespace rebeca;

namespace {

std::string set_to_string(const location::LocationGraph& g,
                          const location::LocationSet& s) {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (auto id : s) {
    if (!first) os << ",";
    os << g.name(id);
    first = false;
  }
  os << "}";
  return os.str();
}

}  // namespace

int main() {
  auto g = location::LocationGraph::paper_fig7();

  std::cout << "Table 1: values of ploc(x, t) on the Fig. 7 movement graph\n";
  std::cout << std::left << std::setw(4) << "t";
  for (const char* x : {"a", "b", "c", "d"}) {
    std::cout << std::setw(12) << (std::string("x = ") + x);
  }
  std::cout << "\n";

  for (std::size_t t = 0; t <= 3; ++t) {
    std::cout << std::left << std::setw(4) << t;
    for (const char* x : {"a", "b", "c", "d"}) {
      std::cout << std::setw(12) << set_to_string(g, g.ploc(g.id_of(x), t));
    }
    std::cout << "\n";
  }

  std::cout << "\npaper row t=1 check: ploc(a,1)={a,b,c} "
            << (set_to_string(g, g.ploc(g.id_of("a"), 1)) == "{a,b,c}" ? "OK"
                                                                       : "MISMATCH")
            << "\n";
  return 0;
}
