// Ablation A1 (paper Sec. 2.2): routing-table sizes and administrative
// traffic under the routing strategies — simple, identity, covering,
// merging — on a workload of overlapping subscriptions. Reproduces the
// claim that covering "significantly decreas[es] the table size" and
// that merging forwards only the merged cover.
//
// Each cell is a scenario declaration: the consumer population is a
// loop over declarative client specs; the strategy is one builder knob.
#include <iomanip>
#include <iostream>
#include <string>

#include "src/scenario/scenario.hpp"

using namespace rebeca;

namespace {

struct Result {
  std::size_t table_entries = 0;   // distinct filters in routing tables
  std::size_t table_tags = 0;      // per-subscription rows (simple routing)
  std::uint64_t admin_messages = 0;
  std::uint64_t notification_hops = 0;
  std::uint64_t delivered = 0;
};

filter::Filter consumer_filter(std::size_t i) {
  // Heavily overlapping filters: many are covered by broader colleagues,
  // pairs are mergeable.
  filter::Filter f;
  f.where("service", filter::Constraint::eq("quote"));
  switch (i % 4) {
    case 0:  // broad
      f.where("px", filter::Constraint::lt(1000));
      break;
    case 1:  // covered by case 0
      f.where("px", filter::Constraint::lt(static_cast<int>(10 + i)));
      break;
    case 2:  // mergeable siblings
      f.where("sym", filter::Constraint::eq("A" + std::to_string(i % 8)));
      break;
    default:  // range, partially overlapping
      f.where("px", filter::Constraint::range(filter::Value(static_cast<int>(i)),
                                              filter::Value(static_cast<int>(i + 50))));
      break;
  }
  return f;
}

Result run(routing::Strategy strategy, std::size_t consumers) {
  scenario::ScenarioBuilder b;
  b.seed(13)
      .topology(scenario::TopologySpec::balanced_tree(2, 3))  // 13 brokers
      .routing(strategy);

  // Consumers at leaves.
  for (std::size_t i = 0; i < consumers; ++i) {
    b.client("consumer" + std::to_string(i))
        .with_id(static_cast<std::uint32_t>(i + 1))
        .at_broker(4 + (i % 9))
        .subscribes(consumer_filter(i));
  }
  // One publisher exercising the tables after the subscriptions settle.
  b.client("producer").with_id(1000).at_broker(0);

  b.phase("subscribe", sim::seconds(5));
  b.phase("publish", sim::seconds(2), [](scenario::Scenario& s) {
    for (int i = 0; i < 100; ++i) {
      s.client("producer")
          .publish(filter::Notification()
                       .set("service", "quote")
                       .set("sym", "A" + std::to_string(i % 8))
                       .set("px", i * 13 % 300));
    }
  });

  auto s = b.build();
  s->run();

  Result r;
  for (std::size_t i = 0; i < s->topology().broker_count(); ++i) {
    r.table_entries += s->overlay().broker(i).routing_entry_count();
    r.table_tags += s->overlay().broker(i).routing_tag_count();
  }
  const scenario::ScenarioReport rep = s->report();
  r.admin_messages = rep.messages.count(metrics::MessageClass::subscription_admin);
  r.notification_hops = rep.messages.count(metrics::MessageClass::notification);
  r.delivered = rep.delivered;
  return r;
}

}  // namespace

int main() {
  std::cout << "A1: routing strategies — table sizes and admin traffic\n"
            << "(13-broker tree, overlapping subscriptions; paper Sec. 2.2)\n\n";
  std::cout << std::left << std::setw(12) << "strategy" << std::setw(12)
            << "consumers" << std::right << std::setw(14) << "table entries"
            << std::setw(12) << "table rows" << std::setw(12) << "admin msg"
            << std::setw(12) << "notif hops" << std::setw(12) << "delivered"
            << "\n";

  for (std::size_t consumers : {8u, 24u, 48u}) {
    for (auto strategy :
         {routing::Strategy::simple, routing::Strategy::identity,
          routing::Strategy::covering, routing::Strategy::merging}) {
      const auto r = run(strategy, consumers);
      std::cout << std::left << std::setw(12) << routing::strategy_name(strategy)
                << std::setw(12) << consumers << std::right << std::setw(14)
                << r.table_entries << std::setw(12) << r.table_tags
                << std::setw(12) << r.admin_messages << std::setw(12)
                << r.notification_hops << std::setw(12) << r.delivered << "\n";
    }
    std::cout << "\n";
  }

  std::cout << "expected shape: identical 'delivered' in every row "
               "(strategies are delivery-equivalent); table entries shrink "
               "simple -> identity -> covering -> merging, and covering "
               "roughly halves admin traffic. Merging trades some admin "
               "churn (re-merging on arrival order) for the smallest "
               "tables.\n";
  return 0;
}
