// Ablation A1 (paper Sec. 2.2): routing-table sizes and administrative
// traffic under the routing strategies — simple, identity, covering,
// merging — on a workload of overlapping subscriptions. Reproduces the
// claim that covering "significantly decreas[es] the table size" and
// that merging forwards only the merged cover.
#include <iomanip>
#include <iostream>
#include <memory>

#include "src/broker/overlay.hpp"
#include "src/client/client.hpp"
#include "src/net/topology.hpp"

using namespace rebeca;

namespace {

struct Result {
  std::size_t table_entries = 0;   // distinct filters in routing tables
  std::size_t table_tags = 0;      // per-subscription rows (simple routing)
  std::uint64_t admin_messages = 0;
  std::uint64_t notification_hops = 0;
  std::size_t delivered = 0;
};

Result run(routing::Strategy strategy, std::size_t consumers) {
  sim::Simulation sim(13);
  broker::OverlayConfig cfg;
  cfg.broker.strategy = strategy;
  broker::Overlay overlay(sim, net::Topology::balanced_tree(2, 3), cfg);  // 13 brokers

  // Consumers at leaves, with heavily overlapping filters: many are
  // covered by broader colleagues, pairs are mergeable.
  std::vector<std::unique_ptr<client::Client>> clients;
  for (std::size_t i = 0; i < consumers; ++i) {
    client::ClientConfig cc;
    cc.id = ClientId(static_cast<std::uint32_t>(i + 1));
    clients.push_back(std::make_unique<client::Client>(sim, cc));
    overlay.connect_client(*clients.back(), 4 + (i % 9));
    filter::Filter f;
    f.where("service", filter::Constraint::eq("quote"));
    switch (i % 4) {
      case 0:  // broad
        f.where("px", filter::Constraint::lt(1000));
        break;
      case 1:  // covered by case 0
        f.where("px", filter::Constraint::lt(static_cast<int>(10 + i)));
        break;
      case 2:  // mergeable siblings
        f.where("sym", filter::Constraint::eq("A" + std::to_string(i % 8)));
        break;
      default:  // range, partially overlapping
        f.where("px", filter::Constraint::range(filter::Value(static_cast<int>(i)),
                                                filter::Value(static_cast<int>(i + 50))));
        break;
    }
    clients.back()->subscribe(f);
  }
  sim.run_until(sim::seconds(5));
  const auto admin =
      overlay.counters().count(metrics::MessageClass::subscription_admin);

  // One publisher exercising the tables.
  client::ClientConfig pc;
  pc.id = ClientId(1000);
  client::Client producer(sim, pc);
  overlay.connect_client(producer, 0);
  for (int i = 0; i < 100; ++i) {
    producer.publish(filter::Notification()
                         .set("service", "quote")
                         .set("sym", "A" + std::to_string(i % 8))
                         .set("px", i * 13 % 300));
  }
  sim.run_until(sim.now() + sim::seconds(2));

  Result r;
  for (std::size_t b = 0; b < overlay.broker_count(); ++b) {
    r.table_entries += overlay.broker(b).routing_entry_count();
    r.table_tags += overlay.broker(b).routing_tag_count();
  }
  r.admin_messages = admin;
  r.notification_hops =
      overlay.counters().count(metrics::MessageClass::notification);
  for (const auto& c : clients) r.delivered += c->deliveries().size();
  return r;
}

}  // namespace

int main() {
  std::cout << "A1: routing strategies — table sizes and admin traffic\n"
            << "(13-broker tree, overlapping subscriptions; paper Sec. 2.2)\n\n";
  std::cout << std::left << std::setw(12) << "strategy" << std::setw(12)
            << "consumers" << std::right << std::setw(14) << "table entries"
            << std::setw(12) << "table rows" << std::setw(12) << "admin msg"
            << std::setw(12) << "notif hops" << std::setw(12) << "delivered"
            << "\n";

  std::size_t delivered_reference = 0;
  for (std::size_t consumers : {8u, 24u, 48u}) {
    for (auto strategy :
         {routing::Strategy::simple, routing::Strategy::identity,
          routing::Strategy::covering, routing::Strategy::merging}) {
      const auto r = run(strategy, consumers);
      std::cout << std::left << std::setw(12) << routing::strategy_name(strategy)
                << std::setw(12) << consumers << std::right << std::setw(14)
                << r.table_entries << std::setw(12) << r.table_tags
                << std::setw(12) << r.admin_messages << std::setw(12)
                << r.notification_hops << std::setw(12) << r.delivered << "\n";
      if (delivered_reference == 0) delivered_reference = r.delivered;
    }
    std::cout << "\n";
  }

  std::cout << "expected shape: identical 'delivered' in every row "
               "(strategies are delivery-equivalent); table entries shrink "
               "simple -> identity -> covering -> merging, and covering "
               "roughly halves admin traffic. Merging trades some admin "
               "churn (re-merging on arrival order) for the smallest "
               "tables.\n";
  return 0;
}
