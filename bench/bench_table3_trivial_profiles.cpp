// Reproduces paper Table 3: ploc instantiations of the two trivial
// schemes — global sub/unsub (top) and flooding with client-side
// filtering (bottom) — on the Fig. 7 movement graph, demonstrating that
// both are instances of the ploc abstraction (paper Sec. 5.2/5.3).
//
// Part 1 prints the analytic tables. Part 2 is the simulation
// cross-check on ScenarioSweep: an LD consumer random-walks the Fig. 7
// graph over a broker chain under each trivial profile, and a sweep
// probe reads the realized installed location-set widths per hop (mean
// ± 95% CI over seeds) — global sub/unsub must realize the 1-step ball
// at every hop, flooding the full location set.
//
//   bench_table3_trivial_profiles [runs] [threads]
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "src/location/ld_spec.hpp"
#include "src/location/location_graph.hpp"
#include "src/location/profile.hpp"
#include "src/scenario/sweep.hpp"

using namespace rebeca;

namespace {

constexpr std::size_t kBrokers = 4;  // chain B0..B3: hops carry F1..F4

std::string set_to_string(const location::LocationGraph& g,
                          const location::LocationSet& s) {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (auto id : s) {
    if (!first) os << ",";
    os << g.name(id);
    first = false;
  }
  os << "}";
  return os.str();
}

void print_table(const location::LocationGraph& g,
                 const location::UncertaintyProfile& profile,
                 const std::string& title) {
  location::LdSpec spec;
  spec.profile = profile;
  std::cout << title << "\n";
  std::cout << std::left << std::setw(4) << "t";
  for (const char* x : {"a", "b", "c", "d"}) {
    std::cout << std::setw(12) << (std::string("x = ") + x);
  }
  std::cout << "\n";
  for (std::size_t t = 0; t <= 3; ++t) {
    std::cout << std::left << std::setw(4) << t;
    for (const char* x : {"a", "b", "c", "d"}) {
      std::cout << std::setw(12)
                << set_to_string(g, spec.concrete_set(g, g.id_of(x), t));
    }
    std::cout << "\n";
  }
  std::cout << "\n";
}

scenario::ScenarioSweep::Declare declare_with(
    const location::UncertaintyProfile& profile) {
  return [profile](scenario::ScenarioBuilder& b) {
    b.topology(scenario::TopologySpec::chain(kBrokers));
    b.locations(scenario::LocationSpec::paper_fig7());
    b.broker_link_delay(
        sim::DelayModel::uniform(sim::millis(2), sim::millis(6)));
    b.client_link_delay(
        sim::DelayModel::uniform(sim::micros(500), sim::micros(1500)));

    location::LdSpec spec;
    spec.profile = profile;
    b.client("consumer")
        .with_id(1)
        .at_broker(0)
        .starts_at("a")
        .subscribes(spec)
        .walks(scenario::WalkSpec()
                   .residing(sim::millis(200))
                   .moves(20)
                   .from_phase("walk"));

    b.client("producer")
        .with_id(2)
        .at_broker(kBrokers - 1)
        .publishes(scenario::PublishSpec()
                       .every(sim::millis(20))
                       .body(filter::Notification().set("service", "s"))
                       .uniform_locations()
                       .count(250)
                       .from_phase("walk"));

    b.phase("settle", sim::seconds(1));
    b.phase("walk", sim::seconds(5));
    b.phase("drain", sim::seconds(2));
  };
}

/// Realized ploc widths: broker i-1 holds filter F_i of Fig. 6.
void ball_probe(scenario::Scenario& s, std::map<std::string, double>& m) {
  const SubKey key{ClientId(1), 1};
  for (std::size_t i = 0; i < kBrokers; ++i) {
    auto set = s.overlay().broker(i).ld_concrete_set(key);
    m["ploc_hop" + std::to_string(i + 1)] =
        set.has_value() ? static_cast<double>(set->size()) : 0.0;
  }
}

void run_swept(const location::LocationGraph& g,
               const location::UncertaintyProfile& profile,
               const std::string& title, const scenario::SweepConfig& cfg) {
  scenario::ScenarioSweep sweep(declare_with(profile));
  sweep.probe(ball_probe);
  const scenario::SweepResult r = sweep.run(cfg);

  location::LdSpec spec;
  spec.profile = profile;
  std::cout << title << " (mean ± 95% CI over " << cfg.runs << " seeds)\n";
  std::cout << std::left << std::setw(10) << "hop i" << std::right
            << std::setw(14) << "|ploc| at B_i" << std::setw(16)
            << "analytic width" << "\n";
  for (std::size_t i = 1; i <= kBrokers; ++i) {
    // The width is location-independent on Fig. 7 for both trivial
    // schemes (every location has degree 2).
    const std::size_t analytic = spec.concrete_set(g, g.id_of("a"), i).size();
    std::cout << std::left << std::setw(10) << i << std::right << std::setw(14)
              << r.stats("ploc_hop" + std::to_string(i)).mean_ci()
              << std::setw(16) << analytic << "\n";
  }
  std::cout << "delivery: " << r.stats("client.consumer.delivered").mean_ci()
            << " delivered, "
            << r.stats("client.consumer.filtered").mean_ci()
            << " client-side filtered per seed\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  auto g = location::LocationGraph::paper_fig7();

  // ---- part 1: the paper's exact analytic tables ----
  std::cout << "Table 3 part 1 — analytic: ploc(x,t) of the two trivial "
               "implementations\n\n";
  print_table(g, location::UncertaintyProfile::global_resub(),
              "(top) global sub/unsub — one step of lookahead everywhere:");
  print_table(g, location::UncertaintyProfile::flooding(),
              "(bottom) flooding with client-side filtering:");

  // ---- part 2: simulation cross-check, swept over stochastic seeds ----
  scenario::SweepConfig cfg;
  cfg.base_seed = 3;
  cfg.runs = argc > 1 ? static_cast<std::size_t>(std::atol(argv[1])) : 8;
  cfg.threads = argc > 2 ? static_cast<std::size_t>(std::atol(argv[2])) : 0;

  std::cout << "Table 3 part 2 — simulated: LD consumer random-walking "
               "Fig. 7 over a "
            << kBrokers << "-broker chain\n\n";
  run_swept(g, location::UncertaintyProfile::global_resub(),
            "(top) global sub/unsub — every hop realizes the 1-step ball",
            cfg);
  run_swept(g, location::UncertaintyProfile::flooding(),
            "(bottom) flooding — every hop realizes the full location set",
            cfg);
  return 0;
}
