// Reproduces paper Table 3: ploc instantiations of the two trivial
// schemes — global sub/unsub (top) and flooding with client-side
// filtering (bottom) — on the Fig. 7 movement graph, demonstrating that
// both are instances of the ploc abstraction (paper Sec. 5.2/5.3).
#include <iomanip>
#include <iostream>
#include <sstream>

#include "src/location/ld_spec.hpp"
#include "src/location/location_graph.hpp"
#include "src/location/profile.hpp"

using namespace rebeca;

namespace {

std::string set_to_string(const location::LocationGraph& g,
                          const location::LocationSet& s) {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (auto id : s) {
    if (!first) os << ",";
    os << g.name(id);
    first = false;
  }
  os << "}";
  return os.str();
}

void print_table(const location::LocationGraph& g,
                 const location::UncertaintyProfile& profile,
                 const std::string& title) {
  location::LdSpec spec;
  spec.profile = profile;
  std::cout << title << "\n";
  std::cout << std::left << std::setw(4) << "t";
  for (const char* x : {"a", "b", "c", "d"}) {
    std::cout << std::setw(12) << (std::string("x = ") + x);
  }
  std::cout << "\n";
  for (std::size_t t = 0; t <= 3; ++t) {
    std::cout << std::left << std::setw(4) << t;
    for (const char* x : {"a", "b", "c", "d"}) {
      std::cout << std::setw(12)
                << set_to_string(g, spec.concrete_set(g, g.id_of(x), t));
    }
    std::cout << "\n";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  auto g = location::LocationGraph::paper_fig7();
  std::cout << "Table 3: ploc(x,t) of the two trivial implementations\n\n";
  print_table(g, location::UncertaintyProfile::global_resub(),
              "(top) global sub/unsub — one step of lookahead everywhere:");
  print_table(g, location::UncertaintyProfile::flooding(),
              "(bottom) flooding with client-side filtering:");
  return 0;
}
