// Reproduces paper Fig. 4: the epoch-based QoS definition for logical
// mobility — "on change of location from y to z, all notifications
// should be delivered to the consumer *as if* flooding were used".
//
// The bench runs the identical deterministic workload twice — once with
// the location-dependent machinery, once with flooding + client-side
// filtering (the reference semantics) — and diffs the delivered sets,
// per uncertainty profile and movement speed.
#include <iomanip>
#include <iostream>
#include <memory>
#include <set>

#include "src/broker/overlay.hpp"
#include "src/client/client.hpp"
#include "src/net/topology.hpp"

using namespace rebeca;

namespace {

std::multiset<std::uint64_t> run(bool ld_mode,
                                 const location::UncertaintyProfile& profile,
                                 sim::Duration delta, std::uint64_t seed) {
  auto graph = location::LocationGraph::grid(5, 5);
  sim::Simulation sim(seed);
  broker::OverlayConfig cfg;
  cfg.broker.locations = &graph;
  broker::Overlay overlay(sim, net::Topology::chain(4), cfg);

  client::ClientConfig cc;
  cc.id = ClientId(1);
  cc.locations = &graph;
  client::Client consumer(sim, cc);
  overlay.connect_client(consumer, 0);
  consumer.move_to("g0_0");

  location::LdSpec spec;
  spec.vicinity_radius = 1;
  spec.profile = ld_mode ? profile : location::UncertaintyProfile::flooding();
  consumer.subscribe(spec);

  client::ClientConfig pc;
  pc.id = ClientId(2);
  client::Client producer(sim, pc);
  overlay.connect_client(producer, 3);

  sim.run_until(sim::seconds(1));

  // Deterministic workload (independent of the two modes' RNG usage).
  util::Rng wl(seed * 7919);
  LocationId at = graph.id_of("g0_0");
  for (int m = 1; m <= 20; ++m) {
    const auto& nbrs = graph.neighbors(at);
    at = nbrs[wl.index(nbrs.size())];
    sim.schedule_at(sim::seconds(1) + delta * m,
                    [&consumer, at] { consumer.move_to(at); });
  }
  for (int i = 0; i < 600; ++i) {
    const auto where =
        graph.name(LocationId(static_cast<std::uint32_t>(wl.index(graph.size()))));
    sim.schedule_at(sim::seconds(1) + sim::millis(7.0 * i + 3.0),
                    [&producer, where] {
                      producer.publish(filter::Notification()
                                           .set("service", "s")
                                           .set("location", where));
                    });
  }
  sim.run_until(sim::seconds(1) + delta * 25 + sim::seconds(5));

  std::multiset<std::uint64_t> ids;
  for (const auto& d : consumer.deliveries()) ids.insert(d.notification.id().value());
  return ids;
}

}  // namespace

int main() {
  std::cout << "Fig. 4: epoch QoS — location-dependent delivery vs. the "
               "flooding reference on identical workloads\n\n";
  std::cout << std::left << std::setw(16) << "profile" << std::setw(12)
            << "delta (ms)" << std::setw(12) << "LD recv" << std::setw(12)
            << "flood recv" << std::setw(10) << "missing" << std::setw(10)
            << "extra" << "\n";

  struct Case {
    const char* name;
    location::UncertaintyProfile profile;
    double delta_ms;
  };
  const Case cases[] = {
      {"global-resub", location::UncertaintyProfile::global_resub(), 400.0},
      {"global-resub", location::UncertaintyProfile::global_resub(), 150.0},
      {"adaptive", location::UncertaintyProfile::adaptive(
                       sim::millis(400), {sim::millis(12), sim::millis(10),
                                          sim::millis(10)}),
       400.0},
      {"flooding", location::UncertaintyProfile::flooding(), 100.0},
  };

  for (const auto& c : cases) {
    const auto delta = sim::millis(c.delta_ms);
    const auto ld = run(true, c.profile, delta, 3);
    const auto fl = run(false, c.profile, delta, 3);
    std::size_t missing = 0, extra = 0;
    for (auto id : fl) {
      if (ld.count(id) < fl.count(id)) ++missing;
    }
    std::multiset<std::uint64_t> diff;
    for (auto id : ld) {
      if (fl.count(id) < ld.count(id)) ++extra;
    }
    std::cout << std::left << std::setw(16) << c.name << std::setw(12)
              << c.delta_ms << std::setw(12) << ld.size() << std::setw(12)
              << fl.size() << std::setw(10) << missing << std::setw(10) << extra
              << "\n";
  }

  std::cout << "\nexpected shape: with a sufficient uncertainty horizon the "
               "LD run delivers exactly the flooding reference (missing = "
               "extra = 0); only if the client outruns the horizon do "
               "epochs go missing (the paper's starvation caveat).\n";
  return 0;
}
