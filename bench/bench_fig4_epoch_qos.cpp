// Reproduces paper Fig. 4: the epoch-based QoS definition for logical
// mobility — "on change of location from y to z, all notifications
// should be delivered to the consumer *as if* flooding were used".
//
// Each scenario carries *two* consumers walking identically (same walk
// seed): one under the uncertainty profile being evaluated, one under
// flooding + client-side filtering — the reference semantics. A sweep
// probe diffs their delivered multisets per seed, so the columns are
// mean ± 95% CI over stochastic seeds, matching fig2/fig3.
//
//   bench_fig4_epoch_qos [runs] [threads]
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <map>
#include <set>
#include <sstream>

#include "src/scenario/sweep.hpp"

using namespace rebeca;

namespace {

scenario::ScenarioSweep::Declare declare(
    const location::UncertaintyProfile& profile, sim::Duration delta) {
  return [profile, delta](scenario::ScenarioBuilder& b) {
    b.topology(scenario::TopologySpec::chain(4));
    b.locations(scenario::LocationSpec::grid(5, 5));
    b.broker_link_delay(sim::DelayModel::uniform(sim::millis(3), sim::millis(7)));
    b.client_link_delay(
        sim::DelayModel::uniform(sim::micros(500), sim::micros(1500)));

    const auto walker = [&](const char* name, std::uint32_t id,
                            const location::UncertaintyProfile& p) {
      location::LdSpec spec;
      spec.vicinity_radius = 1;
      spec.profile = p;
      // Identical walk seeds: the two consumers trace the same route at
      // the same instants, so their delivered sets are comparable.
      b.client(name)
          .with_id(id)
          .at_broker(0)
          .starts_at("g0_0")
          .subscribes(spec)
          .walks(scenario::WalkSpec()
                     .residing(delta)
                     .moves(20)
                     .with_seed(99)
                     .from_phase("move"));
    };
    walker("ld", 1, profile);
    walker("ref", 2, location::UncertaintyProfile::flooding());

    b.client("producer")
        .with_id(3)
        .at_broker(3)
        .publishes(scenario::PublishSpec()
                       .every(sim::millis(7))
                       .body(filter::Notification().set("service", "s"))
                       .uniform_locations()
                       .count(600)
                       .from_phase("move"));

    b.phase("settle", sim::seconds(1));
    b.phase("move", delta * 25);
    b.phase("drain", sim::seconds(5));
  };
}

/// Delivered-notification multiset of one scenario client.
std::multiset<std::uint64_t> delivered_ids(scenario::Scenario& s,
                                           const std::string& name) {
  std::multiset<std::uint64_t> ids;
  for (const auto& d : s.client(name).deliveries()) {
    ids.insert(d.notification.id().value());
  }
  return ids;
}

void epoch_probe(scenario::Scenario& s, std::map<std::string, double>& m) {
  const auto ld = delivered_ids(s, "ld");
  const auto ref = delivered_ids(s, "ref");
  std::size_t missing = 0;
  for (auto id : ref) {
    if (ld.count(id) < ref.count(id)) ++missing;
  }
  std::size_t extra = 0;
  for (auto id : ld) {
    if (ref.count(id) < ld.count(id)) ++extra;
  }
  m["epoch_missing"] = static_cast<double>(missing);
  m["epoch_extra"] = static_cast<double>(extra);
}

std::string cell(const scenario::SweepResult& r, const char* metric) {
  return r.stats(metric).mean_ci();
}

}  // namespace

int main(int argc, char** argv) {
  scenario::SweepConfig cfg;
  cfg.base_seed = 3;
  cfg.runs = argc > 1 ? static_cast<std::size_t>(std::atol(argv[1])) : 5;
  cfg.threads = argc > 2 ? static_cast<std::size_t>(std::atol(argv[2])) : 0;

  std::cout << "Fig. 4: epoch QoS — location-dependent delivery vs. the "
               "flooding reference walking the identical route\n(mean ± 95% CI "
            << "over " << cfg.runs << " seeds, stochastic link delays)\n\n";
  std::cout << std::left << std::setw(16) << "profile" << std::setw(12)
            << "delta (ms)" << std::right << std::setw(16) << "LD recv"
            << std::setw(16) << "flood recv" << std::setw(14) << "missing"
            << std::setw(14) << "extra" << "\n";

  struct Case {
    const char* name;
    location::UncertaintyProfile profile;
    double delta_ms;
  };
  const Case cases[] = {
      {"global-resub", location::UncertaintyProfile::global_resub(), 400.0},
      {"global-resub", location::UncertaintyProfile::global_resub(), 150.0},
      {"adaptive", location::UncertaintyProfile::adaptive(
                       sim::millis(400), {sim::millis(12), sim::millis(10),
                                          sim::millis(10)}),
       400.0},
      {"flooding", location::UncertaintyProfile::flooding(), 100.0},
  };

  for (const auto& c : cases) {
    scenario::ScenarioSweep sweep(declare(c.profile, sim::millis(c.delta_ms)));
    sweep.probe(epoch_probe);
    const scenario::SweepResult r = sweep.run(cfg);
    std::cout << std::left << std::setw(16) << c.name << std::setw(12)
              << c.delta_ms << std::right << std::setw(16)
              << cell(r, "client.ld.delivered") << std::setw(16)
              << cell(r, "client.ref.delivered") << std::setw(14)
              << cell(r, "epoch_missing") << std::setw(14)
              << cell(r, "epoch_extra") << "\n";
  }

  std::cout << "\nexpected shape: with a sufficient uncertainty horizon the "
               "LD run delivers exactly the flooding reference (missing = "
               "extra = 0 ±0); only if the client outruns the horizon do "
               "epochs go missing (the paper's starvation caveat).\n";
  return 0;
}
