// Reproduces paper Fig. 5: the relocation protocol on the moving-client
// scenario — one producer (left half of the figure) and two producers
// (right half). The client disconnects at leaf 3, misses publications
// while dark, reconnects at leaf 4, and the middleware fetches and
// replays the virtual counterpart's buffer through the junction
// (broker 1).
//
// Once a hand-wired single-seed trace, now a ScenarioSweep: each variant
// is one declaration swept over N seeds under stochastic link delays,
// with a probe reading the relocation counters off broker 3. Columns are
// mean ± 95% CI, matching fig2/fig3. The declaration also carries
// expect_exactly_once("consumer"), so every seed's report re-checks the
// protocol's headline guarantee.
//
//   bench_fig5_relocation_trace [runs] [threads]
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>

#include "src/scenario/sweep.hpp"

using namespace rebeca;

namespace {

filter::Notification stock(int px) {
  return filter::Notification().set("sym", "X").set("px", px);
}

scenario::ScenarioSweep::Declare declare(bool two_producers) {
  return [two_producers](scenario::ScenarioBuilder& b) {
    // Tree:       0
    //            __|__
    //           1     2
    //          _|_   _|_
    //         3   4 5   6
    // Client starts at leaf 3, moves to leaf 4; producers publish from 5
    // (and 6). The junction for the move is broker 1.
    b.topology(scenario::TopologySpec::balanced_tree(2, 2));
    broker::BrokerConfig bc;
    bc.use_advertisements = true;
    b.broker(bc);
    b.broker_link_delay(sim::DelayModel::uniform(sim::millis(3), sim::millis(7)));
    b.client_link_delay(
        sim::DelayModel::uniform(sim::micros(500), sim::micros(1500)));

    b.client("consumer")
        .with_id(1)
        .at_broker(3)
        .subscribes(filter::Filter().where("sym", filter::Constraint::eq("X")));
    b.client("p1").with_id(2).at_broker(5).advertises(
        filter::Filter().where("sym", filter::Constraint::any()));
    if (two_producers) {
      b.client("p2").with_id(3).at_broker(6).advertises(
          filter::Filter().where("sym", filter::Constraint::any()));
    }
    b.expect_exactly_once("consumer");

    // Per-run price counter (the declaration is invoked once per seed).
    auto px = std::make_shared<int>(0);
    const auto publish_all = [two_producers, px](scenario::Scenario& s) {
      s.client("p1").publish(stock(++*px));
      if (two_producers) s.client("p2").publish(stock(++*px));
    };

    // The figure's timeline, step by step (durations leave room for the
    // stochastic delays to settle).
    b.phase("settle", sim::seconds(1));
    b.phase("step1_publish", sim::millis(200), publish_all);
    b.phase("step2_disconnect", sim::millis(200),
            [](scenario::Scenario& s) { s.detach("consumer"); });
    b.phase("step2_buffering", sim::millis(200), publish_all);
    b.phase("step3_reconnect", sim::millis(500),
            [](scenario::Scenario& s) { s.connect("consumer", 4); });
    b.phase("step6_live", sim::seconds(1), publish_all);
    b.phase("drain", sim::seconds(1));
  };
}

void relocation_probe(scenario::Scenario& s, std::map<std::string, double>& m) {
  m["replayed_at_old_border"] =
      static_cast<double>(s.overlay().broker(3).replayed_notifications());
  m["virtuals_left_at_old_border"] =
      static_cast<double>(s.overlay().broker(3).virtual_count());
}

std::string cell(const scenario::SweepResult& r, const char* metric) {
  return r.stats(metric).mean_ci();
}

void report_row(const char* label, const scenario::SweepResult& r) {
  std::cout << std::left << std::setw(26) << label << std::right
            << std::setw(13) << cell(r, "client.p1.published")
            << std::setw(14) << cell(r, "client.consumer.delivered")
            << std::setw(13) << cell(r, "client.consumer.missing")
            << std::setw(13) << cell(r, "client.consumer.duplicates")
            << std::setw(13) << cell(r, "replayed_at_old_border")
            << std::setw(13) << cell(r, "virtuals_left_at_old_border") << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  scenario::SweepConfig cfg;
  cfg.base_seed = 3;
  cfg.runs = argc > 1 ? static_cast<std::size_t>(std::atol(argv[1])) : 8;
  cfg.threads = argc > 2 ? static_cast<std::size_t>(std::atol(argv[2])) : 0;

  std::cout << "Fig. 5: relocation walkthrough (junction at broker 1; "
               "mean ± 95% CI over " << cfg.runs
            << " seeds, stochastic link delays)\n\n";
  std::cout << std::left << std::setw(26) << "scenario" << std::right
            << std::setw(13) << "published" << std::setw(14) << "delivered"
            << std::setw(13) << "missing" << std::setw(13) << "duplicates"
            << std::setw(13) << "replayed" << std::setw(13) << "virt left"
            << "\n";

  for (const bool two : {false, true}) {
    scenario::ScenarioSweep sweep(declare(two));
    sweep.probe(relocation_probe);
    report_row(two ? "Fig. 5 right: 2 producers" : "Fig. 5 left: 1 producer",
               sweep.run(cfg));
  }

  std::cout << "\nexpected shape: every published notification delivered "
               "exactly once (missing = duplicates = 0 ±0) in both variants; "
               "the dark-phase publications are replayed from broker 3's "
               "virtual counterpart, which is then garbage-collected "
               "(virt left = 0 ±0). Each seed's report also re-checks "
               "expect_exactly_once(consumer).\n";
  return 0;
}
