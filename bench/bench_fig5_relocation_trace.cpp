// Reproduces paper Fig. 5: a message-level trace of the relocation
// protocol on the moving-client scenario — one producer (left half of
// the figure) and two producers (right half). Prints every relocation /
// replay message with virtual-time stamps, so the junction detection,
// fetch, replay and cleanup steps are visible exactly as the figure
// narrates them.
#include <iomanip>
#include <iostream>
#include <memory>

#include "src/broker/overlay.hpp"
#include "src/client/client.hpp"
#include "src/net/topology.hpp"
#include "src/util/logging.hpp"

using namespace rebeca;

namespace {

void run_scenario(bool two_producers) {
  std::cout << (two_producers ? "\n--- Fig. 5 (right): two producers ---\n"
                              : "--- Fig. 5 (left): one producer ---\n");
  // Tree:      0
  //          /   \
  //         1     2
  //        / \   / \
  //       3   4 5   6
  // Client starts at leaf 3, moves to leaf 4; producers publish from 5
  // (and 6). The junction for the move is broker 1.
  sim::Simulation sim(3);
  broker::OverlayConfig cfg;
  cfg.broker.use_advertisements = true;
  broker::Overlay overlay(sim, net::Topology::balanced_tree(2, 2), cfg);

  client::ClientConfig cc;
  cc.id = ClientId(1);
  client::Client consumer(sim, cc);
  overlay.connect_client(consumer, 3);
  const auto sub =
      consumer.subscribe(filter::Filter().where("sym", filter::Constraint::eq("X")));

  client::ClientConfig p1c;
  p1c.id = ClientId(2);
  client::Client p1(sim, p1c);
  overlay.connect_client(p1, 5);
  p1.advertise(filter::Filter().where("sym", filter::Constraint::any()));

  std::unique_ptr<client::Client> p2;
  if (two_producers) {
    client::ClientConfig p2c;
    p2c.id = ClientId(3);
    p2 = std::make_unique<client::Client>(sim, p2c);
    overlay.connect_client(*p2, 6);
    p2->advertise(filter::Filter().where("sym", filter::Constraint::any()));
  }

  sim.run_until(sim::seconds(1));
  int px = 0;
  auto publish_all = [&] {
    p1.publish(filter::Notification().set("sym", "X").set("px", ++px));
    if (p2) p2->publish(filter::Notification().set("sym", "X").set("px", ++px));
  };
  publish_all();
  sim.run_until(sim.now() + sim::millis(100));

  std::cout << "t=" << sim::FormatTime{sim.now()} << " step 1: client (at "
            << "broker 3, " << consumer.deliveries().size()
            << " notifications so far, last seq " << consumer.last_seq(sub)
            << ") disconnects\n";
  consumer.detach_silently();
  sim.run_until(sim.now() + sim::millis(200));
  publish_all();  // buffered by the virtual counterpart at broker 3
  sim.run_until(sim.now() + sim::millis(200));
  std::cout << "t=" << sim::FormatTime{sim.now()}
            << " step 2: virtual counterpart at broker 3 buffers (virtuals: "
            << overlay.broker(3).virtual_count() << ")\n";

  std::cout << "t=" << sim::FormatTime{sim.now()}
            << " step 3: client reconnects at broker 4, re-issuing (C, F, "
            << consumer.last_seq(sub) << ")\n";
  overlay.connect_client(consumer, 4);
  sim.run_until(sim.now() + sim::millis(500));
  publish_all();
  sim.run_until(sim.now() + sim::seconds(1));

  std::cout << "t=" << sim::FormatTime{sim.now()}
            << " step 6 done: replay delivered, old state cleaned (virtuals "
            << "at broker 3: " << overlay.broker(3).virtual_count()
            << ", replayed notifications: "
            << overlay.broker(3).replayed_notifications() << ")\n";
  std::cout << "client received " << consumer.deliveries().size() << " of "
            << px << " published, duplicates " << consumer.duplicate_count()
            << ", final seq " << consumer.last_seq(sub) << "\n";
}

}  // namespace

int main() {
  std::cout << "Fig. 5: relocation walkthrough (junction at broker 1; "
               "messages traced by the relocation counters)\n\n";
  run_scenario(false);
  run_scenario(true);
  std::cout << "\nexpected shape: all published notifications delivered "
               "exactly once in both scenarios; virtual counterparts are "
               "fetched and garbage-collected.\n";
  return 0;
}
