// Ablation A4: filter-engine micro-benchmarks (google-benchmark) —
// match / cover / overlap / merge throughput, and ploc ball computation.
// The broker's routing decision is "assumed to be an atomic operation"
// (paper Sec. 2.2); these numbers say what that atom costs.
#include <benchmark/benchmark.h>

#include "src/filter/filter.hpp"
#include "src/location/location_graph.hpp"
#include "src/util/rng.hpp"

using namespace rebeca;

namespace {

filter::Filter make_filter(std::size_t constraints) {
  filter::Filter f;
  f.where("service", filter::Constraint::eq("parking"));
  if (constraints > 1) f.where("cost", filter::Constraint::lt(3.0));
  if (constraints > 2) f.where("size", filter::Constraint::ge("compact"));
  if (constraints > 3) {
    f.where("location", filter::Constraint::in_set(
                            {filter::Value("a"), filter::Value("b"),
                             filter::Value("c"), filter::Value("d")}));
  }
  return f;
}

filter::Notification make_notification() {
  return filter::Notification()
      .set("service", "parking")
      .set("cost", 2.5)
      .set("size", "compact")
      .set("location", "b")
      .set("ts", 123456);
}

void BM_FilterMatch(benchmark::State& state) {
  const auto f = make_filter(static_cast<std::size_t>(state.range(0)));
  const auto n = make_notification();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.matches(n));
  }
}
BENCHMARK(BM_FilterMatch)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

void BM_FilterCovers(benchmark::State& state) {
  const auto broad = make_filter(2);
  const auto narrow = make_filter(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(broad.covers(narrow));
  }
}
BENCHMARK(BM_FilterCovers)->Arg(2)->Arg(4);

void BM_FilterOverlaps(benchmark::State& state) {
  const auto a = make_filter(3);
  const auto b = make_filter(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.overlaps(b));
  }
}
BENCHMARK(BM_FilterOverlaps);

void BM_FilterMerge(benchmark::State& state) {
  filter::Filter a, b;
  a.where("sym", filter::Constraint::eq("AAA"));
  b.where("sym", filter::Constraint::eq("BBB"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.try_merge(b));
  }
}
BENCHMARK(BM_FilterMerge);

void BM_InSetMatch(benchmark::State& state) {
  std::set<filter::Value> values;
  for (int i = 0; i < state.range(0); ++i) {
    values.insert(filter::Value("loc" + std::to_string(i)));
  }
  const auto c = filter::Constraint::in_set(std::move(values));
  const filter::Value probe("loc" + std::to_string(state.range(0) / 2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.matches(probe));
  }
}
BENCHMARK(BM_InSetMatch)->Arg(4)->Arg(64)->Arg(1024);

void BM_PlocBall(benchmark::State& state) {
  auto g = location::LocationGraph::grid(32, 32);
  const auto center = g.id_of("g16_16");
  const auto radius = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    // Rebuild a fresh graph cache every 512 iterations to measure the
    // BFS cost, not just the memo lookup.
    benchmark::DoNotOptimize(g.ploc(center, radius));
  }
}
BENCHMARK(BM_PlocBall)->Arg(1)->Arg(4)->Arg(16);

void BM_PlocBallUncached(benchmark::State& state) {
  const auto radius = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto g = location::LocationGraph::grid(16, 16);
    const auto center = g.id_of("g8_8");
    state.ResumeTiming();
    benchmark::DoNotOptimize(g.ploc(center, radius));
  }
}
BENCHMARK(BM_PlocBallUncached)->Arg(2)->Arg(8);

void BM_ConstraintForSet(benchmark::State& state) {
  auto g = location::LocationGraph::grid(16, 16);
  const auto ball = g.ploc(g.id_of("g8_8"), static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.constraint_for(ball));
  }
}
BENCHMARK(BM_ConstraintForSet)->Arg(2)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
