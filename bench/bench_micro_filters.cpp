// Ablation A4: filter-engine micro-benchmarks (google-benchmark) —
// match / cover / overlap / merge throughput, and ploc ball computation.
// The broker's routing decision is "assumed to be an atomic operation"
// (paper Sec. 2.2); these numbers say what that atom costs.
#include <benchmark/benchmark.h>

#include <vector>

#include "src/filter/filter.hpp"
#include "src/location/location_graph.hpp"
#include "src/routing/match_index.hpp"
#include "src/util/rng.hpp"

using namespace rebeca;

namespace {

filter::Filter make_filter(std::size_t constraints) {
  filter::Filter f;
  f.where("service", filter::Constraint::eq("parking"));
  if (constraints > 1) f.where("cost", filter::Constraint::lt(3.0));
  if (constraints > 2) f.where("size", filter::Constraint::ge("compact"));
  if (constraints > 3) {
    f.where("location", filter::Constraint::in_set(
                            {filter::Value("a"), filter::Value("b"),
                             filter::Value("c"), filter::Value("d")}));
  }
  return f;
}

filter::Notification make_notification() {
  return filter::Notification()
      .set("service", "parking")
      .set("cost", 2.5)
      .set("size", "compact")
      .set("location", "b")
      .set("ts", 123456);
}

void BM_FilterMatch(benchmark::State& state) {
  const auto f = make_filter(static_cast<std::size_t>(state.range(0)));
  const auto n = make_notification();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.matches(n));
  }
}
BENCHMARK(BM_FilterMatch)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

void BM_FilterCovers(benchmark::State& state) {
  const auto broad = make_filter(2);
  const auto narrow = make_filter(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(broad.covers(narrow));
  }
}
BENCHMARK(BM_FilterCovers)->Arg(2)->Arg(4);

void BM_FilterOverlaps(benchmark::State& state) {
  const auto a = make_filter(3);
  const auto b = make_filter(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.overlaps(b));
  }
}
BENCHMARK(BM_FilterOverlaps);

void BM_FilterMerge(benchmark::State& state) {
  filter::Filter a, b;
  a.where("sym", filter::Constraint::eq("AAA"));
  b.where("sym", filter::Constraint::eq("BBB"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.try_merge(b));
  }
}
BENCHMARK(BM_FilterMerge);

void BM_InSetMatch(benchmark::State& state) {
  std::set<filter::Value> values;
  for (int i = 0; i < state.range(0); ++i) {
    values.insert(filter::Value("loc" + std::to_string(i)));
  }
  const auto c = filter::Constraint::in_set(std::move(values));
  const filter::Value probe("loc" + std::to_string(state.range(0) / 2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.matches(probe));
  }
}
BENCHMARK(BM_InSetMatch)->Arg(4)->Arg(64)->Arg(1024);

void BM_PlocBall(benchmark::State& state) {
  auto g = location::LocationGraph::grid(32, 32);
  const auto center = g.id_of("g16_16");
  const auto radius = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    // Rebuild a fresh graph cache every 512 iterations to measure the
    // BFS cost, not just the memo lookup.
    benchmark::DoNotOptimize(g.ploc(center, radius));
  }
}
BENCHMARK(BM_PlocBall)->Arg(1)->Arg(4)->Arg(16);

void BM_PlocBallUncached(benchmark::State& state) {
  const auto radius = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto g = location::LocationGraph::grid(16, 16);
    const auto center = g.id_of("g8_8");
    state.ResumeTiming();
    benchmark::DoNotOptimize(g.ploc(center, radius));
  }
}
BENCHMARK(BM_PlocBallUncached)->Arg(2)->Arg(8);

void BM_ConstraintForSet(benchmark::State& state) {
  auto g = location::LocationGraph::grid(16, 16);
  const auto ball = g.ploc(g.id_of("g8_8"), static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.constraint_for(ball));
  }
}
BENCHMARK(BM_ConstraintForSet)->Arg(2)->Arg(8);

// ---------------------------------------------------------------------------
// The per-hop matching decision: linear scans vs. the counting
// MatchIndex over the same filter population. This is the pair behind
// BrokerConfig::matcher — the index must win by >= 2x at >= 1k distinct
// filters per hop.
// ---------------------------------------------------------------------------

/// A hop's filter population: distinct filters spread over a handful of
/// attributes, mixing equality, bound, range, and set constraints, split
/// across four neighbor links like a broker's remote tables.
std::vector<filter::Filter> make_hop_filters(std::size_t n) {
  std::vector<filter::Filter> filters;
  filters.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    filter::Filter f;
    f.where("service", filter::Constraint::eq("quote"));
    switch (i % 4) {
      case 0:
        f.where("sym", filter::Constraint::eq("S" + std::to_string(i)));
        break;
      case 1:
        f.where("px", filter::Constraint::lt(static_cast<int>(100 + i)));
        break;
      case 2:
        f.where("px", filter::Constraint::range(
                          filter::Value(static_cast<int>(i)),
                          filter::Value(static_cast<int>(i + 40))));
        break;
      default:
        f.where("venue", filter::Constraint::in_set(
                             {filter::Value("X" + std::to_string(i % 8)),
                              filter::Value("Y" + std::to_string(i % 8))}));
        break;
    }
    filters.push_back(std::move(f));
  }
  return filters;
}

filter::Notification hop_probe() {
  return filter::Notification()
      .set("service", "quote")
      .set("sym", "S3")
      .set("px", 120)
      .set("venue", "X1")
      .set("ts", 123456);
}

void BM_HopMatchLinear(benchmark::State& state) {
  const auto filters = make_hop_filters(static_cast<std::size_t>(state.range(0)));
  const auto n = hop_probe();
  for (auto _ : state) {
    std::size_t hits = 0;
    for (const auto& f : filters) hits += f.matches(n) ? 1 : 0;
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_HopMatchLinear)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

void BM_HopMatchIndex(benchmark::State& state) {
  const auto filters = make_hop_filters(static_cast<std::size_t>(state.range(0)));
  routing::MatchIndex index;
  for (std::size_t i = 0; i < filters.size(); ++i) {
    index.add_remote(LinkId(static_cast<std::uint32_t>(i % 4)), filters[i]);
  }
  const auto n = hop_probe();
  routing::MatchHits hits;
  for (auto _ : state) {
    index.collect(n, hits);
    benchmark::DoNotOptimize(hits.links.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_HopMatchIndex)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
