// Ablation A2 (paper Sec. 3.2 "Responsiveness"): relocation latency and
// replay size as functions of topology depth and disconnection duration.
//
// Latency is measured from the reconnect instant to the first delivery
// of a backlogged notification at the new border broker.
#include <iomanip>
#include <iostream>

#include "src/broker/overlay.hpp"
#include "src/client/client.hpp"
#include "src/net/topology.hpp"
#include "src/workload/publisher.hpp"

using namespace rebeca;

namespace {

struct Result {
  double relocation_latency_ms = -1;  // reconnect -> first replayed delivery
  std::size_t replayed = 0;
  bool complete = false;
};

Result run(std::size_t chain_length, double gap_sec) {
  sim::Simulation sim(7);
  broker::Overlay overlay(sim, net::Topology::chain(chain_length),
                          broker::OverlayConfig{});

  client::ClientConfig cc;
  cc.id = ClientId(1);
  client::Client consumer(sim, cc);
  overlay.connect_client(consumer, chain_length - 1);
  consumer.subscribe(filter::Filter().where("sym", filter::Constraint::eq("X")));

  client::ClientConfig pc;
  pc.id = ClientId(2);
  client::Client producer(sim, pc);
  overlay.connect_client(producer, 0);
  workload::PublisherConfig wc;
  wc.rate = workload::RateModel::periodic(sim::millis(20));
  wc.prototype = filter::Notification().set("sym", "X");
  workload::Publisher pub(sim, producer, wc);

  sim.run_until(sim::seconds(1));
  pub.start();
  sim.run_until(sim.now() + sim::seconds(1));

  consumer.detach_silently();
  sim.run_until(sim.now() + sim::seconds(gap_sec));

  const auto received_before = consumer.deliveries().size();
  const auto reconnect_at = sim.now();
  overlay.connect_client(consumer, 0);  // far end: worst-case path
  sim.run_until(sim.now() + sim::seconds(10));
  pub.stop();
  sim.run_until(sim.now() + sim::seconds(1));

  Result r;
  if (consumer.deliveries().size() > received_before) {
    r.relocation_latency_ms = sim::to_millis(
        consumer.deliveries()[received_before].delivered_at - reconnect_at);
  }
  r.replayed = static_cast<std::size_t>(
      static_cast<double>(gap_sec) * 50.0);  // nominal backlog (50/s)
  r.complete = consumer.deliveries().size() == pub.published() &&
               consumer.duplicate_count() == 0;
  return r;
}

}  // namespace

int main() {
  std::cout << "A2: relocation responsiveness vs. topology depth and "
               "disconnection gap\n(50 notifications/s backlog; client moves "
               "to the opposite end of the chain)\n\n";
  std::cout << std::left << std::setw(10) << "brokers" << std::setw(12)
            << "gap (s)" << std::right << std::setw(22) << "reloc latency (ms)"
            << std::setw(18) << "backlog (~#)" << std::setw(14) << "complete"
            << "\n";
  for (std::size_t chain : {3u, 5u, 8u, 12u}) {
    for (double gap : {0.2, 1.0, 5.0}) {
      const auto r = run(chain, gap);
      std::cout << std::left << std::setw(10) << chain << std::setw(12) << gap
                << std::right << std::setw(22) << r.relocation_latency_ms
                << std::setw(18) << r.replayed << std::setw(14)
                << (r.complete ? "yes" : "NO") << "\n";
    }
  }
  std::cout << "\nexpected shape: latency grows linearly with the broker "
               "path (the fetch/replay round trip), is independent of the "
               "gap length, and every row is complete (exactly-once).\n";
  return 0;
}
