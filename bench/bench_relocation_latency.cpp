// Ablation A2 (paper Sec. 3.2 "Responsiveness"): relocation latency and
// replay size as functions of topology depth and disconnection duration.
//
// Latency is measured from the reconnect instant to the first delivery
// of a backlogged notification at the new border broker. Each point is
// one scenario declaration (the disconnect and the far-end reconnect are
// phase-entry callbacks) swept over N seeds with stochastic broker-hop
// delays; completeness comes from the report, the latency from a sweep
// probe.
//
//   bench_relocation_latency [runs] [threads]
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <limits>
#include <sstream>

#include "src/scenario/sweep.hpp"

using namespace rebeca;

namespace {

scenario::ScenarioSweep::Declare declare(std::size_t chain_length,
                                         double gap_sec) {
  return [chain_length, gap_sec](scenario::ScenarioBuilder& b) {
    b.topology(scenario::TopologySpec::chain(chain_length));
    b.broker_link_delay(sim::DelayModel::uniform(sim::millis(3), sim::millis(7)));

    b.client("consumer")
        .with_id(1)
        .at_broker(chain_length - 1)
        .subscribes(filter::Filter().where("sym", filter::Constraint::eq("X")));
    b.client("producer")
        .with_id(2)
        .at_broker(0)
        .publishes(scenario::PublishSpec()
                       .every(sim::millis(20))
                       .body(filter::Notification().set("sym", "X"))
                       .from_phase("traffic")
                       .until_phase_end("recover"));

    b.phase("settle", sim::seconds(1));
    b.phase("traffic", sim::seconds(1));
    b.phase("dark", sim::seconds(gap_sec),
            [](scenario::Scenario& s) { s.detach("consumer"); });
    b.phase("recover", sim::seconds(10),
            [](scenario::Scenario& s) { s.connect("consumer", 0); });
    b.phase("drain", sim::seconds(1));
  };
}

// The reconnect happens at the entry of "recover": settle + traffic + gap.
scenario::ScenarioSweep::Probe latency_probe(double gap_sec) {
  return [gap_sec](scenario::Scenario& s,
                   std::map<std::string, double>& metrics) {
    const sim::TimePoint reconnect_at =
        sim::seconds(1) + sim::seconds(1) + sim::seconds(gap_sec);
    // NaN when nothing arrived post-reconnect: the run drops out of the
    // aggregate (visible in n) instead of skewing the mean.
    double latency_ms = std::numeric_limits<double>::quiet_NaN();
    for (const client::Delivery& d : s.client("consumer").deliveries()) {
      if (d.delivered_at >= reconnect_at) {
        latency_ms = sim::to_millis(d.delivered_at - reconnect_at);
        break;
      }
    }
    metrics["reloc_latency_ms"] = latency_ms;
  };
}

}  // namespace

int main(int argc, char** argv) {
  scenario::SweepConfig cfg;
  cfg.base_seed = 7;
  cfg.runs = argc > 1 ? static_cast<std::size_t>(std::atol(argv[1])) : 5;
  cfg.threads = argc > 2 ? static_cast<std::size_t>(std::atol(argv[2])) : 0;

  std::cout << "A2: relocation responsiveness vs. topology depth and "
               "disconnection gap\n(50 notifications/s backlog; client moves "
               "to the opposite end of the chain;\nmean ± 95% CI over "
            << cfg.runs << " seeds)\n\n";
  std::cout << std::left << std::setw(10) << "brokers" << std::setw(12)
            << "gap (s)" << std::right << std::setw(24) << "reloc latency (ms)"
            << std::setw(18) << "backlog (~#)" << std::setw(14) << "complete"
            << "\n";
  for (std::size_t chain : {3u, 5u, 8u, 12u}) {
    for (double gap : {0.2, 1.0, 5.0}) {
      scenario::ScenarioSweep sweep(declare(chain, gap));
      sweep.probe(latency_probe(gap));
      const scenario::SweepResult r = sweep.run(cfg);
      const scenario::MetricStats lat = r.stats("reloc_latency_ms");
      const scenario::MetricStats missing = r.stats("missing");
      const scenario::MetricStats dups = r.stats("duplicates");
      const bool complete = missing.max == 0 && dups.max == 0;
      std::ostringstream lat_cell;
      lat_cell << std::fixed << std::setprecision(1) << lat.mean << " ±"
               << lat.ci95;
      std::cout << std::left << std::setw(10) << chain << std::setw(12) << gap
                << std::right << std::setw(24) << lat_cell.str()
                << std::setw(18)
                << static_cast<std::size_t>(gap * 50.0)  // nominal 50/s
                << std::setw(14) << (complete ? "yes" : "NO") << "\n";
    }
  }
  std::cout << "\nexpected shape: latency grows linearly with the broker "
               "path (the fetch/replay round trip), is independent of the "
               "gap length, and every row is complete (exactly-once across "
               "all seeds).\n";
  return 0;
}
