// Ablation A2 (paper Sec. 3.2 "Responsiveness"): relocation latency and
// replay size as functions of topology depth and disconnection duration.
//
// Latency is measured from the reconnect instant to the first delivery
// of a backlogged notification at the new border broker. Each point is
// one scenario: the disconnect and the far-end reconnect are phase-entry
// callbacks, completeness comes from the report.
#include <iomanip>
#include <iostream>

#include "src/scenario/scenario.hpp"

using namespace rebeca;

namespace {

struct Result {
  double relocation_latency_ms = -1;  // reconnect -> first replayed delivery
  std::size_t replayed = 0;
  bool complete = false;
};

Result run(std::size_t chain_length, double gap_sec) {
  std::size_t received_before = 0;
  sim::TimePoint reconnect_at = 0;

  scenario::ScenarioBuilder b;
  b.seed(7).topology(scenario::TopologySpec::chain(chain_length));

  b.client("consumer")
      .with_id(1)
      .at_broker(chain_length - 1)
      .subscribes(filter::Filter().where("sym", filter::Constraint::eq("X")));
  b.client("producer")
      .with_id(2)
      .at_broker(0)
      .publishes(scenario::PublishSpec()
                     .every(sim::millis(20))
                     .body(filter::Notification().set("sym", "X"))
                     .from_phase("traffic")
                     .until_phase_end("recover"));

  b.phase("settle", sim::seconds(1));
  b.phase("traffic", sim::seconds(1));
  b.phase("dark", sim::seconds(gap_sec),
          [](scenario::Scenario& s) { s.detach("consumer"); });
  b.phase("recover", sim::seconds(10), [&](scenario::Scenario& s) {
    received_before = s.client("consumer").deliveries().size();
    reconnect_at = s.sim().now();
    s.connect("consumer", 0);  // far end: worst-case path
  });
  b.phase("drain", sim::seconds(1));

  auto s = b.build();
  s->run();

  Result r;
  const auto& deliveries = s->client("consumer").deliveries();
  if (deliveries.size() > received_before) {
    r.relocation_latency_ms =
        sim::to_millis(deliveries[received_before].delivered_at - reconnect_at);
  }
  r.replayed = static_cast<std::size_t>(
      static_cast<double>(gap_sec) * 50.0);  // nominal backlog (50/s)
  const scenario::ClientReport& c = s->report().client("consumer");
  r.complete = c.missing == 0 && c.duplicates == 0;
  return r;
}

}  // namespace

int main() {
  std::cout << "A2: relocation responsiveness vs. topology depth and "
               "disconnection gap\n(50 notifications/s backlog; client moves "
               "to the opposite end of the chain)\n\n";
  std::cout << std::left << std::setw(10) << "brokers" << std::setw(12)
            << "gap (s)" << std::right << std::setw(22) << "reloc latency (ms)"
            << std::setw(18) << "backlog (~#)" << std::setw(14) << "complete"
            << "\n";
  for (std::size_t chain : {3u, 5u, 8u, 12u}) {
    for (double gap : {0.2, 1.0, 5.0}) {
      const auto r = run(chain, gap);
      std::cout << std::left << std::setw(10) << chain << std::setw(12) << gap
                << std::right << std::setw(22) << r.relocation_latency_ms
                << std::setw(18) << r.replayed << std::setw(14)
                << (r.complete ? "yes" : "NO") << "\n";
    }
  }
  std::cout << "\nexpected shape: latency grows linearly with the broker "
               "path (the fetch/replay round trip), is independent of the "
               "gap length, and every row is complete (exactly-once).\n";
  return 0;
}
