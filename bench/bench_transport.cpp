// Transport perf trajectory: wire-codec throughput and end-to-end
// loopback session throughput.
//
//   bench_transport [--json]
//
// --json emits one flat object (metric -> value) for CI's
// BENCH_transport.json perf-trajectory artifact.
#include <chrono>
#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <thread>

#include "src/net/message.hpp"
#include "src/transport/session.hpp"
#include "src/transport/wire.hpp"

using namespace rebeca;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             Clock::now() - start)
      .count();
}

filter::Notification bench_notification() {
  filter::Notification n;
  n.set("topic", std::string("stock"));
  n.set("symbol", std::string("REB"));
  n.set("price", std::int64_t(42));
  n.set("volume", std::int64_t(100000));
  n.set("urgent", false);
  n.stamp(NotificationId(1), ClientId(1), 1, sim::millis(1));
  return n;
}

filter::Filter bench_filter() {
  return filter::Filter()
      .where("topic", filter::Constraint::eq(
                          filter::Value(std::string("stock"))))
      .where("price", filter::Constraint::range(filter::Value(std::int64_t(10)),
                                                filter::Value(std::int64_t(90))))
      .where("symbol", filter::Constraint::prefix("RE"));
}

/// Encode + decode round trips per second for a publish (data plane)
/// and a subscribe (admin plane).
void bench_codec(std::map<std::string, double>& out) {
  const net::Message publish = net::ClientPublishMsg{bench_notification()};
  const net::Message subscribe =
      net::SubscribeMsg{bench_filter(), {SubKey{ClientId(1), 1}}};

  for (const auto& [name, msg] :
       {std::pair<std::string, const net::Message*>{"publish", &publish},
        {"subscribe", &subscribe}}) {
    constexpr int kIters = 200000;
    std::size_t bytes = 0;
    const auto start = Clock::now();
    for (int i = 0; i < kIters; ++i) {
      const std::string encoded = transport::encode_message(*msg);
      bytes += encoded.size();
      const net::Message decoded = transport::decode_message(encoded);
      (void)decoded;
    }
    const double secs = seconds_since(start);
    out["codec_" + name + "_roundtrips_per_sec"] = kIters / secs;
    out["codec_" + name + "_bytes"] =
        static_cast<double>(bytes) / kIters;
  }
}

/// Messages per second through a real loopback socket pair: encoded on
/// the sender, framed, read by the receiver's reader thread, decoded on
/// the receiving executor. This is the whole per-message transport
/// path minus the broker logic.
void bench_session(std::map<std::string, double>& out) {
  constexpr int kMessages = 50000;
  transport::RealtimeExecutor exec;
  std::unique_ptr<transport::PeerSession> server;
  int received = 0;

  transport::Acceptor acceptor(
      exec, "127.0.0.1", 0,
      [&](transport::Conn conn, transport::SessionHello) {
        server = std::make_unique<transport::PeerSession>(
            exec, std::move(conn),
            [&](std::string payload) {
              const net::Message m = transport::decode_message(payload);
              (void)m;
              if (++received == kMessages) exec.stop();
            },
            [] {});
        server->send_frame(
            transport::kFrameWelcome,
            transport::encode_welcome(transport::SessionWelcome{1, 0}));
      });

  const auto start = Clock::now();
  std::thread sender([&] {
    auto dialed =
        transport::dial("127.0.0.1", acceptor.port(),
                        transport::SessionHello{},
                        std::chrono::milliseconds(5000));
    if (!dialed) return;
    const std::string payload = transport::encode_message(
        net::Message{net::ClientPublishMsg{bench_notification()}});
    for (int i = 0; i < kMessages; ++i) {
      dialed->first.write_frame(transport::kFrameMsg, payload);
    }
    // Hold the conn open until the receiver drains (EOF would race the
    // tail of the stream into the silenced-close path).
    while (received < kMessages) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  exec.run();
  sender.join();
  const double secs = seconds_since(start);
  out["session_loopback_msgs_per_sec"] = kMessages / secs;
  server->close();
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = argc > 1 && std::strcmp(argv[1], "--json") == 0;
  std::map<std::string, double> metrics;
  bench_codec(metrics);
  bench_session(metrics);

  if (json) {
    std::cout << "{";
    bool first = true;
    for (const auto& [k, v] : metrics) {
      if (!first) std::cout << ", ";
      std::cout << "\"" << k << "\": " << v;
      first = false;
    }
    std::cout << "}\n";
  } else {
    std::cout << "transport bench\n";
    for (const auto& [k, v] : metrics) {
      std::cout << "  " << k << ": " << v << "\n";
    }
  }
  return 0;
}
