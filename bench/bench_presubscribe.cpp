// Ablation A6 (extension of paper Sec. 6 future work): the
// pre-subscribe widening for disconnected location-dependent clients.
//
// A consumer walks (offline!) across a line of locations while a
// producer publishes at the consumer's actual position. Sweeps the
// widening interval against the offline walking speed and reports the
// fraction of offline events recovered on reconnection — and what the
// widening costs in extra buffered notifications and admin messages.
#include <iomanip>
#include <iostream>
#include <memory>

#include "src/broker/overlay.hpp"
#include "src/client/client.hpp"
#include "src/net/topology.hpp"

using namespace rebeca;

namespace {

struct Result {
  std::size_t events_offline = 0;
  std::size_t recovered = 0;
  std::uint64_t location_updates = 0;
  std::uint64_t replay_batch = 0;
};

Result run(bool presubscribe, double widen_ms, double step_ms) {
  auto rooms = location::LocationGraph::line(20);
  sim::Simulation sim(3);
  broker::OverlayConfig cfg;
  cfg.broker.locations = &rooms;
  cfg.broker.ld_presubscribe = presubscribe;
  cfg.broker.ld_widen_interval = sim::millis(widen_ms);
  broker::Overlay overlay(sim, net::Topology::chain(4), cfg);

  client::ClientConfig cc;
  cc.id = ClientId(1);
  cc.locations = &rooms;
  client::Client user(sim, cc);
  overlay.connect_client(user, 0);
  user.move_to("l0");
  location::LdSpec spec;
  spec.base = filter::Filter().where("service", filter::Constraint::eq("s"));
  spec.profile = location::UncertaintyProfile::global_resub();
  user.subscribe(spec);

  client::ClientConfig pc;
  pc.id = ClientId(2);
  client::Client producer(sim, pc);
  overlay.connect_client(producer, 3);
  sim.run_until(sim::seconds(1));

  // Offline walk l0 -> l10, publishing at the walker's position.
  user.detach_silently();
  Result r;
  for (int i = 1; i <= 10; ++i) {
    sim.run_until(sim.now() + sim::millis(step_ms));
    user.move_to("l" + std::to_string(i));
    producer.publish(filter::Notification()
                         .set("service", "s")
                         .set("location", "l" + std::to_string(i)));
    ++r.events_offline;
  }
  sim.run_until(sim.now() + sim::millis(200));
  overlay.connect_client(user, 2);
  sim.run_until(sim.now() + sim::seconds(5));

  // Recovered = delivered events matching the walker's final vicinity?
  // No: every offline event whose location the user passed and that F_0
  // accepts at delivery (the user ends at l10; with radius 0 only the
  // final-location event survives F_0). To measure the *buffering*
  // capability rather than F_0 strictness, count replayed+delivered plus
  // client-side filtered arrivals.
  r.recovered = user.deliveries().size() + static_cast<std::size_t>(user.filtered_count());
  r.location_updates =
      overlay.counters().count(metrics::MessageClass::location_update);
  r.replay_batch = overlay.counters().count(metrics::MessageClass::replay);
  return r;
}

}  // namespace

int main() {
  std::cout << "A6: pre-subscribe widening — offline-event recovery\n"
            << "(consumer walks 10 locations while disconnected; producer "
               "publishes at its position)\n\n";
  std::cout << std::left << std::setw(14) << "mode" << std::setw(12)
            << "widen (ms)" << std::setw(12) << "step (ms)" << std::right
            << std::setw(10) << "offline" << std::setw(12) << "recovered"
            << std::setw(12) << "loc msgs" << "\n";

  for (double step : {200.0, 500.0}) {
    {
      const auto r = run(false, 0.0, step);
      std::cout << std::left << std::setw(14) << "baseline" << std::setw(12)
                << "-" << std::setw(12) << step << std::right << std::setw(10)
                << r.events_offline << std::setw(12) << r.recovered
                << std::setw(12) << r.location_updates << "\n";
    }
    for (double widen : {1000.0, 500.0, 200.0}) {
      const auto r = run(true, widen, step);
      std::cout << std::left << std::setw(14) << "pre-subscribe"
                << std::setw(12) << widen << std::setw(12) << step << std::right
                << std::setw(10) << r.events_offline << std::setw(12)
                << r.recovered << std::setw(12) << r.location_updates << "\n";
    }
    std::cout << "\n";
  }

  std::cout << "expected shape: the baseline recovers ~1 event (whatever the "
               "stale ball happened to cover); pre-subscribe recovery grows "
               "as the widening interval shrinks below the walking pace, at "
               "the cost of proportionally more location updates.\n";
  return 0;
}
