// Reproduces paper Fig. 8: "Estimating ploc steps with respect to
// concrete timing bounds" — the cumulative δ sums placed on the Δ
// timeline, showing where ploc "takes a step".
#include <iomanip>
#include <iostream>
#include <vector>

#include "src/location/profile.hpp"

using namespace rebeca;

int main() {
  const sim::Duration delta = sim::millis(100);
  const std::vector<sim::Duration> deltas = {sim::millis(120), sim::millis(50),
                                             sim::millis(50), sim::millis(20)};
  auto profile = location::UncertaintyProfile::adaptive(delta, deltas);

  std::cout << "Fig. 8: cumulative subscription-processing delays vs. "
               "multiples of the residence time (delta = 100 ms)\n\n";
  std::cout << "timeline:  0 ----- 100(=D) ----- 200(=2D) ----- 300(=3D)\n\n";

  std::cout << std::left << std::setw(10) << "hop i" << std::setw(16)
            << "sum(d_1..d_i)" << std::setw(18) << "multiples crossed"
            << std::setw(8) << "q_i" << "\n";
  sim::Duration cum = 0;
  for (std::size_t i = 1; i <= deltas.size(); ++i) {
    cum += deltas[i - 1];
    const auto crossed = static_cast<long>((cum - 1) / delta);
    std::cout << std::left << std::setw(10) << i << std::setw(16)
              << (std::to_string(sim::to_millis(cum)).substr(0, 5) + " ms")
              << std::setw(18) << crossed << std::setw(8) << profile.steps(i)
              << "\n";
  }

  std::cout << "\nreading: q_1=1 (120 > D inserts one level of buffering "
               "between B1 and B2),\n"
               "q_2=1 (170 < 2D, nothing new), q_3=2 (220 > 2D inserts one "
               "more between B3 and B4),\nq_4=2 (240 < 3D). Matches the "
               "paper's Fig. 8 narrative and Table 4.\n";
  return 0;
}
