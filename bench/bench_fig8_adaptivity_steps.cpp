// Reproduces paper Fig. 8: "Estimating ploc steps with respect to
// concrete timing bounds" — the cumulative δ sums placed on the Δ
// timeline, showing where ploc "takes a step".
//
// Part 1 prints the figure's analytic timeline for the paper's example
// delays. Part 2 is the simulation cross-check, ported off the old
// single-seed run onto ScenarioSweep: a location-dependent consumer
// walks a grid at residence Δ over a broker chain with *stochastic*
// link delays while a producer publishes location-stamped
// notifications; the adaptive profile is instantiated from the delay
// model's upper bounds (the paper's "concrete timing bounds"). A sweep
// probe reads the realized per-hop location-set sizes — the running
// system's materialization of the q_i steps — and the app-visible
// delivery counts, reported as mean ± 95% CI over seeds like
// fig2–fig5.
//
//   bench_fig8_adaptivity_steps [runs] [threads]
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "src/location/profile.hpp"
#include "src/scenario/sweep.hpp"

using namespace rebeca;

namespace {

constexpr std::size_t kBrokers = 5;  // chain B0..B4, consumer at B0

// The sweep scenario's broker links: uniform in [3, 7] ms. The adaptive
// rule consumes per-hop *bounds*, so δ_i = 7 ms for every hop.
const sim::Duration kHopLo = sim::millis(3);
const sim::Duration kHopHi = sim::millis(7);

scenario::ScenarioSweep::Declare declare(
    const location::UncertaintyProfile& profile, sim::Duration delta) {
  return [profile, delta](scenario::ScenarioBuilder& b) {
    b.topology(scenario::TopologySpec::chain(kBrokers));
    b.locations(scenario::LocationSpec::grid(5, 5));
    b.broker_link_delay(sim::DelayModel::uniform(kHopLo, kHopHi));
    b.client_link_delay(
        sim::DelayModel::uniform(sim::micros(500), sim::micros(1500)));

    location::LdSpec spec;
    spec.vicinity_radius = 1;
    spec.profile = profile;
    b.client("consumer")
        .with_id(1)
        .at_broker(0)
        .starts_at("g2_2")
        .subscribes(spec)
        .walks(scenario::WalkSpec()
                   .residing(delta)
                   .moves(40)
                   .from_phase("move"));

    b.client("producer")
        .with_id(2)
        .at_broker(kBrokers - 1)
        .publishes(scenario::PublishSpec()
                       .every(sim::millis(5))
                       .body(filter::Notification().set("service", "s"))
                       .uniform_locations()
                       .count(400)
                       .from_phase("move"));

    b.phase("settle", sim::seconds(1));
    b.phase("move", delta * 45);
    b.phase("drain", sim::seconds(3));
  };
}

/// Realized per-hop location-set sizes: broker i holds F_{i+1} of
/// Fig. 6, the consumer's vicinity ball widened by q_{i+1} steps.
void ball_probe(scenario::Scenario& s, std::map<std::string, double>& m) {
  const SubKey key{ClientId(1), 1};
  for (std::size_t i = 0; i < kBrokers; ++i) {
    auto set = s.overlay().broker(i).ld_concrete_set(key);
    m["ball_hop" + std::to_string(i + 1)] =
        set.has_value() ? static_cast<double>(set->size()) : 0.0;
  }
}

std::string cell(const scenario::SweepResult& r, const std::string& metric) {
  return r.stats(metric).mean_ci();
}

}  // namespace

int main(int argc, char** argv) {
  // ---- part 1: the paper's analytic timeline ----
  const sim::Duration delta = sim::millis(100);
  const std::vector<sim::Duration> deltas = {sim::millis(120), sim::millis(50),
                                             sim::millis(50), sim::millis(20)};
  auto profile = location::UncertaintyProfile::adaptive(delta, deltas);

  std::cout << "Fig. 8 part 1 — analytic: cumulative subscription-processing "
               "delays vs. multiples of the residence time (delta = 100 ms)\n\n";
  std::cout << "timeline:  0 ----- 100(=D) ----- 200(=2D) ----- 300(=3D)\n\n";

  std::cout << std::left << std::setw(10) << "hop i" << std::setw(16)
            << "sum(d_1..d_i)" << std::setw(18) << "multiples crossed"
            << std::setw(8) << "q_i" << "\n";
  sim::Duration cum = 0;
  for (std::size_t i = 1; i <= deltas.size(); ++i) {
    cum += deltas[i - 1];
    const auto crossed = static_cast<long>((cum - 1) / delta);
    std::cout << std::left << std::setw(10) << i << std::setw(16)
              << (std::to_string(sim::to_millis(cum)).substr(0, 5) + " ms")
              << std::setw(18) << crossed << std::setw(8) << profile.steps(i)
              << "\n";
  }
  std::cout << "\nreading: q_1=1 (120 > D inserts one level of buffering "
               "between B1 and B2),\nq_2=1 (170 < 2D, nothing new), q_3=2 "
               "(220 > 2D inserts one more between B3 and B4),\nq_4=2 "
               "(240 < 3D). Matches the paper's Fig. 8 narrative and "
               "Table 4.\n\n";

  // ---- part 2: simulation cross-check, swept over stochastic seeds ----
  scenario::SweepConfig cfg;
  cfg.base_seed = 3;
  cfg.runs = argc > 1 ? static_cast<std::size_t>(std::atol(argv[1])) : 6;
  cfg.threads = argc > 2 ? static_cast<std::size_t>(std::atol(argv[2])) : 0;

  // A fast walker: residence of the same order as the hop bound, so the
  // cumulative bounds cross Δ multiples within the chain and the
  // adaptive profile actually steps (q grows along the path).
  const sim::Duration fast_delta = sim::millis(6);
  const std::vector<sim::Duration> hop_bounds(kBrokers, kHopHi);

  struct Case {
    const char* name;
    location::UncertaintyProfile profile;
  };
  const Case cases[] = {
      {"adaptive(bounds)",
       location::UncertaintyProfile::adaptive(fast_delta, hop_bounds)},
      {"global-resub", location::UncertaintyProfile::global_resub()},
  };

  std::cout << "Fig. 8 part 2 — simulated: chain of " << kBrokers
            << " brokers, uniform [3,7] ms hop delays, residence "
            << sim::to_millis(fast_delta) << " ms\n(mean ± 95% CI over "
            << cfg.runs << " seeds; ball_i = realized location-set size "
               "installed at hop i)\n\n";
  std::cout << std::left << std::setw(18) << "profile" << std::right
            << std::setw(13) << "delivered" << std::setw(12) << "filtered";
  for (std::size_t i = 1; i <= kBrokers; ++i) {
    std::cout << std::setw(11) << ("ball_" + std::to_string(i));
  }
  std::cout << "\n";

  for (const auto& c : cases) {
    scenario::ScenarioSweep sweep(declare(c.profile, fast_delta));
    sweep.probe(ball_probe);
    const scenario::SweepResult r = sweep.run(cfg);
    std::cout << std::left << std::setw(18) << c.name << std::right
              << std::setw(13) << cell(r, "client.consumer.delivered")
              << std::setw(12) << cell(r, "client.consumer.filtered");
    for (std::size_t i = 1; i <= kBrokers; ++i) {
      std::cout << std::setw(11) << cell(r, "ball_hop" + std::to_string(i));
    }
    std::cout << "\n";
  }

  std::cout << "\nexpected shape: the adaptive profile's balls widen along "
               "the path exactly where the cumulative hop bounds cross "
               "multiples of the residence time (the Fig. 8 steps), while "
               "global-resub stays at one step everywhere; the wider balls "
               "deliver at least as much to the application, at the price "
               "of more client-side filtering.\n";
  return 0;
}
