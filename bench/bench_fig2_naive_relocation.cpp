// Reproduces paper Fig. 2: "Missing notifications in a flooding
// scenario" — the naive unsub/resub approach to roaming loses
// notifications (break-before-make gaps) and duplicates them
// (make-before-break overlaps), even under flooding. The Sec. 4
// relocation protocol shows 0/0 on the identical workload.
//
// Each row is one scenario declaration (relocation style × disconnection
// gap) swept over N seeds with stochastic link delays; the columns are
// mean ± 95%-CI over the sweep, straight out of the ScenarioReport's
// completeness tracking.
//
//   bench_fig2_naive_relocation [runs] [threads]
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "src/scenario/sweep.hpp"

using namespace rebeca;

namespace {

scenario::ScenarioSweep::Declare declare(client::RelocationMode mode,
                                         bool overlap, double gap_ms,
                                         routing::Strategy strategy) {
  return [mode, overlap, gap_ms, strategy](scenario::ScenarioBuilder& b) {
    b.topology(scenario::TopologySpec::chain(4)).routing(strategy);
    // Stochastic link delays: the sweep dimension. Each seed draws its
    // own delay realization, so the aggregate has real spread.
    b.broker_link_delay(sim::DelayModel::uniform(sim::millis(3), sim::millis(7)));
    b.client_link_delay(
        sim::DelayModel::uniform(sim::micros(500), sim::micros(1500)));

    b.client("consumer")
        .with_id(1)
        .at_broker(3)
        .relocation(mode)
        .dedup(false)  // count duplicates honestly at the application
        .subscribes(filter::Filter().where("sym", filter::Constraint::eq("X")));
    b.client("producer")
        .with_id(2)
        .at_broker(0)
        .publishes(scenario::PublishSpec()
                       .every(sim::millis(10))
                       .body(filter::Notification().set("sym", "X"))
                       .from_phase("before")
                       .until_phase_end("after"));

    b.phase("settle", sim::seconds(1));
    b.phase("before", sim::seconds(2));
    if (overlap) {
      // Make-before-break: attach at broker 1 while still attached at 3,
      // then cut both and re-attach cleanly.
      b.phase("overlap", sim::millis(gap_ms),
              [](scenario::Scenario& s) { s.connect("consumer", 1); });
      b.phase("after", sim::seconds(2), [](scenario::Scenario& s) {
        s.detach("consumer");  // cuts both links
        s.connect("consumer", 1);
      });
    } else {
      b.phase("gap", sim::millis(gap_ms),
              [](scenario::Scenario& s) { s.detach("consumer"); });
      b.phase("after", sim::seconds(2),
              [](scenario::Scenario& s) { s.connect("consumer", 1); });
    }
    b.phase("drain", sim::seconds(2));
  };
}

void report_row(const char* label, const scenario::SweepResult& r) {
  const auto cell = [&](const char* metric) {
    return r.stats(metric).mean_ci();
  };
  std::cout << std::left << std::setw(44) << label << std::right
            << std::setw(14) << cell("client.producer.published")
            << std::setw(15) << cell("client.consumer.delivered")
            << std::setw(14) << cell("client.consumer.missing")
            << std::setw(15) << cell("client.consumer.duplicates") << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  scenario::SweepConfig cfg;
  cfg.base_seed = 17;
  cfg.runs = argc > 1 ? static_cast<std::size_t>(std::atol(argv[1])) : 5;
  cfg.threads = argc > 2 ? static_cast<std::size_t>(std::atol(argv[2])) : 0;

  std::cout << "Fig. 2: naive relocation loses and duplicates notifications\n"
            << "(100 notifications/s; client roams broker 3 -> broker 1;\n"
            << " mean ± 95% CI over " << cfg.runs
            << " seeds, stochastic link delays)\n\n";
  std::cout << std::left << std::setw(44) << "scenario" << std::right
            << std::setw(14) << "published" << std::setw(15) << "delivered"
            << std::setw(14) << "missing" << std::setw(15) << "duplicates"
            << "\n";

  for (double gap : {50.0, 200.0, 1000.0}) {
    scenario::ScenarioSweep sweep(declare(client::RelocationMode::naive, false,
                                          gap, routing::Strategy::flooding));
    std::ostringstream label;
    label << "naive resub, flooding, gap " << gap << " ms";
    report_row(label.str().c_str(), sweep.run(cfg));
  }
  {
    scenario::ScenarioSweep sweep(declare(client::RelocationMode::naive, true,
                                          200.0, routing::Strategy::flooding));
    report_row("naive overlap (make-before-break), flooding", sweep.run(cfg));
  }
  for (double gap : {50.0, 200.0, 1000.0}) {
    scenario::ScenarioSweep sweep(declare(client::RelocationMode::rebeca, false,
                                          gap, routing::Strategy::covering));
    std::ostringstream label;
    label << "Sec. 4 relocation protocol, gap " << gap << " ms";
    report_row(label.str().c_str(), sweep.run(cfg));
  }

  std::cout << "\nexpected shape: naive rows lose (gap x rate + blackout) "
               "notifications, the overlap row duplicates, the protocol rows "
               "deliver everything exactly once (0 ±0 / 0 ±0).\n";
  return 0;
}
