// Reproduces paper Fig. 2: "Missing notifications in a flooding
// scenario" — the naive unsub/resub approach to roaming loses
// notifications (break-before-make gaps) and duplicates them
// (make-before-break overlaps), even under flooding. The Sec. 4
// relocation protocol shows 0/0 on the identical workload.
//
// Each row is one scenario declaration: relocation style × disconnection
// gap; delivered/missing/duplicate counts come straight out of the
// ScenarioReport's completeness tracking.
//
// Output: one row per relocation style × disconnection gap.
#include <iomanip>
#include <iostream>
#include <sstream>

#include "src/scenario/scenario.hpp"

using namespace rebeca;

namespace {

struct Result {
  std::uint64_t published = 0;
  std::uint64_t delivered = 0;
  std::uint64_t missing = 0;
  std::uint64_t duplicates = 0;
};

Result run(client::RelocationMode mode, bool overlap, double gap_ms,
           routing::Strategy strategy) {
  scenario::ScenarioBuilder b;
  b.seed(17).topology(scenario::TopologySpec::chain(4)).routing(strategy);

  b.client("consumer")
      .with_id(1)
      .at_broker(3)
      .relocation(mode)
      .dedup(false)  // count duplicates honestly at the application
      .subscribes(filter::Filter().where("sym", filter::Constraint::eq("X")));
  b.client("producer")
      .with_id(2)
      .at_broker(0)
      .publishes(scenario::PublishSpec()
                     .every(sim::millis(10))
                     .body(filter::Notification().set("sym", "X"))
                     .from_phase("before")
                     .until_phase_end("after"));

  b.phase("settle", sim::seconds(1));
  b.phase("before", sim::seconds(2));
  if (overlap) {
    // Make-before-break: attach at broker 1 while still attached at 3,
    // then cut both and re-attach cleanly.
    b.phase("overlap", sim::millis(gap_ms),
            [](scenario::Scenario& s) { s.connect("consumer", 1); });
    b.phase("after", sim::seconds(2), [](scenario::Scenario& s) {
      s.detach("consumer");  // cuts both links
      s.connect("consumer", 1);
    });
  } else {
    b.phase("gap", sim::millis(gap_ms),
            [](scenario::Scenario& s) { s.detach("consumer"); });
    b.phase("after", sim::seconds(2),
            [](scenario::Scenario& s) { s.connect("consumer", 1); });
  }
  b.phase("drain", sim::seconds(2));

  auto s = b.build();
  s->run();
  const scenario::ScenarioReport rep = s->report();
  const scenario::ClientReport& c = rep.client("consumer");
  return {rep.client("producer").published, c.delivered, c.missing, c.duplicates};
}

void report(const char* label, const Result& r) {
  std::cout << std::left << std::setw(44) << label << std::right
            << std::setw(10) << r.published << std::setw(11) << r.delivered
            << std::setw(9) << r.missing << std::setw(11) << r.duplicates
            << "\n";
}

}  // namespace

int main() {
  std::cout << "Fig. 2: naive relocation loses and duplicates notifications\n"
            << "(100 notifications/s; client roams broker 3 -> broker 1)\n\n";
  std::cout << std::left << std::setw(44) << "scenario" << std::right
            << std::setw(10) << "published" << std::setw(11) << "delivered"
            << std::setw(9) << "missing" << std::setw(11) << "duplicates"
            << "\n";

  for (double gap : {50.0, 200.0, 1000.0}) {
    const auto naive = run(client::RelocationMode::naive, false, gap,
                           routing::Strategy::flooding);
    std::ostringstream label;
    label << "naive resub, flooding, gap " << gap << " ms";
    report(label.str().c_str(), naive);
  }
  const auto dup = run(client::RelocationMode::naive, true, 200.0,
                       routing::Strategy::flooding);
  report("naive overlap (make-before-break), flooding", dup);

  for (double gap : {50.0, 200.0, 1000.0}) {
    const auto rebeca =
        run(client::RelocationMode::rebeca, false, gap, routing::Strategy::covering);
    std::ostringstream label;
    label << "Sec. 4 relocation protocol, gap " << gap << " ms";
    report(label.str().c_str(), rebeca);
  }

  std::cout << "\nexpected shape: naive rows lose (gap x rate + blackout) "
               "notifications, the overlap row duplicates, the protocol rows "
               "deliver everything exactly once.\n";
  return 0;
}
