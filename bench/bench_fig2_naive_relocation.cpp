// Reproduces paper Fig. 2: "Missing notifications in a flooding
// scenario" — the naive unsub/resub approach to roaming loses
// notifications (break-before-make gaps) and duplicates them
// (make-before-break overlaps), even under flooding. The Sec. 4
// relocation protocol shows 0/0 on the identical workload.
//
// Output: one row per relocation style × disconnection gap.
#include <iomanip>
#include <iostream>
#include <memory>

#include "src/broker/overlay.hpp"
#include "src/client/client.hpp"
#include "src/metrics/checkers.hpp"
#include "src/net/topology.hpp"
#include "src/workload/publisher.hpp"

using namespace rebeca;

namespace {

struct Result {
  std::uint64_t published = 0;
  std::uint64_t delivered = 0;
  std::uint64_t missing = 0;
  std::uint64_t duplicates = 0;
};

Result run(client::RelocationMode mode, bool overlap, double gap_ms,
           routing::Strategy strategy) {
  sim::Simulation sim(17);
  broker::OverlayConfig cfg;
  cfg.broker.strategy = strategy;
  broker::Overlay overlay(sim, net::Topology::chain(4), cfg);

  client::ClientConfig cc;
  cc.id = ClientId(1);
  cc.relocation = mode;
  cc.dedup = false;  // count duplicates honestly at the application
  client::Client consumer(sim, cc);
  overlay.connect_client(consumer, 3);
  consumer.subscribe(filter::Filter().where("sym", filter::Constraint::eq("X")));

  client::ClientConfig pc;
  pc.id = ClientId(2);
  client::Client producer(sim, pc);
  overlay.connect_client(producer, 0);
  workload::PublisherConfig wc;
  wc.rate = workload::RateModel::periodic(sim::millis(10));
  wc.prototype = filter::Notification().set("sym", "X");
  workload::Publisher pub(sim, producer, wc);

  sim.run_until(sim::seconds(1));
  pub.start();
  sim.run_until(sim.now() + sim::seconds(2));

  if (overlap) {
    // Make-before-break: attach at broker 1 while still attached at 3.
    overlay.connect_client(consumer, 1);
    sim.run_until(sim.now() + sim::millis(gap_ms));
    consumer.detach_silently();  // cuts both links
    overlay.connect_client(consumer, 1);
  } else {
    consumer.detach_silently();
    sim.run_until(sim.now() + sim::millis(gap_ms));
    overlay.connect_client(consumer, 1);
  }
  sim.run_until(sim.now() + sim::seconds(2));
  pub.stop();
  sim.run_until(sim.now() + sim::seconds(2));

  std::vector<NotificationId> expected;
  for (std::uint64_t i = 1; i <= pub.published(); ++i) {
    expected.emplace_back((static_cast<std::uint64_t>(2) << 32) | i);
  }
  const auto rep = metrics::check_exactly_once(consumer.deliveries(), expected);
  return {pub.published(), rep.delivered, rep.missing, rep.duplicates};
}

void report(const char* label, const Result& r) {
  std::cout << std::left << std::setw(44) << label << std::right
            << std::setw(10) << r.published << std::setw(11) << r.delivered
            << std::setw(9) << r.missing << std::setw(11) << r.duplicates
            << "\n";
}

}  // namespace

int main() {
  std::cout << "Fig. 2: naive relocation loses and duplicates notifications\n"
            << "(100 notifications/s; client roams broker 3 -> broker 1)\n\n";
  std::cout << std::left << std::setw(44) << "scenario" << std::right
            << std::setw(10) << "published" << std::setw(11) << "delivered"
            << std::setw(9) << "missing" << std::setw(11) << "duplicates"
            << "\n";

  for (double gap : {50.0, 200.0, 1000.0}) {
    const auto naive = run(client::RelocationMode::naive, false, gap,
                           routing::Strategy::flooding);
    std::ostringstream label;
    label << "naive resub, flooding, gap " << gap << " ms";
    report(label.str().c_str(), naive);
  }
  const auto dup = run(client::RelocationMode::naive, true, 200.0,
                       routing::Strategy::flooding);
  report("naive overlap (make-before-break), flooding", dup);

  for (double gap : {50.0, 200.0, 1000.0}) {
    const auto rebeca =
        run(client::RelocationMode::rebeca, false, gap, routing::Strategy::covering);
    std::ostringstream label;
    label << "Sec. 4 relocation protocol, gap " << gap << " ms";
    report(label.str().c_str(), rebeca);
  }

  std::cout << "\nexpected shape: naive rows lose (gap x rate + blackout) "
               "notifications, the overlap row duplicates, the protocol rows "
               "deliver everything exactly once.\n";
  return 0;
}
