// Constraint semantics: matching, covering, overlap and merging — the
// decision procedures content-based routing rests on (paper Sec. 2.2).
#include <gtest/gtest.h>

#include "src/filter/constraint.hpp"
#include "src/util/assert.hpp"

namespace rebeca::filter {
namespace {

using C = Constraint;

// ---------------------------------------------------------------------------
// matches
// ---------------------------------------------------------------------------

TEST(ConstraintMatch, Any) {
  EXPECT_TRUE(C::any().matches(Value(1)));
  EXPECT_TRUE(C::any().matches(Value("x")));
}

TEST(ConstraintMatch, EqNumericCrossType) {
  EXPECT_TRUE(C::eq(Value(3)).matches(Value(3)));
  EXPECT_TRUE(C::eq(Value(3)).matches(Value(3.0)));
  EXPECT_TRUE(C::eq(Value(3.0)).matches(Value(3)));
  EXPECT_FALSE(C::eq(Value(3)).matches(Value(4)));
  EXPECT_FALSE(C::eq(Value(3)).matches(Value("3")));
}

TEST(ConstraintMatch, NeIsComplementOfEq) {
  EXPECT_FALSE(C::ne(Value("a")).matches(Value("a")));
  EXPECT_TRUE(C::ne(Value("a")).matches(Value("b")));
  // Incomparable types are "not equal".
  EXPECT_TRUE(C::ne(Value("a")).matches(Value(1)));
}

TEST(ConstraintMatch, OrderedOps) {
  EXPECT_TRUE(C::lt(Value(5)).matches(Value(4)));
  EXPECT_FALSE(C::lt(Value(5)).matches(Value(5)));
  EXPECT_TRUE(C::le(Value(5)).matches(Value(5)));
  EXPECT_TRUE(C::gt(Value(5)).matches(Value(5.5)));
  EXPECT_FALSE(C::gt(Value(5)).matches(Value(5)));
  EXPECT_TRUE(C::ge(Value(5)).matches(Value(5)));
  EXPECT_FALSE(C::ge(Value(5)).matches(Value(4.9)));
}

TEST(ConstraintMatch, OrderedOpsRejectIncomparable) {
  EXPECT_FALSE(C::lt(Value(5)).matches(Value("4")));
  EXPECT_FALSE(C::ge(Value("a")).matches(Value(10)));
}

TEST(ConstraintMatch, StringOrdering) {
  EXPECT_TRUE(C::lt(Value("n")).matches(Value("m")));
  EXPECT_FALSE(C::lt(Value("n")).matches(Value("n")));
  EXPECT_TRUE(C::ge(Value("b")).matches(Value("ba")));
}

TEST(ConstraintMatch, InSet) {
  auto c = C::in_set({Value("a"), Value("b")});
  EXPECT_TRUE(c.matches(Value("a")));
  EXPECT_TRUE(c.matches(Value("b")));
  EXPECT_FALSE(c.matches(Value("c")));
}

TEST(ConstraintMatch, InSetNumericEquality) {
  auto c = C::in_set({Value(1), Value(2)});
  EXPECT_TRUE(c.matches(Value(2.0)));  // 2.0 equals member 2
  EXPECT_FALSE(c.matches(Value(2.5)));
}

TEST(ConstraintMatch, Prefix) {
  auto c = C::prefix("100 Rebeca");
  EXPECT_TRUE(c.matches(Value("100 Rebeca Drive")));
  EXPECT_TRUE(c.matches(Value("100 Rebeca")));
  EXPECT_FALSE(c.matches(Value("101 Rebeca Drive")));
  EXPECT_FALSE(c.matches(Value(100)));
}

TEST(ConstraintMatch, RangeInclusive) {
  auto c = C::range(Value(2), Value(5));
  EXPECT_TRUE(c.matches(Value(2)));
  EXPECT_TRUE(c.matches(Value(5)));
  EXPECT_TRUE(c.matches(Value(3.7)));
  EXPECT_FALSE(c.matches(Value(1.999)));
  EXPECT_FALSE(c.matches(Value(5.001)));
  EXPECT_FALSE(c.matches(Value("3")));
}

TEST(ConstraintMatch, RangeBoundsValidated) {
  EXPECT_THROW(C::range(Value(5), Value(2)), util::AssertionError);
}

// ---------------------------------------------------------------------------
// covers — exactness cases
// ---------------------------------------------------------------------------

TEST(ConstraintCovers, AnyCoversEverything) {
  EXPECT_TRUE(C::any().covers(C::eq(Value(1))));
  EXPECT_TRUE(C::any().covers(C::lt(Value(5))));
  EXPECT_TRUE(C::any().covers(C::any()));
  EXPECT_FALSE(C::eq(Value(1)).covers(C::any()));
}

TEST(ConstraintCovers, EqCoversOnlyEquivalents) {
  EXPECT_TRUE(C::eq(Value(3)).covers(C::eq(Value(3))));
  EXPECT_TRUE(C::eq(Value(3)).covers(C::eq(Value(3.0))));
  EXPECT_TRUE(C::eq(Value(3)).covers(C::in_set({Value(3)})));
  EXPECT_TRUE(C::eq(Value(3)).covers(C::range(Value(3), Value(3))));
  EXPECT_FALSE(C::eq(Value(3)).covers(C::in_set({Value(3), Value(4)})));
  EXPECT_FALSE(C::eq(Value(3)).covers(C::le(Value(3))));
}

TEST(ConstraintCovers, IntervalNesting) {
  EXPECT_TRUE(C::lt(Value(10)).covers(C::lt(Value(10))));
  EXPECT_TRUE(C::lt(Value(10)).covers(C::lt(Value(5))));
  EXPECT_TRUE(C::lt(Value(10)).covers(C::le(Value(9))));
  EXPECT_FALSE(C::lt(Value(10)).covers(C::le(Value(10))));
  EXPECT_TRUE(C::le(Value(10)).covers(C::lt(Value(10))));
  EXPECT_TRUE(C::ge(Value(0)).covers(C::gt(Value(0))));
  EXPECT_FALSE(C::gt(Value(0)).covers(C::ge(Value(0))));
  EXPECT_TRUE(C::gt(Value(0)).covers(C::gt(Value(1))));
  EXPECT_TRUE(C::range(Value(0), Value(10)).covers(C::range(Value(2), Value(8))));
  EXPECT_FALSE(C::range(Value(0), Value(10)).covers(C::range(Value(2), Value(11))));
  EXPECT_TRUE(C::lt(Value(11)).covers(C::range(Value(2), Value(10))));
  EXPECT_FALSE(C::range(Value(0), Value(10)).covers(C::lt(Value(5))));  // unbounded below
}

TEST(ConstraintCovers, IntervalCoversWitnessSets) {
  EXPECT_TRUE(C::lt(Value(10)).covers(C::in_set({Value(1), Value(9)})));
  EXPECT_FALSE(C::lt(Value(10)).covers(C::in_set({Value(1), Value(10)})));
  EXPECT_TRUE(C::range(Value(0), Value(5)).covers(C::eq(Value(2.5))));
}

TEST(ConstraintCovers, NeCoversWhatNeverAcceptsItsValue) {
  EXPECT_TRUE(C::ne(Value(5)).covers(C::eq(Value(4))));
  EXPECT_FALSE(C::ne(Value(5)).covers(C::eq(Value(5))));
  EXPECT_TRUE(C::ne(Value(5)).covers(C::ne(Value(5))));
  EXPECT_FALSE(C::ne(Value(5)).covers(C::ne(Value(6))));
  EXPECT_TRUE(C::ne(Value(5)).covers(C::gt(Value(5))));
  EXPECT_TRUE(C::ne(Value(5)).covers(C::lt(Value(5))));
  EXPECT_FALSE(C::ne(Value(5)).covers(C::le(Value(5))));
  EXPECT_TRUE(C::ne(Value(5)).covers(C::in_set({Value(1), Value(2)})));
  EXPECT_FALSE(C::ne(Value(5)).covers(C::in_set({Value(1), Value(5)})));
  EXPECT_TRUE(C::ne(Value("ab")).covers(C::prefix("b")));
  EXPECT_FALSE(C::ne(Value("ab")).covers(C::prefix("a")));
  EXPECT_TRUE(C::ne(Value("zzz")).covers(C::range(Value(1), Value(2))));
}

TEST(ConstraintCovers, InSetSubsets) {
  auto big = C::in_set({Value("a"), Value("b"), Value("c")});
  EXPECT_TRUE(big.covers(C::in_set({Value("a"), Value("c")})));
  EXPECT_TRUE(big.covers(C::eq(Value("b"))));
  EXPECT_FALSE(big.covers(C::in_set({Value("a"), Value("d")})));
  EXPECT_FALSE(big.covers(C::prefix("a")));
  EXPECT_FALSE(big.covers(C::lt(Value("b"))));
}

TEST(ConstraintCovers, PrefixNesting) {
  EXPECT_TRUE(C::prefix("m").covers(C::prefix("ma")));
  EXPECT_FALSE(C::prefix("ma").covers(C::prefix("m")));
  EXPECT_TRUE(C::prefix("m").covers(C::eq(Value("maple"))));
  EXPECT_FALSE(C::prefix("m").covers(C::eq(Value("oak"))));
  EXPECT_TRUE(C::prefix("m").covers(C::in_set({Value("ma"), Value("mb")})));
  EXPECT_TRUE(C::prefix("m").covers(C::range(Value("ma"), Value("mz"))));
  EXPECT_FALSE(C::prefix("m").covers(C::range(Value("la"), Value("mz"))));
}

TEST(ConstraintCovers, OrderedVsPrefixStringBounds) {
  // All strings with prefix "m" are < "n" lexicographically.
  EXPECT_TRUE(C::lt(Value("n")).covers(C::prefix("m")));
  EXPECT_FALSE(C::lt(Value("mz")).covers(C::prefix("m")));  // "mzz" > "mz"
  EXPECT_TRUE(C::ge(Value("m")).covers(C::prefix("m")));
  EXPECT_FALSE(C::gt(Value("m")).covers(C::prefix("m")));  // "m" itself matches
  EXPECT_TRUE(C::gt(Value("l")).covers(C::prefix("m")));
  EXPECT_TRUE(C::range(Value("m"), Value("n")).covers(C::prefix("m")));
  EXPECT_FALSE(C::range(Value("m"), Value("mzzz")).covers(C::prefix("m")));
}

TEST(ConstraintCovers, IncomparableTypesNeverCover) {
  EXPECT_FALSE(C::lt(Value(5)).covers(C::lt(Value("a"))));
  EXPECT_FALSE(C::range(Value(0), Value(9)).covers(C::eq(Value("5"))));
}

// Soundness sweep: whenever covers() says true, every accepted value of
// the inner constraint must be accepted by the outer one.
class ConstraintCoverSoundness
    : public ::testing::TestWithParam<std::pair<Constraint, Constraint>> {};

std::vector<Value> probe_values() {
  return {Value(-10), Value(0),    Value(1),     Value(2),     Value(3),
          Value(5),   Value(7),   Value(10),    Value(2.5),   Value(4.999),
          Value(5.0), Value(5.001), Value("a"), Value("ab"),  Value("abc"),
          Value("b"), Value("m"),  Value("ma"), Value("mzzz"), Value("n"),
          Value(true), Value(false)};
}

std::vector<Constraint> constraint_zoo() {
  return {C::any(),
          C::eq(Value(5)),
          C::eq(Value(5.0)),
          C::eq(Value("ab")),
          C::ne(Value(5)),
          C::ne(Value("m")),
          C::lt(Value(5)),
          C::le(Value(5)),
          C::gt(Value(5)),
          C::ge(Value(5)),
          C::lt(Value("n")),
          C::ge(Value("m")),
          C::in_set({Value(1), Value(2), Value(3)}),
          C::in_set({Value("a"), Value("ab")}),
          C::prefix("m"),
          C::prefix("ma"),
          C::prefix("a"),
          C::range(Value(0), Value(10)),
          C::range(Value(2), Value(5)),
          C::range(Value("m"), Value("n")),
          C::range(Value(5), Value(5))};
}

TEST(ConstraintCovers, SoundnessSweep) {
  const auto zoo = constraint_zoo();
  const auto probes = probe_values();
  int cover_pairs = 0;
  for (const auto& outer : zoo) {
    for (const auto& inner : zoo) {
      if (!outer.covers(inner)) continue;
      ++cover_pairs;
      for (const auto& v : probes) {
        if (inner.matches(v)) {
          EXPECT_TRUE(outer.matches(v))
              << outer << " claims to cover " << inner << " but rejects " << v;
        }
      }
    }
  }
  EXPECT_GT(cover_pairs, 30);  // the sweep actually exercised covering
}

// ---------------------------------------------------------------------------
// overlaps — conservative, but exact where decidable
// ---------------------------------------------------------------------------

TEST(ConstraintOverlap, DisjointIntervals) {
  EXPECT_FALSE(C::lt(Value(5)).overlaps(C::gt(Value(5))));
  EXPECT_TRUE(C::le(Value(5)).overlaps(C::ge(Value(5))));
  EXPECT_FALSE(C::range(Value(0), Value(2)).overlaps(C::range(Value(3), Value(4))));
  EXPECT_TRUE(C::range(Value(0), Value(3)).overlaps(C::range(Value(3), Value(4))));
}

TEST(ConstraintOverlap, WitnessExact) {
  EXPECT_TRUE(C::eq(Value(5)).overlaps(C::le(Value(5))));
  EXPECT_FALSE(C::eq(Value(5)).overlaps(C::lt(Value(5))));
  EXPECT_FALSE(C::in_set({Value(1), Value(2)}).overlaps(C::gt(Value(2))));
  EXPECT_TRUE(C::in_set({Value(1), Value(3)}).overlaps(C::gt(Value(2))));
}

TEST(ConstraintOverlap, PrefixPairs) {
  EXPECT_TRUE(C::prefix("m").overlaps(C::prefix("ma")));
  EXPECT_TRUE(C::prefix("ma").overlaps(C::prefix("m")));
  EXPECT_FALSE(C::prefix("ma").overlaps(C::prefix("mb")));
}

TEST(ConstraintOverlap, PrefixVsInterval) {
  EXPECT_TRUE(C::prefix("m").overlaps(C::lt(Value("mz"))));
  EXPECT_FALSE(C::prefix("m").overlaps(C::lt(Value("m"))));
  EXPECT_FALSE(C::prefix("m").overlaps(C::ge(Value("n"))));
}

TEST(ConstraintOverlap, DifferentTypeDomainsAreDisjoint) {
  EXPECT_FALSE(C::lt(Value(5)).overlaps(C::gt(Value("a"))));
}

TEST(ConstraintOverlap, NeOverlapsAlmostEverything) {
  EXPECT_TRUE(C::ne(Value(5)).overlaps(C::lt(Value(6))));
  EXPECT_FALSE(C::ne(Value(5)).overlaps(C::eq(Value(5))));
  EXPECT_TRUE(C::ne(Value(5)).overlaps(C::eq(Value(6))));
}

// Soundness: overlap must never report false when a common value exists.
TEST(ConstraintOverlap, NeverFalseNegativeSweep) {
  const auto zoo = constraint_zoo();
  const auto probes = probe_values();
  for (const auto& a : zoo) {
    for (const auto& b : zoo) {
      bool common = false;
      for (const auto& v : probes) {
        if (a.matches(v) && b.matches(v)) {
          common = true;
          break;
        }
      }
      if (common) {
        EXPECT_TRUE(a.overlaps(b))
            << a << " and " << b << " share a value but overlaps() == false";
      }
    }
  }
}

// ---------------------------------------------------------------------------
// try_merge — exact unions only
// ---------------------------------------------------------------------------

TEST(ConstraintMerge, CoverAbsorbs) {
  auto m = C::lt(Value(10)).try_merge(C::lt(Value(5)));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(*m, C::lt(Value(10)));
}

TEST(ConstraintMerge, WitnessUnion) {
  auto m = C::eq(Value("a")).try_merge(C::eq(Value("b")));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(*m, C::in_set({Value("a"), Value("b")}));

  auto m2 = C::in_set({Value(1)}).try_merge(C::in_set({Value(2), Value(3)}));
  ASSERT_TRUE(m2.has_value());
  EXPECT_EQ(*m2, C::in_set({Value(1), Value(2), Value(3)}));
}

TEST(ConstraintMerge, OverlappingRangesHull) {
  auto m = C::range(Value(0), Value(5)).try_merge(C::range(Value(3), Value(9)));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(*m, C::range(Value(0), Value(9)));
}

TEST(ConstraintMerge, DisjointRangesDoNotMerge) {
  EXPECT_FALSE(
      C::range(Value(0), Value(2)).try_merge(C::range(Value(4), Value(6))).has_value());
}

TEST(ConstraintMerge, UnmergeablePairs) {
  EXPECT_FALSE(C::lt(Value(5)).try_merge(C::gt(Value(7))).has_value());
  EXPECT_FALSE(C::prefix("a").try_merge(C::prefix("b")).has_value());
}

// Exactness: the merged constraint accepts exactly the union.
TEST(ConstraintMerge, ExactnessSweep) {
  const auto zoo = constraint_zoo();
  const auto probes = probe_values();
  int merges = 0;
  for (const auto& a : zoo) {
    for (const auto& b : zoo) {
      auto m = a.try_merge(b);
      if (!m.has_value()) continue;
      ++merges;
      for (const auto& v : probes) {
        EXPECT_EQ(m->matches(v), a.matches(v) || b.matches(v))
            << "merge of " << a << " and " << b << " is inexact at " << v;
      }
    }
  }
  EXPECT_GT(merges, 20);
}

TEST(ConstraintPrint, ToStringForms) {
  EXPECT_EQ(C::any().to_string(), "*");
  EXPECT_EQ(C::eq(Value(3)).to_string(), "== 3");
  EXPECT_EQ(C::prefix("m").to_string(), "prefix \"m\"");
  EXPECT_EQ(C::range(Value(1), Value(2)).to_string(), "in [1, 2]");
  EXPECT_EQ(C::in_set({Value("a")}).to_string(), "in {\"a\"}");
}

}  // namespace
}  // namespace rebeca::filter
