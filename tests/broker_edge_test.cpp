// Edge cases and failure injection around the broker protocols:
// operations racing relocations, advertisement churn, bye/unsubscribe at
// awkward moments, and bounded-state behaviors.
#include <gtest/gtest.h>

#include <memory>

#include "tests/scenario_world.hpp"

namespace rebeca {
namespace {

using broker::OverlayConfig;
using client::Client;
using client::ClientConfig;
using scenario::TopologySpec;
using testutil::World;

filter::Filter ticks() {
  return filter::Filter().where("sym", filter::Constraint::eq("X"));
}

filter::Notification tick(int px) {
  return filter::Notification().set("sym", "X").set("px", px);
}

TEST(BrokerEdge, UnsubscribeDuringRelocationCleansUp) {
  World w(TopologySpec::chain(4));
  Client& consumer = w.add_client(1, 3);
  Client& producer = w.add_client(2, 0);
  auto sub = consumer.subscribe(ticks());
  w.settle();
  producer.publish(tick(1));
  w.settle();

  consumer.detach_silently();
  w.settle(0.1);
  w.overlay.connect_client(consumer, 0);
  // Unsubscribe immediately, while the relocation is still in flight.
  consumer.unsubscribe(sub);
  w.settle(5.0);

  // Whatever raced, no state leaks: sessions stay, subs and virtuals go.
  for (std::size_t b = 0; b < 4; ++b) {
    EXPECT_EQ(w.overlay.broker(b).virtual_count(), 0u) << "broker " << b;
  }
  producer.publish(tick(2));
  w.settle();
  EXPECT_LE(consumer.deliveries().size(), 2u);  // never the new tick
}

TEST(BrokerEdge, ByeWhileRelocationPending) {
  World w(TopologySpec::chain(4));
  Client& consumer = w.add_client(1, 3);
  Client& producer = w.add_client(2, 0);
  consumer.subscribe(ticks());
  w.settle();
  producer.publish(tick(1));
  w.settle();

  consumer.detach_silently();
  w.settle(0.1);
  w.overlay.connect_client(consumer, 0);
  w.sim.run_until(w.sim.now() + sim::millis(2));
  consumer.detach_gracefully();  // sign off mid-relocation
  w.settle(5.0);

  for (std::size_t b = 0; b < 4; ++b) {
    EXPECT_EQ(w.overlay.broker(b).virtual_count(), 0u) << "broker " << b;
  }
  // The producer's session at broker 0 survives; the consumer's is gone.
  EXPECT_EQ(w.overlay.broker(0).session_count(), 1u);
  EXPECT_EQ(w.overlay.broker(3).session_count(), 0u);
  EXPECT_FALSE(consumer.connected());
}

TEST(BrokerEdge, AdvertisementChurnKeepsDeliveryCorrect) {
  OverlayConfig cfg;
  cfg.broker.use_advertisements = true;
  World w(TopologySpec::chain(4), cfg);
  Client& consumer = w.add_client(1, 0);
  Client& producer = w.add_client(2, 3);
  consumer.subscribe(ticks());
  w.settle();

  // Advertise → publish → unadvertise → publish (dropped en route is
  // acceptable only after the unadvertise propagates) → re-advertise.
  auto adv = producer.advertise(filter::Filter().where("sym", filter::Constraint::any()));
  w.settle();
  producer.publish(tick(1));
  w.settle();
  EXPECT_EQ(consumer.deliveries().size(), 1u);

  producer.unadvertise(adv);
  w.settle();
  // Subscriptions were pruned back: upstream brokers dropped the entry.
  EXPECT_EQ(w.overlay.broker(3).routing_entry_count(), 0u);

  producer.advertise(filter::Filter().where("sym", filter::Constraint::any()));
  w.settle();
  producer.publish(tick(2));
  w.settle();
  EXPECT_EQ(consumer.deliveries().size(), 2u);
}

TEST(BrokerEdge, NonOverlappingAdvertisementDoesNotPullSubscription) {
  OverlayConfig cfg;
  cfg.broker.use_advertisements = true;
  World w(TopologySpec::chain(3), cfg);
  Client& consumer = w.add_client(1, 0);
  Client& producer = w.add_client(2, 2);
  producer.advertise(filter::Filter().where("sym", filter::Constraint::eq("Y")));
  consumer.subscribe(ticks());  // sym == "X": disjoint from the adv
  w.settle();
  EXPECT_EQ(w.overlay.broker(2).routing_entry_count(), 0u);
}

TEST(BrokerEdge, ManySubscriptionsOneClientRoam) {
  World w(TopologySpec::chain(4));
  Client& consumer = w.add_client(1, 3);
  Client& producer = w.add_client(2, 0);
  std::vector<std::uint32_t> subs;
  for (int i = 0; i < 12; ++i) {
    subs.push_back(consumer.subscribe(
        filter::Filter().where("topic", filter::Constraint::eq("t" + std::to_string(i)))));
  }
  w.settle();
  for (int i = 0; i < 12; ++i) {
    producer.publish(filter::Notification().set("topic", "t" + std::to_string(i)));
  }
  w.settle();
  consumer.detach_silently();
  w.settle(0.1);
  for (int i = 0; i < 12; ++i) {
    producer.publish(filter::Notification().set("topic", "t" + std::to_string(i)).set("r", 2));
  }
  w.settle(0.3);
  w.overlay.connect_client(consumer, 1);
  w.settle(5.0);

  EXPECT_EQ(consumer.deliveries().size(), 24u);
  EXPECT_EQ(consumer.duplicate_count(), 0u);
  for (std::size_t b = 0; b < 4; ++b) {
    EXPECT_EQ(w.overlay.broker(b).virtual_count(), 0u);
  }
}

TEST(BrokerEdge, PublisherRoamsWhilePublishing) {
  // Producer-side mobility: offline publications queue and flush.
  World w(TopologySpec::chain(3));
  Client& consumer = w.add_client(1, 0);
  Client& producer = w.add_client(2, 2);
  consumer.subscribe(ticks());
  w.settle();

  producer.publish(tick(1));
  w.settle();
  producer.detach_silently();
  producer.publish(tick(2));  // queued offline
  producer.publish(tick(3));
  w.settle(0.5);
  w.overlay.connect_client(producer, 1);  // different broker
  w.settle();

  ASSERT_EQ(consumer.deliveries().size(), 3u);
  EXPECT_TRUE(std::is_sorted(
      consumer.deliveries().begin(), consumer.deliveries().end(),
      [](const auto& a, const auto& b) {
        return a.notification.producer_seq() < b.notification.producer_seq();
      }));
}

TEST(BrokerEdge, ZeroCapacityHistoryStillWorksWhenConnected) {
  OverlayConfig cfg;
  cfg.broker.session_history = 1;  // pathological but legal
  World w(TopologySpec::chain(2), cfg);
  Client& consumer = w.add_client(1, 0);
  Client& producer = w.add_client(2, 1);
  consumer.subscribe(ticks());
  w.settle();
  for (int i = 0; i < 10; ++i) producer.publish(tick(i));
  w.settle();
  EXPECT_EQ(consumer.deliveries().size(), 10u);
}

TEST(BrokerEdge, RelocationSurvivesBystanderUnsubscribe) {
  // The covering entry the fetch fallback would follow disappears while
  // the relocation is in flight; per-key tags must still find the path.
  OverlayConfig cfg;
  cfg.broker.strategy = routing::Strategy::covering;
  World w(TopologySpec::chain(4), cfg);
  Client& bystander = w.add_client(3, 1);
  auto broad = bystander.subscribe(filter::Filter());
  Client& consumer = w.add_client(1, 3);
  Client& producer = w.add_client(2, 0);
  consumer.subscribe(ticks());
  w.settle();

  producer.publish(tick(1));
  w.settle();
  consumer.detach_silently();
  w.settle(0.1);
  producer.publish(tick(2));
  w.settle(0.1);
  bystander.unsubscribe(broad);  // cover vanishes mid-flight
  w.overlay.connect_client(consumer, 0);
  w.settle(5.0);

  EXPECT_EQ(consumer.deliveries().size(), 2u);
  EXPECT_EQ(consumer.duplicate_count(), 0u);
}

TEST(BrokerEdge, TwoClientsSameFilterRoamIndependently) {
  World w(TopologySpec::chain(4));
  Client& a = w.add_client(1, 3);
  Client& b = w.add_client(2, 3);  // same border, same filter
  Client& producer = w.add_client(3, 0);
  a.subscribe(ticks());
  b.subscribe(ticks());
  w.settle();
  producer.publish(tick(1));
  w.settle();

  a.detach_silently();  // only a moves
  w.settle(0.1);
  producer.publish(tick(2));
  w.settle(0.2);
  w.overlay.connect_client(a, 1);
  w.settle(5.0);
  producer.publish(tick(3));
  w.settle();

  EXPECT_EQ(a.deliveries().size(), 3u);
  EXPECT_EQ(b.deliveries().size(), 3u);
  EXPECT_EQ(a.duplicate_count(), 0u);
  EXPECT_EQ(b.duplicate_count(), 0u);
}

TEST(BrokerEdge, ReplayPreservedAcrossManyQuickHops) {
  // Hammer the epoch chaining: five hops with barely any dwell.
  World w(TopologySpec::chain(6), OverlayConfig{}, 5);
  Client& consumer = w.add_client(1, 5);
  Client& producer = w.add_client(2, 0);
  consumer.subscribe(ticks());
  w.settle();

  workload::PublisherConfig pc;
  pc.rate = workload::RateModel::periodic(sim::millis(7));
  pc.prototype = filter::Notification().set("sym", "X");
  workload::Publisher pub(w.sim, producer, pc);
  pub.start();
  w.settle(0.5);

  for (std::size_t hop : {0u, 4u, 1u, 3u, 2u}) {
    consumer.detach_silently();
    w.sim.run_until(w.sim.now() + sim::millis(15));
    w.overlay.connect_client(consumer, hop);
    w.sim.run_until(w.sim.now() + sim::millis(25));
  }
  w.settle(1.0);
  pub.stop();
  w.settle(25.0);

  EXPECT_EQ(consumer.deliveries().size(), pub.published());
  EXPECT_EQ(consumer.duplicate_count(), 0u);
  std::uint64_t prev = 0;
  for (const auto& d : consumer.deliveries()) {
    EXPECT_EQ(d.notification.producer_seq(), prev + 1);
    prev = d.notification.producer_seq();
  }
}

}  // namespace
}  // namespace rebeca
