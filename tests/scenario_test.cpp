// The scenario layer: declarative composition must reproduce hand-wired
// experiments exactly, phases must gate workloads, movement plans must
// drive real roaming, and reports must be deterministic functions of the
// declaration (byte-identical across equal-seed runs).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/broker/overlay.hpp"
#include "src/client/client.hpp"
#include "src/net/topology.hpp"
#include "src/scenario/scenario.hpp"
#include "src/workload/publisher.hpp"

namespace rebeca {
namespace {

using scenario::PublishSpec;
using scenario::RoamSpec;
using scenario::Scenario;
using scenario::ScenarioBuilder;
using scenario::ScenarioReport;
using scenario::TopologySpec;
using scenario::WalkSpec;

filter::Filter ticks() {
  return filter::Filter().where("sym", filter::Constraint::eq("X"));
}

// ---------------------------------------------------------------------------
// Equivalence with hand-wired composition
// ---------------------------------------------------------------------------

// The reference: a roaming experiment wired the way every bench used to
// do it — manual Simulation/Overlay/Client/Publisher construction.
struct HandWired {
  std::vector<std::uint64_t> delivered_seqs;
  std::uint64_t duplicates = 0;
  std::uint64_t published = 0;
};

HandWired run_hand_wired() {
  sim::Simulation sim(99);
  broker::Overlay overlay(sim, net::Topology::chain(4), broker::OverlayConfig{});

  client::ClientConfig cc;
  cc.id = ClientId(1);
  client::Client consumer(sim, cc);
  overlay.connect_client(consumer, 3);
  consumer.subscribe(ticks());

  client::ClientConfig pc;
  pc.id = ClientId(2);
  client::Client producer(sim, pc);
  overlay.connect_client(producer, 0);
  workload::PublisherConfig wc;
  wc.rate = workload::RateModel::periodic(sim::millis(10));
  wc.prototype = filter::Notification().set("sym", "X");
  wc.seed = 3;
  workload::Publisher pub(sim, producer, wc);

  sim.run_until(sim::seconds(1));
  pub.start();
  sim.run_until(sim.now() + sim::seconds(1));
  consumer.detach_silently();
  sim.run_until(sim.now() + sim::millis(300));
  overlay.connect_client(consumer, 1);
  sim.run_until(sim.now() + sim::seconds(1));
  pub.stop();
  sim.run_until(sim.now() + sim::seconds(1));

  HandWired result;
  for (const auto& d : consumer.deliveries()) {
    result.delivered_seqs.push_back(d.notification.producer_seq());
  }
  result.duplicates = consumer.duplicate_count();
  result.published = pub.published();
  return result;
}

std::unique_ptr<Scenario> declare_equivalent_scenario() {
  ScenarioBuilder b;
  b.seed(99).topology(TopologySpec::chain(4));
  b.client("consumer").with_id(1).at_broker(3).subscribes(ticks());
  b.client("producer")
      .with_id(2)
      .at_broker(0)
      .publishes(PublishSpec()
                     .every(sim::millis(10))
                     .body(filter::Notification().set("sym", "X"))
                     .with_seed(3)
                     .from_phase("traffic")
                     .until_phase_end("after"));
  b.phase("settle", sim::seconds(1));
  b.phase("traffic", sim::seconds(1));
  b.phase("dark", sim::millis(300),
          [](Scenario& s) { s.detach("consumer"); });
  b.phase("after", sim::seconds(1),
          [](Scenario& s) { s.connect("consumer", 1); });
  b.phase("drain", sim::seconds(1));
  return b.build();
}

TEST(Scenario, ReproducesHandWiredRoamingExactly) {
  const HandWired reference = run_hand_wired();
  ASSERT_GT(reference.published, 0u);

  auto s = declare_equivalent_scenario();
  s->run();

  const auto& deliveries = s->client("consumer").deliveries();
  std::vector<std::uint64_t> seqs;
  for (const auto& d : deliveries) seqs.push_back(d.notification.producer_seq());

  EXPECT_EQ(s->published_by("producer"), reference.published);
  EXPECT_EQ(seqs, reference.delivered_seqs);
  EXPECT_EQ(s->client("consumer").duplicate_count(), reference.duplicates);

  // And the report agrees with the raw logs.
  const ScenarioReport report = s->report();
  EXPECT_EQ(report.client("consumer").delivered, deliveries.size());
  EXPECT_EQ(report.client("consumer").missing, 0u);
  EXPECT_EQ(report.client("consumer").duplicates, 0u);
  EXPECT_EQ(report.published, reference.published);
}

// ---------------------------------------------------------------------------
// Determinism
// ---------------------------------------------------------------------------

std::unique_ptr<Scenario> declare_stochastic_scenario(std::uint64_t seed) {
  ScenarioBuilder b;
  b.seed(seed)
      .topology(TopologySpec::balanced_tree(2, 2))
      .locations(scenario::LocationSpec::grid(4, 4));
  b.client("consumer")
      .at_broker(3)
      .subscribes(ticks())
      .roams(RoamSpec()
                 .random_waypoint()
                 .dwelling(sim::millis(700))
                 .dark_for(sim::millis(150))
                 .with_seed(21)
                 .from_phase("move"));
  b.client("walker")
      .at_broker(4)
      .starts_at("g0_0")
      .walks(WalkSpec().residing(sim::millis(300)).with_seed(8).from_phase("move"));
  b.client("producer")
      .at_broker(6)
      .publishes(PublishSpec()
                     .poisson(sim::millis(40))
                     .body(filter::Notification().set("sym", "X"))
                     .uniform_locations()
                     .with_seed(12)
                     .from_phase("move")
                     .until_phase_end("move"));
  b.phase("settle", sim::seconds(1));
  b.phase("move", sim::seconds(5));
  b.phase("drain", sim::seconds(2));
  return b.build();
}

TEST(Scenario, EqualSeedsProduceByteIdenticalReports) {
  auto a = declare_stochastic_scenario(1234);
  auto b = declare_stochastic_scenario(1234);
  a->run();
  b->run();
  const std::string ra = a->report().to_string();
  const std::string rb = b->report().to_string();
  EXPECT_EQ(ra, rb);
  // Not vacuous: traffic actually flowed.
  EXPECT_GT(a->report().published, 0u);
  EXPECT_GT(a->report().delivered, 0u);
}

TEST(Scenario, ReportTracksExactlyOnceUnderRandomWaypointRoaming) {
  // The relocation protocol holds under machine-generated movement too:
  // seeded random-waypoint roaming over the broker graph, no losses, no
  // duplicates.
  ScenarioBuilder b;
  b.seed(5).topology(TopologySpec::chain(5));
  b.client("consumer")
      .at_broker(4)
      .subscribes(ticks())
      .roams(RoamSpec()
                 .random_waypoint()
                 .dwelling(sim::millis(900))
                 .dark_for(sim::millis(200))
                 .hops(4)
                 .with_seed(77)
                 .from_phase("move"));
  b.client("producer")
      .at_broker(0)
      .publishes(PublishSpec()
                     .every(sim::millis(10))
                     .body(filter::Notification().set("sym", "X"))
                     .from_phase("move")
                     .until_phase_end("move"));
  b.phase("settle", sim::seconds(1));
  b.phase("move", sim::seconds(6));
  b.phase("drain", sim::seconds(5));

  auto s = b.build();
  s->run();
  const ScenarioReport report = s->report();
  EXPECT_GT(report.published, 100u);
  EXPECT_EQ(report.client("consumer").missing, 0u);
  EXPECT_EQ(report.client("consumer").duplicates, 0u);
  EXPECT_EQ(report.client("consumer").delivered, report.published);
}

// ---------------------------------------------------------------------------
// Phase schedule
// ---------------------------------------------------------------------------

TEST(Scenario, PhasesGateWorkloads) {
  ScenarioBuilder b;
  b.seed(1).topology(TopologySpec::chain(2));
  b.client("consumer").at_broker(0).subscribes(ticks());
  b.client("producer")
      .at_broker(1)
      .publishes(PublishSpec()
                     .every(sim::millis(100))
                     .body(filter::Notification().set("sym", "X"))
                     .from_phase("burst")
                     .until_phase_end("burst"));
  b.phase("settle", sim::seconds(1));
  b.phase("burst", sim::seconds(1));
  b.phase("silence", sim::seconds(3));

  auto s = b.build();
  ASSERT_EQ(s->phases_remaining(), 3u);
  s->run_next_phase();
  EXPECT_EQ(s->published_by("producer"), 0u);  // not started yet
  s->run_next_phase();
  EXPECT_EQ(s->published_by("producer"), 10u);  // 1s at 10/s
  s->run();
  EXPECT_EQ(s->published_by("producer"), 10u);  // stopped after "burst"
  EXPECT_EQ(s->phases_remaining(), 0u);
  EXPECT_FALSE(s->run_next_phase());
}

TEST(Scenario, LatencyPercentilesAreOrderedAndPlausible) {
  ScenarioBuilder b;
  b.seed(3).topology(TopologySpec::chain(3));
  b.client("consumer").at_broker(0).subscribes(ticks());
  b.client("producer")
      .at_broker(2)
      .publishes(PublishSpec()
                     .every(sim::millis(20))
                     .body(filter::Notification().set("sym", "X"))
                     .from_phase("traffic"));
  b.phase("settle", sim::seconds(1));
  b.phase("traffic", sim::seconds(2));
  b.phase("drain", sim::seconds(1));

  auto s = b.build();
  s->run();
  const auto latency = s->report().client("consumer").latency;
  ASSERT_GT(latency.count, 0u);
  // Fixed delays: client link 1ms + 2×5ms broker hops + client link 1ms.
  EXPECT_EQ(latency.p50, sim::millis(12));
  EXPECT_LE(latency.p50, latency.p90);
  EXPECT_LE(latency.p90, latency.p99);
  EXPECT_LE(latency.p99, latency.max);
  EXPECT_EQ(latency.mean, sim::millis(12));
}

TEST(Scenario, AddClientAndImperativeSurface) {
  ScenarioBuilder b;
  b.seed(2).topology(TopologySpec::chain(3));
  b.client("producer").at_broker(2);
  b.phase("all", sim::seconds(1));
  auto s = b.build();

  client::Client& late = s->add_client("latecomer", 0);
  EXPECT_TRUE(s->has_client("latecomer"));
  EXPECT_FALSE(s->has_client("nobody"));
  late.subscribe(ticks());
  s->run_for(sim::seconds(1));
  s->client("producer").publish(filter::Notification().set("sym", "X"));
  s->run();

  EXPECT_EQ(late.deliveries().size(), 1u);
  // Auto-assigned id does not collide with declared ones.
  EXPECT_NE(late.id(), s->client("producer").id());
}

TEST(Scenario, BuildRejectsUnknownPhaseNames) {
  // A typo'd phase would otherwise yield a zero-traffic workload and a
  // vacuously perfect report.
  ScenarioBuilder b;
  b.seed(1).topology(TopologySpec::chain(2));
  b.client("p").at_broker(0).publishes(
      PublishSpec().body(filter::Notification()).from_phase("warm-up"));
  b.phase("warmup", sim::seconds(1));
  EXPECT_THROW(b.build(), util::AssertionError);
}

TEST(Scenario, BuildRejectsDuplicateClientIds) {
  // Duplicate ids collide NotificationIds and silently merge producers.
  ScenarioBuilder b;
  b.seed(1).topology(TopologySpec::chain(2));
  b.client("a").at_broker(0);             // auto-assigned id 1
  b.client("b").at_broker(1).with_id(1);  // explicit collision
  EXPECT_THROW(b.build(), util::AssertionError);
}

TEST(Scenario, BuilderIsReusableAcrossSeeds) {
  // The multi-seed sweep pattern: one declaration, many builds.
  ScenarioBuilder b;
  b.topology(TopologySpec::chain(3));
  b.client("consumer").at_broker(0).subscribes(ticks());
  b.client("producer")
      .at_broker(2)
      .publishes(PublishSpec()
                     .every(sim::millis(50))
                     .body(filter::Notification().set("sym", "X"))
                     .from_phase("traffic")
                     .until_phase_end("traffic"));
  b.phase("settle", sim::seconds(1));
  b.phase("traffic", sim::seconds(1));
  b.phase("drain", sim::seconds(1));

  b.seed(1);
  auto s1 = b.build();
  s1->run();
  b.seed(2);
  auto s2 = b.build();
  s2->run();

  // The second build is not corrupted by the first: the prototype and
  // filters survived, traffic flows, exactly-once holds in both.
  EXPECT_GT(s1->report().client("consumer").delivered, 0u);
  EXPECT_EQ(s1->report().client("consumer").delivered,
            s2->report().client("consumer").delivered);
  EXPECT_EQ(s2->report().client("consumer").missing, 0u);
}

TEST(Scenario, ExternalTopologyAndBorrowedLocations) {
  auto graph = location::LocationGraph::ring(6);
  ScenarioBuilder b;
  b.seed(4)
      .topology(TopologySpec::external(net::Topology::star(4)))
      .locations(&graph);
  b.client("c").at_broker(1).starts_at("r1");
  b.phase("all", sim::millis(100));
  auto s = b.build();
  s->run();
  EXPECT_EQ(s->topology().broker_count(), 4u);
  EXPECT_EQ(s->locations(), &graph);
  EXPECT_EQ(s->client("c").location(), graph.id_of("r1"));
}

}  // namespace
}  // namespace rebeca
