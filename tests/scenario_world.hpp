// Shared scenario-backed test fixture.
//
// The old per-file `World` structs hand-wired Simulation + Overlay +
// clients (and got the member ordering right by luck). This one drives
// the same shape through the scenario layer, so the tests exercise the
// same composition root as the examples and benches: the Scenario owns
// every runtime object in dependency order, and the fixture only adds
// the imperative add_client/settle conveniences the tests want.
#ifndef REBECA_TESTS_SCENARIO_WORLD_HPP
#define REBECA_TESTS_SCENARIO_WORLD_HPP

#include <memory>
#include <string>
#include <utility>

#include "src/scenario/scenario.hpp"

namespace rebeca::testutil {

struct World {
  explicit World(scenario::TopologySpec topo, broker::OverlayConfig cfg = {},
                 std::uint64_t seed = 1,
                 const location::LocationGraph* locations = nullptr)
      : world_(make(std::move(topo), std::move(cfg), seed, locations)),
        sim(world_->sim()),
        overlay(world_->overlay()) {}

  client::Client& add_client(std::uint32_t id, std::size_t broker_index,
                             client::ClientConfig cfg = {}) {
    cfg.id = ClientId(id);
    return world_->add_client("client-" + std::to_string(id), broker_index,
                              std::move(cfg));
  }

  void settle(double secs = 1.0) { world_->run_for(sim::seconds(secs)); }

  [[nodiscard]] scenario::Scenario& scenario() { return *world_; }

 private:
  static std::unique_ptr<scenario::Scenario> make(
      scenario::TopologySpec topo, broker::OverlayConfig cfg,
      std::uint64_t seed, const location::LocationGraph* locations) {
    scenario::ScenarioBuilder b;
    b.seed(seed).topology(std::move(topo)).overlay(std::move(cfg));
    if (locations != nullptr) b.locations(locations);
    return b.build();
  }

  std::unique_ptr<scenario::Scenario> world_;

 public:
  sim::Simulation& sim;
  broker::Overlay& overlay;
};

}  // namespace rebeca::testutil

#endif  // REBECA_TESTS_SCENARIO_WORLD_HPP
