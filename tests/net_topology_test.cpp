// Topology builders and tree queries.
#include <gtest/gtest.h>

#include "src/net/topology.hpp"
#include "src/util/assert.hpp"

namespace rebeca::net {
namespace {

TEST(Topology, ChainShape) {
  auto t = Topology::chain(5);
  EXPECT_EQ(t.broker_count(), 5u);
  EXPECT_EQ(t.edges().size(), 4u);
  EXPECT_TRUE(t.valid());
  EXPECT_EQ(t.neighbors(0).size(), 1u);
  EXPECT_EQ(t.neighbors(2).size(), 2u);
  EXPECT_EQ(t.diameter(), 4u);
}

TEST(Topology, SingleBroker) {
  auto t = Topology::chain(1);
  EXPECT_TRUE(t.valid());
  EXPECT_EQ(t.diameter(), 0u);
  EXPECT_EQ(t.path(0, 0), (std::vector<std::size_t>{0}));
}

TEST(Topology, StarShape) {
  auto t = Topology::star(6);
  EXPECT_TRUE(t.valid());
  EXPECT_EQ(t.neighbors(0).size(), 5u);
  EXPECT_EQ(t.diameter(), 2u);
  for (std::size_t i = 1; i < 6; ++i) EXPECT_EQ(t.neighbors(i).size(), 1u);
}

TEST(Topology, BalancedTreeCounts) {
  auto t = Topology::balanced_tree(2, 2);
  EXPECT_EQ(t.broker_count(), 7u);  // 1 + 2 + 4
  EXPECT_TRUE(t.valid());
  auto t3 = Topology::balanced_tree(3, 3);
  EXPECT_EQ(t3.broker_count(), 40u);  // 1 + 3 + 9 + 27
  EXPECT_TRUE(t3.valid());
  EXPECT_EQ(t3.diameter(), 6u);
}

TEST(Topology, BalancedTreeDepthZero) {
  auto t = Topology::balanced_tree(0, 4);
  EXPECT_EQ(t.broker_count(), 1u);
  EXPECT_TRUE(t.valid());
}

TEST(Topology, RandomTreesAreValidAndDeterministic) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    util::Rng rng1(seed), rng2(seed);
    auto a = Topology::random_tree(30, rng1);
    auto b = Topology::random_tree(30, rng2);
    EXPECT_TRUE(a.valid());
    EXPECT_EQ(a.edges(), b.edges()) << "seed " << seed;
  }
}

TEST(Topology, DistancesFromRoot) {
  auto t = Topology::chain(4);
  auto d = t.distances_from(0);
  EXPECT_EQ(d, (std::vector<std::size_t>{0, 1, 2, 3}));
  auto d2 = t.distances_from(2);
  EXPECT_EQ(d2, (std::vector<std::size_t>{2, 1, 0, 1}));
}

TEST(Topology, PathEndpointsInclusive) {
  auto t = Topology::balanced_tree(2, 2);
  // Leaves 3 and 5 meet at the root: 3 - 1 - 0 - 2 - 5.
  auto p = t.path(3, 5);
  EXPECT_EQ(p.front(), 3u);
  EXPECT_EQ(p.back(), 5u);
  EXPECT_EQ(p.size(), 5u);
  // Reverse path mirrors.
  auto q = t.path(5, 3);
  std::reverse(q.begin(), q.end());
  EXPECT_EQ(p, q);
}

TEST(Topology, PathToSelf) {
  auto t = Topology::chain(3);
  EXPECT_EQ(t.path(1, 1), (std::vector<std::size_t>{1}));
}

TEST(Topology, NeighborsOutOfRangeThrows) {
  auto t = Topology::chain(3);
  EXPECT_THROW((void)t.neighbors(3), util::AssertionError);
  EXPECT_THROW(t.distances_from(9), util::AssertionError);
}

TEST(Topology, DiameterOfBalancedTree) {
  EXPECT_EQ(Topology::balanced_tree(2, 2).diameter(), 4u);
  EXPECT_EQ(Topology::star(10).diameter(), 2u);
}

}  // namespace
}  // namespace rebeca::net
