// The covering-routing relocation hazard (ISSUE 4 / ROADMAP): a static
// bystander whose subscription is *covered* by a roaming client's filter
// must keep receiving every matching notification while the junction and
// the fetch path move the covering filter out. Before the two-phase
// uncover-before-prune protocol, every broker on the old path erased the
// mover's routing entry the instant the fetch passed — leaving the
// covered bystander without a wire representative for one re-expose
// round trip per hop, and silently dropping its notifications.
//
// The scenario: chain B0..B5, producer at B0, bystander at B5 with a
// covered filter, roamer starting at B5 with the covering filter and
// relocating multi-hop B5 -> B3 -> B1. Every broker between the producer
// and B5 routes the bystander's traffic through the roamer's covering
// entry, so each relocation hop re-runs the hazard. The test runs on
// both engines (classic kernel and ShardedSimulation) and fails when the
// uncover phase is disabled (BrokerConfig::uncover_before_prune = false
// restores the historical erase-on-fetch behaviour).
#include <gtest/gtest.h>

#include <memory>

#include "src/scenario/scenario.hpp"

namespace rebeca {
namespace {

using filter::Constraint;
using filter::Filter;
using filter::Notification;

scenario::ScenarioReport run_tour(std::size_t shards, bool uncover,
                                  std::uint64_t seed) {
  scenario::ScenarioBuilder b;
  b.seed(seed);
  b.topology(scenario::TopologySpec::chain(6));
  broker::BrokerConfig bc;
  bc.strategy = routing::Strategy::covering;
  bc.uncover_before_prune = uncover;
  b.broker(bc);
  if (shards > 0) b.shards(shards);

  // Roamer: the covering filter (all AAA), relocating B5 -> B3 -> B1.
  auto& roamer = b.client("roamer").with_id(1).at_broker(5).subscribes(
      Filter().where("sym", Constraint::eq("AAA")));
  scenario::RoamSpec roam;
  roam.route({3, 1})
      .dwelling(sim::millis(500))
      .dark_for(sim::millis(100))
      .hops(2)
      .from_phase("tour");
  roamer.roams(roam);

  // Bystander: covered by the roamer's filter, never moves.
  b.client("bystander")
      .with_id(2)
      .at_broker(5)
      .subscribes(Filter()
                      .where("sym", Constraint::eq("AAA"))
                      .where("px", Constraint::ge(100)));

  // Producer: a steady tick stream through the whole tour, so every
  // re-expose window during the two relocations has traffic in flight.
  scenario::PublishSpec pub;
  pub.every(sim::millis(10))
      .body(Notification().set("sym", "AAA").set("px", 100))
      .from_phase("tour")
      .until_phase_end("tour");
  b.client("producer").with_id(3).at_broker(0).publishes(pub);

  b.expect_exactly_once("bystander");
  b.phase("settle", sim::seconds(1));
  b.phase("tour", sim::seconds(2));
  b.phase("drain", sim::seconds(3));

  auto s = b.build();
  s->run();
  return s->report();
}

// ---------------------------------------------------------------------------
// With the uncover phase: complete on both engines
// ---------------------------------------------------------------------------

TEST(CoveringRelocation, BystanderCompleteOnClassicKernel) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    auto r = run_tour(/*shards=*/0, /*uncover=*/true, seed);
    const auto& bystander = r.client("bystander");
    EXPECT_EQ(bystander.missing, 0u) << "seed " << seed;
    EXPECT_EQ(bystander.duplicates, 0u) << "seed " << seed;
    EXPECT_TRUE(r.expectations_ok()) << "seed " << seed << ": "
                                     << r.violations.front();
    // The protocol actually ran: re-expose control traffic crossed links.
    EXPECT_GT(r.messages.count(metrics::MessageClass::reexpose), 0u);
  }
}

TEST(CoveringRelocation, BystanderCompleteOnShardedEngine) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    auto r = run_tour(/*shards=*/2, /*uncover=*/true, seed);
    const auto& bystander = r.client("bystander");
    EXPECT_EQ(bystander.missing, 0u) << "seed " << seed;
    EXPECT_EQ(bystander.duplicates, 0u) << "seed " << seed;
    EXPECT_TRUE(r.expectations_ok()) << "seed " << seed << ": "
                                     << r.violations.front();
    EXPECT_GT(r.messages.count(metrics::MessageClass::reexpose), 0u);
  }
}

// Equal-seed sharded runs stay byte-identical for any shard count with
// the re-expose handshake in the mix (its messages ride ordinary links,
// so they get the same canonical (time, lane, seq) event keys as all
// cross-shard traffic).
TEST(CoveringRelocation, ShardCountInvariantReports) {
  auto r1 = run_tour(/*shards=*/1, /*uncover=*/true, 7);
  auto r4 = run_tour(/*shards=*/4, /*uncover=*/true, 7);
  EXPECT_EQ(r1.to_string(), r4.to_string());
}

// ---------------------------------------------------------------------------
// Without it: the historical hazard reproduces (the regression guard)
// ---------------------------------------------------------------------------

TEST(CoveringRelocation, HazardReproducesWithUncoverDisabled) {
  std::uint64_t missing_classic = 0;
  std::uint64_t missing_sharded = 0;
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    auto rc = run_tour(/*shards=*/0, /*uncover=*/false, seed);
    auto rs = run_tour(/*shards=*/2, /*uncover=*/false, seed);
    missing_classic += rc.client("bystander").missing;
    missing_sharded += rs.client("bystander").missing;
    // No uncover phase, no re-expose traffic.
    EXPECT_EQ(rc.messages.count(metrics::MessageClass::reexpose), 0u);
    EXPECT_EQ(rs.messages.count(metrics::MessageClass::reexpose), 0u);
  }
  EXPECT_GT(missing_classic, 0u)
      << "the covered-bystander hazard no longer reproduces on the classic "
         "kernel — the guard lost its baseline";
  EXPECT_GT(missing_sharded, 0u)
      << "the covered-bystander hazard no longer reproduces on the sharded "
         "engine — the guard lost its baseline";
}

// The roamer itself stays complete in all four configurations: the
// uncover handshake must not delay or break the mover's own replay.
TEST(CoveringRelocation, RoamerCompleteRegardlessOfUncover) {
  for (bool uncover : {true, false}) {
    for (std::size_t shards : {std::size_t{0}, std::size_t{2}}) {
      auto r = run_tour(shards, uncover, 5);
      EXPECT_EQ(r.client("roamer").missing, 0u)
          << "uncover=" << uncover << " shards=" << shards;
    }
  }
}

}  // namespace
}  // namespace rebeca
