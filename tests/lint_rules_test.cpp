// rebeca-lint rule tests: every rule has a fixture that must trigger
// it and a clean twin that must not, plus scoping, pragma, and
// tokenizer-robustness checks. Fixtures live in tools/lint/fixtures/
// and are linted under *virtual* paths, so path-scoped rules (the
// deterministic path, the wire codec, the session exemption) and the
// whole-program rules (LAYER-DAG over a virtual include graph) are
// exercised without planting files around the tree. The repo itself is
// linted whole-program at the end, and the allow-pragma population is
// pinned to tools/lint/pragma_budget.txt.
#include "tools/lint/lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/cli/json.hpp"

namespace rebeca::lint {
namespace {

std::string fixture(const std::string& name) {
  const std::string path =
      std::string(REBECA_SOURCE_DIR) + "/tools/lint/fixtures/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

bool all_rule(const std::vector<Finding>& findings, const std::string& rule) {
  return std::all_of(findings.begin(), findings.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

// ---- DET-CONTAINER ----

TEST(LintDetContainer, BadFixtureTriggersInDeterministicPath) {
  const auto f = lint_source("src/routing/fixture.cpp",
                             fixture("det_container_bad.cpp"));
  ASSERT_GE(f.size(), 2u) << "unordered_map and unordered_set must both fire";
  EXPECT_TRUE(all_rule(f, "DET-CONTAINER"));
}

TEST(LintDetContainer, CleanTwinPasses) {
  EXPECT_TRUE(lint_source("src/routing/fixture.cpp",
                          fixture("det_container_clean.cpp"))
                  .empty());
}

TEST(LintDetContainer, TransportAndTestsAreOutOfScope) {
  const std::string bad = fixture("det_container_bad.cpp");
  EXPECT_TRUE(lint_source("src/transport/node.cpp", bad).empty());
  EXPECT_TRUE(lint_source("tests/some_test.cpp", bad).empty());
  EXPECT_TRUE(lint_source("bench/bench_x.cpp", bad).empty());
}

// ---- DET-CLOCK ----

TEST(LintDetClock, BadFixtureTriggersInDeterministicPath) {
  const auto f =
      lint_source("src/sim/fixture.cpp", fixture("det_clock_bad.cpp"));
  ASSERT_GE(f.size(), 4u)
      << "system_clock, time(), rand(), random_device must all fire";
  EXPECT_TRUE(all_rule(f, "DET-CLOCK"));
}

TEST(LintDetClock, CleanTwinPasses) {
  // Member functions *named* time() and declarations are not calls.
  EXPECT_TRUE(
      lint_source("src/sim/fixture.cpp", fixture("det_clock_clean.cpp"))
          .empty());
}

TEST(LintDetClock, TransportOwnsRealTime) {
  EXPECT_TRUE(lint_source("src/transport/realtime.cpp",
                          fixture("det_clock_bad.cpp"))
                  .empty());
}

// ---- WIRE-NAME ----

TEST(LintWireName, BadFixtureTriggersInWireCodec) {
  const auto f = lint_source("src/transport/wire.cpp",
                             fixture("wire_name_bad.cpp"));
  ASSERT_GE(f.size(), 3u) << "AttrId, id.value() write, attr_of must fire";
  EXPECT_TRUE(all_rule(f, "WIRE-NAME"));
}

TEST(LintWireName, CleanTwinPasses) {
  EXPECT_TRUE(lint_source("src/transport/wire.cpp",
                          fixture("wire_name_clean.cpp"))
                  .empty());
}

TEST(LintWireName, OnlyTheCodecIsInScope) {
  EXPECT_TRUE(lint_source("src/transport/session.cpp",
                          fixture("wire_name_bad.cpp"))
                  .empty());
}

// ---- EXEC-BLOCK ----

TEST(LintExecBlock, BadFixtureTriggersEverywhere) {
  const auto f = lint_source("src/broker/broker.cpp",
                             fixture("exec_block_bad.cpp"));
  ASSERT_EQ(f.size(), 4u) << "::send ::write ::recv ::accept must all fire";
  EXPECT_TRUE(all_rule(f, "EXEC-BLOCK"));
}

TEST(LintExecBlock, CleanTwinPasses) {
  // Link::send / Graph::connect style member calls are not socket calls.
  EXPECT_TRUE(lint_source("src/broker/broker.cpp",
                          fixture("exec_block_clean.cpp"))
                  .empty());
}

TEST(LintExecBlock, SessionLayerIsExempt) {
  EXPECT_TRUE(lint_source("src/transport/session.cpp",
                          fixture("exec_block_bad.cpp"))
                  .empty());
}

// ---- CAST-AUDIT ----

TEST(LintCastAudit, BadFixtureTriggers) {
  const auto f = lint_source("src/util/fixture.hpp",
                             fixture("cast_audit_bad.cpp"));
  ASSERT_EQ(f.size(), 2u);
  EXPECT_TRUE(all_rule(f, "CAST-AUDIT"));
}

TEST(LintCastAudit, CleanTwinPasses) {
  // Pragma on the same line and pragma on the line above both count.
  EXPECT_TRUE(lint_source("src/util/fixture.hpp",
                          fixture("cast_audit_clean.cpp"))
                  .empty());
}

// ---- pragmas ----

TEST(LintPragma, MalformedPragmasAreFindings) {
  const auto f = lint_source("src/util/fixture.hpp", fixture("bad_pragma.cpp"));
  ASSERT_EQ(f.size(), 2u);
  EXPECT_TRUE(all_rule(f, "BAD-PRAGMA"));
}

TEST(LintPragma, SuppressionIsPerRule) {
  // A CAST-AUDIT pragma must not silence a DET-CONTAINER finding on the
  // same line.
  const std::string src =
      "#include <unordered_map>\n"
      "std::unordered_map<int, int> m;  "
      "// rebeca-lint: allow(CAST-AUDIT, wrong rule on purpose)\n";
  const auto f = lint_source("src/routing/x.cpp", src);
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "DET-CONTAINER");
}

// ---- tokenizer robustness ----

TEST(LintTokenizer, StringsAndCommentsAreNotCode) {
  const std::string src =
      "// reinterpret_cast in a comment\n"
      "/* const_cast in a block comment\n   spanning lines */\n"
      "const char* a = \"reinterpret_cast<char*>(x)\";\n"
      "const char* b = R\"(const_cast and ::recv( and unordered_map)\";\n"
      "char c = 'r';\n";
  EXPECT_TRUE(lint_source("src/routing/x.cpp", src).empty());
}

TEST(LintTokenizer, FindingsCarryLineNumbers) {
  const std::string src =
      "int a;\n"
      "int b;\n"
      "void* p = reinterpret_cast<void*>(&a);\n";
  const auto f = lint_source("src/routing/x.cpp", src);
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].line, 3);
}

TEST(LintOptions, RuleFilterRestrictsScanning) {
  Options only_casts;
  only_casts.only_rules = {"CAST-AUDIT"};
  const std::string src =
      "#include <unordered_map>\n"
      "std::unordered_map<int, int> m;\n"
      "void* p = reinterpret_cast<void*>(&m);\n";
  const auto f = lint_source("src/routing/x.cpp", src, only_casts);
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "CAST-AUDIT");
}

// ---- PTR-ORDER ----

TEST(LintPtrOrder, BadFixtureTriggersInDeterministicPath) {
  const auto f =
      lint_source("src/broker/fixture.cpp", fixture("ptr_order_bad.cpp"));
  ASSERT_EQ(f.size(), 4u)
      << "map<T*,>, set<T*>, comparator-free sort, raw < must all fire";
  EXPECT_TRUE(all_rule(f, "PTR-ORDER"));
}

TEST(LintPtrOrder, CleanTwinPasses) {
  // Pointer VALUES, id-keyed containers, and sorts with comparators are
  // all fine — only address ORDER is the hazard.
  EXPECT_TRUE(
      lint_source("src/broker/fixture.cpp", fixture("ptr_order_clean.cpp"))
          .empty());
}

TEST(LintPtrOrder, TransportAndTestsAreOutOfScope) {
  const std::string bad = fixture("ptr_order_bad.cpp");
  EXPECT_TRUE(lint_source("src/transport/node.cpp", bad).empty());
  EXPECT_TRUE(lint_source("tests/some_test.cpp", bad).empty());
}

// ---- LANE-ESCAPE ----

TEST(LintLaneEscape, BadFixtureTriggers) {
  const auto f =
      lint_source("src/net/fixture.cpp", fixture("lane_escape_bad.cpp"));
  ASSERT_EQ(f.size(), 3u)
      << "[this], [&local], and [&] posts must all fire";
  EXPECT_TRUE(all_rule(f, "LANE-ESCAPE"));
}

TEST(LintLaneEscape, CleanTwinPasses) {
  // By-value captures, audited pragma sites, init-capture address-of,
  // and `post` declarations are all clean.
  EXPECT_TRUE(
      lint_source("src/net/fixture.cpp", fixture("lane_escape_clean.cpp"))
          .empty());
}

TEST(LintLaneEscape, TestsAreOutOfScope) {
  EXPECT_TRUE(
      lint_source("tests/some_test.cpp", fixture("lane_escape_bad.cpp"))
          .empty());
}

// ---- FLOAT-ORDER ----

TEST(LintFloatOrder, BadFixtureTriggersInReportCode) {
  const auto f =
      lint_source("src/metrics/fixture.cpp", fixture("float_order_bad.cpp"));
  ASSERT_EQ(f.size(), 2u) << "braced and brace-less loop bodies must fire";
  EXPECT_TRUE(all_rule(f, "FLOAT-ORDER"));
}

TEST(LintFloatOrder, CleanTwinPasses) {
  EXPECT_TRUE(
      lint_source("src/metrics/fixture.cpp", fixture("float_order_clean.cpp"))
          .empty());
}

TEST(LintFloatOrder, OnlyReportCodeIsInScope) {
  // The engine sums floats too (latency bounds, positions); the rule
  // guards the report surface only.
  EXPECT_TRUE(
      lint_source("src/broker/fixture.cpp", fixture("float_order_bad.cpp"))
          .empty());
}

// ---- LAYER-DAG (whole-program) ----

TEST(LintLayerDag, BackEdgeIsAFinding) {
  const std::vector<SourceFile> files = {
      {"src/filter/match.cpp", fixture("layer_dag_back_edge.cpp")},
      {"src/broker/node.hpp", fixture("layer_dag_header.hpp")},
  };
  const auto f = lint_project(files);
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "LAYER-DAG");
  EXPECT_EQ(f[0].path, "src/filter/match.cpp");
  EXPECT_NE(f[0].message.find("filter"), std::string::npos);
  EXPECT_NE(f[0].message.find("broker"), std::string::npos);
}

TEST(LintLayerDag, DownEdgeIsClean) {
  const std::vector<SourceFile> files = {
      {"src/broker/engine.cpp", fixture("layer_dag_down_edge.cpp")},
      {"src/filter/match.hpp", fixture("layer_dag_header.hpp")},
  };
  EXPECT_TRUE(lint_project(files).empty());
}

TEST(LintLayerDag, IncludeCycleReportsTheChain) {
  const std::vector<SourceFile> files = {
      {"src/sim/cycle_a.hpp", fixture("layer_dag_cycle_a.hpp")},
      {"src/sim/cycle_b.hpp", fixture("layer_dag_cycle_b.hpp")},
  };
  const auto f = lint_project(files);
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "LAYER-DAG");
  EXPECT_NE(f[0].message.find("include cycle"), std::string::npos);
  // The full chain names both files.
  EXPECT_NE(f[0].message.find("cycle_a.hpp"), std::string::npos);
  EXPECT_NE(f[0].message.find("cycle_b.hpp"), std::string::npos);
}

TEST(LintLayerDag, UnregisteredModuleIsAFinding) {
  const std::vector<SourceFile> files = {
      {"src/mystery/thing.hpp", fixture("layer_dag_header.hpp")},
  };
  const auto f = lint_project(files);
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "LAYER-DAG");
  EXPECT_NE(f[0].message.find("mystery"), std::string::npos);
}

TEST(LintLayerDag, PragmaSuppressesABackEdge) {
  const std::vector<SourceFile> files = {
      {"src/filter/match.cpp",
       "// rebeca-lint: allow(LAYER-DAG, fixture: deliberate exception)\n"
       "#include \"src/broker/node.hpp\"\n"},
      {"src/broker/node.hpp", fixture("layer_dag_header.hpp")},
  };
  EXPECT_TRUE(lint_project(files).empty());
}

TEST(LintLayerDag, FilesOutsideSrcAreUnlayered) {
  // Tests and tools may include anything; only src/ modules are ranked.
  const std::vector<SourceFile> files = {
      {"tests/broker_test.cpp", fixture("layer_dag_back_edge.cpp")},
      {"src/broker/node.hpp", fixture("layer_dag_header.hpp")},
  };
  EXPECT_TRUE(lint_project(files).empty());
}

// ---- rule registry ----

TEST(LintRules, RegistryListsAllTenRules) {
  std::set<std::string> ids;
  for (const RuleInfo& r : rules()) ids.insert(std::string(r.id));
  const std::set<std::string> expected = {
      "DET-CONTAINER", "DET-CLOCK",   "WIRE-NAME",  "EXEC-BLOCK",
      "CAST-AUDIT",    "LAYER-DAG",   "PTR-ORDER",  "LANE-ESCAPE",
      "FLOAT-ORDER",   "BAD-PRAGMA"};
  EXPECT_EQ(ids, expected);
}

// ---- SARIF ----

TEST(LintSarif, EmitsParsableSarif21) {
  std::vector<Finding> findings;
  findings.push_back(
      {"src/routing/x.cpp", 7, "DET-CONTAINER", "hash \"order\" leaks\n"});
  const std::string sarif = to_sarif(findings);
  // The repo's own JSON parser is the validity oracle: escaping bugs in
  // the emitter fail here before GitHub's uploader would reject them.
  const cli::JsonValue doc = cli::JsonValue::parse(sarif);
  EXPECT_EQ(doc.get("version").as_string(), "2.1.0");
  const cli::JsonValue& run = doc.get("runs").at(0);
  const cli::JsonValue& driver = run.get("tool").get("driver");
  EXPECT_EQ(driver.get("name").as_string(), "rebeca-lint");
  EXPECT_EQ(driver.get("rules").size(), rules().size());
  const cli::JsonValue& result = run.get("results").at(0);
  EXPECT_EQ(result.get("ruleId").as_string(), "DET-CONTAINER");
  EXPECT_EQ(result.get("message").get("text").as_string(),
            "hash \"order\" leaks\n");
  const cli::JsonValue& loc =
      result.get("locations").at(0).get("physicalLocation");
  EXPECT_EQ(loc.get("artifactLocation").get("uri").as_string(),
            "src/routing/x.cpp");
  EXPECT_EQ(loc.get("region").get("startLine").as_int(), 7);
}

TEST(LintSarif, CleanRunStillDeclaresRules) {
  const cli::JsonValue doc = cli::JsonValue::parse(to_sarif({}));
  const cli::JsonValue& run = doc.get("runs").at(0);
  EXPECT_EQ(run.get("results").size(), 0u);
  EXPECT_EQ(run.get("tool").get("driver").get("rules").size(), rules().size());
}

// ---- the repository itself ----

namespace fs = std::filesystem;

std::vector<SourceFile> load_tree() {
  const std::set<std::string> kExts = {".cpp", ".hpp", ".h", ".cc", ".hh"};
  std::vector<SourceFile> sources;
  for (const char* dir :
       {"/src", "/tests", "/bench", "/examples", "/tools/fuzz"}) {
    for (const auto& entry : fs::recursive_directory_iterator(
             std::string(REBECA_SOURCE_DIR) + dir)) {
      if (!entry.is_regular_file() ||
          !kExts.count(entry.path().extension().string())) {
        continue;
      }
      std::ifstream in(entry.path(), std::ios::binary);
      std::ostringstream buf;
      buf << in.rdbuf();
      // Repo-relative paths, as the lint target and CI invoke it.
      std::string rel = entry.path().string();
      const std::string root = std::string(REBECA_SOURCE_DIR) + "/";
      if (rel.rfind(root, 0) == 0) rel = rel.substr(root.size());
      sources.push_back({std::move(rel), buf.str()});
    }
  }
  std::sort(sources.begin(), sources.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.path < b.path;
            });
  return sources;
}

TEST(LintRepo, TreeIsCleanWholeProgram) {
  const std::vector<SourceFile> sources = load_tree();
  EXPECT_GT(sources.size(), 100u);
  for (const Finding& f : lint_project(sources)) {
    ADD_FAILURE() << f.path << ":" << f.line << ": [" << f.rule << "] "
                  << f.message;
  }
}

TEST(LintRepo, PragmaPopulationMatchesBudget) {
  // Every allow site counts against tools/lint/pragma_budget.txt, and
  // the match is EQUALITY: a new suppression (or a removed one) must
  // update the budget in the same diff.
  std::map<std::string, std::size_t> budget;
  {
    std::ifstream in(std::string(REBECA_SOURCE_DIR) +
                     "/tools/lint/pragma_budget.txt");
    ASSERT_TRUE(in.good()) << "missing tools/lint/pragma_budget.txt";
    std::string line;
    while (std::getline(in, line)) {
      const std::size_t hash = line.find('#');
      if (hash != std::string::npos) line.resize(hash);
      std::istringstream row(line);
      std::string rule;
      std::size_t count = 0;
      if (row >> rule >> count) budget[rule] = count;
    }
  }
  for (const RuleInfo& r : rules()) {
    EXPECT_TRUE(budget.count(std::string(r.id)))
        << "budget file has no row for " << r.id;
  }

  std::map<std::string, std::size_t> actual;
  for (const RuleInfo& r : rules()) actual[std::string(r.id)] = 0;
  for (const SourceFile& src : load_tree()) {
    for (const PragmaSite& site : collect_pragmas(src.path, src.content)) {
      ++actual[site.rule];
    }
  }
  EXPECT_EQ(actual, budget)
      << "allow-pragma population drifted from tools/lint/pragma_budget.txt "
         "— audit the new/removed suppressions and update the budget";
}

}  // namespace
}  // namespace rebeca::lint
