// rebeca-lint rule tests: every rule has a fixture that must trigger
// it and a clean twin that must not, plus scoping, pragma, and
// tokenizer-robustness checks. Fixtures live in tools/lint/fixtures/
// and are linted under *virtual* paths, so path-scoped rules (the
// deterministic path, the wire codec, the session exemption) are
// exercised without planting files around the tree.
#include "tools/lint/lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace rebeca::lint {
namespace {

std::string fixture(const std::string& name) {
  const std::string path =
      std::string(REBECA_SOURCE_DIR) + "/tools/lint/fixtures/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

bool all_rule(const std::vector<Finding>& findings, const std::string& rule) {
  return std::all_of(findings.begin(), findings.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

// ---- DET-CONTAINER ----

TEST(LintDetContainer, BadFixtureTriggersInDeterministicPath) {
  const auto f = lint_source("src/routing/fixture.cpp",
                             fixture("det_container_bad.cpp"));
  ASSERT_GE(f.size(), 2u) << "unordered_map and unordered_set must both fire";
  EXPECT_TRUE(all_rule(f, "DET-CONTAINER"));
}

TEST(LintDetContainer, CleanTwinPasses) {
  EXPECT_TRUE(lint_source("src/routing/fixture.cpp",
                          fixture("det_container_clean.cpp"))
                  .empty());
}

TEST(LintDetContainer, TransportAndTestsAreOutOfScope) {
  const std::string bad = fixture("det_container_bad.cpp");
  EXPECT_TRUE(lint_source("src/transport/node.cpp", bad).empty());
  EXPECT_TRUE(lint_source("tests/some_test.cpp", bad).empty());
  EXPECT_TRUE(lint_source("bench/bench_x.cpp", bad).empty());
}

// ---- DET-CLOCK ----

TEST(LintDetClock, BadFixtureTriggersInDeterministicPath) {
  const auto f =
      lint_source("src/sim/fixture.cpp", fixture("det_clock_bad.cpp"));
  ASSERT_GE(f.size(), 4u)
      << "system_clock, time(), rand(), random_device must all fire";
  EXPECT_TRUE(all_rule(f, "DET-CLOCK"));
}

TEST(LintDetClock, CleanTwinPasses) {
  // Member functions *named* time() and declarations are not calls.
  EXPECT_TRUE(
      lint_source("src/sim/fixture.cpp", fixture("det_clock_clean.cpp"))
          .empty());
}

TEST(LintDetClock, TransportOwnsRealTime) {
  EXPECT_TRUE(lint_source("src/transport/realtime.cpp",
                          fixture("det_clock_bad.cpp"))
                  .empty());
}

// ---- WIRE-NAME ----

TEST(LintWireName, BadFixtureTriggersInWireCodec) {
  const auto f = lint_source("src/transport/wire.cpp",
                             fixture("wire_name_bad.cpp"));
  ASSERT_GE(f.size(), 3u) << "AttrId, id.value() write, attr_of must fire";
  EXPECT_TRUE(all_rule(f, "WIRE-NAME"));
}

TEST(LintWireName, CleanTwinPasses) {
  EXPECT_TRUE(lint_source("src/transport/wire.cpp",
                          fixture("wire_name_clean.cpp"))
                  .empty());
}

TEST(LintWireName, OnlyTheCodecIsInScope) {
  EXPECT_TRUE(lint_source("src/transport/session.cpp",
                          fixture("wire_name_bad.cpp"))
                  .empty());
}

// ---- EXEC-BLOCK ----

TEST(LintExecBlock, BadFixtureTriggersEverywhere) {
  const auto f = lint_source("src/broker/broker.cpp",
                             fixture("exec_block_bad.cpp"));
  ASSERT_EQ(f.size(), 4u) << "::send ::write ::recv ::accept must all fire";
  EXPECT_TRUE(all_rule(f, "EXEC-BLOCK"));
}

TEST(LintExecBlock, CleanTwinPasses) {
  // Link::send / Graph::connect style member calls are not socket calls.
  EXPECT_TRUE(lint_source("src/broker/broker.cpp",
                          fixture("exec_block_clean.cpp"))
                  .empty());
}

TEST(LintExecBlock, SessionLayerIsExempt) {
  EXPECT_TRUE(lint_source("src/transport/session.cpp",
                          fixture("exec_block_bad.cpp"))
                  .empty());
}

// ---- CAST-AUDIT ----

TEST(LintCastAudit, BadFixtureTriggers) {
  const auto f = lint_source("src/util/fixture.hpp",
                             fixture("cast_audit_bad.cpp"));
  ASSERT_EQ(f.size(), 2u);
  EXPECT_TRUE(all_rule(f, "CAST-AUDIT"));
}

TEST(LintCastAudit, CleanTwinPasses) {
  // Pragma on the same line and pragma on the line above both count.
  EXPECT_TRUE(lint_source("src/util/fixture.hpp",
                          fixture("cast_audit_clean.cpp"))
                  .empty());
}

// ---- pragmas ----

TEST(LintPragma, MalformedPragmasAreFindings) {
  const auto f = lint_source("src/util/fixture.hpp", fixture("bad_pragma.cpp"));
  ASSERT_EQ(f.size(), 2u);
  EXPECT_TRUE(all_rule(f, "BAD-PRAGMA"));
}

TEST(LintPragma, SuppressionIsPerRule) {
  // A CAST-AUDIT pragma must not silence a DET-CONTAINER finding on the
  // same line.
  const std::string src =
      "#include <unordered_map>\n"
      "std::unordered_map<int, int> m;  "
      "// rebeca-lint: allow(CAST-AUDIT, wrong rule on purpose)\n";
  const auto f = lint_source("src/routing/x.cpp", src);
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "DET-CONTAINER");
}

// ---- tokenizer robustness ----

TEST(LintTokenizer, StringsAndCommentsAreNotCode) {
  const std::string src =
      "// reinterpret_cast in a comment\n"
      "/* const_cast in a block comment\n   spanning lines */\n"
      "const char* a = \"reinterpret_cast<char*>(x)\";\n"
      "const char* b = R\"(const_cast and ::recv( and unordered_map)\";\n"
      "char c = 'r';\n";
  EXPECT_TRUE(lint_source("src/routing/x.cpp", src).empty());
}

TEST(LintTokenizer, FindingsCarryLineNumbers) {
  const std::string src =
      "int a;\n"
      "int b;\n"
      "void* p = reinterpret_cast<void*>(&a);\n";
  const auto f = lint_source("src/routing/x.cpp", src);
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].line, 3);
}

TEST(LintOptions, RuleFilterRestrictsScanning) {
  Options only_casts;
  only_casts.only_rules = {"CAST-AUDIT"};
  const std::string src =
      "#include <unordered_map>\n"
      "std::unordered_map<int, int> m;\n"
      "void* p = reinterpret_cast<void*>(&m);\n";
  const auto f = lint_source("src/routing/x.cpp", src, only_casts);
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "CAST-AUDIT");
}

// ---- the repository itself ----

TEST(LintRepo, TreeIsClean) {
  namespace fs = std::filesystem;
  const std::set<std::string> kExts = {".cpp", ".hpp", ".h", ".cc", ".hh"};
  std::size_t files = 0;
  std::vector<Finding> findings;
  for (const char* dir : {"/src", "/tests", "/bench", "/examples"}) {
    for (const auto& entry : fs::recursive_directory_iterator(
             std::string(REBECA_SOURCE_DIR) + dir)) {
      if (!entry.is_regular_file() ||
          !kExts.count(entry.path().extension().string())) {
        continue;
      }
      ++files;
      const auto f = lint_file(entry.path().string());
      findings.insert(findings.end(), f.begin(), f.end());
    }
  }
  EXPECT_GT(files, 100u);
  for (const Finding& f : findings) {
    ADD_FAILURE() << f.path << ":" << f.line << ": [" << f.rule << "] "
                  << f.message;
  }
}

}  // namespace
}  // namespace rebeca::lint
