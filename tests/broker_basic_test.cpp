// End-to-end pub/sub through the broker network: delivery, filtering,
// sequence annotation, advertisements, and strategy equivalence
// (paper Sec. 2).
#include <gtest/gtest.h>

#include <memory>

#include "tests/scenario_world.hpp"

namespace rebeca {
namespace {

using broker::OverlayConfig;
using client::Client;
using client::ClientConfig;
using filter::Constraint;
using filter::Filter;
using filter::Notification;
using filter::Value;
using scenario::TopologySpec;
using testutil::World;

Filter parking_filter() {
  return Filter().where("service", Constraint::eq("parking"));
}

Notification parking_spot(const std::string& where) {
  return Notification().set("service", "parking").set("location", where);
}

TEST(BrokerBasic, DeliversAcrossChain) {
  World w(TopologySpec::chain(4));
  Client& consumer = w.add_client(1, 0);
  Client& producer = w.add_client(2, 3);
  consumer.subscribe(parking_filter());
  w.settle();

  producer.publish(parking_spot("Rebeca Drive"));
  w.settle();

  ASSERT_EQ(consumer.deliveries().size(), 1u);
  EXPECT_EQ(consumer.deliveries()[0].notification.get("location")->as_string(),
            "Rebeca Drive");
  EXPECT_EQ(consumer.deliveries()[0].seq, 1u);
}

TEST(BrokerBasic, FiltersNonMatching) {
  World w(TopologySpec::chain(3));
  Client& consumer = w.add_client(1, 0);
  Client& producer = w.add_client(2, 2);
  consumer.subscribe(parking_filter());
  w.settle();

  producer.publish(Notification().set("service", "weather").set("temp", 21));
  producer.publish(parking_spot("Main St"));
  w.settle();

  ASSERT_EQ(consumer.deliveries().size(), 1u);
  EXPECT_EQ(consumer.deliveries()[0].notification.get("service")->as_string(),
            "parking");
}

TEST(BrokerBasic, SequenceNumbersIncreasePerSubscription) {
  World w(TopologySpec::chain(2));
  Client& consumer = w.add_client(1, 0);
  Client& producer = w.add_client(2, 1);
  auto sub = consumer.subscribe(parking_filter());
  w.settle();

  for (int i = 0; i < 5; ++i) producer.publish(parking_spot("s"));
  w.settle();

  ASSERT_EQ(consumer.deliveries().size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(consumer.deliveries()[i].seq, i + 1);
  }
  EXPECT_EQ(consumer.last_seq(sub), 5u);
}

TEST(BrokerBasic, TwoSubscriptionsGetIndependentSequences) {
  World w(TopologySpec::chain(2));
  Client& consumer = w.add_client(1, 0);
  Client& producer = w.add_client(2, 1);
  auto parking = consumer.subscribe(parking_filter());
  auto weather =
      consumer.subscribe(Filter().where("service", Constraint::eq("weather")));
  w.settle();

  producer.publish(parking_spot("x"));
  producer.publish(Notification().set("service", "weather"));
  producer.publish(parking_spot("y"));
  w.settle();

  EXPECT_EQ(consumer.last_seq(parking), 2u);
  EXPECT_EQ(consumer.last_seq(weather), 1u);
}

TEST(BrokerBasic, MultipleConsumersEachGetACopy) {
  World w(TopologySpec::star(4));
  Client& c1 = w.add_client(1, 1);
  Client& c2 = w.add_client(2, 2);
  Client& c3 = w.add_client(3, 3);
  Client& producer = w.add_client(4, 0);
  c1.subscribe(parking_filter());
  c2.subscribe(parking_filter());
  c3.subscribe(Filter().where("service", Constraint::eq("weather")));
  w.settle();

  producer.publish(parking_spot("z"));
  w.settle();

  EXPECT_EQ(c1.deliveries().size(), 1u);
  EXPECT_EQ(c2.deliveries().size(), 1u);
  EXPECT_TRUE(c3.deliveries().empty());
}

TEST(BrokerBasic, UnsubscribeStopsDelivery) {
  World w(TopologySpec::chain(3));
  Client& consumer = w.add_client(1, 0);
  Client& producer = w.add_client(2, 2);
  auto sub = consumer.subscribe(parking_filter());
  w.settle();
  producer.publish(parking_spot("a"));
  w.settle();
  consumer.unsubscribe(sub);
  w.settle();
  producer.publish(parking_spot("b"));
  w.settle();

  EXPECT_EQ(consumer.deliveries().size(), 1u);
  // The unsubscription propagated: no broker still has routing entries.
  for (std::size_t i = 0; i < w.overlay.broker_count(); ++i) {
    EXPECT_EQ(w.overlay.broker(i).routing_entry_count(), 0u)
        << "stale entry at broker " << i;
  }
}

TEST(BrokerBasic, ConsumerCanAlsoProduce) {
  World w(TopologySpec::chain(2));
  Client& both = w.add_client(1, 0);
  Client& other = w.add_client(2, 1);
  both.subscribe(parking_filter());
  other.subscribe(parking_filter());
  w.settle();

  both.publish(parking_spot("self"));
  w.settle();

  // Both the publisher itself and the remote subscriber receive it.
  EXPECT_EQ(both.deliveries().size(), 1u);
  EXPECT_EQ(other.deliveries().size(), 1u);
}

TEST(BrokerBasic, SubscriptionBlackoutIsTwoTd) {
  // Paper Fig. 3a: after subscribing it takes t_d for the subscription
  // to reach the producer's broker and t_d for a notification to travel
  // back. With 5ms hops on a 4-broker chain (3 broker links + 2 client
  // links of 1ms), t_d ≈ 17ms one way.
  World w(TopologySpec::chain(4));
  Client& consumer = w.add_client(1, 0);
  Client& producer = w.add_client(2, 3);
  w.settle();

  const auto subscribe_time = w.sim.now();
  consumer.subscribe(parking_filter());
  // Publish a burst: one notification every 2ms.
  for (int i = 0; i < 40; ++i) {
    w.sim.schedule_after(sim::millis(2 * i), [&producer, i] {
      auto n = parking_spot("s");
      n.set("i", i);
      producer.publish(std::move(n));
    });
  }
  w.settle();

  ASSERT_FALSE(consumer.deliveries().empty());
  // Notifications published before the subscription reached the
  // producer's border broker are lost: the first delivered one was
  // published no earlier than ~t_d after subscribing.
  const auto first_published =
      consumer.deliveries().front().notification.publish_time() - subscribe_time;
  EXPECT_GE(first_published, sim::millis(15));
  EXPECT_LE(first_published, sim::millis(25));
}

// --- strategy equivalence sweep --------------------------------------------

class StrategySweep : public ::testing::TestWithParam<routing::Strategy> {};

TEST_P(StrategySweep, DeliveredSetIdenticalAcrossStrategies) {
  OverlayConfig cfg;
  cfg.broker.strategy = GetParam();
  World w(TopologySpec::balanced_tree(2, 2), cfg);  // 7 brokers
  Client& c1 = w.add_client(1, 3);
  Client& c2 = w.add_client(2, 4);
  Client& p1 = w.add_client(3, 5);
  Client& p2 = w.add_client(4, 6);
  c1.subscribe(parking_filter());
  c2.subscribe(Filter()
                   .where("service", Constraint::eq("parking"))
                   .where("cost", Constraint::lt(Value(3))));
  w.settle();

  int seq = 0;
  for (int cost = 0; cost < 6; ++cost) {
    auto n = parking_spot("lot-" + std::to_string(cost));
    n.set("cost", cost);
    n.set("i", seq++);
    p1.publish(std::move(n));
    auto m = Notification().set("service", "weather").set("cost", cost);
    p2.publish(std::move(m));
  }
  w.settle();

  EXPECT_EQ(c1.deliveries().size(), 6u);
  EXPECT_EQ(c2.deliveries().size(), 3u);  // cost 0,1,2
  EXPECT_EQ(c1.duplicate_count(), 0u);
  EXPECT_EQ(c2.duplicate_count(), 0u);
}

TEST_P(StrategySweep, WorksWithAdvertisements) {
  OverlayConfig cfg;
  cfg.broker.strategy = GetParam();
  cfg.broker.use_advertisements = true;
  World w(TopologySpec::chain(5), cfg);
  Client& consumer = w.add_client(1, 0);
  Client& producer = w.add_client(2, 4);
  producer.advertise(parking_filter());
  consumer.subscribe(parking_filter());
  w.settle();

  producer.publish(parking_spot("adv"));
  w.settle();
  ASSERT_EQ(consumer.deliveries().size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, StrategySweep,
    ::testing::Values(routing::Strategy::flooding, routing::Strategy::simple,
                      routing::Strategy::identity, routing::Strategy::covering,
                      routing::Strategy::merging),
    [](const auto& info) { return routing::strategy_name(info.param); });

TEST(BrokerAdvertisements, SubscriptionsOnlyFlowTowardAdvertisers) {
  OverlayConfig cfg;
  cfg.broker.strategy = routing::Strategy::simple;
  cfg.broker.use_advertisements = true;
  World w(TopologySpec::chain(4));
  // Rebuild with adv config (World ctor took default) — use a dedicated
  // world instead.
  World wa(TopologySpec::chain(4), cfg);
  Client& consumer = wa.add_client(1, 1);
  Client& producer = wa.add_client(2, 3);
  producer.advertise(parking_filter());
  consumer.subscribe(parking_filter());
  wa.settle();

  // Broker 0 sits away from the producer: the subscription must not have
  // been forwarded to it.
  EXPECT_EQ(wa.overlay.broker(0).routing_entry_count(), 0u);
  // Brokers 2 and 3 lie toward the advertisement.
  EXPECT_GE(wa.overlay.broker(2).routing_entry_count(), 1u);
  EXPECT_GE(wa.overlay.broker(3).routing_entry_count(), 1u);

  producer.publish(parking_spot("pruned"));
  wa.settle();
  ASSERT_EQ(consumer.deliveries().size(), 1u);
}

TEST(BrokerCovering, CoveredSubscriptionAddsNoUpstreamEntry) {
  OverlayConfig cfg;
  cfg.broker.strategy = routing::Strategy::covering;
  World w(TopologySpec::chain(3), cfg);
  Client& broad = w.add_client(1, 0);
  Client& narrow = w.add_client(2, 0);
  broad.subscribe(parking_filter());
  w.settle();
  const auto entries_before = w.overlay.broker(2).routing_entry_count();

  narrow.subscribe(Filter()
                       .where("service", Constraint::eq("parking"))
                       .where("cost", Constraint::lt(Value(3))));
  w.settle();
  // The narrow filter is covered by the broad one: upstream tables stay.
  EXPECT_EQ(w.overlay.broker(2).routing_entry_count(), entries_before);

  Client& producer = w.add_client(3, 2);
  auto n = parking_spot("cov");
  n.set("cost", 1);
  producer.publish(std::move(n));
  w.settle();
  EXPECT_EQ(broad.deliveries().size(), 1u);
  EXPECT_EQ(narrow.deliveries().size(), 1u);
}

TEST(BrokerCovering, UnsubscribingCoverReexposesCovered) {
  OverlayConfig cfg;
  cfg.broker.strategy = routing::Strategy::covering;
  World w(TopologySpec::chain(3), cfg);
  Client& broad = w.add_client(1, 0);
  Client& narrow = w.add_client(2, 0);
  auto broad_sub = broad.subscribe(parking_filter());
  narrow.subscribe(Filter()
                       .where("service", Constraint::eq("parking"))
                       .where("cost", Constraint::lt(Value(3))));
  w.settle();

  broad.unsubscribe(broad_sub);
  w.settle();

  // The narrow filter must now be installed upstream on its own.
  EXPECT_GE(w.overlay.broker(2).routing_entry_count(), 1u);

  Client& producer = w.add_client(3, 2);
  auto cheap = parking_spot("re1");
  cheap.set("cost", 1);
  auto pricey = parking_spot("re2");
  pricey.set("cost", 9);
  producer.publish(std::move(cheap));
  producer.publish(std::move(pricey));
  w.settle();
  EXPECT_EQ(narrow.deliveries().size(), 1u);
  EXPECT_TRUE(broad.deliveries().empty());
}

TEST(BrokerMerging, MergesSiblingFiltersUpstream) {
  OverlayConfig cfg;
  cfg.broker.strategy = routing::Strategy::merging;
  World w(TopologySpec::chain(3), cfg);
  Client& c1 = w.add_client(1, 0);
  Client& c2 = w.add_client(2, 0);
  c1.subscribe(Filter().where("sym", Constraint::eq("AAA")));
  c2.subscribe(Filter().where("sym", Constraint::eq("BBB")));
  w.settle();

  // Upstream broker 1 forwarded one merged filter to broker 2.
  EXPECT_EQ(w.overlay.broker(2).routing_entry_count(), 1u);

  Client& producer = w.add_client(3, 2);
  producer.publish(Notification().set("sym", "AAA").set("px", 10));
  producer.publish(Notification().set("sym", "BBB").set("px", 11));
  producer.publish(Notification().set("sym", "CCC").set("px", 12));
  w.settle();
  EXPECT_EQ(c1.deliveries().size(), 1u);
  EXPECT_EQ(c2.deliveries().size(), 1u);
}

TEST(BrokerTables, CoveringTablesSmallerThanSimple) {
  auto run = [](routing::Strategy s) {
    OverlayConfig cfg;
    cfg.broker.strategy = s;
    World w(TopologySpec::chain(4), cfg);
    Client& base = w.add_client(1, 0);
    base.subscribe(parking_filter());
    for (std::uint32_t i = 2; i <= 9; ++i) {
      Client& c = w.add_client(i, 0);
      c.subscribe(Filter()
                      .where("service", Constraint::eq("parking"))
                      .where("cost", Constraint::lt(Value(static_cast<int>(i)))));
    }
    w.settle();
    std::size_t total = 0;
    for (std::size_t b = 0; b < w.overlay.broker_count(); ++b) {
      total += w.overlay.broker(b).routing_entry_count();
    }
    return total;
  };
  const auto simple = run(routing::Strategy::simple);
  const auto covering = run(routing::Strategy::covering);
  EXPECT_LT(covering, simple);
  EXPECT_EQ(covering, 3u);  // one merged/covering entry per upstream broker
}

}  // namespace
}  // namespace rebeca
