// The pre-subscribe extension (paper Sec. 6 future work): "logically
// mobile clients roaming beyond the boundaries of a single broker …
// 'pre-subscribe' to information at brokers at possible next locations".
//
// While a location-dependent subscription's client is disconnected, its
// virtual counterpart widens the buffered location ball by one movement
// step per interval (the client's possible locations spread); on
// reconnection at any broker the backlog is fetched and replayed, and
// the client-side filter F_0 keeps exactly what matches its actual
// location — flooding epoch semantics across physical roaming.
#include <gtest/gtest.h>

#include <memory>

#include "tests/scenario_world.hpp"

namespace rebeca {
namespace {

using broker::OverlayConfig;
using client::Client;
using client::ClientConfig;
using location::LdSpec;
using location::LocationGraph;
using location::UncertaintyProfile;

struct World : testutil::World {
  World(const LocationGraph* graph, bool presubscribe, std::uint64_t seed = 1)
      : testutil::World(scenario::TopologySpec::chain(4),
                        presub_config(presubscribe), seed, graph) {}

  static OverlayConfig presub_config(bool presubscribe) {
    OverlayConfig cfg;
    cfg.broker.ld_presubscribe = presubscribe;
    cfg.broker.ld_widen_interval = sim::millis(500);
    return cfg;
  }
};

LdSpec door_spec() {
  LdSpec spec;
  spec.base = filter::Filter().where("service", filter::Constraint::eq("door"));
  spec.profile = UncertaintyProfile::global_resub();
  return spec;
}

filter::Notification door_at(const std::string& room) {
  return filter::Notification().set("service", "door").set("location", room);
}

TEST(LdPresubscribe, ReplaysBacklogAfterRoamingToAnotherBroker) {
  auto rooms = LocationGraph::line(8);
  World w(&rooms, /*presubscribe=*/true);
  ClientConfig cc;
  cc.locations = &rooms;
  Client& user = w.add_client(1, 0, cc);
  user.move_to("l2");
  user.subscribe(door_spec());
  Client& producer = w.add_client(2, 3);
  w.settle();

  producer.publish(door_at("l2"));
  w.settle(0.2);
  EXPECT_EQ(user.deliveries().size(), 1u);

  // Disconnect; an event at the CURRENT location happens while offline.
  user.detach_silently();
  w.settle(0.2);
  producer.publish(door_at("l2"));
  w.settle(0.5);

  // Reconnect at the far broker: the backlog must be replayed.
  w.overlay.connect_client(user, 3);
  w.settle(2.0);
  ASSERT_EQ(user.deliveries().size(), 2u);
  EXPECT_EQ(user.duplicate_count(), 0u);
  // Old-border state is garbage-collected by the fetch.
  EXPECT_EQ(w.overlay.broker(0).virtual_count(), 0u);
}

TEST(LdPresubscribe, WideningCapturesEventsAtPossibleNextLocations) {
  auto rooms = LocationGraph::line(8);
  World w(&rooms, /*presubscribe=*/true);
  ClientConfig cc;
  cc.locations = &rooms;
  Client& user = w.add_client(1, 0, cc);
  user.move_to("l2");
  user.subscribe(door_spec());
  Client& producer = w.add_client(2, 3);
  w.settle();

  // Disconnect at l2 and walk (offline!) to l4 over ~1.2s. The widening
  // interval is 500ms: by the time the event at l4 fires, the virtual
  // counterpart's ball l2±(1+2) includes l4.
  user.detach_silently();
  w.settle(1.2);
  user.move_to("l3");  // local only — nobody hears this
  user.move_to("l4");
  producer.publish(door_at("l4"));
  w.settle(0.5);

  w.overlay.connect_client(user, 2);
  w.settle(2.0);

  // The l4 event was buffered by the widened virtual and survives the
  // client-side filter (the user IS at l4 now).
  ASSERT_EQ(user.deliveries().size(), 1u);
  EXPECT_EQ(user.deliveries()[0].notification.get("location")->as_string(), "l4");
}

TEST(LdPresubscribe, ClientSideFilterDropsStaleBacklog) {
  auto rooms = LocationGraph::line(8);
  World w(&rooms, /*presubscribe=*/true);
  ClientConfig cc;
  cc.locations = &rooms;
  Client& user = w.add_client(1, 0, cc);
  user.move_to("l2");
  user.subscribe(door_spec());
  Client& producer = w.add_client(2, 3);
  w.settle();

  user.detach_silently();
  w.settle(0.2);
  producer.publish(door_at("l2"));  // stale by the time the user returns
  w.settle(1.5);
  user.move_to("l7");  // walked far away while offline
  w.overlay.connect_client(user, 3);
  w.settle(2.0);

  // The backlog was replayed but F_0 filtered the stale event: epoch
  // semantics — at delivery time the user is at l7.
  EXPECT_TRUE(user.deliveries().empty());
  EXPECT_GE(user.filtered_count(), 1u);
}

TEST(LdPresubscribe, BaselineWithoutExtensionMissesOfflineEvents) {
  auto rooms = LocationGraph::line(8);
  World w(&rooms, /*presubscribe=*/false);
  ClientConfig cc;
  cc.locations = &rooms;
  Client& user = w.add_client(1, 0, cc);
  user.move_to("l2");
  user.subscribe(door_spec());
  Client& producer = w.add_client(2, 3);
  w.settle();

  user.detach_silently();
  w.settle(0.2);
  producer.publish(door_at("l2"));
  w.settle(0.5);
  w.overlay.connect_client(user, 3);
  w.settle(2.0);

  // The paper's baseline boundary: re-anchoring is replay-less.
  EXPECT_TRUE(user.deliveries().empty());
}

TEST(LdPresubscribe, WideningStopsAtSaturation) {
  auto rooms = LocationGraph::line(4);  // saturates after few steps
  World w(&rooms, /*presubscribe=*/true);
  ClientConfig cc;
  cc.locations = &rooms;
  Client& user = w.add_client(1, 0, cc);
  user.move_to("l0");
  user.subscribe(door_spec());
  w.settle();

  user.detach_silently();
  const auto before =
      w.overlay.counters().count(metrics::MessageClass::location_update);
  w.settle(30.0);  // many widen intervals
  const auto updates =
      w.overlay.counters().count(metrics::MessageClass::location_update) -
      before;
  // Widening messages stop once the ball covers the whole line (3 steps
  // from l0 with the 1-step profile): bounded, not one per interval
  // forever.
  EXPECT_LE(updates, 4u * 3u);
  (void)w.overlay.broker(0);  // silence unused warnings
}

TEST(LdPresubscribe, SequenceNumbersContinueAcrossLdRelocation) {
  auto rooms = LocationGraph::line(8);
  World w(&rooms, /*presubscribe=*/true);
  ClientConfig cc;
  cc.locations = &rooms;
  Client& user = w.add_client(1, 0, cc);
  user.move_to("l2");
  const auto sub = user.subscribe(door_spec());
  Client& producer = w.add_client(2, 3);
  w.settle();

  producer.publish(door_at("l2"));
  w.settle(0.5);
  user.detach_silently();
  w.settle(0.2);
  producer.publish(door_at("l2"));
  w.settle(0.5);
  w.overlay.connect_client(user, 2);
  w.settle(1.0);
  producer.publish(door_at("l2"));
  w.settle(1.0);

  EXPECT_EQ(user.deliveries().size(), 3u);
  EXPECT_EQ(user.last_seq(sub), 3u);
  std::uint64_t prev = 0;
  for (const auto& d : user.deliveries()) {
    EXPECT_EQ(d.seq, prev + 1);
    prev = d.seq;
  }
}

}  // namespace
}  // namespace rebeca
