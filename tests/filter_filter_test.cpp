// Filter-level semantics: conjunctive matching, covering with absent
// attributes, overlap and exact merging.
#include <gtest/gtest.h>

#include "src/filter/filter.hpp"

namespace rebeca::filter {
namespace {

Filter parking_under(double cost) {
  return Filter()
      .where("service", Constraint::eq("parking"))
      .where("cost", Constraint::lt(cost));
}

Notification spot(double cost) {
  return Notification().set("service", "parking").set("cost", cost);
}

TEST(Filter, EmptyMatchesEverything) {
  Filter f;
  EXPECT_TRUE(f.matches(spot(1)));
  EXPECT_TRUE(f.matches(Notification()));
  EXPECT_TRUE(f.empty());
}

TEST(Filter, ConjunctionRequiresAllConstraints) {
  auto f = parking_under(3);
  EXPECT_TRUE(f.matches(spot(2.5)));
  EXPECT_FALSE(f.matches(spot(3.5)));
  EXPECT_FALSE(f.matches(Notification().set("service", "parking")));  // no cost
  EXPECT_FALSE(f.matches(Notification().set("cost", 1)));             // no service
}

TEST(Filter, MissingAttributeNeverMatches) {
  Filter f;
  f.where("a", Constraint::any());
  EXPECT_FALSE(f.matches(Notification().set("b", 1)));
  EXPECT_TRUE(f.matches(Notification().set("a", 1)));
}

TEST(Filter, WhereReplacesConstraint) {
  Filter f;
  f.where("x", Constraint::lt(5));
  f.where("x", Constraint::gt(5));
  EXPECT_EQ(f.size(), 1u);
  EXPECT_FALSE(f.matches(Notification().set("x", 4)));
  EXPECT_TRUE(f.matches(Notification().set("x", 6)));
}

TEST(Filter, EraseRemovesConstraint) {
  auto f = parking_under(3);
  f.erase("cost");
  EXPECT_TRUE(f.matches(spot(100)));
  f.erase("not-there");  // no-op
  EXPECT_EQ(f.size(), 1u);
}

// ---------------------------------------------------------------------------
// covering
// ---------------------------------------------------------------------------

TEST(FilterCovers, FewerConstraintsIsBroader) {
  Filter broad;
  broad.where("service", Constraint::eq("parking"));
  auto narrow = parking_under(3);
  EXPECT_TRUE(broad.covers(narrow));
  EXPECT_FALSE(narrow.covers(broad));
}

TEST(FilterCovers, EmptyFilterCoversAll) {
  Filter everything;
  EXPECT_TRUE(everything.covers(parking_under(1)));
  EXPECT_TRUE(everything.covers(Filter()));
  EXPECT_FALSE(parking_under(1).covers(everything));
}

TEST(FilterCovers, PerAttributeCoveringRequired) {
  EXPECT_TRUE(parking_under(5).covers(parking_under(3)));
  EXPECT_FALSE(parking_under(3).covers(parking_under(5)));
}

TEST(FilterCovers, DisjointAttributeSetsDontCover) {
  Filter a, b;
  a.where("x", Constraint::any());
  b.where("y", Constraint::any());
  EXPECT_FALSE(a.covers(b));
  EXPECT_FALSE(b.covers(a));
}

TEST(FilterCovers, SoundnessOnProbes) {
  const Filter filters[] = {
      Filter(),
      parking_under(3),
      parking_under(5),
      Filter().where("service", Constraint::eq("parking")),
      Filter().where("service", Constraint::prefix("park")),
      Filter()
          .where("service", Constraint::eq("parking"))
          .where("cost", Constraint::range(Value(1), Value(2))),
  };
  const Notification probes[] = {
      spot(0.5), spot(1.5), spot(2.5), spot(4.0), spot(7.0),
      Notification().set("service", "parkade").set("cost", 1),
      Notification().set("service", "weather"),
  };
  for (const auto& outer : filters) {
    for (const auto& inner : filters) {
      if (!outer.covers(inner)) continue;
      for (const auto& n : probes) {
        if (inner.matches(n)) {
          EXPECT_TRUE(outer.matches(n))
              << outer << " covers " << inner << " but rejects " << n.to_string();
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// overlap
// ---------------------------------------------------------------------------

TEST(FilterOverlap, DisjointConstraintOnCommonAttribute) {
  Filter a, b;
  a.where("cost", Constraint::lt(2));
  b.where("cost", Constraint::gt(3));
  EXPECT_FALSE(a.overlaps(b));
}

TEST(FilterOverlap, NoCommonAttributesOverlap) {
  Filter a, b;
  a.where("x", Constraint::eq(1));
  b.where("y", Constraint::eq(2));
  EXPECT_TRUE(a.overlaps(b));  // a notification can carry both
}

TEST(FilterOverlap, SymmetricOnZoo) {
  const Filter filters[] = {
      Filter(),
      parking_under(3),
      Filter().where("cost", Constraint::gt(10)),
      Filter().where("service", Constraint::eq("weather")),
  };
  for (const auto& a : filters) {
    for (const auto& b : filters) {
      EXPECT_EQ(a.overlaps(b), b.overlaps(a));
    }
  }
}

// ---------------------------------------------------------------------------
// merging
// ---------------------------------------------------------------------------

TEST(FilterMerge, CoverAbsorbs) {
  auto m = parking_under(5).try_merge(parking_under(3));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(*m, parking_under(5));
}

TEST(FilterMerge, SingleDifferingAttributeMerges) {
  Filter a, b;
  a.where("service", Constraint::eq("parking")).where("sym", Constraint::eq("A"));
  b.where("service", Constraint::eq("parking")).where("sym", Constraint::eq("B"));
  auto m = a.try_merge(b);
  ASSERT_TRUE(m.has_value());
  EXPECT_TRUE(m->matches(
      Notification().set("service", "parking").set("sym", "A")));
  EXPECT_TRUE(m->matches(
      Notification().set("service", "parking").set("sym", "B")));
  EXPECT_FALSE(m->matches(
      Notification().set("service", "parking").set("sym", "C")));
}

TEST(FilterMerge, TwoDifferingAttributesRefuse) {
  Filter a, b;
  a.where("x", Constraint::eq(1)).where("y", Constraint::eq(1));
  b.where("x", Constraint::eq(2)).where("y", Constraint::eq(2));
  // The union is a cross shape — not a conjunctive filter.
  EXPECT_FALSE(a.try_merge(b).has_value());
}

TEST(FilterMerge, DifferentAttributeSetsRefuse) {
  Filter a, b;
  a.where("x", Constraint::eq(1));
  b.where("x", Constraint::eq(1)).where("y", Constraint::eq(2));
  // b ⊂ a here, so the cover absorbs...
  auto m = a.try_merge(b);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(*m, a);

  Filter c;
  c.where("y", Constraint::eq(2));
  // ...but disjoint attribute sets with no covering cannot merge.
  EXPECT_FALSE(b.try_merge(Filter().where("z", Constraint::eq(3))).has_value());
  (void)c;
}

TEST(FilterMerge, ExactnessOnProbes) {
  Filter a, b;
  a.where("service", Constraint::eq("parking"))
      .where("cost", Constraint::range(Value(0), Value(5)));
  b.where("service", Constraint::eq("parking"))
      .where("cost", Constraint::range(Value(3), Value(9)));
  auto m = a.try_merge(b);
  ASSERT_TRUE(m.has_value());
  for (double cost : {-1.0, 0.0, 2.0, 4.0, 6.0, 9.0, 9.5}) {
    EXPECT_EQ(m->matches(spot(cost)), a.matches(spot(cost)) || b.matches(spot(cost)))
        << "cost=" << cost;
  }
}

TEST(FilterPrint, ToStringForms) {
  EXPECT_EQ(Filter().to_string(), "(true)");
  EXPECT_EQ(parking_under(3).to_string(),
            "(cost < 3) and (service == \"parking\")");
}

TEST(NotificationPrint, IncludesAttributes) {
  auto n = Notification().set("a", 1).set("b", "x");
  n.stamp(NotificationId(7), ClientId(1), 1, 0);
  EXPECT_NE(n.to_string().find("a=1"), std::string::npos);
  EXPECT_NE(n.to_string().find("b=\"x\""), std::string::npos);
}

TEST(Notification, StampAndAccessors) {
  Notification n;
  n.stamp(NotificationId(9), ClientId(4), 17, sim::millis(250));
  EXPECT_EQ(n.id(), NotificationId(9));
  EXPECT_EQ(n.producer(), ClientId(4));
  EXPECT_EQ(n.producer_seq(), 17u);
  EXPECT_EQ(n.publish_time(), sim::millis(250));
}

TEST(Notification, GetAndHas) {
  auto n = Notification().set("k", 5);
  EXPECT_TRUE(n.has("k"));
  EXPECT_FALSE(n.has("j"));
  // get() hands out a borrowed pointer — no string copy per probe.
  ASSERT_NE(n.get("k"), nullptr);
  EXPECT_EQ(n.get("j"), nullptr);
  EXPECT_EQ(n.get("k")->as_int(), 5);
}

TEST(Notification, AttrsSortedByInternedId) {
  auto n = Notification().set("zzz", 1).set("aaa", 2).set("zzz", 3);
  EXPECT_EQ(n.size(), 2u);  // set() replaces per attribute
  EXPECT_EQ(n.get("zzz")->as_int(), 3);
  for (std::size_t i = 1; i < n.attrs().size(); ++i) {
    EXPECT_LT(n.attrs()[i - 1].id, n.attrs()[i].id);
  }
}

TEST(Filter, OrderingIsNameLexicographic) {
  // operator< must order by attribute *name*, not by AttrId mint order:
  // intern "b2" before "a2" and check the a-filter still sorts first.
  Filter fb;
  fb.where("b2", Constraint::eq(1));
  Filter fa;
  fa.where("a2", Constraint::eq(1));
  EXPECT_LT(fa, fb);
  EXPECT_FALSE(fb < fa);
  // Prefix rule: fewer constraints with equal prefix sorts first.
  Filter fa2 = fa;
  fa2.where("c2", Constraint::eq(2));
  EXPECT_LT(fa, fa2);
}

}  // namespace
}  // namespace rebeca::filter
