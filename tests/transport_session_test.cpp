// TCP session layer over real loopback sockets, in one process — the
// primary ThreadSanitizer target: acceptor threads, per-session reader
// threads, dial threads and two RealtimeExecutor loops all interleave
// here.
//
// The full-stack tests drive unmodified Broker/Client entities through
// BrokerNode/ClientBundle exactly as the rebeca-node CLI does, with
// each BrokerNode::run() on its own thread standing in for a process.
#include "src/transport/session.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/net/topology.hpp"
#include "src/transport/node.hpp"
#include "src/transport/wire.hpp"

namespace rebeca {
namespace {

using filter::Constraint;
using filter::Filter;
using filter::Notification;
using filter::Value;

// ---------------------------------------------------------------------------
// Session layer in isolation
// ---------------------------------------------------------------------------

TEST(TransportSession, HandshakeAndMessageFlow) {
  transport::RealtimeExecutor server_exec;
  std::unique_ptr<transport::PeerSession> server_session;
  std::vector<std::string> server_got;

  transport::Acceptor acceptor(
      server_exec, "127.0.0.1", 0,
      [&](transport::Conn conn, transport::SessionHello hello) {
        EXPECT_EQ(hello.kind, transport::SessionHello::Kind::client);
        EXPECT_EQ(hello.client, 9u);
        EXPECT_EQ(hello.session, 1234u);
        server_session = std::make_unique<transport::PeerSession>(
            server_exec, std::move(conn),
            [&](std::string payload) {
              server_got.push_back(std::move(payload));
              if (server_got.size() == 2) server_exec.stop();
            },
            [] {});
        server_session->send_frame(
            transport::kFrameWelcome,
            transport::encode_welcome(transport::SessionWelcome{1234, 0}));
      });

  transport::SessionHello hello;
  hello.kind = transport::SessionHello::Kind::client;
  hello.client = 9;
  hello.session = 1234;

  std::optional<std::pair<transport::Conn, transport::SessionWelcome>> dialed;
  std::thread client([&] {
    dialed = transport::dial("127.0.0.1", acceptor.port(), hello,
                             std::chrono::milliseconds(5000));
    ASSERT_TRUE(dialed.has_value());
    EXPECT_EQ(dialed->second.session, 1234u);
    dialed->first.write_frame(transport::kFrameMsg, "first");
    dialed->first.write_frame(transport::kFrameMsg, "second");
  });

  server_exec.run();
  client.join();
  ASSERT_EQ(server_got.size(), 2u);
  EXPECT_EQ(server_got[0], "first");
  EXPECT_EQ(server_got[1], "second");
  server_session->close();
}

TEST(TransportSession, RemoteCloseFiresOnClosedOnce) {
  transport::RealtimeExecutor exec;
  std::atomic<int> closed_count{0};
  std::unique_ptr<transport::PeerSession> session;

  transport::Acceptor acceptor(
      exec, "127.0.0.1", 0,
      [&](transport::Conn conn, transport::SessionHello) {
        session = std::make_unique<transport::PeerSession>(
            exec, std::move(conn), [](std::string) {},
            [&] {
              ++closed_count;
              exec.stop();
            });
        session->send_frame(
            transport::kFrameWelcome,
            transport::encode_welcome(transport::SessionWelcome{1, 0}));
      });

  std::thread client([&] {
    auto dialed = transport::dial("127.0.0.1", acceptor.port(),
                                  transport::SessionHello{},
                                  std::chrono::milliseconds(5000));
    ASSERT_TRUE(dialed.has_value());
    // Dropping the conn closes the socket: the server must see exactly
    // one on_closed.
  });
  exec.run();
  client.join();
  EXPECT_EQ(closed_count.load(), 1);
}

TEST(TransportSession, LocalCloseSuppressesOnClosed) {
  transport::RealtimeExecutor exec;
  std::atomic<bool> closed_fired{false};
  std::unique_ptr<transport::PeerSession> session;
  std::atomic<bool> client_may_exit{false};

  transport::Acceptor acceptor(
      exec, "127.0.0.1", 0,
      [&](transport::Conn conn, transport::SessionHello) {
        session = std::make_unique<transport::PeerSession>(
            exec, std::move(conn), [](std::string) {},
            [&] { closed_fired = true; });
        session->send_frame(
            transport::kFrameWelcome,
            transport::encode_welcome(transport::SessionWelcome{1, 0}));
        // Deliberate local teardown from the executor thread (the same
        // thread the node runtime closes from), then drain: anything
        // the reader posted before dying must hit a silenced block.
        exec.post([&] {
          session->close();
          client_may_exit = true;
          exec.schedule_after(sim::millis(50), [&] { exec.stop(); });
        });
      });

  std::thread client([&] {
    auto dialed = transport::dial("127.0.0.1", acceptor.port(),
                                  transport::SessionHello{},
                                  std::chrono::milliseconds(5000));
    ASSERT_TRUE(dialed.has_value());
    // Hold the socket open until the server side has closed locally.
    while (!client_may_exit) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  exec.run();
  client.join();
  EXPECT_FALSE(closed_fired.load());
}

// ---------------------------------------------------------------------------
// Full stack: unmodified Broker/Client entities over loopback sockets
// ---------------------------------------------------------------------------

transport::NodeSpec two_broker_spec() {
  transport::NodeSpec spec;
  spec.name = "session_test";
  spec.topology = net::Topology::chain(2);
  spec.broker.strategy = routing::Strategy::covering;
  spec.broker.use_advertisements = false;
  spec.transport.port_base = 0;  // ephemeral; AddressBook unused (below)
  spec.total_duration = sim::millis(2500);
  return spec;
}

/// Runs `spec` end to end: each BrokerNode on its own thread (standing
/// in for a process), the ClientBundle on this one. Returns the
/// bundle's exit code (0 = every matching publication delivered).
int run_deployment(transport::NodeSpec spec, const std::string& rdz) {
  spec.transport.rendezvous_dir = rdz;
  const std::size_t n = spec.topology->broker_count();
  std::vector<std::unique_ptr<transport::BrokerNode>> brokers;
  std::vector<std::thread> broker_threads;
  for (std::size_t i = 0; i < n; ++i) {
    brokers.push_back(std::make_unique<transport::BrokerNode>(spec, i));
  }
  broker_threads.reserve(n);
  for (auto& b : brokers) {
    broker_threads.emplace_back([&b] { b->run(); });
  }
  transport::ClientBundle bundle(spec);
  bundle.set_expect_complete(true);
  const int rc = bundle.run();
  for (auto& b : brokers) b->stop();
  for (auto& t : broker_threads) t.join();
  return rc;
}

std::string fresh_rendezvous_dir(const std::string& tag) {
  std::string dir = ::testing::TempDir() + "rebeca_rdz_" + tag + "_XXXXXX";
  [[maybe_unused]] const char* created = ::mkdtemp(dir.data());
  EXPECT_NE(created, nullptr);
  return dir;
}

TEST(TransportStack, SubscribePublishDeliverAcrossProcessesWorthOfSockets) {
  transport::NodeSpec spec = two_broker_spec();

  transport::NodeClientSpec consumer;
  consumer.name = "consumer";
  consumer.id = 1;
  consumer.broker = 0;
  consumer.subscribes.push_back(
      Filter().where("topic", Constraint::eq(Value(std::string("t")))));
  spec.clients.push_back(consumer);

  transport::NodeClientSpec producer;
  producer.name = "producer";
  producer.id = 2;
  producer.broker = 1;
  transport::PublishDrive drive;
  drive.body = Notification().set("topic", std::string("t")).set("v", std::int64_t(1));
  drive.every = sim::millis(50);
  drive.count = 20;
  drive.start = sim::millis(300);  // after overlay + subs settle
  producer.publishes.push_back(drive);
  spec.clients.push_back(producer);

  EXPECT_EQ(run_deployment(spec, fresh_rendezvous_dir("spd")), 0);
}

TEST(TransportStack, MoveToResumesSessionLosslessly) {
  transport::NodeSpec spec = two_broker_spec();
  spec.total_duration = sim::millis(3000);

  transport::NodeClientSpec consumer;
  consumer.name = "consumer";
  consumer.id = 1;
  consumer.broker = 0;
  consumer.subscribes.push_back(
      Filter().where("topic", Constraint::eq(Value(std::string("t")))));
  // One mid-run moveto: broker 0 → broker 1 at t = 300+600 = 900ms,
  // dark for 200ms while the producer keeps publishing every 40ms — the
  // gap notifications must come back through fetch/replay.
  transport::RoamDrive roam;
  roam.route = {1};
  roam.dwell = sim::millis(600);
  roam.gap = sim::millis(200);
  roam.hops = 1;
  roam.start = sim::millis(300);
  consumer.roams.push_back(roam);
  spec.clients.push_back(consumer);

  transport::NodeClientSpec producer;
  producer.name = "producer";
  producer.id = 2;
  producer.broker = 1;
  transport::PublishDrive drive;
  drive.body = Notification().set("topic", std::string("t")).set("v", std::int64_t(2));
  drive.every = sim::millis(40);
  drive.start = sim::millis(300);
  drive.stop = sim::millis(2000);
  producer.publishes.push_back(drive);
  spec.clients.push_back(producer);

  EXPECT_EQ(run_deployment(spec, fresh_rendezvous_dir("move")), 0);
}

}  // namespace
}  // namespace rebeca
