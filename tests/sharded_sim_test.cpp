// ShardedSimulation: the conservative time-window engine itself.
//
// The contract under test, independent of any pub/sub machinery: a set
// of lanes exchanging keyed events produces byte-identical per-lane
// traces for every way of mapping lanes onto shards — including all on
// one shard — because event keys (time, sender lane, sender seq) and
// per-lane RNG streams never depend on placement.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <vector>

#include "src/sim/sharded.hpp"
#include "src/sim/simulation.hpp"
#include "src/util/assert.hpp"

namespace rebeca {
namespace {

using sim::LaneExecutor;
using sim::ShardedSimulation;

/// One relay node: records every tick it executes, then forwards a few
/// follow-ups to other nodes with deterministic (sometimes zero,
/// sometimes cross-lane) delays and an RNG draw mixed in.
struct Node {
  LaneExecutor* exec = nullptr;
  std::vector<Node>* ring = nullptr;
  std::vector<std::string>* trace = nullptr;
  std::size_t index = 0;

  void tick(int hop, int value) {
    std::ostringstream os;
    os << "n" << index << " t=" << exec->now() << " hop=" << hop
       << " v=" << value;
    trace->push_back(os.str());
    if (hop >= 6) return;
    // Forward to the next node — cross-lane, possibly cross-shard, so
    // the delay must be at least the lookahead (1ms here).
    Node& next = (*ring)[(index + 1) % ring->size()];
    const auto jitter =
        static_cast<sim::Duration>(exec->rng().uniform_u64(0, 2));
    next.exec->post_at(exec->now() + sim::millis(1) + sim::millis(jitter),
                       [&next, hop, value] { next.tick(hop + 1, value); });
    // And a same-lane zero-delay follow-up on even hops: intra-lane
    // events may sit below the lookahead.
    if (hop % 2 == 0) {
      exec->post_at(exec->now(), [this, hop, value] {
        std::ostringstream echo;
        echo << "n" << index << " echo t=" << exec->now() << " hop=" << hop
             << " v=" << value;
        trace->push_back(echo.str());
      });
    }
  }
};

/// Runs the relay program with the given lane->shard placement and
/// returns the per-lane traces.
std::vector<std::vector<std::string>> run_relay(
    std::size_t shards, const std::vector<std::size_t>& placement) {
  ShardedSimulation engine(/*seed=*/42, shards);
  engine.set_lookahead(sim::millis(1));

  std::vector<Node> ring(placement.size());
  std::vector<std::vector<std::string>> traces(placement.size());
  for (std::size_t i = 0; i < placement.size(); ++i) {
    ring[i].exec = &engine.add_lane(placement[i]);
    ring[i].ring = &ring;
    ring[i].trace = &traces[i];
    ring[i].index = i;
  }

  {
    ShardedSimulation::Scope scope(engine.control());
    // Two seeds injected at the same instant from the control lane; their
    // relative order at the destination is fixed by sender sequence.
    ring[0].exec->post_at(sim::millis(5), [&ring] { ring[0].tick(0, 100); });
    ring[2].exec->post_at(sim::millis(5), [&ring] { ring[2].tick(0, 200); });
  }
  engine.run_until(sim::millis(50));
  EXPECT_EQ(engine.now(), sim::millis(50));
  EXPECT_EQ(engine.pending_events(), 0u);
  return traces;
}

TEST(ShardedSim, TracesAreShardCountInvariant) {
  const std::vector<std::size_t> all_on_one{0, 0, 0, 0};
  const std::vector<std::size_t> two_way{0, 1, 0, 1};
  const std::vector<std::size_t> four_way{0, 1, 2, 3};

  const auto a = run_relay(1, all_on_one);
  const auto b = run_relay(2, two_way);
  const auto c = run_relay(4, four_way);

  EXPECT_EQ(a, b) << "1 shard vs 2 shards diverged";
  EXPECT_EQ(a, c) << "1 shard vs 4 shards diverged";
  // The program actually ran.
  std::size_t total = 0;
  for (const auto& t : a) total += t.size();
  EXPECT_GT(total, 10u);
}

TEST(ShardedSim, RepeatedRunsAreIdentical) {
  const std::vector<std::size_t> placement{0, 1, 2, 0};
  EXPECT_EQ(run_relay(3, placement), run_relay(3, placement));
}

TEST(ShardedSim, ScheduleAtHandlesCancelAcrossWindows) {
  ShardedSimulation engine(7, 2);
  engine.set_lookahead(sim::millis(1));
  LaneExecutor& lane = engine.add_lane(1);
  int fired = 0;
  sim::EventHandle keep;
  sim::EventHandle cancel;
  {
    ShardedSimulation::Scope scope(engine.control());
    keep = lane.schedule_at(sim::millis(10), [&] { ++fired; });
    cancel = lane.schedule_at(sim::millis(12), [&] { fired += 100; });
  }
  cancel.cancel();
  engine.run_until(sim::millis(20));
  EXPECT_EQ(fired, 1);
}

TEST(ShardedSim, EventsAtTheDeadlineRunLikeTheClassicKernel) {
  // Classic reference: run_until executes events at the deadline itself.
  sim::Simulation classic(1);
  int classic_fired = 0;
  classic.post_at(sim::millis(10), [&] { ++classic_fired; });
  classic.run_until(sim::millis(10));
  ASSERT_EQ(classic_fired, 1);

  ShardedSimulation engine(1, 1);
  engine.set_lookahead(sim::millis(1));
  int fired = 0;
  {
    ShardedSimulation::Scope scope(engine.control());
    engine.control().post_at(sim::millis(10), [&] { ++fired; });
  }
  engine.run_until(sim::millis(10));
  EXPECT_EQ(fired, 1);
  // And a second run from the same instant does not re-run it.
  engine.run_until(sim::millis(11));
  EXPECT_EQ(fired, 1);
}

TEST(ShardedSim, CrossShardEventBelowLookaheadIsRejected) {
  ShardedSimulation engine(11, 2);
  engine.set_lookahead(sim::millis(5));
  LaneExecutor& a = engine.add_lane(0);
  LaneExecutor& b = engine.add_lane(1);
  {
    ShardedSimulation::Scope scope(engine.control());
    a.post_at(sim::millis(10), [&a, &b] {
      // Scheduling onto another shard with less than the lookahead is a
      // correctness violation the engine must catch, not silently race.
      b.post_at(a.now() + sim::millis(1), [] {});
    });
  }
  EXPECT_THROW(engine.run_until(sim::millis(20)), util::AssertionError);
}

TEST(ShardedSim, SchedulingOutsideAnyScopeIsRejected) {
  ShardedSimulation engine(3, 1);
  EXPECT_THROW(engine.control().post_at(sim::millis(1), [] {}),
               util::AssertionError);
}

}  // namespace
}  // namespace rebeca
