// Re-expose pin decay (the ROADMAP churn item): a pin force-exposes a
// covered filter while a mover's covering entry leaves the old path.
// Historically the pin persisted whenever a *different* covering
// subscriber arrived before the mover's input died — the natural target
// then aggregates the pinned filter under the newcomer, so the "target
// contains the pin" eviction never fires, the pinned filter keeps riding
// the wire, and its presence keeps downstream pins' backing inputs alive
// in a self-sustaining chain. The decay rule evicts a pin as soon as the
// refresh target holds a covering entry served by subscribers other than
// the recorded movers; the eviction cascades down the old path and
// pins_active returns to zero — without ever opening the covered-
// bystander loss window.
#include <gtest/gtest.h>

#include "src/scenario/scenario.hpp"

namespace rebeca {
namespace {

using filter::Constraint;
using filter::Filter;
using filter::Notification;

scenario::ScenarioReport run_churn(std::size_t shards, std::uint64_t seed,
                                   std::uint64_t* reexposed_total) {
  scenario::ScenarioBuilder b;
  b.seed(seed);
  b.topology(scenario::TopologySpec::chain(6));
  b.routing(routing::Strategy::covering);
  if (shards > 0) b.shards(shards);

  // Roamer: the covering filter, relocating B5 -> B1. Its moveout pins
  // every filter it covers along the old path.
  auto& roamer = b.client("roamer").with_id(1).at_broker(5).subscribes(
      Filter().where("sym", Constraint::eq("AAA")));
  scenario::RoamSpec roam;
  roam.route({1})
      .dwelling(sim::millis(500))
      .dark_for(sim::millis(100))
      .hops(1)
      .from_phase("tour");
  roamer.roams(roam);

  // Bystander: covered by the roamer AND by the newcover below. After
  // the mover leaves, the newcover's entry represents it on the wire, so
  // pre-decay its pin would ride forever.
  b.client("bystander")
      .with_id(2)
      .at_broker(5)
      .subscribes(Filter()
                      .where("sym", Constraint::eq("AAA"))
                      .where("px", Constraint::ge(100)));

  // The "new covering subscriber" of the churn scenario: structurally
  // distinct from the roamer's filter (so moveouts never just untag a
  // shared entry) but still covering the bystander.
  b.client("newcover")
      .with_id(4)
      .at_broker(5)
      .subscribes(Filter()
                      .where("sym", Constraint::eq("AAA"))
                      .where("px", Constraint::ge(50)));

  scenario::PublishSpec pub;
  pub.every(sim::millis(10))
      .body(Notification().set("sym", "AAA").set("px", 100))
      .from_phase("tour")
      .until_phase_end("tour");
  b.client("producer").with_id(3).at_broker(0).publishes(pub);

  b.expect_exactly_once("bystander");
  b.expect_exactly_once("newcover");
  b.phase("settle", sim::seconds(1));
  b.phase("tour", sim::seconds(2));
  b.phase("drain", sim::seconds(3));

  auto s = b.build();
  s->run();
  if (reexposed_total != nullptr) {
    *reexposed_total = 0;
    for (std::size_t i = 0; i < s->overlay().broker_count(); ++i) {
      *reexposed_total += s->overlay().broker(i).reexposed_filters();
    }
  }
  return s->report();
}

TEST(PinDecay, PinsEvictedUnderCoveringChurnOnClassicKernel) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    std::uint64_t reexposed = 0;
    auto r = run_churn(/*shards=*/0, seed, &reexposed);
    // The uncover protocol ran and created pins…
    EXPECT_GT(reexposed, 0u) << "seed " << seed;
    // …and decay drained them all once the newcover represented the
    // covered filters, despite every pinned filter's backing input (the
    // bystander) staying alive.
    EXPECT_EQ(r.pins_active, 0u) << "seed " << seed;
    // Safety: eviction never opened a delivery gap.
    EXPECT_TRUE(r.expectations_ok())
        << "seed " << seed << ": " << r.violations.front();
  }
}

TEST(PinDecay, PinsEvictedUnderCoveringChurnOnShardedEngine) {
  std::uint64_t reexposed = 0;
  auto r = run_churn(/*shards=*/2, 1, &reexposed);
  EXPECT_GT(reexposed, 0u);
  EXPECT_EQ(r.pins_active, 0u);
  EXPECT_TRUE(r.expectations_ok()) << r.violations.front();
}

TEST(PinDecay, ShardCountInvariantReports) {
  auto r1 = run_churn(/*shards=*/1, 9, nullptr);
  auto r4 = run_churn(/*shards=*/4, 9, nullptr);
  EXPECT_EQ(r1.to_string(), r4.to_string());
}

}  // namespace
}  // namespace rebeca
