// The acceptance bar of the matcher redesign: for every checked-in
// example config, equal-seed ScenarioReports are byte-identical between
// --matcher linear and --matcher index — on the classic kernel and on
// the sharded engine at shards 1 and 4.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "src/cli/config.hpp"
#include "src/scenario/sweep.hpp"

namespace rebeca {
namespace {

std::vector<std::string> example_configs() {
  const std::filesystem::path dir =
      std::filesystem::path(REBECA_SOURCE_DIR) / "examples" / "configs";
  std::vector<std::string> paths;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".json") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

std::string run_report(const cli::RunSpec& spec, broker::Matcher matcher,
                       std::size_t shards) {
  scenario::ScenarioSweep sweep(
      [&spec, matcher](scenario::ScenarioBuilder& b) {
        spec.declare(b);
        b.matcher(matcher);
      });
  scenario::SweepConfig cfg;
  cfg.seeds = {11};
  cfg.threads = 1;
  cfg.shards = shards;
  const scenario::SweepResult result = sweep.run(cfg);
  return result.reports.at(0).to_string();
}

TEST(MatcherEquivalence, ByteIdenticalReportsOnEveryExampleConfig) {
  const auto configs = example_configs();
  ASSERT_FALSE(configs.empty());
  for (const std::string& path : configs) {
    SCOPED_TRACE(path);
    const cli::RunSpec spec = cli::load_config(path);
    // Classic kernel plus the sharded engine at 1 and 4 shards; each
    // engine mode is its own deterministic sample, and within each the
    // two matchers must agree byte for byte.
    for (const std::size_t shards : {std::size_t{0}, std::size_t{1},
                                     std::size_t{4}}) {
      SCOPED_TRACE("shards=" + std::to_string(shards));
      const std::string linear =
          run_report(spec, broker::Matcher::linear, shards);
      const std::string index = run_report(spec, broker::Matcher::index, shards);
      EXPECT_EQ(linear, index);
    }
  }
}

}  // namespace
}  // namespace rebeca
