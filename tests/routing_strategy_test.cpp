// Forward-set computation per routing strategy (unit level): identity
// collapse, covering antichains, exact merging, advertisement-free
// diffs — the machinery behind paper Sec. 2.2.
#include <gtest/gtest.h>

#include "src/routing/strategy.hpp"

namespace rebeca::routing {
namespace {

using filter::Constraint;
using filter::Filter;
using filter::Value;

ForwardInput input(Filter f, std::uint32_t client) {
  return {std::move(f), {SubKey{ClientId(client), 1}}};
}

Filter lt(const char* attr, int v) {
  return Filter().where(attr, Constraint::lt(v));
}

TEST(Strategy, FloodingForwardsNothing) {
  auto fs = compute_forward_set(Strategy::flooding,
                                {input(lt("x", 5), 1), input(lt("x", 9), 2)});
  EXPECT_TRUE(fs.empty());
}

TEST(Strategy, SimpleKeepsEverySubscription) {
  auto fs = compute_forward_set(Strategy::simple,
                                {input(lt("x", 5), 1), input(lt("x", 9), 2)});
  EXPECT_EQ(fs.size(), 2u);
}

TEST(Strategy, IdentityCollapsesEqualFilters) {
  auto fs = compute_forward_set(Strategy::identity,
                                {input(lt("x", 5), 1), input(lt("x", 5), 2)});
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs.begin()->second.size(), 2u);  // both tags preserved
}

TEST(Strategy, CoveringKeepsOnlyMaximal) {
  auto fs = compute_forward_set(
      Strategy::covering,
      {input(lt("x", 5), 1), input(lt("x", 9), 2), input(lt("x", 7), 3)});
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs.begin()->first, lt("x", 9));
  // Exact-tags design: the representative carries only its own tags.
  EXPECT_EQ(fs.begin()->second, (std::set<SubKey>{SubKey{ClientId(2), 1}}));
}

TEST(Strategy, CoveringKeepsIncomparableFilters) {
  auto fs = compute_forward_set(
      Strategy::covering, {input(lt("x", 5), 1), input(lt("y", 5), 2)});
  EXPECT_EQ(fs.size(), 2u);
}

TEST(Strategy, CoveringEquivalentFiltersPickCanonical) {
  // range [v,v] and eq v are mutually covering; exactly one survives,
  // deterministically.
  Filter eqf = Filter().where("x", Constraint::eq(5));
  Filter rangef = Filter().where("x", Constraint::range(Value(5), Value(5)));
  auto fs = compute_forward_set(Strategy::covering,
                                {input(eqf, 1), input(rangef, 2)});
  ASSERT_EQ(fs.size(), 1u);
  auto fs2 = compute_forward_set(Strategy::covering,
                                 {input(rangef, 2), input(eqf, 1)});
  EXPECT_EQ(fs.begin()->first, fs2.begin()->first);  // order-independent
}

TEST(Strategy, MergingCombinesSiblings) {
  Filter a = Filter().where("sym", Constraint::eq("A"));
  Filter b = Filter().where("sym", Constraint::eq("B"));
  auto fs = compute_forward_set(Strategy::merging, {input(a, 1), input(b, 2)});
  ASSERT_EQ(fs.size(), 1u);
  const auto& merged = fs.begin()->first;
  EXPECT_TRUE(merged.matches(filter::Notification().set("sym", "A")));
  EXPECT_TRUE(merged.matches(filter::Notification().set("sym", "B")));
  EXPECT_FALSE(merged.matches(filter::Notification().set("sym", "C")));
  EXPECT_EQ(fs.begin()->second.size(), 2u);  // merged tags union
}

TEST(Strategy, MergingReachesFixpoint) {
  std::vector<ForwardInput> inputs;
  for (std::uint32_t i = 0; i < 6; ++i) {
    inputs.push_back(
        input(Filter().where("sym", Constraint::eq("S" + std::to_string(i))), i));
  }
  auto fs = compute_forward_set(Strategy::merging, inputs);
  ASSERT_EQ(fs.size(), 1u);  // all six collapse into one in-set
  EXPECT_EQ(fs.begin()->second.size(), 6u);
}

TEST(Strategy, MergingRefusesInexactUnions) {
  Filter a = Filter().where("x", Constraint::eq(1)).where("y", Constraint::eq(1));
  Filter b = Filter().where("x", Constraint::eq(2)).where("y", Constraint::eq(2));
  auto fs = compute_forward_set(Strategy::merging, {input(a, 1), input(b, 2)});
  EXPECT_EQ(fs.size(), 2u);
}

TEST(Strategy, EmptyInputsEmptyOutput) {
  for (auto s : {Strategy::flooding, Strategy::simple, Strategy::identity,
                 Strategy::covering, Strategy::merging}) {
    EXPECT_TRUE(compute_forward_set(s, {}).empty());
  }
}

// Semantic invariant: for every non-flooding strategy, the union of
// accepted notifications is preserved.
TEST(Strategy, AcceptanceUnionPreserved) {
  std::vector<ForwardInput> inputs = {
      input(lt("x", 5), 1),
      input(lt("x", 9), 2),
      input(Filter().where("x", Constraint::gt(100)), 3),
      input(Filter().where("sym", Constraint::eq("A")), 4),
      input(Filter().where("sym", Constraint::eq("B")), 5),
      input(Filter().where("sym", Constraint::prefix("A")), 6),
  };
  std::vector<filter::Notification> probes;
  for (int x : {-3, 0, 4, 6, 8, 50, 101}) {
    probes.push_back(filter::Notification().set("x", x));
  }
  for (const char* s : {"A", "AB", "B", "C"}) {
    probes.push_back(filter::Notification().set("sym", s));
  }

  auto accepted_by = [&](const ForwardSet& fs, const filter::Notification& n) {
    for (const auto& [f, tags] : fs) {
      if (f.matches(n)) return true;
    }
    return false;
  };
  auto accepted_by_inputs = [&](const filter::Notification& n) {
    for (const auto& in : inputs) {
      if (in.f.matches(n)) return true;
    }
    return false;
  };

  for (auto s : {Strategy::simple, Strategy::identity, Strategy::covering,
                 Strategy::merging}) {
    auto fs = compute_forward_set(s, inputs);
    for (const auto& n : probes) {
      EXPECT_EQ(accepted_by(fs, n), accepted_by_inputs(n))
          << strategy_name(s) << " changed acceptance of " << n.to_string();
    }
  }
}

// ---------------------------------------------------------------------------
// diff engine
// ---------------------------------------------------------------------------

TEST(StrategyDiff, EmptyToTargetSubscribesAll) {
  ForwardSet target;
  target[lt("x", 5)] = {SubKey{ClientId(1), 1}};
  target[lt("y", 5)] = {SubKey{ClientId(2), 1}};
  auto d = diff_forward_sets({}, target);
  EXPECT_EQ(d.prunes(), 0u);
  EXPECT_EQ(d.upserts(), 2u);
}

TEST(StrategyDiff, TargetToEmptyUnsubscribesAll) {
  ForwardSet sent;
  sent[lt("x", 5)] = {SubKey{ClientId(1), 1}};
  auto d = diff_forward_sets(sent, {});
  EXPECT_EQ(d.prunes(), 1u);
  EXPECT_EQ(d.upserts(), 0u);
}

TEST(StrategyDiff, UnchangedIsSilent) {
  ForwardSet s;
  s[lt("x", 5)] = {SubKey{ClientId(1), 1}};
  auto d = diff_forward_sets(s, s);
  EXPECT_TRUE(d.empty());
}

TEST(StrategyDiff, TagChangeIsAnUpsert) {
  ForwardSet sent, target;
  sent[lt("x", 5)] = {SubKey{ClientId(1), 1}};
  target[lt("x", 5)] = {SubKey{ClientId(1), 1}, SubKey{ClientId(2), 1}};
  auto d = diff_forward_sets(sent, target);
  EXPECT_EQ(d.prunes(), 0u);
  ASSERT_EQ(d.upserts(), 1u);
  EXPECT_EQ(d.steps.front().tags.size(), 2u);
}

TEST(StrategyDiff, ReplacementIsUnsubPlusSub) {
  ForwardSet sent, target;
  sent[lt("x", 5)] = {SubKey{ClientId(1), 1}};
  target[lt("x", 9)] = {SubKey{ClientId(1), 1}};
  auto d = diff_forward_sets(sent, target);
  EXPECT_EQ(d.prunes(), 1u);
  EXPECT_EQ(d.upserts(), 1u);
}

// The program is ordered: every upsert precedes every prune, so on a
// FIFO link a covering replacement is installed before the covered
// entry disappears (uncover-before-prune).
TEST(StrategyDiff, UpsertsPrecedePrunes) {
  ForwardSet sent, target;
  sent[lt("x", 9)] = {SubKey{ClientId(1), 1}};   // covering rep, leaving
  target[lt("x", 5)] = {SubKey{ClientId(2), 1}}; // covered, re-exposed
  target[lt("y", 1)] = {SubKey{ClientId(3), 1}};
  auto d = diff_forward_sets(sent, target);
  ASSERT_EQ(d.steps.size(), 3u);
  bool seen_prune = false;
  for (const auto& step : d.steps) {
    if (step.kind == DiffStep::Kind::prune) seen_prune = true;
    if (step.kind == DiffStep::Kind::upsert) {
      EXPECT_FALSE(seen_prune);
    }
  }
  EXPECT_TRUE(seen_prune);
}

// ---------------------------------------------------------------------------
// covered_by + moveout planning (the relocation uncover machinery)
// ---------------------------------------------------------------------------

TEST(StrategyCoveredBy, FindsStrictlyCoveredEntries) {
  ForwardSet hop;
  hop[lt("x", 9)] = {SubKey{ClientId(1), 1}};
  hop[lt("x", 5)] = {SubKey{ClientId(2), 1}};  // covered by x<9
  hop[lt("y", 5)] = {SubKey{ClientId(3), 1}};  // incomparable
  auto covered = covered_by(lt("x", 9), hop);
  ASSERT_EQ(covered.size(), 1u);
  EXPECT_EQ(covered.begin()->first, lt("x", 5));
  EXPECT_EQ(covered.begin()->second, (std::set<SubKey>{SubKey{ClientId(2), 1}}));
}

TEST(StrategyCoveredBy, ExcludesTheRepresentativeItself) {
  ForwardSet hop;
  hop[lt("x", 9)] = {SubKey{ClientId(1), 1}};
  EXPECT_TRUE(covered_by(lt("x", 9), hop).empty());
}

TEST(StrategyMoveout, SharedEntryIsUntagOnly) {
  const SubKey mover{ClientId(1), 1};
  ForwardSet hop;
  hop[lt("x", 9)] = {mover, SubKey{ClientId(2), 1}};
  auto p = plan_moveout(Strategy::covering, mover, hop);
  ASSERT_EQ(p.steps.size(), 1u);
  EXPECT_EQ(p.steps.front().kind, MoveoutStep::Kind::untag);
  EXPECT_EQ(p.ack_barriers, 0u);
}

TEST(StrategyMoveout, DyingEntryUnderCoveringNeedsReexposeBeforePrune) {
  const SubKey mover{ClientId(1), 1};
  ForwardSet hop;
  hop[lt("x", 9)] = {mover};
  for (auto s : {Strategy::covering, Strategy::merging}) {
    auto p = plan_moveout(s, mover, hop);
    ASSERT_EQ(p.steps.size(), 2u) << strategy_name(s);
    EXPECT_EQ(p.steps[0].kind, MoveoutStep::Kind::reexpose);
    EXPECT_EQ(p.steps[1].kind, MoveoutStep::Kind::prune);
    EXPECT_EQ(p.ack_barriers, 1u);
  }
}

TEST(StrategyMoveout, NonAggregatingStrategiesPruneDirectly) {
  const SubKey mover{ClientId(1), 1};
  ForwardSet hop;
  hop[lt("x", 9)] = {mover};
  for (auto s : {Strategy::flooding, Strategy::simple, Strategy::identity}) {
    auto p = plan_moveout(s, mover, hop);
    ASSERT_EQ(p.steps.size(), 1u) << strategy_name(s);
    EXPECT_EQ(p.steps.front().kind, MoveoutStep::Kind::prune);
    EXPECT_EQ(p.ack_barriers, 0u);
  }
}

TEST(StrategyMoveout, UntouchedKeysProduceEmptyProgram) {
  ForwardSet hop;
  hop[lt("x", 9)] = {SubKey{ClientId(2), 1}};
  auto p = plan_moveout(Strategy::covering, SubKey{ClientId(1), 1}, hop);
  EXPECT_TRUE(p.empty());
}

}  // namespace
}  // namespace rebeca::routing
