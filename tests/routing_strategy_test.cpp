// Forward-set computation per routing strategy (unit level): identity
// collapse, covering antichains, exact merging, advertisement-free
// diffs — the machinery behind paper Sec. 2.2.
#include <gtest/gtest.h>

#include "src/routing/strategy.hpp"

namespace rebeca::routing {
namespace {

using filter::Constraint;
using filter::Filter;
using filter::Value;

ForwardInput input(Filter f, std::uint32_t client) {
  return {std::move(f), {SubKey{ClientId(client), 1}}};
}

Filter lt(const char* attr, int v) {
  return Filter().where(attr, Constraint::lt(v));
}

TEST(Strategy, FloodingForwardsNothing) {
  auto fs = compute_forward_set(Strategy::flooding,
                                {input(lt("x", 5), 1), input(lt("x", 9), 2)});
  EXPECT_TRUE(fs.empty());
}

TEST(Strategy, SimpleKeepsEverySubscription) {
  auto fs = compute_forward_set(Strategy::simple,
                                {input(lt("x", 5), 1), input(lt("x", 9), 2)});
  EXPECT_EQ(fs.size(), 2u);
}

TEST(Strategy, IdentityCollapsesEqualFilters) {
  auto fs = compute_forward_set(Strategy::identity,
                                {input(lt("x", 5), 1), input(lt("x", 5), 2)});
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs.begin()->second.size(), 2u);  // both tags preserved
}

TEST(Strategy, CoveringKeepsOnlyMaximal) {
  auto fs = compute_forward_set(
      Strategy::covering,
      {input(lt("x", 5), 1), input(lt("x", 9), 2), input(lt("x", 7), 3)});
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs.begin()->first, lt("x", 9));
  // Exact-tags design: the representative carries only its own tags.
  EXPECT_EQ(fs.begin()->second, (std::set<SubKey>{SubKey{ClientId(2), 1}}));
}

TEST(Strategy, CoveringKeepsIncomparableFilters) {
  auto fs = compute_forward_set(
      Strategy::covering, {input(lt("x", 5), 1), input(lt("y", 5), 2)});
  EXPECT_EQ(fs.size(), 2u);
}

TEST(Strategy, CoveringEquivalentFiltersPickCanonical) {
  // range [v,v] and eq v are mutually covering; exactly one survives,
  // deterministically.
  Filter eqf = Filter().where("x", Constraint::eq(5));
  Filter rangef = Filter().where("x", Constraint::range(Value(5), Value(5)));
  auto fs = compute_forward_set(Strategy::covering,
                                {input(eqf, 1), input(rangef, 2)});
  ASSERT_EQ(fs.size(), 1u);
  auto fs2 = compute_forward_set(Strategy::covering,
                                 {input(rangef, 2), input(eqf, 1)});
  EXPECT_EQ(fs.begin()->first, fs2.begin()->first);  // order-independent
}

TEST(Strategy, MergingCombinesSiblings) {
  Filter a = Filter().where("sym", Constraint::eq("A"));
  Filter b = Filter().where("sym", Constraint::eq("B"));
  auto fs = compute_forward_set(Strategy::merging, {input(a, 1), input(b, 2)});
  ASSERT_EQ(fs.size(), 1u);
  const auto& merged = fs.begin()->first;
  EXPECT_TRUE(merged.matches(filter::Notification().set("sym", "A")));
  EXPECT_TRUE(merged.matches(filter::Notification().set("sym", "B")));
  EXPECT_FALSE(merged.matches(filter::Notification().set("sym", "C")));
  EXPECT_EQ(fs.begin()->second.size(), 2u);  // merged tags union
}

TEST(Strategy, MergingReachesFixpoint) {
  std::vector<ForwardInput> inputs;
  for (std::uint32_t i = 0; i < 6; ++i) {
    inputs.push_back(
        input(Filter().where("sym", Constraint::eq("S" + std::to_string(i))), i));
  }
  auto fs = compute_forward_set(Strategy::merging, inputs);
  ASSERT_EQ(fs.size(), 1u);  // all six collapse into one in-set
  EXPECT_EQ(fs.begin()->second.size(), 6u);
}

TEST(Strategy, MergingRefusesInexactUnions) {
  Filter a = Filter().where("x", Constraint::eq(1)).where("y", Constraint::eq(1));
  Filter b = Filter().where("x", Constraint::eq(2)).where("y", Constraint::eq(2));
  auto fs = compute_forward_set(Strategy::merging, {input(a, 1), input(b, 2)});
  EXPECT_EQ(fs.size(), 2u);
}

TEST(Strategy, EmptyInputsEmptyOutput) {
  for (auto s : {Strategy::flooding, Strategy::simple, Strategy::identity,
                 Strategy::covering, Strategy::merging}) {
    EXPECT_TRUE(compute_forward_set(s, {}).empty());
  }
}

// Semantic invariant: for every non-flooding strategy, the union of
// accepted notifications is preserved.
TEST(Strategy, AcceptanceUnionPreserved) {
  std::vector<ForwardInput> inputs = {
      input(lt("x", 5), 1),
      input(lt("x", 9), 2),
      input(Filter().where("x", Constraint::gt(100)), 3),
      input(Filter().where("sym", Constraint::eq("A")), 4),
      input(Filter().where("sym", Constraint::eq("B")), 5),
      input(Filter().where("sym", Constraint::prefix("A")), 6),
  };
  std::vector<filter::Notification> probes;
  for (int x : {-3, 0, 4, 6, 8, 50, 101}) {
    probes.push_back(filter::Notification().set("x", x));
  }
  for (const char* s : {"A", "AB", "B", "C"}) {
    probes.push_back(filter::Notification().set("sym", s));
  }

  auto accepted_by = [&](const ForwardSet& fs, const filter::Notification& n) {
    for (const auto& [f, tags] : fs) {
      if (f.matches(n)) return true;
    }
    return false;
  };
  auto accepted_by_inputs = [&](const filter::Notification& n) {
    for (const auto& in : inputs) {
      if (in.f.matches(n)) return true;
    }
    return false;
  };

  for (auto s : {Strategy::simple, Strategy::identity, Strategy::covering,
                 Strategy::merging}) {
    auto fs = compute_forward_set(s, inputs);
    for (const auto& n : probes) {
      EXPECT_EQ(accepted_by(fs, n), accepted_by_inputs(n))
          << strategy_name(s) << " changed acceptance of " << n.to_string();
    }
  }
}

// ---------------------------------------------------------------------------
// diff engine
// ---------------------------------------------------------------------------

TEST(StrategyDiff, EmptyToTargetSubscribesAll) {
  ForwardSet target;
  target[lt("x", 5)] = {SubKey{ClientId(1), 1}};
  target[lt("y", 5)] = {SubKey{ClientId(2), 1}};
  auto d = diff_forward_sets({}, target);
  EXPECT_TRUE(d.unsubscribe.empty());
  EXPECT_EQ(d.subscribe.size(), 2u);
}

TEST(StrategyDiff, TargetToEmptyUnsubscribesAll) {
  ForwardSet sent;
  sent[lt("x", 5)] = {SubKey{ClientId(1), 1}};
  auto d = diff_forward_sets(sent, {});
  EXPECT_EQ(d.unsubscribe.size(), 1u);
  EXPECT_TRUE(d.subscribe.empty());
}

TEST(StrategyDiff, UnchangedIsSilent) {
  ForwardSet s;
  s[lt("x", 5)] = {SubKey{ClientId(1), 1}};
  auto d = diff_forward_sets(s, s);
  EXPECT_TRUE(d.unsubscribe.empty());
  EXPECT_TRUE(d.subscribe.empty());
}

TEST(StrategyDiff, TagChangeIsAnUpsert) {
  ForwardSet sent, target;
  sent[lt("x", 5)] = {SubKey{ClientId(1), 1}};
  target[lt("x", 5)] = {SubKey{ClientId(1), 1}, SubKey{ClientId(2), 1}};
  auto d = diff_forward_sets(sent, target);
  EXPECT_TRUE(d.unsubscribe.empty());
  ASSERT_EQ(d.subscribe.size(), 1u);
  EXPECT_EQ(d.subscribe.begin()->second.size(), 2u);
}

TEST(StrategyDiff, ReplacementIsUnsubPlusSub) {
  ForwardSet sent, target;
  sent[lt("x", 5)] = {SubKey{ClientId(1), 1}};
  target[lt("x", 9)] = {SubKey{ClientId(1), 1}};
  auto d = diff_forward_sets(sent, target);
  EXPECT_EQ(d.unsubscribe.size(), 1u);
  EXPECT_EQ(d.subscribe.size(), 1u);
}

}  // namespace
}  // namespace rebeca::routing
