// Declarative QoS expectations (ROADMAP "scenario-level assertions"):
// expect_exactly_once / expect_fifo are declared on the builder, checked
// by Scenario::report(), and surface as report violations instead of
// hand-rolled bench assertions.
#include <gtest/gtest.h>

#include "src/scenario/scenario.hpp"
#include "src/util/assert.hpp"

namespace rebeca {
namespace {

using scenario::ScenarioBuilder;

/// Fig. 2's shape: producer at one chain end, consumer roaming from the
/// other; `mode` decides whether the relocation protocol or the naive
/// baseline handles the move.
void declare_roaming(ScenarioBuilder& b, client::RelocationMode mode) {
  b.topology(scenario::TopologySpec::chain(4));
  b.client("consumer")
      .with_id(1)
      .at_broker(3)
      .relocation(mode)
      .dedup(false)
      .subscribes(filter::Filter().where("sym", filter::Constraint::eq("X")));
  b.client("producer")
      .with_id(2)
      .at_broker(0)
      .publishes(scenario::PublishSpec()
                     .every(sim::millis(10))
                     .body(filter::Notification().set("sym", "X"))
                     .from_phase("traffic")
                     .until_phase_end("traffic"));
  b.phase("settle", sim::seconds(1));
  b.phase("traffic", sim::seconds(2));
  b.phase("gap", sim::millis(400),
          [](scenario::Scenario& s) { s.detach("consumer"); });
  b.phase("after", sim::seconds(1),
          [](scenario::Scenario& s) { s.connect("consumer", 1); });
  b.phase("drain", sim::seconds(2));
}

TEST(ScenarioExpect, ProtocolRunMeetsExactlyOnceAndFifo) {
  ScenarioBuilder b;
  declare_roaming(b, client::RelocationMode::rebeca);
  b.expect_exactly_once("consumer").expect_fifo("consumer");
  auto s = b.build();
  s->run();
  const scenario::ScenarioReport r = s->report();
  EXPECT_TRUE(r.expectations_ok()) << r.to_string();
  EXPECT_TRUE(r.violations.empty());
  EXPECT_TRUE(r.client("consumer").fifo_checked);
  EXPECT_EQ(r.client("consumer").fifo_violations, 0u);
  // The fifo column only appears for clients with the expectation.
  EXPECT_NE(r.to_string().find("fifo_violations 0"), std::string::npos);
}

TEST(ScenarioExpect, NaiveRelocationViolatesExactlyOnce) {
  ScenarioBuilder b;
  declare_roaming(b, client::RelocationMode::naive);
  b.expect_exactly_once("consumer");
  auto s = b.build();
  s->run();
  const scenario::ScenarioReport r = s->report();
  // The naive baseline loses the gap plus the subscription blackout.
  ASSERT_GT(r.missing, 0u);
  EXPECT_FALSE(r.expectations_ok());
  ASSERT_EQ(r.violations.size(), 1u);
  EXPECT_NE(r.violations[0].find("expect_exactly_once(consumer)"),
            std::string::npos);
  EXPECT_NE(r.to_string().find("expectation FAILED"), std::string::npos);
}

TEST(ScenarioExpect, ExpectationsAreValidatedAtBuild) {
  {
    ScenarioBuilder b;
    declare_roaming(b, client::RelocationMode::rebeca);
    b.expect_exactly_once("nobody");
    EXPECT_THROW((void)b.build(), util::AssertionError);
  }
  {
    // exactly-once needs completeness tracking: static filters only.
    ScenarioBuilder b;
    declare_roaming(b, client::RelocationMode::rebeca);
    b.expect_exactly_once("producer");  // no subscriptions -> not tracked
    EXPECT_THROW((void)b.build(), util::AssertionError);
  }
}

TEST(ScenarioExpect, ExpectationsRideAlongUnderSharding) {
  ScenarioBuilder b;
  declare_roaming(b, client::RelocationMode::rebeca);
  b.expect_exactly_once("consumer").expect_fifo("consumer").shards(2);
  auto s = b.build();
  s->run();
  const scenario::ScenarioReport r = s->report();
  EXPECT_TRUE(r.expectations_ok()) << r.to_string();
  EXPECT_GT(r.delivered, 0u);
}

}  // namespace
}  // namespace rebeca
