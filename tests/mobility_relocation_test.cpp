// Physical mobility: the relocation protocol of paper Sec. 4 (Fig. 5).
//
// The QoS obligations under test (paper Sec. 3.2): Completeness (every
// matching notification is delivered eventually, exactly once),
// Ordering (sender FIFO across the relocation), Interface (clients only
// use the ordinary primitives), and garbage collection of the old path.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "tests/scenario_world.hpp"

namespace rebeca {
namespace {

using broker::OverlayConfig;
using client::Client;
using client::ClientConfig;
using filter::Constraint;
using filter::Filter;
using filter::Notification;
using filter::Value;
using scenario::TopologySpec;
using testutil::World;

Filter ticks(const std::string& sym) {
  return Filter().where("sym", Constraint::eq(sym));
}

Notification tick(const std::string& sym, int px) {
  return Notification().set("sym", sym).set("px", px);
}

/// Checks exactly-once, gap-free, in-order delivery of producer
/// sequences 1..expected_count for one producer.
void expect_complete_fifo(const Client& c, std::uint64_t expected_count) {
  ASSERT_EQ(c.deliveries().size(), expected_count);
  std::uint64_t prev = 0;
  for (const auto& d : c.deliveries()) {
    EXPECT_EQ(d.notification.producer_seq(), prev + 1)
        << "gap or reorder at producer seq " << d.notification.producer_seq();
    prev = d.notification.producer_seq();
  }
  EXPECT_EQ(c.duplicate_count(), 0u);
}

// Publishes `count` ticks at `period`, starting now.
void publish_stream(World& w, Client& producer, int count, double period_ms,
                    const std::string& sym = "AAA") {
  for (int i = 0; i < count; ++i) {
    w.sim.schedule_after(sim::millis(period_ms * i), [&producer, sym, i] {
      producer.publish(tick(sym, 100 + i));
    });
  }
}

// ---------------------------------------------------------------------------
// The Fig. 5 scenario
// ---------------------------------------------------------------------------

TEST(Relocation, Fig5SingleProducer) {
  // Chain B0..B5; consumer starts at B5 (old border), producer at B2.
  // The junction for the move B5 → B0 is B2's subtree meeting point.
  World w(TopologySpec::chain(6));
  Client& consumer = w.add_client(1, 5);
  Client& producer = w.add_client(2, 2);
  consumer.subscribe(ticks("AAA"));
  w.settle();

  publish_stream(w, producer, 100, 10.0);  // one tick per 10ms for 1s
  w.settle(0.3);                           // ~30 ticks delivered at B5

  consumer.detach_silently();
  w.settle(0.2);  // ~20 ticks buffered by the virtual counterpart
  w.overlay.connect_client(consumer, 0);
  w.settle();

  expect_complete_fifo(consumer, 100);
  // Old border garbage-collected its virtual counterpart. (Under
  // subscription flooding every broker legitimately keeps the filter in
  // its table; the path-cleanup assertion lives in the advertisement-
  // pruned variant below.)
  EXPECT_EQ(w.overlay.broker(5).virtual_count(), 0u);
}

TEST(Relocation, Fig5OldPathCleanupWithAdvertisements) {
  OverlayConfig cfg;
  cfg.broker.use_advertisements = true;
  World w(TopologySpec::chain(6), cfg);
  Client& consumer = w.add_client(1, 5);
  Client& producer = w.add_client(2, 2);
  producer.advertise(Filter().where("sym", Constraint::any()));
  consumer.subscribe(ticks("AAA"));
  w.settle();

  publish_stream(w, producer, 100, 10.0);
  w.settle(0.3);
  consumer.detach_silently();
  w.settle(0.2);
  w.overlay.connect_client(consumer, 0);
  w.settle();

  expect_complete_fifo(consumer, 100);
  EXPECT_EQ(w.overlay.broker(5).virtual_count(), 0u);
  // With subscriptions pruned toward the single advertiser at broker 2,
  // the stretch beyond the junction toward the old border must be bare:
  // brokers 3..5 kept no entry for the departed consumer (paper Sec. 4:
  // "any routing path to the old location related to the client will be
  // deleted").
  EXPECT_EQ(w.overlay.broker(4).routing_entry_count(), 0u);
  EXPECT_EQ(w.overlay.broker(5).routing_entry_count(), 0u);
}

TEST(Relocation, Fig5MultipleProducers) {
  // balanced_tree(2,2): root 0; inner 1,2; leaves 3,4 (under 1) and 5,6
  // (under 2). Consumer at leaf 3 moves to sibling leaf 4; producers sit
  // on the other branch at leaves 5 and 6 — the junction is broker 1.
  World wb(TopologySpec::balanced_tree(2, 2));
  Client& consumer = wb.add_client(1, 3);  // leaf under node 1
  Client& p1 = wb.add_client(2, 5);        // leaf under node 2
  Client& p2 = wb.add_client(3, 6);        // other leaf under node 2
  consumer.subscribe(ticks("AAA"));
  wb.settle();

  publish_stream(wb, p1, 60, 10.0, "AAA");
  publish_stream(wb, p2, 60, 10.0, "AAA");
  wb.settle(0.25);

  consumer.detach_silently();
  wb.settle(0.2);
  wb.overlay.connect_client(consumer, 4);  // sibling leaf under node 1
  wb.settle();

  // 120 ticks total; per-producer FIFO must hold.
  ASSERT_EQ(consumer.deliveries().size(), 120u);
  EXPECT_EQ(consumer.duplicate_count(), 0u);
  std::map<ClientId, std::uint64_t> prev;
  for (const auto& d : consumer.deliveries()) {
    auto& last = prev[d.notification.producer()];
    EXPECT_EQ(d.notification.producer_seq(), last + 1)
        << "per-producer FIFO violated";
    last = d.notification.producer_seq();
  }
  EXPECT_EQ(wb.overlay.broker(3).virtual_count(), 0u);
}

TEST(Relocation, NoPublicationsDuringMove) {
  World w(TopologySpec::chain(4));
  Client& consumer = w.add_client(1, 3);
  Client& producer = w.add_client(2, 0);
  consumer.subscribe(ticks("AAA"));
  w.settle();

  producer.publish(tick("AAA", 1));
  w.settle();
  consumer.detach_silently();
  w.settle();
  w.overlay.connect_client(consumer, 1);
  w.settle();
  producer.publish(tick("AAA", 2));
  w.settle();

  expect_complete_fifo(consumer, 2);
}

TEST(Relocation, InFlightDeliveriesAtCutAreReplayed) {
  // Deliveries already on the client link when it goes down are lost;
  // the session history at the border broker must cover them.
  World w(TopologySpec::chain(3));
  Client& consumer = w.add_client(1, 2);
  Client& producer = w.add_client(2, 0);
  consumer.subscribe(ticks("AAA"));
  w.settle();

  // Publish then cut the link while deliveries are in flight.
  for (int i = 0; i < 10; ++i) producer.publish(tick("AAA", i));
  w.sim.run_until(w.sim.now() + sim::millis(11));  // part-way: some arrived
  consumer.detach_silently();
  w.settle(0.1);
  const auto received_before = consumer.deliveries().size();
  EXPECT_LT(received_before, 10u);

  w.overlay.connect_client(consumer, 0);
  w.settle();
  expect_complete_fifo(consumer, 10);
}

TEST(Relocation, ReconnectToSameBroker) {
  World w(TopologySpec::chain(3));
  Client& consumer = w.add_client(1, 2);
  Client& producer = w.add_client(2, 0);
  consumer.subscribe(ticks("AAA"));
  w.settle();

  publish_stream(w, producer, 50, 10.0);
  w.settle(0.2);
  consumer.detach_silently();
  w.settle(0.15);
  w.overlay.connect_client(consumer, 2);  // same border broker
  w.settle();

  expect_complete_fifo(consumer, 50);
  EXPECT_EQ(w.overlay.broker(2).virtual_count(), 0u);
}

TEST(Relocation, ConsumerKeepsWorkingAfterRelocation) {
  World w(TopologySpec::chain(4));
  Client& consumer = w.add_client(1, 3);
  Client& producer = w.add_client(2, 0);
  consumer.subscribe(ticks("AAA"));
  w.settle();

  publish_stream(w, producer, 30, 5.0);
  w.settle(0.1);
  consumer.detach_silently();
  w.settle(0.05);
  w.overlay.connect_client(consumer, 1);
  w.settle();

  // New publications after the dust settled still arrive normally.
  publish_stream(w, producer, 30, 5.0);
  w.settle();
  expect_complete_fifo(consumer, 60);
}

TEST(Relocation, SequenceNumbersContinueAcrossMove) {
  World w(TopologySpec::chain(3));
  Client& consumer = w.add_client(1, 2);
  Client& producer = w.add_client(2, 0);
  auto sub = consumer.subscribe(ticks("AAA"));
  w.settle();

  for (int i = 0; i < 5; ++i) producer.publish(tick("AAA", i));
  w.settle();
  EXPECT_EQ(consumer.last_seq(sub), 5u);

  consumer.detach_silently();
  w.settle(0.05);
  for (int i = 5; i < 9; ++i) producer.publish(tick("AAA", i));
  w.settle(0.2);
  w.overlay.connect_client(consumer, 0);
  w.settle();

  // The border-broker annotation continues 6,7,8,9 over the replay.
  EXPECT_EQ(consumer.last_seq(sub), 9u);
  std::uint64_t prev = 0;
  for (const auto& d : consumer.deliveries()) {
    EXPECT_EQ(d.seq, prev + 1);
    prev = d.seq;
  }
}

TEST(Relocation, MultipleSubscriptionsRelocateIndependently) {
  World w(TopologySpec::chain(3));
  Client& consumer = w.add_client(1, 2);
  Client& producer = w.add_client(2, 0);
  consumer.subscribe(ticks("AAA"));
  consumer.subscribe(ticks("BBB"));
  w.settle();

  for (int i = 0; i < 4; ++i) {
    producer.publish(tick("AAA", i));
    producer.publish(tick("BBB", i));
  }
  w.settle();
  consumer.detach_silently();
  w.settle(0.05);
  for (int i = 4; i < 8; ++i) {
    producer.publish(tick("AAA", i));
    producer.publish(tick("BBB", i));
  }
  w.settle(0.2);
  w.overlay.connect_client(consumer, 1);
  w.settle();

  ASSERT_EQ(consumer.deliveries().size(), 16u);
  EXPECT_EQ(consumer.duplicate_count(), 0u);
}

// ---------------------------------------------------------------------------
// Strategy / advertisement sweeps
// ---------------------------------------------------------------------------

struct SweepParam {
  routing::Strategy strategy;
  bool advertisements;
};

class RelocationSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(RelocationSweep, ExactlyOnceFifoOnTree) {
  OverlayConfig cfg;
  cfg.broker.strategy = GetParam().strategy;
  cfg.broker.use_advertisements = GetParam().advertisements;
  World w(TopologySpec::balanced_tree(2, 2), cfg);
  Client& consumer = w.add_client(1, 3);
  Client& other = w.add_client(3, 5);  // a second subscriber (covering fodder)
  Client& producer = w.add_client(2, 6);
  if (GetParam().advertisements) {
    producer.advertise(Filter().where("sym", Constraint::any()));
  }
  other.subscribe(Filter());  // covers everything
  consumer.subscribe(ticks("AAA"));
  w.settle();

  publish_stream(w, producer, 80, 8.0);
  w.settle(0.3);
  consumer.detach_silently();
  w.settle(0.15);
  w.overlay.connect_client(consumer, 4);
  w.settle();

  expect_complete_fifo(consumer, 80);
  // The bystander subscriber is unaffected (gets everything, once).
  EXPECT_EQ(other.deliveries().size(), 80u);
  EXPECT_EQ(other.duplicate_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    StrategiesAndAdvertisements, RelocationSweep,
    ::testing::Values(SweepParam{routing::Strategy::simple, false},
                      SweepParam{routing::Strategy::identity, false},
                      SweepParam{routing::Strategy::covering, false},
                      SweepParam{routing::Strategy::merging, false},
                      SweepParam{routing::Strategy::simple, true},
                      SweepParam{routing::Strategy::covering, true}),
    [](const auto& info) {
      std::string name = routing::strategy_name(info.param.strategy);
      if (info.param.advertisements) name += "_adv";
      return name;
    });

// ---------------------------------------------------------------------------
// Edge cases
// ---------------------------------------------------------------------------

TEST(Relocation, RapidDoubleMoveChainsEpochs) {
  // The client relocates again before the first replay arrives: the
  // abandoned relocating session becomes a virtual counterpart that
  // waits for the epoch-1 replay, merges, and forwards to epoch 2.
  World w(TopologySpec::chain(6));
  Client& consumer = w.add_client(1, 5);
  Client& producer = w.add_client(2, 0);
  consumer.subscribe(ticks("AAA"));
  w.settle();

  publish_stream(w, producer, 200, 5.0);
  w.settle(0.3);
  consumer.detach_silently();
  w.settle(0.05);
  w.overlay.connect_client(consumer, 3);
  // Move again almost immediately — before the replay from broker 5 can
  // have arrived at broker 3.
  w.sim.run_until(w.sim.now() + sim::millis(3));
  consumer.detach_silently();
  w.sim.run_until(w.sim.now() + sim::millis(5));
  w.overlay.connect_client(consumer, 1);
  w.settle(3.0);

  expect_complete_fifo(consumer, 200);
  for (std::size_t b = 0; b < w.overlay.broker_count(); ++b) {
    EXPECT_EQ(w.overlay.broker(b).virtual_count(), 0u)
        << "virtual leaked at broker " << b;
  }
}

TEST(Relocation, TripleHopTour) {
  // A tour across four borders with publications throughout.
  World w(TopologySpec::chain(5), OverlayConfig{}, 11);
  Client& consumer = w.add_client(1, 4);
  Client& producer = w.add_client(2, 2);
  consumer.subscribe(ticks("AAA"));
  w.settle();

  publish_stream(w, producer, 400, 5.0);  // 2s of traffic
  const std::size_t stops[] = {0, 3, 1};
  double at = 0.3;
  for (std::size_t stop : stops) {
    w.settle(at);
    consumer.detach_silently();
    w.settle(0.1);
    w.overlay.connect_client(consumer, stop);
    at = 0.4;
  }
  w.settle(2.0);
  expect_complete_fifo(consumer, 400);
}

TEST(Relocation, BoundedBufferReportsTruncation) {
  OverlayConfig cfg;
  cfg.broker.session_history = 4;
  cfg.broker.virtual_capacity = 4;
  World w(TopologySpec::chain(3), cfg);
  Client& consumer = w.add_client(1, 2);
  Client& producer = w.add_client(2, 0);
  consumer.subscribe(ticks("AAA"));
  w.settle();

  consumer.detach_silently();
  w.settle(0.05);
  for (int i = 0; i < 20; ++i) producer.publish(tick("AAA", i));
  w.settle(0.5);
  w.overlay.connect_client(consumer, 0);
  w.settle();

  // Only the newest 4 notifications survived the bounded buffer; they
  // arrive in order, without duplicates — completeness is explicitly
  // bounded by buffer capacity (paper Sec. 4.1).
  ASSERT_EQ(consumer.deliveries().size(), 4u);
  EXPECT_EQ(consumer.deliveries().front().notification.producer_seq(), 17u);
  EXPECT_EQ(consumer.deliveries().back().notification.producer_seq(), 20u);
}

TEST(Relocation, GracefulByeLeavesNoState) {
  World w(TopologySpec::chain(3));
  Client& consumer = w.add_client(1, 2);
  Client& producer = w.add_client(2, 0);
  consumer.subscribe(ticks("AAA"));
  w.settle();
  producer.publish(tick("AAA", 1));
  w.settle();

  consumer.detach_gracefully();
  w.settle();
  for (std::size_t b = 0; b < 3; ++b) {
    EXPECT_EQ(w.overlay.broker(b).virtual_count(), 0u);
    EXPECT_EQ(w.overlay.broker(b).routing_entry_count(), 0u);
  }
}

TEST(Relocation, VirtualTtlGarbageCollectsUnfetched) {
  OverlayConfig cfg;
  cfg.broker.virtual_ttl = sim::seconds(2);
  World w(TopologySpec::chain(3), cfg);
  Client& consumer = w.add_client(1, 2);
  consumer.subscribe(ticks("AAA"));
  w.settle();

  consumer.detach_silently();
  w.settle(1.0);
  EXPECT_EQ(w.overlay.broker(2).virtual_count(), 1u);
  w.settle(2.0);
  EXPECT_EQ(w.overlay.broker(2).virtual_count(), 0u);
  EXPECT_EQ(w.overlay.broker(0).routing_entry_count(), 0u);
}

TEST(Relocation, TimeoutFlushesWhenOldStateVanished) {
  // The old border's state expired before the client reconnected: the
  // relocation cannot replay; after the timeout the session goes active
  // and delivers what arrived live.
  OverlayConfig cfg;
  cfg.broker.virtual_ttl = sim::seconds(1);
  cfg.broker.relocation_timeout = sim::seconds(2);
  World w(TopologySpec::chain(3), cfg);
  Client& consumer = w.add_client(1, 2);
  Client& producer = w.add_client(2, 0);
  consumer.subscribe(ticks("AAA"));
  w.settle();

  consumer.detach_silently();
  w.settle(5.0);  // TTL expired, virtual gone
  w.overlay.connect_client(consumer, 0);
  w.settle(0.5);
  producer.publish(tick("AAA", 7));  // arrives while still "relocating"
  w.settle(5.0);                     // timeout fires, flushes

  ASSERT_EQ(consumer.deliveries().size(), 1u);
  EXPECT_EQ(consumer.deliveries()[0].notification.get("px")->as_int(), 7);
}

// ---------------------------------------------------------------------------
// Naive baseline (paper Sec. 3.2 / Fig. 2 phenomenology)
// ---------------------------------------------------------------------------

TEST(NaiveBaseline, LosesDisconnectionGapAndBlackout) {
  ClientConfig naive;
  naive.relocation = client::RelocationMode::naive;
  World w(TopologySpec::chain(4));
  Client& producer = w.add_client(2, 0);
  ClientConfig cc = naive;
  Client& consumer = w.add_client(1, 3, cc);
  consumer.subscribe(ticks("AAA"));
  w.settle();

  publish_stream(w, producer, 100, 10.0);
  w.settle(0.3);
  consumer.detach_silently();
  w.settle(0.2);
  w.overlay.connect_client(consumer, 1);
  w.settle();

  // The naive client missed the gap (~20 ticks) plus the re-subscribe
  // blackout; the Rebeca protocol would have delivered all 100.
  EXPECT_LT(consumer.deliveries().size(), 90u);
  EXPECT_GT(consumer.deliveries().size(), 20u);
  EXPECT_EQ(consumer.duplicate_count(), 0u);
}

TEST(NaiveBaseline, OverlapAttachDeliversDuplicates) {
  // Make-before-break: attached to two borders at once, without client
  // dedup — the duplicate-delivery half of Fig. 2.
  ClientConfig naive;
  naive.relocation = client::RelocationMode::naive;
  naive.dedup = false;
  World w(TopologySpec::chain(3));
  Client& producer = w.add_client(2, 1);
  Client& consumer = w.add_client(1, 0, naive);
  consumer.subscribe(ticks("AAA"));
  w.settle();

  // Second attachment at broker 2 while still attached at broker 0.
  w.overlay.connect_client(consumer, 2);
  w.settle();

  producer.publish(tick("AAA", 1));
  w.settle();
  EXPECT_EQ(consumer.deliveries().size(), 2u);  // one per attachment
}

}  // namespace
}  // namespace rebeca
