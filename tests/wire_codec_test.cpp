// Wire codec: round-trips for every MessageClass, hostile-input
// rejection, and the central invariant — the bytes never depend on
// AttrId mint order. AttrIds are process-local (minted in first-use
// order), so the mint-order test runs the only honest way: this test
// re-executes itself as two child processes whose global AttrTables
// intern the same dictionary in opposite orders, and their encodings of
// the same message suite must match byte for byte.
#include "src/transport/wire.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "src/net/message.hpp"
#include "src/util/rng.hpp"

namespace rebeca {
namespace {

using filter::Constraint;
using filter::Filter;
using filter::Notification;
using filter::Value;

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

/// Round-trip: decoding and re-encoding must reproduce the bytes
/// (within one process the name order is stable, so byte equality is a
/// complete structural-equality check).
std::string roundtrip(const net::Message& m) {
  const std::string bytes = transport::encode_message(m);
  const net::Message decoded = transport::decode_message(bytes);
  const std::string again = transport::encode_message(decoded);
  EXPECT_EQ(bytes, again) << "re-encode mismatch for "
                          << net::message_name(m);
  return bytes;
}

Filter rich_filter() {
  return Filter()
      .where("service", Constraint::eq(Value(std::string("printer"))))
      .where("cost", Constraint::range(Value(std::int64_t(5)),
                                       Value(std::int64_t(90))))
      .where("building", Constraint::prefix("main-"))
      .where("floor", Constraint::in_set({Value(std::int64_t(1)),
                                          Value(std::int64_t(2)),
                                          Value(std::int64_t(4))}))
      .where("load", Constraint::lt(Value(0.75)))
      .where("public", Constraint::ne(Value(false)))
      .where("anything", Constraint::any());
}

Notification rich_notification() {
  Notification n;
  n.set("service", std::string("printer"));
  n.set("cost", std::int64_t(42));
  n.set("building", std::string("main-3"));
  n.set("floor", std::int64_t(2));
  n.set("load", 0.25);
  n.set("public", true);
  n.stamp(NotificationId(77), ClientId(3), 9, sim::millis(1250));
  return n;
}

location::LdSpec rich_ld_spec() {
  location::LdSpec spec;
  spec.base = Filter().where("topic", Constraint::eq(Value(std::string("parking"))));
  spec.location_attr = "zone";
  spec.vicinity_radius = 2;
  spec.profile = location::UncertaintyProfile::adaptive(
      sim::millis(100),
      {sim::millis(120), sim::millis(50), sim::millis(50), sim::millis(20)});
  return spec;
}

// ---------------------------------------------------------------------------
// Per-class round trips
// ---------------------------------------------------------------------------

TEST(WireCodec, DataPlane) {
  roundtrip(net::PublishMsg{rich_notification()});
  roundtrip(net::DeliverMsg{SubKey{ClientId(3), 1},
                            net::StampedNotification{rich_notification(), 12}});
}

TEST(WireCodec, AdminPlane) {
  roundtrip(net::SubscribeMsg{
      rich_filter(), {SubKey{ClientId(1), 1}, SubKey{ClientId(2), 5}}});
  roundtrip(net::UnsubscribeMsg{rich_filter()});
  roundtrip(net::AdvertiseMsg{AdvId(8), rich_filter()});
  roundtrip(net::UnadvertiseMsg{AdvId(8)});
}

TEST(WireCodec, RelocationPlane) {
  const SubKey key{ClientId(7), 2};
  roundtrip(net::RelocateSubMsg{key, rich_filter(), 3, 120});
  roundtrip(net::FetchMsg{key, rich_filter(), 3, 120});
  roundtrip(net::ReExposeMsg{key, rich_filter(), 3});
  roundtrip(net::ReExposeAckMsg{key, 3});
  roundtrip(net::ReplayMsg{
      key, 3,
      {net::StampedNotification{rich_notification(), 121},
       net::StampedNotification{rich_notification(), 122}},
      /*truncated=*/1, /*next_seq=*/123});
}

TEST(WireCodec, LocationPlane) {
  const SubKey key{ClientId(7), 2};
  roundtrip(net::LdSubscribeMsg{key, rich_ld_spec(), LocationId(4), 2});
  roundtrip(net::LdUnsubscribeMsg{key});
  roundtrip(net::LdMoveMsg{key, LocationId(9), 1, 17, 3});
  // Invalid (sentinel) locations cross the wire too: a disconnected
  // LD consumer's hello carries one.
  roundtrip(net::LdMoveMsg{key, LocationId(), 1, 18, 0});
}

TEST(WireCodec, ClientPlane) {
  net::ClientHelloMsg hello;
  hello.client = ClientId(5);
  hello.resubs.push_back(net::ClientHelloMsg::Resub{
      SubKey{ClientId(5), 1}, rich_filter(), 2, 314, LocationId()});
  hello.resubs.push_back(net::ClientHelloMsg::Resub{
      SubKey{ClientId(5), 2}, rich_ld_spec(), 1, 0, LocationId(3)});
  roundtrip(net::Message{hello});
  roundtrip(net::ClientByeMsg{ClientId(5)});
  roundtrip(net::ClientSubscribeMsg{SubKey{ClientId(5), 3}, rich_filter(),
                                    LocationId()});
  roundtrip(net::ClientSubscribeMsg{SubKey{ClientId(5), 4}, rich_ld_spec(),
                                    LocationId(2)});
  roundtrip(net::ClientUnsubscribeMsg{SubKey{ClientId(5), 3}});
  roundtrip(net::ClientPublishMsg{rich_notification()});
  roundtrip(net::ClientAdvertiseMsg{AdvId(1), rich_filter()});
  roundtrip(net::ClientUnadvertiseMsg{AdvId(1)});
  roundtrip(net::ClientMoveMsg{ClientId(5), LocationId(6)});
}

TEST(WireCodec, ProfileKinds) {
  location::LdSpec spec = rich_ld_spec();
  spec.profile = location::UncertaintyProfile::global_resub();
  roundtrip(net::LdSubscribeMsg{SubKey{ClientId(1), 1}, spec, LocationId(0), 1});
  spec.profile = location::UncertaintyProfile::flooding();
  roundtrip(net::LdSubscribeMsg{SubKey{ClientId(1), 1}, spec, LocationId(0), 1});
  spec.profile = location::UncertaintyProfile::explicit_steps({0, 1, 1, 2, 2});
  roundtrip(net::LdSubscribeMsg{SubKey{ClientId(1), 1}, spec, LocationId(0), 1});
}

// ---------------------------------------------------------------------------
// Decoded structure (spot checks beyond byte equality)
// ---------------------------------------------------------------------------

TEST(WireCodec, DecodedNotificationMatchesOriginalFilters) {
  const Notification n = rich_notification();
  const auto decoded = std::get<net::PublishMsg>(
      transport::decode_message(transport::encode_message(net::PublishMsg{n})));
  // matches() must agree before and after the trip (rich_filter does
  // not match outright: it constrains "anything", which n omits).
  EXPECT_EQ(rich_filter().matches(decoded.n), rich_filter().matches(n));
  Filter sub = Filter()
      .where("service", Constraint::eq(Value(std::string("printer"))))
      .where("cost", Constraint::range(Value(std::int64_t(5)),
                                       Value(std::int64_t(90))));
  EXPECT_TRUE(sub.matches(decoded.n));
  EXPECT_EQ(decoded.n.id(), n.id());
  EXPECT_EQ(decoded.n.producer(), n.producer());
  EXPECT_EQ(decoded.n.producer_seq(), n.producer_seq());
  EXPECT_EQ(decoded.n.publish_time(), n.publish_time());
}

TEST(WireCodec, DecodedSubscribeKeepsTags) {
  const auto decoded = std::get<net::SubscribeMsg>(transport::decode_message(
      transport::encode_message(net::SubscribeMsg{
          rich_filter(), {SubKey{ClientId(1), 1}, SubKey{ClientId(2), 5}}})));
  EXPECT_EQ(decoded.tags.size(), 2u);
  EXPECT_TRUE(decoded.f.covers(rich_filter()));
  EXPECT_TRUE(rich_filter().covers(decoded.f));
}

// ---------------------------------------------------------------------------
// Hostile input
// ---------------------------------------------------------------------------

TEST(WireCodec, RejectsTruncation) {
  const std::string bytes =
      transport::encode_message(net::PublishMsg{rich_notification()});
  // Every proper prefix must throw, never crash or mis-decode.
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW(transport::decode_message(std::string_view(bytes.data(), len)),
                 transport::WireError)
        << "prefix length " << len;
  }
}

TEST(WireCodec, RejectsTrailingBytes) {
  std::string bytes = transport::encode_message(net::ClientByeMsg{ClientId(1)});
  bytes.push_back('\0');
  EXPECT_THROW(transport::decode_message(bytes), transport::WireError);
}

TEST(WireCodec, RejectsUnknownTag) {
  std::string bytes = transport::encode_message(net::ClientByeMsg{ClientId(1)});
  bytes[0] = '\x7F';
  EXPECT_THROW(transport::decode_message(bytes), transport::WireError);
}

// Semantically malformed input must be a WireError, never a tripped
// internal assertion (a remote peer can ship any bytes; an abort would
// be a remote denial of service). Found by the fuzz_wire harness.
TEST(WireCodec, RejectsInvertedRangeBounds) {
  transport::WireWriter w;
  w.u8(static_cast<std::uint8_t>(filter::Op::range));
  transport::encode_value(w, Value(std::int64_t(133)));
  transport::encode_value(w, Value(std::int64_t(90)));
  transport::WireReader r(w.bytes());
  EXPECT_THROW((void)transport::decode_constraint(r), transport::WireError);
}

TEST(WireCodec, RejectsIncomparableRangeBounds) {
  transport::WireWriter w;
  w.u8(static_cast<std::uint8_t>(filter::Op::range));
  transport::encode_value(w, Value(std::string("low")));
  transport::encode_value(w, Value(std::int64_t(90)));
  transport::WireReader r(w.bytes());
  EXPECT_THROW((void)transport::decode_constraint(r), transport::WireError);
}

TEST(WireCodec, RejectsNegativeProfileDelta) {
  // Encode a valid adaptive-profile subscription, then patch the
  // profile's delta to a negative value in the raw bytes. The delta is
  // chosen to have a byte pattern unique in the frame.
  location::LdSpec spec = rich_ld_spec();
  const sim::Duration delta = sim::millis(123);
  spec.profile = location::UncertaintyProfile::adaptive(
      delta, {sim::millis(10), sim::millis(20)});
  std::string bytes = transport::encode_message(
      net::LdSubscribeMsg{SubKey{ClientId(1), 1}, spec, LocationId(0), 1});

  std::string needle(8, '\0');
  std::uint64_t u = static_cast<std::uint64_t>(delta);
  for (int i = 0; i < 8; ++i) {
    needle[i] = static_cast<char>((u >> (8 * i)) & 0xFF);
  }
  const std::size_t pos = bytes.find(needle);
  ASSERT_NE(pos, std::string::npos);
  EXPECT_EQ(bytes.find(needle, pos + 1), std::string::npos)
      << "delta byte pattern not unique; pick a different delta";

  const std::int64_t patched = -5;
  u = static_cast<std::uint64_t>(patched);
  for (int i = 0; i < 8; ++i) {
    bytes[pos + static_cast<std::size_t>(i)] =
        static_cast<char>((u >> (8 * i)) & 0xFF);
  }
  EXPECT_THROW(transport::decode_message(bytes), transport::WireError);
}

TEST(WireCodec, RejectsAbsurdCounts) {
  // A SubscribeMsg whose filter claims 2^32-1 terms in a 10-byte body
  // must be rejected by the count guard, not attempt the allocation.
  transport::WireWriter w;
  w.u8(3);  // Subscribe tag
  w.u32(0xFFFFFFFFu);
  EXPECT_THROW(transport::decode_message(w.bytes()), transport::WireError);
}

// ---------------------------------------------------------------------------
// Property test: random content round-trips
// ---------------------------------------------------------------------------

Value random_value(util::Rng& rng) {
  switch (rng.index(4)) {
    case 0: return Value(static_cast<std::int64_t>(rng.next() >> 16));
    case 1: return Value(rng.uniform01() * 1e6 - 5e5);
    case 2: return Value("s" + std::to_string(rng.index(1000)));
    default: return Value(rng.index(2) == 0);
  }
}

Constraint random_constraint(util::Rng& rng) {
  switch (rng.index(8)) {
    case 0: return Constraint::any();
    case 1: return Constraint::eq(random_value(rng));
    case 2: return Constraint::ne(random_value(rng));
    case 3: return Constraint::lt(random_value(rng));
    case 4: return Constraint::ge(random_value(rng));
    case 5: return Constraint::prefix("p" + std::to_string(rng.index(50)));
    case 6: {
      const auto lo = static_cast<std::int64_t>(rng.index(1000));
      return Constraint::range(Value(lo),
                               Value(lo + static_cast<std::int64_t>(
                                              rng.index(1000))));
    }
    default: {
      std::set<Value> values;
      const std::size_t count = 1 + rng.index(5);
      for (std::size_t i = 0; i < count; ++i) values.insert(random_value(rng));
      return Constraint::in_set(std::move(values));
    }
  }
}

TEST(WireCodec, RandomRoundTrips) {
  util::Rng rng(0xC0DEC);
  for (int iter = 0; iter < 300; ++iter) {
    Filter f;
    const std::size_t terms = rng.index(6);
    for (std::size_t t = 0; t < terms; ++t) {
      f.where("attr" + std::to_string(rng.index(12)), random_constraint(rng));
    }
    Notification n;
    const std::size_t attrs = 1 + rng.index(6);
    for (std::size_t a = 0; a < attrs; ++a) {
      n.set("attr" + std::to_string(rng.index(12)), random_value(rng));
    }
    n.stamp(NotificationId(rng.next()),
            ClientId(static_cast<std::uint32_t>(rng.index(100))),
            rng.next() >> 32,
            static_cast<sim::TimePoint>(rng.next() >> 20));
    roundtrip(net::SubscribeMsg{f, {SubKey{ClientId(1), 1}}});
    roundtrip(net::PublishMsg{n});
    roundtrip(net::RelocateSubMsg{SubKey{ClientId(2), 3}, f,
                                  rng.next() >> 40,
                                  rng.next() >> 40});
  }
}

// ---------------------------------------------------------------------------
// Mint-order independence (two independently-minted AttrTables)
// ---------------------------------------------------------------------------

/// The dictionary both child processes intern — in opposite orders, so
/// the same name gets a *different* AttrId in each process.
const char* const kDictionary[] = {"service", "cost", "building", "floor",
                                   "load",    "public", "topic",   "zone",
                                   "anything"};

/// Child mode: intern the dictionary in $WIRE_ORDER, encode the fixed
/// message suite, hex-dump to $WIRE_DUMP_OUT. Skipped in a normal run.
TEST(WireDump, EmitOnly) {
  const char* out_path = std::getenv("WIRE_DUMP_OUT");
  if (out_path == nullptr) GTEST_SKIP() << "child-process mode only";
  const char* order = std::getenv("WIRE_ORDER");
  const std::size_t n = std::size(kDictionary);
  for (std::size_t i = 0; i < n; ++i) {
    const char* name = (order != nullptr && std::string(order) == "reverse")
                           ? kDictionary[n - 1 - i]
                           : kDictionary[i];
    filter::AttrTable::global().intern(name);
  }
  std::ostringstream hex;
  const net::Message suite[] = {
      net::SubscribeMsg{rich_filter(), {SubKey{ClientId(1), 1}}},
      net::PublishMsg{rich_notification()},
      net::LdSubscribeMsg{SubKey{ClientId(7), 2}, rich_ld_spec(),
                          LocationId(4), 2},
      net::ReplayMsg{SubKey{ClientId(7), 2},
                     3,
                     {net::StampedNotification{rich_notification(), 121}},
                     0,
                     122},
  };
  for (const net::Message& m : suite) {
    for (const unsigned char c : transport::encode_message(m)) {
      hex << std::hex << (c >> 4) << (c & 0xF);
    }
    hex << "\n";
  }
  std::ofstream out(out_path, std::ios::trunc);
  out << hex.str();
}

TEST(WireCodec, BytesIndependentOfAttrIdMintOrder) {
  // Resolve the symlink here: inside system()'s shell, /proc/self/exe
  // would name the shell, not this binary.
  char self_buf[4096];
  const ssize_t self_len =
      ::readlink("/proc/self/exe", self_buf, sizeof(self_buf) - 1);
  ASSERT_GT(self_len, 0);
  const std::string self(self_buf, static_cast<std::size_t>(self_len));
  const std::string fwd = ::testing::TempDir() + "wire_fwd.hex";
  const std::string rev = ::testing::TempDir() + "wire_rev.hex";
  const std::string base = self + " --gtest_filter=WireDump.EmitOnly";
  ASSERT_EQ(std::system(("WIRE_DUMP_OUT=" + fwd + " WIRE_ORDER=forward " +
                         base + " >/dev/null 2>&1")
                            .c_str()),
            0);
  ASSERT_EQ(std::system(("WIRE_DUMP_OUT=" + rev + " WIRE_ORDER=reverse " +
                         base + " >/dev/null 2>&1")
                            .c_str()),
            0);
  const auto slurp = [](const std::string& path) {
    std::ifstream in(path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  };
  const std::string forward_bytes = slurp(fwd);
  const std::string reverse_bytes = slurp(rev);
  ASSERT_FALSE(forward_bytes.empty());
  // The whole point of name-keyed encoding: two processes whose
  // interners minted AttrIds in opposite orders produce identical wire
  // bytes for identical content.
  EXPECT_EQ(forward_bytes, reverse_bytes);
  std::remove(fwd.c_str());
  std::remove(rev.c_str());
}

}  // namespace
}  // namespace rebeca
