// ScenarioSweep: multi-seed execution and deterministic aggregation.
//
// The contract under test: the aggregate tables are byte-identical
// regardless of worker-thread count or scheduling, per-run reports come
// back in seed order, and the statistics match hand-computed values.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/scenario/sweep.hpp"

namespace rebeca {
namespace {

using scenario::MetricStats;
using scenario::ScenarioBuilder;
using scenario::ScenarioSweep;
using scenario::SweepConfig;
using scenario::SweepResult;
using scenario::TopologySpec;

// A stochastic scenario (poisson traffic, jittered link delays, roaming)
// so different seeds genuinely produce different reports.
void declare_roaming(ScenarioBuilder& b) {
  b.topology(TopologySpec::chain(4));
  b.broker_link_delay(sim::DelayModel::uniform(sim::millis(3), sim::millis(7)));
  b.client("consumer")
      .with_id(1)
      .at_broker(3)
      .subscribes(filter::Filter().where("sym", filter::Constraint::eq("X")))
      .roams(scenario::RoamSpec()
                 .route({1, 3})
                 .dwelling(sim::millis(400))
                 .dark_for(sim::millis(100))
                 .hops(2)
                 .from_phase("traffic"));
  b.client("producer")
      .with_id(2)
      .at_broker(0)
      .publishes(scenario::PublishSpec()
                     .poisson(sim::millis(10))
                     .body(filter::Notification().set("sym", "X"))
                     .from_phase("traffic")
                     .until_phase_end("traffic"));
  b.phase("settle", sim::millis(500));
  b.phase("traffic", sim::seconds(1));
  b.phase("drain", sim::seconds(2));
}

TEST(ScenarioSweep, AggregateIsThreadCountInvariant) {
  ScenarioSweep sweep(declare_roaming);
  SweepConfig serial;
  serial.base_seed = 3;
  serial.runs = 6;
  serial.threads = 1;
  SweepConfig parallel = serial;
  parallel.threads = 4;

  const SweepResult a = sweep.run(serial);
  const SweepResult b = sweep.run(parallel);

  EXPECT_EQ(a.table(), b.table());
  EXPECT_EQ(a.csv(), b.csv());
  EXPECT_EQ(a.csv_runs(), b.csv_runs());
  ASSERT_EQ(a.reports.size(), b.reports.size());
  for (std::size_t i = 0; i < a.reports.size(); ++i) {
    EXPECT_EQ(a.reports[i].to_string(), b.reports[i].to_string())
        << "per-run report " << i << " depends on thread count";
  }
}

TEST(ScenarioSweep, SeedsVaryTheRuns) {
  ScenarioSweep sweep(declare_roaming);
  SweepConfig cfg;
  cfg.base_seed = 3;
  cfg.runs = 4;
  cfg.threads = 2;
  const SweepResult r = sweep.run(cfg);
  ASSERT_EQ(r.reports.size(), 4u);
  // Reports come back in seed order...
  EXPECT_EQ(r.seeds(), (std::vector<std::uint64_t>{3, 4, 5, 6}));
  // ...and the stochastic workload makes seeds actually differ.
  bool any_differ = false;
  for (std::size_t i = 1; i < r.reports.size(); ++i) {
    if (r.reports[i].published != r.reports[0].published) any_differ = true;
  }
  EXPECT_TRUE(any_differ) << "poisson workloads should differ across seeds";
}

TEST(ScenarioSweep, ExplicitSeedListWinsOverBaseSeed) {
  SweepConfig cfg;
  cfg.base_seed = 100;
  cfg.runs = 7;
  cfg.seeds = {9, 2, 5};
  EXPECT_EQ(cfg.resolved_seeds(), (std::vector<std::uint64_t>{9, 2, 5}));
  cfg.seeds.clear();
  cfg.runs = 3;
  EXPECT_EQ(cfg.resolved_seeds(), (std::vector<std::uint64_t>{100, 101, 102}));
}

TEST(ScenarioSweep, ProbeMetricsAndStatsMath) {
  // Probe injects the run's seed as a metric: seeds {2, 4, 6} have mean
  // 4, sample stddev 2, ci95 = 1.96 * 2 / sqrt(3).
  ScenarioSweep sweep([](ScenarioBuilder& b) {
    b.topology(TopologySpec::chain(2));
    b.client("lonely").with_id(1).at_broker(0);
    b.phase("idle", sim::millis(1));
  });
  sweep.probe([](scenario::Scenario& s, std::map<std::string, double>& m) {
    m["seed_value"] = static_cast<double>(s.seed());
  });
  SweepConfig cfg;
  cfg.seeds = {2, 4, 6};
  cfg.threads = 2;
  const SweepResult r = sweep.run(cfg);

  const MetricStats s = r.stats("seed_value");
  EXPECT_EQ(s.n, 3u);
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_DOUBLE_EQ(s.stddev, 2.0);
  EXPECT_DOUBLE_EQ(s.ci95, 1.96 * 2.0 / std::sqrt(3.0));
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 6.0);

  // The custom metric rides along in both CSV renderings.
  EXPECT_NE(r.csv().find("seed_value,3,4,2,"), std::string::npos);
  EXPECT_NE(r.csv_runs().find("seed_value"), std::string::npos);
}

TEST(ScenarioSweep, AbsentMetricsAreExcludedNotZeroFilled) {
  // A probe that reports a metric only for some runs: the absent runs
  // must not enter the statistics as fake zeros.
  ScenarioSweep sweep([](ScenarioBuilder& b) {
    b.topology(TopologySpec::chain(2));
    b.client("lonely").with_id(1).at_broker(0);
    b.phase("idle", sim::millis(1));
  });
  sweep.probe([](scenario::Scenario& s, std::map<std::string, double>& m) {
    if (s.seed() % 2 == 0) m["even_only"] = static_cast<double>(s.seed());
  });
  SweepConfig cfg;
  cfg.seeds = {2, 3, 4};
  const SweepResult r = sweep.run(cfg);
  const MetricStats s = r.stats("even_only");
  EXPECT_EQ(s.n, 2u) << "absent runs must not count as samples";
  EXPECT_DOUBLE_EQ(s.mean, 3.0);  // (2 + 4) / 2, not (2 + 0 + 4) / 3
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
}

TEST(ScenarioSweep, EqualConfigsProduceIdenticalResults) {
  ScenarioSweep sweep(declare_roaming);
  SweepConfig cfg;
  cfg.base_seed = 11;
  cfg.runs = 3;
  cfg.threads = 3;
  EXPECT_EQ(sweep.run(cfg).table(), sweep.run(cfg).table());
}

TEST(ScenarioSweep, ShardedSweepIsShardCountInvariant) {
  // The sweep's shard knob rides the same determinism contract as the
  // engine: per-seed reports and every aggregate rendering are
  // byte-identical whether each scenario runs on 1 or 4 shards, and
  // whatever the thread budget split does.
  ScenarioSweep sweep(declare_roaming);
  SweepConfig one;
  one.base_seed = 5;
  one.runs = 4;
  one.threads = 4;
  one.shards = 1;
  SweepConfig four = one;
  four.shards = 4;
  four.threads = 8;

  const SweepResult a = sweep.run(one);
  const SweepResult b = sweep.run(four);
  EXPECT_EQ(a.table(), b.table());
  EXPECT_EQ(a.csv(), b.csv());
  EXPECT_EQ(a.csv_runs(), b.csv_runs());
  ASSERT_EQ(a.reports.size(), b.reports.size());
  for (std::size_t i = 0; i < a.reports.size(); ++i) {
    EXPECT_EQ(a.reports[i].to_string(), b.reports[i].to_string())
        << "per-run report " << i << " depends on shard count";
  }
}

TEST(ScenarioSweep, ThreadBudgetSplitsAcrossRunsAndShards) {
  SweepConfig cfg;
  cfg.threads = 8;
  cfg.shards = 4;
  EXPECT_EQ(cfg.resolved_run_workers(), 2u);
  cfg.shards = 0;
  EXPECT_EQ(cfg.resolved_run_workers(), 8u);
  cfg.shards = 16;  // more shard workers than budget: still one run
  EXPECT_EQ(cfg.resolved_run_workers(), 1u);
}

TEST(ScenarioSweep, CheckpointSeriesCsv) {
  ScenarioSweep sweep([](ScenarioBuilder& b) {
    declare_roaming(b);
    b.checkpoint_every(sim::millis(500));
  });
  SweepConfig cfg;
  cfg.base_seed = 3;
  cfg.runs = 3;
  cfg.threads = 2;
  const SweepResult r = sweep.run(cfg);
  // Phases total 3.5s -> checkpoints at 0.5s .. 3.5s: 7 rows + header.
  const std::string csv = r.csv_series();
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(csv.begin(), csv.end(), '\n')),
            8u)
      << csv;
  EXPECT_EQ(csv.rfind("time_ms,notification,delivery,", 0), 0u) << csv;
  // Cumulative counts: every run reported each checkpoint.
  EXPECT_NE(csv.find(",3\n"), std::string::npos);
  // Deterministic regardless of threading.
  SweepConfig serial = cfg;
  serial.threads = 1;
  EXPECT_EQ(sweep.run(serial).csv_series(), csv);
}

TEST(ScenarioSweep, SingleSeedMatchesDirectScenarioRun) {
  // A sweep of one seed is exactly one Scenario run: the report must be
  // byte-identical to building and running the declaration by hand.
  ScenarioBuilder b;
  declare_roaming(b);
  b.seed(42);
  auto s = b.build();
  s->run();
  const std::string direct = s->report().to_string();

  ScenarioSweep sweep(declare_roaming);
  SweepConfig cfg;
  cfg.seeds = {42};
  const SweepResult r = sweep.run(cfg);
  ASSERT_EQ(r.reports.size(), 1u);
  EXPECT_EQ(r.reports.front().to_string(), direct);
}

}  // namespace
}  // namespace rebeca
