// Cross-validation of the Fig. 9 analytic model against the simulator:
// the closed-form expectations must predict the measured message counts.
#include <gtest/gtest.h>

#include <memory>

#include "src/analysis/fig9_model.hpp"
#include "src/broker/overlay.hpp"
#include "src/client/client.hpp"
#include "src/net/topology.hpp"
#include "src/workload/mover.hpp"
#include "src/workload/publisher.hpp"

namespace rebeca {
namespace {

using analysis::Fig9Config;
using broker::Overlay;
using broker::OverlayConfig;
using client::Client;
using client::ClientConfig;
using location::LdSpec;
using location::LocationGraph;
using location::UncertaintyProfile;

struct Scenario {
  net::Topology topo = net::Topology::chain(4);
  LocationGraph graph = LocationGraph::grid(4, 4);
  std::size_t consumer_broker = 0;
  std::vector<std::size_t> producer_brokers{3, 2};
  double rate_hz = 50.0;  // aggregate
  sim::Duration delta = sim::millis(500);
  double horizon_sec = 30.0;
};

struct SimCounts {
  double notifications = 0;  // notification + delivery classes
  double location_updates = 0;
  std::uint64_t moves = 0;
  std::uint64_t published = 0;
};

SimCounts run_simulation(const Scenario& sc, bool flooding_mode,
                         std::uint64_t seed) {
  sim::Simulation sim(seed);
  OverlayConfig cfg;
  cfg.broker.locations = &sc.graph;
  cfg.broker.strategy = flooding_mode ? routing::Strategy::flooding
                                      : routing::Strategy::covering;
  Overlay overlay(sim, sc.topo, cfg);

  ClientConfig cc;
  cc.id = ClientId(1);
  cc.locations = &sc.graph;
  Client consumer(sim, cc);
  overlay.connect_client(consumer, sc.consumer_broker);
  consumer.move_to(LocationId(0));

  if (flooding_mode) {
    consumer.subscribe(filter::Filter());  // everything, filter at client
  } else {
    LdSpec spec;
    spec.profile = UncertaintyProfile::global_resub();
    consumer.subscribe(spec);
  }

  std::vector<std::unique_ptr<Client>> producers;
  std::vector<std::unique_ptr<workload::Publisher>> pubs;
  const double per_producer_rate =
      sc.rate_hz / static_cast<double>(sc.producer_brokers.size());
  std::uint32_t next_id = 10;
  for (std::size_t b : sc.producer_brokers) {
    ClientConfig pc;
    pc.id = ClientId(next_id++);
    producers.push_back(std::make_unique<Client>(sim, pc));
    overlay.connect_client(*producers.back(), b);
    workload::PublisherConfig wc;
    wc.rate = workload::RateModel::periodic(
        static_cast<sim::Duration>(sim::seconds(1.0 / per_producer_rate)));
    wc.locations = &sc.graph;
    wc.seed = seed * 13 + next_id;
    pubs.push_back(
        std::make_unique<workload::Publisher>(sim, *producers.back(), wc));
  }

  workload::LogicalMoverConfig mc;
  mc.locations = &sc.graph;
  mc.delta = sc.delta;
  mc.seed = seed * 31;
  workload::LogicalMover mover(sim, consumer, mc);

  sim.run_until(sim::seconds(1.0));  // let subscriptions settle
  overlay.counters().reset();        // measure steady state only
  for (auto& p : pubs) p->start();
  mover.start();
  sim.run_until(sim.now() + sim::seconds(sc.horizon_sec));
  for (auto& p : pubs) p->stop();
  mover.stop();

  SimCounts counts;
  const auto& c = overlay.counters();
  counts.notifications =
      static_cast<double>(c.count(metrics::MessageClass::notification) +
                          c.count(metrics::MessageClass::delivery));
  counts.location_updates =
      static_cast<double>(c.count(metrics::MessageClass::location_update));
  counts.moves = mover.moves();
  std::uint64_t published = 0;
  for (auto& p : pubs) published += p->published();
  counts.published = published;
  return counts;
}

TEST(Fig9Model, FloodingMatchesSimulator) {
  Scenario sc;
  Fig9Config mc;
  mc.topology = &sc.topo;
  mc.consumer_broker = sc.consumer_broker;
  mc.producer_brokers = sc.producer_brokers;
  mc.locations = &sc.graph;
  mc.profile = UncertaintyProfile::global_resub();
  mc.publish_rate_hz = sc.rate_hz;
  mc.delta = sc.delta;
  const auto model = analysis::build_message_model(mc);

  const auto sim_counts = run_simulation(sc, /*flooding_mode=*/true, 3);
  // Model: per-notification expectation times actual publication count.
  const double predicted =
      model.flooding_per_notification * static_cast<double>(sim_counts.published);
  EXPECT_NEAR(sim_counts.notifications, predicted, 0.02 * predicted);
  EXPECT_EQ(sim_counts.location_updates, 0.0);
}

TEST(Fig9Model, NewAlgorithmNotificationsMatchSimulator) {
  Scenario sc;
  Fig9Config mc;
  mc.topology = &sc.topo;
  mc.consumer_broker = sc.consumer_broker;
  mc.producer_brokers = sc.producer_brokers;
  mc.locations = &sc.graph;
  mc.profile = UncertaintyProfile::global_resub();
  mc.publish_rate_hz = sc.rate_hz;
  mc.delta = sc.delta;
  const auto model = analysis::build_message_model(mc);

  const auto sim_counts = run_simulation(sc, /*flooding_mode=*/false, 3);
  const double predicted = model.newalg_per_notification *
                           static_cast<double>(sim_counts.published);
  // The model averages over uniform consumer locations; the walk's
  // empirical distribution differs slightly — 10% tolerance.
  EXPECT_NEAR(sim_counts.notifications, predicted, 0.10 * predicted);
}

TEST(Fig9Model, NewAlgorithmAdminMatchesSimulator) {
  Scenario sc;
  Fig9Config mc;
  mc.topology = &sc.topo;
  mc.consumer_broker = sc.consumer_broker;
  mc.producer_brokers = sc.producer_brokers;
  mc.locations = &sc.graph;
  mc.profile = UncertaintyProfile::global_resub();
  mc.publish_rate_hz = sc.rate_hz;
  mc.delta = sc.delta;
  const auto model = analysis::build_message_model(mc);

  const auto sim_counts = run_simulation(sc, /*flooding_mode=*/false, 3);
  const double predicted =
      model.newalg_admin_per_move * static_cast<double>(sim_counts.moves);
  EXPECT_NEAR(sim_counts.location_updates, predicted, 0.10 * predicted + 5.0);
}

TEST(Fig9Model, NewAlgorithmBeatsFloodingOnPaperScaleNetwork) {
  // The headline claim of Fig. 9: an order of magnitude fewer messages.
  auto topo = net::Topology::balanced_tree(3, 3);  // 40 brokers
  auto graph = LocationGraph::grid(10, 10);        // 100 locations
  Fig9Config mc;
  mc.topology = &topo;
  mc.consumer_broker = 13;
  for (std::size_t b = 14; b < 40; b += 3) mc.producer_brokers.push_back(b);
  mc.locations = &graph;
  mc.profile = UncertaintyProfile::global_resub();
  mc.publish_rate_hz = 1000.0;
  mc.delta = sim::seconds(1);
  const auto model = analysis::build_message_model(mc);

  const double t = 100.0;
  EXPECT_GT(model.flooding_total(t), 10.0 * model.newalg_total(t));
}

TEST(Fig9Model, SlowerMovementIsCheaper) {
  auto topo = net::Topology::balanced_tree(2, 3);
  auto graph = LocationGraph::grid(8, 8);
  Fig9Config mc;
  mc.topology = &topo;
  mc.consumer_broker = 4;
  mc.producer_brokers = {7, 9, 11};
  mc.locations = &graph;
  mc.profile = UncertaintyProfile::global_resub();
  mc.publish_rate_hz = 200.0;

  mc.delta = sim::seconds(1);
  const auto fast = analysis::build_message_model(mc);
  mc.delta = sim::seconds(10);
  const auto slow = analysis::build_message_model(mc);

  EXPECT_LT(slow.newalg_total(100.0), fast.newalg_total(100.0));
  // The notification slope is unchanged; only admin traffic shrinks.
  EXPECT_DOUBLE_EQ(slow.newalg_per_notification, fast.newalg_per_notification);
  EXPECT_GT(fast.newalg_admin_per_move, 1.0);
}

TEST(Fig9Model, FloodingProfileDegeneratesToFloodingCost) {
  // With the flooding uncertainty profile every broker subscribes to
  // everything: notification cost equals flooding's (setup/admin aside).
  auto topo = net::Topology::chain(5);
  auto graph = LocationGraph::grid(5, 5);
  Fig9Config mc;
  mc.topology = &topo;
  mc.consumer_broker = 0;
  mc.producer_brokers = {4};
  mc.locations = &graph;
  mc.profile = UncertaintyProfile::flooding();
  mc.publish_rate_hz = 100.0;
  mc.delta = sim::seconds(1);
  const auto model = analysis::build_message_model(mc);

  // Notifications cross the producer link and the whole chain; delivery
  // happens only within the border's exact+1-step ball... under the
  // flooding profile F_1 is also the full set, so every notification is
  // delivered: identical to flooding.
  EXPECT_DOUBLE_EQ(model.newalg_per_notification,
                   model.flooding_per_notification);
}

}  // namespace
}  // namespace rebeca
