// The rebeca-run config layer: JSON parsing and config -> scenario
// equivalence.
//
// The acceptance bar: loading examples/configs/fig2.json reproduces the
// fig2 scenario byte-for-byte against the same declaration written in
// C++ — a config file is a full substitute for a recompile.
#include <gtest/gtest.h>

#include "src/cli/config.hpp"
#include "src/cli/json.hpp"

namespace rebeca {
namespace {

using cli::JsonError;
using cli::JsonValue;

// ---------------------------------------------------------------------------
// JSON parser
// ---------------------------------------------------------------------------

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(JsonValue::parse("null").is_null());
  EXPECT_EQ(JsonValue::parse("true").as_bool(), true);
  EXPECT_EQ(JsonValue::parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(JsonValue::parse("3.25").as_number(), 3.25);
  EXPECT_EQ(JsonValue::parse("-17").as_int(), -17);
  EXPECT_DOUBLE_EQ(JsonValue::parse("1e3").as_number(), 1000.0);
  EXPECT_EQ(JsonValue::parse("\"hi\\nthere\"").as_string(), "hi\nthere");
  EXPECT_EQ(JsonValue::parse("\"\\u0041\\u00e9\"").as_string(), "A\xc3\xa9");
}

TEST(Json, ParsesContainers) {
  const JsonValue v = JsonValue::parse(
      R"({"a": [1, 2, 3], "b": {"c": "x"}, "d": true})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.get("a").size(), 3u);
  EXPECT_EQ(v.get("a").at(1).as_int(), 2);
  EXPECT_EQ(v.get("b").get("c").as_string(), "x");
  EXPECT_EQ(v.bool_or("d", false), true);
  EXPECT_EQ(v.bool_or("missing", true), true);
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Json, ReportsErrorsWithLocation) {
  try {
    JsonValue::parse("{\"a\": 1,\n  \"b\": }");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
  EXPECT_THROW(JsonValue::parse("[1, 2"), JsonError);
  EXPECT_THROW(JsonValue::parse("{} trailing"), JsonError);
  EXPECT_THROW(JsonValue::parse("01x"), JsonError);
  EXPECT_THROW(JsonValue::parse("\"unterminated"), JsonError);
}

TEST(Json, RejectsHostileDocumentsWithoutCrashing) {
  // Out-of-range literal: JsonError, not std::out_of_range from stod.
  EXPECT_THROW(JsonValue::parse("1e999"), JsonError);
  // Nesting past the depth bound: JsonError, not a stack overflow.
  const std::string deep(100000, '[');
  EXPECT_THROW(JsonValue::parse(deep), JsonError);
  // At-the-bound nesting still parses.
  std::string ok;
  for (int i = 0; i < 200; ++i) ok += '[';
  ok += '1';
  for (int i = 0; i < 200; ++i) ok += ']';
  EXPECT_NO_THROW(JsonValue::parse(ok));
}

TEST(Json, TypeMismatchNamesTheField) {
  const JsonValue v = JsonValue::parse(R"({"broker": "three"})");
  try {
    (void)v.get("broker").as_int("clients[0].broker");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("clients[0].broker"),
              std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Config -> filter/notification mapping
// ---------------------------------------------------------------------------

TEST(Config, ParsesFiltersWithAllOperators) {
  const JsonValue v = JsonValue::parse(R"({
    "sym": {"eq": "X"}, "px": {"lt": 100}, "qty": {"range": [1, 9]},
    "venue": {"in": ["a", "b"]}, "tag": {"prefix": "de"}, "flag": {"any": true},
    "bare": 7
  })");
  const filter::Filter f = cli::parse_filter(v, "test");
  EXPECT_EQ(f.size(), 7u);
  filter::Notification n;
  n.set("sym", "X").set("px", 42).set("qty", 3).set("venue", "a");
  n.set("tag", "depot").set("flag", true).set("bare", 7);
  EXPECT_TRUE(f.matches(n));
  n.set("px", 100);
  EXPECT_FALSE(f.matches(n));
}

TEST(Config, RejectsUnknownOperator) {
  const JsonValue v = JsonValue::parse(R"({"sym": {"matches": "X"}})");
  EXPECT_THROW(cli::parse_filter(v, "test"), JsonError);
}

TEST(Config, RejectsUnknownStrategyWithFieldPath) {
  const std::string doc = R"({
    "routing": "warp", "clients": [], "phases": []
  })";
  try {
    (void)cli::parse_config(doc);
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("routing"), std::string::npos);
  }
}

TEST(Config, RequiresClientsAndPhases) {
  EXPECT_THROW((void)cli::parse_config(R"({"phases": []})"), JsonError);
  EXPECT_THROW((void)cli::parse_config(R"({"clients": []})"), JsonError);
}

TEST(Config, MistypedSectionIsRejectedNotDefaulted) {
  // "topology": "chain" (string where an object belongs) must error, not
  // silently run the default 2-broker chain.
  EXPECT_THROW((void)cli::parse_config(R"({
    "topology": "chain", "clients": [], "phases": []
  })"),
               JsonError);
  EXPECT_THROW((void)cli::parse_config(R"({
    "broker_link_delay": [3, 7],
    "clients": [{"name": "c", "id": 1, "broker": 0}],
    "phases": [{"name": "p", "duration_ms": 1}]
  })"),
               JsonError);
  // Out-of-range integers are a clean error, not UB.
  EXPECT_THROW((void)cli::parse_config(R"({
    "clients": [{"name": "c", "id": 1e300, "broker": 0}],
    "phases": [{"name": "p", "duration_ms": 1}]
  })"),
               JsonError);
}

TEST(Config, HostileDelaysAreCleanErrorsNotAsserts) {
  // Regressions from fuzz_config (tools/fuzz/corpus_config/): delay
  // fields used to flow unchecked into the DelayModel factories, whose
  // REBECA_ASSERT aborts the process, and into sim::millis, whose
  // double->int64 cast is UB for huge values. All must reject as
  // JsonError at the config boundary.
  EXPECT_THROW((void)cli::parse_config(
                   R"({"broker_link_delay":
                       {"kind": "uniform", "lo_ms": 5, "hi_ms": 1}})"),
               JsonError);
  EXPECT_THROW(
      (void)cli::parse_config(R"({"broker_link_delay": {"ms": -3}})"),
      JsonError);
  EXPECT_THROW((void)cli::parse_config(R"({"broker_link_delay": 1e308})"),
               JsonError);
  EXPECT_THROW((void)cli::parse_config(
                   R"({"client_link_delay":
                       {"kind": "exponential", "mean_ms": 0}})"),
               JsonError);
  // In-range delays still parse.
  EXPECT_NO_THROW((void)cli::parse_config(R"({
    "broker_link_delay": {"kind": "uniform", "lo_ms": 1, "hi_ms": 5},
    "clients": [{"name": "c", "id": 1, "broker": 0}],
    "phases": [{"name": "p", "duration_ms": 1}]
  })"));
}

// ---------------------------------------------------------------------------
// Whole-config equivalence with a hand-built declaration
// ---------------------------------------------------------------------------

scenario::ScenarioReport run_declared(
    const scenario::ScenarioSweep::Declare& declare, std::uint64_t seed) {
  scenario::ScenarioBuilder b;
  declare(b);
  b.seed(seed);
  auto s = b.build();
  s->run();
  return s->report();
}

TEST(Config, Fig2ConfigReproducesHandBuiltScenario) {
  const cli::RunSpec spec =
      cli::load_config(std::string(REBECA_SOURCE_DIR) +
                       "/examples/configs/fig2.json");
  ASSERT_FALSE(spec.sweep.resolved_seeds().empty());

  // The same declaration, written in C++ (the original bench body).
  const auto hand_built = [](scenario::ScenarioBuilder& b) {
    b.topology(scenario::TopologySpec::chain(4))
        .routing(routing::Strategy::covering);
    b.client("consumer")
        .with_id(1)
        .at_broker(3)
        .relocation(client::RelocationMode::rebeca)
        .dedup(false)
        .subscribes(filter::Filter().where("sym", filter::Constraint::eq("X")));
    b.client("producer")
        .with_id(2)
        .at_broker(0)
        .publishes(scenario::PublishSpec()
                       .every(sim::millis(10))
                       .body(filter::Notification().set("sym", "X"))
                       .from_phase("before")
                       .until_phase_end("after"));
    b.phase("settle", sim::seconds(1));
    b.phase("before", sim::seconds(2));
    b.phase("gap", sim::millis(200),
            [](scenario::Scenario& s) { s.detach("consumer"); });
    b.phase("after", sim::seconds(2),
            [](scenario::Scenario& s) { s.connect("consumer", 1); });
    b.phase("drain", sim::seconds(2));
  };

  const std::uint64_t seed = spec.sweep.resolved_seeds().front();
  const scenario::ScenarioReport from_config = run_declared(spec.declare, seed);
  const scenario::ScenarioReport from_code = run_declared(hand_built, seed);

  EXPECT_EQ(from_config.to_string(), from_code.to_string())
      << "config-declared scenario diverged from the C++ declaration";
  // And it reproduces fig2's protocol row: exactly-once delivery.
  EXPECT_GT(from_config.published, 0u);
  EXPECT_EQ(from_config.missing, 0u);
  EXPECT_EQ(from_config.duplicates, 0u);
  EXPECT_EQ(from_config.delivered, from_config.published);
}

TEST(Config, CheckedInExampleConfigsLoadAndDeclare) {
  for (const char* name :
       {"fig2.json", "fig2_naive.json", "fig3_blackout.json",
        "relocation_latency.json", "roaming_tour.json"}) {
    SCOPED_TRACE(name);
    const cli::RunSpec spec = cli::load_config(
        std::string(REBECA_SOURCE_DIR) + "/examples/configs/" + name);
    EXPECT_FALSE(spec.name.empty());
    EXPECT_GE(spec.sweep.resolved_seeds().size(), 1u);
    // Declaring into a fresh builder and building must succeed.
    scenario::ScenarioBuilder b;
    spec.declare(b);
    b.seed(1);
    EXPECT_NE(b.build(), nullptr);
  }
}

TEST(Config, OnEnterActionsDrive) {
  // publish / subscribe / connect / detach actions from JSON drive a
  // live scenario.
  const std::string doc = R"({
    "topology": {"kind": "chain", "size": 2},
    "clients": [
      {"name": "consumer", "id": 1, "broker": 1},
      {"name": "producer", "id": 2, "broker": 0}
    ],
    "phases": [
      {"name": "sub", "duration_ms": 200, "on_enter": [
        {"action": "subscribe", "client": "consumer", "filter": {"sym": "X"}}
      ]},
      {"name": "pub", "duration_ms": 200, "on_enter": [
        {"action": "publish", "client": "producer", "body": {"sym": "X", "px": 5}},
        {"action": "publish", "client": "producer", "body": {"sym": "Y"}}
      ]}
    ]
  })";
  const cli::RunSpec spec = cli::parse_config(doc);
  const scenario::ScenarioReport r = run_declared(spec.declare, 1);
  EXPECT_EQ(r.published, 2u);
  EXPECT_EQ(r.client("consumer").delivered, 1u);  // "Y" does not match
}

TEST(Config, SweepSettingsRoundTrip) {
  const cli::RunSpec spec = cli::parse_config(R"({
    "clients": [{"name": "c", "id": 1, "broker": 0}],
    "phases": [{"name": "p", "duration_ms": 1}],
    "sweep": {"seeds": [4, 8], "threads": 3}
  })");
  EXPECT_EQ(spec.sweep.resolved_seeds(), (std::vector<std::uint64_t>{4, 8}));
  EXPECT_EQ(spec.sweep.threads, 3u);
}

TEST(Config, ShardsExpectAndCheckpointsRoundTrip) {
  const cli::RunSpec spec = cli::parse_config(R"({
    "topology": {"kind": "chain", "size": 4},
    "shards": 2,
    "checkpoint_every_ms": 400,
    "clients": [
      {"name": "consumer", "id": 1, "broker": 3,
       "subscribes": [{"sym": {"eq": "X"}}]},
      {"name": "producer", "id": 2, "broker": 0,
       "publishes": [{"every_ms": 10, "body": {"sym": "X"},
                      "from_phase": "traffic",
                      "until_phase_end": "traffic"}]}
    ],
    "phases": [
      {"name": "settle", "duration_ms": 400},
      {"name": "traffic", "duration_ms": 800},
      {"name": "drain", "duration_ms": 800}
    ],
    "expect": {"exactly_once": ["consumer"], "fifo": ["consumer"]}
  })");
  EXPECT_EQ(spec.sweep.shards, 2u);

  // The declaration carries checkpoints + expectations into every run.
  scenario::ScenarioBuilder b;
  spec.declare(b);
  b.seed(9);
  b.shards(spec.sweep.shards);
  auto s = b.build();
  EXPECT_EQ(s->shard_count(), 2u);
  s->run();
  const scenario::ScenarioReport r = s->report();
  EXPECT_TRUE(r.expectations_ok()) << r.to_string();
  EXPECT_TRUE(r.client("consumer").fifo_checked);
  // 2s of phases at 400ms -> checkpoints at 0.4 .. 2.0s.
  ASSERT_EQ(r.checkpoints.size(), 5u);
  EXPECT_EQ(r.checkpoints.back().at, sim::millis(2000));
  EXPECT_GT(r.checkpoints.back().counters.total(),
            r.checkpoints.front().counters.total());
}

}  // namespace
}  // namespace rebeca
