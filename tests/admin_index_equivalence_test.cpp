// The acceptance bar of the admin-plane covering index: for every
// checked-in example config, equal-seed ScenarioReports are
// byte-identical between --admin-index linear and --admin-index index —
// on the classic kernel and on the sharded engine at shards 1 and 4,
// and under both notification matchers (the two knobs are independent
// planes and must compose).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "src/cli/config.hpp"
#include "src/scenario/sweep.hpp"

namespace rebeca {
namespace {

std::vector<std::string> example_configs() {
  const std::filesystem::path dir =
      std::filesystem::path(REBECA_SOURCE_DIR) / "examples" / "configs";
  std::vector<std::string> paths;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".json") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

std::string run_report(const cli::RunSpec& spec, routing::AdminIndex admin,
                       broker::Matcher matcher, std::size_t shards) {
  scenario::ScenarioSweep sweep(
      [&spec, admin, matcher](scenario::ScenarioBuilder& b) {
        spec.declare(b);
        b.admin_index(admin);
        b.matcher(matcher);
      });
  scenario::SweepConfig cfg;
  cfg.seeds = {11};
  cfg.threads = 1;
  cfg.shards = shards;
  const scenario::SweepResult result = sweep.run(cfg);
  return result.reports.at(0).to_string();
}

TEST(AdminIndexEquivalence, ByteIdenticalReportsOnEveryExampleConfig) {
  const auto configs = example_configs();
  ASSERT_FALSE(configs.empty());
  for (const std::string& path : configs) {
    SCOPED_TRACE(path);
    const cli::RunSpec spec = cli::load_config(path);
    // Classic kernel plus the sharded engine at 1 and 4 shards; within
    // each engine mode the two admin planes must agree byte for byte,
    // under either notification matcher.
    for (const std::size_t shards : {std::size_t{0}, std::size_t{1},
                                     std::size_t{4}}) {
      for (const broker::Matcher matcher :
           {broker::Matcher::linear, broker::Matcher::index}) {
        SCOPED_TRACE("shards=" + std::to_string(shards) + " matcher=" +
                     broker::matcher_name(matcher));
        const std::string linear =
            run_report(spec, routing::AdminIndex::linear, matcher, shards);
        const std::string index =
            run_report(spec, routing::AdminIndex::index, matcher, shards);
        EXPECT_EQ(linear, index);
      }
    }
  }
}

}  // namespace
}  // namespace rebeca
