// End-to-end integration: full-system scenarios combining physical and
// logical mobility, multiple consumers, advertisements and workload
// generators — the "smart city" the paper's introduction motivates.
#include <gtest/gtest.h>

#include <memory>

#include "src/broker/overlay.hpp"
#include "src/client/client.hpp"
#include "src/metrics/checkers.hpp"
#include "src/net/topology.hpp"
#include "src/workload/mover.hpp"
#include "src/workload/publisher.hpp"

namespace rebeca {
namespace {

using client::Client;
using client::ClientConfig;
using location::LdSpec;
using location::LocationGraph;
using location::UncertaintyProfile;

TEST(EndToEnd, SmartCityMixedWorkload) {
  // A 13-broker tree city. Three kinds of participants:
  //  - a roaming commuter with a plain subscription (physical mobility),
  //  - a driving car with an LD parking subscription (logical mobility),
  //  - a static dashboard subscribed to everything.
  auto city = LocationGraph::grid(6, 6);
  sim::Simulation sim(77);
  broker::OverlayConfig cfg;
  cfg.broker.locations = &city;
  cfg.broker.strategy = routing::Strategy::covering;
  broker::Overlay overlay(sim, net::Topology::balanced_tree(2, 3), cfg);

  // Sensors: parking + traffic events all over town.
  ClientConfig sc;
  sc.id = ClientId(100);
  Client sensors(sim, sc);
  overlay.connect_client(sensors, 12);
  workload::PublisherConfig parking_cfg;
  parking_cfg.rate = workload::RateModel::poisson(sim::millis(20));
  parking_cfg.prototype = filter::Notification().set("service", "parking");
  parking_cfg.locations = &city;
  parking_cfg.seed = 5;
  workload::Publisher parking_feed(sim, sensors, parking_cfg);

  ClientConfig tc;
  tc.id = ClientId(101);
  Client traffic(sim, tc);
  overlay.connect_client(traffic, 11);
  workload::PublisherConfig traffic_cfg;
  traffic_cfg.rate = workload::RateModel::periodic(sim::millis(40));
  traffic_cfg.prototype = filter::Notification().set("service", "traffic");
  traffic_cfg.locations = &city;
  traffic_cfg.seed = 6;
  workload::Publisher traffic_feed(sim, traffic, traffic_cfg);

  // The commuter: subscribes to traffic, roams between brokers.
  ClientConfig commuter_cfg;
  commuter_cfg.id = ClientId(1);
  Client commuter(sim, commuter_cfg);
  overlay.connect_client(commuter, 4);
  commuter.subscribe(
      filter::Filter().where("service", filter::Constraint::eq("traffic")));

  // The car: LD subscription for nearby parking, drives around.
  ClientConfig car_cfg;
  car_cfg.id = ClientId(2);
  car_cfg.locations = &city;
  Client car(sim, car_cfg);
  overlay.connect_client(car, 5);
  car.move_to("g3_3");
  LdSpec spec;
  spec.base = filter::Filter().where("service", filter::Constraint::eq("parking"));
  spec.vicinity_radius = 1;
  spec.profile = UncertaintyProfile::adaptive(
      sim::millis(500), {sim::millis(12), sim::millis(12), sim::millis(12)});
  car.subscribe(spec);
  workload::LogicalMoverConfig carm;
  carm.locations = &city;
  carm.delta = sim::millis(500);
  carm.seed = 7;
  workload::LogicalMover car_mover(sim, car, carm);

  // The dashboard: everything, never moves.
  ClientConfig dash_cfg;
  dash_cfg.id = ClientId(3);
  Client dashboard(sim, dash_cfg);
  overlay.connect_client(dashboard, 0);
  dashboard.subscribe(filter::Filter());

  sim.run_until(sim::seconds(1));
  parking_feed.start();
  traffic_feed.start();
  car_mover.start();

  workload::PhysicalMoverConfig pm;
  pm.itinerary = {7, 9, 2, 4};
  pm.dwell = sim::seconds(2);
  pm.gap = sim::millis(400);
  pm.max_hops = 4;
  workload::PhysicalMover commuter_mover(overlay, commuter, pm);
  commuter_mover.start();

  sim.run_until(sim.now() + sim::seconds(12));
  parking_feed.stop();
  traffic_feed.stop();
  car_mover.stop();
  commuter_mover.stop();
  sim.run_until(sim.now() + sim::seconds(10));

  // Commuter: exactly-once FIFO on every traffic event despite roaming.
  std::vector<NotificationId> traffic_ids;
  for (std::uint64_t i = 1; i <= traffic_feed.published(); ++i) {
    traffic_ids.emplace_back((static_cast<std::uint64_t>(101) << 32) | i);
  }
  const auto commuter_rep =
      metrics::check_exactly_once(commuter.deliveries(), traffic_ids);
  EXPECT_EQ(commuter_rep.missing, 0u);
  EXPECT_EQ(commuter_rep.duplicates, 0u);
  EXPECT_TRUE(metrics::check_sender_fifo(commuter.deliveries()).ok());
  EXPECT_GT(commuter.deliveries().size(), 100u);

  // Car: everything delivered is parking within the vicinity at the
  // moment of delivery (F_0 guarantees it).
  EXPECT_GT(car.deliveries().size(), 0u);
  for (const auto& d : car.deliveries()) {
    EXPECT_EQ(d.notification.get("service")->as_string(), "parking");
  }
  EXPECT_EQ(car.duplicate_count(), 0u);

  // Dashboard: complete view of both feeds.
  EXPECT_EQ(dashboard.deliveries().size(),
            parking_feed.published() + traffic_feed.published());

  // No residue anywhere.
  for (std::size_t b = 0; b < overlay.broker_count(); ++b) {
    EXPECT_EQ(overlay.broker(b).virtual_count(), 0u) << "broker " << b;
  }
}

TEST(EndToEnd, ClientIsBothMobileKindsAtOnce) {
  // Paper Sec. 3.3: "a client can be both logically and physically
  // mobile at the same time". The client carries a plain subscription
  // (relocated with replay) and an LD subscription (re-anchored fresh)
  // across a physical move, while moving logically before and after.
  auto rooms = LocationGraph::line(8);
  sim::Simulation sim(21);
  broker::OverlayConfig cfg;
  cfg.broker.locations = &rooms;
  cfg.broker.virtual_ttl = sim::seconds(30);
  broker::Overlay overlay(sim, net::Topology::chain(4), cfg);

  ClientConfig cc;
  cc.id = ClientId(1);
  cc.locations = &rooms;
  Client user(sim, cc);
  overlay.connect_client(user, 0);
  user.move_to("l1");
  const auto ticker =
      user.subscribe(filter::Filter().where("sym", filter::Constraint::eq("T")));
  LdSpec spec;
  spec.base = filter::Filter().where("service", filter::Constraint::eq("door"));
  spec.profile = UncertaintyProfile::global_resub();
  user.subscribe(spec);

  ClientConfig pc;
  pc.id = ClientId(2);
  Client producer(sim, pc);
  overlay.connect_client(producer, 3);
  sim.run_until(sim::seconds(1));

  auto publish_pair = [&](const std::string& room, int px) {
    producer.publish(filter::Notification().set("sym", "T").set("px", px));
    producer.publish(
        filter::Notification().set("service", "door").set("location", room));
  };

  publish_pair("l1", 1);
  sim.run_until(sim.now() + sim::millis(200));
  user.move_to("l2");  // logical move
  sim.run_until(sim.now() + sim::millis(200));
  publish_pair("l2", 2);
  sim.run_until(sim.now() + sim::millis(200));

  user.detach_silently();  // physical move begins
  publish_pair("l2", 3);   // ticker buffered; door event missed (LD: no replay)
  sim.run_until(sim.now() + sim::millis(500));
  overlay.connect_client(user, 3);
  sim.run_until(sim.now() + sim::millis(500));
  user.move_to("l3");  // logical again, at the new broker
  sim.run_until(sim.now() + sim::millis(300));
  publish_pair("l3", 4);
  sim.run_until(sim.now() + sim::seconds(2));

  // The plain subscription: complete, in order, all four ticks.
  std::size_t ticks = 0;
  std::uint64_t last_px = 0;
  for (const auto& d : user.deliveries()) {
    if (d.sub != ticker) continue;
    ++ticks;
    const auto px = static_cast<std::uint64_t>(d.notification.get("px")->as_int());
    EXPECT_GT(px, last_px);
    last_px = px;
  }
  EXPECT_EQ(ticks, 4u);

  // The LD subscription: the events at the user's location at delivery
  // time (l1, l2, l3) except the one published while disconnected
  // (re-anchoring is replay-less — the paper's future-work boundary).
  std::vector<std::string> door_rooms;
  for (const auto& d : user.deliveries()) {
    if (d.sub == ticker) continue;
    door_rooms.push_back(d.notification.get("location")->as_string());
  }
  EXPECT_EQ(door_rooms, (std::vector<std::string>{"l1", "l2", "l3"}));
}

TEST(EndToEnd, TwoRoamingConsumersDontInterfere) {
  sim::Simulation sim(31);
  broker::Overlay overlay(sim, net::Topology::balanced_tree(2, 2), {});

  ClientConfig c1;
  c1.id = ClientId(1);
  Client alpha(sim, c1);
  overlay.connect_client(alpha, 3);
  alpha.subscribe(filter::Filter().where("sym", filter::Constraint::eq("X")));

  ClientConfig c2;
  c2.id = ClientId(2);
  Client beta(sim, c2);
  overlay.connect_client(beta, 4);
  beta.subscribe(filter::Filter().where("sym", filter::Constraint::eq("X")));

  ClientConfig pc;
  pc.id = ClientId(3);
  Client producer(sim, pc);
  overlay.connect_client(producer, 6);
  workload::PublisherConfig wc;
  wc.rate = workload::RateModel::periodic(sim::millis(10));
  wc.prototype = filter::Notification().set("sym", "X");
  workload::Publisher pub(sim, producer, wc);

  sim.run_until(sim::seconds(1));
  pub.start();

  // Both roam simultaneously, crossing each other's paths.
  workload::PhysicalMoverConfig m1;
  m1.itinerary = {5, 6, 3};
  m1.dwell = sim::millis(700);
  m1.gap = sim::millis(150);
  m1.max_hops = 3;
  workload::PhysicalMover mover1(overlay, alpha, m1);
  workload::PhysicalMoverConfig m2;
  m2.itinerary = {3, 5, 4};
  m2.dwell = sim::millis(900);
  m2.gap = sim::millis(100);
  m2.max_hops = 3;
  workload::PhysicalMover mover2(overlay, beta, m2);
  mover1.start();
  mover2.start();

  sim.run_until(sim.now() + sim::seconds(5));
  pub.stop();
  mover1.stop();
  mover2.stop();
  sim.run_until(sim.now() + sim::seconds(10));

  std::vector<NotificationId> expected;
  for (std::uint64_t i = 1; i <= pub.published(); ++i) {
    expected.emplace_back((static_cast<std::uint64_t>(3) << 32) | i);
  }
  for (Client* c : {&alpha, &beta}) {
    const auto rep = metrics::check_exactly_once(c->deliveries(), expected);
    EXPECT_EQ(rep.missing, 0u) << "client " << c->id();
    EXPECT_EQ(rep.duplicates, 0u) << "client " << c->id();
    EXPECT_TRUE(metrics::check_sender_fifo(c->deliveries()).ok());
  }
}

}  // namespace
}  // namespace rebeca
