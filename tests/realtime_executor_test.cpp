// RealtimeExecutor: the wall-clock sim::Executor the transport runs
// entities on. Ordering, cancellation, cross-thread injection, and the
// virtual/wall time mapping.
#include "src/transport/realtime.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

namespace rebeca {
namespace {

using transport::RealtimeExecutor;

TEST(RealtimeExecutor, FiresInTimeOrder) {
  RealtimeExecutor exec;
  std::vector<int> order;
  // Scheduled out of order; must fire in virtual-time order.
  exec.schedule_at(sim::millis(30), [&] {
    order.push_back(3);
    exec.stop();
  });
  exec.schedule_at(sim::millis(10), [&] { order.push_back(1); });
  exec.schedule_at(sim::millis(20), [&] { order.push_back(2); });
  exec.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(RealtimeExecutor, SameInstantKeepsFifoOrder) {
  RealtimeExecutor exec;
  std::vector<int> order;
  const sim::TimePoint t = sim::millis(5);
  for (int i = 0; i < 8; ++i) {
    exec.schedule_at(t, [&order, i] { order.push_back(i); });
  }
  exec.schedule_at(sim::millis(6), [&] { exec.stop(); });
  exec.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(RealtimeExecutor, CancellationSuppressesEvent) {
  RealtimeExecutor exec;
  bool fired = false;
  sim::EventHandle handle =
      exec.schedule_at(sim::millis(10), [&] { fired = true; });
  handle.cancel();
  exec.schedule_at(sim::millis(20), [&] { exec.stop(); });
  exec.run();
  EXPECT_FALSE(fired);
}

TEST(RealtimeExecutor, CrossThreadPostWakesTheLoop) {
  RealtimeExecutor exec;
  bool fired = false;
  // Nothing scheduled: run() parks on the condition variable until the
  // foreign thread posts (this is the socket-reader injection path).
  std::thread injector([&exec, &fired] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    exec.post([&exec, &fired] {
      fired = true;
      exec.stop();
    });
  });
  exec.run();
  injector.join();
  EXPECT_TRUE(fired);
}

TEST(RealtimeExecutor, EarlierEventInsertedWhileSleepingPreempts) {
  RealtimeExecutor exec;
  std::vector<int> order;
  exec.schedule_at(sim::millis(200), [&] {
    order.push_back(2);
    exec.stop();
  });
  std::thread injector([&exec, &order] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    // run() is asleep until t=200ms; this must wake it early.
    exec.post([&order] { order.push_back(1); });
  });
  exec.run();
  injector.join();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(RealtimeExecutor, TimeScaleCompressesWallTime) {
  // 0.2 wall seconds per virtual second: virtual 500ms ≈ wall 100ms.
  RealtimeExecutor exec(/*seed=*/1, /*time_scale=*/0.2);
  const auto wall_start = std::chrono::steady_clock::now();
  exec.schedule_at(sim::millis(500), [&] { exec.stop(); });
  exec.run();
  const auto wall_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - wall_start)
                           .count();
  EXPECT_GE(wall_ms, 60);
  EXPECT_LT(wall_ms, 450);  // generous: CI boxes stall
  EXPECT_GE(exec.now(), sim::millis(500));
}

TEST(RealtimeExecutor, NowAdvancesWithWallClock) {
  RealtimeExecutor exec;
  const sim::TimePoint before = exec.now();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(exec.now() - before, sim::millis(10));
}

TEST(RealtimeExecutor, StopDiscardsPendingWork) {
  RealtimeExecutor exec;
  bool late_fired = false;
  exec.schedule_at(sim::millis(5), [&] { exec.stop(); });
  exec.schedule_at(sim::seconds(60), [&] { late_fired = true; });
  exec.run();  // must return promptly, not wait a minute
  EXPECT_FALSE(late_fired);
  EXPECT_TRUE(exec.stopped());
}

TEST(RealtimeExecutor, MoveOnlyCaptures) {
  RealtimeExecutor exec;
  auto payload = std::make_unique<int>(41);
  int got = 0;
  exec.schedule_at(sim::millis(1), [&exec, &got, p = std::move(payload)] {
    got = *p + 1;
    exec.stop();
  });
  exec.run();
  EXPECT_EQ(got, 42);
}

}  // namespace
}  // namespace rebeca
