// Uncertainty profiles: the adaptivity rule of paper Sec. 5.3 (Fig. 8,
// Table 4) and the two trivial instantiations (Table 3).
#include <gtest/gtest.h>

#include "src/location/ld_spec.hpp"
#include "src/location/profile.hpp"

namespace rebeca::location {
namespace {

// ---------------------------------------------------------------------------
// Paper Table 4 / Fig. 8: Δ=100ms, δ = (120, 50, 50, 20) ms.
// ---------------------------------------------------------------------------

TEST(Profile, PaperFig8WorkedExample) {
  auto p = UncertaintyProfile::adaptive(
      sim::millis(100),
      {sim::millis(120), sim::millis(50), sim::millis(50), sim::millis(20)});
  EXPECT_EQ(p.steps(0), 0u);  // client-side filter F_0
  EXPECT_EQ(p.steps(1), 1u);  // δ1=120 > 1Δ       → one step
  EXPECT_EQ(p.steps(2), 1u);  // δ1+δ2=170 < 2Δ    → unchanged
  EXPECT_EQ(p.steps(3), 2u);  // δ1+δ2+δ3=220 > 2Δ → one more step
  EXPECT_EQ(p.steps(4), 2u);  // +δ4=240 < 3Δ      → unchanged
}

TEST(Profile, PaperTable4FilterSets) {
  // The resulting ploc rows of Table 4 on the Fig. 7 movement graph.
  auto g = LocationGraph::paper_fig7();
  auto p = UncertaintyProfile::adaptive(
      sim::millis(100),
      {sim::millis(120), sim::millis(50), sim::millis(50), sim::millis(20)});
  LdSpec spec;
  spec.profile = p;
  const auto a = g.id_of("a");
  EXPECT_EQ(spec.concrete_set(g, a, 0).size(), 1u);  // {a}
  EXPECT_EQ(spec.concrete_set(g, a, 1).size(), 3u);  // {a,b,c}
  EXPECT_EQ(spec.concrete_set(g, a, 2).size(), 3u);  // {a,b,c}
  EXPECT_EQ(spec.concrete_set(g, a, 3).size(), 4u);  // {a,b,c,d}
}

TEST(Profile, SlowClientDegeneratesToGlobalResub) {
  // Σδ always below Δ: processing outpaces movement, and the scheme
  // degenerates to the trivial sub/unsub profile — one step of lookahead
  // everywhere, Table 3 (top): "the algorithm always has to provide
  // information for 'the next' user location".
  auto p = UncertaintyProfile::adaptive(
      sim::seconds(10), {sim::millis(5), sim::millis(5), sim::millis(5)});
  EXPECT_EQ(p.steps(0), 0u);
  for (std::size_t i = 1; i <= 6; ++i) EXPECT_EQ(p.steps(i), 1u);
}

TEST(Profile, FastClientStepsEveryHop) {
  // Every hop crosses a multiple of Δ.
  auto p = UncertaintyProfile::adaptive(
      sim::millis(10), {sim::millis(15), sim::millis(15), sim::millis(15)});
  EXPECT_EQ(p.steps(1), 1u);  // cum=15 > 1Δ
  EXPECT_EQ(p.steps(2), 2u);  // cum=30 > 2Δ (but not strictly > 3Δ)
  EXPECT_EQ(p.steps(3), 4u);  // cum=45 > 3Δ and > 4Δ
}

TEST(Profile, OneHugeHopCrossesSeveralMultiples) {
  auto p = UncertaintyProfile::adaptive(sim::millis(10), {sim::millis(35)});
  EXPECT_EQ(p.steps(1), 3u);  // 35 crosses 10, 20, 30
}

TEST(Profile, HopsBeyondListReuseLastDelta) {
  auto p = UncertaintyProfile::adaptive(sim::millis(100), {sim::millis(60)});
  // Every further hop also adds 60ms.
  EXPECT_EQ(p.steps(1), 1u);   // 60 < 100: the next-location baseline
  EXPECT_EQ(p.steps(2), 1u);   // 120 > 100
  EXPECT_EQ(p.steps(4), 2u);   // 240 > 200
  EXPECT_EQ(p.steps(10), 5u);  // 600 > 500
}

TEST(Profile, StepsAreNonDecreasing) {
  // Required for the subset chain of Eq. 1 along the broker path.
  auto p = UncertaintyProfile::adaptive(
      sim::millis(100),
      {sim::millis(250), sim::millis(1), sim::millis(170), sim::millis(90)});
  std::size_t prev = 0;
  for (std::size_t i = 0; i <= 10; ++i) {
    EXPECT_GE(p.steps(i), prev);
    prev = p.steps(i);
  }
}

// ---------------------------------------------------------------------------
// Paper Table 3: the two trivial schemes as profile instantiations.
// ---------------------------------------------------------------------------

TEST(Profile, Table3GlobalResub) {
  auto p = UncertaintyProfile::global_resub();
  auto g = LocationGraph::paper_fig7();
  LdSpec spec;
  spec.profile = p;
  const auto b = g.id_of("b");
  // Row t=0: {b}; rows t>=1: one movement step {a,b,d}.
  EXPECT_EQ(spec.concrete_set(g, b, 0).size(), 1u);
  for (std::size_t i = 1; i <= 3; ++i) {
    EXPECT_EQ(spec.concrete_set(g, b, i).size(), 3u);
  }
}

TEST(Profile, Table3Flooding) {
  auto p = UncertaintyProfile::flooding();
  auto g = LocationGraph::paper_fig7();
  LdSpec spec;
  spec.profile = p;
  const auto c = g.id_of("c");
  EXPECT_EQ(spec.concrete_set(g, c, 0).size(), 1u);
  for (std::size_t i = 1; i <= 3; ++i) {
    EXPECT_EQ(spec.concrete_set(g, c, i).size(), 4u);  // everything
  }
}

TEST(Profile, ExplicitStepsForcedMonotone) {
  auto p = UncertaintyProfile::explicit_steps({0, 2, 1, 3});
  EXPECT_EQ(p.steps(0), 0u);
  EXPECT_EQ(p.steps(1), 2u);
  EXPECT_EQ(p.steps(2), 2u);  // lifted from 1
  EXPECT_EQ(p.steps(3), 3u);
  EXPECT_EQ(p.steps(9), 3u);  // beyond list: last value
}

TEST(Profile, ValidationRejectsBadInputs) {
  EXPECT_THROW(UncertaintyProfile::adaptive(0, {}), util::AssertionError);
  EXPECT_THROW(UncertaintyProfile::adaptive(sim::millis(10), {-1}),
               util::AssertionError);
}

// ---------------------------------------------------------------------------
// LdSpec: vicinity radius composition
// ---------------------------------------------------------------------------

TEST(LdSpec, VicinityRadiusWidensTheBall) {
  auto g = LocationGraph::line(9);  // l0..l8
  LdSpec spec;
  spec.vicinity_radius = 2;  // "at most two blocks away from myloc"
  spec.profile = UncertaintyProfile::explicit_steps({0, 1, 2});
  const auto mid = g.id_of("l4");
  EXPECT_EQ(spec.concrete_set(g, mid, 0).size(), 5u);  // l2..l6
  EXPECT_EQ(spec.concrete_set(g, mid, 1).size(), 7u);  // l1..l7
  EXPECT_EQ(spec.concrete_set(g, mid, 2).size(), 9u);  // everything
}

TEST(LdSpec, ConcreteFilterCombinesBaseAndLocation) {
  auto g = LocationGraph::paper_fig7();
  LdSpec spec;
  spec.base = filter::Filter().where("service", filter::Constraint::eq("parking"));
  spec.profile = UncertaintyProfile::global_resub();
  auto f = spec.concrete_filter(g, g.id_of("a"), 1);

  auto at_b = filter::Notification().set("service", "parking").set("location", "b");
  auto at_d = filter::Notification().set("service", "parking").set("location", "d");
  auto weather = filter::Notification().set("service", "weather").set("location", "b");
  EXPECT_TRUE(f.matches(at_b));
  EXPECT_FALSE(f.matches(at_d));
  EXPECT_FALSE(f.matches(weather));
}

TEST(LdSpec, SubsetChainAcrossHops) {
  // Paper Sec. 5.1: F_k ⊇ F_{k-1} ⊇ … ⊇ F_0 — concrete sets must nest.
  util::Rng rng(31);
  auto g = LocationGraph::random_connected(20, 10, rng);
  LdSpec spec;
  spec.vicinity_radius = 1;
  spec.profile = UncertaintyProfile::adaptive(
      sim::millis(50), {sim::millis(30), sim::millis(60), sim::millis(90)});
  for (std::uint32_t x = 0; x < g.size(); x += 4) {
    for (std::size_t i = 0; i + 1 <= 6; ++i) {
      const auto inner = spec.concrete_set(g, LocationId(x), i);
      const auto outer = spec.concrete_set(g, LocationId(x), i + 1);
      EXPECT_TRUE(std::includes(outer.begin(), outer.end(), inner.begin(),
                                inner.end()))
          << "chain broken at x=" << x << " i=" << i;
    }
  }
}

}  // namespace
}  // namespace rebeca::location
