// Client-library unit tests: the four primitives' local behavior,
// offline queueing, dedup, epochs and client-side filtering.
#include <gtest/gtest.h>

#include "tests/scenario_world.hpp"

namespace rebeca {
namespace {

using client::Client;
using client::ClientConfig;
using scenario::TopologySpec;

struct World : testutil::World {
  World() : testutil::World(TopologySpec::chain(3)) {}
};

TEST(Client, RequiresValidId) {
  sim::Simulation sim(1);
  EXPECT_THROW(Client(sim, ClientConfig{}), util::AssertionError);
}

TEST(Client, PublishStampsUniqueIncreasingIds) {
  World w;
  ClientConfig cc;
  cc.id = ClientId(1);
  Client producer(w.sim, cc);
  w.overlay.connect_client(producer, 0);

  ClientConfig sc;
  sc.id = ClientId(2);
  Client sink(w.sim, sc);
  w.overlay.connect_client(sink, 2);
  sink.subscribe(filter::Filter());
  w.sim.run_until(sim::seconds(1));

  for (int i = 0; i < 5; ++i) {
    producer.publish(filter::Notification().set("i", i));
  }
  w.sim.run_until(w.sim.now() + sim::seconds(1));
  ASSERT_EQ(sink.deliveries().size(), 5u);
  for (std::size_t i = 1; i < 5; ++i) {
    EXPECT_GT(sink.deliveries()[i].notification.id().value(),
              sink.deliveries()[i - 1].notification.id().value());
    EXPECT_EQ(sink.deliveries()[i].notification.producer(), ClientId(1));
  }
}

TEST(Client, OfflinePublishesFlushOnConnect) {
  World w;
  ClientConfig sc;
  sc.id = ClientId(2);
  Client sink(w.sim, sc);
  w.overlay.connect_client(sink, 2);
  sink.subscribe(filter::Filter());
  w.sim.run_until(sim::seconds(1));

  ClientConfig cc;
  cc.id = ClientId(1);
  Client producer(w.sim, cc);  // not connected yet
  producer.publish(filter::Notification().set("i", 1));
  producer.publish(filter::Notification().set("i", 2));
  EXPECT_FALSE(producer.connected());

  w.overlay.connect_client(producer, 0);
  w.sim.run_until(w.sim.now() + sim::seconds(1));
  EXPECT_EQ(sink.deliveries().size(), 2u);
}

TEST(Client, SubscribeWhileOfflineActivatesOnConnect) {
  World w;
  ClientConfig cc;
  cc.id = ClientId(1);
  Client consumer(w.sim, cc);
  consumer.subscribe(filter::Filter().where("k", filter::Constraint::eq(1)));

  w.overlay.connect_client(consumer, 0);

  ClientConfig pc;
  pc.id = ClientId(2);
  Client producer(w.sim, pc);
  w.overlay.connect_client(producer, 2);
  w.sim.run_until(sim::seconds(1));
  producer.publish(filter::Notification().set("k", 1));
  w.sim.run_until(w.sim.now() + sim::seconds(1));
  EXPECT_EQ(consumer.deliveries().size(), 1u);
}

TEST(Client, UnsubscribeIsLocalImmediately) {
  World w;
  ClientConfig cc;
  cc.id = ClientId(1);
  Client consumer(w.sim, cc);
  w.overlay.connect_client(consumer, 0);
  auto sub = consumer.subscribe(filter::Filter());
  consumer.unsubscribe(sub);
  consumer.unsubscribe(sub);  // idempotent
  consumer.unsubscribe(999);  // unknown: no-op
}

TEST(Client, DedupSuppressesDuplicateDeliveries) {
  // Double attachment (make-before-break) delivers each notification
  // once per session; with dedup ON the application sees it once.
  World w;
  ClientConfig cc;
  cc.id = ClientId(1);
  cc.relocation = client::RelocationMode::naive;
  cc.dedup = true;
  Client consumer(w.sim, cc);
  w.overlay.connect_client(consumer, 0);
  consumer.subscribe(filter::Filter());
  w.sim.run_until(sim::seconds(1));
  w.overlay.connect_client(consumer, 2);  // second simultaneous session
  w.sim.run_until(w.sim.now() + sim::seconds(1));

  ClientConfig pc;
  pc.id = ClientId(2);
  Client producer(w.sim, pc);
  w.overlay.connect_client(producer, 1);
  w.sim.run_until(w.sim.now() + sim::seconds(1));
  producer.publish(filter::Notification().set("x", 1));
  w.sim.run_until(w.sim.now() + sim::seconds(1));

  EXPECT_EQ(consumer.deliveries().size(), 1u);
  EXPECT_EQ(consumer.duplicate_count(), 1u);
}

TEST(Client, LastSeqTracksDeliveries) {
  World w;
  ClientConfig cc;
  cc.id = ClientId(1);
  Client consumer(w.sim, cc);
  w.overlay.connect_client(consumer, 0);
  auto sub = consumer.subscribe(filter::Filter());
  EXPECT_EQ(consumer.last_seq(sub), 0u);
  EXPECT_EQ(consumer.last_seq(777), 0u);  // unknown sub

  ClientConfig pc;
  pc.id = ClientId(2);
  Client producer(w.sim, pc);
  w.overlay.connect_client(producer, 2);
  w.sim.run_until(sim::seconds(1));
  producer.publish(filter::Notification());
  producer.publish(filter::Notification());
  w.sim.run_until(w.sim.now() + sim::seconds(1));
  EXPECT_EQ(consumer.last_seq(sub), 2u);
}

TEST(Client, MoveToUnknownLocationThrows) {
  auto graph = location::LocationGraph::line(3);
  sim::Simulation sim(1);
  ClientConfig cc;
  cc.id = ClientId(1);
  cc.locations = &graph;
  Client c(sim, cc);
  EXPECT_THROW(c.move_to("mars"), util::AssertionError);
}

TEST(Client, LdSubscribeRequiresGraphAndLocation) {
  sim::Simulation sim(1);
  ClientConfig no_graph;
  no_graph.id = ClientId(1);
  Client a(sim, no_graph);
  EXPECT_THROW(a.subscribe(location::LdSpec{}), util::AssertionError);

  auto graph = location::LocationGraph::line(3);
  ClientConfig with_graph;
  with_graph.id = ClientId(2);
  with_graph.locations = &graph;
  Client b(sim, with_graph);
  EXPECT_THROW(b.subscribe(location::LdSpec{}), util::AssertionError);  // no loc yet
  b.move_to("l0");
  EXPECT_NO_THROW(b.subscribe(location::LdSpec{}));
}

TEST(Client, ClientSideFilteringCanBeDisabled) {
  auto graph = location::LocationGraph::line(5);
  testutil::World w(TopologySpec::chain(2), {}, 1, &graph);

  ClientConfig cc;
  cc.client_side_filtering = false;  // accept the border's lookahead set
  Client& consumer = w.add_client(1, 0, cc);
  consumer.move_to("l1");
  location::LdSpec spec;
  spec.profile = location::UncertaintyProfile::global_resub();
  consumer.subscribe(spec);

  Client& producer = w.add_client(2, 1);
  w.settle();

  // l2 is in the border's one-step lookahead but not at the client's
  // exact location: with F_0 disabled it reaches the application.
  producer.publish(filter::Notification().set("location", "l2"));
  w.settle();
  EXPECT_EQ(consumer.deliveries().size(), 1u);
  EXPECT_EQ(consumer.filtered_count(), 0u);
}

TEST(Client, EpochsBumpOnEveryAttach) {
  World w;
  ClientConfig cc;
  cc.id = ClientId(1);
  Client consumer(w.sim, cc);
  w.overlay.connect_client(consumer, 0);
  consumer.subscribe(filter::Filter());
  w.sim.run_until(sim::seconds(1));
  consumer.detach_silently();
  w.sim.run_until(w.sim.now() + sim::millis(100));
  w.overlay.connect_client(consumer, 1);
  w.sim.run_until(w.sim.now() + sim::millis(100));
  consumer.detach_silently();
  w.sim.run_until(w.sim.now() + sim::millis(100));
  w.overlay.connect_client(consumer, 2);
  w.sim.run_until(w.sim.now() + sim::seconds(2));
  // Three attaches, no crash, no duplicate state: the final session is
  // the only live one.
  EXPECT_EQ(w.overlay.broker(2).session_count(), 1u);
  EXPECT_EQ(w.overlay.broker(0).session_count(), 0u);
  EXPECT_EQ(w.overlay.broker(1).session_count(), 0u);
}

}  // namespace
}  // namespace rebeca
