// Relocation-timer lifecycle regressions (PR 2 bugfixes).
//
// Three bugs, found while auditing the protocol for sweep-readiness,
// all triggered by repeated connect/disconnect churn:
//  1. Non-LD same-broker reconnect erased the virtual counterpart
//     without cancelling its ttl/widen timers; the stale TTL could fire
//     after the client re-disconnected and drop the NEW virtual with the
//     same key/epoch (epoch-0 workloads: naive clients cannot tell the
//     two apart).
//  2. flush_relocation_timeout reset next_seq to reported_last_seq + 1,
//     reusing sequence numbers the client had already seen from in-flight
//     pre-cut deliveries; a later replay then skipped the reused range as
//     "already delivered" and lost notifications.
//  3. emit_replay derived the truncation report from a dead scan and
//     ignored eviction, under-reporting buffer-overflow losses.
#include <gtest/gtest.h>

#include <set>

#include "tests/scenario_world.hpp"

namespace rebeca {
namespace {

using broker::OverlayConfig;
using client::Client;
using client::ClientConfig;
using filter::Constraint;
using filter::Filter;
using filter::Notification;
using scenario::TopologySpec;
using testutil::World;

Filter ticks() { return Filter().where("sym", Constraint::eq("AAA")); }

Notification tick(int px) {
  return Notification().set("sym", "AAA").set("px", px);
}

std::set<std::uint64_t> delivered_producer_seqs(const Client& c) {
  std::set<std::uint64_t> seqs;
  for (const auto& d : c.deliveries()) seqs.insert(d.notification.producer_seq());
  return seqs;
}

// ---------------------------------------------------------------------------
// Bug 1: stale TTL timer dropping a successor virtual
// ---------------------------------------------------------------------------

TEST(TimerLifecycle, SameBrokerReconnectCancelsTtlTimer) {
  // disconnect -> same-broker reconnect -> disconnect, crossing
  // virtual_ttl of the FIRST disconnect. Epoch-0 subscriptions (naive
  // relocation re-subscribes from scratch) make the stale timer's epoch
  // guard useless: without the cancel, the first disconnect's TTL fires
  // mid-second-disconnection and drops the second virtual.
  OverlayConfig cfg;
  cfg.broker.virtual_ttl = sim::seconds(2);
  World w(TopologySpec::chain(3), cfg);
  ClientConfig naive;
  naive.relocation = client::RelocationMode::naive;
  Client& consumer = w.add_client(1, 2, naive);
  Client& producer = w.add_client(2, 0);
  consumer.subscribe(ticks());
  w.settle();

  for (int i = 0; i < 3; ++i) producer.publish(tick(i));
  w.settle(0.1);
  ASSERT_EQ(consumer.deliveries().size(), 3u);

  consumer.detach_silently();  // T1: virtual #1, TTL armed for T1+2s
  w.settle(1.0);
  w.overlay.connect_client(consumer, 2);  // same broker: erases virtual #1
  w.settle(0.2);
  consumer.detach_silently();  // T1+1.2s: virtual #2, TTL armed for T1+3.2s
  w.settle(1.3);               // T1+2.5s: virtual #1's stale TTL has fired

  // The second virtual must survive its predecessor's timer.
  EXPECT_EQ(w.overlay.broker(2).virtual_count(), 1u);

  // And it must still be buffering: the backlog published now arrives
  // after the next reconnect.
  producer.publish(tick(3));
  producer.publish(tick(4));
  w.settle(0.2);
  w.overlay.connect_client(consumer, 2);  // T1+~2.9s, before TTL #2
  w.settle();

  const auto seqs = delivered_producer_seqs(consumer);
  EXPECT_EQ(seqs.size(), 5u) << "backlog lost with the virtual counterpart";
  EXPECT_TRUE(seqs.count(4) != 0 && seqs.count(5) != 0);
}

TEST(TimerLifecycle, RebecaSameBrokerReconnectLeavesNoStaleDrop) {
  // The protocol-mode flavor of the same churn (epochs advance, so the
  // old code survived by accident) — pinned so the cancel stays in place
  // for every erase path.
  OverlayConfig cfg;
  cfg.broker.virtual_ttl = sim::seconds(2);
  World w(TopologySpec::chain(3), cfg);
  Client& consumer = w.add_client(1, 2);
  Client& producer = w.add_client(2, 0);
  consumer.subscribe(ticks());
  w.settle();

  for (int i = 0; i < 3; ++i) producer.publish(tick(i));
  w.settle(0.1);
  consumer.detach_silently();
  w.settle(1.0);
  w.overlay.connect_client(consumer, 2);
  w.settle(0.2);
  consumer.detach_silently();
  w.settle(1.3);
  EXPECT_EQ(w.overlay.broker(2).virtual_count(), 1u);
  w.overlay.connect_client(consumer, 2);
  w.settle();
  EXPECT_EQ(delivered_producer_seqs(consumer).size(), 3u);
  EXPECT_EQ(consumer.duplicate_count(), 0u);
}

// ---------------------------------------------------------------------------
// Bug 2: sequence-number reuse after a relocation timeout
// ---------------------------------------------------------------------------

TEST(TimerLifecycle, TimeoutFlushDoesNotReuseSequenceNumbers) {
  // Make-before-break at one border with deliveries in flight: the
  // second hello reports last_seq = 3 while the broker has already
  // stamped 4 and 5 (the client receives them on the old link moments
  // later). No replay ever arrives, the relocation times out, and the
  // flush must continue stamping from 6 — not reset to 4. With the reset,
  // the flushed notifications carry seqs the client already saw; after
  // the next disconnect they sit in the virtual buffer below the
  // client's reported last_seq, the replay skips them, and they are lost.
  OverlayConfig cfg;
  cfg.broker.relocation_timeout = sim::seconds(2);
  World w(TopologySpec::chain(2), cfg);
  Client& consumer = w.add_client(1, 0);
  Client& producer = w.add_client(2, 1);
  consumer.subscribe(ticks());
  w.settle();

  for (int i = 0; i < 3; ++i) producer.publish(tick(i));
  w.settle(0.1);
  ASSERT_EQ(consumer.last_seq(1), 3u);

  // Producer -> broker1 -> broker0 -> consumer is 1 + 5 + 1 ms; at
  // +6.5 ms the notifications are stamped at broker 0 but still in
  // flight on the client link.
  const sim::TimePoint t1 = w.sim.now();
  producer.publish(tick(3));
  producer.publish(tick(4));
  w.sim.run_until(t1 + sim::millis(6.5));
  w.overlay.connect_client(consumer, 0);  // second link, same border
  w.sim.run_until(t1 + sim::millis(50));
  // The client got the in-flight deliveries on the old link...
  EXPECT_EQ(consumer.last_seq(1), 5u);
  // ...while the broker holds a relocating session that will never see a
  // replay (the hunt finds no old state: the old state IS this session).
  producer.publish(tick(5));
  producer.publish(tick(6));  // buffered in pending_live until the flush
  w.sim.run_until(t1 + sim::seconds(2.1));  // timeout fired, flush stamped

  // Cut the links while the flushed deliveries are still in flight: they
  // must survive into the virtual buffer ABOVE the client's last seq.
  consumer.detach_silently();
  w.settle(0.5);
  w.overlay.connect_client(consumer, 0);
  w.settle();
  producer.publish(tick(7));
  producer.publish(tick(8));
  w.settle();

  const auto seqs = delivered_producer_seqs(consumer);
  EXPECT_EQ(seqs.size(), 9u)
      << "notifications stamped with reused seqs were skipped by the replay";
  EXPECT_EQ(consumer.duplicate_count(), 0u);
  // Border-broker sequence numbers never move backwards at the client.
  std::uint64_t prev = 0;
  for (const auto& d : consumer.deliveries()) {
    EXPECT_GT(d.seq, prev) << "sequence number reused or reordered";
    prev = d.seq;
  }
}

// ---------------------------------------------------------------------------
// Bug 3: replay truncation accounting
// ---------------------------------------------------------------------------

TEST(TimerLifecycle, ReplayReportsEvictionTruncation) {
  OverlayConfig cfg;
  cfg.broker.session_history = 4;
  cfg.broker.virtual_capacity = 4;
  World w(TopologySpec::chain(3), cfg);
  Client& consumer = w.add_client(1, 2);
  Client& producer = w.add_client(2, 0);
  consumer.subscribe(ticks());
  w.settle();

  consumer.detach_silently();
  w.settle(0.05);
  for (int i = 0; i < 20; ++i) producer.publish(tick(i));
  w.settle(0.5);
  w.overlay.connect_client(consumer, 0);
  w.settle();

  // 20 buffered into capacity 4: seqs 1..16 evicted, 17..20 replayed.
  ASSERT_EQ(consumer.deliveries().size(), 4u);
  EXPECT_EQ(consumer.deliveries().front().notification.producer_seq(), 17u);
  EXPECT_EQ(w.overlay.broker(2).replay_truncated(), 16u);
}

TEST(TimerLifecycle, CompleteReplayReportsNoTruncation) {
  World w(TopologySpec::chain(3));
  Client& consumer = w.add_client(1, 2);
  Client& producer = w.add_client(2, 0);
  consumer.subscribe(ticks());
  w.settle();

  for (int i = 0; i < 5; ++i) producer.publish(tick(i));
  w.settle(0.1);
  consumer.detach_silently();
  w.settle(0.05);
  for (int i = 5; i < 10; ++i) producer.publish(tick(i));
  w.settle(0.2);
  w.overlay.connect_client(consumer, 0);
  w.settle();

  EXPECT_EQ(delivered_producer_seqs(consumer).size(), 10u);
  EXPECT_EQ(w.overlay.broker(2).replay_truncated(), 0u);
}

}  // namespace
}  // namespace rebeca
