// Property suite: randomized roaming under randomized topologies and
// workloads. For every seed, the paper's QoS must hold — exactly-once
// delivery (completeness, no duplicates) and sender-FIFO ordering —
// regardless of when and where the consumer roams.
#include <gtest/gtest.h>

#include <memory>

#include "src/broker/overlay.hpp"
#include "src/client/client.hpp"
#include "src/metrics/checkers.hpp"
#include "src/net/topology.hpp"
#include "src/workload/publisher.hpp"

namespace rebeca {
namespace {

using client::Client;
using client::ClientConfig;

struct FuzzParam {
  std::uint64_t seed;
  routing::Strategy strategy;
  bool advertisements;
};

class RoamingFuzz : public ::testing::TestWithParam<FuzzParam> {};

TEST_P(RoamingFuzz, ExactlyOnceFifoUnderRandomRoaming) {
  const auto param = GetParam();
  util::Rng rng(param.seed * 2654435761ULL + 17);

  // Random tree of 6..14 brokers.
  const std::size_t broker_count = 6 + rng.index(9);
  auto topo = net::Topology::random_tree(broker_count, rng);

  sim::Simulation sim(param.seed);
  broker::OverlayConfig cfg;
  cfg.broker.strategy = param.strategy;
  cfg.broker.use_advertisements = param.advertisements;
  broker::Overlay overlay(sim, topo, cfg);

  // 1-3 producers at random brokers, 40-100 notifications/s each.
  const std::size_t producer_count = 1 + rng.index(3);
  std::vector<std::unique_ptr<Client>> producers;
  std::vector<std::unique_ptr<workload::Publisher>> pubs;
  for (std::size_t p = 0; p < producer_count; ++p) {
    ClientConfig pc;
    pc.id = ClientId(static_cast<std::uint32_t>(100 + p));
    producers.push_back(std::make_unique<Client>(sim, pc));
    overlay.connect_client(*producers.back(), rng.index(broker_count));
    if (param.advertisements) {
      producers.back()->advertise(
          filter::Filter().where("sym", filter::Constraint::any()));
    }
    workload::PublisherConfig wc;
    wc.rate = workload::RateModel::poisson(
        sim::millis(10.0 + static_cast<double>(rng.index(15))));
    wc.prototype = filter::Notification().set("sym", "X").set("p", static_cast<int>(p));
    wc.seed = param.seed * 31 + p;
    pubs.push_back(std::make_unique<workload::Publisher>(sim, *producers.back(), wc));
  }

  // The roaming consumer (a second, static consumer keeps covering
  // aggregation interesting).
  ClientConfig cc;
  cc.id = ClientId(1);
  Client consumer(sim, cc);
  overlay.connect_client(consumer, rng.index(broker_count));
  consumer.subscribe(filter::Filter().where("sym", filter::Constraint::eq("X")));

  ClientConfig bc;
  bc.id = ClientId(2);
  Client bystander(sim, bc);
  overlay.connect_client(bystander, rng.index(broker_count));
  bystander.subscribe(filter::Filter());

  sim.run_until(sim::seconds(1));
  for (auto& p : pubs) p->start();

  // 4-7 random hops with random dwell/gap times.
  const std::size_t hops = 4 + rng.index(4);
  for (std::size_t h = 0; h < hops; ++h) {
    sim.run_until(sim.now() +
                  sim::millis(150.0 + static_cast<double>(rng.index(500))));
    consumer.detach_silently();
    sim.run_until(sim.now() +
                  sim::millis(20.0 + static_cast<double>(rng.index(300))));
    overlay.connect_client(consumer, rng.index(broker_count));
  }
  sim.run_until(sim.now() + sim::seconds(1));
  for (auto& p : pubs) p->stop();
  sim.run_until(sim.now() + sim::seconds(20));  // drain replays

  // Expected: every notification every producer published.
  std::vector<NotificationId> expected;
  for (std::size_t p = 0; p < producer_count; ++p) {
    for (std::uint64_t i = 1; i <= pubs[p]->published(); ++i) {
      expected.emplace_back(
          (static_cast<std::uint64_t>(100 + p) << 32) | i);
    }
  }
  ASSERT_GT(expected.size(), 50u) << "workload too small to be meaningful";

  const auto complete = metrics::check_exactly_once(consumer.deliveries(), expected);
  EXPECT_EQ(complete.missing, 0u)
      << "brokers=" << broker_count << " producers=" << producer_count
      << " hops=" << hops;
  EXPECT_EQ(complete.duplicates, 0u);
  EXPECT_EQ(consumer.duplicate_count(), 0u);
  EXPECT_TRUE(metrics::check_sender_fifo(consumer.deliveries()).ok());

  // The bystander must be completely unaffected by the roaming.
  const auto bystander_rep =
      metrics::check_exactly_once(bystander.deliveries(), expected);
  EXPECT_EQ(bystander_rep.missing, 0u);
  EXPECT_EQ(bystander_rep.duplicates, 0u);

  // No leaked virtual counterparts anywhere.
  for (std::size_t b = 0; b < overlay.broker_count(); ++b) {
    EXPECT_EQ(overlay.broker(b).virtual_count(), 0u) << "broker " << b;
  }
}

std::vector<FuzzParam> fuzz_params() {
  std::vector<FuzzParam> params;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    params.push_back({seed, routing::Strategy::simple, false});
    params.push_back({seed, routing::Strategy::covering, false});
  }
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    params.push_back({seed, routing::Strategy::identity, false});
    params.push_back({seed, routing::Strategy::merging, false});
    params.push_back({seed, routing::Strategy::covering, true});
    params.push_back({seed, routing::Strategy::simple, true});
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoamingFuzz, ::testing::ValuesIn(fuzz_params()),
                         [](const auto& info) {
                           std::string name =
                               routing::strategy_name(info.param.strategy);
                           if (info.param.advertisements) name += "_adv";
                           return name + "_s" + std::to_string(info.param.seed);
                         });

// ---------------------------------------------------------------------------
// Logical mobility fuzz: random movement graphs and walks, LD delivery
// must equal the flooding reference (with a sufficient horizon).
// ---------------------------------------------------------------------------

class LogicalFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LogicalFuzz, LdDeliveryEqualsFloodingReference) {
  const std::uint64_t seed = GetParam();
  util::Rng setup(seed * 40503 + 7);
  auto graph = location::LocationGraph::random_connected(
      8 + setup.index(12), setup.index(8), setup);
  const std::size_t chain = 3 + setup.index(3);
  const auto start = LocationId(static_cast<std::uint32_t>(setup.index(graph.size())));

  auto run = [&](bool ld_mode) {
    sim::Simulation sim(seed);
    broker::OverlayConfig cfg;
    cfg.broker.locations = &graph;
    broker::Overlay overlay(sim, net::Topology::chain(chain), cfg);

    ClientConfig cc;
    cc.id = ClientId(1);
    cc.locations = &graph;
    Client consumer(sim, cc);
    overlay.connect_client(consumer, 0);
    consumer.move_to(start);

    location::LdSpec spec;
    spec.vicinity_radius = 1;
    spec.profile = ld_mode ? location::UncertaintyProfile::global_resub()
                           : location::UncertaintyProfile::flooding();
    consumer.subscribe(spec);

    ClientConfig pc;
    pc.id = ClientId(2);
    Client producer(sim, pc);
    overlay.connect_client(producer, chain - 1);
    sim.run_until(sim::seconds(1));

    // Deterministic walk + publications derived from the seed.
    util::Rng wl(seed * 104729 + 13);
    LocationId at = start;
    for (int m = 1; m <= 10; ++m) {
      const auto& nbrs = graph.neighbors(at);
      if (nbrs.empty()) break;
      at = nbrs[wl.index(nbrs.size())];
      sim.schedule_at(sim::seconds(1) + sim::millis(350.0 * m),
                      [&consumer, at] { consumer.move_to(at); });
    }
    for (int i = 0; i < 300; ++i) {
      const auto where = graph.name(
          LocationId(static_cast<std::uint32_t>(wl.index(graph.size()))));
      sim.schedule_at(sim::seconds(1) + sim::millis(13.0 * i + 4.0),
                      [&producer, where] {
                        producer.publish(
                            filter::Notification().set("location", where));
                      });
    }
    sim.run_until(sim::seconds(10));

    std::multiset<std::uint64_t> ids;
    for (const auto& d : consumer.deliveries()) {
      ids.insert(d.notification.id().value());
    }
    return ids;
  };

  EXPECT_EQ(run(true), run(false)) << "graph size " << graph.size();
}

INSTANTIATE_TEST_SUITE_P(Seeds, LogicalFuzz, ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace rebeca
