// End-to-end over real processes: spawns one rebeca-node per broker of
// the checked-in transport_tour config plus a client-bundle process,
// and requires a complete run — every matching publication delivered,
// across the consumer's mid-run moveto between broker processes.
//
// This is the CI smoke criterion as a ctest. Needs the rebeca-node
// binary (REBECA_BINARY_DIR) next to this test in the build tree.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace {

std::string shell_quote(const std::string& s) { return "'" + s + "'"; }

TEST(TransportEndToEnd, MultiProcessTourCompletes) {
  const std::string binary = std::string(REBECA_BINARY_DIR) + "/rebeca-node";
  {
    std::ifstream probe(binary);
    if (!probe) GTEST_SKIP() << "rebeca-node not built at " << binary;
  }
  const std::string config =
      std::string(REBECA_SOURCE_DIR) + "/examples/configs/transport_tour.json";

  std::string rdz = ::testing::TempDir() + "rebeca_e2e_XXXXXX";
  ASSERT_NE(::mkdtemp(rdz.data()), nullptr);

  // Brokers in the background with a hard lifetime cap; the client
  // bundle runs in the foreground and its exit code is the verdict
  // (--expect-complete makes missing deliveries exit 1).
  std::ostringstream cmd;
  cmd << "pids=''; ";
  for (int b = 0; b < 3; ++b) {
    cmd << shell_quote(binary) << " --config " << shell_quote(config)
        << " --broker " << b << " --rendezvous " << shell_quote(rdz)
        << " --duration-ms 30000 2>" << shell_quote(rdz) << "/broker" << b
        << ".log & pids=\"$pids $!\"; ";
  }
  cmd << shell_quote(binary) << " --config " << shell_quote(config)
      << " --clients --rendezvous " << shell_quote(rdz)
      << " --expect-complete > " << shell_quote(rdz) << "/clients.log 2>&1; "
      // Tear the brokers down by PID (never the whole process group:
      // this test lives in it too) and surface the bundle's verdict.
      << "rc=$?; kill $pids 2>/dev/null; wait; exit $rc";

  const int rc = std::system(cmd.str().c_str());  // system() is sh -c
  std::ifstream log(rdz + "/clients.log");
  std::ostringstream log_text;
  log_text << log.rdbuf();
  EXPECT_EQ(rc, 0) << "client bundle output:\n" << log_text.str();
  // The bundle's own report must agree: something was published, and
  // nothing went missing.
  EXPECT_NE(log_text.str().find(" 0 missing (complete)"), std::string::npos)
      << log_text.str();
}

}  // namespace
