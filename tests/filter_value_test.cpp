// Value semantics: cross-type numeric comparison, structural ordering,
// printing.
#include <gtest/gtest.h>

#include "src/filter/value.hpp"

namespace rebeca::filter {
namespace {

TEST(Value, TypePredicates) {
  EXPECT_TRUE(Value(1).is_int());
  EXPECT_TRUE(Value(1).is_numeric());
  EXPECT_TRUE(Value(1.5).is_double());
  EXPECT_TRUE(Value(1.5).is_numeric());
  EXPECT_TRUE(Value("x").is_string());
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_FALSE(Value(true).is_numeric());
  EXPECT_FALSE(Value("1").is_numeric());
}

TEST(Value, NumericView) {
  EXPECT_EQ(Value(3).numeric(), 3.0);
  EXPECT_EQ(Value(3.5).numeric(), 3.5);
  EXPECT_FALSE(Value("3").numeric().has_value());
  EXPECT_FALSE(Value(true).numeric().has_value());
}

TEST(Value, CompareNumericCrossType) {
  EXPECT_EQ(Value(3).compare(Value(3.0)), 0);
  EXPECT_EQ(Value(2).compare(Value(2.5)), -1);
  EXPECT_EQ(Value(3.5).compare(Value(3)), 1);
  EXPECT_EQ(Value(-1).compare(Value(1)), -1);
}

TEST(Value, CompareIntIntExact) {
  // Large int64s where double rounding would lie.
  const std::int64_t big = (1LL << 62) + 1;
  EXPECT_EQ(Value(big).compare(Value(big)), 0);
  EXPECT_EQ(Value(big).compare(Value(big - 1)), 1);
}

TEST(Value, CompareStrings) {
  EXPECT_EQ(Value("abc").compare(Value("abd")), -1);
  EXPECT_EQ(Value("b").compare(Value("ab")), 1);
  EXPECT_EQ(Value("x").compare(Value("x")), 0);
}

TEST(Value, CompareBools) {
  EXPECT_EQ(Value(false).compare(Value(true)), -1);
  EXPECT_EQ(Value(true).compare(Value(true)), 0);
}

TEST(Value, IncomparablePairs) {
  EXPECT_FALSE(Value(1).compare(Value("1")).has_value());
  EXPECT_FALSE(Value(true).compare(Value(1)).has_value());
  EXPECT_FALSE(Value("a").compare(Value(false)).has_value());
}

TEST(Value, EqualsUsesSemanticComparison) {
  EXPECT_TRUE(Value(2).equals(Value(2.0)));
  EXPECT_FALSE(Value(2).equals(Value("2")));
  EXPECT_FALSE(Value(2).equals(Value(3)));
}

TEST(Value, StructuralEqualityIsTypeSensitive) {
  // operator== is structural (for container keys): 2 and 2.0 differ.
  EXPECT_FALSE(Value(2) == Value(2.0));
  EXPECT_TRUE(Value(2) == Value(2));
}

TEST(Value, StructuralOrderingIsStrictWeak) {
  std::vector<Value> values{Value(3), Value(1.5), Value("a"), Value(true),
                            Value(2), Value("b"), Value(false)};
  std::sort(values.begin(), values.end(),
            [](const Value& a, const Value& b) { return a < b; });
  // Sorting must group by type (variant index) then by value; a second
  // sort is a no-op (determinism).
  auto again = values;
  std::sort(again.begin(), again.end(),
            [](const Value& a, const Value& b) { return a < b; });
  EXPECT_EQ(values, again);
}

TEST(Value, ToString) {
  EXPECT_EQ(Value(42).to_string(), "42");
  EXPECT_EQ(Value("hi").to_string(), "\"hi\"");
  EXPECT_EQ(Value(true).to_string(), "true");
  EXPECT_EQ(Value(false).to_string(), "false");
}

TEST(Value, DefaultIsIntZero) {
  Value v;
  EXPECT_TRUE(v.is_int());
  EXPECT_EQ(v.as_int(), 0);
}

}  // namespace
}  // namespace rebeca::filter
