// Lane-affinity checker tests (src/sim/lane_check.hpp).
//
// The checker turns a cross-shard race — an event touching an entity
// another lane owns — into a deterministic AssertionError at the
// violation site, instead of a TSan report that depends on thread
// interleaving. These tests drive it through both engines; in builds
// without REBECA_LANE_CHECKS every check compiles to a no-op and the
// violation cases are skipped.
#include "src/sim/lane_check.hpp"

#include <gtest/gtest.h>

#include "src/sim/sharded.hpp"
#include "src/sim/simulation.hpp"
#include "src/util/assert.hpp"

namespace rebeca::sim {
namespace {

constexpr bool kChecksEnabled = REBECA_LANE_CHECKS != 0;

TEST(LaneCheck, OutsideAnyEventAlwaysPasses) {
  Simulation sim(1);
  LaneAffinity aff;
  aff.bind(&sim);
  // Direct driver calls (scenario construction, tests) run with no
  // executing lane marked — the check must not fire.
  aff.check("Entity", "poke");
}

TEST(LaneCheck, OwnLanePasses) {
  Simulation sim(1);
  LaneAffinity aff;
  aff.bind(&sim);
  bool ran = false;
  sim.post_at(5, [&] {
    aff.check("Entity", "poke");
    ran = true;
  });
  sim.run_until(10);
  EXPECT_TRUE(ran);
}

TEST(LaneCheck, ForeignExecutorThrows) {
  if (!kChecksEnabled) GTEST_SKIP() << "REBECA_LANE_CHECKS off";
  Simulation owner(1);
  Simulation other(2);
  LaneAffinity aff;
  aff.bind(&owner);
  other.post_at(5, [&] { aff.check("Entity", "poke"); });
  EXPECT_THROW(other.run_all(), util::AssertionError);
}

TEST(LaneCheck, ShardedForeignLaneThrowsDeterministically) {
  if (!kChecksEnabled) GTEST_SKIP() << "REBECA_LANE_CHECKS off";
  // The race this catches: lane B's event mutating a lane-A entity.
  // Even when both lanes share one shard (thread), the checker fires —
  // that is the "deterministically instead of only when TSan sees an
  // interleaving" property.
  for (const std::size_t shards : {1u, 2u}) {
    ShardedSimulation eng(/*seed=*/7, shards);
    LaneExecutor& lane_a = eng.add_lane(0);
    LaneExecutor& lane_b = eng.add_lane(shards - 1);
    eng.set_lookahead(kMillisecond);

    LaneAffinity entity_on_a;
    entity_on_a.bind(&lane_a);

    ShardedSimulation::Scope scope(eng.control());
    lane_b.post_at(5 * kMillisecond,
                   [&] { entity_on_a.check("Entity", "poke"); });
    EXPECT_THROW(eng.run_until(10 * kMillisecond), util::AssertionError)
        << "shards=" << shards;
  }
}

TEST(LaneCheck, ShardedOwnLanePasses) {
  ShardedSimulation eng(/*seed=*/7, 2);
  LaneExecutor& lane_a = eng.add_lane(1);
  eng.set_lookahead(kMillisecond);

  LaneAffinity entity_on_a;
  entity_on_a.bind(&lane_a);

  bool ran = false;
  {
    ShardedSimulation::Scope scope(eng.control());
    lane_a.post_at(5 * kMillisecond, [&] {
      entity_on_a.check("Entity", "poke");
      ran = true;
    });
  }
  eng.run_until(10 * kMillisecond);
  EXPECT_TRUE(ran);
}

TEST(LaneCheck, UnboundAffinityPasses) {
  // Entities constructed before an engine exists (unit-test fixtures)
  // have no owner recorded; the check is inert until bind().
  Simulation sim(1);
  LaneAffinity aff;
  sim.post_at(1, [&] { aff.check("Entity", "poke"); });
  sim.run_until(2);
}

}  // namespace
}  // namespace rebeca::sim
