// CoverIndex correctness: the counting covering/overlap index must agree
// with naive linear Filter::covers / overlaps scans on every corpus we
// can generate — across every routing strategy's forward-set shapes,
// across all four broker planes, and across incremental churn. The
// broker-level byte-identity of --admin-index linear vs index rests on
// this agreement (and on collapse_covering_indexed reproducing the
// reference pass's tie-breaks exactly, tested here at the strategy
// layer).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "src/routing/cover_index.hpp"
#include "src/routing/strategy.hpp"
#include "src/util/rng.hpp"

namespace rebeca::routing {
namespace {

using filter::Constraint;
using filter::Filter;
using filter::Value;

// ---------------------------------------------------------------------------
// Corpus generation: the same small universe as match_index_test, so
// covering relations actually occur.
// ---------------------------------------------------------------------------

const std::vector<std::string>& attr_pool() {
  static const std::vector<std::string> pool = {
      "service", "cost", "size", "location", "sym", "flag"};
  return pool;
}

Value random_value(util::Rng& rng) {
  switch (rng.index(6)) {
    case 0: return Value(static_cast<int>(rng.uniform_i64(-5, 20)));
    case 1: return Value(rng.uniform_real(-2.0, 12.0));
    case 2: return Value(static_cast<double>(rng.uniform_i64(-5, 20)));
    case 3: return Value("s" + std::to_string(rng.uniform_u64(0, 9)));
    case 4: return Value(rng.bernoulli(0.5));
    default:
      // Huge int64s past 2^53: the eq-bucket double normalization must
      // not conflate them (Value::equals is not transitive there).
      return Value(static_cast<std::int64_t>(
          (1LL << 53) + static_cast<std::int64_t>(rng.uniform_u64(0, 3))));
  }
}

Constraint random_constraint(util::Rng& rng) {
  switch (rng.index(10)) {
    case 0: return Constraint::any();
    case 1: return Constraint::eq(random_value(rng));
    case 2: return Constraint::ne(random_value(rng));
    case 3: return Constraint::lt(Value(static_cast<int>(rng.uniform_i64(-5, 20))));
    case 4: return Constraint::le(Value(rng.uniform_real(-2.0, 12.0)));
    case 5: return Constraint::gt(Value("s" + std::to_string(rng.uniform_u64(0, 9))));
    case 6: return Constraint::ge(Value(static_cast<int>(rng.uniform_i64(-5, 20))));
    case 7: {
      std::set<Value> values;
      const std::size_t n = 1 + rng.index(4);
      for (std::size_t i = 0; i < n; ++i) values.insert(random_value(rng));
      return Constraint::in_set(std::move(values));
    }
    case 8: return Constraint::prefix("s" + std::string(rng.bernoulli(0.5) ? "1" : ""));
    default: {
      const auto lo = static_cast<int>(rng.uniform_i64(-5, 10));
      const auto hi = lo + static_cast<int>(rng.uniform_u64(0, 10));
      return Constraint::range(Value(lo), Value(hi));
    }
  }
}

Filter random_filter(util::Rng& rng) {
  Filter f;
  const std::size_t n = rng.index(4);  // 0..3 constraints; 0 = cover-all
  for (std::size_t i = 0; i < n; ++i) {
    f.where(rng.pick(attr_pool()), random_constraint(rng));
  }
  return f;
}

// ---------------------------------------------------------------------------
// Engine level: covers_of / covered_by_of / overlapping == naive scans
// ---------------------------------------------------------------------------

struct NaiveEngine {
  std::map<std::uint32_t, Filter> live;

  [[nodiscard]] std::vector<std::uint32_t> covers_of(const Filter& f) const {
    std::vector<std::uint32_t> out;
    for (const auto& [slot, g] : live) {
      if (g.covers(f)) out.push_back(slot);
    }
    return out;
  }
  [[nodiscard]] std::vector<std::uint32_t> covered_by_of(const Filter& f) const {
    std::vector<std::uint32_t> out;
    for (const auto& [slot, g] : live) {
      if (f.covers(g)) out.push_back(slot);
    }
    return out;
  }
  [[nodiscard]] std::vector<std::uint32_t> overlapping(const Filter& f) const {
    std::vector<std::uint32_t> out;
    for (const auto& [slot, g] : live) {
      if (f.overlaps(g)) out.push_back(slot);
    }
    return out;
  }
};

void expect_engine_same(const CoverEngine& engine, const NaiveEngine& naive,
                        const Filter& probe) {
  std::vector<std::uint32_t> got;
  engine.covers_of(probe, got);
  EXPECT_EQ(naive.covers_of(probe), got)
      << "covers_of diverges on " << probe.to_string();
  engine.covered_by_of(probe, got);
  EXPECT_EQ(naive.covered_by_of(probe), got)
      << "covered_by_of diverges on " << probe.to_string();
  engine.overlapping(probe, got);
  EXPECT_EQ(naive.overlapping(probe), got)
      << "overlapping diverges on " << probe.to_string();
}

TEST(CoverEngine, AgreesWithLinearAcrossStrategies) {
  const Strategy strategies[] = {Strategy::flooding, Strategy::simple,
                                 Strategy::identity, Strategy::covering,
                                 Strategy::merging};
  util::Rng rng(20260808);
  for (std::uint64_t corpus = 0; corpus < 40; ++corpus) {
    std::vector<ForwardInput> inputs;
    const std::size_t subs = 1 + rng.index(24);
    for (std::size_t i = 0; i < subs; ++i) {
      inputs.push_back(
          {random_filter(rng),
           {SubKey{ClientId(static_cast<std::uint32_t>(i + 1)), 1}}});
    }
    for (const Strategy strategy : strategies) {
      // The engine's population is exactly the filters a broker's tables
      // would hold under this strategy.
      const ForwardSet fs = compute_forward_set(strategy, inputs);

      CoverEngine engine;
      NaiveEngine naive;
      std::vector<Filter> registered;
      for (const auto& [f, tags] : fs) {
        const std::uint32_t slot = engine.add_bulk(&f);
        naive.live[slot] = f;
        registered.push_back(f);
      }
      engine.finalize();

      // Probe with fresh random filters AND with every registered filter
      // (self-coverage, equivalence classes, exact-duplicate handling).
      for (std::size_t probe = 0; probe < 15; ++probe) {
        expect_engine_same(engine, naive, random_filter(rng));
      }
      for (const Filter& f : registered) expect_engine_same(engine, naive, f);
    }
  }
}

TEST(CoverEngine, IncrementalAddMatchesBulk) {
  util::Rng rng(7);
  for (std::uint64_t corpus = 0; corpus < 10; ++corpus) {
    std::vector<Filter> filters;
    const std::size_t n = 1 + rng.index(20);
    for (std::size_t i = 0; i < n; ++i) filters.push_back(random_filter(rng));

    CoverEngine bulk;
    for (const Filter& f : filters) bulk.add_bulk(&f);
    bulk.finalize();
    CoverEngine incremental;  // a fresh engine is finalized; add() keeps it so
    for (const Filter& f : filters) incremental.add(&f);

    std::vector<std::uint32_t> a, b;
    for (std::size_t probe = 0; probe < 20; ++probe) {
      const Filter p = random_filter(rng);
      bulk.covers_of(p, a);
      incremental.covers_of(p, b);
      EXPECT_EQ(a, b);
      bulk.covered_by_of(p, a);
      incremental.covered_by_of(p, b);
      EXPECT_EQ(a, b);
      bulk.overlapping(p, a);
      incremental.overlapping(p, b);
      EXPECT_EQ(a, b);
    }
  }
}

// ---------------------------------------------------------------------------
// Strategy level: the indexed collapse is byte-identical to the
// reference pass — including its deterministic equivalence tie-break.
// ---------------------------------------------------------------------------

TEST(CoverIndexStrategy, IndexedForwardSetEqualsLinear) {
  const Strategy strategies[] = {Strategy::flooding, Strategy::simple,
                                 Strategy::identity, Strategy::covering,
                                 Strategy::merging};
  util::Rng rng(314159);
  for (std::uint64_t corpus = 0; corpus < 60; ++corpus) {
    std::vector<ForwardInput> inputs;
    const std::size_t subs = rng.index(30);
    for (std::size_t i = 0; i < subs; ++i) {
      // Shared tag space so tag-union grouping is exercised too.
      inputs.push_back(
          {random_filter(rng),
           {SubKey{ClientId(static_cast<std::uint32_t>(rng.index(8) + 1)),
                   static_cast<std::uint32_t>(rng.index(3) + 1)}}});
    }
    for (const Strategy strategy : strategies) {
      const ForwardSet linear = compute_forward_set(strategy, inputs);
      const ForwardSet indexed =
          compute_forward_set(strategy, inputs, AdminIndex::index);
      EXPECT_EQ(linear, indexed)
          << "strategy " << strategy_name(strategy) << ", corpus " << corpus;
    }
  }
}

// ---------------------------------------------------------------------------
// Broker-plane level: CoverIndex consumer queries under churn
// ---------------------------------------------------------------------------

struct NaiveIndex {
  std::map<LinkId, std::map<Filter, std::set<SubKey>>> remote;
  std::map<SubKey, std::pair<Filter, bool>> locals;    // filter, is_ld
  std::map<SubKey, std::pair<Filter, bool>> virtuals;  // filter, is_ld
  std::map<SubKey, std::pair<LinkId, Filter>> transits;

  // Mirrors Broker::answer_reexpose's linear arm: identity-collapse of
  // collect_inputs_excluding, then routing::covered_by.
  [[nodiscard]] ForwardSet covered_inputs(const Filter& f,
                                          LinkId exclude) const {
    ForwardSet inputs;
    for (const auto& [link, fs] : remote) {
      if (link == exclude) continue;
      for (const auto& [g, tags] : fs) {
        inputs[g].insert(tags.begin(), tags.end());
      }
    }
    for (const auto& [key, ent] : locals) {
      if (!ent.second) inputs[ent.first].insert(key);
    }
    for (const auto& [key, ent] : virtuals) {
      if (!ent.second) inputs[ent.first].insert(key);
    }
    return covered_by(f, inputs);
  }

  [[nodiscard]] std::vector<LinkId> covering_links(const Filter& f,
                                                   LinkId exclude) const {
    std::vector<LinkId> out;
    for (const auto& [link, fs] : remote) {
      if (link == exclude) continue;
      for (const auto& [g, tags] : fs) {
        if (g.covers(f)) {
          out.push_back(link);
          break;
        }
      }
    }
    return out;
  }

  [[nodiscard]] std::vector<LinkId> links_serving(const SubKey& key,
                                                  LinkId exclude) const {
    std::vector<LinkId> out;
    for (const auto& [link, fs] : remote) {
      if (link == exclude) continue;
      for (const auto& [g, tags] : fs) {
        if (tags.count(key) != 0) {
          out.push_back(link);
          break;
        }
      }
    }
    return out;
  }

  [[nodiscard]] std::vector<MoveoutCandidate> tagged_filters(
      LinkId link, const SubKey& key) const {
    std::vector<MoveoutCandidate> out;
    auto it = remote.find(link);
    if (it == remote.end()) return out;
    for (const auto& [f, tags] : it->second) {
      if (tags.count(key) != 0) out.push_back({f, tags.size()});
    }
    return out;
  }

  [[nodiscard]] std::vector<Filter> overlapping_filters(const Filter& f) const {
    std::vector<Filter> out;
    const auto consider = [&](const Filter& g) {
      if (f.overlaps(g)) out.push_back(g);
    };
    for (const auto& [link, fs] : remote) {
      for (const auto& [g, tags] : fs) consider(g);
    }
    for (const auto& [key, ent] : locals) consider(ent.first);
    for (const auto& [key, ent] : virtuals) consider(ent.first);
    for (const auto& [key, ent] : transits) consider(ent.second);
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  }
};

void expect_index_same(const CoverIndex& index, const NaiveIndex& naive,
                       const Filter& probe, const SubKey& probe_key,
                       LinkId exclude) {
  EXPECT_EQ(naive.covered_inputs(probe, exclude),
            index.covered_inputs(probe, exclude))
      << "covered_inputs diverges on " << probe.to_string();
  std::vector<LinkId> links;
  index.covering_links(probe, exclude, links);
  EXPECT_EQ(naive.covering_links(probe, exclude), links)
      << "covering_links diverges on " << probe.to_string();
  index.links_serving(probe_key, exclude, links);
  EXPECT_EQ(naive.links_serving(probe_key, exclude), links);
  for (std::uint32_t l = 1; l <= 3; ++l) {
    const auto want = naive.tagged_filters(LinkId(l), probe_key);
    const auto got = index.tagged_filters(LinkId(l), probe_key);
    ASSERT_EQ(want.size(), got.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(want[i].f, got[i].f);
      EXPECT_EQ(want[i].tag_count, got[i].tag_count);
    }
  }
  EXPECT_EQ(naive.overlapping_filters(probe), index.overlapping_filters(probe))
      << "overlapping_filters diverges on " << probe.to_string();
}

TEST(CoverIndex, AgreesWithLinearUnderChurn) {
  util::Rng rng(42);
  CoverIndex index;
  NaiveIndex naive;
  std::vector<std::pair<LinkId, Filter>> live_remote;
  std::uint32_t next_key = 1;
  std::vector<SubKey> live_locals, live_virtuals, live_transits;
  std::vector<SubKey> key_pool;
  for (std::uint32_t k = 1; k <= 12; ++k) {
    key_pool.push_back(SubKey{ClientId(k), 1});
  }

  const auto random_tags = [&](util::Rng& r) {
    std::set<SubKey> tags;
    const std::size_t n = 1 + r.index(3);
    for (std::size_t i = 0; i < n; ++i) tags.insert(r.pick(key_pool));
    return tags;
  };

  for (std::size_t step = 0; step < 2000; ++step) {
    switch (rng.index(10)) {
      case 0: {  // upsert remote (fresh entry or tag-replace)
        const LinkId link(static_cast<std::uint32_t>(rng.uniform_u64(1, 3)));
        const bool fresh = live_remote.empty() || rng.bernoulli(0.6);
        const Filter f = fresh ? random_filter(rng) : rng.pick(live_remote).second;
        const auto tags = random_tags(rng);
        index.upsert_remote(link, f, tags);
        auto& slot = naive.remote[link][f];
        if (slot.empty() &&
            std::find(live_remote.begin(), live_remote.end(),
                      std::make_pair(link, f)) == live_remote.end()) {
          live_remote.emplace_back(link, f);
        }
        slot = tags;
        break;
      }
      case 1: {  // untag remote
        if (live_remote.empty()) break;
        const auto [link, f] = rng.pick(live_remote);
        const SubKey key = rng.pick(key_pool);
        index.untag_remote(link, f, key);
        naive.remote[link][f].erase(key);
        break;
      }
      case 2: {  // remove remote
        if (live_remote.empty()) break;
        const std::size_t i = rng.index(live_remote.size());
        const auto [link, f] = live_remote[i];
        live_remote.erase(live_remote.begin() + static_cast<std::ptrdiff_t>(i));
        index.remove_remote(link, f);
        naive.remote[link].erase(f);
        if (naive.remote[link].empty()) naive.remote.erase(link);
        break;
      }
      case 3: {  // add/replace local
        const SubKey key{ClientId(next_key++), 1};
        const Filter f = random_filter(rng);
        const bool ld = rng.bernoulli(0.25);
        index.upsert_local(key, f, ld);
        naive.locals[key] = {f, ld};
        live_locals.push_back(key);
        break;
      }
      case 4: {  // remove local
        if (live_locals.empty()) break;
        const std::size_t i = rng.index(live_locals.size());
        index.remove_local(live_locals[i]);
        naive.locals.erase(live_locals[i]);
        live_locals.erase(live_locals.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
      case 5: {  // add/replace virtual
        const SubKey key{ClientId(next_key++), 2};
        const Filter f = random_filter(rng);
        const bool ld = rng.bernoulli(0.25);
        index.upsert_virtual(key, f, ld);
        naive.virtuals[key] = {f, ld};
        live_virtuals.push_back(key);
        break;
      }
      case 6: {  // remove virtual
        if (live_virtuals.empty()) break;
        const std::size_t i = rng.index(live_virtuals.size());
        index.remove_virtual(live_virtuals[i]);
        naive.virtuals.erase(live_virtuals[i]);
        live_virtuals.erase(live_virtuals.begin() +
                            static_cast<std::ptrdiff_t>(i));
        break;
      }
      case 7: {  // upsert transit (fresh or re-pointed)
        const bool fresh = live_transits.empty() || rng.bernoulli(0.5);
        const SubKey key = fresh ? SubKey{ClientId(next_key++), 3}
                                 : rng.pick(live_transits);
        const LinkId toward(static_cast<std::uint32_t>(rng.uniform_u64(1, 3)));
        const Filter f = random_filter(rng);
        index.upsert_transit(key, toward, f);
        naive.transits[key] = {toward, f};
        if (fresh) live_transits.push_back(key);
        break;
      }
      case 8: {  // remove transit
        if (live_transits.empty()) break;
        const std::size_t i = rng.index(live_transits.size());
        index.remove_transit(live_transits[i]);
        naive.transits.erase(live_transits[i]);
        live_transits.erase(live_transits.begin() +
                            static_cast<std::ptrdiff_t>(i));
        break;
      }
      default: {  // probe
        const Filter probe = random_filter(rng);
        const SubKey probe_key = rng.pick(key_pool);
        const LinkId exclude(
            static_cast<std::uint32_t>(rng.uniform_u64(0, 3)));
        expect_index_same(index, naive, probe, probe_key, exclude);
        break;
      }
    }
  }
  // Final sweep: drain everything and verify emptiness.
  for (const auto& [link, f] : live_remote) index.remove_remote(link, f);
  for (const SubKey& k : live_locals) index.remove_local(k);
  for (const SubKey& k : live_virtuals) index.remove_virtual(k);
  for (const SubKey& k : live_transits) index.remove_transit(k);
  EXPECT_EQ(index.entry_count(), 0u);
  EXPECT_TRUE(index.covered_inputs(random_filter(rng), LinkId{}).empty());
}

// ---------------------------------------------------------------------------
// Targeted edges the generators may hit rarely
// ---------------------------------------------------------------------------

TEST(CoverEngine, EmptyFilterCoversEverything) {
  // An empty filter covers every filter and is covered only by empty
  // filters; it overlaps everything.
  Filter empty;
  Filter narrow;
  narrow.where("x", Constraint::eq(1));
  CoverEngine engine;
  const std::uint32_t se = engine.add(&empty);
  const std::uint32_t sn = engine.add(&narrow);

  std::vector<std::uint32_t> out;
  engine.covered_by_of(empty, out);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{se, sn}));
  engine.covers_of(empty, out);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{se}));
  engine.covers_of(narrow, out);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{se, sn}));
  engine.overlapping(empty, out);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{se, sn}));
}

TEST(CoverEngine, HugeInt64EqualityIsExact) {
  // 2^53 and 2^53 + 1 share a double-normalized bucket key; covering
  // must still tell them apart via the exact operands.
  const std::int64_t base = 1LL << 53;
  Filter fa;
  fa.where("x", Constraint::eq(Value(base)));
  Filter fb;
  fb.where("x", Constraint::eq(Value(base + 1)));
  CoverEngine engine;
  const std::uint32_t sa = engine.add(&fa);
  engine.add(&fb);

  std::vector<std::uint32_t> out;
  engine.covers_of(fa, out);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{sa}));
  Filter in_both;
  in_both.where("x", Constraint::in_set({Value(base), Value(base + 1)}));
  engine.covered_by_of(in_both, out);
  EXPECT_EQ(out.size(), 2u);  // the set covers both point filters
  engine.covers_of(in_both, out);
  EXPECT_TRUE(out.empty());  // neither point covers the two-point set
}

TEST(CoverEngine, PointRangeActsAsEquality) {
  // range(5, 5) admits exactly one value: it is covered by eq(5) and
  // covers it.
  Filter point;
  point.where("x", Constraint::range(Value(5), Value(5)));
  Filter eq5;
  eq5.where("x", Constraint::eq(5));
  CoverEngine engine;
  const std::uint32_t sp = engine.add(&point);
  const std::uint32_t se = engine.add(&eq5);

  std::vector<std::uint32_t> out;
  engine.covers_of(eq5, out);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{sp, se}));
  engine.covered_by_of(eq5, out);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{sp, se}));
}

TEST(CoverIndex, RemoteUpsertReplacesTags) {
  CoverIndex index;
  Filter f;
  f.where("sym", Constraint::prefix("A"));
  const SubKey k1{ClientId(1), 1};
  const SubKey k2{ClientId(2), 1};
  index.upsert_remote(LinkId(1), f, {k1, k2});
  index.upsert_remote(LinkId(1), f, {k2});  // tag-only upsert drops k1

  std::vector<LinkId> links;
  index.links_serving(k1, LinkId{}, links);
  EXPECT_TRUE(links.empty());
  index.links_serving(k2, LinkId{}, links);
  EXPECT_EQ(links, std::vector<LinkId>{LinkId(1)});
  EXPECT_EQ(index.entry_count(), 1u);
  index.remove_remote(LinkId(1), f);
  index.links_serving(k2, LinkId{}, links);
  EXPECT_TRUE(links.empty());
  EXPECT_EQ(index.entry_count(), 0u);
}

}  // namespace
}  // namespace rebeca::routing
