// Workload generators and QoS checkers.
#include <gtest/gtest.h>

#include <cmath>

#include "tests/scenario_world.hpp"

namespace rebeca {
namespace {

using scenario::TopologySpec;

struct World : testutil::World {
  World() : testutil::World(TopologySpec::chain(2)) {}
};

TEST(Publisher, PeriodicRateIsExact) {
  World w;
  client::ClientConfig cc;
  cc.id = ClientId(1);
  client::Client producer(w.sim, cc);
  w.overlay.connect_client(producer, 0);

  workload::PublisherConfig pc;
  pc.rate = workload::RateModel::periodic(sim::millis(100));
  workload::Publisher pub(w.sim, producer, pc);
  pub.start();
  w.sim.run_until(sim::seconds(10));
  pub.stop();
  EXPECT_EQ(pub.published(), 100u);
}

TEST(Publisher, PoissonRateApproximatelyCorrect) {
  World w;
  client::ClientConfig cc;
  cc.id = ClientId(1);
  client::Client producer(w.sim, cc);
  w.overlay.connect_client(producer, 0);

  workload::PublisherConfig pc;
  pc.rate = workload::RateModel::poisson(sim::millis(10));
  pc.seed = 5;
  workload::Publisher pub(w.sim, producer, pc);
  pub.start();
  w.sim.run_until(sim::seconds(60));
  pub.stop();
  // 60s at 100/s: within 10%.
  EXPECT_NEAR(static_cast<double>(pub.published()), 6000.0, 600.0);
}

TEST(Publisher, MaxCountStops) {
  World w;
  client::ClientConfig cc;
  cc.id = ClientId(1);
  client::Client producer(w.sim, cc);
  w.overlay.connect_client(producer, 0);

  workload::PublisherConfig pc;
  pc.rate = workload::RateModel::periodic(sim::millis(1));
  pc.max_count = 17;
  workload::Publisher pub(w.sim, producer, pc);
  pub.start();
  w.sim.run_until(sim::seconds(5));
  EXPECT_EQ(pub.published(), 17u);
}

TEST(Publisher, StampsLocationsUniformly) {
  World w;
  auto graph = location::LocationGraph::line(4);
  client::ClientConfig cc;
  cc.id = ClientId(1);
  client::Client producer(w.sim, cc);
  w.overlay.connect_client(producer, 0);

  client::ClientConfig sc;
  sc.id = ClientId(2);
  client::Client sink(w.sim, sc);
  w.overlay.connect_client(sink, 1);
  sink.subscribe(filter::Filter());

  workload::PublisherConfig pc;
  pc.rate = workload::RateModel::periodic(sim::millis(1));
  pc.locations = &graph;
  pc.seed = 11;
  pc.max_count = 4000;
  workload::Publisher pub(w.sim, producer, pc);
  pub.start();
  w.sim.run_until(sim::seconds(10));

  std::map<std::string, int> histogram;
  for (const auto& d : sink.deliveries()) {
    histogram[d.notification.get("location")->as_string()] += 1;
  }
  ASSERT_EQ(histogram.size(), 4u);
  for (const auto& [loc, count] : histogram) {
    EXPECT_NEAR(count, 1000, 120) << loc;  // uniform within ~4 sigma
  }
}

TEST(LogicalMover, WalksOnlyAlongEdges) {
  World w;
  auto graph = location::LocationGraph::ring(6);
  client::ClientConfig cc;
  cc.id = ClientId(1);
  cc.locations = &graph;
  client::Client consumer(w.sim, cc);
  w.overlay.connect_client(consumer, 0);
  consumer.move_to("r0");

  std::vector<LocationId> trail{consumer.location()};
  workload::LogicalMoverConfig mc;
  mc.locations = &graph;
  mc.delta = sim::millis(100);
  mc.seed = 3;
  workload::LogicalMover mover(w.sim, consumer, mc);
  mover.start();
  for (int i = 0; i < 50; ++i) {
    w.sim.run_until(w.sim.now() + sim::millis(100));
    if (trail.back() != consumer.location()) trail.push_back(consumer.location());
  }
  mover.stop();
  EXPECT_GT(trail.size(), 10u);
  for (std::size_t i = 1; i < trail.size(); ++i) {
    const auto& nbrs = graph.neighbors(trail[i - 1]);
    EXPECT_NE(std::find(nbrs.begin(), nbrs.end(), trail[i]), nbrs.end())
        << "teleport from " << graph.name(trail[i - 1]) << " to "
        << graph.name(trail[i]);
  }
}

TEST(LogicalMover, MaxMovesRespected) {
  World w;
  auto graph = location::LocationGraph::line(5);
  client::ClientConfig cc;
  cc.id = ClientId(1);
  cc.locations = &graph;
  client::Client consumer(w.sim, cc);
  w.overlay.connect_client(consumer, 0);
  consumer.move_to("l0");

  workload::LogicalMoverConfig mc;
  mc.locations = &graph;
  mc.delta = sim::millis(10);
  mc.max_moves = 7;
  workload::LogicalMover mover(w.sim, consumer, mc);
  mover.start();
  w.sim.run_until(sim::seconds(5));
  EXPECT_EQ(mover.moves(), 7u);
}

TEST(PhysicalMover, RoamsTheItinerary) {
  testutil::World w(TopologySpec::chain(4));
  client::Client& consumer = w.add_client(1, 0);
  consumer.subscribe(filter::Filter());

  workload::PhysicalMoverConfig pm;
  pm.itinerary = {1, 2, 3};
  pm.dwell = sim::millis(500);
  pm.gap = sim::millis(100);
  pm.max_hops = 3;
  workload::PhysicalMover mover(w.overlay, consumer, pm);
  mover.start();
  w.settle(5.0);
  EXPECT_EQ(mover.hops(), 3u);
  EXPECT_TRUE(consumer.connected());
}

TEST(PhysicalMover, RandomWaypointVisitsManyBrokers) {
  testutil::World w(TopologySpec::chain(6));
  client::Client& consumer = w.add_client(1, 0);
  consumer.subscribe(filter::Filter());

  workload::PhysicalMoverConfig pm;
  pm.random_waypoint = true;
  pm.seed = 42;
  pm.dwell = sim::millis(200);
  pm.gap = sim::millis(50);
  pm.max_hops = 20;
  workload::PhysicalMover mover(w.overlay, consumer, pm);
  mover.start();
  w.settle(10.0);
  EXPECT_EQ(mover.hops(), 20u);
  EXPECT_TRUE(consumer.connected());
}

TEST(LogicalMover, ScriptedWaypointsFollowRoute) {
  auto graph = location::LocationGraph::line(5);
  testutil::World w(TopologySpec::chain(2), {}, 1, &graph);
  client::Client& consumer = w.add_client(1, 0);
  consumer.move_to("l0");

  std::vector<LocationId> trail;
  workload::LogicalMoverConfig mc;
  mc.locations = &graph;
  mc.waypoints = {graph.id_of("l1"), graph.id_of("l2"), graph.id_of("l3")};
  mc.delta = sim::millis(100);
  mc.max_moves = 3;
  workload::LogicalMover mover(w.sim, consumer, mc);
  mover.start();
  for (int i = 0; i < 5; ++i) {
    w.sim.run_until(w.sim.now() + sim::millis(100));
    if (trail.empty() || trail.back() != consumer.location()) {
      trail.push_back(consumer.location());
    }
  }
  EXPECT_EQ(mover.moves(), 3u);
  EXPECT_EQ(trail, (std::vector<LocationId>{graph.id_of("l1"), graph.id_of("l2"),
                                            graph.id_of("l3")}));
}

// ---------------------------------------------------------------------------
// Checkers
// ---------------------------------------------------------------------------

client::Delivery make_delivery(std::uint64_t nid, std::uint32_t producer,
                               std::uint64_t pseq) {
  client::Delivery d;
  d.notification.stamp(NotificationId(nid), ClientId(producer), pseq, 0);
  return d;
}

TEST(Checkers, ExactlyOnceDetectsMissing) {
  std::vector<client::Delivery> log{make_delivery(1, 1, 1), make_delivery(3, 1, 3)};
  std::vector<NotificationId> expected{NotificationId(1), NotificationId(2),
                                       NotificationId(3)};
  auto rep = metrics::check_exactly_once(log, expected);
  EXPECT_EQ(rep.missing, 1u);
  EXPECT_EQ(rep.duplicates, 0u);
  EXPECT_FALSE(rep.exactly_once());
  ASSERT_EQ(rep.missing_ids.size(), 1u);
  EXPECT_EQ(rep.missing_ids[0], NotificationId(2));
}

TEST(Checkers, ExactlyOnceDetectsDuplicates) {
  std::vector<client::Delivery> log{make_delivery(1, 1, 1), make_delivery(1, 1, 1),
                                    make_delivery(1, 1, 1)};
  auto rep = metrics::check_exactly_once(log, {NotificationId(1)});
  EXPECT_EQ(rep.duplicates, 2u);
  EXPECT_FALSE(rep.exactly_once());
}

TEST(Checkers, ExactlyOncePasses) {
  std::vector<client::Delivery> log{make_delivery(1, 1, 1), make_delivery(2, 1, 2)};
  auto rep = metrics::check_exactly_once(
      log, {NotificationId(1), NotificationId(2)});
  EXPECT_TRUE(rep.exactly_once());
}

TEST(Checkers, FifoDetectsReorder) {
  std::vector<client::Delivery> log{make_delivery(2, 1, 2), make_delivery(1, 1, 1)};
  auto rep = metrics::check_sender_fifo(log);
  EXPECT_EQ(rep.violations, 1u);
}

TEST(Checkers, FifoPerProducerIndependent) {
  // Interleaving producers is fine; only per-producer order matters.
  std::vector<client::Delivery> log{make_delivery(10, 1, 1), make_delivery(20, 2, 1),
                                    make_delivery(11, 1, 2), make_delivery(21, 2, 2)};
  EXPECT_TRUE(metrics::check_sender_fifo(log).ok());
}

TEST(Checkers, FifoAllowsGaps) {
  std::vector<client::Delivery> log{make_delivery(1, 1, 1), make_delivery(5, 1, 5)};
  EXPECT_TRUE(metrics::check_sender_fifo(log).ok());
}

TEST(Checkers, BlackoutFindsFirstPostReferenceDelivery) {
  std::vector<client::Delivery> log;
  auto d1 = make_delivery(1, 1, 1);
  d1.notification.stamp(NotificationId(1), ClientId(1), 1, sim::millis(50));
  d1.delivered_at = sim::millis(60);
  auto d2 = make_delivery(2, 1, 2);
  d2.notification.stamp(NotificationId(2), ClientId(1), 2, sim::millis(150));
  d2.delivered_at = sim::millis(170);
  log.push_back(d1);
  log.push_back(d2);

  auto rep = metrics::analyze_blackout(log, sim::millis(100));
  EXPECT_TRUE(rep.any_delivery);
  EXPECT_EQ(rep.first_published_offset, sim::millis(50));
  EXPECT_EQ(rep.first_delivered_offset, sim::millis(70));
}

TEST(Checkers, BlackoutEmptyWhenNothingAfterReference) {
  std::vector<client::Delivery> log{make_delivery(1, 1, 1)};
  auto rep = metrics::analyze_blackout(log, sim::seconds(10));
  EXPECT_FALSE(rep.any_delivery);
}

}  // namespace
}  // namespace rebeca
