// Whole-system determinism: two runs with identical seeds must produce
// bit-identical delivery logs and message counts — the property the
// experiment harness's reference-run comparisons rest on (DESIGN.md
// decision 1).
#include <gtest/gtest.h>

#include <memory>

#include "src/broker/overlay.hpp"
#include "src/client/client.hpp"
#include "src/net/topology.hpp"
#include "src/workload/mover.hpp"
#include "src/scenario/scenario.hpp"
#include "src/workload/publisher.hpp"

namespace rebeca {
namespace {

using client::Client;
using client::ClientConfig;

struct RunResult {
  std::vector<std::tuple<std::uint64_t, std::uint64_t, sim::TimePoint>> log;
  std::uint64_t total_messages = 0;
};

RunResult run_system(std::uint64_t seed) {
  auto graph = location::LocationGraph::grid(5, 5);
  sim::Simulation sim(seed);
  broker::OverlayConfig cfg;
  cfg.broker.locations = &graph;
  util::Rng topo_rng(seed + 99);
  broker::Overlay overlay(sim, net::Topology::random_tree(9, topo_rng), cfg);

  ClientConfig cc;
  cc.id = ClientId(1);
  cc.locations = &graph;
  Client consumer(sim, cc);
  overlay.connect_client(consumer, 0);
  consumer.move_to("g0_0");
  consumer.subscribe(filter::Filter().where("sym", filter::Constraint::eq("X")));
  location::LdSpec spec;
  spec.vicinity_radius = 1;
  spec.profile = location::UncertaintyProfile::global_resub();
  consumer.subscribe(spec);

  ClientConfig pc;
  pc.id = ClientId(2);
  Client producer(sim, pc);
  overlay.connect_client(producer, 8);
  workload::PublisherConfig wc;
  wc.rate = workload::RateModel::poisson(sim::millis(15));
  wc.prototype = filter::Notification().set("sym", "X");
  wc.locations = &graph;
  wc.seed = seed * 3;
  workload::Publisher pub(sim, producer, wc);

  workload::LogicalMoverConfig mc;
  mc.locations = &graph;
  mc.delta = sim::millis(300);
  mc.exponential_residence = true;
  mc.seed = seed * 7;
  workload::LogicalMover mover(sim, consumer, mc);

  sim.run_until(sim::seconds(1));
  pub.start();
  mover.start();
  // Roam physically too, with delays drawn from the sim RNG (stochastic
  // link delays exercise the FIFO clamp).
  sim.schedule_at(sim::seconds(2), [&] { consumer.detach_silently(); });
  sim.schedule_at(sim::seconds(2.4), [&] { overlay.connect_client(consumer, 4); });
  sim.run_until(sim::seconds(6));
  pub.stop();
  mover.stop();
  sim.run_until(sim::seconds(20));

  RunResult r;
  for (const auto& d : consumer.deliveries()) {
    r.log.emplace_back(d.notification.id().value(), d.seq, d.delivered_at);
  }
  r.total_messages = overlay.counters().total();
  return r;
}

class Determinism : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Determinism, IdenticalSeedsIdenticalRuns) {
  const auto a = run_system(GetParam());
  const auto b = run_system(GetParam());
  EXPECT_EQ(a.log, b.log);
  EXPECT_EQ(a.total_messages, b.total_messages);
  EXPECT_FALSE(a.log.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, Determinism,
                         ::testing::Values(1, 7, 42, 1337));

TEST(Determinism, DifferentSeedsDiverge) {
  const auto a = run_system(1);
  const auto b = run_system(2);
  EXPECT_NE(a.log, b.log);
}

// ---------------------------------------------------------------------------
// Sharded execution: the engine contract is byte-identical ScenarioReports
// for any shard count AND any broker placement, per seed.
// ---------------------------------------------------------------------------

void declare_sharded_workload(scenario::ScenarioBuilder& b) {
  b.topology(scenario::TopologySpec::random_tree(12));
  b.locations(scenario::LocationSpec::grid(4, 4));
  b.broker_link_delay(sim::DelayModel::uniform(sim::millis(3), sim::millis(7)));
  b.client_link_delay(
      sim::DelayModel::uniform(sim::micros(500), sim::micros(1500)));

  // A static-filter consumer roaming across brokers (relocation protocol
  // crosses shard boundaries, including replay).
  b.client("roamer")
      .with_id(1)
      .at_broker(3)
      .subscribes(filter::Filter().where("sym", filter::Constraint::eq("X")))
      .roams(scenario::RoamSpec()
                 .route({1, 7, 11, 3})
                 .dwelling(sim::millis(400))
                 .dark_for(sim::millis(120))
                 .from_phase("traffic"));
  // A location-dependent walker (LD propagation + client-side filter).
  location::LdSpec ld;
  ld.vicinity_radius = 1;
  ld.profile = location::UncertaintyProfile::global_resub();
  b.client("walker")
      .with_id(2)
      .at_broker(8)
      .starts_at("g0_0")
      .subscribes(ld)
      .walks(scenario::WalkSpec()
                 .residing(sim::millis(250))
                 .exponential_residence()
                 .from_phase("traffic"));
  b.client("producer_x")
      .with_id(3)
      .at_broker(0)
      .publishes(scenario::PublishSpec()
                     .poisson(sim::millis(10))
                     .body(filter::Notification().set("sym", "X"))
                     .from_phase("traffic")
                     .until_phase_end("traffic"));
  b.client("producer_loc")
      .with_id(4)
      .at_broker(5)
      .publishes(scenario::PublishSpec()
                     .every(sim::millis(15))
                     .body(filter::Notification().set("service", "s"))
                     .uniform_locations()
                     .from_phase("traffic")
                     .until_phase_end("traffic"));
  b.phase("settle", sim::millis(500));
  b.phase("traffic", sim::seconds(2));
  b.phase("drain", sim::seconds(3));
}

std::string run_sharded(std::uint64_t seed, std::size_t shards,
                        std::vector<std::size_t> assignment = {}) {
  scenario::ScenarioBuilder b;
  declare_sharded_workload(b);
  b.seed(seed).shards(shards);
  if (!assignment.empty()) b.shard_assignment(std::move(assignment));
  auto s = b.build();
  s->run();
  return s->report().to_string();
}

class ShardDeterminism : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ShardDeterminism, ReportIsByteIdenticalAcrossShardCounts) {
  const std::uint64_t seed = GetParam();
  const std::string one = run_sharded(seed, 1);
  const std::string two = run_sharded(seed, 2);
  const std::string four = run_sharded(seed, 4);
  EXPECT_EQ(one, two) << "shards=1 vs shards=2 diverged (seed " << seed << ")";
  EXPECT_EQ(one, four) << "shards=1 vs shards=4 diverged (seed " << seed << ")";

  // The workload really ran (a vacuous report would pass trivially).
  scenario::ScenarioBuilder b;
  declare_sharded_workload(b);
  b.seed(seed).shards(4);
  auto s = b.build();
  s->run();
  const scenario::ScenarioReport r = s->report();
  EXPECT_GT(r.published, 100u);
  EXPECT_GT(r.delivered, 100u);
  EXPECT_EQ(r.to_string(), one) << "struct report diverged from string runs";
}

TEST_P(ShardDeterminism, ReportIsByteIdenticalAcrossPlacements) {
  // Same shard count, different broker placement: keys are minted from
  // lane ids, never shard ids, so even the partition must not matter.
  const std::uint64_t seed = GetParam();
  const std::string greedy = run_sharded(seed, 4);
  const std::string striped =
      run_sharded(seed, 4, {0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3});
  EXPECT_EQ(greedy, striped);
}

TEST_P(ShardDeterminism, RepeatedShardedRunsAreIdentical) {
  const std::uint64_t seed = GetParam();
  EXPECT_EQ(run_sharded(seed, 4), run_sharded(seed, 4));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardDeterminism, ::testing::Values(1, 7, 42));

TEST(ShardDeterminism, DifferentSeedsDiverge) {
  EXPECT_NE(run_sharded(1, 2), run_sharded(2, 2));
}

}  // namespace
}  // namespace rebeca
