// Whole-system determinism: two runs with identical seeds must produce
// bit-identical delivery logs and message counts — the property the
// experiment harness's reference-run comparisons rest on (DESIGN.md
// decision 1).
#include <gtest/gtest.h>

#include <memory>

#include "src/broker/overlay.hpp"
#include "src/client/client.hpp"
#include "src/net/topology.hpp"
#include "src/workload/mover.hpp"
#include "src/workload/publisher.hpp"

namespace rebeca {
namespace {

using client::Client;
using client::ClientConfig;

struct RunResult {
  std::vector<std::tuple<std::uint64_t, std::uint64_t, sim::TimePoint>> log;
  std::uint64_t total_messages = 0;
};

RunResult run_system(std::uint64_t seed) {
  auto graph = location::LocationGraph::grid(5, 5);
  sim::Simulation sim(seed);
  broker::OverlayConfig cfg;
  cfg.broker.locations = &graph;
  util::Rng topo_rng(seed + 99);
  broker::Overlay overlay(sim, net::Topology::random_tree(9, topo_rng), cfg);

  ClientConfig cc;
  cc.id = ClientId(1);
  cc.locations = &graph;
  Client consumer(sim, cc);
  overlay.connect_client(consumer, 0);
  consumer.move_to("g0_0");
  consumer.subscribe(filter::Filter().where("sym", filter::Constraint::eq("X")));
  location::LdSpec spec;
  spec.vicinity_radius = 1;
  spec.profile = location::UncertaintyProfile::global_resub();
  consumer.subscribe(spec);

  ClientConfig pc;
  pc.id = ClientId(2);
  Client producer(sim, pc);
  overlay.connect_client(producer, 8);
  workload::PublisherConfig wc;
  wc.rate = workload::RateModel::poisson(sim::millis(15));
  wc.prototype = filter::Notification().set("sym", "X");
  wc.locations = &graph;
  wc.seed = seed * 3;
  workload::Publisher pub(sim, producer, wc);

  workload::LogicalMoverConfig mc;
  mc.locations = &graph;
  mc.delta = sim::millis(300);
  mc.exponential_residence = true;
  mc.seed = seed * 7;
  workload::LogicalMover mover(sim, consumer, mc);

  sim.run_until(sim::seconds(1));
  pub.start();
  mover.start();
  // Roam physically too, with delays drawn from the sim RNG (stochastic
  // link delays exercise the FIFO clamp).
  sim.schedule_at(sim::seconds(2), [&] { consumer.detach_silently(); });
  sim.schedule_at(sim::seconds(2.4), [&] { overlay.connect_client(consumer, 4); });
  sim.run_until(sim::seconds(6));
  pub.stop();
  mover.stop();
  sim.run_until(sim::seconds(20));

  RunResult r;
  for (const auto& d : consumer.deliveries()) {
    r.log.emplace_back(d.notification.id().value(), d.seq, d.delivered_at);
  }
  r.total_messages = overlay.counters().total();
  return r;
}

class Determinism : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Determinism, IdenticalSeedsIdenticalRuns) {
  const auto a = run_system(GetParam());
  const auto b = run_system(GetParam());
  EXPECT_EQ(a.log, b.log);
  EXPECT_EQ(a.total_messages, b.total_messages);
  EXPECT_FALSE(a.log.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, Determinism,
                         ::testing::Values(1, 7, 42, 1337));

TEST(Determinism, DifferentSeedsDiverge) {
  const auto a = run_system(1);
  const auto b = run_system(2);
  EXPECT_NE(a.log, b.log);
}

}  // namespace
}  // namespace rebeca
