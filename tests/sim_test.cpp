// Simulation kernel: event ordering, determinism, cancellation, and the
// FIFO property of links under stochastic delays.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "src/net/link.hpp"
#include "src/sim/delay_model.hpp"
#include "src/sim/simulation.hpp"

namespace rebeca {
namespace {

TEST(Simulation, StartsAtTimeZero) {
  sim::Simulation s;
  EXPECT_EQ(s.now(), 0);
  EXPECT_TRUE(s.empty());
}

// ---------------------------------------------------------------------------
// EventFn: the SBO callable behind every event record
// ---------------------------------------------------------------------------

TEST(EventFn, InvokesSmallCaptures) {
  int hits = 0;
  sim::EventFn fn([&hits] { ++hits; });
  ASSERT_TRUE(static_cast<bool>(fn));
  fn();
  EXPECT_EQ(hits, 1);
}

TEST(EventFn, MoveTransfersOwnership) {
  auto flag = std::make_shared<int>(0);
  sim::EventFn a([flag] { ++*flag; });
  EXPECT_EQ(flag.use_count(), 2);
  sim::EventFn b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT: moved-from state on purpose
  EXPECT_EQ(flag.use_count(), 2);      // exactly one live copy of the closure
  b();
  EXPECT_EQ(*flag, 1);
}

TEST(EventFn, MoveOnlyCapturesWork) {
  auto owned = std::make_unique<int>(7);
  int seen = 0;
  sim::EventFn fn([&seen, p = std::move(owned)] { seen = *p; });
  sim::EventFn moved = std::move(fn);
  moved();
  EXPECT_EQ(seen, 7);
}

TEST(EventFn, LargeCapturesFallBackToHeap) {
  struct Big {
    std::array<std::uint64_t, 16> payload{};  // 128 bytes > kInlineSize
  };
  static_assert(sizeof(Big) > sim::EventFn::kInlineSize);
  Big big;
  big.payload[3] = 42;
  std::uint64_t seen = 0;
  sim::EventFn fn([&seen, big] { seen = big.payload[3]; });
  sim::EventFn moved = std::move(fn);
  sim::EventFn assigned;
  assigned = std::move(moved);
  assigned();
  EXPECT_EQ(seen, 42u);
}

TEST(EventFn, DestroysCaptureExactlyOnce) {
  auto flag = std::make_shared<int>(0);
  {
    sim::EventFn fn([flag] {});
    sim::EventFn other = std::move(fn);
    other = sim::EventFn([] {});  // move-assign over a live closure
  }
  EXPECT_EQ(flag.use_count(), 1);  // every copy released
}

TEST(Simulation, ExecutesEventsInTimeOrder) {
  sim::Simulation s;
  std::vector<int> order;
  s.schedule_at(sim::millis(30), [&] { order.push_back(3); });
  s.schedule_at(sim::millis(10), [&] { order.push_back(1); });
  s.schedule_at(sim::millis(20), [&] { order.push_back(2); });
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulation, EqualTimesExecuteInSchedulingOrder) {
  sim::Simulation s;
  std::vector<int> order;
  for (int i = 0; i < 50; ++i) {
    s.schedule_at(sim::millis(5), [&, i] { order.push_back(i); });
  }
  s.run_all();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulation, NowAdvancesToEventTime) {
  sim::Simulation s;
  sim::TimePoint seen = -1;
  s.schedule_at(sim::seconds(2), [&] { seen = s.now(); });
  s.run_all();
  EXPECT_EQ(seen, sim::seconds(2));
}

TEST(Simulation, RunUntilStopsAtDeadline) {
  sim::Simulation s;
  int fired = 0;
  s.schedule_at(sim::seconds(1), [&] { ++fired; });
  s.schedule_at(sim::seconds(3), [&] { ++fired; });
  s.run_until(sim::seconds(2));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), sim::seconds(2));
  s.run_until(sim::seconds(4));
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, EventsCanScheduleEvents) {
  sim::Simulation s;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 10) s.schedule_after(sim::millis(1), chain);
  };
  s.schedule_after(sim::millis(1), chain);
  s.run_all();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(s.now(), sim::millis(10));
}

TEST(Simulation, CancelledEventsDoNotRun) {
  sim::Simulation s;
  bool ran = false;
  auto h = s.schedule_at(sim::millis(10), [&] { ran = true; });
  h.cancel();
  s.run_all();
  EXPECT_FALSE(ran);
}

TEST(Simulation, CancelIsIdempotent) {
  sim::Simulation s;
  auto h = s.schedule_at(sim::millis(10), [] {});
  h.cancel();
  h.cancel();
  s.run_all();
}

TEST(Simulation, SchedulingIntoThePastThrows) {
  sim::Simulation s;
  s.schedule_at(sim::seconds(1), [] {});
  s.run_all();
  EXPECT_THROW(s.schedule_at(sim::millis(1), [] {}), util::AssertionError);
}

TEST(Simulation, StopHaltsTheLoop) {
  sim::Simulation s;
  int fired = 0;
  s.schedule_at(1, [&] {
    ++fired;
    s.stop();
  });
  s.schedule_at(2, [&] { ++fired; });
  s.run_all();
  EXPECT_EQ(fired, 1);
}

TEST(Simulation, RngIsDeterministicAcrossRuns) {
  sim::Simulation a(42);
  sim::Simulation b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.rng().next(), b.rng().next());
  }
}

TEST(Simulation, DifferentSeedsDiverge) {
  sim::Simulation a(1);
  sim::Simulation b(2);
  bool diverged = false;
  for (int i = 0; i < 10 && !diverged; ++i) {
    diverged = a.rng().next() != b.rng().next();
  }
  EXPECT_TRUE(diverged);
}

// ---------------------------------------------------------------------------
// Delay models
// ---------------------------------------------------------------------------

TEST(DelayModel, FixedAlwaysSame) {
  sim::Simulation s;
  auto m = sim::DelayModel::fixed(sim::millis(7));
  for (int i = 0; i < 20; ++i) EXPECT_EQ(m.sample(s.rng()), sim::millis(7));
  EXPECT_EQ(m.mean(), sim::millis(7));
}

TEST(DelayModel, UniformWithinBounds) {
  sim::Simulation s;
  auto m = sim::DelayModel::uniform(sim::millis(2), sim::millis(9));
  for (int i = 0; i < 200; ++i) {
    auto d = m.sample(s.rng());
    EXPECT_GE(d, sim::millis(2));
    EXPECT_LE(d, sim::millis(9));
  }
  EXPECT_EQ(m.mean(), (sim::millis(2) + sim::millis(9)) / 2);
}

TEST(DelayModel, ExponentialRespectsFloorAndCap) {
  sim::Simulation s;
  auto m = sim::DelayModel::exponential(sim::millis(1), sim::millis(4));
  for (int i = 0; i < 500; ++i) {
    auto d = m.sample(s.rng());
    EXPECT_GE(d, sim::millis(1));
    EXPECT_LE(d, sim::millis(1) + 10 * sim::millis(4));
  }
  EXPECT_EQ(m.mean(), sim::millis(5));
}

TEST(DelayModel, ExponentialMeanApproximatelyCorrect) {
  sim::Simulation s;
  auto m = sim::DelayModel::exponential(0, sim::millis(10));
  double sum = 0;
  const int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    sum += static_cast<double>(m.sample(s.rng()));
  }
  const double mean = sum / kSamples;
  EXPECT_NEAR(mean, static_cast<double>(sim::millis(10)), 0.05 * sim::millis(10));
}

// ---------------------------------------------------------------------------
// Links
// ---------------------------------------------------------------------------

class RecordingEndpoint : public net::Endpoint {
 public:
  explicit RecordingEndpoint(sim::Simulation& sim, std::string name)
      : sim_(sim), name_(std::move(name)) {}

  void handle_message(net::Link&, const net::Message& msg) override {
    const auto& pub = std::get<net::PublishMsg>(msg);
    arrivals.emplace_back(sim_.now(), pub.n.producer_seq());
  }
  void handle_link_down(net::Link&) override { ++downs; }
  [[nodiscard]] std::string endpoint_name() const override { return name_; }

  std::vector<std::pair<sim::TimePoint, std::uint64_t>> arrivals;
  int downs = 0;

 private:
  sim::Simulation& sim_;
  std::string name_;
};

filter::Notification numbered(std::uint64_t i) {
  filter::Notification n;
  n.set("i", static_cast<std::int64_t>(i));
  n.stamp(NotificationId(i), ClientId(1), i, 0);
  return n;
}

TEST(Link, DeliversWithDelay) {
  sim::Simulation s;
  RecordingEndpoint a(s, "a"), b(s, "b");
  net::Link link(LinkId(0), s, a, b, sim::DelayModel::fixed(sim::millis(5)));
  link.send(a, net::PublishMsg{numbered(1)});
  s.run_all();
  ASSERT_EQ(b.arrivals.size(), 1u);
  EXPECT_EQ(b.arrivals[0].first, sim::millis(5));
  EXPECT_TRUE(a.arrivals.empty());
}

TEST(Link, FifoUnderRandomDelays) {
  sim::Simulation s(7);
  RecordingEndpoint a(s, "a"), b(s, "b");
  net::Link link(LinkId(0), s, a, b,
                 sim::DelayModel::uniform(sim::millis(1), sim::millis(50)));
  for (std::uint64_t i = 0; i < 200; ++i) {
    s.schedule_at(sim::millis(static_cast<double>(i)),
                  [&, i] { link.send(a, net::PublishMsg{numbered(i)}); });
  }
  s.run_all();
  ASSERT_EQ(b.arrivals.size(), 200u);
  for (std::uint64_t i = 0; i < 200; ++i) {
    EXPECT_EQ(b.arrivals[i].second, i) << "FIFO violated at " << i;
    if (i > 0) {
      EXPECT_GE(b.arrivals[i].first, b.arrivals[i - 1].first);
    }
  }
}

TEST(Link, BothDirectionsIndependentFifo) {
  sim::Simulation s(9);
  RecordingEndpoint a(s, "a"), b(s, "b");
  net::Link link(LinkId(0), s, a, b,
                 sim::DelayModel::uniform(sim::millis(1), sim::millis(20)));
  for (std::uint64_t i = 0; i < 50; ++i) {
    s.schedule_at(sim::millis(static_cast<double>(i)), [&, i] {
      link.send(a, net::PublishMsg{numbered(i)});
      link.send(b, net::PublishMsg{numbered(1000 + i)});
    });
  }
  s.run_all();
  ASSERT_EQ(a.arrivals.size(), 50u);
  ASSERT_EQ(b.arrivals.size(), 50u);
  for (std::uint64_t i = 0; i < 50; ++i) {
    EXPECT_EQ(b.arrivals[i].second, i);
    EXPECT_EQ(a.arrivals[i].second, 1000 + i);
  }
}

TEST(Link, DownDropsInFlightAndNotifiesBothEnds) {
  sim::Simulation s;
  RecordingEndpoint a(s, "a"), b(s, "b");
  metrics::MessageCounters counters;
  net::Link link(LinkId(0), s, a, b, sim::DelayModel::fixed(sim::millis(10)),
                 &counters);
  link.send(a, net::PublishMsg{numbered(1)});
  s.schedule_at(sim::millis(5), [&] { link.set_up(false); });
  s.run_all();
  EXPECT_TRUE(b.arrivals.empty());
  EXPECT_EQ(a.downs, 1);
  EXPECT_EQ(b.downs, 1);
  EXPECT_EQ(counters.count(metrics::MessageClass::dropped), 1u);
}

TEST(Link, SendWhileDownIsDropped) {
  sim::Simulation s;
  RecordingEndpoint a(s, "a"), b(s, "b");
  metrics::MessageCounters counters;
  net::Link link(LinkId(0), s, a, b, sim::DelayModel::fixed(sim::millis(1)),
                 &counters);
  link.set_up(false);
  link.send(a, net::PublishMsg{numbered(1)});
  s.run_all();
  EXPECT_TRUE(b.arrivals.empty());
  EXPECT_EQ(counters.count(metrics::MessageClass::dropped), 1u);
}

TEST(Link, ResumesAfterReconnect) {
  sim::Simulation s;
  RecordingEndpoint a(s, "a"), b(s, "b");
  net::Link link(LinkId(0), s, a, b, sim::DelayModel::fixed(sim::millis(1)));
  link.set_up(false);
  link.set_up(true);
  link.send(a, net::PublishMsg{numbered(2)});
  s.run_all();
  ASSERT_EQ(b.arrivals.size(), 1u);
}

TEST(Link, CountsMessageClasses) {
  sim::Simulation s;
  RecordingEndpoint a(s, "a"), b(s, "b");
  metrics::MessageCounters counters;
  net::Link link(LinkId(0), s, a, b, sim::DelayModel::fixed(1), &counters);
  link.send(a, net::PublishMsg{numbered(1)});
  link.send(a, net::SubscribeMsg{filter::Filter{}, {}});
  link.send(a, net::UnsubscribeMsg{filter::Filter{}});
  EXPECT_EQ(counters.count(metrics::MessageClass::notification), 1u);
  EXPECT_EQ(counters.count(metrics::MessageClass::subscription_admin), 2u);
  EXPECT_EQ(counters.total(), 3u);
  EXPECT_EQ(counters.administrative(), 2u);
}

// ---------------------------------------------------------------------------
// RNG distributions
// ---------------------------------------------------------------------------

TEST(Rng, UniformU64CoversRangeInclusively) {
  util::Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    auto v = rng.uniform_u64(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    saw_lo |= v == 5;
    saw_hi |= v == 8;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  util::Rng rng(4);
  for (int i = 0; i < 2000; ++i) {
    double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ForkProducesIndependentStream) {
  util::Rng a(5);
  util::Rng b = a.fork();
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, BernoulliExtremes) {
  util::Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

}  // namespace
}  // namespace rebeca
