// MatchIndex correctness: the counting index must agree with naive
// linear Filter::matches scans on every corpus we can generate — across
// every routing strategy's forward-set shapes, across all four entry
// planes, and across incremental churn (add/remove interleaved with
// queries). The broker-level byte-identity of --matcher linear vs
// --matcher index rests on this agreement.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "src/routing/match_index.hpp"
#include "src/routing/strategy.hpp"
#include "src/util/rng.hpp"

namespace rebeca::routing {
namespace {

using filter::Constraint;
using filter::Filter;
using filter::Notification;
using filter::Value;

// ---------------------------------------------------------------------------
// Corpus generation: random filters and notifications over a small
// attribute/value universe, so matches actually happen.
// ---------------------------------------------------------------------------

const std::vector<std::string>& attr_pool() {
  static const std::vector<std::string> pool = {
      "service", "cost", "size", "location", "sym", "flag"};
  return pool;
}

Value random_value(util::Rng& rng) {
  switch (rng.index(6)) {
    case 0: return Value(static_cast<int>(rng.uniform_i64(-5, 20)));
    case 1: return Value(rng.uniform_real(-2.0, 12.0));
    case 2: return Value(static_cast<double>(rng.uniform_i64(-5, 20)));
    case 3: return Value("s" + std::to_string(rng.uniform_u64(0, 9)));
    case 4: return Value(rng.bernoulli(0.5));
    default:
      // Huge int64s past 2^53: the eq-bucket double normalization must
      // not conflate them.
      return Value(static_cast<std::int64_t>(
          (1LL << 53) + static_cast<std::int64_t>(rng.uniform_u64(0, 3))));
  }
}

Constraint random_constraint(util::Rng& rng) {
  switch (rng.index(10)) {
    case 0: return Constraint::any();
    case 1: return Constraint::eq(random_value(rng));
    case 2: return Constraint::ne(random_value(rng));
    case 3: return Constraint::lt(Value(static_cast<int>(rng.uniform_i64(-5, 20))));
    case 4: return Constraint::le(Value(rng.uniform_real(-2.0, 12.0)));
    case 5: return Constraint::gt(Value("s" + std::to_string(rng.uniform_u64(0, 9))));
    case 6: return Constraint::ge(Value(static_cast<int>(rng.uniform_i64(-5, 20))));
    case 7: {
      std::set<Value> values;
      const std::size_t n = 1 + rng.index(4);
      for (std::size_t i = 0; i < n; ++i) values.insert(random_value(rng));
      return Constraint::in_set(std::move(values));
    }
    case 8: return Constraint::prefix("s" + std::string(rng.bernoulli(0.5) ? "1" : ""));
    default: {
      const auto lo = static_cast<int>(rng.uniform_i64(-5, 10));
      const auto hi = lo + static_cast<int>(rng.uniform_u64(0, 10));
      return Constraint::range(Value(lo), Value(hi));
    }
  }
}

Filter random_filter(util::Rng& rng) {
  Filter f;
  const std::size_t n = rng.index(4);  // 0..3 constraints; 0 = match-all
  for (std::size_t i = 0; i < n; ++i) {
    f.where(rng.pick(attr_pool()), random_constraint(rng));
  }
  return f;
}

Notification random_notification(util::Rng& rng) {
  Notification n;
  const std::size_t count = rng.index(5);
  for (std::size_t i = 0; i < count; ++i) {
    n.set(rng.pick(attr_pool()), random_value(rng));
  }
  return n;
}

// ---------------------------------------------------------------------------
// Naive mirror: the four linear scans the index replaces.
// ---------------------------------------------------------------------------

struct Mirror {
  std::map<LinkId, std::vector<Filter>> remote;
  std::map<SubKey, Filter> locals;
  std::map<SubKey, Filter> virtuals;
  std::map<SubKey, std::pair<LinkId, Filter>> transits;

  [[nodiscard]] MatchHits collect(const Notification& n) const {
    MatchHits hits;
    for (const auto& [link, filters] : remote) {
      if (std::any_of(filters.begin(), filters.end(),
                      [&](const Filter& f) { return f.matches(n); })) {
        hits.links.push_back(link);
      }
    }
    for (const auto& [key, entry] : transits) {
      if (entry.second.matches(n)) hits.links.push_back(entry.first);
    }
    for (const auto& [key, f] : locals) {
      if (f.matches(n)) hits.locals.push_back(key);
    }
    for (const auto& [key, f] : virtuals) {
      if (f.matches(n)) hits.virtuals.push_back(key);
    }
    std::sort(hits.links.begin(), hits.links.end());
    hits.links.erase(std::unique(hits.links.begin(), hits.links.end()),
                     hits.links.end());
    std::sort(hits.locals.begin(), hits.locals.end());
    std::sort(hits.virtuals.begin(), hits.virtuals.end());
    return hits;
  }
};

void expect_same(const MatchHits& naive, const MatchHits& indexed,
                 const Notification& n) {
  EXPECT_EQ(naive.links, indexed.links) << "links diverge on " << n.to_string();
  EXPECT_EQ(naive.locals, indexed.locals)
      << "locals diverge on " << n.to_string();
  EXPECT_EQ(naive.virtuals, indexed.virtuals)
      << "virtuals diverge on " << n.to_string();
}

// ---------------------------------------------------------------------------
// Property: index == naive over strategy-shaped forward sets
// ---------------------------------------------------------------------------

TEST(MatchIndex, AgreesWithLinearAcrossStrategies) {
  const Strategy strategies[] = {Strategy::flooding, Strategy::simple,
                                 Strategy::identity, Strategy::covering,
                                 Strategy::merging};
  util::Rng rng(20260728);
  for (std::uint64_t corpus = 0; corpus < 40; ++corpus) {
    // A population of subscriptions, collapsed per strategy: the index's
    // remote plane sees exactly the filters a broker's tables would hold.
    std::vector<ForwardInput> inputs;
    const std::size_t subs = 1 + rng.index(24);
    for (std::size_t i = 0; i < subs; ++i) {
      inputs.push_back(
          {random_filter(rng),
           {SubKey{ClientId(static_cast<std::uint32_t>(i + 1)), 1}}});
    }
    for (const Strategy strategy : strategies) {
      const ForwardSet fs = compute_forward_set(strategy, inputs);

      MatchIndex index;
      Mirror mirror;
      const LinkId links[] = {LinkId(1), LinkId(2)};
      std::size_t i = 0;
      for (const auto& [f, tags] : fs) {
        const LinkId link = links[i++ % 2];
        index.add_remote(link, f);
        mirror.remote[link].push_back(f);
      }
      // The other planes ride along so every source kind is exercised.
      for (std::size_t k = 0; k < 4; ++k) {
        const SubKey key{ClientId(static_cast<std::uint32_t>(100 + k)), 1};
        const Filter f = random_filter(rng);
        switch (k % 3) {
          case 0:
            index.upsert_local(key, f);
            mirror.locals[key] = f;
            break;
          case 1:
            index.upsert_virtual(key, f);
            mirror.virtuals[key] = f;
            break;
          default:
            index.upsert_transit(key, LinkId(3), f);
            mirror.transits[key] = {LinkId(3), f};
            break;
        }
      }

      MatchHits hits;
      for (std::size_t probe = 0; probe < 25; ++probe) {
        const Notification n = random_notification(rng);
        index.collect(n, hits);
        expect_same(mirror.collect(n), hits, n);
      }
    }
  }
}

TEST(MatchIndex, AgreesWithLinearUnderChurn) {
  util::Rng rng(42);
  MatchIndex index;
  Mirror mirror;
  std::vector<std::pair<LinkId, Filter>> live_remote;
  std::uint32_t next_key = 1;
  std::vector<SubKey> live_locals, live_virtuals, live_transits;

  MatchHits hits;
  for (std::size_t step = 0; step < 2000; ++step) {
    switch (rng.index(9)) {
      case 0: {  // add remote
        const LinkId link(static_cast<std::uint32_t>(rng.uniform_u64(1, 3)));
        const Filter f = random_filter(rng);
        auto& filters = mirror.remote[link];
        if (std::find(filters.begin(), filters.end(), f) == filters.end()) {
          index.add_remote(link, f);
          filters.push_back(f);
          live_remote.emplace_back(link, f);
        }
        break;
      }
      case 1: {  // remove remote
        if (live_remote.empty()) break;
        const std::size_t i = rng.index(live_remote.size());
        const auto [link, f] = live_remote[i];
        live_remote.erase(live_remote.begin() + static_cast<std::ptrdiff_t>(i));
        index.remove_remote(link, f);
        auto& filters = mirror.remote[link];
        filters.erase(std::find(filters.begin(), filters.end(), f));
        break;
      }
      case 2: {  // add/replace local
        const SubKey key{ClientId(next_key++), 1};
        const Filter f = random_filter(rng);
        index.upsert_local(key, f);
        mirror.locals[key] = f;
        live_locals.push_back(key);
        break;
      }
      case 3: {  // remove local
        if (live_locals.empty()) break;
        const std::size_t i = rng.index(live_locals.size());
        index.remove_local(live_locals[i]);
        mirror.locals.erase(live_locals[i]);
        live_locals.erase(live_locals.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
      case 4: {  // add/replace virtual
        const SubKey key{ClientId(next_key++), 2};
        const Filter f = random_filter(rng);
        index.upsert_virtual(key, f);
        mirror.virtuals[key] = f;
        live_virtuals.push_back(key);
        break;
      }
      case 5: {  // remove virtual
        if (live_virtuals.empty()) break;
        const std::size_t i = rng.index(live_virtuals.size());
        index.remove_virtual(live_virtuals[i]);
        mirror.virtuals.erase(live_virtuals[i]);
        live_virtuals.erase(live_virtuals.begin() +
                            static_cast<std::ptrdiff_t>(i));
        break;
      }
      case 6: {  // upsert transit (fresh or re-pointed)
        const bool fresh = live_transits.empty() || rng.bernoulli(0.5);
        const SubKey key = fresh ? SubKey{ClientId(next_key++), 3}
                                 : rng.pick(live_transits);
        const LinkId toward(static_cast<std::uint32_t>(rng.uniform_u64(1, 3)));
        const Filter f = random_filter(rng);
        index.upsert_transit(key, toward, f);
        mirror.transits[key] = {toward, f};
        if (fresh) live_transits.push_back(key);
        break;
      }
      case 7: {  // remove transit
        if (live_transits.empty()) break;
        const std::size_t i = rng.index(live_transits.size());
        index.remove_transit(live_transits[i]);
        mirror.transits.erase(live_transits[i]);
        live_transits.erase(live_transits.begin() +
                            static_cast<std::ptrdiff_t>(i));
        break;
      }
      default: {  // probe
        const Notification n = random_notification(rng);
        index.collect(n, hits);
        expect_same(mirror.collect(n), hits, n);
        break;
      }
    }
  }
  // Final sweep: drain everything and verify emptiness.
  for (const auto& [link, f] : live_remote) index.remove_remote(link, f);
  for (const SubKey& k : live_locals) index.remove_local(k);
  for (const SubKey& k : live_virtuals) index.remove_virtual(k);
  for (const SubKey& k : live_transits) index.remove_transit(k);
  EXPECT_EQ(index.entry_count(), 0u);
  index.collect(random_notification(rng), hits);
  EXPECT_TRUE(hits.links.empty());
  EXPECT_TRUE(hits.locals.empty());
  EXPECT_TRUE(hits.virtuals.empty());
}

// ---------------------------------------------------------------------------
// Targeted edges the generators may hit rarely
// ---------------------------------------------------------------------------

TEST(MatchIndex, EmptyFilterMatchesEverything) {
  MatchIndex index;
  index.add_remote(LinkId(1), Filter{});
  MatchHits hits;
  index.collect(Notification{}, hits);
  ASSERT_EQ(hits.links.size(), 1u);
  EXPECT_EQ(hits.links[0], LinkId(1));
  index.collect(Notification().set("anything", 1), hits);
  EXPECT_EQ(hits.links.size(), 1u);
  index.remove_remote(LinkId(1), Filter{});
  index.collect(Notification{}, hits);
  EXPECT_TRUE(hits.links.empty());
}

TEST(MatchIndex, CrossTypeNumericEquality) {
  // eq 1 (int) must match a 1.0 (double) attribute and vice versa — the
  // normalized equality bucket carries both spellings.
  MatchIndex index;
  Filter fi;
  fi.where("x", Constraint::eq(1));
  Filter fd;
  fd.where("x", Constraint::eq(1.5));
  index.upsert_local(SubKey{ClientId(1), 1}, fi);
  index.upsert_local(SubKey{ClientId(2), 1}, fd);

  MatchHits hits;
  index.collect(Notification().set("x", 1.0), hits);
  ASSERT_EQ(hits.locals.size(), 1u);
  EXPECT_EQ(hits.locals[0].client, ClientId(1));
  index.collect(Notification().set("x", 1.5), hits);
  ASSERT_EQ(hits.locals.size(), 1u);
  EXPECT_EQ(hits.locals[0].client, ClientId(2));
}

TEST(MatchIndex, HugeInt64sDoNotConflate) {
  // 2^53 and 2^53 + 1 cast to the same double; the eq bucket must still
  // tell the operands apart via the exact re-check.
  const std::int64_t base = 1LL << 53;
  MatchIndex index;
  Filter fa;
  fa.where("x", Constraint::eq(Value(base)));
  Filter fb;
  fb.where("x", Constraint::eq(Value(base + 1)));
  index.upsert_local(SubKey{ClientId(1), 1}, fa);
  index.upsert_local(SubKey{ClientId(2), 1}, fb);

  MatchHits hits;
  index.collect(Notification().set("x", Value(base + 1)), hits);
  ASSERT_EQ(hits.locals.size(), 1u);
  EXPECT_EQ(hits.locals[0].client, ClientId(2));
}

TEST(MatchIndex, OneLinkHitPerManyMatchingFilters) {
  MatchIndex index;
  for (int i = 0; i < 8; ++i) {
    Filter f;
    f.where("px", Constraint::gt(i));
    index.add_remote(LinkId(7), f);
  }
  MatchHits hits;
  index.collect(Notification().set("px", 100), hits);
  ASSERT_EQ(hits.links.size(), 1u);  // deduped per link
  EXPECT_EQ(hits.links[0], LinkId(7));
}

TEST(MatchIndex, UpsertReplacesKeyedFilter) {
  MatchIndex index;
  const SubKey key{ClientId(5), 1};
  Filter narrow;
  narrow.where("sym", Constraint::eq("AAA"));
  index.upsert_local(key, narrow);
  Filter other;
  other.where("sym", Constraint::eq("BBB"));
  index.upsert_local(key, other);  // replaces, not accumulates

  MatchHits hits;
  index.collect(Notification().set("sym", "AAA"), hits);
  EXPECT_TRUE(hits.locals.empty());
  index.collect(Notification().set("sym", "BBB"), hits);
  ASSERT_EQ(hits.locals.size(), 1u);
  EXPECT_EQ(index.entry_count(), 1u);
}

}  // namespace
}  // namespace rebeca::routing
