// Support utilities: strong ids, ring buffer, assertion machinery,
// message classification.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "src/net/message.hpp"
#include "src/util/assert.hpp"
#include "src/util/domain_ids.hpp"
#include "src/util/ring_buffer.hpp"

namespace rebeca {
namespace {

TEST(StrongId, DefaultIsInvalid) {
  NodeId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, NodeId::invalid());
}

TEST(StrongId, ValueRoundTrip) {
  NodeId id(7);
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 7u);
}

TEST(StrongId, Ordering) {
  EXPECT_LT(NodeId(1), NodeId(2));
  EXPECT_EQ(NodeId(3), NodeId(3));
  EXPECT_NE(NodeId(3), NodeId(4));
}

TEST(StrongId, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<NodeId, LinkId>);
  static_assert(!std::is_same_v<ClientId, LocationId>);
}

TEST(StrongId, Hashable) {
  std::unordered_set<ClientId> s;
  s.insert(ClientId(1));
  s.insert(ClientId(2));
  s.insert(ClientId(1));
  EXPECT_EQ(s.size(), 2u);
}

TEST(StrongId, StreamsValue) {
  std::ostringstream os;
  os << NodeId(5) << " " << NodeId();
  EXPECT_EQ(os.str(), "5 <invalid>");
}

TEST(SubKey, OrderingAndHash) {
  SubKey a{ClientId(1), 1};
  SubKey b{ClientId(1), 2};
  SubKey c{ClientId(2), 1};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  std::set<SubKey> s{a, b, c, a};
  EXPECT_EQ(s.size(), 3u);
  std::unordered_set<SubKey> us{a, b, c};
  EXPECT_EQ(us.size(), 3u);
}

// ---------------------------------------------------------------------------
// RingBuffer
// ---------------------------------------------------------------------------

TEST(RingBuffer, UnboundedKeepsEverything) {
  util::RingBuffer<int> rb;
  for (int i = 0; i < 1000; ++i) rb.push(i);
  EXPECT_EQ(rb.size(), 1000u);
  EXPECT_EQ(rb.dropped(), 0u);
  EXPECT_EQ(rb.front(), 0);
}

TEST(RingBuffer, BoundedDropsOldestAndCounts) {
  util::RingBuffer<int> rb(3);
  for (int i = 1; i <= 5; ++i) rb.push(i);
  EXPECT_EQ(rb.size(), 3u);
  EXPECT_EQ(rb.dropped(), 2u);
  std::vector<int> items(rb.begin(), rb.end());
  EXPECT_EQ(items, (std::vector<int>{3, 4, 5}));
}

TEST(RingBuffer, PopIsFifo) {
  util::RingBuffer<int> rb(10);
  rb.push(1);
  rb.push(2);
  EXPECT_EQ(rb.pop(), 1);
  EXPECT_EQ(rb.pop(), 2);
  EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, PopEmptyThrows) {
  util::RingBuffer<int> rb(2);
  EXPECT_THROW(rb.pop(), util::AssertionError);
  EXPECT_THROW((void)rb.front(), util::AssertionError);
}

TEST(RingBuffer, ClearKeepsDropCount) {
  util::RingBuffer<int> rb(1);
  rb.push(1);
  rb.push(2);
  rb.clear();
  EXPECT_TRUE(rb.empty());
  EXPECT_EQ(rb.dropped(), 1u);
}

// ---------------------------------------------------------------------------
// Assertions
// ---------------------------------------------------------------------------

TEST(Assert, ThrowsWithContext) {
  try {
    REBECA_ASSERT(1 == 2, "context " << 42);
    FAIL() << "should have thrown";
  } catch (const util::AssertionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("context 42"), std::string::npos);
    EXPECT_NE(what.find("util_test.cpp"), std::string::npos);
  }
}

TEST(Assert, PassingIsSilent) {
  REBECA_ASSERT(true, "never");
  REBECA_CHECK(2 + 2 == 4);
}

// ---------------------------------------------------------------------------
// Message classification
// ---------------------------------------------------------------------------

TEST(Message, ClassificationCoversAllPlanes) {
  using MC = metrics::MessageClass;
  EXPECT_EQ(net::message_class(net::PublishMsg{}), MC::notification);
  EXPECT_EQ(net::message_class(net::ClientPublishMsg{}), MC::notification);
  EXPECT_EQ(net::message_class(net::DeliverMsg{}), MC::delivery);
  EXPECT_EQ(net::message_class(net::SubscribeMsg{}), MC::subscription_admin);
  EXPECT_EQ(net::message_class(net::UnsubscribeMsg{}), MC::subscription_admin);
  EXPECT_EQ(net::message_class(net::AdvertiseMsg{}), MC::advertisement_admin);
  EXPECT_EQ(net::message_class(net::RelocateSubMsg{}), MC::relocation_control);
  EXPECT_EQ(net::message_class(net::FetchMsg{}), MC::relocation_control);
  EXPECT_EQ(net::message_class(net::ReExposeMsg{}), MC::reexpose);
  EXPECT_EQ(net::message_class(net::ReExposeAckMsg{}), MC::reexpose);
  EXPECT_EQ(net::message_class(net::ReplayMsg{}), MC::replay);
  EXPECT_EQ(net::message_class(net::LdSubscribeMsg{}), MC::location_update);
  EXPECT_EQ(net::message_class(net::LdMoveMsg{}), MC::location_update);
  EXPECT_EQ(net::message_class(net::ClientMoveMsg{}), MC::location_update);
  EXPECT_EQ(net::message_class(net::ClientHelloMsg{}), MC::client_control);
  EXPECT_EQ(net::message_class(net::ClientByeMsg{}), MC::client_control);
}

TEST(Message, NamesAreDistinctive) {
  EXPECT_EQ(net::message_name(net::PublishMsg{}), "publish");
  EXPECT_EQ(net::message_name(net::FetchMsg{}), "fetch");
  EXPECT_EQ(net::message_name(net::ReExposeMsg{}), "re-expose");
  EXPECT_EQ(net::message_name(net::ReplayMsg{}), "replay");
  EXPECT_EQ(net::message_name(net::LdMoveMsg{}), "ld-move");
}

TEST(Counters, TotalsAndAdministrative) {
  metrics::MessageCounters c;
  c.add(metrics::MessageClass::notification, 10);
  c.add(metrics::MessageClass::delivery, 5);
  c.add(metrics::MessageClass::subscription_admin, 3);
  c.add(metrics::MessageClass::location_update, 2);
  c.add(metrics::MessageClass::dropped, 100);  // not part of total
  EXPECT_EQ(c.total(), 20u);
  EXPECT_EQ(c.administrative(), 5u);
  c.reset();
  EXPECT_EQ(c.total(), 0u);
}

TEST(Counters, StreamOutputSkipsZeroes) {
  metrics::MessageCounters c;
  c.add(metrics::MessageClass::replay, 2);
  std::ostringstream os;
  os << c;
  EXPECT_EQ(os.str(), "{replay=2}");
}

}  // namespace
}  // namespace rebeca
