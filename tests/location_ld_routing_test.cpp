// Location-dependent subscriptions in a live broker network (paper
// Sec. 5): per-hop filter instantiation (Table 2), the location-update
// stop rule, delivery correctness against a flooding reference, and the
// starvation regime the paper concedes (Sec. 6).
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "tests/scenario_world.hpp"

namespace rebeca {
namespace {

using broker::OverlayConfig;
using client::Client;
using client::ClientConfig;
using filter::Constraint;
using filter::Filter;
using filter::Notification;
using location::LdSpec;
using location::LocationGraph;
using location::UncertaintyProfile;
using scenario::TopologySpec;

struct World : testutil::World {
  World(scenario::TopologySpec topo, const LocationGraph* locations,
        OverlayConfig cfg = {}, std::uint64_t seed = 1)
      : testutil::World(std::move(topo), std::move(cfg), seed, locations) {}
};

Notification parking_at(const std::string& loc) {
  return Notification().set("service", "parking").set("location", loc);
}

LdSpec parking_spec(UncertaintyProfile profile, std::uint32_t radius = 0) {
  LdSpec spec;
  spec.base = Filter().where("service", Constraint::eq("parking"));
  spec.vicinity_radius = radius;
  spec.profile = std::move(profile);
  return spec;
}

std::vector<std::string> set_names(const LocationGraph& g,
                                   const location::LocationSet& s) {
  std::vector<std::string> out;
  for (auto id : s) out.push_back(g.name(id));
  return out;
}

using Names = std::vector<std::string>;

// ---------------------------------------------------------------------------
// Paper Table 2: filters along the chain as the client moves a → b → d.
// ---------------------------------------------------------------------------

TEST(LdRouting, PaperTable2FilterEvolution) {
  // Fig. 6 setting: consumer — B1 — B2 — B3 — producer, movement graph
  // of Fig. 7, and the Table 1/2 profile where F_1 has one step of
  // uncertainty and F_2, F_3 saturate.
  auto graph = LocationGraph::paper_fig7();
  World w(TopologySpec::chain(3), &graph);

  ClientConfig cc;
  cc.locations = &graph;
  Client& consumer = w.add_client(1, 0, cc);
  consumer.move_to("a");

  // F_i = ploc(x, i): exactly Table 1's rows as hop profile.
  auto spec = parking_spec(UncertaintyProfile::explicit_steps({0, 1, 2, 2}));
  const auto sub = consumer.subscribe(spec);
  const SubKey key{ClientId(1), sub};
  w.settle();

  // t=0, at a (Table 2 row 0): F1={a,b,c} at the border broker (hop 1),
  // F2=F3={a,b,c,d} upstream.
  EXPECT_EQ(set_names(graph, *w.overlay.broker(0).ld_concrete_set(key)),
            (Names{"a", "b", "c"}));
  EXPECT_EQ(set_names(graph, *w.overlay.broker(1).ld_concrete_set(key)),
            (Names{"a", "b", "c", "d"}));
  EXPECT_EQ(set_names(graph, *w.overlay.broker(2).ld_concrete_set(key)),
            (Names{"a", "b", "c", "d"}));

  // t=1: move to b (Table 2 row 1): F1={a,b,d}.
  consumer.move_to("b");
  w.settle();
  EXPECT_EQ(set_names(graph, *w.overlay.broker(0).ld_concrete_set(key)),
            (Names{"a", "b", "d"}));
  EXPECT_EQ(set_names(graph, *w.overlay.broker(1).ld_concrete_set(key)),
            (Names{"a", "b", "c", "d"}));

  // t=2: move to d (Table 2 row 2): F1={b,c,d}.
  consumer.move_to("d");
  w.settle();
  EXPECT_EQ(set_names(graph, *w.overlay.broker(0).ld_concrete_set(key)),
            (Names{"b", "c", "d"}));
  EXPECT_EQ(set_names(graph, *w.overlay.broker(1).ld_concrete_set(key)),
            (Names{"a", "b", "c", "d"}));
}

TEST(LdRouting, MoveStopsAtSaturatedBrokers) {
  // On the Fig. 7 graph, hops >= 2 hold the full location set; a move
  // must not generate location updates past the first unchanged hop
  // (the "restricted flooding" savings).
  auto graph = LocationGraph::paper_fig7();
  World w(TopologySpec::chain(5), &graph);
  ClientConfig cc;
  cc.locations = &graph;
  Client& consumer = w.add_client(1, 0, cc);
  consumer.move_to("a");
  consumer.subscribe(parking_spec(UncertaintyProfile::explicit_steps({0, 1, 2})));
  w.settle();

  const auto updates_before =
      w.overlay.counters().count(metrics::MessageClass::location_update);
  consumer.move_to("b");
  w.settle();
  const auto updates =
      w.overlay.counters().count(metrics::MessageClass::location_update) -
      updates_before;
  // client→border (1) + border→B1 (1); B1's set is already {a,b,c,d} and
  // stays, so nothing travels to B2, B3, B4.
  EXPECT_EQ(updates, 2u);
}

TEST(LdRouting, GlobalResubProfileUpdatesEveryHop) {
  // With the trivial profile every hop's set changes on (almost) every
  // move, so updates travel the whole chain.
  auto graph = LocationGraph::line(12);
  World w(TopologySpec::chain(5), &graph);
  ClientConfig cc;
  cc.locations = &graph;
  Client& consumer = w.add_client(1, 0, cc);
  consumer.move_to("l5");
  consumer.subscribe(parking_spec(UncertaintyProfile::global_resub()));
  w.settle();

  const auto before =
      w.overlay.counters().count(metrics::MessageClass::location_update);
  consumer.move_to("l6");
  w.settle();
  const auto updates =
      w.overlay.counters().count(metrics::MessageClass::location_update) - before;
  EXPECT_EQ(updates, 5u);  // client link + all 4 broker links
}

// ---------------------------------------------------------------------------
// Delivery semantics
// ---------------------------------------------------------------------------

TEST(LdRouting, DeliversOnlyCurrentVicinity) {
  auto graph = LocationGraph::line(10);
  World w(TopologySpec::chain(3), &graph);
  ClientConfig cc;
  cc.locations = &graph;
  Client& consumer = w.add_client(1, 0, cc);
  Client& producer = w.add_client(2, 2);
  consumer.move_to("l2");
  consumer.subscribe(parking_spec(UncertaintyProfile::global_resub(),
                                  /*radius=*/1));
  w.settle();

  producer.publish(parking_at("l2"));  // in vicinity
  producer.publish(parking_at("l3"));  // adjacent: in vicinity (radius 1)
  producer.publish(parking_at("l4"));  // in F_1's lookahead, not in F_0
  producer.publish(parking_at("l7"));  // far away: dropped upstream
  w.settle();

  ASSERT_EQ(consumer.deliveries().size(), 2u);
  // l4 reached the client (inside the border's widened set) and was
  // stopped by the perfect client-side filter F_0; l7 never made it.
  EXPECT_EQ(consumer.filtered_count(), 1u);
}

TEST(LdRouting, ClientSideFilterTracksInstantaneousLocation) {
  // The border's F_1 includes one step of lookahead, so notifications
  // for the *next* location are already flowing; the client-side F_0
  // admits them the moment the client actually moves (the paper's
  // "frictionless" handover, Sec. 3.3).
  auto graph = LocationGraph::line(6);
  World w(TopologySpec::chain(2), &graph);
  ClientConfig cc;
  cc.locations = &graph;
  Client& consumer = w.add_client(1, 0, cc);
  Client& producer = w.add_client(2, 1);
  consumer.move_to("l1");
  consumer.subscribe(parking_spec(UncertaintyProfile::global_resub()));
  w.settle();

  producer.publish(parking_at("l2"));  // next door: forwarded, filtered at F_0
  w.settle();
  EXPECT_TRUE(consumer.deliveries().empty());
  EXPECT_EQ(consumer.filtered_count(), 1u);

  consumer.move_to("l2");
  producer.publish(parking_at("l2"));
  w.settle();
  ASSERT_EQ(consumer.deliveries().size(), 1u);
}

TEST(LdRouting, UnsubscribeCleansTransitState) {
  auto graph = LocationGraph::paper_fig7();
  World w(TopologySpec::chain(4), &graph);
  ClientConfig cc;
  cc.locations = &graph;
  Client& consumer = w.add_client(1, 0, cc);
  consumer.move_to("a");
  auto sub = consumer.subscribe(parking_spec(UncertaintyProfile::global_resub()));
  w.settle();
  EXPECT_EQ(w.overlay.broker(1).ld_transit_count(), 1u);
  EXPECT_EQ(w.overlay.broker(3).ld_transit_count(), 1u);

  consumer.unsubscribe(sub);
  w.settle();
  for (std::size_t b = 0; b < 4; ++b) {
    EXPECT_EQ(w.overlay.broker(b).ld_transit_count(), 0u) << "broker " << b;
  }
}

// ---------------------------------------------------------------------------
// Equivalence with flooding (paper Fig. 4 epoch semantics)
// ---------------------------------------------------------------------------

struct EquivParam {
  std::size_t profile_kind;  // 0: global_resub, 1: flooding, 2: adaptive
  std::uint64_t seed;
};

class LdEquivalence : public ::testing::TestWithParam<EquivParam> {};

UncertaintyProfile make_profile(std::size_t kind) {
  switch (kind) {
    case 0: return UncertaintyProfile::global_resub();
    case 1: return UncertaintyProfile::flooding();
    default:
      return UncertaintyProfile::adaptive(
          sim::millis(400), {sim::millis(12), sim::millis(10), sim::millis(10)});
  }
}

/// Runs the same deterministic workload (random walk + periodic
/// publishing to random locations) either with an LD subscription or
/// with a flooding-style full subscription filtered client-side, and
/// returns the set of delivered notification ids.
std::multiset<std::uint64_t> run_workload(bool ld_mode, std::size_t profile_kind,
                                          std::uint64_t seed) {
  auto graph = LocationGraph::grid(4, 4);
  OverlayConfig cfg;
  World w(TopologySpec::chain(4), &graph, cfg, seed);
  ClientConfig cc;
  cc.locations = &graph;
  Client& consumer = w.add_client(1, 0, cc);
  Client& producer = w.add_client(2, 3);
  consumer.move_to("g0_0");

  if (ld_mode) {
    consumer.subscribe(parking_spec(make_profile(profile_kind), 1));
  } else {
    // Flooding reference: subscribe to everything, rely on F_0.
    LdSpec everything = parking_spec(UncertaintyProfile::flooding(), 1);
    consumer.subscribe(everything);
  }
  w.settle();

  // Deterministic workload derived from the seed, NOT from the
  // simulation RNG (which the two modes consume differently).
  util::Rng wl(seed * 7919);
  // Random walk: move every 400ms. Publishing: every 15ms somewhere.
  std::vector<LocationId> walk;
  LocationId at = graph.id_of("g0_0");
  for (int i = 0; i < 12; ++i) {
    const auto& nbrs = graph.neighbors(at);
    at = nbrs[wl.index(nbrs.size())];
    walk.push_back(at);
  }
  for (std::size_t i = 0; i < walk.size(); ++i) {
    w.sim.schedule_after(sim::millis(400.0 * static_cast<double>(i + 1)),
                         [&consumer, loc = walk[i]] { consumer.move_to(loc); });
  }
  for (int i = 0; i < 350; ++i) {
    const auto where = graph.name(LocationId(static_cast<std::uint32_t>(
        wl.index(graph.size()))));
    w.sim.schedule_after(sim::millis(15.0 * i + 3.0),
                         [&producer, where] { producer.publish(parking_at(where)); });
  }
  w.settle(8.0);

  std::multiset<std::uint64_t> ids;
  for (const auto& d : consumer.deliveries()) {
    ids.insert(d.notification.id().value());
  }
  return ids;
}

TEST_P(LdEquivalence, MatchesFloodingReference) {
  const auto p = GetParam();
  const auto ld = run_workload(true, p.profile_kind, p.seed);
  const auto flooding = run_workload(false, p.profile_kind, p.seed);
  EXPECT_EQ(ld, flooding)
      << "LD delivered " << ld.size() << ", flooding reference "
      << flooding.size();
}

INSTANTIATE_TEST_SUITE_P(
    ProfilesAndSeeds, LdEquivalence,
    ::testing::Values(EquivParam{0, 1}, EquivParam{0, 2}, EquivParam{0, 3},
                      EquivParam{1, 1}, EquivParam{1, 4}, EquivParam{2, 1},
                      EquivParam{2, 5}, EquivParam{2, 6}),
    [](const auto& info) {
      const char* kind = info.param.profile_kind == 0   ? "resub"
                         : info.param.profile_kind == 1 ? "flood"
                                                        : "adaptive";
      return std::string(kind) + "_seed" + std::to_string(info.param.seed);
    });

TEST(LdStarvation, TooFastClientMissesNotifications) {
  // Paper Sec. 6: "if a client is just too fast for the infrastructure
  // to adapt", notifications go missing. A zero-lookahead profile with
  // fast movement demonstrates the regime.
  auto graph = LocationGraph::line(20);
  World w(TopologySpec::chain(4), &graph);
  ClientConfig cc;
  cc.locations = &graph;
  Client& consumer = w.add_client(1, 0, cc);
  Client& producer = w.add_client(2, 3);
  consumer.move_to("l0");
  // Exact sets everywhere: every move causes a full blackout window.
  consumer.subscribe(parking_spec(UncertaintyProfile::explicit_steps({0})));
  w.settle();

  // Sprint along the line, publishing at the consumer's location.
  for (int i = 1; i < 16; ++i) {
    w.sim.schedule_after(sim::millis(20.0 * i), [&, i] {
      consumer.move_to("l" + std::to_string(i));
    });
    w.sim.schedule_after(sim::millis(20.0 * i + 10.0), [&, i] {
      producer.publish(parking_at("l" + std::to_string(i)));
    });
  }
  w.settle(5.0);
  // The subscription updates lag the sprint: most location-targeted
  // notifications are missed (starvation), exactly as the paper warns.
  EXPECT_LT(consumer.deliveries().size(), 8u);
}

}  // namespace
}  // namespace rebeca
