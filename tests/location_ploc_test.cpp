// The location model: movement graphs, ploc, and the paper's Table 1
// (values of ploc(x,t) on the Fig. 7 movement graph).
#include <gtest/gtest.h>

#include <algorithm>

#include "src/location/location_graph.hpp"
#include "src/util/assert.hpp"

namespace rebeca::location {
namespace {

std::vector<std::string> names_of(const LocationGraph& g, const LocationSet& s) {
  std::vector<std::string> out;
  for (auto id : s) out.push_back(g.name(id));
  std::sort(out.begin(), out.end());
  return out;
}

using Names = std::vector<std::string>;

TEST(LocationGraph, InternsNames) {
  LocationGraph g;
  auto a = g.add("kitchen");
  auto b = g.add("hall");
  EXPECT_EQ(g.add("kitchen"), a);  // idempotent
  EXPECT_EQ(g.size(), 2u);
  EXPECT_EQ(g.name(a), "kitchen");
  EXPECT_EQ(g.id_of("hall"), b);
  EXPECT_TRUE(g.contains("hall"));
  EXPECT_FALSE(g.contains("attic"));
}

TEST(LocationGraph, UnknownLocationThrows) {
  LocationGraph g;
  EXPECT_THROW((void)g.id_of("nowhere"), util::AssertionError);
}

TEST(LocationGraph, SelfLoopRejected) {
  LocationGraph g;
  auto a = g.add("a");
  EXPECT_THROW(g.connect(a, a), util::AssertionError);
}

// ---------------------------------------------------------------------------
// Paper Table 1: ploc on the Fig. 7 graph (a–b, a–c, b–d, c–d).
// ---------------------------------------------------------------------------

TEST(Ploc, PaperTable1) {
  auto g = LocationGraph::paper_fig7();
  const auto a = g.id_of("a"), b = g.id_of("b"), c = g.id_of("c"), d = g.id_of("d");

  // t = 0: current location only.
  EXPECT_EQ(names_of(g, g.ploc(a, 0)), Names{"a"});
  EXPECT_EQ(names_of(g, g.ploc(b, 0)), Names{"b"});
  EXPECT_EQ(names_of(g, g.ploc(c, 0)), Names{"c"});
  EXPECT_EQ(names_of(g, g.ploc(d, 0)), Names{"d"});

  // t = 1: one movement step (Table 1, row 1).
  EXPECT_EQ(names_of(g, g.ploc(a, 1)), (Names{"a", "b", "c"}));
  EXPECT_EQ(names_of(g, g.ploc(b, 1)), (Names{"a", "b", "d"}));
  EXPECT_EQ(names_of(g, g.ploc(c, 1)), (Names{"a", "c", "d"}));
  EXPECT_EQ(names_of(g, g.ploc(d, 1)), (Names{"b", "c", "d"}));

  // t = 2 and t = 3: everything (Table 1, rows 2-3).
  for (auto x : {a, b, c, d}) {
    EXPECT_EQ(names_of(g, g.ploc(x, 2)), (Names{"a", "b", "c", "d"}));
    EXPECT_EQ(names_of(g, g.ploc(x, 3)), (Names{"a", "b", "c", "d"}));
  }
}

// ---------------------------------------------------------------------------
// Structural properties
// ---------------------------------------------------------------------------

TEST(Ploc, Equation1Monotonicity) {
  // Paper Eq. 1: ploc(x, q) ⊆ ploc(x, q+1).
  util::Rng rng(17);
  auto g = LocationGraph::random_connected(40, 25, rng);
  for (std::uint32_t x = 0; x < g.size(); ++x) {
    for (std::size_t q = 0; q + 1 <= g.size(); ++q) {
      const auto& small = g.ploc(LocationId(x), q);
      const auto& big = g.ploc(LocationId(x), q + 1);
      EXPECT_TRUE(std::includes(big.begin(), big.end(), small.begin(), small.end()))
          << "Eq. 1 violated at x=" << x << " q=" << q;
      if (small.size() == g.size()) break;
    }
  }
}

TEST(Ploc, BallCompositionLemma) {
  // ploc(x, q+r) == ∪_{z ∈ ploc(x,q)} ploc(z, r): the lemma behind the
  // location-update stop rule (broker_location.cpp).
  util::Rng rng(23);
  auto g = LocationGraph::random_connected(25, 12, rng);
  for (std::uint32_t x = 0; x < g.size(); x += 3) {
    for (std::size_t q = 0; q <= 3; ++q) {
      for (std::size_t r = 0; r <= 3; ++r) {
        const auto direct = g.ploc(LocationId(x), q + r);
        const auto composed = g.ploc_of_set(g.ploc(LocationId(x), q), r);
        EXPECT_EQ(direct, composed) << "x=" << x << " q=" << q << " r=" << r;
      }
    }
  }
}

TEST(Ploc, StopRuleSoundness) {
  // If ploc(x,q) == ploc(y,q) then ploc(x,q') == ploc(y,q') for q' >= q —
  // the reason a broker may stop forwarding a location update when its
  // own set is unchanged.
  util::Rng rng(29);
  auto g = LocationGraph::random_connected(30, 15, rng);
  for (std::uint32_t x = 0; x < g.size(); x += 2) {
    for (std::uint32_t y = 0; y < g.size(); y += 3) {
      for (std::size_t q = 0; q <= 4; ++q) {
        if (g.ploc(LocationId(x), q) != g.ploc(LocationId(y), q)) continue;
        for (std::size_t qq = q; qq <= q + 3; ++qq) {
          EXPECT_EQ(g.ploc(LocationId(x), qq), g.ploc(LocationId(y), qq));
        }
      }
    }
  }
}

TEST(Ploc, SaturationSteps) {
  auto line = LocationGraph::line(5);  // l0..l4
  EXPECT_EQ(line.saturation_steps(line.id_of("l0")), 4u);
  EXPECT_EQ(line.saturation_steps(line.id_of("l2")), 2u);
  EXPECT_EQ(line.max_saturation_steps(), 4u);

  auto fig7 = LocationGraph::paper_fig7();
  EXPECT_EQ(fig7.max_saturation_steps(), 2u);
}

TEST(Ploc, GridBallSizes) {
  auto g = LocationGraph::grid(5, 5);
  const auto center = g.id_of("g2_2");
  EXPECT_EQ(g.ploc(center, 0).size(), 1u);
  EXPECT_EQ(g.ploc(center, 1).size(), 5u);   // von-Neumann neighborhood
  EXPECT_EQ(g.ploc(center, 2).size(), 13u);  // diamond of radius 2
  const auto corner = g.id_of("g0_0");
  EXPECT_EQ(g.ploc(corner, 1).size(), 3u);
}

TEST(Ploc, RingBalls) {
  auto g = LocationGraph::ring(8);
  const auto x = g.id_of("r0");
  EXPECT_EQ(g.ploc(x, 1).size(), 3u);
  EXPECT_EQ(g.ploc(x, 3).size(), 7u);
  EXPECT_EQ(g.ploc(x, 4).size(), 8u);
  EXPECT_EQ(g.saturation_steps(x), 4u);
}

TEST(Ploc, CacheInvalidatedByNewEdges) {
  auto g = LocationGraph::line(4);
  const auto l0 = g.id_of("l0");
  EXPECT_EQ(g.ploc(l0, 1).size(), 2u);
  g.connect("l0", "l3");  // shortcut
  EXPECT_EQ(g.ploc(l0, 1).size(), 3u);
}

TEST(Ploc, ConstraintForSetMatchesLocationNames) {
  auto g = LocationGraph::paper_fig7();
  auto c = g.constraint_for(g.ploc(g.id_of("a"), 1));
  EXPECT_TRUE(c.matches(filter::Value("a")));
  EXPECT_TRUE(c.matches(filter::Value("b")));
  EXPECT_TRUE(c.matches(filter::Value("c")));
  EXPECT_FALSE(c.matches(filter::Value("d")));
}

// ---------------------------------------------------------------------------
// Set helpers
// ---------------------------------------------------------------------------

TEST(LocationSets, UnionDifferenceContains) {
  LocationSet a{LocationId(1), LocationId(3), LocationId(5)};
  LocationSet b{LocationId(3), LocationId(4)};
  EXPECT_EQ(set_union(a, b),
            (LocationSet{LocationId(1), LocationId(3), LocationId(4), LocationId(5)}));
  EXPECT_EQ(set_difference(a, b), (LocationSet{LocationId(1), LocationId(5)}));
  EXPECT_TRUE(set_contains(a, LocationId(3)));
  EXPECT_FALSE(set_contains(a, LocationId(4)));
  EXPECT_TRUE(set_equal(a, a));
  EXPECT_FALSE(set_equal(a, b));
}

TEST(LocationGraph, DisconnectedGraphSaturationThrows) {
  LocationGraph g;
  g.add("x");
  g.add("y");  // never connected
  EXPECT_THROW((void)g.saturation_steps(g.id_of("x")), util::AssertionError);
}

}  // namespace
}  // namespace rebeca::location
