// Quickstart: the four pub/sub primitives on a small broker network,
// declared through the scenario API.
//
// A three-broker chain, a consumer and a producer, a content filter, a
// handful of publications and a printout of what arrives.
// Run: ./example_quickstart
#include <iostream>

#include "src/scenario/scenario.hpp"

using namespace rebeca;

int main() {
  scenario::ScenarioBuilder b;
  // Three brokers in a chain: B0 — B1 — B2, links with 5 ms delay.
  b.seed(42).topology(scenario::TopologySpec::chain(3));

  // sub: free parking spaces cheaper than 3 EUR for compact cars or
  // larger (the paper's Sec. 2.1 example subscription); notify: print.
  b.client("consumer")
      .at_broker(0)
      .subscribes(filter::Filter()
                      .where("service", filter::Constraint::eq("parking"))
                      .where("cost", filter::Constraint::lt(3.0))
                      .where("size", filter::Constraint::ge("compact")))
      .notify([](const client::Delivery& d) {
        std::cout << "[" << sim::FormatTime{d.delivered_at} << "] received "
                  << d.notification.to_string() << " (seq " << d.seq << ")\n";
      });
  b.client("producer").at_broker(2);

  // Let the subscription propagate, then pub: three notifications, of
  // which only two match the filter.
  b.phase("propagate", sim::millis(100));
  b.phase("publish", sim::millis(100), [](scenario::Scenario& s) {
    client::Client& producer = s.client("producer");
    producer.publish(filter::Notification()
                         .set("service", "parking")
                         .set("location", "100 Rebeca Drive")
                         .set("cost", 2.5)
                         .set("size", "compact"));
    producer.publish(filter::Notification()
                         .set("service", "parking")
                         .set("location", "200 Rebeca Drive")
                         .set("cost", 5.0)  // too expensive — filtered out
                         .set("size", "compact"));
    producer.publish(filter::Notification()
                         .set("service", "parking")
                         .set("location", "17 Middleware Way")
                         .set("cost", 1.0)
                         .set("size", "suv"));
  });

  auto s = b.build();
  s->run();

  const scenario::ScenarioReport report = s->report();
  std::cout << "delivered " << report.client("consumer").delivered << " of "
            << report.published
            << " published notifications (1 filtered by content)\n"
            << "total messages in the network: " << report.messages.total()
            << " " << report.messages << "\n";
  return report.client("consumer").delivered == 2 ? 0 : 1;
}
