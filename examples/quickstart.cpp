// Quickstart: the four pub/sub primitives on a small broker network.
//
// Builds a three-broker chain, attaches a consumer and a producer,
// subscribes with a content filter, publishes a handful of notifications
// and prints what arrives. Run: ./example_quickstart
#include <iostream>

#include "src/broker/overlay.hpp"
#include "src/client/client.hpp"
#include "src/net/topology.hpp"

using namespace rebeca;

int main() {
  // The simulation kernel: all of virtual time flows from here.
  sim::Simulation sim(/*seed=*/42);

  // Three brokers in a chain: B0 — B1 — B2, links with 5 ms delay.
  broker::OverlayConfig cfg;
  cfg.broker.strategy = routing::Strategy::covering;
  broker::Overlay overlay(sim, net::Topology::chain(3), cfg);

  // A consumer at broker 0.
  client::ClientConfig consumer_cfg;
  consumer_cfg.id = ClientId(1);
  client::Client consumer(sim, consumer_cfg);
  overlay.connect_client(consumer, 0);

  // A producer at broker 2.
  client::ClientConfig producer_cfg;
  producer_cfg.id = ClientId(2);
  client::Client producer(sim, producer_cfg);
  overlay.connect_client(producer, 2);

  // sub: free parking spaces cheaper than 3 EUR for compact cars or
  // larger (the paper's Sec. 2.1 example subscription).
  consumer.subscribe(filter::Filter()
                         .where("service", filter::Constraint::eq("parking"))
                         .where("cost", filter::Constraint::lt(3.0))
                         .where("size", filter::Constraint::ge("compact")));

  // notify: print every delivery.
  consumer.on_notify = [&](const client::Delivery& d) {
    std::cout << "[" << sim::FormatTime{d.delivered_at} << "] received "
              << d.notification.to_string() << " (seq " << d.seq << ")\n";
  };

  // Let the subscription propagate through the broker chain.
  sim.run_until(sim::millis(100));

  // pub: three notifications; only two match the filter.
  producer.publish(filter::Notification()
                       .set("service", "parking")
                       .set("location", "100 Rebeca Drive")
                       .set("cost", 2.5)
                       .set("size", "compact"));
  producer.publish(filter::Notification()
                       .set("service", "parking")
                       .set("location", "200 Rebeca Drive")
                       .set("cost", 5.0)  // too expensive — filtered out
                       .set("size", "compact"));
  producer.publish(filter::Notification()
                       .set("service", "parking")
                       .set("location", "17 Middleware Way")
                       .set("cost", 1.0)
                       .set("size", "suv"));

  sim.run_until(sim::millis(200));

  std::cout << "delivered " << consumer.deliveries().size()
            << " of 3 published notifications (1 filtered by content)\n"
            << "total messages in the network: " << overlay.counters().total()
            << " " << overlay.counters() << "\n";
  return consumer.deliveries().size() == 2 ? 0 : 1;
}
