// Dynamic filters: the paper's Sec. 6 generalization — "location-
// dependent filters may be generalized to 'dynamic filters' that depend
// on a function of the local state of the client …, like a client
// interested in receiving notifications for sales that he still can
// afford".
//
// The location machinery is exactly that generalization: a "location"
// is any discretized client-state variable, and the movement graph is
// the state's transition structure. Here the state is the client's
// remaining budget (bucketed in 10-EUR bands, which can only drift to
// adjacent bands as the client spends or earns); the subscription
// "sales I can afford" is a location-dependent filter over the budget
// band, and the broker-side ploc lookahead absorbs spending the same way
// it absorbs driving.
//
// Run: ./example_affordable_sales
#include <iostream>

#include "src/broker/overlay.hpp"
#include "src/client/client.hpp"
#include "src/location/ld_spec.hpp"
#include "src/net/topology.hpp"

using namespace rebeca;

int main() {
  // The "movement graph" of the budget: bands 0-9, 10-19, ..., 90-99
  // EUR; spending/earning moves between adjacent bands.
  auto budget_bands = location::LocationGraph::line(10);  // l0 .. l9

  sim::Simulation sim(5);
  broker::OverlayConfig cfg;
  cfg.broker.locations = &budget_bands;
  broker::Overlay overlay(sim, net::Topology::chain(3), cfg);

  client::ClientConfig shopper_cfg;
  shopper_cfg.id = ClientId(1);
  shopper_cfg.locations = &budget_bands;
  client::Client shopper(sim, shopper_cfg);
  overlay.connect_client(shopper, 0);
  shopper.move_to("l5");  // 50-59 EUR in the wallet

  // "Sales I can afford": the marketplace tags each sale with the budget
  // band its price falls into; affordability = the sale's band is at or
  // below the shopper's. A vicinity radius of 5 bands approximates
  // "within reach" (bands are a line, so the ball spans lower and higher
  // bands; the client-side filter is exact either way and the paper's
  // point — broker-side lookahead on a client-state variable — stands).
  location::LdSpec spec;
  spec.base = filter::Filter().where("service", filter::Constraint::eq("sale"));
  spec.vicinity_radius = 2;  // prices within ±2 bands of the wallet
  spec.profile = location::UncertaintyProfile::global_resub();
  shopper.subscribe(spec);

  shopper.on_notify = [&](const client::Delivery& d) {
    std::cout << "  [" << sim::FormatTime{d.delivered_at} << "] wallet band "
              << budget_bands.name(shopper.location()) << ": affordable sale — "
              << d.notification.get("item")->as_string() << " at "
              << d.notification.get("price")->as_int() << " EUR\n";
  };

  client::ClientConfig market_cfg;
  market_cfg.id = ClientId(2);
  client::Client marketplace(sim, market_cfg);
  overlay.connect_client(marketplace, 2);

  auto post_sale = [&](const char* item, int price) {
    marketplace.publish(filter::Notification()
                            .set("service", "sale")
                            .set("item", item)
                            .set("price", price)
                            .set("location",
                                 "l" + std::to_string(price / 10)));
  };

  sim.run_until(sim::millis(200));
  std::cout << "wallet: 50-59 EUR band; posting sales...\n";
  post_sale("headphones", 45);  // within reach
  post_sale("keyboard", 60);    // within reach (one band up)
  post_sale("monitor", 89);     // far out of reach
  sim.run_until(sim::millis(400));

  std::cout << "the shopper spends 30 EUR (wallet drifts to the 20-29 "
               "band); the dynamic filter follows automatically:\n";
  shopper.move_to("l4");
  shopper.move_to("l3");
  shopper.move_to("l2");
  sim.run_until(sim::millis(600));
  post_sale("usb cable", 9);    // now within reach
  post_sale("headphones2", 55); // no longer within reach (3 bands up)
  sim.run_until(sim::millis(800));

  std::cout << "received " << shopper.deliveries().size()
            << " affordable-sale notifications (filters tracked the wallet "
               "without any re-subscription by the application).\n";
  return shopper.deliveries().size() == 3 ? 0 : 1;
}
