// Dynamic filters: the paper's Sec. 6 generalization — "location-
// dependent filters may be generalized to 'dynamic filters' that depend
// on a function of the local state of the client …, like a client
// interested in receiving notifications for sales that he still can
// afford".
//
// The location machinery is exactly that generalization: a "location"
// is any discretized client-state variable, and the movement graph is
// the state's transition structure. Here the state is the client's
// remaining budget (bucketed in 10-EUR bands, which can only drift to
// adjacent bands as the client spends or earns); the subscription
// "sales I can afford" is a location-dependent filter over the budget
// band, and the broker-side ploc lookahead absorbs spending the same way
// it absorbs driving. The whole experiment is one scenario declaration
// whose "movement graph" is a line of budget bands.
//
// Run: ./example_affordable_sales
#include <iostream>

#include "src/scenario/scenario.hpp"

using namespace rebeca;

namespace {

void post_sale(scenario::Scenario& s, const char* item, int price) {
  s.client("marketplace")
      .publish(filter::Notification()
                   .set("service", "sale")
                   .set("item", item)
                   .set("price", price)
                   .set("location", "l" + std::to_string(price / 10)));
}

}  // namespace

int main() {
  scenario::ScenarioBuilder b;
  // The "movement graph" of the budget: bands 0-9, 10-19, ..., 90-99
  // EUR; spending/earning moves between adjacent bands.
  b.seed(5)
      .topology(scenario::TopologySpec::chain(3))
      .locations(scenario::LocationSpec::line(10));  // l0 .. l9

  // "Sales I can afford": the marketplace tags each sale with the budget
  // band its price falls into; affordability = the sale's band is at or
  // below the shopper's. A vicinity radius of 2 bands approximates
  // "within reach" (bands are a line, so the ball spans lower and higher
  // bands; the client-side filter is exact either way and the paper's
  // point — broker-side lookahead on a client-state variable — stands).
  location::LdSpec spec;
  spec.base = filter::Filter().where("service", filter::Constraint::eq("sale"));
  spec.vicinity_radius = 2;  // prices within ±2 bands of the wallet
  spec.profile = location::UncertaintyProfile::global_resub();
  b.client("shopper").at_broker(0).starts_at("l5").subscribes(spec);
  b.client("marketplace").at_broker(2);

  b.phase("setup", sim::millis(200));
  b.phase("sales", sim::millis(200), [](scenario::Scenario& s) {
    std::cout << "wallet: 50-59 EUR band; posting sales...\n";
    post_sale(s, "headphones", 45);  // within reach
    post_sale(s, "keyboard", 60);    // within reach (one band up)
    post_sale(s, "monitor", 89);     // far out of reach
  });
  b.phase("spend", sim::millis(200), [](scenario::Scenario& s) {
    std::cout << "the shopper spends 30 EUR (wallet drifts to the 20-29 "
                 "band); the dynamic filter follows automatically:\n";
    s.client("shopper").move_to("l4");
    s.client("shopper").move_to("l3");
    s.client("shopper").move_to("l2");
  });
  b.phase("more-sales", sim::millis(200), [](scenario::Scenario& s) {
    post_sale(s, "usb cable", 9);     // now within reach
    post_sale(s, "headphones2", 55);  // no longer within reach (3 bands up)
  });

  auto s = b.build();
  const location::LocationGraph& budget_bands = *s->locations();
  client::Client& shopper = s->client("shopper");
  shopper.on_notify = [&](const client::Delivery& d) {
    std::cout << "  [" << sim::FormatTime{d.delivered_at} << "] wallet band "
              << budget_bands.name(shopper.location()) << ": affordable sale — "
              << d.notification.get("item")->as_string() << " at "
              << d.notification.get("price")->as_int() << " EUR\n";
  };
  s->run();

  std::cout << "received " << s->client("shopper").deliveries().size()
            << " affordable-sale notifications (filters tracked the wallet "
               "without any re-subscription by the application).\n";
  return s->client("shopper").deliveries().size() == 3 ? 0 : 1;
}
