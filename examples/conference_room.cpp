// Conference-room follow-me: the paper's logical-mobility example
// (Sec. 3.3 — a user moving "from his own office to the conference room
// next door" expects location-dependent notifications "instantaneously",
// without a setup blackout).
//
// One border broker serves the whole building (the client stays
// attached — pure logical mobility). Facility events are published per
// room; the user's subscription (location ∈ myloc) follows them. The
// example contrasts the middleware's location-dependent subscription
// against a manual unsub/resub wrapper, which suffers the 2·t_d blackout
// of Fig. 3a.
//
// Run: ./example_conference_room
#include <iostream>

#include "src/broker/overlay.hpp"
#include "src/client/client.hpp"
#include "src/location/ld_spec.hpp"
#include "src/net/topology.hpp"

using namespace rebeca;

namespace {

// Publishes one event in every room every 40 ms.
void publish_everywhere(sim::Simulation& sim, client::Client& facility,
                        const location::LocationGraph& building,
                        double duration_sec) {
  const int rounds = static_cast<int>(duration_sec * 25.0);
  for (int i = 0; i < rounds; ++i) {
    for (std::uint32_t r = 0; r < building.size(); ++r) {
      sim.schedule_after(sim::millis(40.0 * i), [&, r] {
        facility.publish(filter::Notification()
                             .set("service", "announce")
                             .set("location", building.name(LocationId(r))));
      });
    }
  }
}

}  // namespace

int main() {
  // The building: office — corridor — conference — lab — kitchen.
  location::LocationGraph building;
  building.connect("office", "corridor");
  building.connect("corridor", "conference");
  building.connect("corridor", "lab");
  building.connect("lab", "kitchen");

  // ---------- run 1: location-dependent subscription ----------
  std::size_t ld_received;
  {
    sim::Simulation sim(1);
    broker::OverlayConfig cfg;
    cfg.broker.locations = &building;
    // The producer sits 4 slow hops away: subscription changes take
    // ~2·t_d ≈ 170 ms to take effect, movement is fast — exactly the
    // regime the LD machinery targets.
    cfg.broker_link_delay = sim::DelayModel::fixed(sim::millis(20));
    broker::Overlay overlay(sim, net::Topology::chain(5), cfg);

    client::ClientConfig uc;
    uc.id = ClientId(1);
    uc.locations = &building;
    client::Client user(sim, uc);
    overlay.connect_client(user, 0);
    user.move_to("office");

    location::LdSpec spec;
    spec.base =
        filter::Filter().where("service", filter::Constraint::eq("announce"));
    spec.profile = location::UncertaintyProfile::global_resub();
    user.subscribe(spec);

    client::ClientConfig fc;
    fc.id = ClientId(2);
    client::Client facility(sim, fc);
    overlay.connect_client(facility, 4);

    sim.run_until(sim::millis(200));
    publish_everywhere(sim, facility, building, 2.0);
    // Walk to the conference room mid-stream.
    sim.schedule_at(sim::seconds(1), [&] { user.move_to("corridor"); });
    sim.schedule_at(sim::seconds(1.2), [&] { user.move_to("conference"); });
    sim.run_until(sim::seconds(4));
    ld_received = user.deliveries().size();
  }

  // ---------- run 2: manual unsub/resub wrapper (the Sec. 3.3 strawman) --
  std::size_t manual_received;
  {
    sim::Simulation sim(1);
    broker::OverlayConfig cfg;
    cfg.broker.locations = &building;
    cfg.broker_link_delay = sim::DelayModel::fixed(sim::millis(20));
    broker::Overlay overlay(sim, net::Topology::chain(5), cfg);

    client::ClientConfig uc;
    uc.id = ClientId(1);
    uc.locations = &building;
    client::Client user(sim, uc);
    overlay.connect_client(user, 0);
    user.move_to("office");

    auto room_filter = [&](const std::string& room) {
      return filter::Filter()
          .where("service", filter::Constraint::eq("announce"))
          .where("location", filter::Constraint::eq(room));
    };
    std::uint32_t sub = user.subscribe(room_filter("office"));

    client::ClientConfig fc;
    fc.id = ClientId(2);
    client::Client facility(sim, fc);
    overlay.connect_client(facility, 4);

    sim.run_until(sim::millis(200));
    publish_everywhere(sim, facility, building, 2.0);
    auto move_manually = [&](const std::string& room) {
      user.unsubscribe(sub);
      sub = user.subscribe(room_filter(room));
      user.move_to(room);
    };
    sim.schedule_at(sim::seconds(1), [&] { move_manually("corridor"); });
    sim.schedule_at(sim::seconds(1.2), [&] { move_manually("conference"); });
    sim.run_until(sim::seconds(4));
    manual_received = user.deliveries().size();
  }

  std::cout << "announcements received while walking office → corridor → "
               "conference:\n"
            << "  location-dependent subscription: " << ld_received << "\n"
            << "  manual unsub/resub wrapper:      " << manual_received
            << "  (blackout after every move, Fig. 3a)\n";
  return ld_received > manual_received ? 0 : 1;
}
