// Conference-room follow-me: the paper's logical-mobility example
// (Sec. 3.3 — a user moving "from his own office to the conference room
// next door" expects location-dependent notifications "instantaneously",
// without a setup blackout).
//
// One border broker serves the whole building (the client stays
// attached — pure logical mobility). Facility events are published per
// room; the user's subscription (location ∈ myloc) follows them. Both
// contestants — the middleware's location-dependent subscription and a
// manual unsub/resub wrapper that suffers the 2·t_d blackout of
// Fig. 3a — run as scenarios over the same building graph and phase
// schedule; only the subscription style differs.
//
// Run: ./example_conference_room
#include <iostream>

#include "src/scenario/scenario.hpp"

using namespace rebeca;

namespace {

// The building: office — corridor — conference — lab — kitchen.
location::LocationGraph make_building() {
  location::LocationGraph building;
  building.connect("office", "corridor");
  building.connect("corridor", "conference");
  building.connect("corridor", "lab");
  building.connect("lab", "kitchen");
  return building;
}

// Publishes one event in every room every 40 ms for `duration_sec`.
void publish_everywhere(scenario::Scenario& s, double duration_sec) {
  client::Client& facility = s.client("facility");
  const location::LocationGraph& building = *s.locations();
  const int rounds = static_cast<int>(duration_sec * 25.0);
  for (int i = 0; i < rounds; ++i) {
    for (std::uint32_t r = 0; r < building.size(); ++r) {
      s.sim().schedule_after(sim::millis(40.0 * i), [&, r] {
        facility.publish(filter::Notification()
                             .set("service", "announce")
                             .set("location", building.name(LocationId(r))));
      });
    }
  }
}

// Shared skeleton: producer 4 slow hops away (subscription changes take
// ~2·t_d ≈ 170 ms to take effect, movement is fast — exactly the regime
// the LD machinery targets); the user walks office → corridor →
// conference mid-stream. `on_move` performs the move in the contestant's
// own style.
scenario::ScenarioBuilder walk_skeleton(
    const location::LocationGraph* building,
    std::function<void(scenario::Scenario&, const std::string&)> on_move) {
  scenario::ScenarioBuilder b;
  b.seed(1)
      .topology(scenario::TopologySpec::chain(5))
      .locations(building)
      .broker_link_delay(sim::DelayModel::fixed(sim::millis(20)));
  b.client("user").at_broker(0).starts_at("office");
  b.client("facility").at_broker(4);
  b.phase("setup", sim::millis(200));
  b.phase("office", sim::millis(800),
          [](scenario::Scenario& s) { publish_everywhere(s, 2.0); });
  b.phase("corridor", sim::millis(200),
          [on_move](scenario::Scenario& s) { on_move(s, "corridor"); });
  b.phase("conference", sim::millis(2800),
          [on_move](scenario::Scenario& s) { on_move(s, "conference"); });
  return b;
}

}  // namespace

int main() {
  const location::LocationGraph building = make_building();

  // ---------- run 1: location-dependent subscription ----------
  std::size_t ld_received;
  {
    auto b = walk_skeleton(&building,
                           [](scenario::Scenario& s, const std::string& room) {
                             s.client("user").move_to(room);
                           });
    location::LdSpec spec;
    spec.base =
        filter::Filter().where("service", filter::Constraint::eq("announce"));
    spec.profile = location::UncertaintyProfile::global_resub();
    b.client("user").subscribes(spec);
    auto s = b.build();
    s->run();
    ld_received = s->client("user").deliveries().size();
  }

  // ---------- run 2: manual unsub/resub wrapper (the Sec. 3.3 strawman) --
  std::size_t manual_received;
  {
    auto room_filter = [](const std::string& room) {
      return filter::Filter()
          .where("service", filter::Constraint::eq("announce"))
          .where("location", filter::Constraint::eq(room));
    };
    auto sub = std::make_shared<std::uint32_t>(0);
    auto b = walk_skeleton(
        &building, [room_filter, sub](scenario::Scenario& s, const std::string& room) {
          client::Client& user = s.client("user");
          user.unsubscribe(*sub);
          *sub = user.subscribe(room_filter(room));
          user.move_to(room);
        });
    auto s = b.build();
    *sub = s->client("user").subscribe(room_filter("office"));
    s->run();
    manual_received = s->client("user").deliveries().size();
  }

  std::cout << "announcements received while walking office → corridor → "
               "conference:\n"
            << "  location-dependent subscription: " << ld_received << "\n"
            << "  manual unsub/resub wrapper:      " << manual_received
            << "  (blackout after every move, Fig. 3a)\n";
  return ld_received > manual_received ? 0 : 1;
}
