// Parking guidance: the paper's motivating location-based service
// (Sec. 1). A car drives through a city grid; a location-dependent
// subscription — "free parking spaces at most two blocks away from
// myloc" — follows it automatically. No manual re-subscription, no
// blackout: the middleware's per-hop ploc filters keep notifications for
// the *next* possible locations already flowing.
//
// The whole experiment — the city grid, the broker tree, the sensor
// feed, and the drive itself — is one scenario declaration.
// Run: ./example_parking_guidance
#include <iomanip>
#include <iostream>

#include "src/scenario/scenario.hpp"

using namespace rebeca;

int main() {
  scenario::ScenarioBuilder b;
  // The city: an 8×8 grid of street blocks, served by a broker tree.
  b.seed(7)
      .topology(scenario::TopologySpec::balanced_tree(2, 3))
      .locations(scenario::LocationSpec::grid(8, 8));

  // The car, attached to a downtown broker. Location-dependent
  // subscription: parking vacancies within 2 blocks, with the adaptive
  // uncertainty profile of paper Sec. 5.3 (the car changes blocks about
  // every second; subscription processing between brokers takes ~10 ms
  // round trips). It drives east along the first avenue, one block per
  // second.
  location::LdSpec spec;
  spec.base = filter::Filter().where("service", filter::Constraint::eq("parking"));
  spec.vicinity_radius = 2;
  spec.profile = location::UncertaintyProfile::adaptive(
      sim::seconds(1), {sim::millis(12), sim::millis(10), sim::millis(10)});
  b.client("car")
      .at_broker(4)
      .starts_at("g0_0")
      .subscribes(spec)
      .walks(scenario::WalkSpec()
                 .route({"g1_0", "g2_0", "g3_0", "g4_0", "g5_0", "g6_0", "g7_0"})
                 .residing(sim::seconds(1))
                 .moves(7)
                 .from_phase("drive"));

  // The city's parking sensors: vacancies pop up all over town, four per
  // second, attached to a different broker than the car.
  b.client("sensors")
      .at_broker(9)
      .publishes(scenario::PublishSpec()
                     .poisson(sim::millis(250))
                     .body(filter::Notification().set("service", "parking"))
                     .uniform_locations()
                     .with_seed(99)
                     .from_phase("drive")
                     .until_phase_end("drive"));

  b.phase("warmup", sim::millis(200));
  b.phase("drive", sim::seconds(8800.0 / 1000.0));
  b.phase("drain", sim::seconds(1));

  auto s = b.build();
  const location::LocationGraph& city = *s->locations();
  client::Client& car = s->client("car");
  car.on_notify = [&](const client::Delivery& d) {
    std::cout << "  [" << sim::FormatTime{d.delivered_at} << "] car at "
              << city.name(car.location()) << ": vacancy at "
              << d.notification.get("location")->as_string() << "\n";
  };

  std::cout << "driving g0_0 → g7_0, one block per second; vacancies "
            << "within 2 blocks are delivered:\n";
  s->run();

  const scenario::ScenarioReport report = s->report();
  std::cout << "received " << report.client("car").delivered
            << " nearby vacancies out of " << report.published
            << " citywide reports; " << report.client("car").filtered
            << " were stopped by the client-side filter, the rest never "
               "left the broker network.\n"
            << "location updates sent: "
            << report.messages.count(metrics::MessageClass::location_update)
            << " (vs. " << report.published << "×"
            << s->topology().edges().size()
            << " notification hops flooding would have cost)\n";
  return report.client("car").delivered == 0 ? 1 : 0;
}
