// Parking guidance: the paper's motivating location-based service
// (Sec. 1). A car drives through a city grid; a location-dependent
// subscription — "free parking spaces at most two blocks away from
// myloc" — follows it automatically. No manual re-subscription, no
// blackout: the middleware's per-hop ploc filters keep notifications for
// the *next* possible locations already flowing.
//
// Run: ./example_parking_guidance
#include <iomanip>
#include <iostream>

#include "src/broker/overlay.hpp"
#include "src/client/client.hpp"
#include "src/location/ld_spec.hpp"
#include "src/net/topology.hpp"
#include "src/workload/publisher.hpp"

using namespace rebeca;

int main() {
  sim::Simulation sim(7);

  // The city: an 8×8 grid of street blocks.
  auto city = location::LocationGraph::grid(8, 8);

  broker::OverlayConfig cfg;
  cfg.broker.locations = &city;
  broker::Overlay overlay(sim, net::Topology::balanced_tree(2, 3), cfg);

  // The car, attached to a downtown broker.
  client::ClientConfig car_cfg;
  car_cfg.id = ClientId(1);
  car_cfg.locations = &city;
  client::Client car(sim, car_cfg);
  overlay.connect_client(car, 4);
  car.move_to("g0_0");

  // Location-dependent subscription: parking vacancies within 2 blocks,
  // with the adaptive uncertainty profile of paper Sec. 5.3 (the car
  // changes blocks about every second; subscription processing between
  // brokers takes ~10 ms round trips).
  location::LdSpec spec;
  spec.base = filter::Filter().where("service", filter::Constraint::eq("parking"));
  spec.vicinity_radius = 2;
  spec.profile = location::UncertaintyProfile::adaptive(
      sim::seconds(1), {sim::millis(12), sim::millis(10), sim::millis(10)});
  car.subscribe(spec);

  car.on_notify = [&](const client::Delivery& d) {
    std::cout << "  [" << sim::FormatTime{d.delivered_at} << "] car at "
              << city.name(car.location()) << ": vacancy at "
              << d.notification.get("location")->as_string() << "\n";
  };

  // The city's parking sensors: vacancies pop up all over town, four per
  // second, attached to a different broker than the car.
  client::ClientConfig sensors_cfg;
  sensors_cfg.id = ClientId(2);
  client::Client sensors(sim, sensors_cfg);
  overlay.connect_client(sensors, 9);
  workload::PublisherConfig pub_cfg;
  pub_cfg.rate = workload::RateModel::poisson(sim::millis(250));
  pub_cfg.prototype = filter::Notification().set("service", "parking");
  pub_cfg.locations = &city;
  pub_cfg.seed = 99;
  workload::Publisher sensors_feed(sim, sensors, pub_cfg);

  sim.run_until(sim::millis(200));
  sensors_feed.start();

  // Drive east along the first avenue, one block per second.
  for (int x = 1; x < 8; ++x) {
    sim.schedule_at(sim::seconds(x), [&car, x] {
      car.move_to("g" + std::to_string(x) + "_0");
    });
  }
  std::cout << "driving g0_0 → g7_0, one block per second; vacancies "
            << "within 2 blocks are delivered:\n";
  sim.run_until(sim::seconds(9));
  sensors_feed.stop();
  sim.run_until(sim::seconds(10));

  std::cout << "received " << car.deliveries().size()
            << " nearby vacancies out of " << sensors_feed.published()
            << " citywide reports; " << car.filtered_count()
            << " were stopped by the client-side filter, the rest never "
               "left the broker network.\n"
            << "location updates sent: "
            << overlay.counters().count(metrics::MessageClass::location_update)
            << " (vs. " << sensors_feed.published() << "×"
            << overlay.topology().edges().size()
            << " notification hops flooding would have cost)\n";
  return car.deliveries().empty() ? 1 : 0;
}
