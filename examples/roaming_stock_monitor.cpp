// Roaming stock monitor: the paper's transparency scenario (Sec. 3.1 —
// "stock quote monitoring seamlessly transferred from PCs to PDAs").
//
// A trader watches a ticker at the office (broker 0), disconnects, rides
// the train (offline), and reopens the application on a PDA attached to
// a different broker. The application code only ever calls subscribe and
// reads notifications — the middleware relocates the subscription,
// replays the buffered quotes, and the trader misses nothing, sees no
// duplicates, and sees quotes in order.
//
// Run: ./example_roaming_stock_monitor
#include <iostream>

#include "src/broker/overlay.hpp"
#include "src/client/client.hpp"
#include "src/metrics/checkers.hpp"
#include "src/net/topology.hpp"
#include "src/workload/publisher.hpp"

using namespace rebeca;

int main() {
  sim::Simulation sim(2026);

  broker::Overlay overlay(sim, net::Topology::balanced_tree(2, 2),
                          broker::OverlayConfig{});

  // The exchange feed: 20 quotes per second, attached at a leaf broker.
  client::ClientConfig feed_cfg;
  feed_cfg.id = ClientId(100);
  client::Client exchange(sim, feed_cfg);
  overlay.connect_client(exchange, 6);
  workload::PublisherConfig pub_cfg;
  pub_cfg.rate = workload::RateModel::periodic(sim::millis(50));
  pub_cfg.prototype = filter::Notification().set("sym", "RBCA").set("px", 101.5);
  pub_cfg.seed = 5;
  workload::Publisher feed(sim, exchange, pub_cfg);

  // The trader at the office.
  client::ClientConfig trader_cfg;
  trader_cfg.id = ClientId(1);
  client::Client trader(sim, trader_cfg);
  overlay.connect_client(trader, 3);
  trader.subscribe(filter::Filter().where("sym", filter::Constraint::eq("RBCA")));

  sim.run_until(sim::millis(200));
  feed.start();

  std::cout << "09:00 trading starts; trader watches at the office broker\n";
  sim.run_until(sim.now() + sim::seconds(5));
  const auto at_office = trader.deliveries().size();
  std::cout << "      " << at_office << " quotes received at the office\n";

  std::cout << "09:05 laptop lid closed — silent disconnect, train ride\n";
  trader.detach_silently();
  sim.run_until(sim.now() + sim::seconds(5));

  std::cout << "09:10 PDA comes online at another broker; subscription\n"
            << "      relocates, buffered quotes replay\n";
  overlay.connect_client(trader, 5);
  sim.run_until(sim.now() + sim::seconds(5));
  feed.stop();
  sim.run_until(sim.now() + sim::seconds(1));

  // Verify the paper's QoS requirements explicitly.
  const auto fifo = metrics::check_sender_fifo(trader.deliveries());
  std::vector<NotificationId> expected;
  for (std::uint64_t i = 1; i <= feed.published(); ++i) {
    expected.emplace_back((static_cast<std::uint64_t>(100) << 32) | i);
  }
  const auto complete = metrics::check_exactly_once(trader.deliveries(), expected);

  std::cout << "published " << feed.published() << ", delivered "
            << trader.deliveries().size() << " (missing " << complete.missing
            << ", duplicates " << complete.duplicates << ", FIFO violations "
            << fifo.violations << ")\n";
  std::cout << (complete.exactly_once() && fifo.ok()
                    ? "transparent roaming: exactly-once, in order.\n"
                    : "QoS violation — this should not happen!\n");
  return complete.exactly_once() && fifo.ok() ? 0 : 1;
}
