// Roaming stock monitor: the paper's transparency scenario (Sec. 3.1 —
// "stock quote monitoring seamlessly transferred from PCs to PDAs").
//
// A trader watches a ticker at the office (broker 3), disconnects, rides
// the train (offline), and reopens the application on a PDA attached to
// a different broker. The whole experiment is one scenario declaration:
// the application code only ever calls subscribe and reads
// notifications — the middleware relocates the subscription, replays the
// buffered quotes, and the trader misses nothing, sees no duplicates,
// and sees quotes in order.
//
// Run: ./example_roaming_stock_monitor
#include <iostream>

#include "src/scenario/scenario.hpp"

using namespace rebeca;

int main() {
  scenario::ScenarioBuilder b;
  b.seed(2026).topology(scenario::TopologySpec::balanced_tree(2, 2));

  // The exchange feed: 20 quotes per second, attached at a leaf broker.
  b.client("exchange")
      .with_id(100)
      .at_broker(6)
      .publishes(scenario::PublishSpec()
                     .every(sim::millis(50))
                     .body(filter::Notification().set("sym", "RBCA").set("px", 101.5))
                     .with_seed(5)
                     .from_phase("office")
                     .until_phase_end("pda"));

  // The trader at the office.
  b.client("trader")
      .with_id(1)
      .at_broker(3)
      .subscribes(filter::Filter().where("sym", filter::Constraint::eq("RBCA")));

  b.phase("warmup", sim::millis(200));
  b.phase("office", sim::seconds(5), [](scenario::Scenario&) {
    std::cout << "09:00 trading starts; trader watches at the office broker\n";
  });
  b.phase("train", sim::seconds(5), [](scenario::Scenario& s) {
    std::cout << "09:05 laptop lid closed — silent disconnect, train ride\n";
    s.detach("trader");
  });
  b.phase("pda", sim::seconds(5), [](scenario::Scenario& s) {
    std::cout << "09:10 PDA comes online at another broker; subscription\n"
              << "      relocates, buffered quotes replay\n";
    s.connect("trader", 5);
  });
  b.phase("drain", sim::seconds(1));

  auto s = b.build();
  s->run_next_phase();  // warmup
  s->run_next_phase();  // office
  const auto at_office = s->client("trader").deliveries().size();
  std::cout << "      " << at_office << " quotes received at the office\n";
  s->run();

  // The paper's QoS requirements, straight from the scenario report.
  const scenario::ScenarioReport report = s->report();
  const scenario::ClientReport& trader = report.client("trader");
  const auto fifo = metrics::check_sender_fifo(s->client("trader").deliveries());

  std::cout << "published " << report.published << ", delivered "
            << trader.delivered << " (missing " << trader.missing
            << ", duplicates " << trader.duplicates << ", FIFO violations "
            << fifo.violations << ")\n";
  const bool ok = trader.missing == 0 && trader.duplicates == 0 && fifo.ok();
  std::cout << (ok ? "transparent roaming: exactly-once, in order.\n"
                   : "QoS violation — this should not happen!\n");
  return ok ? 0 : 1;
}
