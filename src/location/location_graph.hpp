// Locations, movement graphs and the ploc function (paper Sec. 5.1).
//
// A LocationGraph formalizes "which locations can be reached from which
// locations in one movement step of the consumer" (Fig. 7). From it,
// ploc(x, q) — the set of possible locations after at most q steps —
// is a BFS ball around x. Staying put is always a possible move, so
// ploc(x, q) ⊆ ploc(x, q+1) (the paper's Equation 1) holds by
// construction.
//
// Locations are interned: the graph maps names to dense LocationId
// values, so location sets are cheap bitset-like sorted vectors and
// compose directly into `in {…}` filter constraints.
#ifndef REBECA_LOCATION_LOCATION_GRAPH_HPP
#define REBECA_LOCATION_LOCATION_GRAPH_HPP

#include <cstddef>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/filter/constraint.hpp"
#include "src/util/domain_ids.hpp"
#include "src/util/rng.hpp"

namespace rebeca::location {

/// A sorted, duplicate-free set of location ids.
using LocationSet = std::vector<LocationId>;

class LocationGraph {
 public:
  LocationGraph() = default;

  /// Adds (or finds) a location by name and returns its id.
  LocationId add(const std::string& name);

  /// Adds an undirected movement edge between two locations.
  void connect(LocationId a, LocationId b);
  void connect(const std::string& a, const std::string& b);

  [[nodiscard]] std::size_t size() const { return names_.size(); }
  [[nodiscard]] const std::string& name(LocationId id) const;
  [[nodiscard]] LocationId id_of(const std::string& name) const;
  [[nodiscard]] bool contains(const std::string& name) const {
    return index_.count(name) != 0;
  }
  [[nodiscard]] const std::vector<LocationId>& neighbors(LocationId id) const;

  /// All locations, sorted by id.
  [[nodiscard]] LocationSet all() const;

  /// ploc(x, q): locations reachable from x in at most q movement steps
  /// (BFS ball; includes x). Results are memoized — the broker network
  /// evaluates ploc on every location update.
  [[nodiscard]] const LocationSet& ploc(LocationId x, std::size_t q) const;

  /// Ball around a set: ∪_{x∈S} ploc(x, q).
  [[nodiscard]] LocationSet ploc_of_set(const LocationSet& base, std::size_t q) const;

  /// Eccentricity of x: smallest q with ploc(x, q) == all().
  [[nodiscard]] std::size_t saturation_steps(LocationId x) const;

  /// Largest eccentricity over all locations (graph "radius horizon").
  [[nodiscard]] std::size_t max_saturation_steps() const;

  /// Renders a location set as an `in {…}` constraint over the given
  /// attribute values (location names as strings).
  [[nodiscard]] filter::Constraint constraint_for(const LocationSet& set) const;

  // ---- builders for the shapes used in tests and experiments ----

  /// The 4-location movement graph of the paper's Fig. 7:
  /// a–b, a–c, b–d, c–d (a square; a and d are not adjacent, nor b and c).
  static LocationGraph paper_fig7();

  /// A line of n locations: l0 – l1 – ... – l(n-1).
  static LocationGraph line(std::size_t n);

  /// A w×h grid (streets of a city; rooms of a floor).
  static LocationGraph grid(std::size_t w, std::size_t h);

  /// A cycle of n locations.
  static LocationGraph ring(std::size_t n);

  /// Random connected graph: a random spanning tree plus `extra_edges`
  /// uniformly random chords. Deterministic given the RNG state.
  static LocationGraph random_connected(std::size_t n, std::size_t extra_edges,
                                        util::Rng& rng);

 private:
  std::vector<std::string> names_;
  std::map<std::string, LocationId> index_;
  std::vector<std::vector<LocationId>> adjacency_;
  // Memo: per location, ball per radius (filled lazily, monotone). The
  // inner container is a deque so references returned by ploc() survive
  // later cache growth.
  mutable std::vector<std::deque<LocationSet>> ball_cache_;
};

/// Set helpers (sorted-vector semantics).
[[nodiscard]] bool set_contains(const LocationSet& s, LocationId x);
[[nodiscard]] LocationSet set_union(const LocationSet& a, const LocationSet& b);
[[nodiscard]] LocationSet set_difference(const LocationSet& a, const LocationSet& b);
[[nodiscard]] bool set_equal(const LocationSet& a, const LocationSet& b);

}  // namespace rebeca::location

#endif  // REBECA_LOCATION_LOCATION_GRAPH_HPP
