#include "src/location/location_graph.hpp"

#include <algorithm>
#include <queue>

#include "src/util/assert.hpp"

namespace rebeca::location {

LocationId LocationGraph::add(const std::string& name) {
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  const LocationId id(static_cast<std::uint32_t>(names_.size()));
  names_.push_back(name);
  index_.emplace(name, id);
  adjacency_.emplace_back();
  ball_cache_.emplace_back();
  return id;
}

void LocationGraph::connect(LocationId a, LocationId b) {
  REBECA_ASSERT(a.value() < size() && b.value() < size(), "location out of range");
  REBECA_ASSERT(a != b, "self-loops are implicit (staying is always allowed)");
  auto& na = adjacency_[a.value()];
  if (std::find(na.begin(), na.end(), b) != na.end()) return;
  na.push_back(b);
  adjacency_[b.value()].push_back(a);
  // Topology changed: memoized balls are stale.
  for (auto& per_loc : ball_cache_) per_loc.clear();
}

void LocationGraph::connect(const std::string& a, const std::string& b) {
  connect(add(a), add(b));
}

const std::string& LocationGraph::name(LocationId id) const {
  REBECA_ASSERT(id.value() < size(), "location out of range");
  return names_[id.value()];
}

LocationId LocationGraph::id_of(const std::string& name) const {
  auto it = index_.find(name);
  REBECA_ASSERT(it != index_.end(), "unknown location '" << name << "'");
  return it->second;
}

const std::vector<LocationId>& LocationGraph::neighbors(LocationId id) const {
  REBECA_ASSERT(id.value() < size(), "location out of range");
  return adjacency_[id.value()];
}

LocationSet LocationGraph::all() const {
  LocationSet s;
  s.reserve(size());
  for (std::uint32_t i = 0; i < size(); ++i) s.emplace_back(i);
  return s;
}

const LocationSet& LocationGraph::ploc(LocationId x, std::size_t q) const {
  REBECA_ASSERT(x.value() < size(), "location out of range");
  auto& per_loc = ball_cache_[x.value()];
  // Balls saturate at the graph size; clamp q so the cache stays small.
  q = std::min(q, size());
  if (per_loc.size() > q) return per_loc[q];

  // Extend the cached ball sequence with BFS layers up to q.
  if (per_loc.empty()) per_loc.push_back(LocationSet{x});
  while (per_loc.size() <= q) {
    const LocationSet& prev = per_loc.back();
    LocationSet next = prev;
    for (LocationId u : prev) {
      for (LocationId v : adjacency_[u.value()]) next.push_back(v);
    }
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    per_loc.push_back(std::move(next));
  }
  return per_loc[q];
}

LocationSet LocationGraph::ploc_of_set(const LocationSet& base, std::size_t q) const {
  LocationSet result;
  for (LocationId x : base) result = set_union(result, ploc(x, q));
  return result;
}

std::size_t LocationGraph::saturation_steps(LocationId x) const {
  for (std::size_t q = 0; q <= size(); ++q) {
    if (ploc(x, q).size() == size()) return q;
  }
  REBECA_ASSERT(false, "movement graph is disconnected at " << name(x));
  return size();
}

std::size_t LocationGraph::max_saturation_steps() const {
  std::size_t result = 0;
  for (std::uint32_t i = 0; i < size(); ++i) {
    result = std::max(result, saturation_steps(LocationId(i)));
  }
  return result;
}

filter::Constraint LocationGraph::constraint_for(const LocationSet& set) const {
  std::set<filter::Value> values;
  for (LocationId id : set) values.insert(filter::Value(name(id)));
  return filter::Constraint::in_set(std::move(values));
}

LocationGraph LocationGraph::paper_fig7() {
  LocationGraph g;
  g.add("a");
  g.add("b");
  g.add("c");
  g.add("d");
  g.connect("a", "b");
  g.connect("a", "c");
  g.connect("b", "d");
  g.connect("c", "d");
  return g;
}

LocationGraph LocationGraph::line(std::size_t n) {
  REBECA_ASSERT(n >= 1, "line needs at least one location");
  LocationGraph g;
  for (std::size_t i = 0; i < n; ++i) g.add("l" + std::to_string(i));
  for (std::size_t i = 0; i + 1 < n; ++i) {
    g.connect(LocationId(static_cast<std::uint32_t>(i)),
              LocationId(static_cast<std::uint32_t>(i + 1)));
  }
  return g;
}

LocationGraph LocationGraph::grid(std::size_t w, std::size_t h) {
  REBECA_ASSERT(w >= 1 && h >= 1, "grid needs positive dimensions");
  LocationGraph g;
  auto name_of = [](std::size_t x, std::size_t y) {
    return "g" + std::to_string(x) + "_" + std::to_string(y);
  };
  for (std::size_t y = 0; y < h; ++y) {
    for (std::size_t x = 0; x < w; ++x) g.add(name_of(x, y));
  }
  for (std::size_t y = 0; y < h; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      if (x + 1 < w) g.connect(name_of(x, y), name_of(x + 1, y));
      if (y + 1 < h) g.connect(name_of(x, y), name_of(x, y + 1));
    }
  }
  return g;
}

LocationGraph LocationGraph::ring(std::size_t n) {
  REBECA_ASSERT(n >= 3, "ring needs at least three locations");
  LocationGraph g;
  for (std::size_t i = 0; i < n; ++i) g.add("r" + std::to_string(i));
  for (std::size_t i = 0; i < n; ++i) {
    g.connect(LocationId(static_cast<std::uint32_t>(i)),
              LocationId(static_cast<std::uint32_t>((i + 1) % n)));
  }
  return g;
}

LocationGraph LocationGraph::random_connected(std::size_t n, std::size_t extra_edges,
                                              util::Rng& rng) {
  REBECA_ASSERT(n >= 1, "graph needs at least one location");
  LocationGraph g;
  for (std::size_t i = 0; i < n; ++i) g.add("x" + std::to_string(i));
  for (std::size_t i = 1; i < n; ++i) {
    g.connect(LocationId(static_cast<std::uint32_t>(rng.index(i))),
              LocationId(static_cast<std::uint32_t>(i)));
  }
  for (std::size_t e = 0; e < extra_edges && n >= 2; ++e) {
    const auto a = rng.index(n);
    auto b = rng.index(n);
    if (a == b) continue;  // skip; determinism beats exact edge counts
    g.connect(LocationId(static_cast<std::uint32_t>(a)),
              LocationId(static_cast<std::uint32_t>(b)));
  }
  return g;
}

bool set_contains(const LocationSet& s, LocationId x) {
  return std::binary_search(s.begin(), s.end(), x);
}

LocationSet set_union(const LocationSet& a, const LocationSet& b) {
  LocationSet out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}

LocationSet set_difference(const LocationSet& a, const LocationSet& b) {
  LocationSet out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

bool set_equal(const LocationSet& a, const LocationSet& b) { return a == b; }

}  // namespace rebeca::location
