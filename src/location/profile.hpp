// Per-hop uncertainty profiles for location-dependent subscriptions
// (paper Sec. 5.3 "Adaptivity").
//
// A profile answers: at filter index i along the consumer→producer path
// (paper Fig. 6: F_0 is the client-side filter, F_i sits between B_i and
// B_{i+1}), how many movement steps q_i of uncertainty must the location
// set absorb? The paper gives one rule and two extreme instantiations:
//
//   adaptive(Δ, δ…)  — Fig. 8: walk the cumulative sums of the per-hop
//                      subscription-processing delays δ_i; every time the
//                      sum crosses the next multiple of the residence
//                      time Δ, ploc "takes a step".
//   global_resub()   — Table 3 (top): the trivial sub/unsub scheme; one
//                      step of lookahead everywhere ("the algorithm
//                      always has to provide information for 'the next'
//                      user location").
//   flooding()       — Table 3 (bottom): full uncertainty everywhere
//                      beyond the client-side filter.
//
// Profiles are value types because they travel inside subscription
// messages: every broker on the path evaluates steps(i) for its own i.
#ifndef REBECA_LOCATION_PROFILE_HPP
#define REBECA_LOCATION_PROFILE_HPP

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "src/sim/time.hpp"

namespace rebeca::location {

class UncertaintyProfile {
 public:
  /// Sentinel meaning "saturate to the whole location space".
  static constexpr std::size_t kUnbounded = std::numeric_limits<std::size_t>::max();

  UncertaintyProfile() : UncertaintyProfile(global_resub()) {}

  /// Fig. 8 rule. `delta` is the mean residence time Δ; `hop_delays` are
  /// the per-hop subscription processing delays δ_1, δ_2, …. Hops beyond
  /// the list reuse the last δ (or δ=0 if the list is empty).
  static UncertaintyProfile adaptive(sim::Duration delta,
                                     std::vector<sim::Duration> hop_delays);

  /// Trivial sub/unsub scheme: q_0 = 0, q_i = 1 for i ≥ 1.
  static UncertaintyProfile global_resub();

  /// Flooding: q_0 = 0, q_i = ∞ for i ≥ 1.
  static UncertaintyProfile flooding();

  /// Explicit q values (q_0 is forced to 0; values are made
  /// non-decreasing, which Eq. 1 requires of any sound profile).
  static UncertaintyProfile explicit_steps(std::vector<std::size_t> steps);

  /// Uncertainty steps for filter index i (F_i of Fig. 6). i = 0 is the
  /// client-side filter and always returns 0.
  [[nodiscard]] std::size_t steps(std::size_t i) const;

  enum class Kind { adaptive, global_resub, flooding, explicit_steps };
  [[nodiscard]] Kind kind() const { return kind_; }

  // Raw parameters, exposed so the wire codec can serialize a profile
  // and rebuild it through the factories on the receiving process.
  [[nodiscard]] sim::Duration delta() const { return delta_; }
  [[nodiscard]] const std::vector<sim::Duration>& hop_delays() const {
    return hop_delays_;
  }
  [[nodiscard]] const std::vector<std::size_t>& explicit_q() const {
    return explicit_q_;
  }

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const UncertaintyProfile&, const UncertaintyProfile&) = default;

 private:
  UncertaintyProfile(Kind kind, sim::Duration delta,
                     std::vector<sim::Duration> hop_delays,
                     std::vector<std::size_t> explicit_q)
      : kind_(kind), delta_(delta), hop_delays_(std::move(hop_delays)),
        explicit_q_(std::move(explicit_q)) {}

  [[nodiscard]] std::size_t adaptive_steps(std::size_t i) const;

  Kind kind_;
  sim::Duration delta_ = 0;
  std::vector<sim::Duration> hop_delays_;
  std::vector<std::size_t> explicit_q_;
};

}  // namespace rebeca::location

#endif  // REBECA_LOCATION_PROFILE_HPP
