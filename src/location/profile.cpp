#include "src/location/profile.hpp"

#include <algorithm>
#include <sstream>

#include "src/util/assert.hpp"

namespace rebeca::location {

UncertaintyProfile UncertaintyProfile::adaptive(
    sim::Duration delta, std::vector<sim::Duration> hop_delays) {
  REBECA_ASSERT(delta > 0, "residence time must be positive");
  for (auto d : hop_delays) REBECA_ASSERT(d >= 0, "negative hop delay");
  return {Kind::adaptive, delta, std::move(hop_delays), {}};
}

UncertaintyProfile UncertaintyProfile::global_resub() {
  return {Kind::global_resub, 0, {}, {}};
}

UncertaintyProfile UncertaintyProfile::flooding() {
  return {Kind::flooding, 0, {}, {}};
}

UncertaintyProfile UncertaintyProfile::explicit_steps(std::vector<std::size_t> steps) {
  // q_0 is the client-side filter: always exact. Enforce monotonicity so
  // the subset chain of paper Eq. 1 cannot be violated by configuration.
  if (steps.empty()) steps.push_back(0);
  steps[0] = 0;
  for (std::size_t i = 1; i < steps.size(); ++i) {
    steps[i] = std::max(steps[i], steps[i - 1]);
  }
  return {Kind::explicit_steps, 0, {}, std::move(steps)};
}

std::size_t UncertaintyProfile::steps(std::size_t i) const {
  if (i == 0) return 0;
  switch (kind_) {
    case Kind::global_resub:
      return 1;
    case Kind::flooding:
      return kUnbounded;
    case Kind::explicit_steps:
      return i < explicit_q_.size() ? explicit_q_[i] : explicit_q_.back();
    case Kind::adaptive:
      return adaptive_steps(i);
  }
  return 0;
}

std::size_t UncertaintyProfile::adaptive_steps(std::size_t i) const {
  // Fig. 8: accumulate δ_1..δ_i on a time line; q takes a step whenever
  // the accumulated processing delay crosses the next unclaimed multiple
  // of Δ. Worked example (Δ=100ms, δ=120,50,50,20ms):
  //   cum=120 > 1Δ → q_1=1;  cum=170 < 2Δ → q_2=1;
  //   cum=220 > 2Δ → q_3=2;  cum=240 < 3Δ → q_4=2.   (paper Table 4)
  std::size_t q = 0;
  std::size_t next_multiple = 1;
  sim::Duration cum = 0;
  for (std::size_t hop = 1; hop <= i; ++hop) {
    const sim::Duration d =
        hop_delays_.empty()
            ? 0
            : hop_delays_[std::min(hop - 1, hop_delays_.size() - 1)];
    cum += d;
    while (cum > static_cast<sim::Duration>(next_multiple) * delta_) {
      ++q;
      ++next_multiple;
    }
  }
  // "The algorithm always has to provide information for 'the next' user
  // location to maintain the semantics of flooding" (paper Sec. 5.3) —
  // without one step of lookahead, every move opens a blackout window no
  // matter how slowly the client moves.
  return std::max<std::size_t>(q, 1);
}

std::string UncertaintyProfile::to_string() const {
  std::ostringstream os;
  switch (kind_) {
    case Kind::global_resub:
      os << "global-resub";
      break;
    case Kind::flooding:
      os << "flooding";
      break;
    case Kind::explicit_steps: {
      os << "explicit[";
      for (std::size_t i = 0; i < explicit_q_.size(); ++i) {
        if (i != 0) os << ",";
        os << explicit_q_[i];
      }
      os << "]";
      break;
    }
    case Kind::adaptive:
      os << "adaptive(delta=" << sim::to_millis(delta_) << "ms, deltas=[";
      for (std::size_t i = 0; i < hop_delays_.size(); ++i) {
        if (i != 0) os << ",";
        os << sim::to_millis(hop_delays_[i]) << "ms";
      }
      os << "])";
      break;
  }
  return os.str();
}

}  // namespace rebeca::location
