// Location-dependent subscription specifications (paper Sec. 3.3, 5).
//
// An LdSpec is a subscription template: ordinary constraints plus the
// `myloc` marker on one location-valued attribute. The marker stands for
// "the vicinity of the consumer's current location" — a ball of
// `vicinity_radius` movement steps around it (radius 0 is the paper's
// simplest myloc(y) = {y}; radius 2 is "at most two blocks away from
// myloc"). The uncertainty profile dictates how much movement slack each
// broker along the delivery path adds on top.
#ifndef REBECA_LOCATION_LD_SPEC_HPP
#define REBECA_LOCATION_LD_SPEC_HPP

#include <string>

#include "src/filter/filter.hpp"
#include "src/location/location_graph.hpp"
#include "src/location/profile.hpp"

namespace rebeca::location {

struct LdSpec {
  /// Constraints other than the location marker.
  filter::Filter base;
  /// Attribute the marker applies to; notifications carry the location
  /// name as a string under this attribute.
  std::string location_attr = "location";
  /// myloc(y) = ball of this many movement steps around y.
  std::uint32_t vicinity_radius = 0;
  /// Per-hop uncertainty (Sec. 5.3).
  UncertaintyProfile profile;

  friend bool operator==(const LdSpec&, const LdSpec&) = default;

  /// The location set filter index i must accept while the consumer is
  /// at `loc`: the vicinity ball widened by q_i movement steps. (Both
  /// widenings happen on the same graph, so this is one ball of radius
  /// vicinity_radius + q_i; BFS balls compose: Sec. 5.1's Eq. 1 chain
  /// follows from monotone radii.) `extra_steps` widens the ball further
  /// — the pre-subscribe extension uses it while the consumer is
  /// disconnected and its possible locations keep spreading.
  [[nodiscard]] LocationSet concrete_set(const LocationGraph& graph,
                                         LocationId loc, std::size_t i,
                                         std::size_t extra_steps = 0) const {
    const std::size_t q = profile.steps(i);
    if (q >= graph.size()) {
      return graph.all();  // saturated (flooding beyond this hop)
    }
    return graph.ploc(loc, vicinity_radius + q + extra_steps);
  }

  /// Fully instantiated filter for index i at location `loc`.
  [[nodiscard]] filter::Filter concrete_filter(const LocationGraph& graph,
                                               LocationId loc, std::size_t i,
                                               std::size_t extra_steps = 0) const {
    filter::Filter f = base;
    f.where(location_attr,
            graph.constraint_for(concrete_set(graph, loc, i, extra_steps)));
    return f;
  }
};

}  // namespace rebeca::location

#endif  // REBECA_LOCATION_LD_SPEC_HPP
