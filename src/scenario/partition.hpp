// Broker-to-shard partitioning for sharded scenario execution.
#ifndef REBECA_SCENARIO_PARTITION_HPP
#define REBECA_SCENARIO_PARTITION_HPP

#include <cstddef>
#include <vector>

#include "src/net/topology.hpp"
#include "src/sim/delay_model.hpp"

namespace rebeca::scenario {

/// Greedy edge-cut partition of the broker tree into `shards` balanced
/// blocks: brokers are laid out in DFS preorder from broker 0 and cut
/// into equal-size runs. Consecutive preorder brokers are tree-adjacent,
/// so each block is (nearly) a connected subtree and block boundaries
/// cut few links — the greedy stand-in for a min-edge-cut partition.
/// Deterministic for a given topology. Returns broker index -> shard.
[[nodiscard]] std::vector<std::size_t> partition_brokers(
    const net::Topology& topology, std::size_t shards);

/// Number of topology edges whose endpoints land on different shards
/// under `assignment` (diagnostics and tests).
[[nodiscard]] std::size_t cut_edge_count(
    const net::Topology& topology, const std::vector<std::size_t>& assignment);

/// The conservative lookahead of a partitioned overlay: the smallest
/// lower-bound delay over broker links that cross shards, combined with
/// the client link delay whenever any broker runs off the control shard
/// (shard 0) — clients may roam to any broker, so every client link is
/// potentially cross-shard. Returns 0 when nothing can cross shards
/// (single shard); asserts on a zero minimum delay for crossing links.
[[nodiscard]] sim::Duration partition_lookahead(
    const net::Topology& topology, const std::vector<std::size_t>& assignment,
    const sim::DelayModel& broker_link_delay,
    const sim::DelayModel& client_link_delay, bool has_clients);

}  // namespace rebeca::scenario

#endif  // REBECA_SCENARIO_PARTITION_HPP
