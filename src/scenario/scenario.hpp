// The unified experiment surface: one declarative entry point for
// topology, workload, roaming, and metrics.
//
// The paper's evaluation is a matrix of *scenarios* — topology × routing
// strategy × relocation mode × movement trace. Instead of hand-wiring a
// Simulation + Topology + Overlay + Client stack per experiment (and
// getting the construction order and lifetimes right every time), a
// ScenarioBuilder describes the experiment and Scenario owns every
// runtime object in dependency order:
//
//   ScenarioBuilder b;
//   b.seed(17).topology(TopologySpec::chain(4));
//   b.client("consumer").at_broker(3).subscribes(some_filter);
//   b.client("producer").at_broker(0).publishes(
//       PublishSpec().every(sim::millis(10)).body(some_notification)
//                    .from_phase("traffic"));
//   b.phase("settle", sim::seconds(1)).phase("traffic", sim::seconds(2));
//   auto s = b.build();
//   s->run();
//   ScenarioReport r = s->report();
//
// A Scenario runs as a sequence of named phases; publishers and movers
// are bound to phases, and arbitrary mid-run interventions (detach,
// reconnect, mid-stream subscribe) hang off phase-entry callbacks that
// act through the Scenario's own surface. The report aggregates
// delivered / missing / duplicate counts against the scenario's own
// publication log, per-class message counters, and delivery-latency
// percentiles — and is byte-identical across runs with the same seed.
#ifndef REBECA_SCENARIO_SCENARIO_HPP
#define REBECA_SCENARIO_SCENARIO_HPP

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/broker/overlay.hpp"
#include "src/client/client.hpp"
#include "src/location/ld_spec.hpp"
#include "src/location/location_graph.hpp"
#include "src/metrics/checkers.hpp"
#include "src/metrics/counters.hpp"
#include "src/net/topology.hpp"
#include "src/routing/strategy.hpp"
#include "src/sim/sharded.hpp"
#include "src/sim/simulation.hpp"
#include "src/workload/mover.hpp"
#include "src/workload/publisher.hpp"

namespace rebeca::scenario {

class Scenario;

// ---------------------------------------------------------------------------
// Declarative specs
// ---------------------------------------------------------------------------

/// Broker-network shape. The random tree draws from the scenario seed, so
/// a scenario is fully determined by its declaration.
struct TopologySpec {
  static TopologySpec chain(std::size_t n);
  static TopologySpec star(std::size_t n);
  static TopologySpec balanced_tree(std::size_t depth, std::size_t fanout);
  static TopologySpec random_tree(std::size_t n);
  /// Escape hatch: a topology built elsewhere (tests with bespoke shapes).
  static TopologySpec external(net::Topology topology);

  [[nodiscard]] net::Topology build(util::Rng& rng) const;

  enum class Kind { chain, star, balanced_tree, random_tree, external };
  Kind kind = Kind::chain;
  std::size_t a = 2;
  std::size_t b = 0;
  std::optional<net::Topology> prebuilt;
};

/// Movement-graph shape for logical mobility (paper Sec. 5). The graph is
/// owned by the Scenario and injected into broker and client configs.
struct LocationSpec {
  static LocationSpec none();
  static LocationSpec line(std::size_t n);
  static LocationSpec grid(std::size_t w, std::size_t h);
  static LocationSpec ring(std::size_t n);
  static LocationSpec paper_fig7();
  static LocationSpec random_connected(std::size_t n, std::size_t extra_edges);

  [[nodiscard]] std::optional<location::LocationGraph> build(util::Rng& rng) const;

  enum class Kind { none, line, grid, ring, fig7, random };
  Kind kind = Kind::none;
  std::size_t a = 0;
  std::size_t b = 0;
};

/// A rate-based publish workload attached to one client, bound to the
/// phase schedule: it starts when `from_phase` is entered (default: the
/// first phase) and stops when `until_phase_end` ends (default: never).
struct PublishSpec {
  PublishSpec& every(sim::Duration period);
  PublishSpec& poisson(sim::Duration mean_interval);
  PublishSpec& body(filter::Notification prototype);
  /// Stamp each notification's location attribute uniformly from the
  /// scenario's location graph (Fig. 9's uniform location distribution).
  PublishSpec& uniform_locations(std::string attr = "location");
  PublishSpec& count(std::uint64_t max);
  PublishSpec& with_seed(std::uint64_t seed);
  PublishSpec& from_phase(std::string name);
  PublishSpec& until_phase_end(std::string name);

  workload::RateModel rate = workload::RateModel::periodic(sim::millis(100));
  filter::Notification prototype;
  bool stamp_location = false;
  std::string location_attr = "location";
  std::uint64_t max_count = 0;
  /// Explicit RNG seed; when unset the builder derives one from the
  /// scenario seed and the driver's declaration index, so independent
  /// stochastic drivers never run in lockstep.
  std::uint64_t seed = 1;
  bool seed_set = false;
  std::string start_phase;       // "" = first phase
  std::string stop_after_phase;  // "" = runs until the scenario ends
};

/// Physical roaming over the broker graph: dwell attached to a border
/// broker, detach, stay dark for `gap`, re-attach at the next stop. The
/// itinerary is a scripted hop list; leave it empty for seeded
/// random-waypoint roaming over all brokers.
struct RoamSpec {
  RoamSpec& route(std::vector<std::size_t> brokers);
  RoamSpec& random_waypoint();
  RoamSpec& dwelling(sim::Duration dwell);
  RoamSpec& dark_for(sim::Duration gap);
  RoamSpec& gracefully();
  RoamSpec& hops(std::uint64_t max);
  RoamSpec& with_seed(std::uint64_t seed);
  RoamSpec& from_phase(std::string name);

  std::vector<std::size_t> itinerary;  // empty + random = random waypoint
  bool random = false;
  sim::Duration dwell = sim::seconds(5);
  sim::Duration gap = sim::seconds(1);
  bool graceful = false;
  std::uint64_t max_hops = 0;
  std::uint64_t seed = 1;  // derived from the scenario seed when unset
  bool seed_set = false;
  std::string start_phase;
};

/// Logical mobility over the location graph: a scripted waypoint route
/// (location names, followed in order, wrapping) or — when empty — a
/// seeded random walk with mean residence `residence` per location.
struct WalkSpec {
  WalkSpec& route(std::vector<std::string> locations);
  WalkSpec& residing(sim::Duration residence);
  WalkSpec& exponential_residence();
  WalkSpec& moves(std::uint64_t max);
  WalkSpec& with_seed(std::uint64_t seed);
  WalkSpec& from_phase(std::string name);

  std::vector<std::string> waypoints;
  sim::Duration residence = sim::seconds(1);
  bool exponential = false;
  std::uint64_t max_moves = 0;
  std::uint64_t seed = 1;  // derived from the scenario seed when unset
  bool seed_set = false;
  std::string start_phase;
};

/// One client, declaratively: where it attaches, what it subscribes to
/// and advertises, what it publishes, and how it moves.
class ClientSpec {
 public:
  ClientSpec& with_id(std::uint32_t id);
  ClientSpec& at_broker(std::size_t broker_index);
  ClientSpec& starts_at(std::string location_name);
  ClientSpec& subscribes(filter::Filter f);
  ClientSpec& subscribes(location::LdSpec spec);
  ClientSpec& advertises(filter::Filter f);
  ClientSpec& publishes(PublishSpec w);
  ClientSpec& roams(RoamSpec r);
  ClientSpec& walks(WalkSpec w);
  ClientSpec& relocation(client::RelocationMode mode);
  ClientSpec& dedup(bool on);
  ClientSpec& client_side_filtering(bool on);
  ClientSpec& notify(std::function<void(const client::Delivery&)> fn);

 private:
  friend class ScenarioBuilder;
  friend class Scenario;

  std::string name_;
  std::optional<std::uint32_t> id_;
  std::optional<std::size_t> broker_;
  std::optional<std::string> start_location_;
  std::vector<filter::Filter> filters_;
  std::vector<location::LdSpec> ld_subs_;
  std::vector<filter::Filter> advertisements_;
  std::vector<PublishSpec> publish_;
  std::vector<RoamSpec> roam_;
  std::vector<WalkSpec> walk_;
  client::RelocationMode relocation_ = client::RelocationMode::rebeca;
  bool dedup_ = true;
  bool client_side_filtering_ = true;
  std::function<void(const client::Delivery&)> on_notify_;
};

/// A named slice of the run schedule. `on_enter` runs at the phase's
/// first instant and may intervene through the Scenario's surface
/// (detach/connect a client, subscribe mid-stream, …).
struct Phase {
  std::string name;
  sim::Duration duration = 0;
  std::function<void(Scenario&)> on_enter;
};

// ---------------------------------------------------------------------------
// Report
// ---------------------------------------------------------------------------

/// Delivery-latency distribution (publish to application notify),
/// integer nanoseconds so reports are byte-stable.
struct LatencyStats {
  std::uint64_t count = 0;
  sim::Duration mean = 0;
  sim::Duration p50 = 0;
  sim::Duration p90 = 0;
  sim::Duration p99 = 0;
  sim::Duration max = 0;

  friend bool operator==(const LatencyStats&, const LatencyStats&) = default;
};

struct ClientReport {
  std::string name;
  std::uint64_t published = 0;
  std::uint64_t delivered = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t filtered = 0;
  /// Completeness is tracked for clients whose declared subscriptions
  /// are all static filters: expected is the count of logged
  /// publications matching any of them.
  bool tracked = false;
  std::uint64_t expected = 0;
  std::uint64_t missing = 0;
  /// Sender-FIFO check (filled only when expect_fifo was declared).
  bool fifo_checked = false;
  std::uint64_t fifo_violations = 0;
  LatencyStats latency;

  friend bool operator==(const ClientReport&, const ClientReport&) = default;
};

/// Cumulative message-counter snapshot at a virtual-time checkpoint
/// (the Fig. 8/9 time series; enabled by checkpoint_every()).
struct CheckpointRow {
  sim::TimePoint at = 0;
  metrics::MessageCounters counters;
};

struct ScenarioReport {
  std::uint64_t seed = 0;
  sim::TimePoint finished_at = 0;
  std::uint64_t published = 0;
  std::uint64_t delivered = 0;
  std::uint64_t missing = 0;     // summed over tracked clients
  std::uint64_t duplicates = 0;
  /// Re-expose pins still held open across all brokers at run end (the
  /// moveout protocol's redundant wire entries; decay should keep this
  /// near zero under churn).
  std::uint64_t pins_active = 0;
  metrics::MessageCounters messages;
  LatencyStats latency;  // pooled over all clients
  std::vector<ClientReport> clients;
  std::vector<CheckpointRow> checkpoints;
  /// Declarative QoS expectations that failed, one line each; empty
  /// means every declared expectation held.
  std::vector<std::string> violations;

  [[nodiscard]] bool expectations_ok() const { return violations.empty(); }
  [[nodiscard]] const ClientReport& client(const std::string& name) const;
  /// Full, deterministic rendering: equal-seed runs serialize to
  /// byte-identical strings.
  [[nodiscard]] std::string to_string() const;
};

std::ostream& operator<<(std::ostream& os, const ScenarioReport& r);

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

class ScenarioBuilder {
 public:
  ScenarioBuilder& seed(std::uint64_t seed);
  ScenarioBuilder& topology(TopologySpec spec);
  ScenarioBuilder& locations(LocationSpec spec);
  /// Borrow an externally owned movement graph (must outlive the run).
  ScenarioBuilder& locations(const location::LocationGraph* graph);
  /// Full broker/overlay configuration; the builder injects the
  /// scenario's location graph into BrokerConfig::locations.
  ScenarioBuilder& overlay(broker::OverlayConfig config);
  ScenarioBuilder& broker(broker::BrokerConfig config);
  ScenarioBuilder& routing(routing::Strategy strategy);
  /// Notification data plane: Matcher::index (default, the counting
  /// MatchIndex) or Matcher::linear (the four reference scans). Equal
  /// seeds produce byte-identical reports under either.
  ScenarioBuilder& matcher(broker::Matcher matcher);
  /// Admin plane: AdminIndex::index (default, the CoverIndex) or
  /// AdminIndex::linear (the reference covering/covered-by scans).
  /// Equal seeds produce byte-identical reports under either.
  ScenarioBuilder& admin_index(routing::AdminIndex admin_index);
  ScenarioBuilder& broker_link_delay(sim::DelayModel delay);
  ScenarioBuilder& client_link_delay(sim::DelayModel delay);
  /// Declares a client — or, when the name is already declared, returns
  /// the existing spec for further refinement. References stay valid for
  /// the builder's lifetime (specs live in a deque).
  ClientSpec& client(std::string name);
  ScenarioBuilder& phase(std::string name, sim::Duration duration,
                         std::function<void(Scenario&)> on_enter = nullptr);

  /// Sharded execution: partition the broker graph across `n` worker
  /// shards with the conservative time-window engine (sharded.hpp).
  /// Equal-seed reports are byte-identical for any n >= 1; n = 0 (the
  /// default) selects the classic single-threaded kernel, which orders
  /// and draws differently and is therefore its own (also deterministic)
  /// sample. n is clamped to the broker count.
  ScenarioBuilder& shards(std::size_t n);
  /// Overrides the default greedy edge-cut partition: broker i runs on
  /// shard assignment[i]. Only meaningful with shards(n >= 1).
  ScenarioBuilder& shard_assignment(std::vector<std::size_t> assignment);
  /// Snapshot cumulative message counters every `interval` of virtual
  /// time (ScenarioReport::checkpoints; the Fig. 8/9 series). 0 = off.
  ScenarioBuilder& checkpoint_every(sim::Duration interval);
  /// Declarative QoS expectations, checked by Scenario::report(): the
  /// named client (whose declared subscriptions must all be static
  /// filters) misses nothing and sees no duplicates / observes
  /// per-producer FIFO order. Failures land in report().violations.
  ScenarioBuilder& expect_exactly_once(std::string client);
  ScenarioBuilder& expect_fifo(std::string client);

  /// Instantiates the runtime: topology, overlay, clients (in
  /// declaration order), initial locations, subscriptions,
  /// advertisements, and the workload drivers — nothing has run yet.
  /// Non-destructive: the same builder can build() repeatedly (e.g.
  /// multi-seed sweeps re-seeding between builds). Phase names
  /// referenced by workload specs and client ids are validated here.
  [[nodiscard]] std::unique_ptr<Scenario> build();

 private:
  friend class Scenario;
  struct Expectation {
    enum class Kind { exactly_once, fifo };
    Kind kind;
    std::string client;
  };

  std::uint64_t seed_ = 1;
  TopologySpec topology_ = TopologySpec::chain(2);
  LocationSpec locations_ = LocationSpec::none();
  const location::LocationGraph* borrowed_locations_ = nullptr;
  broker::OverlayConfig overlay_;
  std::deque<ClientSpec> clients_;  // deque: client() refs never dangle
  std::vector<Phase> phases_;
  std::size_t shards_ = 0;  // 0 = classic single-threaded kernel
  std::vector<std::size_t> shard_assignment_;
  sim::Duration checkpoint_every_ = 0;
  std::vector<Expectation> expectations_;
};

// ---------------------------------------------------------------------------
// Runtime
// ---------------------------------------------------------------------------

/// Owns the whole experiment in dependency order: simulation, location
/// graph, overlay (brokers + links), clients, workload drivers. Members
/// destruct in reverse declaration order, so drivers die before the
/// clients they steer and clients before the overlay links they hold —
/// the dangling-reference-prone manual ordering is gone.
class Scenario {
 public:
  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  // ---- runtime access ----
  /// The classic single-threaded kernel. Asserts on sharded scenarios —
  /// drive those through run()/run_for()/run_until() and schedule
  /// through exec().
  [[nodiscard]] sim::Simulation& sim() {
    REBECA_ASSERT(classic_ != nullptr,
                  "sim() is the classic kernel; this scenario is sharded — "
                  "use exec() to schedule and run()/run_for() to advance");
    return *classic_;
  }
  /// The client plane's executor: the classic kernel, or the sharded
  /// engine's control lane. Valid in both modes.
  [[nodiscard]] sim::Executor& exec() { return *exec_; }
  /// Worker shards (0 = classic kernel).
  [[nodiscard]] std::size_t shard_count() const { return shards_; }
  [[nodiscard]] sim::TimePoint now() const {
    return classic_ ? classic_->now() : sharded_->now();
  }
  [[nodiscard]] broker::Overlay& overlay() { return *overlay_; }
  [[nodiscard]] const net::Topology& topology() const {
    return overlay_->topology();
  }
  /// Live shared counter set of the classic kernel. Asserts on sharded
  /// scenarios, where accounting is per shard — read
  /// overlay().total_counters() (quiescent) or report().messages there.
  [[nodiscard]] metrics::MessageCounters& counters() {
    REBECA_ASSERT(classic_ != nullptr,
                  "counters() is the classic kernel's shared set; sharded "
                  "scenarios account per shard — use "
                  "overlay().total_counters() or report().messages");
    return overlay_->counters();
  }
  [[nodiscard]] const location::LocationGraph* locations() const {
    return locations_;
  }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  [[nodiscard]] client::Client& client(const std::string& name);
  [[nodiscard]] bool has_client(const std::string& name) const;
  /// The number of notifications `name` has published so far (from the
  /// scenario's publication log).
  [[nodiscard]] std::uint64_t published_by(const std::string& name) const;
  /// Every stamped notification published by any scenario client.
  [[nodiscard]] const std::vector<filter::Notification>& publications() const {
    return publications_;
  }

  // ---- imperative surface (phase callbacks, tests) ----
  /// Adds a client at runtime; `broker_index` empty leaves it detached.
  client::Client& add_client(const std::string& name,
                             std::optional<std::size_t> broker_index = {},
                             client::ClientConfig config = {});
  void connect(const std::string& name, std::size_t broker_index);
  void detach(const std::string& name, bool graceful = false);
  void run_for(sim::Duration d) { advance_to(now() + d); }
  void run_until(sim::TimePoint t) { advance_to(t); }

  // ---- phased schedule ----
  /// Runs the next declared phase to its end; false when none remain.
  bool run_next_phase();
  /// Runs all remaining phases.
  void run();
  [[nodiscard]] std::size_t phases_remaining() const {
    return phases_.size() - next_phase_;
  }

  [[nodiscard]] ScenarioReport report() const;

 private:
  friend class ScenarioBuilder;

  struct Member {
    std::string name;
    std::unique_ptr<client::Client> client;
    std::vector<filter::Filter> tracked_filters;  // static subs, for report
    bool tracked = false;
  };

  struct BoundPublisher {
    std::unique_ptr<workload::Publisher> driver;
    std::string start_phase;
    std::string stop_after_phase;
  };

  struct BoundMover {
    std::unique_ptr<workload::PhysicalMover> roam;
    std::unique_ptr<workload::LogicalMover> walk;
    std::string start_phase;
  };

  Scenario(std::uint64_t seed, std::size_t shards);

  Member& member(const std::string& name);
  const Member& member(const std::string& name) const;
  client::Client& instantiate(const std::string& name,
                              client::ClientConfig config,
                              std::optional<std::size_t> broker_index);
  /// Advances the engine to `t`, stopping at checkpoint boundaries to
  /// snapshot counters (both engines are quiescent there).
  void advance_to(sim::TimePoint t);
  void engine_run_until(sim::TimePoint t);

  /// RAII: attributes imperative client-plane work (phase callbacks,
  /// connect/detach, driver starts) to the sharded engine's control
  /// lane; no-op on the classic kernel.
  struct ControlScope {
    std::optional<sim::ShardedSimulation::Scope> scope;
    explicit ControlScope(Scenario& s) {
      if (s.sharded_) scope.emplace(s.sharded_->control());
    }
  };

  std::uint64_t seed_;
  std::size_t shards_;
  // Exactly one engine exists; it is declared first so every other
  // member (overlay links, clients, drivers) dies before it.
  std::unique_ptr<sim::Simulation> classic_;
  std::unique_ptr<sim::ShardedSimulation> sharded_;
  sim::Executor* exec_ = nullptr;  // the client plane's executor
  std::optional<location::LocationGraph> owned_locations_;
  const location::LocationGraph* locations_ = nullptr;
  std::unique_ptr<broker::Overlay> overlay_;
  std::vector<Member> members_;
  std::map<std::string, std::size_t> member_index_;
  std::vector<BoundPublisher> publishers_;
  std::vector<BoundMover> movers_;
  std::vector<Phase> phases_;
  std::size_t next_phase_ = 0;
  std::vector<filter::Notification> publications_;
  std::vector<ScenarioBuilder::Expectation> expectations_;
  sim::Duration checkpoint_every_ = 0;
  sim::TimePoint next_checkpoint_ = 0;
  std::vector<CheckpointRow> checkpoints_;
};

}  // namespace rebeca::scenario

#endif  // REBECA_SCENARIO_SCENARIO_HPP
