#include "src/scenario/scenario.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "src/scenario/partition.hpp"
#include "src/util/assert.hpp"

namespace rebeca::scenario {

// ---------------------------------------------------------------------------
// TopologySpec / LocationSpec
// ---------------------------------------------------------------------------

TopologySpec TopologySpec::chain(std::size_t n) {
  TopologySpec s;
  s.kind = Kind::chain;
  s.a = n;
  return s;
}

TopologySpec TopologySpec::star(std::size_t n) {
  TopologySpec s;
  s.kind = Kind::star;
  s.a = n;
  return s;
}

TopologySpec TopologySpec::balanced_tree(std::size_t depth, std::size_t fanout) {
  TopologySpec s;
  s.kind = Kind::balanced_tree;
  s.a = depth;
  s.b = fanout;
  return s;
}

TopologySpec TopologySpec::random_tree(std::size_t n) {
  TopologySpec s;
  s.kind = Kind::random_tree;
  s.a = n;
  return s;
}

TopologySpec TopologySpec::external(net::Topology topology) {
  TopologySpec s;
  s.kind = Kind::external;
  s.prebuilt = std::move(topology);
  return s;
}

net::Topology TopologySpec::build(util::Rng& rng) const {
  switch (kind) {
    case Kind::chain:
      return net::Topology::chain(a);
    case Kind::star:
      return net::Topology::star(a);
    case Kind::balanced_tree:
      return net::Topology::balanced_tree(a, b);
    case Kind::random_tree:
      return net::Topology::random_tree(a, rng);
    case Kind::external:
      REBECA_ASSERT(prebuilt.has_value(), "external topology spec is empty");
      return *prebuilt;
  }
  return net::Topology::chain(a);
}

LocationSpec LocationSpec::none() { return {}; }

LocationSpec LocationSpec::line(std::size_t n) {
  LocationSpec s;
  s.kind = Kind::line;
  s.a = n;
  return s;
}

LocationSpec LocationSpec::grid(std::size_t w, std::size_t h) {
  LocationSpec s;
  s.kind = Kind::grid;
  s.a = w;
  s.b = h;
  return s;
}

LocationSpec LocationSpec::ring(std::size_t n) {
  LocationSpec s;
  s.kind = Kind::ring;
  s.a = n;
  return s;
}

LocationSpec LocationSpec::paper_fig7() {
  LocationSpec s;
  s.kind = Kind::fig7;
  return s;
}

LocationSpec LocationSpec::random_connected(std::size_t n, std::size_t extra_edges) {
  LocationSpec s;
  s.kind = Kind::random;
  s.a = n;
  s.b = extra_edges;
  return s;
}

std::optional<location::LocationGraph> LocationSpec::build(util::Rng& rng) const {
  switch (kind) {
    case Kind::none:
      return std::nullopt;
    case Kind::line:
      return location::LocationGraph::line(a);
    case Kind::grid:
      return location::LocationGraph::grid(a, b);
    case Kind::ring:
      return location::LocationGraph::ring(a);
    case Kind::fig7:
      return location::LocationGraph::paper_fig7();
    case Kind::random:
      return location::LocationGraph::random_connected(a, b, rng);
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Workload specs (fluent setters)
// ---------------------------------------------------------------------------

PublishSpec& PublishSpec::every(sim::Duration period) {
  rate = workload::RateModel::periodic(period);
  return *this;
}
PublishSpec& PublishSpec::poisson(sim::Duration mean_interval) {
  rate = workload::RateModel::poisson(mean_interval);
  return *this;
}
PublishSpec& PublishSpec::body(filter::Notification p) {
  prototype = std::move(p);
  return *this;
}
PublishSpec& PublishSpec::uniform_locations(std::string attr) {
  stamp_location = true;
  location_attr = std::move(attr);
  return *this;
}
PublishSpec& PublishSpec::count(std::uint64_t max) {
  max_count = max;
  return *this;
}
PublishSpec& PublishSpec::with_seed(std::uint64_t s) {
  seed = s;
  seed_set = true;
  return *this;
}
PublishSpec& PublishSpec::from_phase(std::string name) {
  start_phase = std::move(name);
  return *this;
}
PublishSpec& PublishSpec::until_phase_end(std::string name) {
  stop_after_phase = std::move(name);
  return *this;
}

RoamSpec& RoamSpec::route(std::vector<std::size_t> brokers) {
  itinerary = std::move(brokers);
  return *this;
}
RoamSpec& RoamSpec::random_waypoint() {
  random = true;
  return *this;
}
RoamSpec& RoamSpec::dwelling(sim::Duration d) {
  dwell = d;
  return *this;
}
RoamSpec& RoamSpec::dark_for(sim::Duration g) {
  gap = g;
  return *this;
}
RoamSpec& RoamSpec::gracefully() {
  graceful = true;
  return *this;
}
RoamSpec& RoamSpec::hops(std::uint64_t max) {
  max_hops = max;
  return *this;
}
RoamSpec& RoamSpec::with_seed(std::uint64_t s) {
  seed = s;
  seed_set = true;
  return *this;
}
RoamSpec& RoamSpec::from_phase(std::string name) {
  start_phase = std::move(name);
  return *this;
}

WalkSpec& WalkSpec::route(std::vector<std::string> locations) {
  waypoints = std::move(locations);
  return *this;
}
WalkSpec& WalkSpec::residing(sim::Duration r) {
  residence = r;
  return *this;
}
WalkSpec& WalkSpec::exponential_residence() {
  exponential = true;
  return *this;
}
WalkSpec& WalkSpec::moves(std::uint64_t max) {
  max_moves = max;
  return *this;
}
WalkSpec& WalkSpec::with_seed(std::uint64_t s) {
  seed = s;
  seed_set = true;
  return *this;
}
WalkSpec& WalkSpec::from_phase(std::string name) {
  start_phase = std::move(name);
  return *this;
}

// ---------------------------------------------------------------------------
// ClientSpec
// ---------------------------------------------------------------------------

ClientSpec& ClientSpec::with_id(std::uint32_t id) {
  id_ = id;
  return *this;
}
ClientSpec& ClientSpec::at_broker(std::size_t broker_index) {
  broker_ = broker_index;
  return *this;
}
ClientSpec& ClientSpec::starts_at(std::string location_name) {
  start_location_ = std::move(location_name);
  return *this;
}
ClientSpec& ClientSpec::subscribes(filter::Filter f) {
  filters_.push_back(std::move(f));
  return *this;
}
ClientSpec& ClientSpec::subscribes(location::LdSpec spec) {
  ld_subs_.push_back(std::move(spec));
  return *this;
}
ClientSpec& ClientSpec::advertises(filter::Filter f) {
  advertisements_.push_back(std::move(f));
  return *this;
}
ClientSpec& ClientSpec::publishes(PublishSpec w) {
  publish_.push_back(std::move(w));
  return *this;
}
ClientSpec& ClientSpec::roams(RoamSpec r) {
  roam_.push_back(std::move(r));
  return *this;
}
ClientSpec& ClientSpec::walks(WalkSpec w) {
  walk_.push_back(std::move(w));
  return *this;
}
ClientSpec& ClientSpec::relocation(client::RelocationMode mode) {
  relocation_ = mode;
  return *this;
}
ClientSpec& ClientSpec::dedup(bool on) {
  dedup_ = on;
  return *this;
}
ClientSpec& ClientSpec::client_side_filtering(bool on) {
  client_side_filtering_ = on;
  return *this;
}
ClientSpec& ClientSpec::notify(std::function<void(const client::Delivery&)> fn) {
  on_notify_ = std::move(fn);
  return *this;
}

// ---------------------------------------------------------------------------
// ScenarioBuilder
// ---------------------------------------------------------------------------

ScenarioBuilder& ScenarioBuilder::seed(std::uint64_t seed) {
  seed_ = seed;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::topology(TopologySpec spec) {
  topology_ = std::move(spec);
  return *this;
}
ScenarioBuilder& ScenarioBuilder::locations(LocationSpec spec) {
  locations_ = spec;
  borrowed_locations_ = nullptr;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::locations(const location::LocationGraph* graph) {
  borrowed_locations_ = graph;
  locations_ = LocationSpec::none();
  return *this;
}
ScenarioBuilder& ScenarioBuilder::overlay(broker::OverlayConfig config) {
  overlay_ = std::move(config);
  return *this;
}
ScenarioBuilder& ScenarioBuilder::broker(broker::BrokerConfig config) {
  overlay_.broker = std::move(config);
  return *this;
}
ScenarioBuilder& ScenarioBuilder::routing(routing::Strategy strategy) {
  overlay_.broker.strategy = strategy;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::matcher(broker::Matcher matcher) {
  overlay_.broker.matcher = matcher;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::admin_index(routing::AdminIndex admin_index) {
  overlay_.broker.admin_index = admin_index;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::broker_link_delay(sim::DelayModel delay) {
  overlay_.broker_link_delay = delay;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::client_link_delay(sim::DelayModel delay) {
  overlay_.client_link_delay = delay;
  return *this;
}

ClientSpec& ScenarioBuilder::client(std::string name) {
  for (auto& c : clients_) {
    if (c.name_ == name) return c;  // refine the existing declaration
  }
  ClientSpec spec;
  spec.name_ = std::move(name);
  clients_.push_back(std::move(spec));
  return clients_.back();
}

ScenarioBuilder& ScenarioBuilder::phase(std::string name, sim::Duration duration,
                                        std::function<void(Scenario&)> on_enter) {
  REBECA_ASSERT(duration >= 0, "phase duration must be non-negative");
  phases_.push_back(Phase{std::move(name), duration, std::move(on_enter)});
  return *this;
}

ScenarioBuilder& ScenarioBuilder::shards(std::size_t n) {
  shards_ = n;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::shard_assignment(
    std::vector<std::size_t> assignment) {
  shard_assignment_ = std::move(assignment);
  return *this;
}
ScenarioBuilder& ScenarioBuilder::checkpoint_every(sim::Duration interval) {
  REBECA_ASSERT(interval >= 0, "checkpoint interval must be non-negative");
  checkpoint_every_ = interval;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::expect_exactly_once(std::string client) {
  expectations_.push_back(
      Expectation{Expectation::Kind::exactly_once, std::move(client)});
  return *this;
}
ScenarioBuilder& ScenarioBuilder::expect_fifo(std::string client) {
  expectations_.push_back(
      Expectation{Expectation::Kind::fifo, std::move(client)});
  return *this;
}

std::unique_ptr<Scenario> ScenarioBuilder::build() {
  // Seed-derived stream for structural randomness (random topologies and
  // location graphs), independent of the simulation's own RNG so traffic
  // draws do not shift when the structure changes. Draw order (locations
  // first, then topology) is part of the determinism contract.
  util::Rng structure_rng(util::SplitMix64(seed_ ^ 0x5ce9a1105ULL).next());
  std::optional<location::LocationGraph> built_locations =
      locations_.build(structure_rng);
  net::Topology topo = topology_.build(structure_rng);

  std::size_t shard_n = std::min(shards_, topo.broker_count());
  auto scenario = std::unique_ptr<Scenario>(new Scenario(seed_, shard_n));
  Scenario& s = *scenario;

  s.owned_locations_ = std::move(built_locations);
  s.locations_ = borrowed_locations_ != nullptr
                     ? borrowed_locations_
                     : (s.owned_locations_ ? &*s.owned_locations_ : nullptr);

  broker::OverlayConfig overlay_cfg = overlay_;
  if (s.locations_ != nullptr) overlay_cfg.broker.locations = s.locations_;
  if (shard_n == 0) {
    s.overlay_ =
        std::make_unique<broker::Overlay>(*s.classic_, topo, overlay_cfg);
  } else {
    std::vector<std::size_t> assignment = shard_assignment_;
    if (assignment.empty()) {
      assignment = partition_brokers(topo, shard_n);
    } else {
      REBECA_ASSERT(assignment.size() == topo.broker_count(),
                    "shard_assignment needs one entry per broker");
      for (std::size_t a : assignment) {
        REBECA_ASSERT(a < shard_n, "shard_assignment entry " << a
                                                             << " out of range");
      }
    }
    const sim::Duration lookahead = partition_lookahead(
        topo, assignment, overlay_cfg.broker_link_delay,
        overlay_cfg.client_link_delay, /*has_clients=*/!clients_.empty());
    // Nothing crosses shards (single shard / single block): windows can
    // span whole phases.
    s.sharded_->set_lookahead(lookahead > 0 ? lookahead : sim::seconds(3600));
    s.overlay_ = std::make_unique<broker::Overlay>(*s.sharded_, topo,
                                                   overlay_cfg, assignment);
  }
  // Client-plane wiring below (attach, subscribe, flushes) schedules
  // events; attribute it to the control lane when sharded.
  Scenario::ControlScope control_scope(s);

  s.expectations_ = expectations_;
  s.checkpoint_every_ = checkpoint_every_;
  s.next_checkpoint_ = checkpoint_every_;
  s.phases_ = phases_;
  const std::string first_phase = phases_.empty() ? std::string() : phases_[0].name;
  // A typo'd phase name — or a workload bound to a phase schedule that
  // does not exist — would silently yield a workload that never starts
  // (or never stops) and a vacuously perfect report. Reject both.
  const auto check_phase = [&](const std::string& name, const char* what) {
    REBECA_ASSERT(!phases_.empty(),
                  what << " is bound to the phase schedule, but no phases are "
                          "declared — the workload would never start");
    if (name.empty()) return;
    const bool known = std::any_of(phases_.begin(), phases_.end(),
                                   [&](const Phase& p) { return p.name == name; });
    REBECA_ASSERT(known, what << " references unknown phase \"" << name << "\"");
  };
  // Default driver seeds derive from the scenario seed and declaration
  // index, so independent stochastic drivers never run in lockstep and
  // re-seeding the builder varies the workload too.
  std::uint64_t driver_index = 0;
  const auto driver_seed = [&](bool set, std::uint64_t explicit_seed) {
    ++driver_index;
    if (set) return explicit_seed;
    return util::SplitMix64(seed_ ^ (0xd51be15eedULL + driver_index)).next();
  };

  std::uint32_t next_auto_id = 1;
  for (const ClientSpec& spec : clients_) {
    client::ClientConfig cfg;
    cfg.id = ClientId(spec.id_.value_or(next_auto_id));
    next_auto_id = std::max(next_auto_id, cfg.id.value()) + 1;
    cfg.locations = s.locations_;
    cfg.relocation = spec.relocation_;
    cfg.dedup = spec.dedup_;
    cfg.client_side_filtering = spec.client_side_filtering_;

    client::Client& c = s.instantiate(spec.name_, cfg, spec.broker_);
    if (spec.on_notify_) c.on_notify = spec.on_notify_;
    if (spec.start_location_) {
      REBECA_ASSERT(s.locations_ != nullptr,
                    "client " << spec.name_ << " starts_at(" << *spec.start_location_
                              << ") but the scenario has no location graph");
      c.move_to(*spec.start_location_);
    }
    for (const filter::Filter& f : spec.advertisements_) c.advertise(f);
    for (const filter::Filter& f : spec.filters_) {
      s.members_.back().tracked_filters.push_back(f);
      c.subscribe(f);
    }
    for (const location::LdSpec& ld : spec.ld_subs_) c.subscribe(ld);
    s.members_.back().tracked =
        !s.members_.back().tracked_filters.empty() && spec.ld_subs_.empty();

    for (const PublishSpec& w : spec.publish_) {
      check_phase(w.start_phase, "publishes() from_phase");
      check_phase(w.stop_after_phase, "publishes() until_phase_end");
      workload::PublisherConfig pc;
      pc.rate = w.rate;
      pc.prototype = w.prototype;
      if (w.stamp_location) {
        REBECA_ASSERT(s.locations_ != nullptr,
                      "uniform_locations() needs a scenario location graph");
        pc.locations = s.locations_;
        pc.location_attr = w.location_attr;
      }
      pc.max_count = w.max_count;
      pc.seed = driver_seed(w.seed_set, w.seed);
      s.publishers_.push_back(Scenario::BoundPublisher{
          std::make_unique<workload::Publisher>(*s.exec_, c, std::move(pc)),
          w.start_phase.empty() ? first_phase : w.start_phase,
          w.stop_after_phase});
    }
    for (const RoamSpec& r : spec.roam_) {
      check_phase(r.start_phase, "roams() from_phase");
      workload::PhysicalMoverConfig mc;
      mc.itinerary = r.itinerary;
      mc.random_waypoint = r.random;
      mc.dwell = r.dwell;
      mc.gap = r.gap;
      mc.graceful = r.graceful;
      mc.max_hops = r.max_hops;
      mc.seed = driver_seed(r.seed_set, r.seed);
      Scenario::BoundMover m;
      m.roam = std::make_unique<workload::PhysicalMover>(*s.overlay_, c,
                                                         std::move(mc));
      m.start_phase = r.start_phase.empty() ? first_phase : r.start_phase;
      s.movers_.push_back(std::move(m));
    }
    for (const WalkSpec& w : spec.walk_) {
      check_phase(w.start_phase, "walks() from_phase");
      REBECA_ASSERT(s.locations_ != nullptr,
                    "walks() needs a scenario location graph");
      workload::LogicalMoverConfig mc;
      mc.locations = s.locations_;
      for (const std::string& loc : w.waypoints) {
        mc.waypoints.push_back(s.locations_->id_of(loc));
      }
      mc.delta = w.residence;
      mc.exponential_residence = w.exponential;
      mc.max_moves = w.max_moves;
      mc.seed = driver_seed(w.seed_set, w.seed);
      Scenario::BoundMover m;
      m.walk =
          std::make_unique<workload::LogicalMover>(*s.exec_, c, std::move(mc));
      m.start_phase = w.start_phase.empty() ? first_phase : w.start_phase;
      s.movers_.push_back(std::move(m));
    }
  }

  // Expectations must name declared clients; exactly-once additionally
  // needs the report's completeness tracking (static filters only).
  for (const Expectation& e : expectations_) {
    REBECA_ASSERT(s.member_index_.count(e.client) != 0,
                  "expectation references unknown client \"" << e.client << "\"");
    if (e.kind == Expectation::Kind::exactly_once) {
      REBECA_ASSERT(s.member(e.client).tracked,
                    "expect_exactly_once(" << e.client
                                           << ") needs a client whose declared "
                                              "subscriptions are all static "
                                              "filters (completeness tracking)");
    }
  }
  return scenario;
}

// ---------------------------------------------------------------------------
// Scenario
// ---------------------------------------------------------------------------

Scenario::Scenario(std::uint64_t seed, std::size_t shards)
    : seed_(seed), shards_(shards) {
  if (shards_ == 0) {
    classic_ = std::make_unique<sim::Simulation>(seed_);
    exec_ = classic_.get();
  } else {
    sharded_ = std::make_unique<sim::ShardedSimulation>(seed_, shards_);
    exec_ = &sharded_->control();
  }
}

void Scenario::engine_run_until(sim::TimePoint t) {
  if (classic_) {
    classic_->run_until(t);
  } else {
    sharded_->run_until(t);
  }
}

void Scenario::advance_to(sim::TimePoint t) {
  REBECA_ASSERT(t >= now(), "advancing into the past");
  if (checkpoint_every_ > 0) {
    while (next_checkpoint_ <= t) {
      engine_run_until(next_checkpoint_);
      checkpoints_.push_back(
          CheckpointRow{next_checkpoint_, overlay_->total_counters()});
      next_checkpoint_ += checkpoint_every_;
    }
  }
  engine_run_until(t);
}

Scenario::Member& Scenario::member(const std::string& name) {
  auto it = member_index_.find(name);
  REBECA_ASSERT(it != member_index_.end(), "no client named " << name);
  return members_[it->second];
}

const Scenario::Member& Scenario::member(const std::string& name) const {
  auto it = member_index_.find(name);
  REBECA_ASSERT(it != member_index_.end(), "no client named " << name);
  return members_[it->second];
}

client::Client& Scenario::client(const std::string& name) {
  return *member(name).client;
}

bool Scenario::has_client(const std::string& name) const {
  return member_index_.count(name) != 0;
}

std::uint64_t Scenario::published_by(const std::string& name) const {
  const ClientId id = member(name).client->id();
  return static_cast<std::uint64_t>(std::count_if(
      publications_.begin(), publications_.end(),
      [&](const filter::Notification& n) { return n.producer() == id; }));
}

client::Client& Scenario::instantiate(const std::string& name,
                                      client::ClientConfig config,
                                      std::optional<std::size_t> broker_index) {
  REBECA_ASSERT(member_index_.count(name) == 0, "duplicate client name " << name);
  // Duplicate ids would collide NotificationIds ((id << 32) | seq) and
  // silently merge two producers' streams under dedup — reject them.
  for (const Member& m : members_) {
    REBECA_ASSERT(m.client->id() != config.id,
                  "clients " << m.name << " and " << name
                             << " share id " << config.id);
  }
  Member m;
  m.name = name;
  m.client = std::make_unique<client::Client>(*exec_, std::move(config));
  m.client->on_publish = [this](const filter::Notification& n) {
    publications_.push_back(n);
  };
  member_index_.emplace(name, members_.size());
  members_.push_back(std::move(m));
  client::Client& c = *members_.back().client;
  if (broker_index) overlay_->connect_client(c, *broker_index);
  return c;
}

client::Client& Scenario::add_client(const std::string& name,
                                     std::optional<std::size_t> broker_index,
                                     client::ClientConfig config) {
  if (!config.id.valid()) {
    std::uint32_t max_id = 0;
    for (const Member& m : members_) {
      max_id = std::max(max_id, m.client->id().value());
    }
    config.id = ClientId(max_id + 1);
  }
  if (config.locations == nullptr) config.locations = locations_;
  ControlScope scope(*this);
  return instantiate(name, std::move(config), broker_index);
}

void Scenario::connect(const std::string& name, std::size_t broker_index) {
  ControlScope scope(*this);
  overlay_->connect_client(client(name), broker_index);
}

void Scenario::detach(const std::string& name, bool graceful) {
  ControlScope scope(*this);
  client::Client& c = client(name);
  if (graceful) {
    c.detach_gracefully();
  } else {
    c.detach_silently();
  }
}

bool Scenario::run_next_phase() {
  if (next_phase_ >= phases_.size()) return false;
  const Phase& p = phases_[next_phase_];
  {
    // Phase interventions and driver starts act on the client plane
    // while the engine is quiescent; under sharding they schedule as
    // the control lane.
    ControlScope scope(*this);
    if (p.on_enter) p.on_enter(*this);
    for (BoundPublisher& b : publishers_) {
      if (b.start_phase == p.name) b.driver->start();
    }
    for (BoundMover& m : movers_) {
      if (m.start_phase != p.name) continue;
      if (m.roam) m.roam->start();
      if (m.walk) m.walk->start();
    }
  }
  advance_to(now() + p.duration);
  {
    ControlScope scope(*this);
    for (BoundPublisher& b : publishers_) {
      if (b.stop_after_phase == p.name) b.driver->stop();
    }
  }
  ++next_phase_;
  return true;
}

void Scenario::run() {
  while (run_next_phase()) {
  }
}

// ---------------------------------------------------------------------------
// Report
// ---------------------------------------------------------------------------

namespace {

LatencyStats latency_of(std::vector<sim::Duration> samples) {
  LatencyStats stats;
  stats.count = samples.size();
  if (samples.empty()) return stats;
  std::sort(samples.begin(), samples.end());
  sim::Duration sum = 0;
  for (sim::Duration d : samples) sum += d;
  const auto pct = [&](std::uint64_t k) {
    return samples[((samples.size() - 1) * k) / 100];
  };
  stats.mean = sum / static_cast<sim::Duration>(samples.size());
  stats.p50 = pct(50);
  stats.p90 = pct(90);
  stats.p99 = pct(99);
  stats.max = samples.back();
  return stats;
}

void print_latency(std::ostream& os, const LatencyStats& l) {
  os << "count " << l.count << " mean " << l.mean << "ns p50 " << l.p50
     << "ns p90 " << l.p90 << "ns p99 " << l.p99 << "ns max " << l.max << "ns";
}

}  // namespace

ScenarioReport Scenario::report() const {
  ScenarioReport r;
  r.seed = seed_;
  r.finished_at = now();
  r.published = publications_.size();
  r.messages = overlay_->total_counters();
  r.checkpoints = checkpoints_;
  for (std::size_t i = 0; i < overlay_->broker_count(); ++i) {
    r.pins_active += overlay_->broker(i).reexpose_pin_count();
  }

  // One pass over the log instead of one scan per client.
  std::map<ClientId, std::uint64_t> published_counts;
  for (const filter::Notification& n : publications_) {
    ++published_counts[n.producer()];
  }

  std::vector<sim::Duration> all_latencies;
  for (const Member& m : members_) {
    ClientReport cr;
    cr.name = m.name;
    const auto pub_it = published_counts.find(m.client->id());
    cr.published = pub_it != published_counts.end() ? pub_it->second : 0;
    cr.delivered = m.client->deliveries().size();
    cr.filtered = m.client->filtered_count();
    cr.duplicates = m.client->duplicate_count();

    std::vector<sim::Duration> latencies;
    latencies.reserve(m.client->deliveries().size());
    for (const client::Delivery& d : m.client->deliveries()) {
      latencies.push_back(d.delivered_at - d.notification.publish_time());
    }
    all_latencies.insert(all_latencies.end(), latencies.begin(), latencies.end());
    cr.latency = latency_of(std::move(latencies));

    if (m.tracked) {
      cr.tracked = true;
      std::vector<NotificationId> expected;
      for (const filter::Notification& n : publications_) {
        const bool matches =
            std::any_of(m.tracked_filters.begin(), m.tracked_filters.end(),
                        [&](const filter::Filter& f) { return f.matches(n); });
        if (matches) expected.push_back(n.id());
      }
      const metrics::CompletenessReport c =
          metrics::check_exactly_once(m.client->deliveries(), expected);
      cr.expected = c.expected;
      cr.missing = c.missing;
      cr.duplicates += c.duplicates;  // log-level duplicates (dedup off)
    }

    r.delivered += cr.delivered;
    r.missing += cr.missing;
    r.duplicates += cr.duplicates;
    r.clients.push_back(std::move(cr));
  }
  r.latency = latency_of(std::move(all_latencies));

  // Declarative QoS expectations (validated against members at build).
  for (const ScenarioBuilder::Expectation& e : expectations_) {
    const Member& m = member(e.client);
    ClientReport* cr = nullptr;
    for (ClientReport& c : r.clients) {
      if (c.name == e.client) cr = &c;
    }
    REBECA_ASSERT(cr != nullptr, "expectation client missing from report");
    switch (e.kind) {
      case ScenarioBuilder::Expectation::Kind::exactly_once:
        if (cr->missing != 0 || cr->duplicates != 0) {
          std::ostringstream os;
          os << "expect_exactly_once(" << e.client << "): missing "
             << cr->missing << " duplicates " << cr->duplicates;
          r.violations.push_back(os.str());
        }
        break;
      case ScenarioBuilder::Expectation::Kind::fifo: {
        const metrics::FifoReport f =
            metrics::check_sender_fifo(m.client->deliveries());
        cr->fifo_checked = true;
        cr->fifo_violations = f.violations;
        if (!f.ok()) {
          std::ostringstream os;
          os << "expect_fifo(" << e.client << "): " << f.violations << " of "
             << f.checked << " ordered pairs out of order";
          r.violations.push_back(os.str());
        }
        break;
      }
    }
  }
  return r;
}

const ClientReport& ScenarioReport::client(const std::string& name) const {
  for (const ClientReport& c : clients) {
    if (c.name == name) return c;
  }
  REBECA_ASSERT(false, "no client named " << name << " in report");
  return clients.front();  // unreachable
}

std::string ScenarioReport::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const ScenarioReport& r) {
  os << "scenario report (seed " << r.seed << ", finished at "
     << sim::FormatTime{r.finished_at} << ")\n";
  os << "  published " << r.published << " delivered " << r.delivered
     << " missing " << r.missing << " duplicates " << r.duplicates
     << " pins_active " << r.pins_active << "\n";
  os << "  latency: ";
  print_latency(os, r.latency);
  os << "\n  messages: " << r.messages << "\n";
  for (const ClientReport& c : r.clients) {
    os << "  client " << c.name << ": published " << c.published
       << " delivered " << c.delivered << " duplicates " << c.duplicates
       << " filtered " << c.filtered;
    if (c.tracked) {
      os << " expected " << c.expected << " missing " << c.missing;
    }
    if (c.fifo_checked) {
      os << " fifo_violations " << c.fifo_violations;
    }
    os << "\n    latency: ";
    print_latency(os, c.latency);
    os << "\n";
  }
  for (const CheckpointRow& cp : r.checkpoints) {
    os << "  checkpoint " << sim::FormatTime{cp.at} << ": " << cp.counters
       << "\n";
  }
  for (const std::string& v : r.violations) {
    os << "  expectation FAILED: " << v << "\n";
  }
  return os;
}

}  // namespace rebeca::scenario
