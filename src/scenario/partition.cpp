#include "src/scenario/partition.hpp"

#include <algorithm>

#include "src/util/assert.hpp"

namespace rebeca::scenario {

std::vector<std::size_t> partition_brokers(const net::Topology& topology,
                                           std::size_t shards) {
  const std::size_t n = topology.broker_count();
  REBECA_ASSERT(shards >= 1, "partition into zero shards");
  REBECA_ASSERT(shards <= n, "more shards than brokers");

  // Iterative DFS preorder from broker 0. Neighbors are visited in
  // adjacency order (edge declaration order), so the layout is a pure
  // function of the topology.
  std::vector<std::size_t> preorder;
  preorder.reserve(n);
  std::vector<bool> seen(n, false);
  std::vector<std::size_t> stack{0};
  seen[0] = true;
  while (!stack.empty()) {
    const std::size_t at = stack.back();
    stack.pop_back();
    preorder.push_back(at);
    const auto& nbrs = topology.neighbors(at);
    // Push in reverse so the first-declared neighbor is visited first.
    for (auto it = nbrs.rbegin(); it != nbrs.rend(); ++it) {
      if (!seen[*it]) {
        seen[*it] = true;
        stack.push_back(*it);
      }
    }
  }
  REBECA_ASSERT(preorder.size() == n, "topology not connected");

  const std::size_t chunk = (n + shards - 1) / shards;  // ceil
  std::vector<std::size_t> assignment(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    assignment[preorder[i]] = std::min(i / chunk, shards - 1);
  }
  return assignment;
}

std::size_t cut_edge_count(const net::Topology& topology,
                           const std::vector<std::size_t>& assignment) {
  std::size_t cut = 0;
  for (const auto& [a, b] : topology.edges()) {
    if (assignment[a] != assignment[b]) ++cut;
  }
  return cut;
}

sim::Duration partition_lookahead(const net::Topology& topology,
                                  const std::vector<std::size_t>& assignment,
                                  const sim::DelayModel& broker_link_delay,
                                  const sim::DelayModel& client_link_delay,
                                  bool has_clients) {
  sim::Duration lookahead = 0;  // 0 = nothing crosses shards (unbounded)
  const auto fold = [&](sim::Duration lb, const char* what) {
    REBECA_ASSERT(lb > 0,
                  what << " has a zero minimum delay — sharded execution "
                          "needs strictly positive link delay lower bounds "
                          "(they bound the synchronization window)");
    lookahead = lookahead == 0 ? lb : std::min(lookahead, lb);
  };
  for (const auto& [a, b] : topology.edges()) {
    if (assignment[a] != assignment[b]) {
      fold(broker_link_delay.lower_bound(), "a cut broker link");
    }
  }
  // The client plane lives on shard 0; any broker elsewhere makes every
  // client link a potential shard crossing (clients roam freely).
  if (has_clients &&
      std::any_of(assignment.begin(), assignment.end(),
                  [](std::size_t s) { return s != 0; })) {
    fold(client_link_delay.lower_bound(), "the client link delay");
  }
  return lookahead;
}

}  // namespace rebeca::scenario
