#include "src/scenario/sweep.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <exception>
#include <iomanip>
#include <limits>
#include <sstream>
#include <thread>
#include <utility>

#include "src/util/assert.hpp"

namespace rebeca::scenario {

namespace {
/// Series value for "this run did not report the metric".
constexpr double kAbsent = std::numeric_limits<double>::quiet_NaN();
}  // namespace

// ---------------------------------------------------------------------------
// SweepConfig
// ---------------------------------------------------------------------------

std::vector<std::uint64_t> SweepConfig::resolved_seeds() const {
  if (!seeds.empty()) return seeds;
  std::vector<std::uint64_t> out;
  out.reserve(runs);
  for (std::size_t i = 0; i < runs; ++i) {
    out.push_back(base_seed + static_cast<std::uint64_t>(i));
  }
  return out;
}

std::size_t SweepConfig::resolved_run_workers() const {
  std::size_t budget = threads;
  if (budget == 0) {
    budget = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  // Each sharded run occupies `shards` workers of its own; divide the
  // budget so runs × shards stays near the requested parallelism.
  return std::max<std::size_t>(1, budget / std::max<std::size_t>(1, shards));
}

// ---------------------------------------------------------------------------
// Metric extraction
// ---------------------------------------------------------------------------

void extract_metrics(const ScenarioReport& report,
                     std::map<std::string, double>& out) {
  const auto put = [&](const std::string& name, double v) {
    out.emplace(name, v);
  };
  put("published", static_cast<double>(report.published));
  put("delivered", static_cast<double>(report.delivered));
  put("missing", static_cast<double>(report.missing));
  put("duplicates", static_cast<double>(report.duplicates));
  put("latency_mean_ms", sim::to_millis(report.latency.mean));
  put("latency_p50_ms", sim::to_millis(report.latency.p50));
  put("latency_p99_ms", sim::to_millis(report.latency.p99));
  put("messages_total", static_cast<double>(report.messages.total()));
  put("messages_admin", static_cast<double>(report.messages.administrative()));
  put("messages_reexpose",
      static_cast<double>(report.messages.count(metrics::MessageClass::reexpose)));
  put("pins_active", static_cast<double>(report.pins_active));
  for (const ClientReport& c : report.clients) {
    const std::string prefix = "client." + c.name + ".";
    put(prefix + "published", static_cast<double>(c.published));
    put(prefix + "delivered", static_cast<double>(c.delivered));
    put(prefix + "duplicates", static_cast<double>(c.duplicates));
    put(prefix + "filtered", static_cast<double>(c.filtered));
    if (c.tracked) {
      put(prefix + "expected", static_cast<double>(c.expected));
      put(prefix + "missing", static_cast<double>(c.missing));
    }
  }
}

// ---------------------------------------------------------------------------
// SweepResult
// ---------------------------------------------------------------------------

std::vector<std::uint64_t> SweepResult::seeds() const {
  std::vector<std::uint64_t> out;
  out.reserve(reports.size());
  for (const ScenarioReport& r : reports) out.push_back(r.seed);
  return out;
}

MetricStats stats_over(const std::vector<double>& xs) {
  MetricStats s;
  // NaN marks "this run did not report the metric" (conditional probes,
  // no-delivery sentinels): excluded from the statistics rather than
  // diluted into them as fake zeros; n exposes the reduced sample.
  double sum = 0;
  bool first = true;
  for (double x : xs) {  // seed order: deterministic summation
    if (std::isnan(x)) continue;
    ++s.n;
    // rebeca-lint: allow(FLOAT-ORDER, xs is indexed by seed; the loop order is the seed order, fixed across shard counts)
    sum += x;
    s.min = first ? x : std::min(s.min, x);
    s.max = first ? x : std::max(s.max, x);
    first = false;
  }
  if (s.n == 0) return s;
  s.mean = sum / static_cast<double>(s.n);
  if (s.n > 1) {
    double sq = 0;
    for (double x : xs) {
      if (std::isnan(x)) continue;
      // rebeca-lint: allow(FLOAT-ORDER, same seed-indexed order as the mean pass above)
      sq += (x - s.mean) * (x - s.mean);
    }
    s.stddev = std::sqrt(sq / static_cast<double>(s.n - 1));
    // Normal-approximation 95% CI of the mean.
    s.ci95 = 1.96 * s.stddev / std::sqrt(static_cast<double>(s.n));
  }
  return s;
}

namespace {

/// Fixed-format rendering so tables are byte-stable: %.6g is locale-free
/// with snprintf and deterministic for identical doubles.
std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

std::string MetricStats::mean_ci(int precision) const {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << mean << " ±" << ci95;
  return os.str();
}

MetricStats SweepResult::stats(const std::string& metric) const {
  auto it = series.find(metric);
  REBECA_ASSERT(it != series.end(), "sweep has no metric " << metric);
  return stats_over(it->second);
}

std::map<std::string, MetricStats> SweepResult::aggregate() const {
  std::map<std::string, MetricStats> out;
  for (const auto& [name, xs] : series) out.emplace(name, stats_over(xs));
  return out;
}

std::string SweepResult::table() const {
  std::ostringstream os;
  os << "sweep over " << reports.size() << " seed"
     << (reports.size() == 1 ? "" : "s") << " [";
  const auto ss = seeds();
  for (std::size_t i = 0; i < ss.size(); ++i) {
    if (i != 0) os << " ";
    os << ss[i];
  }
  os << "]\n";
  // Column layout: metric, mean ± ci95, stddev, min, max.
  std::size_t name_w = 6;
  for (const auto& [name, xs] : series) name_w = std::max(name_w, name.size());
  const auto pad = [&os](const std::string& s, std::size_t w) {
    os << s;
    for (std::size_t i = s.size(); i < w; ++i) os << ' ';
  };
  pad("metric", name_w + 2);
  pad("n", 5);
  pad("mean", 14);
  pad("ci95", 12);
  pad("stddev", 12);
  pad("min", 12);
  os << "max\n";
  for (const auto& [name, xs] : series) {
    const MetricStats s = stats_over(xs);
    pad(name, name_w + 2);
    pad(std::to_string(s.n), 5);
    pad(fmt(s.mean), 14);
    pad(fmt(s.ci95), 12);
    pad(fmt(s.stddev), 12);
    pad(fmt(s.min), 12);
    os << fmt(s.max) << "\n";
  }
  return os.str();
}

std::string SweepResult::csv() const {
  std::ostringstream os;
  os << "metric,n,mean,stddev,ci95,min,max\n";
  for (const auto& [name, xs] : series) {
    const MetricStats s = stats_over(xs);
    os << name << "," << s.n << "," << fmt(s.mean) << "," << fmt(s.stddev)
       << "," << fmt(s.ci95) << "," << fmt(s.min) << "," << fmt(s.max) << "\n";
  }
  return os.str();
}

std::string SweepResult::csv_series() const {
  std::ostringstream os;
  os << "time_ms";
  for (std::size_t c = 0;
       c < static_cast<std::size_t>(metrics::MessageClass::kCount); ++c) {
    os << "," << metrics::message_class_name(static_cast<metrics::MessageClass>(c));
  }
  os << ",total,n\n";
  // Checkpoint schedules are part of the declaration, so every run has
  // the same count; tolerate ragged runs anyway and report n per row.
  std::size_t rows = 0;
  for (const ScenarioReport& r : reports) {
    rows = std::max(rows, r.checkpoints.size());
  }
  for (std::size_t i = 0; i < rows; ++i) {
    sim::TimePoint at = 0;
    std::size_t n = 0;
    std::array<double, static_cast<std::size_t>(metrics::MessageClass::kCount)>
        sums{};
    double total = 0;
    for (const ScenarioReport& r : reports) {  // seed order: deterministic
      if (i >= r.checkpoints.size()) continue;
      const CheckpointRow& cp = r.checkpoints[i];
      at = cp.at;
      ++n;
      for (std::size_t c = 0; c < sums.size(); ++c) {
        // rebeca-lint: allow(FLOAT-ORDER, exact integer counters summed in seed order of the reports vector)
        sums[c] += static_cast<double>(
            cp.counters.count(static_cast<metrics::MessageClass>(c)));
      }
      // rebeca-lint: allow(FLOAT-ORDER, exact integer counters summed in seed order of the reports vector)
      total += static_cast<double>(cp.counters.total());
    }
    os << fmt(sim::to_millis(at));
    for (double s : sums) os << "," << fmt(s / static_cast<double>(n));
    os << "," << fmt(total / static_cast<double>(n)) << "," << n << "\n";
  }
  return os.str();
}

std::string SweepResult::csv_runs() const {
  std::ostringstream os;
  os << "seed";
  for (const auto& [name, xs] : series) os << "," << name;
  os << "\n";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    os << reports[i].seed;
    for (const auto& [name, xs] : series) {
      os << ",";
      if (i < xs.size()) os << fmt(xs[i]);
    }
    os << "\n";
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// ScenarioSweep
// ---------------------------------------------------------------------------

ScenarioSweep::ScenarioSweep(Declare declare) : declare_(std::move(declare)) {
  REBECA_ASSERT(declare_ != nullptr, "sweep needs a declaration");
}

ScenarioSweep& ScenarioSweep::probe(Probe p) {
  probe_ = std::move(p);
  return *this;
}

SweepResult ScenarioSweep::run(const SweepConfig& config) const {
  const std::vector<std::uint64_t> seeds = config.resolved_seeds();
  REBECA_ASSERT(!seeds.empty(), "sweep with zero runs");

  struct RunSlot {
    ScenarioReport report;
    std::map<std::string, double> metrics;
    std::exception_ptr error;
  };
  std::vector<RunSlot> slots(seeds.size());

  // One run, entirely thread-local: fresh builder, fresh Scenario.
  const auto run_one = [&](std::size_t i) {
    try {
      ScenarioBuilder b;
      declare_(b);
      b.seed(seeds[i]);
      if (config.shards > 0) b.shards(config.shards);
      std::unique_ptr<Scenario> s = b.build();
      s->run();
      slots[i].report = s->report();
      extract_metrics(slots[i].report, slots[i].metrics);
      if (probe_) probe_(*s, slots[i].metrics);
    } catch (...) {
      slots[i].error = std::current_exception();
    }
  };

  std::size_t threads = std::min(config.resolved_run_workers(), seeds.size());

  if (threads <= 1) {
    for (std::size_t i = 0; i < seeds.size(); ++i) run_one(i);
  } else {
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
      pool.emplace_back([&] {
        for (std::size_t i = next.fetch_add(1); i < seeds.size();
             i = next.fetch_add(1)) {
          run_one(i);
        }
      });
    }
    for (std::thread& t : pool) t.join();
  }

  // Surface the first failure in seed order (deterministic, unlike
  // "first to fail on the clock").
  for (RunSlot& slot : slots) {
    if (slot.error) std::rethrow_exception(slot.error);
  }

  SweepResult result;
  result.reports.reserve(slots.size());
  for (std::size_t i = 0; i < slots.size(); ++i) {
    result.reports.push_back(std::move(slots[i].report));
    for (const auto& [name, value] : slots[i].metrics) {
      auto& xs = result.series[name];
      // A metric a run did not report is NaN, never 0.0: stats_over
      // excludes NaN (and reports the reduced n) instead of diluting the
      // mean with fake zero samples.
      xs.resize(i, kAbsent);
      xs.push_back(value);
    }
  }
  for (auto& [name, xs] : result.series) xs.resize(slots.size(), kAbsent);
  return result;
}

}  // namespace rebeca::scenario
