// Multi-seed scenario sweeps: the paper's evaluation methodology.
//
// Figs. 2–9 report averages over repeated stochastic runs; a single
// Scenario is one sample. ScenarioSweep runs one declaration across N
// seeds — in parallel, one Scenario per worker thread (the kernel is
// single-threaded per instance, but instances are fully independent) —
// and aggregates the ScenarioReports into mean / stddev / 95%-CI tables
// per metric.
//
//   ScenarioSweep sweep([](ScenarioBuilder& b) {
//     b.topology(TopologySpec::chain(4));
//     b.client("consumer").at_broker(3).subscribes(f);
//     ...
//   });
//   SweepConfig cfg;
//   cfg.base_seed = 1;
//   cfg.runs = 16;
//   SweepResult r = sweep.run(cfg);
//   std::cout << r.table();
//
// Determinism contract: the aggregate (table(), csv(), aggregate()) is
// byte-identical regardless of thread count or scheduling. Per-run
// results are stored by seed index and every reduction iterates in seed
// order, so no floating-point sum depends on completion order.
#ifndef REBECA_SCENARIO_SWEEP_HPP
#define REBECA_SCENARIO_SWEEP_HPP

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/scenario/scenario.hpp"

namespace rebeca::scenario {

/// How many runs, with which seeds, on how many threads.
struct SweepConfig {
  /// Explicit seed list; when empty, seeds are base_seed .. base_seed+runs-1.
  std::vector<std::uint64_t> seeds;
  std::uint64_t base_seed = 1;
  std::size_t runs = 1;
  /// Total worker-thread budget; 0 = hardware concurrency. The budget
  /// is split between concurrent runs and intra-run shards: with
  /// shards = s, about threads / s scenarios run at once, each on s
  /// shard workers.
  std::size_t threads = 0;
  /// Intra-scenario shards (ScenarioBuilder::shards); 0 leaves the
  /// declaration's engine choice untouched (classic kernel by default).
  std::size_t shards = 0;

  [[nodiscard]] std::vector<std::uint64_t> resolved_seeds() const;
  /// Concurrent runs after the shard split.
  [[nodiscard]] std::size_t resolved_run_workers() const;
};

/// Aggregate of one metric over the runs that reported it (NaN series
/// entries mean "absent for this run" and are excluded — n is the
/// surviving sample count). ci95 is the half-width of the
/// normal-approximation 95% confidence interval of the mean.
struct MetricStats {
  std::uint64_t n = 0;
  double mean = 0;
  double stddev = 0;  // sample stddev (n-1); 0 when n < 2
  double ci95 = 0;
  double min = 0;
  double max = 0;

  /// "mean ±ci95" at fixed precision — the cell format the figure
  /// benches share.
  [[nodiscard]] std::string mean_ci(int precision = 1) const;
};

/// One sweep's outcome: the per-seed reports (in seed order), the metric
/// series extracted from them, and deterministic renderings.
class SweepResult {
 public:
  /// Per-seed reports, in seed order (independent of thread scheduling).
  std::vector<ScenarioReport> reports;
  /// Metric name -> one value per run, in seed order. Contains the
  /// standard report metrics plus any probe-emitted custom metrics.
  std::map<std::string, std::vector<double>> series;

  [[nodiscard]] std::vector<std::uint64_t> seeds() const;
  [[nodiscard]] MetricStats stats(const std::string& metric) const;
  [[nodiscard]] std::map<std::string, MetricStats> aggregate() const;

  /// Mean ± CI table over every metric; byte-identical for equal runs
  /// regardless of thread count.
  [[nodiscard]] std::string table() const;
  /// Aggregate CSV: metric,n,mean,stddev,ci95,min,max.
  [[nodiscard]] std::string csv() const;
  /// Per-run CSV: seed,<metric...> — one row per seed, in seed order.
  [[nodiscard]] std::string csv_runs() const;
  /// Checkpoint time series CSV (checkpoint_every / "checkpoint_every_ms"):
  /// one row per checkpoint with the cumulative per-class message-count
  /// means across seeds — the Fig. 8/9 series. Empty when the scenario
  /// declared no checkpoints.
  [[nodiscard]] std::string csv_series() const;
};

class ScenarioSweep {
 public:
  /// Declares the scenario into a fresh builder. Invoked once per run,
  /// possibly concurrently from worker threads: it must only touch the
  /// builder it is given (and the Scenario&, for phase callbacks) —
  /// never shared mutable state. The sweep sets the seed afterwards, so
  /// a seed set here is overwritten.
  using Declare = std::function<void(ScenarioBuilder&)>;
  /// Optional per-run metric extractor, invoked after the run completes
  /// on the run's own Scenario (same thread as the run). Values land in
  /// SweepResult::series under their map key. Emit NaN (or omit the key)
  /// for "no sample this run" — never a sentinel like -1, which would be
  /// averaged into the aggregate as a real value.
  using Probe =
      std::function<void(Scenario&, std::map<std::string, double>&)>;

  explicit ScenarioSweep(Declare declare);

  ScenarioSweep& probe(Probe p);

  /// Runs the sweep. Throws whatever a run threw (first in seed order).
  [[nodiscard]] SweepResult run(const SweepConfig& config) const;

 private:
  Declare declare_;
  Probe probe_;
};

/// The standard metric series of one report (also used by probes that
/// want to extend the set): published, delivered, missing, duplicates,
/// latency percentiles in ms, message-class counts, and per-client rows.
void extract_metrics(const ScenarioReport& report,
                     std::map<std::string, double>& out);

/// The canonical mean / sample-stddev / 95%-CI aggregate over one
/// metric's samples — what every SweepResult reduction uses (NaN entries
/// mean "absent for this run" and are excluded). Exposed so benches that
/// reduce non-series data (e.g. per-checkpoint totals) share the same
/// statistics and cell format instead of re-deriving them.
[[nodiscard]] MetricStats stats_over(const std::vector<double>& samples);

}  // namespace rebeca::scenario

#endif  // REBECA_SCENARIO_SWEEP_HPP
