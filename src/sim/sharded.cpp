#include "src/sim/sharded.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "src/sim/lane_check.hpp"
#include "src/util/assert.hpp"

namespace rebeca::sim {

namespace {
/// The lane on whose behalf the current thread schedules: the event's
/// destination lane while a worker executes it, or whatever a Scope set
/// between windows. Thread-local, so each worker attributes correctly.
thread_local LaneExecutor* tls_current_lane = nullptr;
}  // namespace

// ---------------------------------------------------------------------------
// LaneExecutor
// ---------------------------------------------------------------------------

TimePoint LaneExecutor::now() const {
  return engine_->shards_[shard_]->clock;
}

EventHandle LaneExecutor::schedule_at(TimePoint when, EventFn fn) {
  auto flag = std::make_shared<bool>(false);
  engine_->enqueue(*this, when, std::move(fn), flag);
  return make_handle(std::move(flag));
}

void LaneExecutor::post_at(TimePoint when, EventFn fn) {
  engine_->enqueue(*this, when, std::move(fn), nullptr);
}

// ---------------------------------------------------------------------------
// ShardedSimulation
// ---------------------------------------------------------------------------

ShardedSimulation::ShardedSimulation(std::uint64_t seed, std::size_t shards)
    : seed_(seed) {
  REBECA_ASSERT(shards >= 1, "sharded engine needs at least one shard");
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  add_lane(0);  // lane 0: the control lane (client plane)
}

ShardedSimulation::~ShardedSimulation() {
  if (!threads_.empty()) {
    {
      std::lock_guard<std::mutex> lock(m_);
      quit_ = true;
    }
    cv_go_.notify_all();
    for (std::thread& t : threads_) t.join();
  }
}

LaneExecutor& ShardedSimulation::add_lane(std::size_t shard) {
  REBECA_ASSERT(shard < shards_.size(), "lane shard " << shard << " out of range");
  REBECA_ASSERT(threads_.empty(), "add lanes before the first run");
  const auto lane = static_cast<std::uint32_t>(lanes_.size());
  // Per-lane RNG stream, derived from the engine seed and the lane id
  // only — never from shard placement — so draws are shard-count
  // invariant.
  const std::uint64_t rng_seed =
      util::SplitMix64(seed_ ^ (0x51a2de5ea9e5ULL + lane)).next();
  lanes_.push_back(std::unique_ptr<LaneExecutor>(
      new LaneExecutor(*this, lane, shard, rng_seed)));
  return *lanes_.back();
}

void ShardedSimulation::set_lookahead(Duration w) {
  REBECA_ASSERT(w > 0, "lookahead must be strictly positive");
  lookahead_ = w;
}

void ShardedSimulation::enqueue(LaneExecutor& dest, TimePoint when,
                                EventFn fn, std::shared_ptr<bool> flag) {
  LaneExecutor* src = tls_current_lane;
  REBECA_ASSERT(src != nullptr && src->engine_ == this,
                "scheduling outside a lane context — wrap external drivers in "
                "ShardedSimulation::Scope");
  REBECA_ASSERT(when >= shards_[src->shard_]->clock,
                "scheduling into the past: when=" << when << " now="
                                                  << shards_[src->shard_]->clock);
  REBECA_ASSERT(
      !running_.load(std::memory_order_relaxed) ||
          dest.shard_ == src->shard_ ||
          when >= shards_[src->shard_]->clock + lookahead_,
      "cross-shard event below the lookahead window (arrives at "
          << when << ", window bound " << lookahead_
          << ") — every cross-shard interaction needs a delay of at least "
             "the minimum cross-shard link delay");
  Event ev{when, src->lane_, src->next_seq_++, &dest, std::move(fn),
           std::move(flag)};
  Shard& target = *shards_[dest.shard_];
  if (dest.shard_ == src->shard_) {
    // Same shard: only this shard's thread (or the quiescent main
    // thread) touches this queue — no lock needed.
    target.queue.push(std::move(ev));
  } else {
    std::lock_guard<std::mutex> lock(target.mailbox_mutex);
    target.mailbox.push_back(std::move(ev));
  }
}

void ShardedSimulation::run_window(Shard& shard, TimePoint target, bool closing) {
  {
    std::lock_guard<std::mutex> lock(shard.mailbox_mutex);
    for (Event& ev : shard.mailbox) shard.queue.push(std::move(ev));
    shard.mailbox.clear();
  }
  try {
    while (!shard.queue.empty()) {
      const Event& top = shard.queue.top();
      if (closing ? top.when > target : top.when >= target) break;
      // Move, don't copy: a copy would re-allocate the closure and spin
      // the payload refcount per executed event. The key fields the heap
      // comparator reads are trivially-copyable ints, untouched by the
      // move, so the pop stays well-ordered.
      // rebeca-lint: allow(CAST-AUDIT, move-from-top keeps the heap key fields (when lane seq) intact; see comment above)
      Event ev = std::move(const_cast<Event&>(top));
      shard.queue.pop();
      shard.clock = ev.when;
      if (!ev.cancelled || !*ev.cancelled) {
        LaneExecutor* prev = tls_current_lane;
        tls_current_lane = ev.dest;
        lane_check::ExecutingLane mark(ev.dest);
        ev.fn();
        tls_current_lane = prev;
      }
    }
  } catch (...) {
    if (!shard.error) shard.error = std::current_exception();
  }
  shard.clock = target;
}

void ShardedSimulation::worker(std::size_t shard_index) {
  std::uint64_t seen = 0;
  for (;;) {
    TimePoint target = 0;
    bool closing = false;
    {
      std::unique_lock<std::mutex> lock(m_);
      cv_go_.wait(lock, [&] { return quit_ || round_ != seen; });
      if (quit_) return;
      seen = round_;
      target = target_;
      closing = closing_;
    }
    run_window(*shards_[shard_index], target, closing);
    {
      std::lock_guard<std::mutex> lock(m_);
      ++done_;
    }
    cv_done_.notify_one();
  }
}

void ShardedSimulation::start_threads() {
  if (!threads_.empty()) return;
  threads_.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    threads_.emplace_back([this, i] { worker(i); });
  }
}

void ShardedSimulation::release_window(TimePoint target, bool closing) {
  {
    std::lock_guard<std::mutex> lock(m_);
    target_ = target;
    closing_ = closing;
    done_ = 0;
    // Before round_ becomes visible: a worker that wakes on the new
    // round must already see running_ == true, or the lookahead
    // assertion in enqueue() could be silently skipped.
    running_.store(true, std::memory_order_relaxed);
    ++round_;
  }
  cv_go_.notify_all();
}

void ShardedSimulation::wait_window() {
  std::unique_lock<std::mutex> lock(m_);
  cv_done_.wait(lock, [&] { return done_ == shards_.size(); });
  lock.unlock();
  running_.store(false, std::memory_order_relaxed);
  // Surface worker failures deterministically: lowest shard index first.
  for (auto& shard : shards_) {
    if (shard->error) {
      std::exception_ptr e = shard->error;
      shard->error = nullptr;
      std::rethrow_exception(e);
    }
  }
}

void ShardedSimulation::drain_all() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mailbox_mutex);
    for (Event& ev : shard->mailbox) shard->queue.push(std::move(ev));
    shard->mailbox.clear();
  }
}

TimePoint ShardedSimulation::next_event_time() const {
  TimePoint next = std::numeric_limits<TimePoint>::max();
  for (const auto& shard : shards_) {
    if (!shard->queue.empty()) next = std::min(next, shard->queue.top().when);
  }
  return next;
}

void ShardedSimulation::run_until(TimePoint deadline) {
  REBECA_ASSERT(deadline >= now_, "deadline in the past");
  REBECA_ASSERT(lookahead_ > 0, "lookahead unset");
  start_threads();

  // Lockstep windows, strictly left-closed: a window [T, T+W) executes
  // events with when < T+W, so events AT a window edge — which other
  // shards may still be producing (arrival >= T + lookahead == edge) —
  // wait for the next window.
  for (;;) {
    drain_all();
    const TimePoint next = next_event_time();
    if (next >= deadline) break;
    const TimePoint start = std::max(now_, next);  // skip idle stretches
    const TimePoint target = std::min(deadline, start + lookahead_);
    release_window(target, /*closing=*/false);
    wait_window();
    now_ = target;
  }

  // Closing pass: events exactly at the deadline run last, matching the
  // classic engine's run_until(deadline) inclusivity. No cross-shard
  // event can land at the deadline from inside this pass (that would
  // need a zero-delay cross-shard hop, which the lookahead forbids).
  drain_all();
  release_window(deadline, /*closing=*/true);
  wait_window();
  now_ = deadline;
}

std::size_t ShardedSimulation::pending_events() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    n += shard->queue.size() + shard->mailbox.size();
  }
  return n;
}

// ---------------------------------------------------------------------------
// Scope
// ---------------------------------------------------------------------------

ShardedSimulation::Scope::Scope(LaneExecutor& lane) : saved_(tls_current_lane) {
  tls_current_lane = &lane;
}

ShardedSimulation::Scope::~Scope() { tls_current_lane = saved_; }

}  // namespace rebeca::sim
