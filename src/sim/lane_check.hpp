// Debug-only lane-affinity checking.
//
// Under the sharded engine every entity (Broker, Client, Link side) is
// owned by exactly one executor lane, and all of its mutations must run
// on that lane — rule 2 of the determinism contract (sharded.hpp). A
// violation is a cross-shard race: TSan only reports it when the thread
// schedule happens to interleave the touch, and a single-shard run
// never misbehaves at all. This checker catches the same bug
// *deterministically*: each engine marks which executor is running the
// current event in a thread-local, entities record their owning
// executor at construction, and REBECA_LANE_ASSERT on every mutating
// entry point compares the two — on any shard count, any seed, every
// run.
//
// Enabled when REBECA_LANE_CHECKS is defined to 1 (the CMake option of
// the same name turns it on automatically for Debug and sanitizer
// builds); otherwise every hook compiles to nothing. Calls that happen
// outside any executing event — scenario construction, test drivers
// poking entities directly — see a null current lane and always pass:
// the check constrains event execution, not setup code.
#ifndef REBECA_SIM_LANE_CHECK_HPP
#define REBECA_SIM_LANE_CHECK_HPP

#include "src/util/assert.hpp"

#ifndef REBECA_LANE_CHECKS
#define REBECA_LANE_CHECKS 0
#endif

namespace rebeca::sim {

class Executor;

namespace lane_check {

#if REBECA_LANE_CHECKS

inline thread_local const Executor* tls_executing_lane = nullptr;

/// RAII marker the engines wrap event execution in: "this thread is now
/// running an event on behalf of lane `e`".
class ExecutingLane {
 public:
  explicit ExecutingLane(const Executor* e) : saved_(tls_executing_lane) {
    tls_executing_lane = e;
  }
  ~ExecutingLane() { tls_executing_lane = saved_; }
  ExecutingLane(const ExecutingLane&) = delete;
  ExecutingLane& operator=(const ExecutingLane&) = delete;

 private:
  const Executor* saved_;
};

[[nodiscard]] inline const Executor* current() { return tls_executing_lane; }

#else  // REBECA_LANE_CHECKS

class ExecutingLane {
 public:
  explicit ExecutingLane(const Executor*) {}
};

[[nodiscard]] inline const Executor* current() { return nullptr; }

#endif  // REBECA_LANE_CHECKS

}  // namespace lane_check

/// Records the executor lane that owns an entity. bind() at
/// construction; check() (via REBECA_LANE_ASSERT) at every mutating
/// entry point. Zero-size no-op when checks are compiled out.
class LaneAffinity {
 public:
#if REBECA_LANE_CHECKS
  void bind(const Executor* owner) { owner_ = owner; }

  void check(const char* entity, const char* entry) const {
    const Executor* cur = lane_check::current();
    if (cur == nullptr || owner_ == nullptr || cur == owner_) return;
    ::rebeca::util::assertion_failure(
        "lane affinity", __FILE__, __LINE__,
        std::string(entity) + "::" + entry +
            " executed on a foreign lane — entities are lane-owned; "
            "cross-lane interaction must travel through keyed events "
            "with positive delay (sharded.hpp rule 2)");
  }
#else
  void bind(const Executor*) {}
  void check(const char*, const char*) const {}
#endif

 private:
#if REBECA_LANE_CHECKS
  const Executor* owner_ = nullptr;
#endif
};

}  // namespace rebeca::sim

/// Asserts that the current event executes on the lane that owns
/// `affinity`'s entity. No-op outside event execution and in builds
/// without REBECA_LANE_CHECKS.
#define REBECA_LANE_ASSERT(affinity, entity, entry) \
  ((affinity).check(entity, entry))

#endif  // REBECA_SIM_LANE_CHECK_HPP
