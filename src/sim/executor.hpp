// The scheduling interface entities run against.
//
// Brokers, clients, links and workload drivers do not care *which*
// engine executes them — only that they can read a clock, draw seeded
// randomness, and schedule work. Executor is that seam: the classic
// single-threaded Simulation implements it with one global queue and one
// global RNG; the sharded engine (sharded.hpp) implements it once per
// lane, with per-lane RNG streams and deterministic cross-shard handoff.
// Entities hold an Executor& and never know the difference.
#ifndef REBECA_SIM_EXECUTOR_HPP
#define REBECA_SIM_EXECUTOR_HPP

#include <memory>
#include <utility>

#include "src/sim/event_fn.hpp"
#include "src/sim/time.hpp"
#include "src/util/assert.hpp"
#include "src/util/rng.hpp"

namespace rebeca::sim {

/// Handle to a scheduled event; allows cancellation.
class EventHandle {
 public:
  EventHandle() = default;

  [[nodiscard]] bool valid() const { return cancelled_ != nullptr; }

  /// Cancels the event if it has not run yet. Safe to call repeatedly.
  void cancel() {
    if (cancelled_) *cancelled_ = true;
  }

 private:
  friend class Executor;
  explicit EventHandle(std::shared_ptr<bool> flag) : cancelled_(std::move(flag)) {}
  std::shared_ptr<bool> cancelled_;
};

class Executor {
 public:
  Executor() = default;
  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;
  virtual ~Executor() = default;

  /// Current virtual time of the caller's execution context. Only read
  /// your own executor's clock: in the sharded engine, foreign lanes may
  /// be elsewhere in the current window.
  [[nodiscard]] virtual TimePoint now() const = 0;

  /// Seeded random stream of this execution context.
  [[nodiscard]] virtual util::Rng& rng() = 0;

  /// Schedules `fn` to run at absolute virtual time `when` (>= now).
  /// Event records hold an SBO callable (EventFn), so the typical
  /// capture fits inline in the queue entry — no per-event allocation.
  virtual EventHandle schedule_at(TimePoint when, EventFn fn) = 0;

  /// Fire-and-forget scheduling: no EventHandle, no cancellation-flag
  /// allocation. This is the hot path — link delivery schedules one
  /// event per message in flight and never cancels it.
  virtual void post_at(TimePoint when, EventFn fn) = 0;

  /// Schedules `fn` to run `delay` after the current time.
  EventHandle schedule_after(Duration delay, EventFn fn) {
    REBECA_ASSERT(delay >= 0, "negative delay " << delay);
    return schedule_at(now() + delay, std::move(fn));
  }

  void post_after(Duration delay, EventFn fn) {
    REBECA_ASSERT(delay >= 0, "negative delay " << delay);
    post_at(now() + delay, std::move(fn));
  }

 protected:
  static EventHandle make_handle(std::shared_ptr<bool> flag) {
    return EventHandle(std::move(flag));
  }
};

}  // namespace rebeca::sim

#endif  // REBECA_SIM_EXECUTOR_HPP
