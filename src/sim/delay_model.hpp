// Link delay models.
//
// The paper postulates point-to-point FIFO links whose delays "satisfy
// some probability distribution so that an expected delivery time can be
// computed statistically" (Sec. 2.1). DelayModel captures that: a fixed
// floor plus an optional stochastic component, sampled from the
// simulation's seeded RNG.
#ifndef REBECA_SIM_DELAY_MODEL_HPP
#define REBECA_SIM_DELAY_MODEL_HPP

#include <algorithm>

#include "src/sim/time.hpp"
#include "src/util/assert.hpp"
#include "src/util/rng.hpp"

namespace rebeca::sim {

class DelayModel {
 public:
  enum class Kind { fixed, uniform, exponential };

  /// Constant delay.
  static DelayModel fixed(Duration d) {
    REBECA_ASSERT(d >= 0, "negative delay");
    return DelayModel(Kind::fixed, d, d);
  }

  /// Uniform in [lo, hi].
  static DelayModel uniform(Duration lo, Duration hi) {
    REBECA_ASSERT(0 <= lo && lo <= hi, "bad uniform delay range");
    return DelayModel(Kind::uniform, lo, hi);
  }

  /// Shifted exponential: floor + Exp(mean), truncated at floor + 10*mean
  /// so a single unlucky draw cannot stall a FIFO link arbitrarily.
  static DelayModel exponential(Duration floor, Duration mean) {
    REBECA_ASSERT(floor >= 0 && mean > 0, "bad exponential delay");
    return DelayModel(Kind::exponential, floor, mean);
  }

  [[nodiscard]] Duration sample(util::Rng& rng) const {
    switch (kind_) {
      case Kind::fixed:
        return a_;
      case Kind::uniform:
        return rng.uniform_i64(a_, b_);
      case Kind::exponential: {
        const double draw = rng.exponential(static_cast<double>(b_));
        const double capped = std::min(draw, 10.0 * static_cast<double>(b_));
        return a_ + static_cast<Duration>(capped);
      }
    }
    return a_;
  }

  /// Smallest delay the model can produce. The sharded engine's
  /// lookahead — and its deferred link-down notification — are bounded
  /// by this, so sharded execution requires it to be strictly positive.
  [[nodiscard]] Duration lower_bound() const { return a_; }

  /// Expected value of the distribution (used by the analytic model and
  /// by the adaptivity rule's δ estimates).
  [[nodiscard]] Duration mean() const {
    switch (kind_) {
      case Kind::fixed: return a_;
      case Kind::uniform: return (a_ + b_) / 2;
      case Kind::exponential: return a_ + b_;
    }
    return a_;
  }

  [[nodiscard]] Kind kind() const { return kind_; }

 private:
  DelayModel(Kind kind, Duration a, Duration b) : kind_(kind), a_(a), b_(b) {}

  Kind kind_;
  Duration a_;  // fixed value / lower bound / floor
  Duration b_;  // upper bound / mean of exponential part
};

}  // namespace rebeca::sim

#endif  // REBECA_SIM_DELAY_MODEL_HPP
