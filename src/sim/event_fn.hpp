// Small-buffer-optimized move-only callable for simulator event records.
//
// Event queues hold one record per message in flight — millions per run.
// std::function's inline buffer (16 bytes on libstdc++) forces a heap
// allocation for the common link-delivery capture (link pointer + side
// index + generation + payload ref = 32 bytes), one malloc/free pair per
// simulated message. EventFn stores callables of up to kInlineSize bytes
// inline and only heap-allocates beyond that. It is move-only (an event
// is scheduled once and consumed once; nothing ever copies a record), so
// captured move-only payloads work too.
//
// Determinism: this type changes where a closure lives, never when it
// runs — equal-seed reports are byte-identical across the swap (verified
// by bench_sharded_scaling's equal-seed report check).
#ifndef REBECA_SIM_EVENT_FN_HPP
#define REBECA_SIM_EVENT_FN_HPP

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "src/util/assert.hpp"

namespace rebeca::sim {

class EventFn {
 public:
  /// Inline capacity. Sized for the hot-path captures (link delivery,
  /// broker timers) with headroom; larger closures fall back to the heap.
  static constexpr std::size_t kInlineSize = 48;

  EventFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventFn(F&& f) {  // NOLINT: implicit by design, mirrors std::function
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      ::new (static_cast<void*>(buf_))
          Fn*(new Fn(std::forward<F>(f)));
      ops_ = &kHeapOps<Fn>;
    }
  }

  EventFn(EventFn&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(other.buf_, buf_);
      other.ops_ = nullptr;
    }
  }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      if (ops_ != nullptr) ops_->destroy(buf_);
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(other.buf_, buf_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() {
    if (ops_ != nullptr) ops_->destroy(buf_);
  }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  void operator()() {
    REBECA_ASSERT(ops_ != nullptr, "invoking an empty EventFn");
    ops_->invoke(buf_);
  }

 private:
  struct Ops {
    void (*invoke)(void* self);
    /// Move-constructs `to` from `from` and destroys `from`.
    void (*relocate)(void* from, void* to) noexcept;
    void (*destroy)(void* self) noexcept;
  };

  template <typename Fn>
  static void inline_invoke(void* self) {
    // rebeca-lint: allow(CAST-AUDIT, SBO type erasure; self points at a laundered placement-new Fn)
    (*std::launder(reinterpret_cast<Fn*>(self)))();
  }
  template <typename Fn>
  static void inline_relocate(void* from, void* to) noexcept {
    // rebeca-lint: allow(CAST-AUDIT, SBO type erasure; from points at a laundered placement-new Fn)
    Fn* src = std::launder(reinterpret_cast<Fn*>(from));
    ::new (to) Fn(std::move(*src));
    src->~Fn();
  }
  template <typename Fn>
  static void inline_destroy(void* self) noexcept {
    // rebeca-lint: allow(CAST-AUDIT, SBO type erasure; self points at a laundered placement-new Fn)
    std::launder(reinterpret_cast<Fn*>(self))->~Fn();
  }

  template <typename Fn>
  static Fn* heap_slot(void* self) {
    // rebeca-lint: allow(CAST-AUDIT, heap-mode slot; self stores the Fn* written by the ctor)
    return *std::launder(reinterpret_cast<Fn**>(self));
  }
  template <typename Fn>
  static void heap_invoke(void* self) {
    (*heap_slot<Fn>(self))();
  }
  template <typename Fn>
  static void heap_relocate(void* from, void* to) noexcept {
    ::new (to) Fn*(heap_slot<Fn>(from));
  }
  template <typename Fn>
  static void heap_destroy(void* self) noexcept {
    delete heap_slot<Fn>(self);
  }

  template <typename Fn>
  static constexpr Ops kInlineOps{&inline_invoke<Fn>, &inline_relocate<Fn>,
                                  &inline_destroy<Fn>};
  template <typename Fn>
  static constexpr Ops kHeapOps{&heap_invoke<Fn>, &heap_relocate<Fn>,
                                &heap_destroy<Fn>};

  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace rebeca::sim

#endif  // REBECA_SIM_EVENT_FN_HPP
