// Sharded intra-scenario execution: a conservative time-window engine.
//
// One scenario's broker graph is partitioned across worker threads
// ("shards"). Each shard owns a disjoint set of *lanes* — deterministic
// scheduling domains (one per broker, plus one control lane hosting the
// whole client plane) — with a private event queue and clock. Shards
// advance in lockstep windows bounded by the minimum cross-shard link
// delay (the lookahead): within a window no shard can influence another,
// so shards execute concurrently; cross-shard events travel through
// per-shard mailboxes drained at the window barriers.
//
// Determinism contract — the reason this engine exists instead of a
// mutex around the classic queue: equal-seed runs are byte-identical for
// ANY shard count, including 1. Three rules make that true:
//
//   1. Canonical event keys. Every event is ordered by
//      (time, sender lane, sender sequence number), assigned at
//      scheduling time from the *sender's* lane-local counter. Keys are
//      globally unique and never depend on how lanes map to shards.
//   2. Lane-confined state. An event only touches state owned by its
//      destination lane (links split their state per side; counters are
//      per shard and merged after the run). Lanes interact exclusively
//      through keyed events with strictly positive delay.
//   3. Per-lane RNG streams. Each lane draws from its own seeded
//      generator, so draw order depends only on the lane's own
//      deterministic execution, never on cross-lane interleaving.
//
// Consequence: a shard executes its lanes' events in key order, and that
// order — per lane — is the same whether the lanes share a thread or
// not. The classic Simulation orders by global scheduling sequence
// instead and draws delays from one global RNG, so classic and sharded
// runs of a stochastic scenario are *different (equally valid) samples*;
// within the sharded engine, the shard count never changes the sample.
#ifndef REBECA_SIM_SHARDED_HPP
#define REBECA_SIM_SHARDED_HPP

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "src/sim/executor.hpp"
#include "src/sim/time.hpp"
#include "src/util/rng.hpp"

namespace rebeca::sim {

class ShardedSimulation;

/// The Executor of one lane. Entities constructed against a lane run all
/// their events on that lane's shard, in canonical key order, and draw
/// randomness from the lane's own stream. Obtain via
/// ShardedSimulation::add_lane / control().
class LaneExecutor final : public Executor {
 public:
  /// This lane's shard clock. Only meaningful from the lane's own
  /// execution context (or between windows, when all clocks agree).
  [[nodiscard]] TimePoint now() const override;
  [[nodiscard]] util::Rng& rng() override { return rng_; }
  EventHandle schedule_at(TimePoint when, EventFn fn) override;
  void post_at(TimePoint when, EventFn fn) override;

  [[nodiscard]] std::uint32_t lane() const { return lane_; }
  [[nodiscard]] std::size_t shard() const { return shard_; }

 private:
  friend class ShardedSimulation;
  LaneExecutor(ShardedSimulation& engine, std::uint32_t lane, std::size_t shard,
               std::uint64_t rng_seed)
      : engine_(&engine), lane_(lane), shard_(shard), rng_(rng_seed) {}

  ShardedSimulation* engine_;
  std::uint32_t lane_;
  std::size_t shard_;
  /// Key counter for events *scheduled by* this lane (lane-owned, so the
  /// keys it mints depend only on this lane's own execution history).
  std::uint64_t next_seq_ = 0;
  util::Rng rng_;
};

class ShardedSimulation {
 public:
  /// Creates the engine with `shards` worker shards. The control lane
  /// (lane 0, shard 0) exists from the start; broker lanes are added
  /// with add_lane before the first run.
  ShardedSimulation(std::uint64_t seed, std::size_t shards);
  ~ShardedSimulation();

  ShardedSimulation(const ShardedSimulation&) = delete;
  ShardedSimulation& operator=(const ShardedSimulation&) = delete;

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] std::size_t lane_count() const { return lanes_.size(); }
  /// Barrier time: the time every shard has fully executed up to.
  [[nodiscard]] TimePoint now() const { return now_; }

  /// The control lane: hosts the client plane (clients, workload
  /// drivers, scenario interventions) on shard 0.
  [[nodiscard]] LaneExecutor& control() { return *lanes_.front(); }

  /// Adds a lane on `shard`. Lane ids are assigned in call order, so
  /// construction order is part of the determinism contract. Must happen
  /// before the first run_until.
  LaneExecutor& add_lane(std::size_t shard);

  /// Window length bound: the minimum virtual-time delay of any event
  /// that crosses shards (for an overlay: the smallest lower-bound link
  /// delay over cut links). Must be > 0 before running.
  void set_lookahead(Duration w);
  [[nodiscard]] Duration lookahead() const { return lookahead_; }

  /// Advances every shard to `deadline`, executing events at `deadline`
  /// itself last (matching Simulation::run_until). On return the engine
  /// is quiescent: all clocks equal `deadline`, mailboxes are drained.
  void run_until(TimePoint deadline);

  /// Events waiting across all shards. Quiescent use only.
  [[nodiscard]] std::size_t pending_events() const;

  /// RAII: attributes scheduling done outside any event — scenario
  /// construction, phase callbacks, test drivers — to a lane (normally
  /// the control lane). The engine must be quiescent.
  class Scope {
   public:
    explicit Scope(LaneExecutor& lane);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    LaneExecutor* saved_;
  };

 private:
  friend class LaneExecutor;

  struct Event {
    TimePoint when = 0;
    std::uint32_t src_lane = 0;
    std::uint64_t src_seq = 0;
    LaneExecutor* dest = nullptr;
    EventFn fn;
    std::shared_ptr<bool> cancelled;  // null for fire-and-forget posts
  };

  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      if (a.src_lane != b.src_lane) return a.src_lane > b.src_lane;
      return a.src_seq > b.src_seq;
    }
  };

  struct Shard {
    std::priority_queue<Event, std::vector<Event>, Later> queue;
    TimePoint clock = 0;
    std::mutex mailbox_mutex;
    std::vector<Event> mailbox;
    std::exception_ptr error;
  };

  void enqueue(LaneExecutor& dest, TimePoint when, EventFn fn,
               std::shared_ptr<bool> flag);
  void worker(std::size_t shard_index);
  void run_window(Shard& shard, TimePoint target, bool closing);
  void start_threads();
  void release_window(TimePoint target, bool closing);
  void wait_window();
  /// Moves mailbox contents into the owning queues. Quiescent use only.
  void drain_all();
  [[nodiscard]] TimePoint next_event_time() const;

  std::uint64_t seed_;
  Duration lookahead_ = kMillisecond;
  TimePoint now_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<LaneExecutor>> lanes_;

  // ---- window coordination ----
  std::vector<std::thread> threads_;
  std::mutex m_;
  std::condition_variable cv_go_;
  std::condition_variable cv_done_;
  std::uint64_t round_ = 0;
  TimePoint target_ = 0;
  bool closing_ = false;
  bool quit_ = false;
  std::size_t done_ = 0;
  /// True while a window is executing: cross-shard enqueues must then
  /// respect the lookahead (asserted), and only workers may touch queues.
  std::atomic<bool> running_{false};
};

}  // namespace rebeca::sim

#endif  // REBECA_SIM_SHARDED_HPP
