// Deterministic discrete-event simulation kernel.
//
// A Simulation owns a virtual clock and an event queue. Events at equal
// times execute in scheduling order (a monotone sequence number breaks
// ties), which — together with seeded RNG — makes every run exactly
// reproducible. The kernel is single-threaded on purpose: determinism is
// what lets the experiment harness compare a mobility run against a
// flooding reference run of the *same* workload (paper Fig. 4 epoch
// semantics). For multi-threaded execution of one scenario, see the
// sharded engine in sharded.hpp — entities only depend on the Executor
// interface and run unchanged on either.
#ifndef REBECA_SIM_SIMULATION_HPP
#define REBECA_SIM_SIMULATION_HPP

#include <cstdint>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "src/sim/executor.hpp"
#include "src/sim/lane_check.hpp"
#include "src/sim/time.hpp"
#include "src/util/assert.hpp"
#include "src/util/rng.hpp"

namespace rebeca::sim {

class Simulation final : public Executor {
 public:
  explicit Simulation(std::uint64_t seed = 1) : rng_(seed) {}

  [[nodiscard]] TimePoint now() const override { return now_; }
  [[nodiscard]] util::Rng& rng() override { return rng_; }

  /// Schedules `fn` to run at absolute virtual time `when` (>= now).
  EventHandle schedule_at(TimePoint when, EventFn fn) override {
    REBECA_ASSERT(when >= now_, "scheduling into the past: when=" << when
                                                                  << " now=" << now_);
    auto flag = std::make_shared<bool>(false);
    queue_.push(Scheduled{when, next_seq_++, std::move(fn), flag});
    return make_handle(std::move(flag));
  }

  /// Fire-and-forget scheduling: no EventHandle, no cancellation-flag
  /// allocation. This is the hot path — link delivery schedules one
  /// event per message in flight and never cancels it.
  void post_at(TimePoint when, EventFn fn) override {
    REBECA_ASSERT(when >= now_, "scheduling into the past: when=" << when
                                                                  << " now=" << now_);
    queue_.push(Scheduled{when, next_seq_++, std::move(fn), nullptr});
  }

  /// Runs events until the queue drains or virtual time would pass
  /// `deadline`; afterwards now() == deadline (unless stopped early).
  void run_until(TimePoint deadline) {
    REBECA_ASSERT(deadline >= now_, "deadline in the past");
    stopped_ = false;
    while (!queue_.empty() && !stopped_) {
      const Scheduled& top = queue_.top();
      if (top.when > deadline) break;
      // Move, don't copy: records hold a move-only SBO callable, and a
      // copy would re-allocate the closure per executed event. The key
      // fields the heap comparator reads (when, seq) are untouched by
      // the move, so the pop stays well-ordered.
      // rebeca-lint: allow(CAST-AUDIT, move-from-top keeps the heap key fields (when seq) intact; see comment above)
      Scheduled ev = std::move(const_cast<Scheduled&>(top));
      queue_.pop();
      now_ = ev.when;
      if (!ev.cancelled || !*ev.cancelled) {
        lane_check::ExecutingLane mark(this);
        ev.fn();
      }
    }
    if (!stopped_) now_ = deadline;
  }

  /// Runs until the queue is empty (or stop() / the event cap hits).
  /// Returns the number of events executed.
  std::uint64_t run_all(std::uint64_t max_events = 100'000'000ULL) {
    stopped_ = false;
    std::uint64_t executed = 0;
    while (!queue_.empty() && !stopped_) {
      REBECA_ASSERT(executed < max_events, "event cap exceeded — runaway simulation?");
      // rebeca-lint: allow(CAST-AUDIT, move-from-top keeps the heap key fields (when seq) intact)
      Scheduled ev = std::move(const_cast<Scheduled&>(queue_.top()));
      queue_.pop();
      now_ = ev.when;
      if (!ev.cancelled || !*ev.cancelled) {
        lane_check::ExecutingLane mark(this);
        ev.fn();
        ++executed;
      }
    }
    return executed;
  }

  /// Stops the current run_* loop after the current event returns.
  void stop() { stopped_ = true; }

  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

 private:
  struct Scheduled {
    TimePoint when;
    std::uint64_t seq;
    EventFn fn;
    std::shared_ptr<bool> cancelled;  // null for fire-and-forget posts
  };

  struct Later {
    bool operator()(const Scheduled& a, const Scheduled& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  TimePoint now_ = 0;
  std::uint64_t next_seq_ = 0;
  bool stopped_ = false;
  util::Rng rng_;
  std::priority_queue<Scheduled, std::vector<Scheduled>, Later> queue_;
};

}  // namespace rebeca::sim

#endif  // REBECA_SIM_SIMULATION_HPP
