// Virtual time.
//
// The simulator uses integer nanoseconds. Integers (not doubles) make
// event ordering exact and runs bit-reproducible; nanosecond granularity
// comfortably covers the paper's regimes (network delays of milliseconds,
// residence times of seconds).
#ifndef REBECA_SIM_TIME_HPP
#define REBECA_SIM_TIME_HPP

#include <cstdint>
#include <ostream>

namespace rebeca::sim {

/// A point in virtual time, in nanoseconds since simulation start.
using TimePoint = std::int64_t;

/// A span of virtual time, in nanoseconds.
using Duration = std::int64_t;

constexpr Duration kNanosecond = 1;
constexpr Duration kMicrosecond = 1000 * kNanosecond;
constexpr Duration kMillisecond = 1000 * kMicrosecond;
constexpr Duration kSecond = 1000 * kMillisecond;

constexpr Duration micros(double n) {
  return static_cast<Duration>(n * static_cast<double>(kMicrosecond));
}
constexpr Duration millis(double n) {
  return static_cast<Duration>(n * static_cast<double>(kMillisecond));
}
constexpr Duration seconds(double n) {
  return static_cast<Duration>(n * static_cast<double>(kSecond));
}

constexpr double to_seconds(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}
constexpr double to_millis(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}

/// Formats a time point as fractional seconds (for logs and traces).
struct FormatTime {
  TimePoint t;
};

inline std::ostream& operator<<(std::ostream& os, FormatTime ft) {
  const auto whole = ft.t / kSecond;
  const auto frac = ft.t % kSecond;
  os << whole << '.';
  // Print milliseconds with leading zeros.
  const auto ms = frac / kMillisecond;
  os << (ms < 100 ? "0" : "") << (ms < 10 ? "0" : "") << ms << "s";
  return os;
}

}  // namespace rebeca::sim

#endif  // REBECA_SIM_TIME_HPP
