#include "src/client/client.hpp"

#include <algorithm>

#include <sstream>

#include "src/util/assert.hpp"
#include "src/util/logging.hpp"

namespace rebeca::client {

Client::Client(sim::Executor& sim, ClientConfig config)
    : sim_(sim), config_(std::move(config)) {
  REBECA_ASSERT(config_.id.valid(), "client needs a valid id");
  lane_affinity_.bind(&sim_);
}

std::string Client::endpoint_name() const {
  std::ostringstream os;
  os << "client" << config_.id;
  return os.str();
}

// ---------------------------------------------------------------------------
// The four primitives
// ---------------------------------------------------------------------------

std::uint32_t Client::subscribe(filter::Filter f) {
  REBECA_LANE_ASSERT(lane_affinity_, "Client", "subscribe");
  const std::uint32_t sub_id = next_sub_++;
  SubState& s = subs_[sub_id];
  s.spec = std::move(f);
  if (connected()) {
    s.fresh = false;
    send_all_links(net::ClientSubscribeMsg{SubKey{config_.id, sub_id}, s.spec, loc_});
  }
  return sub_id;
}

std::uint32_t Client::subscribe(location::LdSpec spec) {
  REBECA_LANE_ASSERT(lane_affinity_, "Client", "subscribe");
  REBECA_ASSERT(config_.locations != nullptr,
                "location-dependent subscription without a location graph");
  REBECA_ASSERT(loc_.valid(), "subscribe(LdSpec) before move_to(initial location)");
  const std::uint32_t sub_id = next_sub_++;
  SubState& s = subs_[sub_id];
  s.spec = std::move(spec);
  if (connected()) {
    s.fresh = false;
    send_all_links(net::ClientSubscribeMsg{SubKey{config_.id, sub_id}, s.spec, loc_});
  }
  return sub_id;
}

void Client::unsubscribe(std::uint32_t sub) {
  REBECA_LANE_ASSERT(lane_affinity_, "Client", "unsubscribe");
  auto it = subs_.find(sub);
  if (it == subs_.end()) return;
  if (connected()) {
    send_all_links(net::ClientUnsubscribeMsg{SubKey{config_.id, sub}});
  }
  subs_.erase(it);
}

AdvId Client::advertise(filter::Filter f) {
  REBECA_LANE_ASSERT(lane_affinity_, "Client", "advertise");
  const AdvId id((static_cast<std::uint64_t>(config_.id.value()) << 32) |
                 next_adv_++);
  advs_[id] = f;
  if (connected()) {
    send_all_links(net::ClientAdvertiseMsg{id, std::move(f)});
  }
  return id;
}

void Client::unadvertise(AdvId id) {
  REBECA_LANE_ASSERT(lane_affinity_, "Client", "unadvertise");
  if (advs_.erase(id) == 0) return;
  if (connected()) {
    send_all_links(net::ClientUnadvertiseMsg{id});
  }
}

void Client::publish(filter::Notification n) {
  REBECA_LANE_ASSERT(lane_affinity_, "Client", "publish");
  n.stamp(NotificationId((static_cast<std::uint64_t>(config_.id.value()) << 32) |
                         next_pub_),
          config_.id, next_pub_, sim_.now());
  ++next_pub_;
  if (on_publish) on_publish(n);
  if (!connected()) {
    // Disconnected producers queue locally and flush on reconnect, so
    // published events are not silently lost.
    pending_pubs_.push_back(std::move(n));
    return;
  }
  send_all_links(net::ClientPublishMsg{std::move(n)});
}

// ---------------------------------------------------------------------------
// Mobility
// ---------------------------------------------------------------------------

void Client::move_to(LocationId loc) {
  REBECA_LANE_ASSERT(lane_affinity_, "Client", "move_to");
  loc_ = loc;
  // The client-side filter F_0 updates locally for free; the border only
  // needs to hear about moves when a location-dependent subscription
  // exists (flooding + client-side filtering sends nothing, Fig. 3b).
  const bool any_ld = std::any_of(
      subs_.begin(), subs_.end(),
      [](const auto& kv) { return net::is_location_dependent(kv.second.spec); });
  if (connected() && any_ld) {
    send_all_links(net::ClientMoveMsg{config_.id, loc});
  }
}

void Client::move_to(const std::string& loc_name) {
  REBECA_ASSERT(config_.locations != nullptr, "no location graph configured");
  move_to(config_.locations->id_of(loc_name));
}

net::ClientHelloMsg Client::hello() {
  net::ClientHelloMsg m;
  m.client = config_.id;
  if (config_.relocation == RelocationMode::naive) {
    return m;  // the baseline presents itself as a brand-new client
  }
  for (auto& [sub_id, s] : subs_) {
    net::ClientHelloMsg::Resub r;
    r.key = SubKey{config_.id, sub_id};
    r.spec = s.spec;
    // A subscription no broker has seen yet installs plainly (epoch 0:
    // there is no old state to relocate from).
    r.epoch = s.fresh ? 0 : s.epoch;
    s.fresh = false;
    r.last_seq = s.last_seq;
    r.loc = loc_;
    m.resubs.push_back(std::move(r));
  }
  return m;
}

void Client::attach(net::Link& link) {
  REBECA_LANE_ASSERT(lane_affinity_, "Client", "attach");
  REBECA_ASSERT(link.connects(*this), "attach: link does not reach this client");
  links_.push_back(&link);

  // Bump epochs: this connection supersedes previous ones.
  for (auto& [sub_id, s] : subs_) s.epoch += 1;
  link.send(*this, hello());

  if (config_.relocation == RelocationMode::naive) {
    // Re-subscribe from scratch, as a mobility-unaware application would.
    for (const auto& [sub_id, s] : subs_) {
      link.send(*this, net::ClientSubscribeMsg{SubKey{config_.id, sub_id},
                                               s.spec, loc_});
    }
  }
  for (const auto& [id, f] : advs_) {
    link.send(*this, net::ClientAdvertiseMsg{id, f});
  }
  for (auto& n : pending_pubs_) {
    link.send(*this, net::ClientPublishMsg{std::move(n)});
  }
  pending_pubs_.clear();
}

void Client::detach_gracefully() {
  REBECA_LANE_ASSERT(lane_affinity_, "Client", "detach_gracefully");
  // The broker closes the link after processing the bye; cutting it here
  // would race the bye itself (in-flight messages die with the link).
  for (net::Link* link : links_) {
    link->send(*this, net::ClientByeMsg{config_.id});
  }
}

void Client::detach_silently() {
  REBECA_LANE_ASSERT(lane_affinity_, "Client", "detach_silently");
  // Copy: cut() triggers handle_link_down which edits links_.
  std::vector<net::Link*> links = links_;
  for (net::Link* link : links) link->cut(*this);
}

void Client::handle_link_down(net::Link& link) {
  REBECA_LANE_ASSERT(lane_affinity_, "Client", "handle_link_down");
  std::erase(links_, &link);
}

// ---------------------------------------------------------------------------
// Delivery path
// ---------------------------------------------------------------------------

bool Client::passes_client_filter(const SubState& sub,
                                  const filter::Notification& n) const {
  if (!config_.client_side_filtering) return true;
  const auto* ld = std::get_if<location::LdSpec>(&sub.spec);
  if (ld == nullptr) return true;
  REBECA_ASSERT(config_.locations != nullptr, "LD sub without location graph");
  // F_0: the exact vicinity at the *current* location (paper Sec. 5.1:
  // "always have the local broker of the consumer do perfect client-side
  // filtering").
  return ld->concrete_filter(*config_.locations, loc_, 0).matches(n);
}

void Client::handle_message(net::Link& from, const net::Message& msg) {
  REBECA_LANE_ASSERT(lane_affinity_, "Client", "handle_message");
  const auto* deliver = std::get_if<net::DeliverMsg>(&msg);
  if (deliver == nullptr) {
    REBECA_WARN("client " << config_.id << ": unexpected "
                          << net::message_name(msg));
    return;
  }
  (void)from;
  auto it = subs_.find(deliver->key.sub);
  if (it == subs_.end()) return;  // unsubscribed in the meantime
  SubState& sub = it->second;

  // Track the border broker's sequence annotation even for notifications
  // the client-side filter rejects: replay-on-reconnect resumes from the
  // last *delivered* sequence number.
  sub.last_seq = deliver->sn.seq;

  if (config_.dedup &&
      !sub.seen.insert(deliver->sn.notification.id()).second) {
    ++duplicates_;
    return;
  }
  if (!passes_client_filter(sub, deliver->sn.notification)) {
    ++filtered_;
    return;
  }
  Delivery d;
  d.sub = deliver->key.sub;
  d.notification = deliver->sn.notification;
  d.seq = deliver->sn.seq;
  d.delivered_at = sim_.now();
  deliveries_.push_back(d);
  if (on_notify) on_notify(deliveries_.back());
}

std::uint64_t Client::last_seq(std::uint32_t sub) const {
  auto it = subs_.find(sub);
  return it == subs_.end() ? 0 : it->second.last_seq;
}

void Client::send_all_links(net::Message msg) {
  for (net::Link* link : links_) link->send(*this, msg);
}

}  // namespace rebeca::client
