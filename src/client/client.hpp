// The client library: pub, sub, unsub, notify (paper Sec. 2.1) — plus
// advertisements and the mobility hooks.
//
// The paper's "local broker" is "part of the communication library
// loaded into the clients" (Sec. 2.1); here it is this class. It does
// client-side filtering for location-dependent subscriptions (the
// perfect filter F_0 of Sec. 5.1), tracks the last received sequence
// number per subscription, and re-issues subscriptions on reconnect —
// the interface the application sees never changes, which is the
// paper's transparency requirement (Sec. 3.2 "Interface").
//
// RelocationMode selects between the paper's protocol and the naive
// baseline of Sec. 3.2 (plain re-subscribe, no recovery), which the
// Fig. 2 / Fig. 3 experiments quantify.
#ifndef REBECA_CLIENT_CLIENT_HPP
#define REBECA_CLIENT_CLIENT_HPP

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/location/ld_spec.hpp"
#include "src/metrics/delivery.hpp"
#include "src/net/endpoint.hpp"
#include "src/net/link.hpp"
#include "src/sim/executor.hpp"
#include "src/sim/lane_check.hpp"
#include "src/sim/simulation.hpp"

namespace rebeca::client {

enum class RelocationMode {
  /// The paper's Sec. 4 protocol: re-issue subscriptions with the last
  /// received sequence number; the middleware replays.
  rebeca,
  /// Naive baseline: plain re-subscribe at the new broker, no sequence
  /// numbers, no replay (loses the disconnection gap plus the 2·t_d
  /// subscription blackout).
  naive,
};

struct ClientConfig {
  ClientId id;
  const location::LocationGraph* locations = nullptr;
  RelocationMode relocation = RelocationMode::rebeca;
  /// Client-side duplicate suppression by notification id (the naive
  /// baselines switch this off to expose duplicate deliveries).
  bool dedup = true;
  /// F_0: filter location-dependent deliveries against the exact
  /// current vicinity before notifying the application.
  bool client_side_filtering = true;
};

/// A delivered notification as the application sees it. The record type
/// lives in metrics/ (the checkers consume delivery logs); this alias is
/// the application-facing name.
using Delivery = metrics::Delivery;

class Client final : public net::Endpoint {
 public:
  Client(sim::Executor& sim, ClientConfig config);

  [[nodiscard]] ClientId id() const { return config_.id; }
  [[nodiscard]] const ClientConfig& config() const { return config_; }

  // ---- the four primitives (+ advertisements) ----
  std::uint32_t subscribe(filter::Filter f);
  std::uint32_t subscribe(location::LdSpec spec);
  void unsubscribe(std::uint32_t sub);
  AdvId advertise(filter::Filter f);
  void unadvertise(AdvId id);
  void publish(filter::Notification n);
  /// notify: invoked for every delivery that passes client-side checks.
  std::function<void(const Delivery&)> on_notify;
  /// Observer invoked for every publication right after stamping, whether
  /// or not the client is connected (scenario-layer publication logs).
  std::function<void(const filter::Notification&)> on_publish;

  // ---- logical mobility ----
  void move_to(LocationId loc);
  void move_to(const std::string& loc_name);
  [[nodiscard]] LocationId location() const { return loc_; }

  // ---- physical connectivity (driven by the Overlay) ----
  /// Called by Overlay when a link to a border broker is established;
  /// sends the hello (with re-subscriptions when roaming).
  void attach(net::Link& link);
  /// Graceful detach: sign off, then cut the link.
  void detach_gracefully();
  /// Silent detach: just cut the link (out of radio range).
  void detach_silently();
  [[nodiscard]] bool connected() const { return !links_.empty(); }

  // ---- net::Endpoint ----
  void handle_message(net::Link& from, const net::Message& msg) override;
  void handle_link_down(net::Link& link) override;
  [[nodiscard]] std::string endpoint_name() const override;

  // ---- introspection ----
  [[nodiscard]] const std::vector<Delivery>& deliveries() const {
    return deliveries_;
  }
  [[nodiscard]] std::uint64_t last_seq(std::uint32_t sub) const;
  [[nodiscard]] std::uint64_t duplicate_count() const { return duplicates_; }
  [[nodiscard]] std::uint64_t filtered_count() const { return filtered_; }

 private:
  struct SubState {
    net::SubscriptionSpec spec;
    std::uint64_t epoch = 0;
    std::uint64_t last_seq = 0;
    /// True until a border broker has seen this subscription: fresh subs
    /// are plainly installed, never relocated (there is no old state to
    /// hunt for).
    bool fresh = true;
    std::set<NotificationId> seen;  // dedup window
  };

  void send_all_links(net::Message msg);
  [[nodiscard]] net::ClientHelloMsg hello();
  [[nodiscard]] bool passes_client_filter(const SubState& sub,
                                          const filter::Notification& n) const;

  sim::Executor& sim_;
  /// Debug-only: the lane that owns this client (lane_check.hpp).
  sim::LaneAffinity lane_affinity_;
  ClientConfig config_;
  std::vector<net::Link*> links_;
  std::map<std::uint32_t, SubState> subs_;
  std::uint32_t next_sub_ = 1;
  std::uint64_t next_pub_ = 1;
  std::uint64_t next_adv_ = 1;
  LocationId loc_;
  std::vector<filter::Notification> pending_pubs_;  // published offline
  std::map<AdvId, filter::Filter> advs_;
  std::vector<Delivery> deliveries_;
  std::uint64_t duplicates_ = 0;
  std::uint64_t filtered_ = 0;
};

}  // namespace rebeca::client

#endif  // REBECA_CLIENT_CLIENT_HPP
