#include "src/workload/mover.hpp"

#include "src/util/assert.hpp"

namespace rebeca::workload {

LogicalMover::LogicalMover(sim::Executor& sim, client::Client& client,
                           LogicalMoverConfig config)
    : sim_(sim), client_(client), config_(std::move(config)),
      rng_(config_.seed) {
  REBECA_ASSERT(config_.locations != nullptr, "mover needs a location graph");
  REBECA_ASSERT(config_.delta > 0, "residence time must be positive");
}

void LogicalMover::start() {
  if (running_) return;
  running_ = true;
  const auto dwell = config_.exponential_residence
                         ? static_cast<sim::Duration>(rng_.exponential(
                               static_cast<double>(config_.delta)))
                         : config_.delta;
  next_ = sim_.schedule_after(dwell, [this] { step(); });
}

void LogicalMover::stop() {
  running_ = false;
  next_.cancel();
}

void LogicalMover::step() {
  if (!running_) return;
  if (!config_.waypoints.empty()) {
    client_.move_to(config_.waypoints[position_]);
    position_ = (position_ + 1) % config_.waypoints.size();
    ++moves_;
  } else {
    const auto& nbrs = config_.locations->neighbors(client_.location());
    if (!nbrs.empty()) {
      client_.move_to(nbrs[rng_.index(nbrs.size())]);
      ++moves_;
    }
  }
  if (config_.max_moves != 0 && moves_ >= config_.max_moves) {
    running_ = false;
    return;
  }
  const auto dwell = config_.exponential_residence
                         ? static_cast<sim::Duration>(rng_.exponential(
                               static_cast<double>(config_.delta)))
                         : config_.delta;
  next_ = sim_.schedule_after(dwell, [this] { step(); });
}

PhysicalMover::PhysicalMover(broker::Overlay& overlay, client::Client& client,
                             PhysicalMoverConfig config)
    : overlay_(overlay), client_(client), config_(std::move(config)),
      rng_(config_.seed), last_broker_(overlay.broker_count()) {
  REBECA_ASSERT(!config_.itinerary.empty() || config_.random_waypoint,
                "itinerary must not be empty (or set random_waypoint)");
}

void PhysicalMover::start() {
  if (running_) return;
  running_ = true;
  next_ = overlay_.sim().schedule_after(config_.dwell, [this] { depart(); });
}

void PhysicalMover::stop() {
  running_ = false;
  next_.cancel();
}

void PhysicalMover::depart() {
  if (!running_) return;
  if (config_.graceful) {
    client_.detach_gracefully();
  } else {
    client_.detach_silently();
  }
  next_ = overlay_.sim().schedule_after(config_.gap, [this] { arrive(); });
}

void PhysicalMover::arrive() {
  if (!running_) return;
  std::size_t stop;
  if (!config_.itinerary.empty()) {
    stop = config_.itinerary[position_];
    position_ = (position_ + 1) % config_.itinerary.size();
  } else {
    // Random waypoint: any broker but the previous stop (when possible).
    do {
      stop = rng_.index(overlay_.broker_count());
    } while (overlay_.broker_count() > 1 && stop == last_broker_);
  }
  last_broker_ = stop;
  overlay_.connect_client(client_, stop);
  ++hops_;
  if (config_.max_hops != 0 && hops_ >= config_.max_hops) {
    running_ = false;
    return;
  }
  next_ = overlay_.sim().schedule_after(config_.dwell, [this] { depart(); });
}

}  // namespace rebeca::workload
