// Mover workloads: drive a client's mobility.
//
// LogicalMover performs a random walk on the movement graph, staying Δ
// at each location (the consumer of Fig. 9). PhysicalMover roams between
// border brokers with disconnected gaps (the roaming client of Sec. 4).
#ifndef REBECA_WORKLOAD_MOVER_HPP
#define REBECA_WORKLOAD_MOVER_HPP

#include <vector>

#include "src/broker/overlay.hpp"
#include "src/client/client.hpp"
#include "src/location/location_graph.hpp"
#include "src/sim/executor.hpp"
#include "src/util/rng.hpp"

namespace rebeca::workload {

struct LogicalMoverConfig {
  const location::LocationGraph* locations = nullptr;
  /// Scripted route followed in order (wrapping around); empty = random
  /// walk over the movement graph.
  std::vector<LocationId> waypoints;
  /// Mean residence time Δ at one location.
  sim::Duration delta = sim::seconds(1);
  /// Draw residence times from Exp(Δ) instead of exactly Δ.
  bool exponential_residence = false;
  std::uint64_t seed = 1;
  std::uint64_t max_moves = 0;  // 0 = unbounded
};

/// Random walk over the movement graph via Client::move_to.
class LogicalMover {
 public:
  LogicalMover(sim::Executor& sim, client::Client& client,
               LogicalMoverConfig config);

  void start();
  void stop();
  [[nodiscard]] std::uint64_t moves() const { return moves_; }

 private:
  void step();

  sim::Executor& sim_;
  client::Client& client_;
  LogicalMoverConfig config_;
  util::Rng rng_;
  std::size_t position_ = 0;  // next scripted waypoint
  std::uint64_t moves_ = 0;
  bool running_ = false;
  sim::EventHandle next_;
};

struct PhysicalMoverConfig {
  /// Brokers visited, in order (wraps around). May be empty when
  /// `random_waypoint` is set.
  std::vector<std::size_t> itinerary;
  /// Seeded random-waypoint roaming: each hop re-attaches at a uniformly
  /// drawn broker different from the previous stop.
  bool random_waypoint = false;
  std::uint64_t seed = 1;
  /// Connected time at each broker.
  sim::Duration dwell = sim::seconds(5);
  /// Disconnected gap between detach and the next attach.
  sim::Duration gap = sim::seconds(1);
  bool graceful = false;  // sign off with a bye instead of going silent
  std::uint64_t max_hops = 0;
};

/// Roams a client across border brokers: dwell, detach, gap, re-attach.
class PhysicalMover {
 public:
  PhysicalMover(broker::Overlay& overlay, client::Client& client,
                PhysicalMoverConfig config);

  void start();
  void stop();
  [[nodiscard]] std::uint64_t hops() const { return hops_; }

 private:
  void depart();
  void arrive();

  broker::Overlay& overlay_;
  client::Client& client_;
  PhysicalMoverConfig config_;
  util::Rng rng_;
  std::size_t position_ = 0;
  std::size_t last_broker_;  // avoid random re-draws of the current stop
  std::uint64_t hops_ = 0;
  bool running_ = false;
  sim::EventHandle next_;
};

}  // namespace rebeca::workload

#endif  // REBECA_WORKLOAD_MOVER_HPP
