// Publisher workloads: processes that publish notifications on a
// schedule, used by the experiments (Fig. 9's producers publish
// "according to a uniform distribution over the set of locations").
#ifndef REBECA_WORKLOAD_PUBLISHER_HPP
#define REBECA_WORKLOAD_PUBLISHER_HPP

#include <functional>
#include <string>

#include "src/client/client.hpp"
#include "src/location/location_graph.hpp"
#include "src/sim/executor.hpp"
#include "src/util/rng.hpp"

namespace rebeca::workload {

/// Inter-publication timing.
struct RateModel {
  enum class Kind { periodic, poisson };
  Kind kind = Kind::periodic;
  sim::Duration period = sim::millis(100);  // period / mean inter-arrival

  static RateModel periodic(sim::Duration period) {
    return {Kind::periodic, period};
  }
  static RateModel poisson(sim::Duration mean_interval) {
    return {Kind::poisson, mean_interval};
  }

  [[nodiscard]] sim::Duration next_interval(util::Rng& rng) const {
    switch (kind) {
      case Kind::periodic:
        return period;
      case Kind::poisson:
        return static_cast<sim::Duration>(
            rng.exponential(static_cast<double>(period)));
    }
    return period;
  }
};

struct PublisherConfig {
  RateModel rate = RateModel::periodic(sim::millis(100));
  /// Attribute template applied to every notification.
  filter::Notification prototype;
  /// If set, each notification gets a `location` attribute drawn
  /// uniformly from this graph (Fig. 9's uniform location distribution).
  const location::LocationGraph* locations = nullptr;
  std::string location_attr = "location";
  /// Stop after this many publications (0 = run until stopped).
  std::uint64_t max_count = 0;
  /// RNG seed for this publisher's draws.
  std::uint64_t seed = 1;
};

/// Drives a Client's publish() on the configured schedule.
class Publisher {
 public:
  Publisher(sim::Executor& sim, client::Client& client, PublisherConfig config);

  void start();
  void stop();
  [[nodiscard]] std::uint64_t published() const { return published_; }

 private:
  void tick();

  sim::Executor& sim_;
  client::Client& client_;
  PublisherConfig config_;
  util::Rng rng_;
  std::uint64_t published_ = 0;
  bool running_ = false;
  sim::EventHandle next_;
};

}  // namespace rebeca::workload

#endif  // REBECA_WORKLOAD_PUBLISHER_HPP
