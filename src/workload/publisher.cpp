#include "src/workload/publisher.hpp"

namespace rebeca::workload {

Publisher::Publisher(sim::Executor& sim, client::Client& client,
                     PublisherConfig config)
    : sim_(sim), client_(client), config_(std::move(config)),
      rng_(config_.seed) {}

void Publisher::start() {
  if (running_) return;
  running_ = true;
  next_ = sim_.schedule_after(config_.rate.next_interval(rng_), [this] { tick(); });
}

void Publisher::stop() {
  running_ = false;
  next_.cancel();
}

void Publisher::tick() {
  if (!running_) return;
  filter::Notification n = config_.prototype;
  if (config_.locations != nullptr) {
    const auto loc = LocationId(
        static_cast<std::uint32_t>(rng_.index(config_.locations->size())));
    n.set(config_.location_attr, config_.locations->name(loc));
  }
  client_.publish(std::move(n));
  ++published_;
  if (config_.max_count != 0 && published_ >= config_.max_count) {
    running_ = false;
    return;
  }
  next_ = sim_.schedule_after(config_.rate.next_interval(rng_), [this] { tick(); });
}

}  // namespace rebeca::workload
