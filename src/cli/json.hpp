// Minimal JSON for the scenario config loader — no external deps.
//
// Full JSON value model (null/bool/number/string/array/object) with a
// recursive-descent parser that reports line/column on errors. Numbers
// are stored as double (integral config values stay exact up to 2^53,
// far beyond anything a scenario config holds). Object member order is
// preserved so diagnostics can point at the offending entry.
#ifndef REBECA_CLI_JSON_HPP
#define REBECA_CLI_JSON_HPP

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace rebeca::cli {

/// Parse or config-shape error, with a human-readable location.
class JsonError : public std::runtime_error {
 public:
  explicit JsonError(const std::string& what) : std::runtime_error(what) {}
};

class JsonValue {
 public:
  enum class Kind { null, boolean, number, string, array, object };

  /// Parses a complete JSON document; trailing garbage is an error.
  static JsonValue parse(const std::string& text);

  JsonValue() = default;  // null

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::null; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::boolean; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::number; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::string; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::array; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::object; }
  [[nodiscard]] const char* kind_name() const;

  /// Typed accessors throw JsonError on kind mismatch, naming `where`
  /// (a config path like "clients[0].broker") in the message.
  [[nodiscard]] bool as_bool(const std::string& where = "") const;
  [[nodiscard]] double as_number(const std::string& where = "") const;
  [[nodiscard]] std::int64_t as_int(const std::string& where = "") const;
  [[nodiscard]] const std::string& as_string(const std::string& where = "") const;

  // ---- array access ----
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const JsonValue& at(std::size_t i) const;
  [[nodiscard]] const std::vector<JsonValue>& items() const;

  // ---- object access ----
  /// nullptr when the key is absent; throws JsonError when this value is
  /// not an object at all (a mistyped section must reject, not silently
  /// fall back to defaults).
  [[nodiscard]] const JsonValue* find(const std::string& key) const;
  /// Throws JsonError when absent.
  [[nodiscard]] const JsonValue& get(const std::string& key,
                                     const std::string& where = "") const;
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>& members()
      const;

  // ---- defaulted conveniences for optional config fields ----
  [[nodiscard]] double number_or(const std::string& key, double fallback) const;
  [[nodiscard]] std::int64_t int_or(const std::string& key,
                                    std::int64_t fallback) const;
  [[nodiscard]] bool bool_or(const std::string& key, bool fallback) const;
  [[nodiscard]] std::string string_or(const std::string& key,
                                      std::string fallback) const;

 private:
  friend class JsonParser;

  Kind kind_ = Kind::null;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

}  // namespace rebeca::cli

#endif  // REBECA_CLI_JSON_HPP
