// Config loader for `rebeca-node`: the same JSON document that drives
// `rebeca-run`, reduced to the subset a transport process needs and
// resolved into a transport::NodeSpec.
//
// A node config is the scenario config plus one stanza:
//
//   "transport": {
//     "host": "127.0.0.1",       // optional, IPv4 only
//     "port_base": 4700,         // broker i listens on port_base + i
//     "rendezvous_dir": "/tmp/r" // or: ephemeral ports + port files
//     "time_scale": 1.0          // wall seconds per virtual second
//   }
//
// Every broker process and the client bundle parse the same file, so
// structural facts the protocol depends on being identical everywhere
// (topology, broker tuning, the location graph implied by config text)
// are identical by construction.
//
// Phase references in drives ("from_phase", "until_phase_end") are
// resolved to absolute virtual times at load; the sum of the phase
// durations becomes NodeSpec::total_duration.
#ifndef REBECA_CLI_NODE_CONFIG_HPP
#define REBECA_CLI_NODE_CONFIG_HPP

#include <string>

#include "src/transport/node.hpp"

namespace rebeca::cli {

/// Parses a node config document. Throws JsonError on malformed JSON or
/// config shape errors (same error surface as parse_config).
[[nodiscard]] transport::NodeSpec parse_node_config(
    const std::string& json_text);

/// Reads and parses a config file. Throws JsonError (also for I/O).
[[nodiscard]] transport::NodeSpec load_node_config(const std::string& path);

}  // namespace rebeca::cli

#endif  // REBECA_CLI_NODE_CONFIG_HPP
