#include "src/cli/config.hpp"

#include <fstream>
#include <memory>
#include <sstream>
#include <utility>
#include <vector>

namespace rebeca::cli {

namespace {

using scenario::ScenarioBuilder;

[[noreturn]] void fail(const std::string& where, const std::string& msg) {
  throw JsonError("config field " + where + ": " + msg);
}

// ---------------------------------------------------------------------------
// Values, filters, notifications
// ---------------------------------------------------------------------------

filter::Value parse_value(const JsonValue& v, const std::string& where) {
  switch (v.kind()) {
    case JsonValue::Kind::boolean:
      return filter::Value(v.as_bool(where));
    case JsonValue::Kind::string:
      return filter::Value(v.as_string(where));
    case JsonValue::Kind::number: {
      const double d = v.as_number(where);
      // Integral values become int64 attributes — but only inside the
      // exactly-representable range (±2^53); beyond it the cast is UB
      // and the value stays a double.
      constexpr double kMaxExact = 9007199254740992.0;  // 2^53
      if (d >= -kMaxExact && d <= kMaxExact) {
        const auto i = static_cast<std::int64_t>(d);
        if (static_cast<double>(i) == d) return filter::Value(i);
      }
      return filter::Value(d);
    }
    default:
      fail(where, std::string("cannot use ") + v.kind_name() +
                      " as an attribute value");
  }
}

filter::Constraint parse_constraint(const JsonValue& v,
                                    const std::string& where) {
  // Shorthand: a bare scalar means equality.
  if (!v.is_object()) return filter::Constraint::eq(parse_value(v, where));
  if (v.size() != 1) {
    fail(where, "a constraint object holds exactly one operator key");
  }
  const auto& [op, operand] = v.members().front();
  const std::string at = where + "." + op;
  if (op == "eq") return filter::Constraint::eq(parse_value(operand, at));
  if (op == "ne") return filter::Constraint::ne(parse_value(operand, at));
  if (op == "lt") return filter::Constraint::lt(parse_value(operand, at));
  if (op == "le") return filter::Constraint::le(parse_value(operand, at));
  if (op == "gt") return filter::Constraint::gt(parse_value(operand, at));
  if (op == "ge") return filter::Constraint::ge(parse_value(operand, at));
  if (op == "prefix") {
    return filter::Constraint::prefix(operand.as_string(at));
  }
  if (op == "any") return filter::Constraint::any();
  if (op == "in") {
    std::set<filter::Value> values;
    for (const JsonValue& item : operand.items()) {
      values.insert(parse_value(item, at));
    }
    return filter::Constraint::in_set(std::move(values));
  }
  if (op == "range") {
    if (!operand.is_array() || operand.size() != 2) {
      fail(at, "range takes [lo, hi]");
    }
    return filter::Constraint::range(parse_value(operand.at(0), at),
                                     parse_value(operand.at(1), at));
  }
  fail(where, "unknown constraint operator \"" + op + "\"");
}

}  // namespace

filter::Filter parse_filter(const JsonValue& v, const std::string& where) {
  filter::Filter f;
  for (const auto& [attr, c] : v.members()) {
    f.where(attr, parse_constraint(c, where + "." + attr));
  }
  return f;
}

filter::Notification parse_notification(const JsonValue& v,
                                        const std::string& where) {
  filter::Notification n;
  for (const auto& [attr, value] : v.members()) {
    n.set(attr, parse_value(value, where + "." + attr));
  }
  return n;
}

namespace {

// ---------------------------------------------------------------------------
// Structural pieces
// ---------------------------------------------------------------------------

scenario::TopologySpec parse_topology(const JsonValue& v) {
  const std::string kind = v.string_or("kind", "chain");
  const auto size = static_cast<std::size_t>(v.int_or("size", 2));
  if (kind == "chain") return scenario::TopologySpec::chain(size);
  if (kind == "star") return scenario::TopologySpec::star(size);
  if (kind == "balanced_tree") {
    return scenario::TopologySpec::balanced_tree(
        static_cast<std::size_t>(v.int_or("depth", 2)),
        static_cast<std::size_t>(v.int_or("fanout", 2)));
  }
  if (kind == "random_tree") return scenario::TopologySpec::random_tree(size);
  fail("topology.kind", "unknown topology \"" + kind + "\"");
}

scenario::LocationSpec parse_locations(const JsonValue& v) {
  const std::string kind = v.string_or("kind", "none");
  if (kind == "none") return scenario::LocationSpec::none();
  if (kind == "line") {
    return scenario::LocationSpec::line(
        static_cast<std::size_t>(v.int_or("size", 2)));
  }
  if (kind == "grid") {
    return scenario::LocationSpec::grid(
        static_cast<std::size_t>(v.int_or("width", 2)),
        static_cast<std::size_t>(v.int_or("height", 2)));
  }
  if (kind == "ring") {
    return scenario::LocationSpec::ring(
        static_cast<std::size_t>(v.int_or("size", 3)));
  }
  if (kind == "fig7") return scenario::LocationSpec::paper_fig7();
  if (kind == "random") {
    return scenario::LocationSpec::random_connected(
        static_cast<std::size_t>(v.int_or("size", 4)),
        static_cast<std::size_t>(v.int_or("extra_edges", 0)));
  }
  fail("locations.kind", "unknown location graph \"" + kind + "\"");
}

routing::Strategy parse_strategy(const std::string& name) {
  if (name == "flooding") return routing::Strategy::flooding;
  if (name == "simple") return routing::Strategy::simple;
  if (name == "identity") return routing::Strategy::identity;
  if (name == "covering") return routing::Strategy::covering;
  if (name == "merging") return routing::Strategy::merging;
  fail("routing", "unknown strategy \"" + name + "\"");
}

broker::Matcher parse_matcher(const std::string& name) {
  if (name == "linear") return broker::Matcher::linear;
  if (name == "index") return broker::Matcher::index;
  fail("matcher", "unknown matcher \"" + name + "\"");
}

routing::AdminIndex parse_admin_index(const std::string& name) {
  if (name == "linear") return routing::AdminIndex::linear;
  if (name == "index") return routing::AdminIndex::index;
  fail("admin_index", "unknown admin index \"" + name + "\"");
}

/// Validated millisecond field: the DelayModel factories REBECA_ASSERT
/// their ranges and sim::millis casts double -> int64, so hostile
/// configs (negative, lo > hi, 1e308, NaN) must be rejected HERE with a
/// JsonError, not crash in the engine. 1e12 ms ~ 31 sim-years, far above
/// any real config and far below int64 tick overflow.
double delay_ms(double ms, const std::string& where) {
  if (!(ms >= 0 && ms <= 1e12)) {  // NaN fails both comparisons
    fail(where, "delay must be in [0, 1e12] milliseconds");
  }
  return ms;
}

sim::DelayModel parse_delay(const JsonValue& v, const std::string& where) {
  // Shorthand: a bare number is a fixed delay in milliseconds.
  if (v.is_number()) {
    return sim::DelayModel::fixed(
        sim::millis(delay_ms(v.as_number(where), where)));
  }
  const std::string kind = v.string_or("kind", "fixed");
  if (kind == "fixed") {
    return sim::DelayModel::fixed(
        sim::millis(delay_ms(v.number_or("ms", 1), where + ".ms")));
  }
  if (kind == "uniform") {
    const double lo = delay_ms(v.number_or("lo_ms", 0), where + ".lo_ms");
    const double hi = delay_ms(v.number_or("hi_ms", 1), where + ".hi_ms");
    if (lo > hi) fail(where, "lo_ms must be <= hi_ms");
    return sim::DelayModel::uniform(sim::millis(lo), sim::millis(hi));
  }
  if (kind == "exponential") {
    const double floor =
        delay_ms(v.number_or("floor_ms", 0), where + ".floor_ms");
    const double mean = delay_ms(v.number_or("mean_ms", 1), where + ".mean_ms");
    if (mean <= 0) fail(where + ".mean_ms", "mean_ms must be > 0");
    return sim::DelayModel::exponential(sim::millis(floor), sim::millis(mean));
  }
  fail(where + ".kind", "unknown delay model \"" + kind + "\"");
}

broker::BrokerConfig parse_broker(const JsonValue& v,
                                  broker::BrokerConfig base) {
  base.use_advertisements =
      v.bool_or("use_advertisements", base.use_advertisements);
  base.session_history = static_cast<std::size_t>(
      v.int_or("session_history", static_cast<std::int64_t>(base.session_history)));
  base.virtual_capacity = static_cast<std::size_t>(v.int_or(
      "virtual_capacity", static_cast<std::int64_t>(base.virtual_capacity)));
  base.virtual_ttl =
      sim::millis(v.number_or("virtual_ttl_ms", sim::to_millis(base.virtual_ttl)));
  base.relocation_timeout = sim::millis(v.number_or(
      "relocation_timeout_ms", sim::to_millis(base.relocation_timeout)));
  base.ld_presubscribe = v.bool_or("ld_presubscribe", base.ld_presubscribe);
  base.ld_widen_interval = sim::millis(v.number_or(
      "ld_widen_interval_ms", sim::to_millis(base.ld_widen_interval)));
  return base;
}

location::UncertaintyProfile parse_profile(const JsonValue& v,
                                           const std::string& where) {
  const std::string kind = v.string_or("kind", "global_resub");
  if (kind == "global_resub") return location::UncertaintyProfile::global_resub();
  if (kind == "flooding") return location::UncertaintyProfile::flooding();
  if (kind == "explicit") {
    std::vector<std::size_t> steps;
    for (const JsonValue& s : v.get("steps", where).items()) {
      steps.push_back(static_cast<std::size_t>(s.as_int(where + ".steps")));
    }
    return location::UncertaintyProfile::explicit_steps(std::move(steps));
  }
  if (kind == "adaptive") {
    std::vector<sim::Duration> hops;
    if (const JsonValue* h = v.find("hop_delays_ms")) {
      for (const JsonValue& d : h->items()) {
        hops.push_back(sim::millis(d.as_number(where + ".hop_delays_ms")));
      }
    }
    return location::UncertaintyProfile::adaptive(
        sim::millis(v.number_or("delta_ms", 1000)), std::move(hops));
  }
  fail(where + ".kind", "unknown uncertainty profile \"" + kind + "\"");
}

location::LdSpec parse_ld_spec(const JsonValue& v, const std::string& where) {
  location::LdSpec spec;
  if (const JsonValue* base = v.find("base")) {
    spec.base = parse_filter(*base, where + ".base");
  }
  spec.location_attr = v.string_or("location_attr", spec.location_attr);
  spec.vicinity_radius = static_cast<std::uint32_t>(
      v.int_or("vicinity_radius", spec.vicinity_radius));
  if (const JsonValue* p = v.find("profile")) {
    spec.profile = parse_profile(*p, where + ".profile");
  }
  return spec;
}

// ---------------------------------------------------------------------------
// Clients
// ---------------------------------------------------------------------------

void apply_client(const JsonValue& v, const std::string& where,
                  ScenarioBuilder& b) {
  const std::string name = v.get("name", where).as_string(where + ".name");
  scenario::ClientSpec& c = b.client(name);
  if (const JsonValue* id = v.find("id")) {
    c.with_id(static_cast<std::uint32_t>(id->as_int(where + ".id")));
  }
  if (const JsonValue* broker = v.find("broker")) {
    c.at_broker(static_cast<std::size_t>(broker->as_int(where + ".broker")));
  }
  if (const JsonValue* loc = v.find("starts_at")) {
    c.starts_at(loc->as_string(where + ".starts_at"));
  }
  const std::string mode = v.string_or("relocation", "rebeca");
  if (mode == "rebeca") {
    c.relocation(client::RelocationMode::rebeca);
  } else if (mode == "naive") {
    c.relocation(client::RelocationMode::naive);
  } else {
    fail(where + ".relocation", "unknown mode \"" + mode + "\"");
  }
  c.dedup(v.bool_or("dedup", true));
  c.client_side_filtering(v.bool_or("client_side_filtering", true));

  if (const JsonValue* subs = v.find("subscribes")) {
    std::size_t i = 0;
    for (const JsonValue& f : subs->items()) {
      std::ostringstream w;
      w << where << ".subscribes[" << i++ << "]";
      c.subscribes(parse_filter(f, w.str()));
    }
  }
  if (const JsonValue* subs = v.find("subscribes_ld")) {
    std::size_t i = 0;
    for (const JsonValue& s : subs->items()) {
      std::ostringstream w;
      w << where << ".subscribes_ld[" << i++ << "]";
      c.subscribes(parse_ld_spec(s, w.str()));
    }
  }
  if (const JsonValue* advs = v.find("advertises")) {
    std::size_t i = 0;
    for (const JsonValue& f : advs->items()) {
      std::ostringstream w;
      w << where << ".advertises[" << i++ << "]";
      c.advertises(parse_filter(f, w.str()));
    }
  }

  if (const JsonValue* pubs = v.find("publishes")) {
    std::size_t i = 0;
    for (const JsonValue& p : pubs->items()) {
      std::ostringstream ws;
      ws << where << ".publishes[" << i++ << "]";
      const std::string w = ws.str();
      scenario::PublishSpec spec;
      if (const JsonValue* every = p.find("every_ms")) {
        spec.every(sim::millis(every->as_number(w + ".every_ms")));
      } else if (const JsonValue* poisson = p.find("poisson_ms")) {
        spec.poisson(sim::millis(poisson->as_number(w + ".poisson_ms")));
      } else {
        fail(w, "publishes needs every_ms or poisson_ms");
      }
      spec.body(parse_notification(p.get("body", w), w + ".body"));
      if (p.bool_or("uniform_locations", false)) {
        spec.uniform_locations(p.string_or("location_attr", "location"));
      }
      spec.count(static_cast<std::uint64_t>(p.int_or("count", 0)));
      if (const JsonValue* seed = p.find("seed")) {
        spec.with_seed(static_cast<std::uint64_t>(seed->as_int(w + ".seed")));
      }
      if (const JsonValue* from = p.find("from_phase")) {
        spec.from_phase(from->as_string(w + ".from_phase"));
      }
      if (const JsonValue* until = p.find("until_phase_end")) {
        spec.until_phase_end(until->as_string(w + ".until_phase_end"));
      }
      c.publishes(std::move(spec));
    }
  }

  if (const JsonValue* roams = v.find("roams")) {
    std::size_t i = 0;
    for (const JsonValue& r : roams->items()) {
      std::ostringstream ws;
      ws << where << ".roams[" << i++ << "]";
      const std::string w = ws.str();
      scenario::RoamSpec spec;
      if (const JsonValue* route = r.find("route")) {
        std::vector<std::size_t> stops;
        for (const JsonValue& s : route->items()) {
          stops.push_back(static_cast<std::size_t>(s.as_int(w + ".route")));
        }
        spec.route(std::move(stops));
      }
      if (r.bool_or("random_waypoint", false)) spec.random_waypoint();
      spec.dwelling(sim::millis(r.number_or("dwell_ms", 5000)));
      spec.dark_for(sim::millis(r.number_or("gap_ms", 1000)));
      if (r.bool_or("graceful", false)) spec.gracefully();
      spec.hops(static_cast<std::uint64_t>(r.int_or("hops", 0)));
      if (const JsonValue* seed = r.find("seed")) {
        spec.with_seed(static_cast<std::uint64_t>(seed->as_int(w + ".seed")));
      }
      if (const JsonValue* from = r.find("from_phase")) {
        spec.from_phase(from->as_string(w + ".from_phase"));
      }
      c.roams(std::move(spec));
    }
  }

  if (const JsonValue* walks = v.find("walks")) {
    std::size_t i = 0;
    for (const JsonValue& wv : walks->items()) {
      std::ostringstream ws;
      ws << where << ".walks[" << i++ << "]";
      const std::string w = ws.str();
      scenario::WalkSpec spec;
      if (const JsonValue* route = wv.find("route")) {
        std::vector<std::string> stops;
        for (const JsonValue& s : route->items()) {
          stops.push_back(s.as_string(w + ".route"));
        }
        spec.route(std::move(stops));
      }
      spec.residing(sim::millis(wv.number_or("residence_ms", 1000)));
      if (wv.bool_or("exponential_residence", false)) {
        spec.exponential_residence();
      }
      spec.moves(static_cast<std::uint64_t>(wv.int_or("moves", 0)));
      if (const JsonValue* seed = wv.find("seed")) {
        spec.with_seed(static_cast<std::uint64_t>(seed->as_int(w + ".seed")));
      }
      if (const JsonValue* from = wv.find("from_phase")) {
        spec.from_phase(from->as_string(w + ".from_phase"));
      }
      c.walks(std::move(spec));
    }
  }
}

// ---------------------------------------------------------------------------
// Phases and on-enter actions
// ---------------------------------------------------------------------------

std::function<void(scenario::Scenario&)> parse_action(const JsonValue& v,
                                                      const std::string& where) {
  const std::string action = v.get("action", where).as_string(where + ".action");
  const auto client_of = [&]() {
    return v.get("client", where).as_string(where + ".client");
  };
  if (action == "connect") {
    const std::string client = client_of();
    const auto broker =
        static_cast<std::size_t>(v.get("broker", where).as_int(where + ".broker"));
    return [client, broker](scenario::Scenario& s) {
      s.connect(client, broker);
    };
  }
  if (action == "detach") {
    const std::string client = client_of();
    const bool graceful = v.bool_or("graceful", false);
    return [client, graceful](scenario::Scenario& s) {
      s.detach(client, graceful);
    };
  }
  if (action == "subscribe") {
    const std::string client = client_of();
    const filter::Filter f = parse_filter(v.get("filter", where), where + ".filter");
    return [client, f](scenario::Scenario& s) { s.client(client).subscribe(f); };
  }
  if (action == "publish") {
    const std::string client = client_of();
    const filter::Notification n =
        parse_notification(v.get("body", where), where + ".body");
    return [client, n](scenario::Scenario& s) { s.client(client).publish(n); };
  }
  if (action == "move") {
    const std::string client = client_of();
    const std::string to = v.get("to", where).as_string(where + ".to");
    return [client, to](scenario::Scenario& s) { s.client(client).move_to(to); };
  }
  fail(where + ".action", "unknown action \"" + action + "\"");
}

void apply_phase(const JsonValue& v, const std::string& where,
                 ScenarioBuilder& b) {
  const std::string name = v.get("name", where).as_string(where + ".name");
  const sim::Duration duration =
      sim::millis(v.get("duration_ms", where).as_number(where + ".duration_ms"));
  std::function<void(scenario::Scenario&)> on_enter;
  if (const JsonValue* actions = v.find("on_enter")) {
    std::vector<std::function<void(scenario::Scenario&)>> steps;
    std::size_t i = 0;
    for (const JsonValue& a : actions->items()) {
      std::ostringstream w;
      w << where << ".on_enter[" << i++ << "]";
      steps.push_back(parse_action(a, w.str()));
    }
    on_enter = [steps = std::move(steps)](scenario::Scenario& s) {
      for (const auto& step : steps) step(s);
    };
  }
  b.phase(name, duration, std::move(on_enter));
}

// ---------------------------------------------------------------------------
// Whole document
// ---------------------------------------------------------------------------

void apply_config(const JsonValue& root, ScenarioBuilder& b) {
  if (!root.is_object()) {
    throw JsonError("config root must be a JSON object");
  }
  if (const JsonValue* topo = root.find("topology")) {
    b.topology(parse_topology(*topo));
  }
  if (const JsonValue* locs = root.find("locations")) {
    b.locations(parse_locations(*locs));
  }
  broker::OverlayConfig overlay;
  if (const JsonValue* br = root.find("broker")) {
    overlay.broker = parse_broker(*br, overlay.broker);
  }
  if (const JsonValue* routing = root.find("routing")) {
    overlay.broker.strategy = parse_strategy(routing->as_string("routing"));
  }
  if (const JsonValue* matcher = root.find("matcher")) {
    overlay.broker.matcher = parse_matcher(matcher->as_string("matcher"));
  }
  if (const JsonValue* admin = root.find("admin_index")) {
    overlay.broker.admin_index =
        parse_admin_index(admin->as_string("admin_index"));
  }
  if (const JsonValue* d = root.find("broker_link_delay")) {
    overlay.broker_link_delay = parse_delay(*d, "broker_link_delay");
  }
  if (const JsonValue* d = root.find("client_link_delay")) {
    overlay.client_link_delay = parse_delay(*d, "client_link_delay");
  }
  b.overlay(std::move(overlay));

  std::size_t i = 0;
  for (const JsonValue& c : root.get("clients", "").items()) {
    std::ostringstream w;
    w << "clients[" << i++ << "]";
    apply_client(c, w.str(), b);
  }
  i = 0;
  for (const JsonValue& p : root.get("phases", "").items()) {
    std::ostringstream w;
    w << "phases[" << i++ << "]";
    apply_phase(p, w.str(), b);
  }

  if (const JsonValue* cp = root.find("checkpoint_every_ms")) {
    b.checkpoint_every(sim::millis(cp->as_number("checkpoint_every_ms")));
  }
  // Declarative QoS expectations, checked by every run's report():
  //   "expect": {"exactly_once": ["consumer"], "fifo": ["consumer"]}
  if (const JsonValue* expect = root.find("expect")) {
    if (const JsonValue* once = expect->find("exactly_once")) {
      for (const JsonValue& name : once->items()) {
        b.expect_exactly_once(name.as_string("expect.exactly_once"));
      }
    }
    if (const JsonValue* fifo = expect->find("fifo")) {
      for (const JsonValue& name : fifo->items()) {
        b.expect_fifo(name.as_string("expect.fifo"));
      }
    }
  }
}

scenario::SweepConfig parse_sweep(const JsonValue& root) {
  scenario::SweepConfig cfg;
  const JsonValue* sweep = root.find("sweep");
  if (sweep == nullptr) return cfg;
  if (const JsonValue* seeds = sweep->find("seeds")) {
    for (const JsonValue& s : seeds->items()) {
      cfg.seeds.push_back(static_cast<std::uint64_t>(s.as_int("sweep.seeds")));
    }
  }
  cfg.base_seed =
      static_cast<std::uint64_t>(sweep->int_or("base_seed", 1));
  cfg.runs = static_cast<std::size_t>(sweep->int_or("runs", 1));
  cfg.threads = static_cast<std::size_t>(sweep->int_or("threads", 0));
  return cfg;
}

std::size_t parse_shards(const JsonValue& root) {
  // Root-level: an engine knob of the scenario, applied by the sweep so
  // the thread budget can account for it.
  return static_cast<std::size_t>(root.int_or("shards", 0));
}

}  // namespace

RunSpec parse_config(const std::string& json_text) {
  // shared_ptr: the Declare closure outlives this frame and may be
  // copied into worker threads; the parsed tree is immutable from here.
  auto root = std::make_shared<const JsonValue>(JsonValue::parse(json_text));

  RunSpec spec;
  spec.name = root->string_or("name", "");
  spec.sweep = parse_sweep(*root);
  spec.sweep.shards = parse_shards(*root);
  spec.has_checkpoints = root->find("checkpoint_every_ms") != nullptr;
  spec.declare = [root](ScenarioBuilder& b) { apply_config(*root, b); };

  // Trial application: surface shape errors at load time with their
  // config path, not at seed 7 of 16 inside a worker thread.
  ScenarioBuilder trial;
  spec.declare(trial);
  return spec;
}

RunSpec load_config(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw JsonError("cannot open config file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_config(buf.str());
}

}  // namespace rebeca::cli
