#include "src/cli/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace rebeca::cli {

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    std::size_t line = 1;
    std::size_t col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    std::ostringstream os;
    os << "JSON error at line " << line << ", column " << col << ": " << msg;
    throw JsonError(os.str());
  }

  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  char take() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_++];
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  void expect(char c) {
    if (take() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parse_value() {
    // Recursive descent: bound the nesting so hostile documents report
    // an error instead of overflowing the stack.
    if (depth_ >= kMaxDepth) fail("nesting deeper than 256 levels");
    ++depth_;
    JsonValue v = parse_value_inner();
    --depth_;
    return v;
  }

  JsonValue parse_value_inner() {
    skip_ws();
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        JsonValue v;
        v.kind_ = JsonValue::Kind::string;
        v.string_ = parse_string();
        return v;
      }
      case 't':
        if (consume_literal("true")) {
          JsonValue v;
          v.kind_ = JsonValue::Kind::boolean;
          v.bool_ = true;
          return v;
        }
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) {
          JsonValue v;
          v.kind_ = JsonValue::Kind::boolean;
          v.bool_ = false;
          return v;
        }
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return JsonValue();
        fail("invalid literal");
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind_ = JsonValue::Kind::object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object_.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = take();
      if (c == '}') return v;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind_ = JsonValue::Kind::array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array_.push_back(parse_value());
      skip_ws();
      const char c = take();
      if (c == ']') return v;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = take();
      if (c == '"') return out;
      if (c == '\\') {
        const char e = take();
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = take();
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code += static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code += static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code += static_cast<unsigned>(h - 'A' + 10);
              } else {
                --pos_;
                fail("invalid \\u escape");
              }
            }
            // UTF-8 encode the BMP code point (config files have no need
            // for surrogate pairs; reject them honestly).
            if (code >= 0xD800 && code <= 0xDFFF) {
              fail("surrogate pairs are not supported");
            }
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            --pos_;
            fail("invalid escape character");
        }
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        fail("unescaped control character in string");
      }
      out += c;
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!std::isdigit(static_cast<unsigned char>(peek()))) {
      fail("invalid number");
    }
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        fail("digit required after decimal point");
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        fail("digit required in exponent");
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    JsonValue v;
    v.kind_ = JsonValue::Kind::number;
    try {
      v.number_ = std::stod(text_.substr(start, pos_ - start));
    } catch (const std::out_of_range&) {
      pos_ = start;
      fail("number out of range");
    }
    return v;
  }

  static constexpr std::size_t kMaxDepth = 256;

  const std::string& text_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
};

JsonValue JsonValue::parse(const std::string& text) {
  return JsonParser(text).parse_document();
}

// ---------------------------------------------------------------------------
// Accessors
// ---------------------------------------------------------------------------

namespace {

[[noreturn]] void kind_fail(const std::string& where, const char* want,
                            const char* got) {
  std::ostringstream os;
  os << "config field " << (where.empty() ? "<value>" : where) << ": expected "
     << want << ", got " << got;
  throw JsonError(os.str());
}

}  // namespace

const char* JsonValue::kind_name() const {
  switch (kind_) {
    case Kind::null: return "null";
    case Kind::boolean: return "boolean";
    case Kind::number: return "number";
    case Kind::string: return "string";
    case Kind::array: return "array";
    case Kind::object: return "object";
  }
  return "?";
}

bool JsonValue::as_bool(const std::string& where) const {
  if (!is_bool()) kind_fail(where, "boolean", kind_name());
  return bool_;
}

double JsonValue::as_number(const std::string& where) const {
  if (!is_number()) kind_fail(where, "number", kind_name());
  return number_;
}

std::int64_t JsonValue::as_int(const std::string& where) const {
  const double d = as_number(where);
  // Exact-integer range of double is ±2^53; beyond it the fraction check
  // is meaningless and the cast below would be UB. No config integer is
  // anywhere near that large.
  constexpr double kMaxExact = 9007199254740992.0;  // 2^53
  if (d < -kMaxExact || d > kMaxExact) {
    kind_fail(where, "integer", "out-of-range number");
  }
  const auto i = static_cast<std::int64_t>(d);
  if (static_cast<double>(i) != d) kind_fail(where, "integer", "fraction");
  return i;
}

const std::string& JsonValue::as_string(const std::string& where) const {
  if (!is_string()) kind_fail(where, "string", kind_name());
  return string_;
}

std::size_t JsonValue::size() const {
  if (is_array()) return array_.size();
  if (is_object()) return object_.size();
  return 0;
}

const JsonValue& JsonValue::at(std::size_t i) const {
  if (!is_array()) kind_fail("", "array", kind_name());
  if (i >= array_.size()) throw JsonError("array index out of range");
  return array_[i];
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (!is_array()) kind_fail("", "array", kind_name());
  return array_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  // Looking a key up in a non-object is a config-shape error, not an
  // absence: "topology": "chain" (string instead of object) must reject,
  // or every field would silently fall back to its default and the run
  // would execute a wrong but plausible-looking experiment.
  if (!is_object()) kind_fail(key, "object", kind_name());
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::get(const std::string& key,
                                const std::string& where) const {
  if (!is_object()) kind_fail(where, "object", kind_name());
  const JsonValue* v = find(key);
  if (v == nullptr) {
    std::ostringstream os;
    os << "config field " << (where.empty() ? key : where + "." + key)
       << " is required but missing";
    throw JsonError(os.str());
  }
  return *v;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  if (!is_object()) kind_fail("", "object", kind_name());
  return object_;
}

double JsonValue::number_or(const std::string& key, double fallback) const {
  const JsonValue* v = find(key);
  return v == nullptr ? fallback : v->as_number(key);
}

std::int64_t JsonValue::int_or(const std::string& key,
                               std::int64_t fallback) const {
  const JsonValue* v = find(key);
  return v == nullptr ? fallback : v->as_int(key);
}

bool JsonValue::bool_or(const std::string& key, bool fallback) const {
  const JsonValue* v = find(key);
  return v == nullptr ? fallback : v->as_bool(key);
}

std::string JsonValue::string_or(const std::string& key,
                                 std::string fallback) const {
  const JsonValue* v = find(key);
  return v == nullptr ? std::move(fallback) : v->as_string(key);
}

}  // namespace rebeca::cli
