// rebeca-run: execute a JSON scenario config without recompiling.
//
//   rebeca-run examples/configs/fig2.json
//   rebeca-run cfg.json --runs 16 --threads 4 --csv
//
// Prints the single-run ScenarioReport (one seed) or the sweep's
// mean ± CI aggregate table (several seeds); --csv / --csv-runs switch
// to machine-readable output. --expect-complete turns the run into a
// smoke check: exit non-zero if any seed missed or duplicated a
// notification (used by CI).
#include <cstring>
#include <iostream>
#include <string>

#include "src/cli/config.hpp"

namespace {

int usage(const char* argv0, int code) {
  std::ostream& os = code == 0 ? std::cout : std::cerr;
  os << "usage: " << argv0 << " <config.json> [options]\n"
     << "\n"
     << "options:\n"
     << "  --runs N           override sweep run count (seeds base_seed..+N-1)\n"
     << "  --seed S           override sweep base seed\n"
     << "  --threads N        override the worker-thread budget (0 = hardware);\n"
     << "                     split between concurrent runs and shards\n"
     << "  --shards N         override intra-scenario shards (config \"shards\");\n"
     << "                     N >= 1 selects the sharded engine, whose equal-seed\n"
     << "                     reports are byte-identical for any N\n"
     << "  --matcher M        override the notification data plane (config\n"
     << "                     \"matcher\"): \"index\" (counting match index,\n"
     << "                     default) or \"linear\" (reference scans); equal-seed\n"
     << "                     reports are byte-identical under either\n"
     << "  --admin-index A    override the admin plane (config \"admin_index\"):\n"
     << "                     \"index\" (covering index, default) or \"linear\"\n"
     << "                     (reference scans); equal-seed reports are\n"
     << "                     byte-identical under either\n"
     << "  --report           print every per-seed scenario report\n"
     << "  --csv              print the aggregate as CSV (metric per row)\n"
     << "  --csv-runs         print per-seed metric rows as CSV\n"
     << "  --csv-series       print the checkpoint message-count time series as\n"
     << "                     CSV (needs checkpoints, see --checkpoint-ms)\n"
     << "  --checkpoint-ms N  override the checkpoint interval\n"
     << "                     (config \"checkpoint_every_ms\")\n"
     << "  --expect-complete  exit 1 unless every seed delivered everything\n"
     << "                     exactly once (missing == duplicates == 0) and\n"
     << "                     every declared \"expect\" assertion held\n"
     << "  --help             this text\n"
     << "\n"
     << "The config schema is documented in README.md (\"rebeca-run\");\n"
     << "examples/configs/ holds runnable exemplars.\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  std::string config_path;
  bool csv = false;
  bool csv_runs = false;
  bool csv_series = false;
  bool per_seed_reports = false;
  bool expect_complete = false;
  long override_runs = -1;
  long long override_seed = -1;
  long override_threads = -1;
  long override_shards = -1;
  double override_checkpoint_ms = -1;
  std::string override_matcher;
  std::string override_admin_index;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next_number = [&](long long& out) {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        return false;
      }
      out = std::atoll(argv[++i]);
      return true;
    };
    long long n = 0;
    if (arg == "--help" || arg == "-h") return usage(argv[0], 0);
    if (arg == "--csv") {
      csv = true;
    } else if (arg == "--csv-runs") {
      csv_runs = true;
    } else if (arg == "--csv-series") {
      csv_series = true;
    } else if (arg == "--report") {
      per_seed_reports = true;
    } else if (arg == "--expect-complete") {
      expect_complete = true;
    } else if (arg == "--runs") {
      if (!next_number(n) || n <= 0) return usage(argv[0], 2);
      override_runs = static_cast<long>(n);
    } else if (arg == "--seed") {
      if (!next_number(n) || n < 0) return usage(argv[0], 2);
      override_seed = n;
    } else if (arg == "--threads") {
      if (!next_number(n) || n < 0) return usage(argv[0], 2);
      override_threads = static_cast<long>(n);
    } else if (arg == "--shards") {
      if (!next_number(n) || n < 0) return usage(argv[0], 2);
      override_shards = static_cast<long>(n);
    } else if (arg == "--checkpoint-ms") {
      if (!next_number(n) || n <= 0) return usage(argv[0], 2);
      override_checkpoint_ms = static_cast<double>(n);
    } else if (arg == "--matcher") {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        return usage(argv[0], 2);
      }
      override_matcher = argv[++i];
      if (override_matcher != "linear" && override_matcher != "index") {
        std::cerr << "--matcher takes \"linear\" or \"index\"\n";
        return usage(argv[0], 2);
      }
    } else if (arg == "--admin-index") {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        return usage(argv[0], 2);
      }
      override_admin_index = argv[++i];
      if (override_admin_index != "linear" && override_admin_index != "index") {
        std::cerr << "--admin-index takes \"linear\" or \"index\"\n";
        return usage(argv[0], 2);
      }
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option " << arg << "\n";
      return usage(argv[0], 2);
    } else if (config_path.empty()) {
      config_path = arg;
    } else {
      std::cerr << "more than one config file given\n";
      return usage(argv[0], 2);
    }
  }
  if (config_path.empty()) return usage(argv[0], 2);

  rebeca::cli::RunSpec spec;
  try {
    spec = rebeca::cli::load_config(config_path);
  } catch (const std::exception& e) {
    std::cerr << config_path << ": " << e.what() << "\n";
    return 1;
  }
  if (override_runs > 0) {
    spec.sweep.runs = static_cast<std::size_t>(override_runs);
    spec.sweep.seeds.clear();  // --runs regenerates from base_seed
  }
  if (override_seed >= 0) {
    spec.sweep.base_seed = static_cast<std::uint64_t>(override_seed);
    spec.sweep.seeds.clear();
  }
  if (override_threads >= 0) {
    spec.sweep.threads = static_cast<std::size_t>(override_threads);
  }
  if (override_shards >= 0) {
    spec.sweep.shards = static_cast<std::size_t>(override_shards);
  }
  if (override_checkpoint_ms > 0) {
    const auto base = spec.declare;
    const double ms = override_checkpoint_ms;
    spec.declare = [base, ms](rebeca::scenario::ScenarioBuilder& b) {
      base(b);
      b.checkpoint_every(rebeca::sim::millis(ms));
    };
    spec.has_checkpoints = true;
  }
  if (!override_matcher.empty()) {
    const auto base = spec.declare;
    const auto matcher = override_matcher == "linear"
                             ? rebeca::broker::Matcher::linear
                             : rebeca::broker::Matcher::index;
    spec.declare = [base, matcher](rebeca::scenario::ScenarioBuilder& b) {
      base(b);
      b.matcher(matcher);
    };
  }
  if (!override_admin_index.empty()) {
    const auto base = spec.declare;
    const auto admin = override_admin_index == "linear"
                           ? rebeca::routing::AdminIndex::linear
                           : rebeca::routing::AdminIndex::index;
    spec.declare = [base, admin](rebeca::scenario::ScenarioBuilder& b) {
      base(b);
      b.admin_index(admin);
    };
  }
  // Fail before the sweep runs, not after a multi-minute run.
  if (csv_series && !spec.has_checkpoints) {
    std::cerr << config_path
              << ": --csv-series needs checkpoints — set \"checkpoint_every_ms\""
                 " in the config or pass --checkpoint-ms\n";
    return 1;
  }

  // Semantic errors surface here, not at load: broker indices are
  // checked against the built topology, phase references against the
  // schedule, client ids against each other (REBECA_ASSERT throws).
  rebeca::scenario::SweepResult result;
  try {
    rebeca::scenario::ScenarioSweep sweep(spec.declare);
    result = sweep.run(spec.sweep);
  } catch (const std::exception& e) {
    std::cerr << config_path << ": " << e.what() << "\n";
    return 1;
  }

  if (!spec.name.empty() && !csv && !csv_runs && !csv_series) {
    std::cout << spec.name << "\n";
  }
  if (per_seed_reports) {
    for (const auto& report : result.reports) std::cout << report << "\n";
  }
  if (csv_series) {
    std::cout << result.csv_series();
  } else if (csv_runs) {
    std::cout << result.csv_runs();
  } else if (csv) {
    std::cout << result.csv();
  } else if (result.reports.size() == 1 && !per_seed_reports) {
    std::cout << result.reports.front();
  } else if (!per_seed_reports || result.reports.size() > 1) {
    std::cout << result.table();
  }

  if (expect_complete) {
    bool ok = true;
    for (const auto& report : result.reports) {
      if (report.missing != 0 || report.duplicates != 0) {
        std::cerr << "seed " << report.seed << ": missing " << report.missing
                  << " duplicates " << report.duplicates << "\n";
        ok = false;
      }
      for (const auto& violation : report.violations) {
        std::cerr << "seed " << report.seed << ": " << violation << "\n";
        ok = false;
      }
    }
    if (!ok) {
      std::cerr << "--expect-complete FAILED\n";
      return 1;
    }
    // stderr: keeps --csv / --csv-runs stdout machine-readable.
    std::cerr << "complete: every seed delivered exactly once"
                 " and met every declared expectation\n";
  }
  return 0;
}
