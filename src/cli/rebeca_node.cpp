// rebeca-node: one broker (or one bundle of clients) per OS process,
// over the real TCP transport.
//
//   rebeca-node --config cfg.json --broker 0 --rendezvous /tmp/r &
//   rebeca-node --config cfg.json --broker 1 --rendezvous /tmp/r &
//   rebeca-node --config cfg.json --broker 2 --rendezvous /tmp/r &
//   rebeca-node --config cfg.json --clients --rendezvous /tmp/r
//       --expect-complete
//
// The client-bundle process runs the config's phase schedule and exits;
// broker processes serve until --duration-ms elapses or SIGTERM/SIGINT.
#include <atomic>
#include <csignal>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <thread>

#include "src/cli/node_config.hpp"

namespace {

// Written by the signal handler AND the main thread, read by the
// watcher thread: needs to be both async-signal-safe (lock-free
// atomic) and a synchronization point (volatile sig_atomic_t alone is
// a cross-thread data race).
std::atomic<int> g_signalled{0};
static_assert(std::atomic<int>::is_always_lock_free,
              "signal handler needs a lock-free atomic");

void on_signal(int) { g_signalled.store(1); }

void usage() {
  std::cerr <<
      "usage: rebeca-node --config FILE (--broker N | --clients) [options]\n"
      "\n"
      "  --config FILE       node config (rebeca-run schema + \"transport\")\n"
      "  --broker N          run broker index N of the topology\n"
      "  --clients           run every client of the config in this process\n"
      "  --rendezvous DIR    port-file directory (overrides config)\n"
      "  --port-base P       fixed ports: broker i at P+i (overrides config)\n"
      "  --time-scale S      wall seconds per virtual second\n"
      "  --duration-ms D     broker lifetime (default: run until signal)\n"
      "  --expect-complete   clients: exit 1 unless every matching\n"
      "                      publication was delivered\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string config_path;
  std::optional<std::size_t> broker_index;
  bool clients = false;
  std::string rendezvous;
  int port_base = -1;
  double time_scale = 0.0;
  std::int64_t duration_ms = 0;
  bool expect_complete = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "rebeca-node: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--config") {
      config_path = next();
    } else if (arg == "--broker") {
      broker_index = static_cast<std::size_t>(std::stoul(next()));
    } else if (arg == "--clients") {
      clients = true;
    } else if (arg == "--rendezvous") {
      rendezvous = next();
    } else if (arg == "--port-base") {
      port_base = std::stoi(next());
    } else if (arg == "--time-scale") {
      time_scale = std::stod(next());
    } else if (arg == "--duration-ms") {
      duration_ms = std::stoll(next());
    } else if (arg == "--expect-complete") {
      expect_complete = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::cerr << "rebeca-node: unknown option " << arg << "\n";
      usage();
      return 2;
    }
  }

  if (config_path.empty() || (clients == broker_index.has_value())) {
    usage();
    return 2;
  }

  rebeca::transport::NodeSpec spec;
  try {
    spec = rebeca::cli::load_node_config(config_path);
  } catch (const std::exception& e) {
    std::cerr << "rebeca-node: " << e.what() << "\n";
    return 2;
  }
  if (!rendezvous.empty()) spec.transport.rendezvous_dir = rendezvous;
  if (port_base >= 0) {
    spec.transport.port_base = static_cast<std::uint16_t>(port_base);
  }
  if (time_scale > 0.0) spec.transport.time_scale = time_scale;

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  try {
    if (clients) {
      rebeca::transport::ClientBundle bundle(spec);
      bundle.set_expect_complete(expect_complete);
      // A signal must still unwind run() cleanly (stop() is
      // thread-safe), so poll the flag from the side.
      std::thread watcher([&bundle] {
        while (g_signalled == 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(50));
        }
        bundle.stop();
      });
      const int rc = bundle.run();
      g_signalled = 1;  // also releases the watcher on a natural finish
      watcher.join();
      return rc;
    }

    rebeca::transport::BrokerNode node(spec, *broker_index);
    // rebeca-lint: allow(DET-CLOCK, wall-clock process driver; bounds the real runtime of a deployment)
    const auto started = std::chrono::steady_clock::now();
    std::thread watcher([&node, started, duration_ms] {
      for (;;) {
        if (g_signalled != 0) break;
        if (duration_ms > 0 &&
            // rebeca-lint: allow(DET-CLOCK, wall-clock process driver; bounds the real runtime of a deployment)
            std::chrono::steady_clock::now() - started >=
                std::chrono::milliseconds(duration_ms)) {
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
      node.stop();
    });
    std::cerr << "[broker" << *broker_index << "] listening on "
              << spec.transport.host << ":" << node.port() << "\n";
    node.run();
    g_signalled = 1;
    watcher.join();
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "rebeca-node: " << e.what() << "\n";
    return 1;
  }
}
