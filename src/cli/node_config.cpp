#include "src/cli/node_config.hpp"

#include <fstream>
#include <map>
#include <sstream>
#include <utility>
#include <vector>

#include "src/cli/config.hpp"
#include "src/cli/json.hpp"
#include "src/util/rng.hpp"

namespace rebeca::cli {

namespace {

[[noreturn]] void fail(const std::string& where, const std::string& what) {
  throw JsonError(where.empty() ? what : where + ": " + what);
}

// Small duplicates of rebeca_run's scenario-level parsers: those build
// ScenarioBuilder specs; the node runtime needs the raw engine types.

net::Topology parse_topology(const JsonValue& v) {
  const std::string kind = v.string_or("kind", "chain");
  const auto size = static_cast<std::size_t>(v.int_or("size", 2));
  if (kind == "chain") return net::Topology::chain(size);
  if (kind == "star") return net::Topology::star(size);
  if (kind == "balanced_tree") {
    return net::Topology::balanced_tree(
        static_cast<std::size_t>(v.int_or("depth", 2)),
        static_cast<std::size_t>(v.int_or("fanout", 2)));
  }
  if (kind == "random_tree") {
    // Seeded: every process of the deployment derives the same tree
    // from the same config text.
    util::Rng rng(static_cast<std::uint64_t>(v.int_or("seed", 1)));
    return net::Topology::random_tree(size, rng);
  }
  fail("topology.kind", "unknown topology \"" + kind + "\"");
}

routing::Strategy parse_strategy(const std::string& name) {
  if (name == "flooding") return routing::Strategy::flooding;
  if (name == "simple") return routing::Strategy::simple;
  if (name == "identity") return routing::Strategy::identity;
  if (name == "covering") return routing::Strategy::covering;
  if (name == "merging") return routing::Strategy::merging;
  fail("routing", "unknown strategy \"" + name + "\"");
}

broker::Matcher parse_matcher(const std::string& name) {
  if (name == "linear") return broker::Matcher::linear;
  if (name == "index") return broker::Matcher::index;
  fail("matcher", "unknown matcher \"" + name + "\"");
}

routing::AdminIndex parse_admin_index(const std::string& name) {
  if (name == "linear") return routing::AdminIndex::linear;
  if (name == "index") return routing::AdminIndex::index;
  fail("admin_index", "unknown admin index \"" + name + "\"");
}

void parse_broker(const JsonValue& v, broker::BrokerConfig& base) {
  base.use_advertisements =
      v.bool_or("use_advertisements", base.use_advertisements);
  base.session_history = static_cast<std::size_t>(v.int_or(
      "session_history", static_cast<std::int64_t>(base.session_history)));
  base.virtual_capacity = static_cast<std::size_t>(v.int_or(
      "virtual_capacity", static_cast<std::int64_t>(base.virtual_capacity)));
  base.virtual_ttl = sim::millis(
      v.number_or("virtual_ttl_ms", sim::to_millis(base.virtual_ttl)));
  base.relocation_timeout = sim::millis(v.number_or(
      "relocation_timeout_ms", sim::to_millis(base.relocation_timeout)));
}

/// Phase name → [start, end) in virtual time.
struct PhaseWindow {
  sim::TimePoint start = 0;
  sim::TimePoint end = 0;
};

std::map<std::string, PhaseWindow> parse_phases(const JsonValue& root,
                                                sim::Duration& total) {
  std::map<std::string, PhaseWindow> windows;
  total = 0;
  const JsonValue* phases = root.find("phases");
  if (phases == nullptr) return windows;
  std::size_t i = 0;
  for (const JsonValue& p : phases->items()) {
    std::ostringstream w;
    w << "phases[" << i++ << "]";
    const std::string name = p.get("name", w.str()).as_string(w.str() + ".name");
    const sim::Duration d = sim::millis(
        p.get("duration_ms", w.str()).as_number(w.str() + ".duration_ms"));
    windows[name] = PhaseWindow{total, total + d};
    total += d;
  }
  return windows;
}

PhaseWindow window_of(const std::map<std::string, PhaseWindow>& phases,
                      const std::string& name, const std::string& where) {
  auto it = phases.find(name);
  if (it == phases.end()) fail(where, "unknown phase \"" + name + "\"");
  return it->second;
}

transport::NodeClientSpec parse_client(
    const JsonValue& v, const std::string& where, std::size_t index,
    const std::map<std::string, PhaseWindow>& phases) {
  transport::NodeClientSpec c;
  c.name = v.get("name", where).as_string(where + ".name");
  c.id = static_cast<std::uint32_t>(
      v.int_or("id", static_cast<std::int64_t>(index + 1)));
  c.broker = static_cast<std::size_t>(v.int_or("broker", 0));

  if (const JsonValue* subs = v.find("subscribes")) {
    std::size_t i = 0;
    for (const JsonValue& f : subs->items()) {
      std::ostringstream w;
      w << where << ".subscribes[" << i++ << "]";
      c.subscribes.push_back(parse_filter(f, w.str()));
    }
  }

  if (const JsonValue* pubs = v.find("publishes")) {
    std::size_t i = 0;
    for (const JsonValue& p : pubs->items()) {
      std::ostringstream ws;
      ws << where << ".publishes[" << i++ << "]";
      const std::string w = ws.str();
      transport::PublishDrive d;
      if (const JsonValue* every = p.find("every_ms")) {
        d.every = sim::millis(every->as_number(w + ".every_ms"));
      } else if (const JsonValue* poisson = p.find("poisson_ms")) {
        d.poisson = sim::millis(poisson->as_number(w + ".poisson_ms"));
      } else {
        fail(w, "publishes needs every_ms or poisson_ms");
      }
      d.body = parse_notification(p.get("body", w), w + ".body");
      d.count = static_cast<std::uint64_t>(p.int_or("count", 0));
      d.seed = static_cast<std::uint64_t>(p.int_or("seed", 1));
      if (const JsonValue* from = p.find("from_phase")) {
        d.start = window_of(phases, from->as_string(w + ".from_phase"),
                            w + ".from_phase")
                      .start;
      }
      if (const JsonValue* until = p.find("until_phase_end")) {
        d.stop = window_of(phases, until->as_string(w + ".until_phase_end"),
                           w + ".until_phase_end")
                     .end;
      }
      c.publishes.push_back(std::move(d));
    }
  }

  if (const JsonValue* roams = v.find("roams")) {
    std::size_t i = 0;
    for (const JsonValue& r : roams->items()) {
      std::ostringstream ws;
      ws << where << ".roams[" << i++ << "]";
      const std::string w = ws.str();
      transport::RoamDrive d;
      if (const JsonValue* route = r.find("route")) {
        for (const JsonValue& s : route->items()) {
          d.route.push_back(static_cast<std::size_t>(s.as_int(w + ".route")));
        }
      }
      if (d.route.empty()) fail(w, "roams needs a non-empty route");
      d.dwell = sim::millis(r.number_or("dwell_ms", 5000));
      d.gap = sim::millis(r.number_or("gap_ms", 1000));
      d.hops = static_cast<std::uint64_t>(r.int_or("hops", 0));
      if (const JsonValue* from = r.find("from_phase")) {
        d.start = window_of(phases, from->as_string(w + ".from_phase"),
                            w + ".from_phase")
                      .start;
      }
      c.roams.push_back(std::move(d));
    }
  }
  return c;
}

transport::TransportOpts parse_transport(const JsonValue& root) {
  transport::TransportOpts opts;
  const JsonValue* t = root.find("transport");
  if (t == nullptr) return opts;
  opts.host = t->string_or("host", opts.host);
  opts.port_base =
      static_cast<std::uint16_t>(t->int_or("port_base", opts.port_base));
  opts.rendezvous_dir = t->string_or("rendezvous_dir", opts.rendezvous_dir);
  opts.time_scale = t->number_or("time_scale", opts.time_scale);
  return opts;
}

}  // namespace

transport::NodeSpec parse_node_config(const std::string& json_text) {
  const JsonValue root = JsonValue::parse(json_text);
  if (!root.is_object()) {
    throw JsonError("config root must be a JSON object");
  }

  transport::NodeSpec spec;
  spec.name = root.string_or("name", "");
  if (const JsonValue* topo = root.find("topology")) {
    spec.topology = parse_topology(*topo);
  }
  if (const JsonValue* br = root.find("broker")) {
    parse_broker(*br, spec.broker);
  }
  if (const JsonValue* routing = root.find("routing")) {
    spec.broker.strategy = parse_strategy(routing->as_string("routing"));
  }
  if (const JsonValue* matcher = root.find("matcher")) {
    spec.broker.matcher = parse_matcher(matcher->as_string("matcher"));
  }
  if (const JsonValue* admin = root.find("admin_index")) {
    spec.broker.admin_index = parse_admin_index(admin->as_string("admin_index"));
  }

  const auto phases = parse_phases(root, spec.total_duration);
  if (spec.total_duration == 0) spec.total_duration = sim::seconds(5);

  if (const JsonValue* clients = root.find("clients")) {
    std::size_t i = 0;
    for (const JsonValue& c : clients->items()) {
      std::ostringstream w;
      w << "clients[" << i << "]";
      spec.clients.push_back(parse_client(c, w.str(), i, phases));
      ++i;
    }
  }

  spec.transport = parse_transport(root);
  return spec;
}

transport::NodeSpec load_node_config(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw JsonError("cannot open config file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_node_config(buf.str());
}

}  // namespace rebeca::cli
