// JSON scenario configs: the declarative surface of `rebeca-run`.
//
// A config file holds everything a ScenarioBuilder declaration holds —
// topology, location graph, broker/overlay tuning, clients with
// subscriptions/advertisements/workloads/movement, the phase schedule
// with imperative on-enter actions, and the sweep settings — so a new
// workload is a new file, not a recompile. See README ("rebeca-run")
// for the schema; examples/configs/ has runnable exemplars.
//
// parse_config validates the JSON shape eagerly (throwing JsonError with
// the offending config path) and returns a thread-safe Declare closure:
// the sweep may invoke it concurrently, once per seed.
#ifndef REBECA_CLI_CONFIG_HPP
#define REBECA_CLI_CONFIG_HPP

#include <string>

#include "src/cli/json.hpp"
#include "src/scenario/sweep.hpp"

namespace rebeca::cli {

/// A loaded config: scenario declaration + sweep settings.
struct RunSpec {
  std::string name;
  scenario::ScenarioSweep::Declare declare;
  scenario::SweepConfig sweep;
  /// Config declared "checkpoint_every_ms" (--csv-series needs it or a
  /// --checkpoint-ms override — checked before the sweep runs).
  bool has_checkpoints = false;
};

/// Parses a config document. Throws JsonError on malformed JSON or
/// config shape errors.
[[nodiscard]] RunSpec parse_config(const std::string& json_text);

/// Reads and parses a config file. Throws JsonError (also for I/O).
[[nodiscard]] RunSpec load_config(const std::string& path);

// ---- exposed for tests ----
[[nodiscard]] filter::Filter parse_filter(const JsonValue& v,
                                          const std::string& where);
[[nodiscard]] filter::Notification parse_notification(const JsonValue& v,
                                                      const std::string& where);

}  // namespace rebeca::cli

#endif  // REBECA_CLI_CONFIG_HPP
