#include "src/routing/strategy.hpp"

#include <algorithm>

namespace rebeca::routing {

const char* strategy_name(Strategy s) {
  switch (s) {
    case Strategy::flooding: return "flooding";
    case Strategy::simple: return "simple";
    case Strategy::identity: return "identity";
    case Strategy::covering: return "covering";
    case Strategy::merging: return "merging";
  }
  return "?";
}

namespace {

/// identity collapse: group structurally equal filters, union their tags.
ForwardSet collapse_identity(const std::vector<ForwardInput>& inputs) {
  ForwardSet out;
  for (const auto& in : inputs) {
    auto& tags = out[in.f];
    tags.insert(in.tags.begin(), in.tags.end());
  }
  return out;
}

/// covering collapse: keep only maximal filters. A covered
/// subscription's tags are NOT attached to its representative — that
/// would turn every covered subscribe into a tag-update message and
/// forfeit covering's admin savings. The relocation protocol handles
/// tag-less aggregation with its covering fallback (the fetch is
/// "directed towards … covering filters", paper Sec. 4.2).
ForwardSet collapse_covering(const std::vector<ForwardInput>& inputs) {
  ForwardSet distinct = collapse_identity(inputs);

  // Maximal = not strictly covered by another distinct filter. For
  // mutually covering (semantically equivalent but structurally distinct)
  // filters, the structurally smallest one represents the class, which
  // keeps the choice deterministic.
  ForwardSet out;
  for (const auto& [f, tags] : distinct) {
    bool dominated = false;
    for (const auto& [g, gtags] : distinct) {
      if (&g == &f) continue;
      if (!g.covers(f)) continue;
      if (f.covers(g)) {
        // Equivalent pair: the map iterates in operator< order, so the
        // smaller key wins; f is dominated iff g < f.
        if (g < f) dominated = true;
      } else {
        dominated = true;
      }
      if (dominated) break;
    }
    if (!dominated) out.emplace(f, tags);
  }
  return out;
}

/// merging collapse: covering, then greedy pairwise exact merges to a
/// fixpoint. Deterministic: scan pairs in map order, restart on change.
ForwardSet collapse_merging(const std::vector<ForwardInput>& inputs) {
  ForwardSet current = collapse_covering(inputs);
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto it1 = current.begin(); it1 != current.end() && !changed; ++it1) {
      for (auto it2 = std::next(it1); it2 != current.end() && !changed; ++it2) {
        auto merged = it1->first.try_merge(it2->first);
        if (!merged.has_value()) continue;
        std::set<SubKey> tags = it1->second;
        tags.insert(it2->second.begin(), it2->second.end());
        current.erase(it2);
        current.erase(it1);
        auto& slot = current[*merged];
        slot.insert(tags.begin(), tags.end());
        changed = true;
      }
    }
  }
  return current;
}

}  // namespace

ForwardSet compute_forward_set(Strategy strategy,
                               const std::vector<ForwardInput>& inputs) {
  switch (strategy) {
    case Strategy::flooding:
      return {};
    case Strategy::simple:
      // Simple routing forwards every subscription; structurally equal
      // filters still share one wire entry keyed by the filter, but all
      // tags ride along so nothing is aggregated away.
      return collapse_identity(inputs);
    case Strategy::identity:
      return collapse_identity(inputs);
    case Strategy::covering:
      return collapse_covering(inputs);
    case Strategy::merging:
      return collapse_merging(inputs);
  }
  return {};
}

std::size_t DiffProgram::upserts() const {
  std::size_t n = 0;
  for (const auto& s : steps) n += s.kind == DiffStep::Kind::upsert ? 1 : 0;
  return n;
}

std::size_t DiffProgram::prunes() const {
  std::size_t n = 0;
  for (const auto& s : steps) n += s.kind == DiffStep::Kind::prune ? 1 : 0;
  return n;
}

DiffProgram diff_forward_sets(const ForwardSet& sent, const ForwardSet& target) {
  DiffProgram program;
  // Upserts first: a target entry may cover a pruned one, and on a FIFO
  // link the receiver must install the replacement before the covering
  // entry goes away (uncover-before-prune).
  for (const auto& [f, tags] : target) {
    auto it = sent.find(f);
    if (it == sent.end() || it->second != tags) {
      program.steps.push_back({DiffStep::Kind::upsert, f, tags});
    }
  }
  for (const auto& [f, tags] : sent) {
    if (target.find(f) == target.end()) {
      program.steps.push_back({DiffStep::Kind::prune, f, {}});
    }
  }
  return program;
}

ForwardSet covered_by(const filter::Filter& f, const ForwardSet& hop) {
  ForwardSet out;
  for (const auto& [g, tags] : hop) {
    if (g == f) continue;  // the representative itself
    if (f.covers(g)) out.emplace(g, tags);
  }
  return out;
}

bool strategy_aggregates(Strategy s) {
  return s == Strategy::covering || s == Strategy::merging;
}

MoveoutProgram plan_moveout(Strategy strategy, const SubKey& key,
                            const ForwardSet& hop) {
  MoveoutProgram program;
  for (const auto& [f, tags] : hop) {
    if (tags.count(key) == 0) continue;
    if (tags.size() > 1) {
      // Other subscriptions keep the entry alive; dropping the key is
      // invisible to routing.
      program.steps.push_back({MoveoutStep::Kind::untag, f});
      continue;
    }
    // The entry dies with the mover. Under an aggregating strategy it
    // may be the sole representative of covered downstream filters that
    // were never forwarded — uncover before pruning.
    if (strategy_aggregates(strategy)) {
      program.steps.push_back({MoveoutStep::Kind::reexpose, f});
      ++program.ack_barriers;
    }
    program.steps.push_back({MoveoutStep::Kind::prune, f});
  }
  return program;
}

}  // namespace rebeca::routing
