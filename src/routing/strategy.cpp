#include "src/routing/strategy.hpp"

#include <algorithm>
#include <cstdint>

#include "src/routing/cover_index.hpp"

namespace rebeca::routing {

const char* strategy_name(Strategy s) {
  switch (s) {
    case Strategy::flooding: return "flooding";
    case Strategy::simple: return "simple";
    case Strategy::identity: return "identity";
    case Strategy::covering: return "covering";
    case Strategy::merging: return "merging";
  }
  return "?";
}

const char* admin_index_name(AdminIndex a) {
  switch (a) {
    case AdminIndex::linear: return "linear";
    case AdminIndex::index: return "index";
  }
  return "?";
}

namespace {

/// identity collapse: group structurally equal filters, union their tags.
ForwardSet collapse_identity(const std::vector<ForwardInput>& inputs) {
  ForwardSet out;
  for (const auto& in : inputs) {
    auto& tags = out[in.f];
    tags.insert(in.tags.begin(), in.tags.end());
  }
  return out;
}

/// covering collapse: keep only maximal filters. A covered
/// subscription's tags are NOT attached to its representative — that
/// would turn every covered subscribe into a tag-update message and
/// forfeit covering's admin savings. The relocation protocol handles
/// tag-less aggregation with its covering fallback (the fetch is
/// "directed towards … covering filters", paper Sec. 4.2).
ForwardSet collapse_covering(const std::vector<ForwardInput>& inputs) {
  ForwardSet distinct = collapse_identity(inputs);

  // Maximal = not strictly covered by another distinct filter. For
  // mutually covering (semantically equivalent but structurally distinct)
  // filters, the structurally smallest one represents the class, which
  // keeps the choice deterministic.
  ForwardSet out;
  for (const auto& [f, tags] : distinct) {
    bool dominated = false;
    for (const auto& [g, gtags] : distinct) {
      if (&g == &f) continue;
      if (!g.covers(f)) continue;
      if (f.covers(g)) {
        // Equivalent pair: the map iterates in operator< order, so the
        // smaller key wins; f is dominated iff g < f.
        if (g < f) dominated = true;
      } else {
        dominated = true;
      }
      if (dominated) break;
    }
    if (!dominated) out.emplace(f, tags);
  }
  return out;
}

/// The indexed covering collapse: same result as collapse_covering,
/// computed as an incremental maximal set instead of the O(n²) pairwise
/// pass. Write g ≻ f for "g dominates f" (g covers f, and either not
/// mutually — a strict cover — or g < f, the reference pass's
/// deterministic equivalence tie-break). ≻ is a strict partial order
/// (covers is a transitive preorder; mutual-cover classes fall back to
/// the total structural order), so every dominated filter is dominated
/// by a ≻-maximal one — checking each candidate against the *current
/// maximal set* (via one CoverEngine query over it) decides domination
/// exactly, and the maximal set is usually far smaller than the input.
/// A later candidate may dominate earlier survivors; covered_by_of
/// finds and evicts them, so the final set is precisely the ≻-maximal
/// elements — element-for-element what collapse_covering keeps.
ForwardSet collapse_covering_indexed(const std::vector<ForwardInput>& inputs) {
  ForwardSet distinct = collapse_identity(inputs);

  CoverEngine engine;  // holds the current maximal set only
  ForwardSet out;
  std::vector<std::uint32_t> hits;
  for (const auto& [f, tags] : distinct) {
    engine.covers_of(f, hits);
    bool dominated = false;
    for (const std::uint32_t s : hits) {
      const filter::Filter& g = *engine.filter_of(s);
      if (!f.covers(g) || g < f) {
        dominated = true;
        break;
      }
    }
    if (dominated) continue;
    // f joins the maximal set; evict current members it dominates. The
    // copy matters: the engine's pointer targets the out-map key the
    // erase destroys.
    engine.covered_by_of(f, hits);
    for (const std::uint32_t s : hits) {
      const filter::Filter g = *engine.filter_of(s);
      if (!g.covers(f) || f < g) {
        engine.remove(s);
        out.erase(g);
      }
    }
    auto [it, inserted] = out.emplace(f, tags);
    engine.add(&it->first);  // map keys are address-stable
  }
  return out;
}

/// merging fixpoint: greedy pairwise exact merges over an
/// already-covering-collapsed set. Deterministic: scan pairs in map
/// order, restart on change. Shared by the linear and indexed paths so
/// they can only differ in how the covering pass was computed.
ForwardSet merge_fixpoint(ForwardSet current) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto it1 = current.begin(); it1 != current.end() && !changed; ++it1) {
      for (auto it2 = std::next(it1); it2 != current.end() && !changed; ++it2) {
        auto merged = it1->first.try_merge(it2->first);
        if (!merged.has_value()) continue;
        std::set<SubKey> tags = it1->second;
        tags.insert(it2->second.begin(), it2->second.end());
        current.erase(it2);
        current.erase(it1);
        auto& slot = current[*merged];
        slot.insert(tags.begin(), tags.end());
        changed = true;
      }
    }
  }
  return current;
}

/// merging collapse: covering, then merge to fixpoint.
ForwardSet collapse_merging(const std::vector<ForwardInput>& inputs) {
  return merge_fixpoint(collapse_covering(inputs));
}

}  // namespace

ForwardSet compute_forward_set(Strategy strategy,
                               const std::vector<ForwardInput>& inputs) {
  switch (strategy) {
    case Strategy::flooding:
      return {};
    case Strategy::simple:
      // Simple routing forwards every subscription; structurally equal
      // filters still share one wire entry keyed by the filter, but all
      // tags ride along so nothing is aggregated away.
      return collapse_identity(inputs);
    case Strategy::identity:
      return collapse_identity(inputs);
    case Strategy::covering:
      return collapse_covering(inputs);
    case Strategy::merging:
      return collapse_merging(inputs);
  }
  return {};
}

ForwardSet compute_forward_set(Strategy strategy,
                               const std::vector<ForwardInput>& inputs,
                               AdminIndex admin_index) {
  if (admin_index == AdminIndex::linear ||
      !strategy_aggregates(strategy)) {
    // Only the covering pass has an indexed variant; the other
    // strategies are already linear-time collapses.
    return compute_forward_set(strategy, inputs);
  }
  return strategy == Strategy::covering
             ? collapse_covering_indexed(inputs)
             : merge_fixpoint(collapse_covering_indexed(inputs));
}

std::size_t DiffProgram::upserts() const {
  std::size_t n = 0;
  for (const auto& s : steps) n += s.kind == DiffStep::Kind::upsert ? 1 : 0;
  return n;
}

std::size_t DiffProgram::prunes() const {
  std::size_t n = 0;
  for (const auto& s : steps) n += s.kind == DiffStep::Kind::prune ? 1 : 0;
  return n;
}

DiffProgram diff_forward_sets(const ForwardSet& sent, const ForwardSet& target) {
  DiffProgram program;
  // Upserts first: a target entry may cover a pruned one, and on a FIFO
  // link the receiver must install the replacement before the covering
  // entry goes away (uncover-before-prune).
  for (const auto& [f, tags] : target) {
    auto it = sent.find(f);
    if (it == sent.end() || it->second != tags) {
      program.steps.push_back({DiffStep::Kind::upsert, f, tags});
    }
  }
  for (const auto& [f, tags] : sent) {
    if (target.find(f) == target.end()) {
      program.steps.push_back({DiffStep::Kind::prune, f, {}});
    }
  }
  return program;
}

ForwardSet covered_by(const filter::Filter& f, const ForwardSet& hop) {
  ForwardSet out;
  for (const auto& [g, tags] : hop) {
    if (g == f) continue;  // the representative itself
    if (f.covers(g)) out.emplace(g, tags);
  }
  return out;
}

bool strategy_aggregates(Strategy s) {
  return s == Strategy::covering || s == Strategy::merging;
}

MoveoutProgram plan_moveout(Strategy strategy, const SubKey& key,
                            const ForwardSet& hop) {
  std::vector<MoveoutCandidate> candidates;
  for (const auto& [f, tags] : hop) {
    if (tags.count(key) != 0) candidates.push_back({f, tags.size()});
  }
  return plan_moveout(strategy, candidates);
}

MoveoutProgram plan_moveout(Strategy strategy,
                            const std::vector<MoveoutCandidate>& candidates) {
  MoveoutProgram program;
  for (const auto& cand : candidates) {
    if (cand.tag_count > 1) {
      // Other subscriptions keep the entry alive; dropping the key is
      // invisible to routing.
      program.steps.push_back({MoveoutStep::Kind::untag, cand.f});
      continue;
    }
    // The entry dies with the mover. Under an aggregating strategy it
    // may be the sole representative of covered downstream filters that
    // were never forwarded — uncover before pruning.
    if (strategy_aggregates(strategy)) {
      program.steps.push_back({MoveoutStep::Kind::reexpose, cand.f});
      ++program.ack_barriers;
    }
    program.steps.push_back({MoveoutStep::Kind::prune, cand.f});
  }
  return program;
}

}  // namespace rebeca::routing
