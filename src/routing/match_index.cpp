#include "src/routing/match_index.hpp"

#include <algorithm>

#include "src/util/assert.hpp"

namespace rebeca::routing {

namespace {

using filter::Constraint;
using filter::Op;
using filter::Value;

int value_class(const Value& v) {
  if (v.is_numeric()) return 0;
  if (v.is_string()) return 1;
  return 2;  // bool
}

/// Within one interval list every bound is of one ordered class, so the
/// comparison always decides.
bool bound_less(const Value& a, const Value& b) {
  return a.compare(b).value_or(0) < 0;
}

/// True when the value's normalized double equality key is lossless, so
/// key equality coincides with Value::equals.
bool eq_key_exact(const Value& v) {
  if (!v.is_int()) return true;
  const std::int64_t i = v.as_int();
  return i >= -(std::int64_t{1} << 53) && i <= (std::int64_t{1} << 53);
}

}  // namespace

// ---------------------------------------------------------------------------
// Entry lifecycle
// ---------------------------------------------------------------------------

std::uint32_t MatchIndex::add_entry(Entry entry) {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    entries_[slot] = std::move(entry);
  } else {
    slot = static_cast<std::uint32_t>(entries_.size());
    entries_.push_back(std::move(entry));
    hits_.push_back(Hit{});
    term_counts_.push_back(0);
  }
  Entry& e = entries_[slot];
  e.alive = true;
  term_counts_[slot] = static_cast<std::uint32_t>(e.f.size());
  ++live_entries_;
  if (e.f.empty()) {
    empty_filter_slots_.push_back(slot);
  } else {
    for (const auto& term : e.f.terms()) index_term(term, slot);
  }
  return slot;
}

void MatchIndex::remove_entry(std::uint32_t slot) {
  Entry& e = entries_[slot];
  REBECA_ASSERT(e.alive, "match index: double remove of slot " << slot);
  if (e.f.empty()) {
    std::erase(empty_filter_slots_, slot);
  } else {
    for (const auto& term : e.f.terms()) unindex_term(term, slot);
  }
  e.alive = false;
  e.f = filter::Filter{};
  --live_entries_;
  free_slots_.push_back(slot);
}

void MatchIndex::index_term(const filter::Filter::Term& term,
                            std::uint32_t slot) {
  const std::uint32_t attr = term.attr.value();
  if (attr >= buckets_.size()) buckets_.resize(attr + 1);
  Bucket& b = buckets_[attr];
  const Constraint& c = term.c;

  switch (c.op()) {
    case Op::eq: {
      EqKey key;
      key.cls = value_class(c.operand());
      switch (key.cls) {
        case 0: key.num = *c.operand().numeric(); break;
        case 1: key.str = c.operand().as_string(); break;
        default: key.b = c.operand().as_bool(); break;
      }
      EqBucket& bucket = b.eq[key];
      if (eq_key_exact(c.operand())) {
        bucket.exact_slots.push_back(slot);
        bucket.exact_operands.push_back(c.operand());
      } else {
        bucket.inexact.emplace_back(c.operand(), slot);
      }
      return;
    }
    case Op::lt:
    case Op::le:
    case Op::gt:
    case Op::ge:
    case Op::range: {
      const int cls = value_class(c.operand());
      if (cls == 2) break;  // ordered ops on bools: catch-all below
      Interval iv;
      iv.slot = slot;
      switch (c.op()) {
        case Op::lt:
        case Op::le:
          iv.has_hi = true;
          iv.hi = c.operand();
          iv.hi_strict = c.op() == Op::lt;
          break;
        case Op::gt:
        case Op::ge:
          iv.has_lo = true;
          iv.lo = c.operand();
          iv.lo_strict = c.op() == Op::gt;
          break;
        default:  // range (ctor asserts lo <= hi, so one ordered class)
          iv.has_lo = true;
          iv.lo = c.operand();
          iv.has_hi = true;
          iv.hi = c.hi();
          break;
      }
      if (iv.has_lo) {
        auto& list = cls == 0 ? b.num_lo : b.str_lo;
        const auto pos = std::lower_bound(
            list.begin(), list.end(), iv,
            [](const Interval& a, const Interval& x) {
              return bound_less(a.lo, x.lo);
            });
        list.insert(pos, std::move(iv));
      } else {
        // Upper-only: descending by hi, non-strict before strict on
        // ties, so the probe's prefix scan can stop at the first bound
        // that excludes the value.
        auto& list = cls == 0 ? b.num_hi : b.str_hi;
        const auto pos = std::lower_bound(
            list.begin(), list.end(), iv,
            [](const Interval& a, const Interval& x) {
              if (bound_less(x.hi, a.hi)) return true;
              if (bound_less(a.hi, x.hi)) return false;
              return !a.hi_strict && x.hi_strict;
            });
        list.insert(pos, std::move(iv));
      }
      return;
    }
    default:
      break;
  }
  // any / ne / prefix / in_set (and ordered-on-bool): exact evaluation.
  b.general.push_back(GeneralItem{c, slot});
}

void MatchIndex::unindex_term(const filter::Filter::Term& term,
                              std::uint32_t slot) {
  REBECA_ASSERT(term.attr.value() < buckets_.size(),
                "match index: unindex of unknown attr");
  Bucket& b = buckets_[term.attr.value()];
  const Constraint& c = term.c;

  const auto erase_slot = [slot](auto& list) {
    auto it = std::find_if(list.begin(), list.end(),
                           [slot](const auto& item) { return item.slot == slot; });
    REBECA_ASSERT(it != list.end(), "match index: missing record for slot");
    list.erase(it);
  };

  switch (c.op()) {
    case Op::eq: {
      EqKey key;
      key.cls = value_class(c.operand());
      switch (key.cls) {
        case 0: key.num = *c.operand().numeric(); break;
        case 1: key.str = c.operand().as_string(); break;
        default: key.b = c.operand().as_bool(); break;
      }
      auto it = b.eq.find(key);
      REBECA_ASSERT(it != b.eq.end(), "match index: missing eq bucket");
      EqBucket& bucket = it->second;
      if (eq_key_exact(c.operand())) {
        auto sit = std::find(bucket.exact_slots.begin(),
                             bucket.exact_slots.end(), slot);
        REBECA_ASSERT(sit != bucket.exact_slots.end(),
                      "match index: missing eq record for slot");
        const auto i = sit - bucket.exact_slots.begin();
        bucket.exact_slots.erase(sit);
        bucket.exact_operands.erase(bucket.exact_operands.begin() + i);
      } else {
        erase_slot(bucket.inexact);
      }
      if (bucket.exact_slots.empty() && bucket.inexact.empty()) {
        b.eq.erase(it);
      }
      return;
    }
    case Op::lt:
    case Op::le: {
      const int cls = value_class(c.operand());
      if (cls == 2) break;
      erase_slot(cls == 0 ? b.num_hi : b.str_hi);
      return;
    }
    case Op::gt:
    case Op::ge:
    case Op::range: {
      const int cls = value_class(c.operand());
      if (cls == 2) break;
      erase_slot(cls == 0 ? b.num_lo : b.str_lo);
      return;
    }
    default:
      break;
  }
  erase_slot(b.general);
}

// ---------------------------------------------------------------------------
// Plane maintenance
// ---------------------------------------------------------------------------

void MatchIndex::add_remote(LinkId link, const filter::Filter& f) {
  auto& slots = remote_slots_[link];
  if (slots.count(f) != 0) return;  // tag-only upsert: filter unchanged
  Entry e;
  e.source = Source::remote;
  e.link = link;
  e.f = f;
  slots.emplace(f, add_entry(std::move(e)));
}

void MatchIndex::remove_remote(LinkId link, const filter::Filter& f) {
  auto lit = remote_slots_.find(link);
  if (lit == remote_slots_.end()) return;
  auto it = lit->second.find(f);
  if (it == lit->second.end()) return;
  remove_entry(it->second);
  lit->second.erase(it);
  if (lit->second.empty()) remote_slots_.erase(lit);
}

void MatchIndex::upsert_keyed(std::map<SubKey, std::uint32_t>& slots,
                              Entry entry) {
  const SubKey key = entry.key;
  auto it = slots.find(key);
  if (it != slots.end()) remove_entry(it->second);
  slots[key] = add_entry(std::move(entry));
}

void MatchIndex::remove_keyed(std::map<SubKey, std::uint32_t>& slots,
                              const SubKey& key) {
  auto it = slots.find(key);
  if (it == slots.end()) return;
  remove_entry(it->second);
  slots.erase(it);
}

void MatchIndex::upsert_local(const SubKey& key, const filter::Filter& f) {
  Entry e;
  e.source = Source::local;
  e.key = key;
  e.f = f;
  upsert_keyed(local_slots_, std::move(e));
}

void MatchIndex::remove_local(const SubKey& key) {
  remove_keyed(local_slots_, key);
}

void MatchIndex::upsert_virtual(const SubKey& key, const filter::Filter& f) {
  Entry e;
  e.source = Source::virt;
  e.key = key;
  e.f = f;
  upsert_keyed(virtual_slots_, std::move(e));
}

void MatchIndex::remove_virtual(const SubKey& key) {
  remove_keyed(virtual_slots_, key);
}

void MatchIndex::upsert_transit(const SubKey& key, LinkId toward,
                                const filter::Filter& f) {
  Entry e;
  e.source = Source::transit;
  e.link = toward;
  e.key = key;
  e.f = f;
  upsert_keyed(transit_slots_, std::move(e));
}

void MatchIndex::remove_transit(const SubKey& key) {
  remove_keyed(transit_slots_, key);
}

// ---------------------------------------------------------------------------
// Query
// ---------------------------------------------------------------------------

void MatchIndex::bump(std::uint32_t slot) const {
  Hit& h = hits_[slot];
  if (h.stamp != query_stamp_) {
    h.stamp = query_stamp_;
    h.count = 0;
    touched_.push_back(slot);
  }
  ++h.count;
}

bool MatchIndex::interval_admits(const Interval& iv, const Value& v) {
  if (iv.has_hi) {
    const auto c = v.compare(iv.hi);
    if (!c.has_value() || *c > 0 || (*c == 0 && iv.hi_strict)) return false;
  }
  return true;
}

void MatchIndex::collect(const filter::Notification& n, MatchHits& out) const {
  out.clear();
  ++query_stamp_;
  touched_.clear();

  for (const auto& attr : n.attrs()) {
    const std::uint32_t id = attr.id.value();
    if (id >= buckets_.size()) continue;
    const Bucket& b = buckets_[id];
    const Value& v = attr.value;
    const int cls = value_class(v);

    // Equality buckets: one normalized probe (borrowing the string, no
    // copy), exact re-check per item only where the key is lossy.
    if (!b.eq.empty()) {
      EqProbe key;
      key.cls = cls;
      switch (cls) {
        case 0: key.num = *v.numeric(); break;
        case 1: key.str = v.as_string(); break;
        default: key.b = v.as_bool(); break;
      }
      auto it = b.eq.find(key);
      if (it != b.eq.end()) {
        const EqBucket& bucket = it->second;
        if (eq_key_exact(v)) {
          // Key equality is exact on both sides: sweep the dense list.
          for (const std::uint32_t slot : bucket.exact_slots) bump(slot);
        } else {
          for (std::size_t i = 0; i < bucket.exact_slots.size(); ++i) {
            if (v.equals(bucket.exact_operands[i])) {
              bump(bucket.exact_slots[i]);
            }
          }
        }
        for (const EqItem& item : bucket.inexact) {
          if (v.equals(item.operand)) bump(item.slot);
        }
      }
    }

    // Ordered bound lists: each is a prefix scan that stops at the first
    // bound excluding v.
    if (cls == 0 || cls == 1) {
      const auto& lo_list = cls == 0 ? b.num_lo : b.str_lo;
      for (const Interval& iv : lo_list) {
        const auto c = v.compare(iv.lo);
        if (!c.has_value()) break;  // cross-domain bound: cannot happen
        if (*c < 0) break;          // ascending: every later lo is larger
        if (*c == 0 && iv.lo_strict) continue;
        if (interval_admits(iv, v)) bump(iv.slot);
      }
      const auto& hi_list = cls == 0 ? b.num_hi : b.str_hi;
      for (const Interval& iv : hi_list) {
        const auto c = v.compare(iv.hi);
        if (!c.has_value()) break;
        if (*c > 0 || (*c == 0 && iv.hi_strict)) break;  // descending his
        bump(iv.slot);
      }
    }

    // Catch-all: exact constraint evaluation.
    for (const GeneralItem& item : b.general) {
      if (item.c.matches(v)) bump(item.slot);
    }
  }

  const auto emit = [&](std::uint32_t slot) {
    const Entry& e = entries_[slot];
    switch (e.source) {
      case Source::remote:
      case Source::transit:
        out.links.push_back(e.link);
        break;
      case Source::local:
        out.locals.push_back(e.key);
        break;
      case Source::virt:
        out.virtuals.push_back(e.key);
        break;
    }
  };

  for (std::uint32_t slot : touched_) {
    if (hits_[slot].count == term_counts_[slot]) emit(slot);
  }
  for (std::uint32_t slot : empty_filter_slots_) emit(slot);

  // Canonical order per plane; the broker applies links in attach order
  // via membership tests, locals/virtuals in ascending key order —
  // exactly the iteration order of the linear scans.
  std::sort(out.links.begin(), out.links.end());
  out.links.erase(std::unique(out.links.begin(), out.links.end()),
                  out.links.end());
  std::sort(out.locals.begin(), out.locals.end());
  std::sort(out.virtuals.begin(), out.virtuals.end());
}

}  // namespace rebeca::routing
