// Routing strategies: what a broker forwards to a neighbor (paper
// Sec. 2.2).
//
// Rather than maintaining incremental covering/merging bookkeeping — the
// classic source of subtle re-expose bugs on unsubscription — a broker
// recomputes, per neighbor link, the *target* forward set from its
// current inputs and diffs it against what it previously sent. The
// strategy only decides how inputs collapse into the target set:
//
//   flooding  — nothing is forwarded; notifications flood instead.
//   simple    — every subscription forwarded individually.
//   identity  — structurally identical filters forwarded once.
//   covering  — only the maximal filters (no other forwarded filter
//               accepts a superset) are forwarded.
//   merging   — covering, then pairwise exact merges until fixpoint.
//
// Tags (the SubKeys a forwarded filter serves) survive aggregation: a
// covered subscription's key is attached to every representative that
// covers it. The relocation protocol depends on this — junction
// detection must find a roaming client's key in aggregated entries
// (paper Sec. 4.2: "Covering and merging can be exploited, too").
#ifndef REBECA_ROUTING_STRATEGY_HPP
#define REBECA_ROUTING_STRATEGY_HPP

#include <map>
#include <set>
#include <vector>

#include "src/filter/filter.hpp"
#include "src/util/domain_ids.hpp"

namespace rebeca::routing {

enum class Strategy { flooding, simple, identity, covering, merging };

const char* strategy_name(Strategy s);

/// How the admin plane evaluates covering relations: `linear` keeps the
/// reference scans (the O(n²) collapse_covering pass and the
/// covered_by/junction table walks); `index` routes them through the
/// attribute-partitioned CoverIndex. Equal-seed runs are byte-identical
/// under either — the index is an exact replica of the linear decision
/// procedure, and equivalence tests enforce it.
enum class AdminIndex { linear, index };

const char* admin_index_name(AdminIndex a);

/// One subscription as seen by the forwarding computation.
struct ForwardInput {
  filter::Filter f;
  std::set<SubKey> tags;
};

/// Filter → serving subscription keys. Map keys are structural filter
/// identity; deterministic iteration keeps runs reproducible.
using ForwardSet = std::map<filter::Filter, std::set<SubKey>>;

/// Collapses the inputs into the set of (filter, tags) pairs that should
/// be forwarded to one neighbor.
[[nodiscard]] ForwardSet compute_forward_set(Strategy strategy,
                                             const std::vector<ForwardInput>& inputs);

/// As above, with the covering pass evaluated per `admin_index`:
/// `linear` delegates to the two-argument reference; `index` replaces
/// the O(n²) pairwise covering scan with CoverEngine queries over the
/// distinct filters. Both produce the identical ForwardSet.
[[nodiscard]] ForwardSet compute_forward_set(Strategy strategy,
                                             const std::vector<ForwardInput>& inputs,
                                             AdminIndex admin_index);

/// One step of a forward-set reconciliation program.
struct DiffStep {
  enum class Kind { upsert, prune };
  Kind kind = Kind::upsert;
  filter::Filter f;
  std::set<SubKey> tags;  // upsert only
};

/// Ordered reconciliation program between the previously sent set and
/// the target. Upserts ((re-)subscriptions — new filter or changed tags;
/// receivers treat subscribe as an upsert) strictly precede prunes
/// (unsubscriptions): on a FIFO link the receiver installs every
/// re-exposed filter before any covering entry disappears, so no window
/// exists in which a covered subscription loses its representative
/// (uncover-before-prune).
struct DiffProgram {
  std::vector<DiffStep> steps;

  [[nodiscard]] bool empty() const { return steps.empty(); }
  [[nodiscard]] std::size_t upserts() const;
  [[nodiscard]] std::size_t prunes() const;
};

[[nodiscard]] DiffProgram diff_forward_sets(const ForwardSet& sent,
                                            const ForwardSet& target);

/// Entries of one hop's routing table strictly covered by `f`: f covers
/// the entry and the entry is not structurally equal to f. These are the
/// subscriptions that lose their wire representative if an entry for `f`
/// is pruned from that hop — the set the relocation protocol must
/// re-expose along the old path before pruning.
[[nodiscard]] ForwardSet covered_by(const filter::Filter& f,
                                    const ForwardSet& hop);

/// True when the strategy aggregates filters away (covering/merging):
/// pruning a forwarded entry can then orphan covered subscriptions that
/// were never put on the wire, so moveouts need the two-phase
/// re-expose/ack protocol. Simple/identity forward every distinct filter
/// and may prune directly; flooding forwards nothing.
[[nodiscard]] bool strategy_aggregates(Strategy s);

/// One step of a relocation moveout program for a single hop (one
/// old-path link's routing table).
struct MoveoutStep {
  enum class Kind {
    /// Remove the departing key from this entry's tag set; the entry
    /// keeps serving its other subscriptions — no routing change.
    untag,
    /// Ask the downstream broker to re-expose every subscription this
    /// entry covers, and wait for its ack before the matching prune.
    reexpose,
    /// Remove the entry (after the ack barrier when preceded by a
    /// reexpose step).
    prune,
  };
  Kind kind = Kind::untag;
  filter::Filter f;
};

/// Ordered moveout program: how a relocated subscription's key leaves
/// one hop's routing table. Historically this was a bare unsub list
/// (erase the key everywhere, drop empty entries); under aggregating
/// strategies that pruned covering representatives before downstream
/// covered filters were re-exposed, silently dropping bystanders'
/// notifications. The program makes the required order explicit:
/// {untag*} then, per dying entry, {reexpose, ack-barrier, prune} — or a
/// plain {prune} when the strategy cannot have hidden anything.
struct MoveoutProgram {
  std::vector<MoveoutStep> steps;
  /// Number of reexpose steps: the acks the executing broker must await
  /// before it may run the prune steps.
  std::size_t ack_barriers = 0;

  [[nodiscard]] bool empty() const { return steps.empty(); }
};

/// One moveout candidate: a routing-table entry tagged with the
/// departing key, plus how many keys it serves in total (the
/// untag-vs-prune decision). The CoverIndex produces these directly
/// from its inverted tag index, without walking the hop's table.
struct MoveoutCandidate {
  filter::Filter f;
  std::size_t tag_count = 0;
};

/// Plans the moveout of `key` from one hop's table under `strategy`.
[[nodiscard]] MoveoutProgram plan_moveout(Strategy strategy, const SubKey& key,
                                          const ForwardSet& hop);

/// Same program from pre-extracted candidates (the entries tagged with
/// the departing key, in Filter order, with their tag counts): the
/// keyed overload above is exactly this after a table walk.
[[nodiscard]] MoveoutProgram plan_moveout(
    Strategy strategy, const std::vector<MoveoutCandidate>& candidates);

}  // namespace rebeca::routing

#endif  // REBECA_ROUTING_STRATEGY_HPP
