// Routing strategies: what a broker forwards to a neighbor (paper
// Sec. 2.2).
//
// Rather than maintaining incremental covering/merging bookkeeping — the
// classic source of subtle re-expose bugs on unsubscription — a broker
// recomputes, per neighbor link, the *target* forward set from its
// current inputs and diffs it against what it previously sent. The
// strategy only decides how inputs collapse into the target set:
//
//   flooding  — nothing is forwarded; notifications flood instead.
//   simple    — every subscription forwarded individually.
//   identity  — structurally identical filters forwarded once.
//   covering  — only the maximal filters (no other forwarded filter
//               accepts a superset) are forwarded.
//   merging   — covering, then pairwise exact merges until fixpoint.
//
// Tags (the SubKeys a forwarded filter serves) survive aggregation: a
// covered subscription's key is attached to every representative that
// covers it. The relocation protocol depends on this — junction
// detection must find a roaming client's key in aggregated entries
// (paper Sec. 4.2: "Covering and merging can be exploited, too").
#ifndef REBECA_ROUTING_STRATEGY_HPP
#define REBECA_ROUTING_STRATEGY_HPP

#include <map>
#include <set>
#include <vector>

#include "src/filter/filter.hpp"
#include "src/util/domain_ids.hpp"

namespace rebeca::routing {

enum class Strategy { flooding, simple, identity, covering, merging };

const char* strategy_name(Strategy s);

/// One subscription as seen by the forwarding computation.
struct ForwardInput {
  filter::Filter f;
  std::set<SubKey> tags;
};

/// Filter → serving subscription keys. Map keys are structural filter
/// identity; deterministic iteration keeps runs reproducible.
using ForwardSet = std::map<filter::Filter, std::set<SubKey>>;

/// Collapses the inputs into the set of (filter, tags) pairs that should
/// be forwarded to one neighbor.
[[nodiscard]] ForwardSet compute_forward_set(Strategy strategy,
                                             const std::vector<ForwardInput>& inputs);

/// Difference between the previously sent set and the target: entries to
/// unsubscribe, and entries to (re-)subscribe (new filter or changed
/// tags — receivers treat subscribe as an upsert).
struct ForwardDiff {
  std::vector<filter::Filter> unsubscribe;
  ForwardSet subscribe;
};

[[nodiscard]] ForwardDiff diff_forward_sets(const ForwardSet& sent,
                                            const ForwardSet& target);

}  // namespace rebeca::routing

#endif  // REBECA_ROUTING_STRATEGY_HPP
