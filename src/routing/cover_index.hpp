// Incremental counting covering/overlap index: the broker's admin plane.
//
// PR 5's MatchIndex made the *notification* path sublinear, but the
// admin-side relations stayed linear: collapse_covering's O(n²) pairwise
// pass, routing::covered_by's scan, and the relocation fallback in
// dispatch_fetch all evaluate Filter::covers/overlaps against every
// table entry. Those run on exactly the events the mobility protocol
// multiplies (subscription churn, moveto/moveout bursts, fetch
// relocation), and they dominate once routing tables grow.
//
// The CoverEngine answers three relations over a registered filter set,
// partitioned per interned attribute (same AttrTable as MatchIndex):
//
//   covers_of(F)     — registered G with G.covers(F)
//   covered_by_of(F) — registered G with F.covers(G)
//   overlapping(F)   — registered G with F.overlaps(G)
//
// using the MatchIndex idioms: per-attribute equality buckets keyed by
// normalized operand, sorted lo/hi bound lists probed as prefix scans, a
// catch-all exact-evaluation lane for the rest, and epoch-stamped
// per-slot counters so no query clears O(entries) state. Every lane
// narrows candidates by bound order and then confirms with the *exact*
// oracle (Constraint::covers / matches / overlaps), so results are
// definitionally identical to the linear scans — the bound lists only
// bound where the scan may stop early.
//
// The CoverIndex wraps the engine with the broker's four planes (remote
// routing tables, local subscriptions, virtual counterparts, LD transit
// state), maintained incrementally alongside MatchIndex at every table
// mutation, plus an inverted tag index (SubKey → serving links) so
// junction detection needs no table scan at all.
#ifndef REBECA_ROUTING_COVER_INDEX_HPP
#define REBECA_ROUTING_COVER_INDEX_HPP

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/filter/filter.hpp"
#include "src/routing/strategy.hpp"
#include "src/util/domain_ids.hpp"

namespace rebeca::routing {

/// Covering/overlap queries over a set of registered filters. Filters
/// are registered by stable pointer — the caller owns the storage and
/// guarantees the pointee neither moves nor mutates while registered
/// (map keys and node-based record fields qualify).
class CoverEngine {
 public:
  /// Registers a filter; returns its slot. Requires a finalized engine
  /// (incremental adds keep the bound lists sorted).
  std::uint32_t add(const filter::Filter* f);
  /// Bulk registration: appends without sorting; call finalize() before
  /// querying. Cheaper than add() when building from scratch.
  std::uint32_t add_bulk(const filter::Filter* f);
  void finalize();
  void remove(std::uint32_t slot);

  [[nodiscard]] const filter::Filter* filter_of(std::uint32_t slot) const {
    return entries_[slot].f;
  }
  [[nodiscard]] std::size_t live() const { return live_entries_; }

  /// Slots whose filter covers `f`, ascending. (The empty filter is
  /// covered only by the empty filter.)
  void covers_of(const filter::Filter& f, std::vector<std::uint32_t>& out) const;
  /// Slots whose filter `f` covers, ascending. (An empty `f` covers
  /// every registered filter.)
  void covered_by_of(const filter::Filter& f,
                     std::vector<std::uint32_t>& out) const;
  /// Slots whose filter overlaps `f`, ascending: computed by proving the
  /// complement (a shared attribute whose constraints are disjoint).
  void overlapping(const filter::Filter& f,
                   std::vector<std::uint32_t>& out) const;

 private:
  struct Entry {
    const filter::Filter* f = nullptr;
    bool alive = false;
  };

  // Normalized equality-bucket key: identical to MatchIndex's. Numerics
  // normalize to double so cross-type equality (1 == 1.0) shares a
  // bucket; items keep the exact operand and re-verify on probe where
  // the double key is lossy (huge int64s).
  struct EqKey {
    int cls = 0;  // 0 numeric, 1 string, 2 bool
    double num = 0;
    std::string str;
    bool b = false;
  };

  struct EqKeyLess {
    using is_transparent = void;

    template <typename A, typename B>
    bool operator()(const A& a, const B& b) const {
      if (a.cls != b.cls) return a.cls < b.cls;
      switch (a.cls) {
        case 0: return a.num < b.num;
        case 1: return a.str < b.str;
        default: return a.b < b.b;
      }
    }
  };

  struct EqItem {
    filter::Value operand;
    std::uint32_t slot;
  };

  struct EqBucket {
    std::vector<std::uint32_t> exact_slots;
    std::vector<filter::Value> exact_operands;  // parallel; lossy-probe path
    std::vector<EqItem> inexact;
  };

  /// One registered ordered constraint (lt/le/gt/ge/range over a
  /// non-bool operand). The constraint is borrowed from the registered
  /// filter's term storage; lists are sorted by the bound that lets a
  /// probe scan exactly the admissible prefix.
  struct BoundItem {
    const filter::Constraint* c = nullptr;
    std::uint32_t slot = 0;
  };

  struct GeneralItem {
    const filter::Constraint* c = nullptr;
    std::uint32_t slot = 0;
  };

  struct Bucket {
    std::vector<std::uint32_t> any_slots;  // Op::any terms
    std::map<EqKey, EqBucket, EqKeyLess> eq;
    std::vector<BoundItem> num_lo;  // gt/ge/range, ascending by lo
    std::vector<BoundItem> num_hi;  // lt/le, descending by hi
    std::vector<BoundItem> str_lo;
    std::vector<BoundItem> str_hi;
    std::vector<GeneralItem> general;  // ne/prefix/in_set/ordered-on-bool
  };

  std::uint32_t add_entry(const filter::Filter* f, bool sorted);
  void index_term(const filter::Filter::Term& term, std::uint32_t slot,
                  bool sorted);
  void unindex_term(const filter::Filter::Term& term, std::uint32_t slot);
  void begin_query() const;
  void bump(std::uint32_t slot) const;
  void mark(std::uint32_t slot) const;
  void emit_full(std::vector<std::uint32_t>& out) const;
  void emit_unmarked(std::vector<std::uint32_t>& out) const;

  std::vector<Entry> entries_;
  std::vector<std::uint32_t> term_counts_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t live_entries_ = 0;
  std::vector<std::uint32_t> empty_filter_slots_;

  std::vector<Bucket> buckets_;  // indexed by AttrId value
  bool finalized_ = true;

  // Query scratch: epoch-stamped per-slot counters (MatchIndex idiom).
  struct Hit {
    std::uint64_t stamp = 0;
    std::uint32_t count = 0;
  };
  mutable std::vector<Hit> hits_;
  mutable std::vector<std::uint32_t> touched_;
  mutable std::uint64_t query_stamp_ = 0;
  mutable std::vector<std::uint32_t> probe_scratch_;
};

/// The broker-facing covering index: CoverEngine plus the four broker
/// planes and the consumer-shaped queries the admin plane asks.
/// Maintained unconditionally next to MatchIndex; the admin_index knob
/// gates only whether queries go through it or the linear reference.
class CoverIndex {
 public:
  // --- remote plane: routing-table entries, keyed (link, filter) ---
  /// Insert or tag-replace one remote entry (the DiffProgram upsert).
  void upsert_remote(LinkId link, const filter::Filter& f,
                     const std::set<SubKey>& tags);
  /// Drop one key from a remote entry's tag set (moveout untag).
  void untag_remote(LinkId link, const filter::Filter& f, const SubKey& key);
  void remove_remote(LinkId link, const filter::Filter& f);

  // --- exactly-keyed planes (upsert replaces the key's filter) ---
  void upsert_local(const SubKey& key, const filter::Filter& f, bool ld);
  void remove_local(const SubKey& key);
  void upsert_virtual(const SubKey& key, const filter::Filter& f, bool ld);
  void remove_virtual(const SubKey& key);
  void upsert_transit(const SubKey& key, LinkId toward,
                      const filter::Filter& f);
  void remove_transit(const SubKey& key);

  [[nodiscard]] std::size_t entry_count() const { return engine_.live(); }

  // --- consumer queries (each reproduces one linear admin scan) ---

  /// The forward-set inputs (excluding `exclude` and LD state) strictly
  /// covered by `f`, identity-collapsed: byte-identical to
  /// routing::covered_by(f, identity-collapse(collect_inputs)).
  [[nodiscard]] ForwardSet covered_inputs(const filter::Filter& f,
                                          LinkId exclude) const;

  /// Links (≠ exclude) whose routing table holds an entry covering `f`,
  /// ascending — the dispatch_fetch/on_fetch covering fallback.
  void covering_links(const filter::Filter& f, LinkId exclude,
                      std::vector<LinkId>& out) const;

  /// Links (≠ exclude) whose routing table holds an entry tagged with
  /// `key`, ascending — the dispatch_fetch/on_fetch tagged junction
  /// probe. Served by the inverted tag index, no filter query at all.
  void links_serving(const SubKey& key, LinkId exclude,
                     std::vector<LinkId>& out) const;

  /// The entries of `link`'s table tagged with `key`, in Filter order
  /// with their tag counts — exactly what plan_moveout consumes.
  [[nodiscard]] std::vector<MoveoutCandidate> tagged_filters(
      LinkId link, const SubKey& key) const;

  /// Registered filters overlapping `f` across all planes, deduped by
  /// structural identity. No broker consumer yet — the subgrouping
  /// strategy (ROADMAP) clusters by overlap; tests exercise it now.
  [[nodiscard]] std::vector<filter::Filter> overlapping_filters(
      const filter::Filter& f) const;

 private:
  enum class Source : std::uint8_t { remote, transit, local, virt };

  struct RemoteRec {
    std::uint32_t slot = 0;
    std::set<SubKey> tags;
  };

  struct KeyedRec {
    std::uint32_t slot = 0;
    filter::Filter f;
    bool ld = false;
    LinkId toward;
  };

  /// Slot → plane handle. `tags` borrows the RemoteRec's set (node-based
  /// map storage, address-stable); pointer-valued only, never ordered on.
  struct SlotInfo {
    Source source = Source::remote;
    LinkId link;
    SubKey key;
    bool ld = false;
    const std::set<SubKey>* tags = nullptr;
  };

  void set_info(std::uint32_t slot, SlotInfo info);
  void upsert_keyed(std::map<SubKey, KeyedRec>& plane, Source source,
                    const SubKey& key, const filter::Filter& f, bool ld,
                    LinkId toward);
  void remove_keyed(std::map<SubKey, KeyedRec>& plane, const SubKey& key);
  void tag_link(const SubKey& key, LinkId link);
  void untag_link(const SubKey& key, LinkId link);

  CoverEngine engine_;
  std::map<LinkId, std::map<filter::Filter, RemoteRec>> remote_;
  std::map<SubKey, KeyedRec> local_;
  std::map<SubKey, KeyedRec> virtual_;
  std::map<SubKey, KeyedRec> transit_;
  std::vector<SlotInfo> info_;
  /// key → (link → number of that link's entries tagged with key).
  std::map<SubKey, std::map<LinkId, std::size_t>> tag_links_;
  mutable std::vector<std::uint32_t> query_scratch_;
};

}  // namespace rebeca::routing

#endif  // REBECA_ROUTING_COVER_INDEX_HPP
