// Incremental counting match index: the broker's notification data plane.
//
// route_notification historically matched every notification by four
// linear scans — remote forward sets (per neighbor link), local client
// subscriptions, virtual counterparts, and LD transit state — O(filters)
// Filter::matches calls per hop. The MatchIndex replaces all four with
// one counting query:
//
//   * every filter in any of the four planes is one *entry*, registered
//     incrementally as the broker's tables change (the DiffProgram
//     upsert/prune stream feeds the remote plane; session/virtual/LD
//     lifecycle feeds the rest);
//   * each entry's constraints are decomposed into per-attribute buckets:
//     equality buckets keyed by (normalized) operand value, ordered
//     bound lists for interval-shaped constraints (sorted by lower
//     bound, probed by prefix), and a catch-all list for the rest
//     (any/ne/prefix/in_set), evaluated by Constraint::matches;
//   * a query walks the notification's attributes once, bumps a
//     per-entry hit counter for every satisfied constraint (epoch
//     stamps, so no O(entries) clear per query), and emits the entries
//     whose count equals their constraint count — plus the empty
//     filters, which match everything.
//
// The result is a MatchHits of destination handles per plane; the broker
// orders them canonically (links in attach order, local subs and
// virtuals in key order), so the index-driven route is byte-identical to
// the linear scans it replaces.
#ifndef REBECA_ROUTING_MATCH_INDEX_HPP
#define REBECA_ROUTING_MATCH_INDEX_HPP

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/filter/filter.hpp"
#include "src/util/domain_ids.hpp"

namespace rebeca::routing {

/// One query's matches, by destination plane. links carries remote and
/// LD-transit matches (the per-link forward decision); locals and
/// virtuals carry subscription keys. All three are sorted and deduped.
struct MatchHits {
  std::vector<LinkId> links;
  std::vector<SubKey> locals;
  std::vector<SubKey> virtuals;

  void clear() {
    links.clear();
    locals.clear();
    virtuals.clear();
  }
};

class MatchIndex {
 public:
  // --- remote plane: routing-table entries, keyed (link, filter) ---
  void add_remote(LinkId link, const filter::Filter& f);
  void remove_remote(LinkId link, const filter::Filter& f);

  // --- exactly-keyed planes: upsert replaces the key's previous filter ---
  void upsert_local(const SubKey& key, const filter::Filter& f);
  void remove_local(const SubKey& key);
  void upsert_virtual(const SubKey& key, const filter::Filter& f);
  void remove_virtual(const SubKey& key);
  void upsert_transit(const SubKey& key, LinkId toward,
                      const filter::Filter& f);
  void remove_transit(const SubKey& key);

  /// Counting query: fills `out` (cleared first) with every matching
  /// destination, sorted and deduped per plane.
  void collect(const filter::Notification& n, MatchHits& out) const;

  [[nodiscard]] std::size_t entry_count() const { return live_entries_; }

 private:
  enum class Source : std::uint8_t { remote, transit, local, virt };

  struct Entry {
    Source source = Source::remote;
    LinkId link;  // remote: the table's link; transit: toward
    SubKey key;   // local / virt / transit
    filter::Filter f;
    bool alive = false;
  };

  /// Normalized equality-bucket key. Cross-type numeric equality
  /// (1 == 1.0) must land int and double operands in the same bucket,
  /// so numerics normalize to double; the bucket items keep the exact
  /// operand Value and re-verify with Value::equals on probe (huge
  /// int64s can collide after the double cast).
  struct EqKey {
    int cls = 0;  // 0 numeric, 1 string, 2 bool
    double num = 0;
    std::string str;
    bool b = false;
  };

  /// Borrowed probe key: a collect() lookup must not copy the
  /// notification's string attribute per probe.
  struct EqProbe {
    int cls = 0;
    double num = 0;
    std::string_view str;
    bool b = false;
  };

  struct EqKeyLess {
    using is_transparent = void;

    template <typename A, typename B>
    bool operator()(const A& a, const B& b) const {
      if (a.cls != b.cls) return a.cls < b.cls;
      switch (a.cls) {
        case 0: return a.num < b.num;
        case 1: return std::string_view(a.str) < std::string_view(b.str);
        default: return a.b < b.b;
      }
    }
  };

  struct EqItem {
    filter::Value operand;
    std::uint32_t slot;
  };

  /// One equality bucket. Operands whose normalized key decides equality
  /// exactly (strings, bools, doubles, int64s within ±2^53) live in a
  /// dense slot list swept without per-item verification; only huge
  /// int64s — where the double key is lossy — pay a Value::equals each.
  struct EqBucket {
    std::vector<std::uint32_t> exact_slots;
    std::vector<filter::Value> exact_operands;  // parallel; lossy-probe path
    std::vector<EqItem> inexact;
  };

  /// Interval-shaped constraint (lt/le/gt/ge/range) over one ordered
  /// domain. Lower-bounded intervals live in a list sorted ascending by
  /// lo; upper-only intervals (lt/le) in a list sorted descending by hi.
  /// Either way a probe scans exactly the prefix its value admits and
  /// stops at the first bound that excludes it.
  struct Interval {
    bool has_lo = false, has_hi = false;
    bool lo_strict = false, hi_strict = false;
    filter::Value lo, hi;
    std::uint32_t slot = 0;
  };

  struct GeneralItem {
    filter::Constraint c;
    std::uint32_t slot;
  };

  struct Bucket {
    std::map<EqKey, EqBucket, EqKeyLess> eq;
    std::vector<Interval> num_lo;  // has_lo, ascending by lo
    std::vector<Interval> num_hi;  // upper-only, descending by hi
    std::vector<Interval> str_lo;
    std::vector<Interval> str_hi;
    std::vector<GeneralItem> general;
  };

  std::uint32_t add_entry(Entry entry);
  void remove_entry(std::uint32_t slot);
  void index_term(const filter::Filter::Term& term, std::uint32_t slot);
  void unindex_term(const filter::Filter::Term& term, std::uint32_t slot);
  void upsert_keyed(std::map<SubKey, std::uint32_t>& slots, Entry entry);
  void remove_keyed(std::map<SubKey, std::uint32_t>& slots, const SubKey& key);
  void bump(std::uint32_t slot) const;
  static bool interval_admits(const Interval& iv, const filter::Value& v);

  std::vector<Entry> entries_;
  /// Per-slot constraint counts, compact so the match pass over touched
  /// slots stays off the fat Entry records.
  std::vector<std::uint32_t> term_counts_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t live_entries_ = 0;
  std::vector<std::uint32_t> empty_filter_slots_;  // always-match entries

  std::map<LinkId, std::map<filter::Filter, std::uint32_t>> remote_slots_;
  std::map<SubKey, std::uint32_t> local_slots_;
  std::map<SubKey, std::uint32_t> virtual_slots_;
  std::map<SubKey, std::uint32_t> transit_slots_;

  std::vector<Bucket> buckets_;  // indexed by AttrId value

  // Query scratch: epoch-stamped per-entry counters (fused into one
  // record per entry — a bump touches a single cache line), so a query
  // touches only the entries its notification's attributes reach.
  struct Hit {
    std::uint64_t stamp = 0;
    std::uint32_t count = 0;
  };
  mutable std::vector<Hit> hits_;
  mutable std::vector<std::uint32_t> touched_;
  mutable std::uint64_t query_stamp_ = 0;
};

}  // namespace rebeca::routing

#endif  // REBECA_ROUTING_MATCH_INDEX_HPP
