#include "src/routing/cover_index.hpp"

#include <algorithm>
#include <limits>
#include <optional>

#include "src/util/assert.hpp"

namespace rebeca::routing {

namespace {

using filter::Constraint;
using filter::Filter;
using filter::Op;
using filter::Value;

int value_class(const Value& v) {
  if (v.is_numeric()) return 0;
  if (v.is_string()) return 1;
  return 2;  // bool
}

/// Within one bound list every operand is of one ordered class, so the
/// comparison always decides.
bool bound_less(const Value& a, const Value& b) {
  return a.compare(b).value_or(0) < 0;
}

/// True when the value's normalized double equality key is lossless, so
/// key equality coincides with Value::equals.
bool eq_key_exact(const Value& v) {
  if (!v.is_int()) return true;
  const std::int64_t i = v.as_int();
  return i >= -(std::int64_t{1} << 53) && i <= (std::int64_t{1} << 53);
}

/// Smallest string strictly greater than every string with prefix `p`
/// (the Constraint::covers decision procedure uses the same bound).
std::optional<std::string> next_prefix(const std::string& p) {
  std::string q = p;
  for (auto it = q.rbegin(); it != q.rend(); ++it) {
    auto c = static_cast<unsigned char>(*it);
    if (c != 0xFF) {
      *it = static_cast<char>(c + 1);
      q.erase(q.size() - static_cast<std::size_t>(it - q.rbegin()));
      return q;
    }
  }
  return std::nullopt;
}

/// Degenerate range [a,a]: the covering oracle treats it as eq a, and so
/// must every witness-probe below.
bool is_point_range(const Constraint& c) {
  return c.op() == Op::range && c.operand().equals(c.hi());
}

/// Witness value of a singleton-shaped constraint (eq v / range [v,v]).
const Value* witness_of(const Constraint& c) {
  if (c.op() == Op::eq) return &c.operand();
  if (is_point_range(c)) return &c.operand();
  return nullptr;
}

/// Smallest / largest in_set member under numeric order, provided all
/// members share one ordered class (mixed-class sets cannot be matched
/// in full by any single ordered constraint, so bound lanes may skip).
struct SetSpan {
  const Value* min = nullptr;
  const Value* max = nullptr;
  int cls = 2;
};

std::optional<SetSpan> set_span(const std::set<Value>& values) {
  if (values.empty()) return std::nullopt;
  SetSpan span;
  span.cls = value_class(*values.begin());
  span.min = span.max = &*values.begin();
  for (const Value& v : values) {
    if (value_class(v) != span.cls) return std::nullopt;
    if (bound_less(v, *span.min)) span.min = &v;
    if (bound_less(*span.max, v)) span.max = &v;
  }
  return span;
}

}  // namespace

// ---------------------------------------------------------------------------
// CoverEngine: entry lifecycle
// ---------------------------------------------------------------------------

std::uint32_t CoverEngine::add(const filter::Filter* f) {
  REBECA_ASSERT(finalized_, "cover index: add on an unfinalized engine");
  return add_entry(f, /*sorted=*/true);
}

std::uint32_t CoverEngine::add_bulk(const filter::Filter* f) {
  finalized_ = false;
  return add_entry(f, /*sorted=*/false);
}

void CoverEngine::finalize() {
  for (Bucket& b : buckets_) {
    const auto lo_less = [](const BoundItem& a, const BoundItem& x) {
      return bound_less(a.c->operand(), x.c->operand());
    };
    // Upper-only bounds sort descending so a probe scans exactly the
    // prefix whose hi admits its value.
    const auto hi_greater = [](const BoundItem& a, const BoundItem& x) {
      return bound_less(x.c->operand(), a.c->operand());
    };
    std::sort(b.num_lo.begin(), b.num_lo.end(), lo_less);
    std::sort(b.str_lo.begin(), b.str_lo.end(), lo_less);
    std::sort(b.num_hi.begin(), b.num_hi.end(), hi_greater);
    std::sort(b.str_hi.begin(), b.str_hi.end(), hi_greater);
  }
  finalized_ = true;
}

std::uint32_t CoverEngine::add_entry(const filter::Filter* f, bool sorted) {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    entries_[slot] = Entry{f, false};
  } else {
    slot = static_cast<std::uint32_t>(entries_.size());
    entries_.push_back(Entry{f, false});
    hits_.push_back(Hit{});
    term_counts_.push_back(0);
  }
  Entry& e = entries_[slot];
  e.alive = true;
  term_counts_[slot] = static_cast<std::uint32_t>(f->size());
  ++live_entries_;
  if (f->empty()) {
    empty_filter_slots_.push_back(slot);
  } else {
    for (const auto& term : f->terms()) index_term(term, slot, sorted);
  }
  return slot;
}

void CoverEngine::remove(std::uint32_t slot) {
  Entry& e = entries_[slot];
  REBECA_ASSERT(e.alive, "cover index: double remove of slot " << slot);
  if (e.f->empty()) {
    std::erase(empty_filter_slots_, slot);
  } else {
    for (const auto& term : e.f->terms()) unindex_term(term, slot);
  }
  e.alive = false;
  e.f = nullptr;
  --live_entries_;
  free_slots_.push_back(slot);
}

void CoverEngine::index_term(const filter::Filter::Term& term,
                             std::uint32_t slot, bool sorted) {
  const std::uint32_t attr = term.attr.value();
  if (attr >= buckets_.size()) buckets_.resize(attr + 1);
  Bucket& b = buckets_[attr];
  const Constraint& c = term.c;

  switch (c.op()) {
    case Op::any:
      b.any_slots.push_back(slot);
      return;
    case Op::eq: {
      EqKey key;
      key.cls = value_class(c.operand());
      switch (key.cls) {
        case 0: key.num = *c.operand().numeric(); break;
        case 1: key.str = c.operand().as_string(); break;
        default: key.b = c.operand().as_bool(); break;
      }
      EqBucket& bucket = b.eq[key];
      if (eq_key_exact(c.operand())) {
        bucket.exact_slots.push_back(slot);
        bucket.exact_operands.push_back(c.operand());
      } else {
        bucket.inexact.push_back(EqItem{c.operand(), slot});
      }
      return;
    }
    case Op::lt:
    case Op::le:
    case Op::gt:
    case Op::ge:
    case Op::range: {
      const int cls = value_class(c.operand());
      if (cls == 2) break;  // ordered ops on bools: catch-all below
      BoundItem item{&c, slot};
      const bool upper_only = c.op() == Op::lt || c.op() == Op::le;
      auto& list = upper_only ? (cls == 0 ? b.num_hi : b.str_hi)
                              : (cls == 0 ? b.num_lo : b.str_lo);
      if (!sorted) {
        list.push_back(item);
      } else if (upper_only) {
        const auto pos = std::lower_bound(
            list.begin(), list.end(), item,
            [](const BoundItem& a, const BoundItem& x) {
              return bound_less(x.c->operand(), a.c->operand());
            });
        list.insert(pos, item);
      } else {
        const auto pos = std::lower_bound(
            list.begin(), list.end(), item,
            [](const BoundItem& a, const BoundItem& x) {
              return bound_less(a.c->operand(), x.c->operand());
            });
        list.insert(pos, item);
      }
      return;
    }
    default:
      break;
  }
  // ne / prefix / in_set (and ordered-on-bool): exact evaluation.
  b.general.push_back(GeneralItem{&c, slot});
}

void CoverEngine::unindex_term(const filter::Filter::Term& term,
                               std::uint32_t slot) {
  REBECA_ASSERT(term.attr.value() < buckets_.size(),
                "cover index: unindex of unknown attr");
  Bucket& b = buckets_[term.attr.value()];
  const Constraint& c = term.c;

  const auto erase_slot = [slot](auto& list) {
    auto it = std::find_if(list.begin(), list.end(),
                           [slot](const auto& item) { return item.slot == slot; });
    REBECA_ASSERT(it != list.end(), "cover index: missing record for slot");
    list.erase(it);
  };

  switch (c.op()) {
    case Op::any:
      std::erase(b.any_slots, slot);
      return;
    case Op::eq: {
      EqKey key;
      key.cls = value_class(c.operand());
      switch (key.cls) {
        case 0: key.num = *c.operand().numeric(); break;
        case 1: key.str = c.operand().as_string(); break;
        default: key.b = c.operand().as_bool(); break;
      }
      auto it = b.eq.find(key);
      REBECA_ASSERT(it != b.eq.end(), "cover index: missing eq bucket");
      EqBucket& bucket = it->second;
      if (eq_key_exact(c.operand())) {
        auto sit = std::find(bucket.exact_slots.begin(),
                             bucket.exact_slots.end(), slot);
        REBECA_ASSERT(sit != bucket.exact_slots.end(),
                      "cover index: missing eq record for slot");
        const auto i = sit - bucket.exact_slots.begin();
        bucket.exact_slots.erase(sit);
        bucket.exact_operands.erase(bucket.exact_operands.begin() + i);
      } else {
        erase_slot(bucket.inexact);
      }
      if (bucket.exact_slots.empty() && bucket.inexact.empty()) {
        b.eq.erase(it);
      }
      return;
    }
    case Op::lt:
    case Op::le: {
      const int cls = value_class(c.operand());
      if (cls == 2) break;
      erase_slot(cls == 0 ? b.num_hi : b.str_hi);
      return;
    }
    case Op::gt:
    case Op::ge:
    case Op::range: {
      const int cls = value_class(c.operand());
      if (cls == 2) break;
      erase_slot(cls == 0 ? b.num_lo : b.str_lo);
      return;
    }
    default:
      break;
  }
  erase_slot(b.general);
}

// ---------------------------------------------------------------------------
// CoverEngine: query plumbing
// ---------------------------------------------------------------------------

void CoverEngine::begin_query() const {
  REBECA_ASSERT(finalized_, "cover index: query on an unfinalized engine");
  ++query_stamp_;
  touched_.clear();
}

void CoverEngine::bump(std::uint32_t slot) const {
  Hit& h = hits_[slot];
  if (h.stamp != query_stamp_) {
    h.stamp = query_stamp_;
    h.count = 0;
    touched_.push_back(slot);
  }
  ++h.count;
}

void CoverEngine::mark(std::uint32_t slot) const {
  Hit& h = hits_[slot];
  if (h.stamp != query_stamp_) {
    h.stamp = query_stamp_;
    h.count = 1;
    touched_.push_back(slot);
  }
}

void CoverEngine::emit_full(std::vector<std::uint32_t>& out) const {
  for (const std::uint32_t slot : touched_) {
    if (hits_[slot].count == term_counts_[slot]) out.push_back(slot);
  }
  out.insert(out.end(), empty_filter_slots_.begin(), empty_filter_slots_.end());
  std::sort(out.begin(), out.end());
}

void CoverEngine::emit_unmarked(std::vector<std::uint32_t>& out) const {
  for (std::uint32_t slot = 0;
       slot < static_cast<std::uint32_t>(entries_.size()); ++slot) {
    if (entries_[slot].alive && hits_[slot].stamp != query_stamp_) {
      out.push_back(slot);
    }
  }
}

// ---------------------------------------------------------------------------
// covers_of: registered G with G.covers(F)
// ---------------------------------------------------------------------------
//
// Counting over F's terms: a registered term on attribute a is bumped
// when it covers F's constraint on a; G covers F iff *every* G term is
// bumped (plus the empty filters, which cover everything). Each lane
// narrows by bound order, then confirms with the exact oracle — only
// the scan *stop* conditions use the index structure.

void CoverEngine::covers_of(const filter::Filter& f,
                            std::vector<std::uint32_t>& out) const {
  begin_query();
  out.clear();

  for (const auto& term : f.terms()) {
    const std::uint32_t attr = term.attr.value();
    if (attr >= buckets_.size()) continue;
    const Bucket& b = buckets_[attr];
    const Constraint& cf = term.c;

    // `any` terms cover every inner constraint.
    for (const std::uint32_t slot : b.any_slots) bump(slot);
    if (cf.op() == Op::any) continue;  // ...and only they cover `any`.

    // Equality lane: a registered eq(v) covers cf iff cf is
    // witness-shaped and v matches every witness. One normalized probe
    // finds the only bucket a matching v can live in; items re-verify
    // with Value::equals where the double key is lossy.
    if (!b.eq.empty()) {
      const Value* w = witness_of(cf);
      const Value* probe = w;
      if (w == nullptr && cf.op() == Op::in_set && !cf.values().empty()) {
        probe = &*cf.values().begin();  // all-match ⟹ shared bucket key
      }
      if (probe != nullptr) {
        EqKey key;
        key.cls = value_class(*probe);
        switch (key.cls) {
          case 0: key.num = *probe->numeric(); break;
          case 1: key.str = probe->as_string(); break;
          default: key.b = probe->as_bool(); break;
        }
        auto it = b.eq.find(key);
        if (it != b.eq.end()) {
          const EqBucket& bucket = it->second;
          if (w != nullptr) {
            if (eq_key_exact(*w)) {
              for (const std::uint32_t slot : bucket.exact_slots) bump(slot);
            } else {
              for (std::size_t i = 0; i < bucket.exact_slots.size(); ++i) {
                if (w->equals(bucket.exact_operands[i])) {
                  bump(bucket.exact_slots[i]);
                }
              }
            }
            for (const EqItem& item : bucket.inexact) {
              if (w->equals(item.operand)) bump(item.slot);
            }
          } else {
            // in_set: eq(v) covers iff every member equals v. Verify per
            // item — Value::equals is not transitive across lossy
            // int64s, so no member-set shortcut is sound.
            const auto all_equal = [&](const Value& v) {
              return std::all_of(cf.values().begin(), cf.values().end(),
                                 [&](const Value& m) { return m.equals(v); });
            };
            for (std::size_t i = 0; i < bucket.exact_slots.size(); ++i) {
              if (all_equal(bucket.exact_operands[i])) {
                bump(bucket.exact_slots[i]);
              }
            }
            for (const EqItem& item : bucket.inexact) {
              if (all_equal(item.operand)) bump(item.slot);
            }
          }
        }
      }
    }

    // Bound lanes: a lower-bounded G term (gt/ge/range) can cover cf
    // only if its lo does not exceed cf's minimum admitted value m —
    // the ascending lo list is scanned up to m and confirmed exactly.
    // Symmetrically, an upper-only G term (lt/le) needs hi ≥ cf's
    // maximum admitted value M on the descending hi list.
    std::optional<SetSpan> span;
    if (cf.op() == Op::in_set) span = set_span(cf.values());

    const Value* m = nullptr;  // min admitted by cf (probe for lo lists)
    const Value* M = nullptr;  // max admitted by cf (probe for hi lists)
    Value np_value;            // storage for the prefix upper bound
    int probe_cls = 2;
    switch (cf.op()) {
      case Op::eq:
        m = M = &cf.operand();
        probe_cls = value_class(cf.operand());
        break;
      case Op::in_set:
        if (span) {
          m = span->min;
          M = span->max;
          probe_cls = span->cls;
        }
        break;
      case Op::gt:
      case Op::ge:
        m = &cf.operand();
        probe_cls = value_class(cf.operand());
        break;
      case Op::lt:
      case Op::le:
        M = &cf.operand();
        probe_cls = value_class(cf.operand());
        break;
      case Op::range:
        m = &cf.operand();
        M = &cf.hi();
        probe_cls = value_class(cf.operand());
        break;
      case Op::prefix: {
        m = &cf.operand();
        probe_cls = 1;
        // The oracle only lets lt/le/range cover a prefix when
        // next_prefix exists; without it the hi lane has nothing to do.
        auto np = next_prefix(cf.operand().as_string());
        if (np.has_value()) {
          np_value = Value(*np);
          M = &np_value;
        }
        break;
      }
      default:
        break;  // ne/any: no bound-lane coverage possible
    }

    if (probe_cls == 0 || probe_cls == 1) {
      if (m != nullptr) {
        const auto& list = probe_cls == 0 ? b.num_lo : b.str_lo;
        for (const BoundItem& item : list) {
          if (item.c->operand().compare(*m).value_or(1) > 0) break;
          if (item.c->covers(cf)) bump(item.slot);
        }
      }
      if (M != nullptr) {
        const auto& list = probe_cls == 0 ? b.num_hi : b.str_hi;
        for (const BoundItem& item : list) {
          if (item.c->operand().compare(*M).value_or(-1) < 0) break;
          if (item.c->covers(cf)) bump(item.slot);
        }
      }
    }

    // Catch-all lane: exact oracle.
    for (const GeneralItem& item : b.general) {
      if (item.c->covers(cf)) bump(item.slot);
    }
  }

  emit_full(out);
}

// ---------------------------------------------------------------------------
// covered_by_of: registered G with F.covers(G)
// ---------------------------------------------------------------------------
//
// Counting over F's terms again, but in the inner direction: a
// registered term on attribute a is bumped when F's constraint on a
// covers it; G is covered iff it collected one bump per F term (G must
// constrain every attribute F does). An empty F covers everything.

void CoverEngine::covered_by_of(const filter::Filter& f,
                                std::vector<std::uint32_t>& out) const {
  begin_query();
  out.clear();

  if (f.empty()) {
    for (std::uint32_t slot = 0;
         slot < static_cast<std::uint32_t>(entries_.size()); ++slot) {
      if (entries_[slot].alive) out.push_back(slot);
    }
    return;
  }

  const auto key_of = [](const Value& v) {
    EqKey k;
    k.cls = value_class(v);
    switch (k.cls) {
      case 0: k.num = *v.numeric(); break;
      case 1: k.str = v.as_string(); break;
      default: k.b = v.as_bool(); break;
    }
    return k;
  };
  const auto class_floor = [](int cls) {
    EqKey k;
    k.cls = cls;
    k.num = -std::numeric_limits<double>::infinity();
    return k;
  };

  for (const auto& term : f.terms()) {
    const std::uint32_t attr = term.attr.value();
    if (attr >= buckets_.size()) continue;  // nothing here can reach |F|
    const Bucket& b = buckets_[attr];
    const Constraint& cf = term.c;

    if (cf.op() == Op::any) {
      // `any` covers every same-attribute constraint: bump the whole
      // bucket (each slot holds at most one term per attribute).
      for (const std::uint32_t slot : b.any_slots) bump(slot);
      for (const auto& [key, bucket] : b.eq) {
        for (const std::uint32_t slot : bucket.exact_slots) bump(slot);
        for (const EqItem& item : bucket.inexact) bump(item.slot);
      }
      for (const BoundItem& item : b.num_lo) bump(item.slot);
      for (const BoundItem& item : b.str_lo) bump(item.slot);
      for (const BoundItem& item : b.num_hi) bump(item.slot);
      for (const BoundItem& item : b.str_hi) bump(item.slot);
      for (const GeneralItem& item : b.general) bump(item.slot);
      continue;
    }
    // A registered `any` is covered only by `any` — lane skipped.

    // Equality lane: eq(w) is covered iff cf.matches(w). The normalized
    // key order is value-monotone per class (double rounding preserves
    // order), so ordered cf ops probe a key segment; every candidate is
    // confirmed with the exact matches() because huge-int64 keys are
    // lossy.
    if (!b.eq.empty()) {
      const auto verify = [&](const EqBucket& bucket) {
        for (std::size_t i = 0; i < bucket.exact_slots.size(); ++i) {
          if (cf.matches(bucket.exact_operands[i])) {
            bump(bucket.exact_slots[i]);
          }
        }
        for (const EqItem& item : bucket.inexact) {
          if (cf.matches(item.operand)) bump(item.slot);
        }
      };
      const Value* w = witness_of(cf);
      if (w != nullptr) {
        auto it = b.eq.find(key_of(*w));
        if (it != b.eq.end()) {
          const EqBucket& bucket = it->second;
          if (eq_key_exact(*w)) {
            for (const std::uint32_t slot : bucket.exact_slots) bump(slot);
            for (const EqItem& item : bucket.inexact) {
              if (w->equals(item.operand)) bump(item.slot);
            }
          } else {
            verify(bucket);
          }
        }
      } else {
        switch (cf.op()) {
          case Op::lt:
          case Op::le: {
            const EqKey hi = key_of(cf.operand());
            for (auto it = b.eq.lower_bound(class_floor(hi.cls));
                 it != b.eq.end() && !EqKeyLess{}(hi, it->first); ++it) {
              verify(it->second);
            }
            break;
          }
          case Op::gt:
          case Op::ge: {
            const EqKey lo = key_of(cf.operand());
            for (auto it = b.eq.lower_bound(lo);
                 it != b.eq.end() && it->first.cls == lo.cls; ++it) {
              verify(it->second);
            }
            break;
          }
          case Op::range: {
            const EqKey lo = key_of(cf.operand());
            const EqKey hi = key_of(cf.hi());
            for (auto it = b.eq.lower_bound(lo);
                 it != b.eq.end() && !EqKeyLess{}(hi, it->first); ++it) {
              verify(it->second);
            }
            break;
          }
          case Op::prefix: {
            EqKey lo;
            lo.cls = 1;
            lo.str = cf.operand().as_string();
            const auto np = next_prefix(lo.str);
            for (auto it = b.eq.lower_bound(lo);
                 it != b.eq.end() && it->first.cls == 1 &&
                 (!np.has_value() || it->first.str < *np);
                 ++it) {
              verify(it->second);
            }
            break;
          }
          case Op::in_set: {
            // Distinct members may share a normalized key (lossy
            // int64s), so dedup probes by key, and verify items against
            // the whole set, not the probing member.
            std::vector<EqKey> probed;
            for (const Value& member : cf.values()) {
              EqKey k = key_of(member);
              const auto seen = [&](const EqKey& q) {
                return !EqKeyLess{}(q, k) && !EqKeyLess{}(k, q);
              };
              if (std::any_of(probed.begin(), probed.end(), seen)) continue;
              auto it = b.eq.find(k);
              if (it != b.eq.end()) verify(it->second);
              probed.push_back(std::move(k));
            }
            break;
          }
          case Op::ne:
            for (const auto& [key, bucket] : b.eq) verify(bucket);
            break;
          default:
            break;
        }
      }
    }

    // Lower-bound lane (gt/ge/range): covered items have lo inside the
    // window cf admits — including degenerate ranges [w,w], whose lo is
    // their witness. Candidates confirm with the exact covers() oracle.
    const int cls = value_class(cf.operand());
    const auto lo_scan = [&](const std::vector<BoundItem>& list) {
      const auto from = [&](const Value& v) {
        return std::partition_point(
            list.begin(), list.end(),
            [&](const BoundItem& item) { return bound_less(item.c->operand(), v); });
      };
      switch (cf.op()) {
        case Op::eq: {
          // Only point-ranges [w,w] with w == v can be covered.
          for (auto it = from(cf.operand()); it != list.end(); ++it) {
            if (it->c->operand().compare(cf.operand()).value_or(1) != 0) break;
            if (cf.covers(*it->c)) bump(it->slot);
          }
          break;
        }
        case Op::in_set: {
          // Per-member point probes; members can be numerically equal
          // while structurally distinct, so dedup slots before bumping.
          probe_scratch_.clear();
          for (const Value& member : cf.values()) {
            if (value_class(member) != value_class(list.front().c->operand())) {
              continue;
            }
            for (auto it = from(member); it != list.end(); ++it) {
              if (it->c->operand().compare(member).value_or(1) != 0) break;
              if (cf.covers(*it->c)) probe_scratch_.push_back(it->slot);
            }
          }
          std::sort(probe_scratch_.begin(), probe_scratch_.end());
          probe_scratch_.erase(
              std::unique(probe_scratch_.begin(), probe_scratch_.end()),
              probe_scratch_.end());
          for (const std::uint32_t slot : probe_scratch_) bump(slot);
          break;
        }
        case Op::gt:
        case Op::ge:
          for (auto it = from(cf.operand()); it != list.end(); ++it) {
            if (cf.covers(*it->c)) bump(it->slot);
          }
          break;
        case Op::range:
          for (auto it = from(cf.operand()); it != list.end(); ++it) {
            if (it->c->operand().compare(cf.hi()).value_or(1) > 0) break;
            if (cf.covers(*it->c)) bump(it->slot);
          }
          break;
        case Op::lt:
        case Op::le:
          // Covered ranges satisfy hi ≤ v, hence lo ≤ v: scan that
          // ascending prefix (gt/ge items confirm false).
          for (const BoundItem& item : list) {
            if (item.c->operand().compare(cf.operand()).value_or(1) > 0) break;
            if (cf.covers(*item.c)) bump(item.slot);
          }
          break;
        case Op::prefix: {
          const Value pv(cf.operand().as_string());
          const auto np = next_prefix(cf.operand().as_string());
          for (auto it = from(pv); it != list.end(); ++it) {
            if (np.has_value() &&
                it->c->operand().compare(Value(*np)).value_or(1) >= 0) {
              break;
            }
            if (cf.covers(*it->c)) bump(it->slot);
          }
          break;
        }
        case Op::ne:
          for (const BoundItem& item : list) {
            if (cf.covers(*item.c)) bump(item.slot);
          }
          break;
        default:
          break;
      }
    };
    if (cf.op() == Op::ne || cf.op() == Op::in_set) {
      // ne excludes one point; in_set members may span classes. Probe
      // both class lists (the in_set scan filters per member).
      if (!b.num_lo.empty()) lo_scan(b.num_lo);
      if (!b.str_lo.empty()) lo_scan(b.str_lo);
    } else if (cf.op() == Op::prefix) {
      if (!b.str_lo.empty()) lo_scan(b.str_lo);
    } else if (cls == 0 || cls == 1) {
      const auto& list = cls == 0 ? b.num_lo : b.str_lo;
      if (!list.empty()) lo_scan(list);
    }

    // Upper-only lane (lt/le): only an upper-bounded cf (lt/le) or ne
    // can cover them; covered items have hi ≤ cf's bound — the tail of
    // the descending hi list.
    const auto hi_scan = [&](const std::vector<BoundItem>& list) {
      if (cf.op() == Op::ne) {
        for (const BoundItem& item : list) {
          if (cf.covers(*item.c)) bump(item.slot);
        }
        return;
      }
      const auto from = std::partition_point(
          list.begin(), list.end(), [&](const BoundItem& item) {
            return bound_less(cf.operand(), item.c->operand());
          });
      for (auto it = from; it != list.end(); ++it) {
        if (cf.covers(*it->c)) bump(it->slot);
      }
    };
    if (cf.op() == Op::ne) {
      if (!b.num_hi.empty()) hi_scan(b.num_hi);
      if (!b.str_hi.empty()) hi_scan(b.str_hi);
    } else if ((cf.op() == Op::lt || cf.op() == Op::le) &&
               (cls == 0 || cls == 1)) {
      const auto& list = cls == 0 ? b.num_hi : b.str_hi;
      if (!list.empty()) hi_scan(list);
    }

    // Catch-all lane: exact oracle.
    for (const GeneralItem& item : b.general) {
      if (cf.covers(*item.c)) bump(item.slot);
    }
  }

  const std::uint32_t target = static_cast<std::uint32_t>(f.size());
  for (const std::uint32_t slot : touched_) {
    if (hits_[slot].count == target) out.push_back(slot);
  }
  std::sort(out.begin(), out.end());
}

// ---------------------------------------------------------------------------
// overlapping: registered G with F.overlaps(G)
// ---------------------------------------------------------------------------
//
// Filter::overlaps fails only when some *shared* attribute's constraints
// are provably disjoint, so the index proves the complement: walk F's
// terms, mark every registered term disjoint from them, emit the alive
// slots never marked. Exact because Constraint::overlaps itself decides
// each pair.

void CoverEngine::overlapping(const filter::Filter& f,
                              std::vector<std::uint32_t>& out) const {
  begin_query();
  out.clear();

  for (const auto& term : f.terms()) {
    const std::uint32_t attr = term.attr.value();
    if (attr >= buckets_.size()) continue;
    const Bucket& b = buckets_[attr];
    const Constraint& cf = term.c;
    if (cf.op() == Op::any) continue;  // any overlaps everything

    for (const auto& [key, bucket] : b.eq) {
      for (std::size_t i = 0; i < bucket.exact_slots.size(); ++i) {
        if (!cf.matches(bucket.exact_operands[i])) {
          mark(bucket.exact_slots[i]);
        }
      }
      for (const EqItem& item : bucket.inexact) {
        if (!cf.matches(item.operand)) mark(item.slot);
      }
    }
    const auto mark_disjoint = [&](const std::vector<BoundItem>& list) {
      for (const BoundItem& item : list) {
        if (!cf.overlaps(*item.c)) mark(item.slot);
      }
    };
    mark_disjoint(b.num_lo);
    mark_disjoint(b.str_lo);
    mark_disjoint(b.num_hi);
    mark_disjoint(b.str_hi);
    for (const GeneralItem& item : b.general) {
      if (!cf.overlaps(*item.c)) mark(item.slot);
    }
    // any_slots always overlap: never marked.
  }

  emit_unmarked(out);
}

// ---------------------------------------------------------------------------
// CoverIndex: plane maintenance
// ---------------------------------------------------------------------------

void CoverIndex::set_info(std::uint32_t slot, SlotInfo info) {
  if (slot >= info_.size()) info_.resize(slot + 1);
  info_[slot] = std::move(info);
}

void CoverIndex::tag_link(const SubKey& key, LinkId link) {
  ++tag_links_[key][link];
}

void CoverIndex::untag_link(const SubKey& key, LinkId link) {
  auto kit = tag_links_.find(key);
  REBECA_ASSERT(kit != tag_links_.end(), "cover index: untag of unknown key");
  auto lit = kit->second.find(link);
  REBECA_ASSERT(lit != kit->second.end(), "cover index: untag of unknown link");
  if (--lit->second == 0) kit->second.erase(lit);
  if (kit->second.empty()) tag_links_.erase(kit);
}

void CoverIndex::upsert_remote(LinkId link, const filter::Filter& f,
                               const std::set<SubKey>& tags) {
  auto& table = remote_[link];
  auto it = table.find(f);
  if (it != table.end()) {
    // Tag-only upsert: the filter (and its slot) is unchanged.
    RemoteRec& rec = it->second;
    for (const SubKey& key : rec.tags) {
      if (tags.count(key) == 0) untag_link(key, link);
    }
    for (const SubKey& key : tags) {
      if (rec.tags.count(key) == 0) tag_link(key, link);
    }
    rec.tags = tags;
    return;
  }
  it = table.emplace(f, RemoteRec{}).first;
  RemoteRec& rec = it->second;
  rec.tags = tags;
  rec.slot = engine_.add(&it->first);  // map keys are address-stable
  set_info(rec.slot,
           SlotInfo{Source::remote, link, SubKey{}, false, &rec.tags});
  for (const SubKey& key : tags) tag_link(key, link);
}

void CoverIndex::untag_remote(LinkId link, const filter::Filter& f,
                              const SubKey& key) {
  auto lit = remote_.find(link);
  REBECA_ASSERT(lit != remote_.end(), "cover index: untag on unknown link");
  auto it = lit->second.find(f);
  REBECA_ASSERT(it != lit->second.end(), "cover index: untag on unknown entry");
  if (it->second.tags.erase(key) != 0) untag_link(key, link);
}

void CoverIndex::remove_remote(LinkId link, const filter::Filter& f) {
  auto lit = remote_.find(link);
  if (lit == remote_.end()) return;
  auto it = lit->second.find(f);
  if (it == lit->second.end()) return;
  for (const SubKey& key : it->second.tags) untag_link(key, link);
  engine_.remove(it->second.slot);
  lit->second.erase(it);
  if (lit->second.empty()) remote_.erase(lit);
}

void CoverIndex::upsert_keyed(std::map<SubKey, KeyedRec>& plane, Source source,
                              const SubKey& key, const filter::Filter& f,
                              bool ld, LinkId toward) {
  auto it = plane.find(key);
  if (it != plane.end()) {
    // Unindex through the old filter *before* overwriting it: the
    // engine borrows the record's storage.
    engine_.remove(it->second.slot);
  } else {
    it = plane.emplace(key, KeyedRec{}).first;
  }
  KeyedRec& rec = it->second;
  rec.f = f;
  rec.ld = ld;
  rec.toward = toward;
  rec.slot = engine_.add(&rec.f);
  set_info(rec.slot, SlotInfo{source, toward, key, ld, nullptr});
}

void CoverIndex::remove_keyed(std::map<SubKey, KeyedRec>& plane,
                              const SubKey& key) {
  auto it = plane.find(key);
  if (it == plane.end()) return;
  engine_.remove(it->second.slot);
  plane.erase(it);
}

void CoverIndex::upsert_local(const SubKey& key, const filter::Filter& f,
                              bool ld) {
  upsert_keyed(local_, Source::local, key, f, ld, LinkId{});
}

void CoverIndex::remove_local(const SubKey& key) { remove_keyed(local_, key); }

void CoverIndex::upsert_virtual(const SubKey& key, const filter::Filter& f,
                                bool ld) {
  upsert_keyed(virtual_, Source::virt, key, f, ld, LinkId{});
}

void CoverIndex::remove_virtual(const SubKey& key) {
  remove_keyed(virtual_, key);
}

void CoverIndex::upsert_transit(const SubKey& key, LinkId toward,
                                const filter::Filter& f) {
  upsert_keyed(transit_, Source::transit, key, f, false, toward);
}

void CoverIndex::remove_transit(const SubKey& key) {
  remove_keyed(transit_, key);
}

// ---------------------------------------------------------------------------
// CoverIndex: consumer queries
// ---------------------------------------------------------------------------

ForwardSet CoverIndex::covered_inputs(const filter::Filter& f,
                                      LinkId exclude) const {
  engine_.covered_by_of(f, query_scratch_);
  ForwardSet out;
  for (const std::uint32_t slot : query_scratch_) {
    const SlotInfo& si = info_[slot];
    const filter::Filter& g = *engine_.filter_of(slot);
    switch (si.source) {
      case Source::remote:
        if (si.link == exclude || g == f) break;
        out[g].insert(si.tags->begin(), si.tags->end());
        break;
      case Source::local:
      case Source::virt:
        if (si.ld || g == f) break;
        out[g].insert(si.key);
        break;
      case Source::transit:
        break;  // LD transit state is not a forward-set input
    }
  }
  return out;
}

void CoverIndex::covering_links(const filter::Filter& f, LinkId exclude,
                                std::vector<LinkId>& out) const {
  engine_.covers_of(f, query_scratch_);
  out.clear();
  for (const std::uint32_t slot : query_scratch_) {
    const SlotInfo& si = info_[slot];
    if (si.source == Source::remote && si.link != exclude) {
      out.push_back(si.link);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

void CoverIndex::links_serving(const SubKey& key, LinkId exclude,
                               std::vector<LinkId>& out) const {
  out.clear();
  auto it = tag_links_.find(key);
  if (it == tag_links_.end()) return;
  for (const auto& [link, count] : it->second) {
    if (link != exclude && count > 0) out.push_back(link);
  }
}

std::vector<MoveoutCandidate> CoverIndex::tagged_filters(
    LinkId link, const SubKey& key) const {
  std::vector<MoveoutCandidate> out;
  auto lit = remote_.find(link);
  if (lit == remote_.end()) return out;
  for (const auto& [f, rec] : lit->second) {
    if (rec.tags.count(key) != 0) {
      out.push_back(MoveoutCandidate{f, rec.tags.size()});
    }
  }
  return out;
}

std::vector<filter::Filter> CoverIndex::overlapping_filters(
    const filter::Filter& f) const {
  engine_.overlapping(f, query_scratch_);
  std::vector<filter::Filter> out;
  out.reserve(query_scratch_.size());
  for (const std::uint32_t slot : query_scratch_) {
    out.push_back(*engine_.filter_of(slot));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace rebeca::routing
