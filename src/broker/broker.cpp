#include "src/broker/broker.hpp"

#include <algorithm>
#include <sstream>

#include "src/util/assert.hpp"
#include "src/util/logging.hpp"

namespace rebeca::broker {

const char* matcher_name(Matcher m) {
  switch (m) {
    case Matcher::linear: return "linear";
    case Matcher::index: return "index";
  }
  return "?";
}

Broker::Broker(sim::Executor& sim, NodeId id, BrokerConfig config)
    : sim_(sim), id_(id), config_(std::move(config)) {
  lane_affinity_.bind(&sim_);
}

void Broker::attach_broker_link(net::Link& link) {
  REBECA_LANE_ASSERT(lane_affinity_, "Broker", "attach_broker_link");
  REBECA_ASSERT(link.connects(*this), "link does not connect this broker");
  broker_links_.push_back(&link);
  links_by_id_.emplace(link.id(), &link);
  remote_[link.id()];
  sent_[link.id()];
}

void Broker::attach_client_link(net::Link& link) {
  REBECA_LANE_ASSERT(lane_affinity_, "Broker", "attach_client_link");
  REBECA_ASSERT(link.connects(*this), "link does not connect this broker");
  client_links_.insert(link.id());
  client_links_by_id_.emplace(link.id(), &link);
}

std::string Broker::endpoint_name() const {
  std::ostringstream os;
  os << "broker" << id_;
  return os.str();
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

void Broker::handle_message(net::Link& from, const net::Message& msg) {
  REBECA_LANE_ASSERT(lane_affinity_, "Broker", "handle_message");
  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, net::PublishMsg>) {
          on_publish(from, m.n);
        } else if constexpr (std::is_same_v<T, net::SubscribeMsg>) {
          on_subscribe(from, m);
        } else if constexpr (std::is_same_v<T, net::UnsubscribeMsg>) {
          on_unsubscribe(from, m);
        } else if constexpr (std::is_same_v<T, net::AdvertiseMsg>) {
          on_advertise(from, m, /*from_client=*/false);
        } else if constexpr (std::is_same_v<T, net::UnadvertiseMsg>) {
          on_unadvertise(from, m);
        } else if constexpr (std::is_same_v<T, net::RelocateSubMsg>) {
          on_relocate_sub(from, m);
        } else if constexpr (std::is_same_v<T, net::FetchMsg>) {
          on_fetch(from, m);
        } else if constexpr (std::is_same_v<T, net::ReExposeMsg>) {
          on_reexpose(from, m);
        } else if constexpr (std::is_same_v<T, net::ReExposeAckMsg>) {
          on_reexpose_ack(from, m);
        } else if constexpr (std::is_same_v<T, net::ReplayMsg>) {
          on_replay(from, m);
        } else if constexpr (std::is_same_v<T, net::LdSubscribeMsg>) {
          on_ld_subscribe(from, m);
        } else if constexpr (std::is_same_v<T, net::LdUnsubscribeMsg>) {
          on_ld_unsubscribe(from, m);
        } else if constexpr (std::is_same_v<T, net::LdMoveMsg>) {
          on_ld_move(from, m);
        } else if constexpr (std::is_same_v<T, net::ClientHelloMsg>) {
          on_client_hello(from, m);
        } else if constexpr (std::is_same_v<T, net::ClientByeMsg>) {
          on_client_bye(from, m);
        } else if constexpr (std::is_same_v<T, net::ClientSubscribeMsg>) {
          on_client_subscribe(from, m);
        } else if constexpr (std::is_same_v<T, net::ClientUnsubscribeMsg>) {
          on_client_unsubscribe(from, m);
        } else if constexpr (std::is_same_v<T, net::ClientPublishMsg>) {
          on_publish(from, m.n);
        } else if constexpr (std::is_same_v<T, net::ClientAdvertiseMsg>) {
          on_advertise(from, net::AdvertiseMsg{m.id, m.f}, /*from_client=*/true);
        } else if constexpr (std::is_same_v<T, net::ClientUnadvertiseMsg>) {
          on_unadvertise(from, net::UnadvertiseMsg{m.id});
        } else if constexpr (std::is_same_v<T, net::ClientMoveMsg>) {
          on_client_move(from, m);
        } else if constexpr (std::is_same_v<T, net::DeliverMsg>) {
          REBECA_ASSERT(false, "broker received a DeliverMsg");
        }
      },
      msg);
}

// ---------------------------------------------------------------------------
// Forwarding machinery
// ---------------------------------------------------------------------------

std::vector<routing::ForwardInput> Broker::collect_inputs_excluding(
    LinkId exclude) const {
  if (inputs_dirty_) {
    inputs_cache_.clear();
    // Neighbor subscriptions (subscribers beyond other links).
    for (const auto& [link, fs] : remote_) {
      for (const auto& [f, tags] : fs) {
        inputs_cache_.push_back({true, link, {f, tags}});
      }
    }
    // Local client subscriptions. Location-dependent subscriptions
    // propagate through their own plane (LdSubscribeMsg carries per-hop
    // instantiations), so they are not generic inputs.
    for (const auto& [client, session] : sessions_) {
      for (const auto& [sub_id, sub] : session.subs) {
        if (sub.is_ld()) continue;
        inputs_cache_.push_back({false, LinkId{}, {sub.concrete, {sub.key}}});
      }
    }
    // Virtual counterparts keep the old delivery path alive until fetched.
    for (const auto& [key, v] : virtuals_) {
      if (v.ld) continue;
      inputs_cache_.push_back({false, LinkId{}, {v.f, {key}}});
    }
    inputs_dirty_ = false;
  }
  // The per-link exclude is a filter pass over the cached list, in the
  // cached (= historical scan) order.
  std::vector<routing::ForwardInput> inputs;
  inputs.reserve(inputs_cache_.size());
  for (const CachedInput& ci : inputs_cache_) {
    if (ci.remote && ci.origin == exclude) continue;
    inputs.push_back(ci.in);
  }
  return inputs;
}

bool Broker::adv_allows(LinkId link, const filter::Filter& f) const {
  if (!config_.use_advertisements) return true;
  for (const auto& [id, adv] : advs_) {
    if (adv.from_client) continue;  // local producers don't pull subs outward
    if (adv.from_link == link && adv.f.overlaps(f)) return true;
  }
  return false;
}

void Broker::refresh_link(net::Link& link) {
  const LinkId lid = link.id();
  const auto inputs = collect_inputs_excluding(lid);
  auto target =
      routing::compute_forward_set(config_.strategy, inputs, config_.admin_index);

  // Re-expose pins: filters force-exposed on this link by the moveout
  // protocol stay in the target until the covering conflict resolves —
  // the natural target contains them again (the covering input died and
  // aggregation now elects them itself), their own backing inputs are
  // gone (the covered subscriber left too), or — pin decay, the churn
  // rule — the target holds a covering entry served by subscribers other
  // than the recorded movers: the covered filter has a live wire
  // representative again, so the pin would only ride redundantly.
  if (auto pit = reexpose_pins_.find(lid); pit != reexpose_pins_.end()) {
    auto& pins = pit->second;
    for (auto it = pins.begin(); it != pins.end();) {
      const filter::Filter& pin = it->first;
      const std::set<SubKey>& movers = it->second;
      if (target.count(pin) != 0) {
        it = pins.erase(it);
        continue;
      }
      std::set<SubKey> tags;
      for (const auto& in : inputs) {
        if (in.f == pin) tags.insert(in.tags.begin(), in.tags.end());
      }
      if (tags.empty()) {
        it = pins.erase(it);
        continue;
      }
      const bool superseded = std::any_of(
          target.begin(), target.end(), [&](const auto& entry) {
            // target.count(pin) == 0 above, so entry.first != pin here.
            if (!entry.first.covers(pin)) return false;
            return std::none_of(movers.begin(), movers.end(),
                                [&](const SubKey& k) {
                                  return entry.second.count(k) != 0;
                                });
          });
      if (superseded) {
        it = pins.erase(it);
        continue;
      }
      target[pin] = std::move(tags);
      ++it;
    }
    if (pins.empty()) reexpose_pins_.erase(pit);
  }

  if (config_.use_advertisements) {
    for (auto it = target.begin(); it != target.end();) {
      if (!adv_allows(lid, it->first)) {
        it = target.erase(it);
      } else {
        ++it;
      }
    }
  }
  // The diff is an ordered program: upserts strictly before prunes, so
  // on the FIFO link a covered filter is installed at the peer before
  // its covering representative disappears.
  auto program = routing::diff_forward_sets(sent_[lid], target);
  for (auto& step : program.steps) {
    if (step.kind == routing::DiffStep::Kind::upsert) {
      send(link, net::SubscribeMsg{std::move(step.f), std::move(step.tags)});
    } else {
      send(link, net::UnsubscribeMsg{std::move(step.f)});
    }
  }
  sent_[lid] = std::move(target);
}

void Broker::refresh_all_links() {
  for (net::Link* link : broker_links_) refresh_link(*link);
}

// ---------------------------------------------------------------------------
// Admin handlers
// ---------------------------------------------------------------------------

void Broker::on_subscribe(net::Link& from, const net::SubscribeMsg& m) {
  auto& fs = remote_[from.id()];
  if (fs.find(m.f) == fs.end()) index_.add_remote(from.id(), m.f);
  fs[m.f] = m.tags;  // tag-only upserts leave the match index untouched
  cover_index_.upsert_remote(from.id(), m.f, m.tags);
  invalidate_inputs();
  refresh_all_links();
}

void Broker::on_unsubscribe(net::Link& from, const net::UnsubscribeMsg& m) {
  if (remote_[from.id()].erase(m.f) != 0) {
    index_.remove_remote(from.id(), m.f);
    cover_index_.remove_remote(from.id(), m.f);
    invalidate_inputs();
  }
  refresh_all_links();
}

void Broker::on_advertise(net::Link& from, const net::AdvertiseMsg& m,
                          bool from_client) {
  advs_[m.id] = AdvEntry{m.f, from_client, from.id()};
  // Advertisements flood (dedup per link), as in Rebeca.
  for (net::Link* link : broker_links_) {
    if (link->id() == from.id()) continue;
    if (sent_advs_[link->id()].insert(m.id).second) {
      send(*link, net::AdvertiseMsg{m.id, m.f});
    }
  }
  // A new advertisement from `from` may unlock subscription forwarding
  // toward it.
  if (!from_client && config_.use_advertisements) {
    refresh_link(from);
  }
}

void Broker::on_unadvertise(net::Link& from, const net::UnadvertiseMsg& m) {
  auto it = advs_.find(m.id);
  if (it == advs_.end()) return;
  const bool was_client = it->second.from_client;
  advs_.erase(it);
  for (net::Link* link : broker_links_) {
    if (link->id() == from.id()) continue;
    if (sent_advs_[link->id()].erase(m.id) != 0) {
      send(*link, net::UnadvertiseMsg{m.id});
    }
  }
  if (!was_client && config_.use_advertisements) {
    refresh_link(from);
  }
}

// ---------------------------------------------------------------------------
// Notification path
// ---------------------------------------------------------------------------

void Broker::on_publish(net::Link& from, const filter::Notification& n) {
  route_notification(n, &from);
}

void Broker::route_notification(const filter::Notification& n,
                                const net::Link* from) {
  const bool flooding = config_.strategy == routing::Strategy::flooding;

  if (config_.matcher == Matcher::index) {
    // One counting query over all four planes; destinations are applied
    // in the same canonical order as the linear scans below (links in
    // attach order, local subs and virtuals in ascending key order), so
    // the two matchers are byte-identical per seed.
    index_.collect(n, match_hits_);
    for (net::Link* link : broker_links_) {
      if (from != nullptr && link->id() == from->id()) continue;
      const bool forward =
          flooding || std::binary_search(match_hits_.links.begin(),
                                         match_hits_.links.end(), link->id());
      if (forward) send(*link, net::PublishMsg{n});
    }
    for (const SubKey& key : match_hits_.locals) {
      auto sit = sessions_.find(key.client);
      if (sit == sessions_.end()) continue;
      auto it = sit->second.subs.find(key.sub);
      if (it == sit->second.subs.end()) continue;
      deliver_to_sub(sit->second, it->second, n);
    }
    for (const SubKey& key : match_hits_.virtuals) {
      auto it = virtuals_.find(key);
      if (it == virtuals_.end()) continue;
      buffer_to_virtual(it->second, n);
    }
    return;
  }

  // Forward to neighbor brokers.
  for (net::Link* link : broker_links_) {
    if (from != nullptr && link->id() == from->id()) continue;
    bool forward = flooding;
    if (!forward) {
      const auto& fs = remote_[link->id()];
      forward = std::any_of(fs.begin(), fs.end(), [&](const auto& entry) {
        return entry.first.matches(n);
      });
    }
    if (!forward) {
      // Location-dependent state whose consumer lies beyond this link.
      for (const auto& [key, transit] : ld_) {
        if (transit.toward == link->id() && transit.concrete.matches(n)) {
          forward = true;
          break;
        }
      }
    }
    if (forward) send(*link, net::PublishMsg{n});
  }

  // Local deliveries.
  for (auto& [client, session] : sessions_) {
    for (auto& [sub_id, sub] : session.subs) {
      if (sub.concrete.matches(n)) deliver_to_sub(session, sub, n);
    }
  }

  // Virtual counterparts buffer what their client would have received.
  for (auto& [key, v] : virtuals_) {
    if (v.f.matches(n)) buffer_to_virtual(v, n);
  }
}

void Broker::buffer_to_virtual(VirtualSub& v, const filter::Notification& n) {
  if (v.awaiting_replay) {
    // The virtual is itself waiting for an upstream replay (the client
    // moved twice quickly): hold unstamped arrivals until it lands.
    v.pre_replay.push_back(n);
  } else {
    v.buffer.push(net::StampedNotification{n, v.next_seq++});
  }
}

void Broker::deliver_to_sub(Session& session, LocalSub& sub,
                            const filter::Notification& n) {
  if (sub.relocating) {
    sub.pending_live.push_back(n);
    return;
  }
  net::StampedNotification sn{n, sub.next_seq++};
  sub.history.push(sn);
  REBECA_ASSERT(session.link != nullptr, "session without link");
  send(*session.link, net::DeliverMsg{sub.key, std::move(sn)});
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

std::size_t Broker::routing_entry_count() const {
  std::size_t count = 0;
  for (const auto& [link, fs] : remote_) count += fs.size();
  return count;
}

std::size_t Broker::routing_tag_count() const {
  std::size_t count = 0;
  for (const auto& [link, fs] : remote_) {
    for (const auto& [f, tags] : fs) count += tags.size();
  }
  return count;
}

std::optional<location::LocationSet> Broker::ld_concrete_set(
    const SubKey& key) const {
  auto it = ld_.find(key);
  if (it != ld_.end()) return it->second.concrete_set;
  for (const auto& [client, session] : sessions_) {
    for (const auto& [sub_id, sub] : session.subs) {
      if (sub.key == key && sub.is_ld()) return sub.concrete_set;
    }
  }
  return std::nullopt;
}

const routing::ForwardSet* Broker::forwarded_to(LinkId link) const {
  auto it = sent_.find(link);
  return it == sent_.end() ? nullptr : &it->second;
}

std::size_t Broker::pending_moveout_count() const {
  std::size_t n = 0;
  for (const auto& [link, pending] : moveouts_) n += pending.size();
  return n;
}

std::size_t Broker::reexpose_pin_count() const {
  std::size_t n = 0;
  for (const auto& [link, pins] : reexpose_pins_) n += pins.size();
  return n;
}

// ---------------------------------------------------------------------------
// Small helpers shared by the mobility/location translation units
// ---------------------------------------------------------------------------

Broker::Session* Broker::session_of_link(LinkId link) {
  auto it = session_by_link_.find(link);
  if (it == session_by_link_.end()) return nullptr;
  auto sit = sessions_.find(it->second);
  return sit == sessions_.end() ? nullptr : &sit->second;
}

Broker::LocalSub* Broker::find_local_sub(const SubKey& key) {
  auto sit = sessions_.find(key.client);
  if (sit == sessions_.end()) return nullptr;
  auto it = sit->second.subs.find(key.sub);
  return it == sit->second.subs.end() ? nullptr : &it->second;
}

Broker::Session* Broker::find_session(ClientId client) {
  auto it = sessions_.find(client);
  return it == sessions_.end() ? nullptr : &it->second;
}

const location::LocationGraph& Broker::locations() const {
  REBECA_ASSERT(config_.locations != nullptr,
                "broker " << id_ << " has no location graph configured");
  return *config_.locations;
}

}  // namespace rebeca::broker
