// Logical mobility: location-dependent subscriptions (paper Sec. 5).
//
// The consumer's border broker holds F_1 = ploc(loc, q_1) and forwards
// per-hop instantiations upstream; a broker at filter index i installs
// F_i = ploc(loc, q_i) as a concrete `location in {…}` filter. The
// client-side filter F_0 (perfect filtering at the exact myloc vicinity)
// lives in the Client library.
//
// A location change propagates hop by hop (on_ld_move) and stops at the
// first broker whose concrete set did not change: BFS balls compose
// (ploc(x, q+r) = ∪_{z∈ploc(x,q)} ploc(z, r)), so an unchanged set at
// radius q implies unchanged sets at every radius ≥ q, and the
// uncertainty profile is non-decreasing in the hop index. This is the
// "restricted flooding" of Sec. 5.2 — the admin-message savings that
// Fig. 9 quantifies.
#include "src/broker/broker.hpp"
#include "src/util/assert.hpp"
#include "src/util/logging.hpp"

namespace rebeca::broker {

void Broker::on_ld_subscribe(net::Link& from, const net::LdSubscribeMsg& m) {
  auto [it, inserted] = ld_.try_emplace(m.key);
  LdTransit& t = it->second;
  t.key = m.key;
  t.spec = m.spec;
  t.loc = m.loc;
  t.hop = m.hop;
  t.toward = from.id();
  t.concrete_set = m.spec.concrete_set(locations(), m.loc, m.hop);
  t.concrete = m.spec.concrete_filter(locations(), m.loc, m.hop);
  index_.upsert_transit(m.key, t.toward, t.concrete);
  cover_index_.upsert_transit(m.key, t.toward, t.concrete);
  if (!inserted) {
    // Re-anchored (the consumer attached to a different border broker):
    // the state is simply upserted with the new consumer direction; the
    // stale anchor's cleanup will be ignored because it arrives from the
    // wrong direction.
    t.move_seq = 0;
  }
  t.forwarded.clear();
  for (net::Link* link : broker_links_) {
    if (link->id() == from.id()) continue;
    send(*link, net::LdSubscribeMsg{m.key, m.spec, m.loc, m.hop + 1});
    t.forwarded.push_back(link->id());
  }
}

void Broker::on_ld_unsubscribe(net::Link& from, const net::LdUnsubscribeMsg& m) {
  auto it = ld_.find(m.key);
  if (it == ld_.end()) return;
  // Cleanup is only valid arriving from the consumer's direction; a
  // stale unsubscribe from a previous anchor must not tear down the
  // re-anchored path.
  if (it->second.toward != from.id()) return;
  const std::vector<LinkId> forwarded = it->second.forwarded;
  ld_.erase(it);
  index_.remove_transit(m.key);
  cover_index_.remove_transit(m.key);
  for (LinkId lid : forwarded) {
    auto lit = links_by_id_.find(lid);
    if (lit != links_by_id_.end()) {
      send(*lit->second, net::LdUnsubscribeMsg{m.key});
    }
  }
}

void Broker::on_ld_move(net::Link& from, const net::LdMoveMsg& m) {
  auto it = ld_.find(m.key);
  if (it == ld_.end()) return;  // unsubscribed in the meantime
  LdTransit& t = it->second;
  if (t.toward != from.id()) return;  // stale path
  if (m.move_seq <= t.move_seq) return;  // out-of-date update

  location::LocationSet next_set =
      t.spec.concrete_set(locations(), m.loc, t.hop, m.extra_steps);
  const bool changed = !location::set_equal(next_set, t.concrete_set);
  t.loc = m.loc;
  t.move_seq = m.move_seq;
  t.extra_steps = m.extra_steps;
  if (!changed) return;  // stop rule: all farther sets are unchanged too

  t.concrete_set = std::move(next_set);
  t.concrete = t.spec.concrete_filter(locations(), m.loc, t.hop, m.extra_steps);
  index_.upsert_transit(m.key, t.toward, t.concrete);
  cover_index_.upsert_transit(m.key, t.toward, t.concrete);
  for (LinkId lid : t.forwarded) {
    auto lit = links_by_id_.find(lid);
    if (lit != links_by_id_.end()) {
      send(*lit->second,
           net::LdMoveMsg{m.key, m.loc, t.hop + 1, m.move_seq, m.extra_steps});
    }
  }
}

void Broker::on_client_move(net::Link& from, const net::ClientMoveMsg& m) {
  Session* session = session_of_link(from.id());
  if (session == nullptr || session->client != m.client) {
    REBECA_WARN("broker " << id_ << ": move from unknown client " << m.client);
    return;
  }
  for (auto& [sub_id, sub] : session->subs) {
    if (!sub.is_ld()) continue;
    ld_apply_move(sub, m.loc);
  }
}

void Broker::ld_apply_move(LocalSub& sub, LocationId loc) {
  const auto& spec = std::get<location::LdSpec>(sub.spec);
  location::LocationSet next_set = spec.concrete_set(locations(), loc, 1);
  const bool changed = !location::set_equal(next_set, sub.concrete_set);
  sub.loc = loc;
  ++sub.move_seq;
  if (!changed) return;  // border set unchanged ⇒ every upstream set too

  sub.concrete_set = std::move(next_set);
  sub.concrete = spec.concrete_filter(locations(), loc, 1);
  index_.upsert_local(sub.key, sub.concrete);
  cover_index_.upsert_local(sub.key, sub.concrete, /*ld=*/true);
  for (LinkId lid : sub.ld_forwarded) {
    auto lit = links_by_id_.find(lid);
    if (lit != links_by_id_.end()) {
      send(*lit->second, net::LdMoveMsg{sub.key, loc, 2, sub.move_seq, 0});
    }
  }
}

// ---------------------------------------------------------------------------
// Pre-subscribe widening (extension of paper Sec. 6 future work)
// ---------------------------------------------------------------------------

void Broker::schedule_ld_widen(VirtualSub& v) {
  if (!config_.ld_presubscribe || !v.ld) return;
  // Once the ball saturates, upstream sets are all-of-L too; nothing
  // further to widen.
  if (config_.locations != nullptr &&
      v.ld_spec.concrete_set(locations(), v.ld_loc, 1, v.widen_steps).size() ==
          locations().size()) {
    return;
  }
  const SubKey key = v.key;
  const std::uint64_t epoch = v.epoch;
  v.widen_timer = sim_.schedule_after(
      config_.ld_widen_interval,
      [this, key, epoch] { widen_ld_virtual(key, epoch); });
}

void Broker::widen_ld_virtual(const SubKey& key, std::uint64_t epoch) {
  auto it = virtuals_.find(key);
  if (it == virtuals_.end() || it->second.epoch != epoch) return;
  VirtualSub& v = it->second;
  v.widen_steps += 1;
  v.f = v.ld_spec.concrete_filter(locations(), v.ld_loc, 1, v.widen_steps);
  index_.upsert_virtual(key, v.f);
  cover_index_.upsert_virtual(key, v.f, /*ld=*/true);
  ++v.ld_move_seq;
  for (LinkId lid : v.ld_forwarded) {
    auto lit = links_by_id_.find(lid);
    if (lit != links_by_id_.end()) {
      send(*lit->second,
           net::LdMoveMsg{key, v.ld_loc, 2, v.ld_move_seq, v.widen_steps});
    }
  }
  schedule_ld_widen(v);
}

}  // namespace rebeca::broker
