// The Rebeca-style content-based broker (paper Sec. 2, 4, 5).
//
// One class implements all three broker roles of Fig. 1: border brokers
// hold client sessions; inner brokers only route. (The paper's "local
// broker" lives inside the Client library.) A broker owns four kinds of
// routing state:
//
//   remote_    filters received from neighbor brokers (per link) — the
//              routing table of Sec. 2.2, with serving-subscription tags
//   sessions_  local client sessions with per-subscription delivery
//              sequence numbers and a bounded delivery history
//   virtuals_  "virtual counterparts" of disconnected clients that keep
//              buffering matching notifications (Sec. 4.1)
//   ld_        location-dependent subscription state of subscriptions
//              passing through this broker (Sec. 5)
//
// Subscription forwarding is recomputed, not incrementally patched: after
// any state change the broker recomputes the per-link target forward set
// under its routing strategy and sends only the diff — an ordered
// program whose upserts precede its prunes (see routing/strategy.hpp).
// Removing a virtual counterpart simply removes its input and the diffs
// prune the old path; where the relocation protocol itself must prune a
// covering entry (the fetch path under covering/merging routing), the
// two-phase uncover-before-prune handshake (ReExposeMsg/ReExposeAckMsg)
// first re-exposes every covered downstream subscription hop by hop.
#ifndef REBECA_BROKER_BROKER_HPP
#define REBECA_BROKER_BROKER_HPP

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/location/ld_spec.hpp"
#include "src/location/location_graph.hpp"
#include "src/net/endpoint.hpp"
#include "src/net/link.hpp"
#include "src/net/message.hpp"
#include "src/routing/cover_index.hpp"
#include "src/routing/match_index.hpp"
#include "src/routing/strategy.hpp"
#include "src/sim/executor.hpp"
#include "src/sim/lane_check.hpp"
#include "src/util/ring_buffer.hpp"

namespace rebeca::broker {

/// Notification data plane: how route_notification finds destinations.
///   linear — the historical four scans (remote sets, local subs,
///            virtuals, LD transits), one Filter::matches per entry.
///   index  — one MatchIndex counting query, maintained incrementally
///            from the same table changes; destinations applied in the
///            identical canonical order, so equal-seed runs are
///            byte-identical under either matcher.
enum class Matcher { linear, index };

const char* matcher_name(Matcher m);

struct BrokerConfig {
  routing::Strategy strategy = routing::Strategy::covering;
  Matcher matcher = Matcher::index;
  /// Admin plane: how covering relations are evaluated on subscription
  /// churn, moveout planning and fetch relocation.
  ///   linear — the reference scans (O(n²) collapse_covering, the
  ///            covered_by table walk, the dispatch_fetch fallback).
  ///   index  — the attribute-partitioned CoverIndex, maintained
  ///            incrementally from the same table changes. Equal-seed
  ///            runs are byte-identical under either.
  routing::AdminIndex admin_index = routing::AdminIndex::index;
  /// Forward subscriptions only toward overlapping advertisements
  /// (Rebeca's advertisement-based pruning; Fig. 5 junction semantics).
  bool use_advertisements = false;
  /// Two-phase uncover-before-prune relocation moveouts (aggregating
  /// strategies): before the mover's filter is pruned from an old-path
  /// routing entry, the downstream broker re-exposes every subscription
  /// the filter covers and acks; only then does the entry go. Disable
  /// only to demonstrate the covered-bystander hazard (tests).
  bool uncover_before_prune = true;
  /// Delivered-notification history kept per session subscription, so a
  /// silently disconnected client can be replayed from its last received
  /// sequence number even though in-flight deliveries were lost.
  std::size_t session_history = 4096;
  /// Capacity of a virtual counterpart's buffer (0 = unbounded). The
  /// paper: completeness "within the boundaries of time and/or space
  /// limitations of buffering approaches".
  std::size_t virtual_capacity = 65536;
  /// Virtual counterparts are garbage-collected after this much virtual
  /// time without a fetch (0 = never).
  sim::Duration virtual_ttl = 0;
  /// A relocating session flushes its live buffer and goes active if no
  /// replay arrived in time (e.g. the old broker's state had already
  /// been garbage-collected).
  sim::Duration relocation_timeout = sim::seconds(30);
  /// Location graph for location-dependent subscriptions (may be null if
  /// the deployment never uses them).
  const location::LocationGraph* locations = nullptr;
  /// Pre-subscribe extension (paper Sec. 6 future work): while a
  /// location-dependent subscription's client is disconnected, its
  /// virtual counterpart widens the location sets by one movement step
  /// per interval — the client's possible locations keep spreading — so
  /// that on reconnection at *any* broker the buffered notifications can
  /// be replayed and filtered by the client's actual location (flooding
  /// epoch semantics across physical roaming).
  bool ld_presubscribe = false;
  sim::Duration ld_widen_interval = sim::seconds(1);
};

class Broker final : public net::Endpoint {
 public:
  Broker(sim::Executor& sim, NodeId id, BrokerConfig config);

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] const BrokerConfig& config() const { return config_; }

  /// Overlay wiring.
  void attach_broker_link(net::Link& link);
  void attach_client_link(net::Link& link);

  // --- net::Endpoint ---
  void handle_message(net::Link& from, const net::Message& msg) override;
  void handle_link_down(net::Link& link) override;
  [[nodiscard]] std::string endpoint_name() const override;

  // --- introspection (tests, benches) ---
  /// Number of remote routing-table entries (filters) across all links.
  [[nodiscard]] std::size_t routing_entry_count() const;
  /// Total serving tags across remote entries (simple-routing's logical
  /// table size: one row per subscription).
  [[nodiscard]] std::size_t routing_tag_count() const;
  [[nodiscard]] std::size_t session_count() const { return sessions_.size(); }
  [[nodiscard]] std::size_t virtual_count() const { return virtuals_.size(); }
  [[nodiscard]] std::size_t ld_transit_count() const { return ld_.size(); }
  [[nodiscard]] std::uint64_t replayed_notifications() const {
    return replayed_notifications_;
  }
  /// Notifications reported lost to bounded buffering across all replays
  /// this broker emitted (the ReplayMsg::truncated sum).
  [[nodiscard]] std::uint64_t replay_truncated() const {
    return replay_truncated_;
  }
  /// Concrete location set currently installed for an LD subscription
  /// passing through (or anchored at) this broker; nullopt if absent.
  [[nodiscard]] std::optional<location::LocationSet> ld_concrete_set(
      const SubKey& key) const;
  [[nodiscard]] bool has_virtual(const SubKey& key) const {
    return virtuals_.count(key) != 0;
  }
  /// Filters currently forwarded to the given neighbor (testing).
  [[nodiscard]] const routing::ForwardSet* forwarded_to(LinkId link) const;
  /// Moveouts whose prune is still awaiting the downstream re-expose ack
  /// (the intermediate epoch state between "relocation committed" and
  /// "old path pruned").
  [[nodiscard]] std::size_t pending_moveout_count() const;
  /// Cumulative filters this broker force-re-exposed upstream on
  /// ReExposeMsg requests (the uncover traffic, for benches).
  [[nodiscard]] std::uint64_t reexposed_filters() const {
    return reexposed_filters_;
  }
  /// Re-expose pins currently held open across all links (churn
  /// visibility: each pin is a filter ridden redundantly on the wire
  /// until its covering conflict resolves or decay evicts it).
  [[nodiscard]] std::size_t reexpose_pin_count() const;
  /// Live entries in the notification match index (all four planes).
  [[nodiscard]] std::size_t match_index_entries() const {
    return index_.entry_count();
  }
  /// Live entries in the admin-plane covering index (same four planes).
  [[nodiscard]] std::size_t cover_index_entries() const {
    return cover_index_.entry_count();
  }

 private:
  // ---------- session-side state ----------
  struct LocalSub {
    SubKey key;
    net::SubscriptionSpec spec;
    filter::Filter concrete;  // matching filter at this broker
    std::uint64_t epoch = 0;
    std::uint64_t next_seq = 1;  // next delivery sequence number
    util::RingBuffer<net::StampedNotification> history;
    // relocation
    bool relocating = false;
    std::uint64_t reported_last_seq = 0;
    std::vector<filter::Notification> pending_live;
    std::set<NotificationId> replay_seen;
    sim::EventHandle relocation_timer;
    // location-dependent state (spec holds LdSpec)
    LocationId loc;
    std::uint64_t move_seq = 0;
    location::LocationSet concrete_set;
    std::vector<LinkId> ld_forwarded;

    [[nodiscard]] bool is_ld() const { return net::is_location_dependent(spec); }
  };

  struct Session {
    ClientId client;
    net::Link* link = nullptr;
    std::map<std::uint32_t, LocalSub> subs;
  };

  /// Virtual counterpart of a (disconnected) client's subscription.
  struct VirtualSub {
    SubKey key;
    filter::Filter f;
    bool ld = false;
    std::uint64_t epoch = 0;
    std::uint64_t next_seq = 1;
    util::RingBuffer<net::StampedNotification> buffer;
    // The session died while itself waiting for a replay (client moved
    // twice quickly): hold unstamped arrivals until the upstream replay
    // arrives, then merge; if a fetch already waits, answer it then.
    bool awaiting_replay = false;
    std::uint64_t reported_last_seq = 0;
    std::vector<filter::Notification> pre_replay;
    std::set<NotificationId> replay_seen;
    bool fetch_pending = false;
    std::uint64_t fetch_epoch = 0;
    std::uint64_t fetch_last_seq = 0;
    LinkId fetch_reply;
    // LD cleanup bookkeeping
    location::LdSpec ld_spec;
    LocationId ld_loc;
    std::vector<LinkId> ld_forwarded;
    std::uint64_t ld_move_seq = 0;
    // pre-subscribe widening (extension, see BrokerConfig)
    std::uint32_t widen_steps = 0;
    sim::EventHandle widen_timer;
    sim::EventHandle ttl_timer;
  };

  /// LD subscription state at a transit broker (paper Fig. 6: broker at
  /// filter index `hop` holds the ball of q_hop movement steps).
  struct LdTransit {
    SubKey key;
    location::LdSpec spec;
    LocationId loc;
    std::uint32_t hop = 1;
    std::uint64_t move_seq = 0;
    std::uint32_t extra_steps = 0;  // pre-subscribe widening
    LinkId toward;  // link in the direction of the consumer
    filter::Filter concrete;
    location::LocationSet concrete_set;
    std::vector<LinkId> forwarded;
  };

  struct AdvEntry {
    filter::Filter f;
    bool from_client = false;
    LinkId from_link;
  };

  /// Reverse-path breadcrumb for replay routing (laid by RelocateSubMsg
  /// on the new path and by FetchMsg on the old path).
  struct Crumb {
    std::uint64_t epoch = 0;
    LinkId toward_new;
  };

  /// Uncover-before-prune moveout in flight on one old-path link: the
  /// mover's key stays tagged in remote_[link] — traffic keeps flowing
  /// down the old path, protecting covered bystanders — until the
  /// downstream broker acks that it re-exposed everything the filters
  /// cover. This is the relocation state machine's intermediate state
  /// between "relocation committed" (fetch dispatched) and "old path
  /// pruned".
  struct PendingMoveout {
    std::uint64_t epoch = 0;
    std::vector<filter::Filter> prune;  // entries to drop once acked
    std::size_t acks_outstanding = 0;
  };

  /// A ReExposeMsg this broker could not answer yet because its own
  /// downstream moveout for the key is still pending: the covered
  /// filters that will surface from below are not in the tables yet.
  /// Answered when the last downstream ack lands — the ack barrier is
  /// transitive along the old path.
  struct DeferredReexpose {
    LinkId reply;
    filter::Filter f;
    std::uint64_t epoch = 0;
  };

  // ---------- message handlers ----------
  void on_publish(net::Link& from, const filter::Notification& n);
  void on_subscribe(net::Link& from, const net::SubscribeMsg& m);
  void on_unsubscribe(net::Link& from, const net::UnsubscribeMsg& m);
  void on_advertise(net::Link& from, const net::AdvertiseMsg& m, bool from_client);
  void on_unadvertise(net::Link& from, const net::UnadvertiseMsg& m);
  void on_relocate_sub(net::Link& from, const net::RelocateSubMsg& m);
  void on_fetch(net::Link& from, const net::FetchMsg& m);
  void on_reexpose(net::Link& from, const net::ReExposeMsg& m);
  void on_reexpose_ack(net::Link& from, const net::ReExposeAckMsg& m);
  void on_replay(net::Link& from, const net::ReplayMsg& m);
  void on_ld_subscribe(net::Link& from, const net::LdSubscribeMsg& m);
  void on_ld_unsubscribe(net::Link& from, const net::LdUnsubscribeMsg& m);
  void on_ld_move(net::Link& from, const net::LdMoveMsg& m);
  void on_client_hello(net::Link& from, const net::ClientHelloMsg& m);
  void on_client_bye(net::Link& from, const net::ClientByeMsg& m);
  void on_client_subscribe(net::Link& from, const net::ClientSubscribeMsg& m);
  void on_client_unsubscribe(net::Link& from, const net::ClientUnsubscribeMsg& m);
  void on_client_move(net::Link& from, const net::ClientMoveMsg& m);

  // ---------- forwarding machinery ----------
  [[nodiscard]] std::vector<routing::ForwardInput> collect_inputs_excluding(
      LinkId exclude) const;
  void refresh_link(net::Link& link);
  void refresh_all_links();
  [[nodiscard]] bool adv_allows(LinkId link, const filter::Filter& f) const;

  // ---------- notification path ----------
  void route_notification(const filter::Notification& n, const net::Link* from);
  void deliver_to_sub(Session& session, LocalSub& sub, const filter::Notification& n);
  /// Buffers a matching notification into a virtual counterpart — the
  /// one sink both matcher paths share, so they cannot drift apart.
  void buffer_to_virtual(VirtualSub& v, const filter::Notification& n);

  // ---------- session/virtual helpers ----------
  Session* session_of_link(LinkId link);
  LocalSub* find_local_sub(const SubKey& key);
  Session* find_session(ClientId client);
  void install_sub(Session& session, const SubKey& key,
                   const net::SubscriptionSpec& spec, LocationId loc,
                   std::uint64_t epoch, std::uint64_t last_seq, bool relocate);
  /// Junction check: if this broker serves `key` (tagged entries) — or
  /// covers `f` — in a direction other than `exclude`, re-points that
  /// state and dispatches FetchMsg along it.
  enum class Junction { none, covering, tagged };
  Junction dispatch_fetch(const SubKey& key, const filter::Filter& f,
                          std::uint64_t epoch, std::uint64_t last_seq,
                          LinkId exclude);
  /// Runs the planned moveout of `key` from remote_[link]: untags shared
  /// entries now; for dying entries either primes the two-phase
  /// re-expose/ack handshake (aggregating strategies with
  /// uncover_before_prune) or prunes immediately.
  void begin_moveout(net::Link& link, const SubKey& key, std::uint64_t epoch);
  /// Executes a moveout's deferred prunes (ack barrier passed).
  void finish_moveout(net::Link& link, const SubKey& key);
  /// Computes and sends the re-expose set for `f` toward `to`, then acks.
  void answer_reexpose(net::Link& to, const SubKey& key,
                       const filter::Filter& f, std::uint64_t epoch);
  void remove_local_sub(Session& session, std::uint32_t sub_id, bool propagate);
  void virtualize_session(Session& session);
  void emit_replay(VirtualSub& v, net::Link& to, std::uint64_t epoch,
                   std::uint64_t last_seq);
  void drop_virtual(const SubKey& key);
  void schedule_virtual_ttl(VirtualSub& v);
  void finish_relocation(Session& session, LocalSub& sub, const net::ReplayMsg& m);
  void flush_relocation_timeout(ClientId client, std::uint32_t sub_id,
                                std::uint64_t epoch);

  // ---------- LD helpers ----------
  [[nodiscard]] const location::LocationGraph& locations() const;
  void ld_apply_move(LocalSub& sub, LocationId loc);
  /// Pre-subscribe widening tick for a disconnected LD subscription.
  void widen_ld_virtual(const SubKey& key, std::uint64_t epoch);
  void schedule_ld_widen(VirtualSub& v);

  void send(net::Link& link, net::Message msg) { link.send(*this, std::move(msg)); }

  sim::Executor& sim_;
  /// Debug-only: the lane that owns this broker (lane_check.hpp).
  sim::LaneAffinity lane_affinity_;
  NodeId id_;
  BrokerConfig config_;

  std::vector<net::Link*> broker_links_;  // attach order (canonical scan order)
  // Pointer-VALUED maps are deliberate and PTR-ORDER-clean: iteration
  // follows the LinkId key, so link addresses never reach event, message
  // or report order. Only pointer-KEYED ordered containers are hazards.
  std::map<LinkId, net::Link*> links_by_id_;  // broker links only
  std::set<LinkId> client_links_;
  std::map<LinkId, net::Link*> client_links_by_id_;

  std::map<LinkId, routing::ForwardSet> remote_;
  std::map<LinkId, routing::ForwardSet> sent_;
  std::map<AdvId, AdvEntry> advs_;
  std::map<LinkId, std::set<AdvId>> sent_advs_;

  std::map<ClientId, Session> sessions_;
  std::map<LinkId, ClientId> session_by_link_;
  std::map<SubKey, VirtualSub> virtuals_;
  std::map<SubKey, LdTransit> ld_;
  std::map<SubKey, Crumb> crumbs_;
  /// Per old-path link: moveouts awaiting the downstream re-expose ack.
  std::map<LinkId, std::map<SubKey, PendingMoveout>> moveouts_;
  std::map<SubKey, std::vector<DeferredReexpose>> deferred_reexpose_;
  /// Filters this broker force-re-exposed toward a link on a ReExposeMsg
  /// request, each tagged with the mover keys whose moveouts forced it:
  /// pinned into that link's target forward set until the covering
  /// conflict resolves — the pin reappears in the computed target, its
  /// backing inputs disappear, or (pin decay, the churn rule) the target
  /// holds a covering entry served by someone *other* than the recorded
  /// movers, so the covered subscriber is represented again. Without the
  /// pin the very next refresh would re-aggregate the filter away while
  /// the mover's covering input is still alive, reopening the hazard.
  std::map<LinkId, std::map<filter::Filter, std::set<SubKey>>> reexpose_pins_;

  /// Incremental notification match index over all four filter planes
  /// (remote tables, local subs, virtuals, LD transits); queried by
  /// route_notification when config_.matcher == Matcher::index.
  routing::MatchIndex index_;
  mutable routing::MatchHits match_hits_;  // query scratch

  /// Admin-plane covering index over the same four planes, maintained
  /// unconditionally next to index_ at every table mutation; queried by
  /// refresh_link / answer_reexpose / dispatch_fetch / begin_moveout
  /// when config_.admin_index == AdminIndex::index.
  routing::CoverIndex cover_index_;
  mutable std::vector<LinkId> cover_links_;  // query scratch

  /// collect_inputs_excluding historically rebuilt the ForwardInput
  /// vector from the tables on every call — once per link per refresh,
  /// even when nothing changed between calls. The cache keeps the full
  /// input list (with each entry's origin link, so the per-link exclude
  /// is a filter pass) and is invalidated by table mutations.
  struct CachedInput {
    bool remote = false;
    LinkId origin;  // remote entries only
    routing::ForwardInput in;
  };
  void invalidate_inputs() { inputs_dirty_ = true; }
  mutable std::vector<CachedInput> inputs_cache_;
  mutable bool inputs_dirty_ = true;

  std::uint64_t replayed_notifications_ = 0;
  std::uint64_t replay_truncated_ = 0;
  std::uint64_t reexposed_filters_ = 0;
};

}  // namespace rebeca::broker

#endif  // REBECA_BROKER_BROKER_HPP
