#include "src/broker/overlay.hpp"

#include "src/util/assert.hpp"

namespace rebeca::broker {

Overlay::Overlay(sim::Simulation& sim, const net::Topology& topology,
                 OverlayConfig config)
    : sim_(sim), topology_(topology), config_(std::move(config)) {
  REBECA_ASSERT(topology_.valid(), "overlay topology must be a connected tree");
  brokers_.reserve(topology_.broker_count());
  for (std::size_t i = 0; i < topology_.broker_count(); ++i) {
    brokers_.push_back(std::make_unique<Broker>(
        sim_, NodeId(static_cast<std::uint32_t>(i)), config_.broker));
  }
  for (const auto& [a, b] : topology_.edges()) {
    auto link = std::make_unique<net::Link>(
        LinkId(next_link_id_++), sim_, *brokers_[a], *brokers_[b],
        config_.broker_link_delay, &counters_);
    brokers_[a]->attach_broker_link(*link);
    brokers_[b]->attach_broker_link(*link);
    links_.push_back(std::move(link));
  }
}

net::Link& Overlay::connect_client(client::Client& client,
                                   std::size_t broker_index) {
  // A client may hold several links at once (make-before-break roaming,
  // used by the naive-overlap baseline of Fig. 2).
  REBECA_ASSERT(broker_index < brokers_.size(), "broker index out of range");
  auto link = std::make_unique<net::Link>(
      LinkId(next_link_id_++), sim_, *brokers_[broker_index], client,
      config_.client_link_delay, &counters_);
  net::Link& ref = *link;
  links_.push_back(std::move(link));
  brokers_[broker_index]->attach_client_link(ref);
  client.attach(ref);
  return ref;
}

}  // namespace rebeca::broker
