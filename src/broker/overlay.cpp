#include "src/broker/overlay.hpp"

#include "src/util/assert.hpp"

namespace rebeca::broker {

Overlay::Overlay(sim::Executor& sim, const net::Topology& topology,
                 OverlayConfig config)
    : control_exec_(&sim), topology_(topology), config_(std::move(config)) {
  REBECA_ASSERT(topology_.valid(), "overlay topology must be a connected tree");
  brokers_.reserve(topology_.broker_count());
  for (std::size_t i = 0; i < topology_.broker_count(); ++i) {
    brokers_.push_back(std::make_unique<Broker>(
        sim, NodeId(static_cast<std::uint32_t>(i)), config_.broker));
  }
  for (const auto& [a, b] : topology_.edges()) {
    auto link = std::make_unique<net::Link>(
        LinkId(next_link_id_++), sim, *brokers_[a], *brokers_[b],
        config_.broker_link_delay, &counters_);
    brokers_[a]->attach_broker_link(*link);
    brokers_[b]->attach_broker_link(*link);
    links_.push_back(std::move(link));
  }
}

Overlay::Overlay(sim::ShardedSimulation& engine, const net::Topology& topology,
                 OverlayConfig config, std::vector<std::size_t> broker_shards)
    : control_exec_(&engine.control()),
      engine_(&engine),
      topology_(topology),
      config_(std::move(config)),
      broker_shards_(std::move(broker_shards)) {
  REBECA_ASSERT(topology_.valid(), "overlay topology must be a connected tree");
  REBECA_ASSERT(broker_shards_.size() == topology_.broker_count(),
                "need one shard assignment per broker");
  shard_counters_.resize(engine.shard_count());
  brokers_.reserve(topology_.broker_count());
  broker_exec_.reserve(topology_.broker_count());
  for (std::size_t i = 0; i < topology_.broker_count(); ++i) {
    REBECA_ASSERT(broker_shards_[i] < engine.shard_count(),
                  "broker " << i << " assigned to shard " << broker_shards_[i]
                            << " of " << engine.shard_count());
    // Lane ids are minted in broker order — part of the determinism
    // contract (event keys embed the lane id).
    sim::LaneExecutor& exec = engine.add_lane(broker_shards_[i]);
    broker_exec_.push_back(&exec);
    brokers_.push_back(std::make_unique<Broker>(
        exec, NodeId(static_cast<std::uint32_t>(i)), config_.broker));
  }
  for (const auto& [a, b] : topology_.edges()) {
    auto link = std::make_unique<net::Link>(
        LinkId(next_link_id_++), *broker_exec_[a], *brokers_[a],
        &shard_counters_[broker_shards_[a]].c, *broker_exec_[b], *brokers_[b],
        &shard_counters_[broker_shards_[b]].c, config_.broker_link_delay);
    brokers_[a]->attach_broker_link(*link);
    brokers_[b]->attach_broker_link(*link);
    links_.push_back(std::move(link));
  }
}

metrics::MessageCounters Overlay::total_counters() const {
  metrics::MessageCounters total = counters_;
  for (const ShardCounters& sc : shard_counters_) {
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(metrics::MessageClass::kCount); ++i) {
      const auto cls = static_cast<metrics::MessageClass>(i);
      total.add(cls, sc.c.count(cls));
    }
  }
  return total;
}

net::Link& Overlay::connect_client(client::Client& client,
                                   std::size_t broker_index) {
  // A client may hold several links at once (make-before-break roaming,
  // used by the naive-overlap baseline of Fig. 2).
  REBECA_ASSERT(broker_index < brokers_.size(), "broker index out of range");
  if (engine_ == nullptr) {
    auto link = std::make_unique<net::Link>(
        LinkId(next_link_id_++), *control_exec_, *brokers_[broker_index],
        client, config_.client_link_delay, &counters_);
    net::Link& ref = *link;
    links_.push_back(std::move(link));
    brokers_[broker_index]->attach_client_link(ref);
    client.attach(ref);
    return ref;
  }

  // Sharded: the client plane (control lane, shard 0) creates the link;
  // the broker side registers it on its *own* lane, one minimum client
  // link delay out — a legal cross-shard event that is guaranteed to
  // sort before the hello (same sender lane, earlier sequence, and the
  // hello's sampled delay is never below the minimum).
  auto link = std::make_unique<net::Link>(
      LinkId(next_link_id_++), *broker_exec_[broker_index],
      *brokers_[broker_index], &shard_counters_[broker_shards_[broker_index]].c,
      engine_->control(), client, &shard_counters_[0].c,
      config_.client_link_delay);
  net::Link& ref = *link;
  links_.push_back(std::move(link));
  Broker* border = brokers_[broker_index].get();
  broker_exec_[broker_index]->post_at(
      control_exec_->now() + config_.client_link_delay.lower_bound(),
      // rebeca-lint: allow(LANE-ESCAPE, ref is owned by links_ and outlives the run; attach runs on the border broker's own lane, which owns the link registry)
      [border, &ref] { border->attach_client_link(ref); });
  client.attach(ref);
  return ref;
}

}  // namespace rebeca::broker
