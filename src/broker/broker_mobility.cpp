// Physical mobility: the relocation protocol of paper Sec. 4.
//
// Life of a relocation (Fig. 5):
//  1. The client's link to the old border broker goes down; the border
//     turns its session state into "virtual counterparts" that keep
//     buffering matching notifications (virtualize_session).
//  2. The client reconnects elsewhere and its hello re-issues each
//     subscription with the last received sequence number
//     (on_client_hello → install_sub with relocate=true). The new border
//     first propagates the subscription normally (refresh_all_links) and
//     then sends RelocateSubMsg — in that order, so on every FIFO link
//     the new delivery path is installed before the hunt passes, closing
//     the loss window at the junction.
//  3. A broker that finds state serving the key (or covering the filter)
//     in another direction is the junction (on_relocate_sub): it answers
//     with FetchMsg down the old path and stops the hunt.
//  4. FetchMsg re-points per-key state as it travels (on_fetch) and lays
//     breadcrumbs; the old border replays its buffer (emit_replay) and
//     garbage-collects. Removing the virtual removes a forwarding input,
//     so the diff machinery prunes the old path automatically. Where the
//     protocol itself must drop a routing entry that dies with the mover
//     (begin_moveout), aggregating strategies run the two-phase
//     uncover-before-prune handshake: the entry stays routable while a
//     ReExposeMsg travels down the old path, each hop re-exposes every
//     subscription the mover's filter covers (deferring its ack behind
//     its own downstream barrier), and only the returning ReExposeAckMsg
//     releases the prune — so a covered bystander's delivery path is
//     never interrupted.
//  5. The replay follows the breadcrumbs to the new border, which
//     delivers replayed notifications before its own buffered live ones
//     (finish_relocation), deduplicating by notification id.
#include <algorithm>

#include "src/broker/broker.hpp"
#include "src/util/assert.hpp"
#include "src/util/logging.hpp"

namespace rebeca::broker {

// ---------------------------------------------------------------------------
// Client session management
// ---------------------------------------------------------------------------

void Broker::on_client_hello(net::Link& from, const net::ClientHelloMsg& m) {
  REBECA_ASSERT(client_links_.count(from.id()) != 0,
                "hello on a non-client link");
  Session& session = sessions_[m.client];
  session.client = m.client;
  session.link = &from;
  session_by_link_[from.id()] = m.client;

  for (const auto& resub : m.resubs) {
    install_sub(session, resub.key, resub.spec, resub.loc, resub.epoch,
                resub.last_seq, /*relocate=*/true);
  }
}

void Broker::on_client_bye(net::Link& from, const net::ClientByeMsg& m) {
  auto it = sessions_.find(m.client);
  if (it == sessions_.end()) return;
  Session& session = it->second;
  // Graceful sign-off: tear everything down right away, no virtuals.
  std::vector<std::uint32_t> ids;
  for (const auto& [sub_id, sub] : session.subs) ids.push_back(sub_id);
  for (auto sub_id : ids) remove_local_sub(session, sub_id, /*propagate=*/true);
  session_by_link_.erase(from.id());
  sessions_.erase(it);
  // Server-side close: with the session gone, the link-down handler has
  // nothing left to virtualize.
  from.cut(*this);
}

void Broker::on_client_subscribe(net::Link& from, const net::ClientSubscribeMsg& m) {
  Session* session = session_of_link(from.id());
  REBECA_ASSERT(session != nullptr, "subscribe before hello");
  install_sub(*session, m.key, m.spec, m.loc, /*epoch=*/0, /*last_seq=*/0,
              /*relocate=*/false);
}

void Broker::on_client_unsubscribe(net::Link& from,
                                   const net::ClientUnsubscribeMsg& m) {
  Session* session = session_of_link(from.id());
  if (session == nullptr) return;
  remove_local_sub(*session, m.key.sub, /*propagate=*/true);
}

void Broker::install_sub(Session& session, const SubKey& key,
                         const net::SubscriptionSpec& spec, LocationId loc,
                         std::uint64_t epoch, std::uint64_t last_seq,
                         bool relocate) {
  REBECA_ASSERT(key.client == session.client, "sub key/client mismatch");

  // Reconnect at the same broker: merge with the virtual counterpart and
  // replay locally — no network protocol needed.
  auto vit = virtuals_.find(key);

  auto [it, inserted] = session.subs.try_emplace(key.sub);
  LocalSub& sub = it->second;
  if (!inserted && epoch != 0 && epoch <= sub.epoch) return;  // stale re-issue
  sub.key = key;
  sub.spec = spec;
  sub.epoch = epoch;
  sub.history = util::RingBuffer<net::StampedNotification>(config_.session_history);
  sub.reported_last_seq = last_seq;

  if (net::is_location_dependent(spec)) {
    // Location-dependent subscriptions anchor at this border: the border
    // holds F_1 (paper Fig. 6) and propagates per-hop instantiations
    // upstream.
    const auto& ld = std::get<location::LdSpec>(spec);
    sub.loc = loc;
    sub.concrete_set = ld.concrete_set(locations(), loc, 1);
    sub.concrete = ld.concrete_filter(locations(), loc, 1);
    sub.next_seq = last_seq + 1;
    index_.upsert_local(key, sub.concrete);
    cover_index_.upsert_local(key, sub.concrete, /*ld=*/true);
    invalidate_inputs();

    if (vit != virtuals_.end()) {
      // Same-broker reconnect: replay the buffered backlog locally (the
      // client-side filter F_0 drops whatever its actual location has
      // left behind).
      VirtualSub& v = vit->second;
      sub.next_seq = v.next_seq;
      for (const auto& sn : v.buffer) {
        if (sn.seq <= last_seq) continue;
        send(*session.link, net::DeliverMsg{key, sn});
        sub.history.push(sn);
      }
      v.widen_timer.cancel();
      v.ttl_timer.cancel();
      index_.remove_virtual(key);
      cover_index_.remove_virtual(key);
      invalidate_inputs();
      virtuals_.erase(vit);
      refresh_all_links();
    } else if (config_.ld_presubscribe && relocate && epoch > 0) {
      // Pre-subscribe extension (paper Sec. 6 future work): hunt down
      // the old anchor's buffered notifications before re-anchoring.
      // Every broker holds LD transit state for the key (LD state
      // floods), so this border's own transit points toward the old
      // border — the fetch follows it; FIFO puts the fetch ahead of the
      // re-anchor flood on those links.
      sub.relocating = true;
      dispatch_fetch(key, sub.concrete, epoch, last_seq, LinkId::invalid());
      const std::uint64_t timeout_epoch = epoch;
      const ClientId client = session.client;
      const std::uint32_t sub_id = key.sub;
      sub.relocation_timer = sim_.schedule_after(
          config_.relocation_timeout, [this, client, sub_id, timeout_epoch] {
            flush_relocation_timeout(client, sub_id, timeout_epoch);
          });
    }

    // (Re-)anchor: this border is hop 1 now; the flood upserts transit
    // state everywhere toward the new consumer direction.
    if (ld_.erase(key) != 0) {
      index_.remove_transit(key);
      cover_index_.remove_transit(key);
    }
    sub.ld_forwarded.clear();
    for (net::Link* link : broker_links_) {
      send(*link, net::LdSubscribeMsg{key, ld, loc, /*hop=*/2});
      sub.ld_forwarded.push_back(link->id());
    }
    return;
  }

  sub.concrete = std::get<filter::Filter>(spec);
  index_.upsert_local(key, sub.concrete);
  cover_index_.upsert_local(key, sub.concrete, /*ld=*/false);
  invalidate_inputs();

  if (vit != virtuals_.end()) {
    // Same-broker reconnect (paper: "reconnects at the same or a
    // different broker"). Deliver the buffered backlog directly.
    VirtualSub& v = vit->second;
    if (v.awaiting_replay) {
      // The session died mid-relocation and the client came back here:
      // restore the waiting state; the in-flight replay will complete it.
      sub.relocating = true;
      sub.pending_live.assign(v.pre_replay.begin(), v.pre_replay.end());
      sub.replay_seen = v.replay_seen;
      sub.reported_last_seq = v.reported_last_seq;
      drop_virtual(key);  // cancels both timers before erasing
      const std::uint64_t timeout_epoch = sub.epoch;
      const ClientId client = session.client;
      const std::uint32_t sub_id = key.sub;
      sub.relocation_timer = sim_.schedule_after(
          config_.relocation_timeout,
          [this, client, sub_id, timeout_epoch] {
            flush_relocation_timeout(client, sub_id, timeout_epoch);
          });
      return;
    }
    sub.next_seq = v.next_seq;
    for (const auto& sn : v.buffer) {
      if (sn.seq <= last_seq) continue;
      send(*session.link, net::DeliverMsg{key, sn});
      sub.history.push(sn);
    }
    // drop_virtual, not a bare erase: a TTL (or widen) timer left armed
    // here would fire against a LATER virtual with the same key — under
    // epoch-0 workloads (naive clients, plain re-subscribes) the epoch
    // guard cannot tell them apart and the stale timer drops the new
    // counterpart.
    drop_virtual(key);
    return;
  }

  if (!relocate || epoch == 0) {
    // Fresh subscription: plain propagation, no relocation machinery.
    sub.next_seq = last_seq + 1;
    refresh_all_links();
    return;
  }

  // Relocation: buffer live arrivals until the replay lands. Propagate
  // the subscription BEFORE the hunt (see file comment on FIFO order).
  sub.relocating = true;
  refresh_all_links();
  // The new border may itself lie on the old delivery path (the client
  // moved toward its producers): then IT is the junction and must fetch
  // directly — an advertisement-pruned hunt would never look toward the
  // old border. A covering-only match is not proof (it may point at an
  // unrelated subscriber), so the hunt still goes out in that case.
  if (dispatch_fetch(key, sub.concrete, epoch, last_seq, LinkId::invalid()) !=
      Junction::tagged) {
    for (net::Link* link : broker_links_) {
      if (!adv_allows(link->id(), sub.concrete)) continue;
      send(*link, net::RelocateSubMsg{key, sub.concrete, epoch, last_seq});
    }
  }
  const std::uint64_t timeout_epoch = sub.epoch;
  const ClientId client = session.client;
  const std::uint32_t sub_id = key.sub;
  sub.relocation_timer = sim_.schedule_after(
      config_.relocation_timeout, [this, client, sub_id, timeout_epoch] {
        flush_relocation_timeout(client, sub_id, timeout_epoch);
      });
}

void Broker::remove_local_sub(Session& session, std::uint32_t sub_id,
                              bool propagate) {
  auto it = session.subs.find(sub_id);
  if (it == session.subs.end()) return;
  LocalSub& sub = it->second;
  sub.relocation_timer.cancel();
  index_.remove_local(sub.key);
  cover_index_.remove_local(sub.key);
  invalidate_inputs();
  if (sub.is_ld()) {
    for (LinkId lid : sub.ld_forwarded) {
      auto lit = links_by_id_.find(lid);
      if (lit != links_by_id_.end()) {
        send(*lit->second, net::LdUnsubscribeMsg{sub.key});
      }
    }
    session.subs.erase(it);
    return;
  }
  session.subs.erase(it);
  if (propagate) refresh_all_links();
}

void Broker::handle_link_down(net::Link& link) {
  REBECA_LANE_ASSERT(lane_affinity_, "Broker", "handle_link_down");
  if (client_links_.count(link.id()) != 0) {
    Session* session = session_of_link(link.id());
    if (session != nullptr) {
      virtualize_session(*session);
      session_by_link_.erase(link.id());
      sessions_.erase(session->client);
      invalidate_inputs();
    }
    return;
  }
  // Broker-broker links are assumed stable (paper Sec. 2.1: the broker
  // graph is fixed); a partition would need repair machinery the paper
  // does not describe.
  REBECA_WARN("broker " << id_ << ": broker link " << link.id()
                        << " went down — partitions are unsupported");
}

void Broker::virtualize_session(Session& session) {
  for (auto& [sub_id, sub] : session.subs) {
    sub.relocation_timer.cancel();
    VirtualSub v;
    v.key = sub.key;
    v.f = sub.concrete;
    v.ld = sub.is_ld();
    v.epoch = sub.epoch;
    v.next_seq = sub.next_seq;
    v.buffer = util::RingBuffer<net::StampedNotification>(config_.virtual_capacity);
    // Seed with the delivery history: deliveries in flight at the cut
    // were lost, and the client will report the sequence number of the
    // last one it actually received.
    for (const auto& sn : sub.history) v.buffer.push(sn);
    if (sub.relocating) {
      v.awaiting_replay = true;
      v.reported_last_seq = sub.reported_last_seq;
      v.pre_replay = std::move(sub.pending_live);
      v.replay_seen = std::move(sub.replay_seen);
    }
    if (v.ld) {
      v.ld_spec = std::get<location::LdSpec>(sub.spec);
      v.ld_loc = sub.loc;
      v.ld_forwarded = sub.ld_forwarded;
      v.ld_move_seq = sub.move_seq;
    }
    auto [it, inserted] = virtuals_.insert_or_assign(sub.key, std::move(v));
    index_.remove_local(sub.key);
    index_.upsert_virtual(sub.key, it->second.f);
    cover_index_.remove_local(sub.key);
    cover_index_.upsert_virtual(sub.key, it->second.f, it->second.ld);
    invalidate_inputs();
    schedule_virtual_ttl(it->second);
    schedule_ld_widen(it->second);
  }
  // The virtuals replace the session subs as forwarding inputs.
  refresh_all_links();
}

void Broker::schedule_virtual_ttl(VirtualSub& v) {
  if (config_.virtual_ttl <= 0) return;
  const SubKey key = v.key;
  const std::uint64_t epoch = v.epoch;
  v.ttl_timer = sim_.schedule_after(config_.virtual_ttl, [this, key, epoch] {
    auto it = virtuals_.find(key);
    if (it == virtuals_.end() || it->second.epoch != epoch) return;
    REBECA_INFO("broker " << id_ << ": virtual counterpart " << key
                          << " expired unfetched");
    drop_virtual(key);
  });
}

void Broker::drop_virtual(const SubKey& key) {
  auto it = virtuals_.find(key);
  if (it == virtuals_.end()) return;
  VirtualSub& v = it->second;
  v.ttl_timer.cancel();
  v.widen_timer.cancel();
  if (v.ld) {
    for (LinkId lid : v.ld_forwarded) {
      auto lit = links_by_id_.find(lid);
      if (lit != links_by_id_.end()) {
        send(*lit->second, net::LdUnsubscribeMsg{key});
      }
    }
  }
  index_.remove_virtual(key);
  cover_index_.remove_virtual(key);
  invalidate_inputs();
  virtuals_.erase(it);
  refresh_all_links();
}

// ---------------------------------------------------------------------------
// Relocation protocol
// ---------------------------------------------------------------------------

void Broker::on_relocate_sub(net::Link& from, const net::RelocateSubMsg& m) {
  // Epoch-deduplicated breadcrumb for the eventual replay.
  auto cit = crumbs_.find(m.key);
  if (cit != crumbs_.end() && cit->second.epoch >= m.epoch) return;
  crumbs_[m.key] = Crumb{m.epoch, from.id()};

  // Old border broker reached directly (chain topologies, or the hunt
  // walked the whole old path).
  auto vit = virtuals_.find(m.key);
  if (vit != virtuals_.end()) {
    VirtualSub& v = vit->second;
    if (v.awaiting_replay) {
      v.fetch_pending = true;
      v.fetch_epoch = m.epoch;
      v.fetch_last_seq = m.last_seq;
      v.fetch_reply = from.id();
      return;
    }
    emit_replay(v, from, m.epoch, m.last_seq);
    drop_virtual(m.key);
    return;
  }

  if (LocalSub* local = find_local_sub(m.key); local != nullptr) {
    // The client is attached here and the hunt is older than its state.
    if (m.epoch <= local->epoch) return;
    REBECA_WARN("broker " << id_ << ": relocate " << m.key
                          << " with newer epoch than live session — dropped");
    return;
  }

  // Junction detection (paper Sec. 4.2: the fetch is "directed towards
  // both matching advertisements and covering filters"). Per-key tags
  // identify the junction exactly and stop the hunt; a mere covering
  // match dispatches fetches too, but lets the hunt continue — under
  // aggregation the coverage may point at an unrelated subscriber, and
  // only the covering invariant along the producers' paths guarantees
  // one fetch branch reaches the old border. Fetches are deduplicated
  // per epoch, so the extra branches die out benignly.
  if (dispatch_fetch(m.key, m.f, m.epoch, m.last_seq, from.id()) ==
      Junction::tagged) {
    return;  // exact junction; the hunt stops
  }

  // Keep hunting toward the producers.
  for (net::Link* link : broker_links_) {
    if (link->id() == from.id()) continue;
    if (!adv_allows(link->id(), m.f)) continue;
    send(*link, net::RelocateSubMsg{m});
  }
}

Broker::Junction Broker::dispatch_fetch(const SubKey& key,
                                        const filter::Filter& f,
                                        std::uint64_t epoch,
                                        std::uint64_t last_seq, LinkId exclude) {
  // State serving the key — or covering its filter — in a direction
  // other than `exclude`.
  Junction kind = Junction::tagged;
  std::vector<net::Link*> old_dirs;
  if (config_.admin_index == routing::AdminIndex::index) {
    // Inverted tag index: key → serving links, no table walk.
    cover_index_.links_serving(key, exclude, cover_links_);
    for (LinkId lid : cover_links_) old_dirs.push_back(links_by_id_.at(lid));
  } else {
    for (auto& [lid, fs] : remote_) {
      if (lid == exclude) continue;
      bool serves = false;
      for (const auto& [entry_f, tags] : fs) {
        if (tags.count(key) != 0) {
          serves = true;
          break;
        }
      }
      if (serves) old_dirs.push_back(links_by_id_.at(lid));
    }
  }
  // LD transit state is keyed exactly: its consumer direction points at
  // the subscription's previous anchor.
  if (old_dirs.empty()) {
    auto lit = ld_.find(key);
    if (lit != ld_.end() && lit->second.toward != exclude) {
      auto link_it = links_by_id_.find(lit->second.toward);
      if (link_it != links_by_id_.end()) old_dirs.push_back(link_it->second);
    }
  }
  if (old_dirs.empty()) {
    kind = Junction::covering;
    if (config_.admin_index == routing::AdminIndex::index) {
      cover_index_.covering_links(f, exclude, cover_links_);
      for (LinkId lid : cover_links_) old_dirs.push_back(links_by_id_.at(lid));
    } else {
      for (auto& [lid, fs] : remote_) {
        if (lid == exclude) continue;
        for (const auto& [entry_f, tags] : fs) {
          if (entry_f.covers(f)) {
            old_dirs.push_back(links_by_id_.at(lid));
            break;
          }
        }
      }
    }
  }
  if (old_dirs.empty()) return Junction::none;

  // This broker is (a candidate) junction: fetch first (relocation
  // latency is unaffected by the uncover handshake, which runs
  // concurrently), then start the moveout of the key from each old
  // direction. Entries whose covered downstream filters must be
  // re-exposed stay routable until the ack barrier passes.
  for (net::Link* link : old_dirs) {
    send(*link, net::FetchMsg{key, f, epoch, last_seq});
    begin_moveout(*link, key, epoch);
  }
  refresh_all_links();
  return kind;
}

// ---------------------------------------------------------------------------
// Uncover-before-prune moveouts (the two-phase protocol)
// ---------------------------------------------------------------------------

void Broker::begin_moveout(net::Link& link, const SubKey& key,
                           std::uint64_t epoch) {
  const LinkId lid = link.id();
  auto& fs = remote_[lid];
  // Both plans see the same (filter → tag count) list in Filter order;
  // the indexed one reads it off the cover index's per-link table
  // instead of re-walking every entry's tag set.
  auto program =
      config_.admin_index == routing::AdminIndex::index
          ? routing::plan_moveout(config_.strategy,
                                  cover_index_.tagged_filters(lid, key))
          : routing::plan_moveout(config_.strategy, key, fs);
  if (program.empty()) return;
  const bool two_phase =
      config_.uncover_before_prune && program.ack_barriers > 0;
  PendingMoveout pending;
  pending.epoch = epoch;
  for (auto& step : program.steps) {
    switch (step.kind) {
      case routing::MoveoutStep::Kind::untag: {
        // Other subscriptions keep the entry alive; routing unchanged.
        auto it = fs.find(step.f);
        if (it != fs.end()) {
          it->second.erase(key);
          cover_index_.untag_remote(lid, step.f, key);
          invalidate_inputs();
        }
        break;
      }
      case routing::MoveoutStep::Kind::reexpose:
        if (two_phase) {
          send(link, net::ReExposeMsg{key, step.f, epoch});
          ++pending.acks_outstanding;
        }
        break;
      case routing::MoveoutStep::Kind::prune:
        if (two_phase) {
          // Ack barrier: the entry stays tagged and routable until the
          // downstream re-exposures are confirmed installed.
          pending.prune.push_back(step.f);
        } else {
          auto it = fs.find(step.f);
          if (it != fs.end()) {
            it->second.erase(key);
            cover_index_.untag_remote(lid, step.f, key);
            invalidate_inputs();
            // Entries serving nobody anymore must go, or they would
            // keep routing traffic down the abandoned path.
            if (it->second.empty()) {
              fs.erase(it);
              index_.remove_remote(lid, step.f);
              cover_index_.remove_remote(lid, step.f);
            }
          }
        }
        break;
    }
  }
  // A later epoch (the client moved again before the ack) replaces the
  // pending record; stale acks are epoch-filtered.
  if (two_phase) moveouts_[lid][key] = std::move(pending);
}

void Broker::finish_moveout(net::Link& link, const SubKey& key) {
  auto lit = moveouts_.find(link.id());
  if (lit == moveouts_.end()) return;
  auto pit = lit->second.find(key);
  if (pit == lit->second.end()) return;
  PendingMoveout pending = std::move(pit->second);
  lit->second.erase(pit);
  if (lit->second.empty()) moveouts_.erase(lit);

  auto& fs = remote_[link.id()];
  for (const auto& f : pending.prune) {
    auto it = fs.find(f);
    if (it == fs.end()) continue;
    it->second.erase(key);
    cover_index_.untag_remote(link.id(), f, key);
    invalidate_inputs();
    if (it->second.empty()) {
      fs.erase(it);
      index_.remove_remote(link.id(), f);
      cover_index_.remove_remote(link.id(), f);
    }
  }
  refresh_all_links();

  // Serve re-expose requests that waited on this barrier — unless the
  // key is still mid-moveout on yet another link.
  auto dit = deferred_reexpose_.find(key);
  if (dit == deferred_reexpose_.end()) return;
  for (const auto& [lid, pend] : moveouts_) {
    if (pend.count(key) != 0) return;
  }
  auto deferred = std::move(dit->second);
  deferred_reexpose_.erase(dit);
  for (const auto& d : deferred) {
    auto l = links_by_id_.find(d.reply);
    if (l != links_by_id_.end()) answer_reexpose(*l->second, key, d.f, d.epoch);
  }
}

void Broker::on_reexpose(net::Link& from, const net::ReExposeMsg& m) {
  // Transitive ack barrier: while this broker's own downstream moveout
  // for the key is pending, the covered filters that will surface from
  // below are not in the tables yet — defer the answer until the last
  // downstream ack lands (finish_moveout).
  for (const auto& [lid, pend] : moveouts_) {
    if (lid != from.id() && pend.count(m.key) != 0) {
      deferred_reexpose_[m.key].push_back({from.id(), m.f, m.epoch});
      return;
    }
  }
  answer_reexpose(from, m.key, m.f, m.epoch);
}

void Broker::answer_reexpose(net::Link& to, const SubKey& key,
                             const filter::Filter& f, std::uint64_t epoch) {
  const LinkId lid = to.id();
  // The re-expose set: every forwarding input toward `to` that f covers
  // (the covered_by query over this broker's tables — remote hops, local
  // sessions, virtual counterparts, via the same collect_inputs_excluding
  // the forward-set computation uses, so the two can never drift) minus
  // the mover's own tag and whatever is already on the wire.
  routing::ForwardSet expose;
  if (config_.admin_index == routing::AdminIndex::index) {
    expose = cover_index_.covered_inputs(f, lid);
  } else {
    routing::ForwardSet inputs;
    for (const auto& in : collect_inputs_excluding(lid)) {
      auto& slot = inputs[in.f];
      slot.insert(in.tags.begin(), in.tags.end());
    }
    expose = routing::covered_by(f, inputs);
  }

  auto& sentfs = sent_[lid];
  for (auto& [g, tags] : expose) {
    tags.erase(key);
    if (tags.empty()) continue;
    if (config_.use_advertisements && !adv_allows(lid, g)) continue;
    // Pin the filter into this link's target set: without the pin the
    // next refresh would re-aggregate it away while the mover's covering
    // input is still alive, reopening the hazard. The mover key rides
    // along so pin decay can tell the mover's covering entry apart from
    // a later independent subscriber's.
    reexpose_pins_[lid][g].insert(key);
    auto sit = sentfs.find(g);
    if (sit != sentfs.end() && sit->second == tags) continue;
    sentfs[g] = tags;
    ++reexposed_filters_;
    send(to, net::SubscribeMsg{g, std::move(tags)});
  }
  // FIFO puts the re-exposures ahead of the ack: when the requester
  // prunes, every covered filter is already installed on its side.
  send(to, net::ReExposeAckMsg{key, epoch});
  // Immediately re-evaluate the pins on this link: a pin whose covering
  // conflict is already over (the mover's input died before we answered,
  // or another subscriber's covering entry represents it) decays now
  // instead of riding the wire until some unrelated admin event happens
  // to refresh this link. The eviction's prune trails the subscriptions
  // and the ack on the FIFO link, so the requester always installs the
  // re-exposed filters (and their covering representative) first.
  refresh_link(to);
}

void Broker::on_reexpose_ack(net::Link& from, const net::ReExposeAckMsg& m) {
  auto lit = moveouts_.find(from.id());
  if (lit == moveouts_.end()) return;
  auto pit = lit->second.find(m.key);
  if (pit == lit->second.end() || pit->second.epoch != m.epoch) return;
  if (--pit->second.acks_outstanding > 0) return;
  finish_moveout(from, m.key);
}

void Broker::on_fetch(net::Link& from, const net::FetchMsg& m) {
  auto vit = virtuals_.find(m.key);
  if (vit != virtuals_.end()) {
    VirtualSub& v = vit->second;
    if (v.awaiting_replay) {
      v.fetch_pending = true;
      v.fetch_epoch = m.epoch;
      v.fetch_last_seq = m.last_seq;
      v.fetch_reply = from.id();
      return;
    }
    emit_replay(v, from, m.epoch, m.last_seq);
    drop_virtual(m.key);
    return;
  }

  auto cit = crumbs_.find(m.key);
  if (cit != crumbs_.end() && cit->second.epoch >= m.epoch) return;
  crumbs_[m.key] = Crumb{m.epoch, from.id()};

  // The entry flip of Fig. 5 step 5 ("pointing into the direction of
  // B4") happens implicitly: the new border's SubscribeMsg precedes the
  // hunt and the fetch on every FIFO link, so wherever the new path is
  // needed it is already installed; here we only move the key out of the
  // old direction and remember the reverse path for the replay.

  // Continue along the old path: tagged directions first, then LD
  // transit state (keyed exactly; the re-anchor flood trailing the fetch
  // re-points it, so nothing to erase here), covering fallback last.
  std::vector<net::Link*> old_dirs;
  if (config_.admin_index == routing::AdminIndex::index) {
    cover_index_.links_serving(m.key, from.id(), cover_links_);
    for (LinkId lid : cover_links_) old_dirs.push_back(links_by_id_.at(lid));
  } else {
    for (auto& [lid, fs] : remote_) {
      if (lid == from.id()) continue;
      for (const auto& [entry_f, tags] : fs) {
        if (tags.count(m.key) != 0) {
          old_dirs.push_back(links_by_id_.at(lid));
          break;
        }
      }
    }
  }
  if (old_dirs.empty()) {
    auto lit = ld_.find(m.key);
    if (lit != ld_.end() && lit->second.toward != from.id()) {
      auto link_it = links_by_id_.find(lit->second.toward);
      if (link_it != links_by_id_.end()) old_dirs.push_back(link_it->second);
    }
  }
  if (old_dirs.empty()) {
    if (config_.admin_index == routing::AdminIndex::index) {
      cover_index_.covering_links(m.f, from.id(), cover_links_);
      for (LinkId lid : cover_links_) old_dirs.push_back(links_by_id_.at(lid));
    } else {
      for (auto& [lid, fs] : remote_) {
        if (lid == from.id()) continue;
        for (const auto& [f, tags] : fs) {
          if (f.covers(m.f)) {
            old_dirs.push_back(links_by_id_.at(lid));
            break;
          }
        }
      }
    }
  }
  // No dedup pass needed: the three blocks above are mutually exclusive
  // and each pushes at most once per link while walking a LinkId-keyed
  // map, so old_dirs is already unique and in LinkId order. (An address
  // sort here would let allocator layout pick the FetchMsg emission
  // order — rebeca-lint PTR-ORDER.)
  for (net::Link* link : old_dirs) {
    send(*link, net::FetchMsg{m});
    begin_moveout(*link, m.key, m.epoch);
  }
  refresh_all_links();
}

void Broker::emit_replay(VirtualSub& v, net::Link& to, std::uint64_t epoch,
                         std::uint64_t last_seq) {
  net::ReplayMsg reply;
  reply.key = v.key;
  reply.epoch = epoch;
  reply.next_seq = v.next_seq;
  for (const auto& sn : v.buffer) {
    if (sn.seq <= last_seq) continue;
    reply.batch.push_back(sn);
  }
  // Truncation accounting: the buffer's retained window is contiguous and
  // ends at next_seq - 1, so the oldest sequence number still available
  // is next_seq - size(). Everything between the client's last received
  // number and that point is gone for good — evicted by RingBuffer
  // overflow (dropped() > 0) or never retained because the session
  // history was bounded at virtualization time. Deriving the floor from
  // the retained window rather than the filtered batch keeps the report
  // honest when the batch comes out empty even though notifications the
  // client never saw were evicted.
  const std::uint64_t oldest_available = v.next_seq - v.buffer.size();
  if (oldest_available > last_seq + 1) {
    reply.truncated = oldest_available - (last_seq + 1);
  }
  replayed_notifications_ += reply.batch.size();
  replay_truncated_ += reply.truncated;
  send(to, std::move(reply));
}

void Broker::on_replay(net::Link& from, const net::ReplayMsg& m) {
  (void)from;  // replay routing follows breadcrumbs, not the arrival link
  // Case 1: the relocating session lives here — complete it.
  if (LocalSub* sub = find_local_sub(m.key); sub != nullptr && sub->relocating &&
                                             sub->epoch == m.epoch) {
    Session* session = find_session(m.key.client);
    REBECA_ASSERT(session != nullptr, "sub without session");
    finish_relocation(*session, *sub, m);
    return;
  }

  // Case 2: a virtual counterpart here is waiting for this replay (the
  // client moved on before it arrived): merge, then serve a pending
  // fetch if one is queued.
  auto vit = virtuals_.find(m.key);
  if (vit != virtuals_.end() && vit->second.awaiting_replay &&
      vit->second.epoch == m.epoch) {
    VirtualSub& v = vit->second;
    v.awaiting_replay = false;
    util::RingBuffer<net::StampedNotification> merged(config_.virtual_capacity);
    std::set<NotificationId> seen;
    for (const auto& sn : m.batch) {
      merged.push(sn);
      seen.insert(sn.notification.id());
    }
    std::uint64_t next_seq = m.next_seq;
    for (const auto& n : v.pre_replay) {
      if (seen.count(n.id()) != 0) continue;
      merged.push(net::StampedNotification{n, next_seq++});
    }
    v.buffer = std::move(merged);
    v.next_seq = next_seq;
    v.pre_replay.clear();
    if (v.fetch_pending) {
      auto lit = links_by_id_.find(v.fetch_reply);
      if (lit != links_by_id_.end()) {
        emit_replay(v, *lit->second, v.fetch_epoch, v.fetch_last_seq);
        drop_virtual(m.key);
      }
    }
    return;
  }

  // Case 3: in transit — follow the breadcrumb laid by the hunt/fetch.
  auto cit = crumbs_.find(m.key);
  if (cit != crumbs_.end() && cit->second.epoch == m.epoch) {
    const LinkId toward = cit->second.toward_new;
    crumbs_.erase(cit);
    if (auto lit = links_by_id_.find(toward); lit != links_by_id_.end()) {
      send(*lit->second, net::ReplayMsg{m});
      return;
    }
  }
  REBECA_WARN("broker " << id_ << ": unroutable replay for " << m.key
                        << " epoch " << m.epoch);
}

void Broker::finish_relocation(Session& session, LocalSub& sub,
                               const net::ReplayMsg& m) {
  sub.relocation_timer.cancel();
  REBECA_ASSERT(session.link != nullptr, "relocating session without link");

  // Replayed (old-location) notifications first — paper Sec. 4.1:
  // "delivers the old messages from B6 first before delivering the 'new'
  // messages from its own buffer to guarantee the correct delivery
  // order".
  for (const auto& sn : m.batch) {
    sub.replay_seen.insert(sn.notification.id());
    sub.history.push(sn);
    send(*session.link, net::DeliverMsg{sub.key, sn});
  }
  std::uint64_t next_seq = m.next_seq;
  for (const auto& n : sub.pending_live) {
    if (sub.replay_seen.count(n.id()) != 0) continue;  // duplicate path
    net::StampedNotification sn{n, next_seq++};
    sub.history.push(sn);
    send(*session.link, net::DeliverMsg{sub.key, sn});
  }
  sub.pending_live.clear();
  sub.next_seq = next_seq;
  sub.relocating = false;
}

void Broker::flush_relocation_timeout(ClientId client, std::uint32_t sub_id,
                                      std::uint64_t epoch) {
  Session* session = find_session(client);
  if (session == nullptr) return;
  auto it = session->subs.find(sub_id);
  if (it == session->subs.end()) return;
  LocalSub& sub = it->second;
  if (!sub.relocating || sub.epoch != epoch) return;
  REBECA_WARN("broker " << id_ << ": relocation of " << sub.key
                        << " timed out — flushing live buffer");
  sub.relocating = false;
  // Continue from whichever is further along: the client's reported
  // sequence number or the stamping position this session already
  // reached. Resetting to reported+1 alone reuses numbers the client saw
  // from in-flight pre-cut deliveries, and a later replay would skip the
  // reused range as "already delivered" — silently losing notifications.
  sub.next_seq = std::max(sub.next_seq, sub.reported_last_seq + 1);
  for (const auto& n : sub.pending_live) {
    net::StampedNotification sn{n, sub.next_seq++};
    sub.history.push(sn);
    send(*session->link, net::DeliverMsg{sub.key, sn});
  }
  sub.pending_live.clear();
}

}  // namespace rebeca::broker
