// Overlay: instantiates a Topology as live brokers and links, and
// manages the dynamic client links that roaming creates and cuts.
#ifndef REBECA_BROKER_OVERLAY_HPP
#define REBECA_BROKER_OVERLAY_HPP

#include <memory>
#include <vector>

#include "src/broker/broker.hpp"
#include "src/client/client.hpp"
#include "src/metrics/counters.hpp"
#include "src/net/topology.hpp"

namespace rebeca::broker {

struct OverlayConfig {
  BrokerConfig broker;
  sim::DelayModel broker_link_delay = sim::DelayModel::fixed(sim::millis(5));
  sim::DelayModel client_link_delay = sim::DelayModel::fixed(sim::millis(1));
};

class Overlay {
 public:
  Overlay(sim::Simulation& sim, const net::Topology& topology,
          OverlayConfig config);

  [[nodiscard]] sim::Simulation& sim() { return sim_; }
  [[nodiscard]] std::size_t broker_count() const { return brokers_.size(); }
  [[nodiscard]] Broker& broker(std::size_t i) { return *brokers_.at(i); }
  [[nodiscard]] metrics::MessageCounters& counters() { return counters_; }
  [[nodiscard]] const net::Topology& topology() const { return topology_; }

  /// Connects a client to a border broker: creates the client link and
  /// triggers the client's hello (which re-issues subscriptions when the
  /// client was connected before).
  net::Link& connect_client(client::Client& client, std::size_t broker_index);

 private:
  sim::Simulation& sim_;
  net::Topology topology_;
  OverlayConfig config_;
  metrics::MessageCounters counters_;
  std::vector<std::unique_ptr<Broker>> brokers_;
  // Links are kept alive for the whole run: in-flight lambdas reference
  // them, and dead client links stay down harmlessly.
  std::vector<std::unique_ptr<net::Link>> links_;
  std::uint32_t next_link_id_ = 0;
};

}  // namespace rebeca::broker

#endif  // REBECA_BROKER_OVERLAY_HPP
