// Overlay: instantiates a Topology as live brokers and links, and
// manages the dynamic client links that roaming creates and cuts.
//
// Two execution modes share one class:
//
//   classic  — every broker runs on the single Simulation passed in;
//              links are synchronous-cut, one shared counter set.
//   sharded  — brokers are partitioned across the shards of a
//              ShardedSimulation (one lane per broker); the whole client
//              plane lives on the engine's control lane. Links carry
//              per-side executors and account to per-shard counter sets
//              (merged by total_counters()), and a client link's
//              broker-side registration is deferred by the link's
//              minimum delay so it happens on the broker's own lane —
//              just ahead of the client's hello on the same lane.
#ifndef REBECA_BROKER_OVERLAY_HPP
#define REBECA_BROKER_OVERLAY_HPP

#include <memory>
#include <vector>

#include "src/broker/broker.hpp"
#include "src/client/client.hpp"
#include "src/metrics/counters.hpp"
#include "src/net/topology.hpp"
#include "src/sim/sharded.hpp"

namespace rebeca::broker {

struct OverlayConfig {
  BrokerConfig broker;
  sim::DelayModel broker_link_delay = sim::DelayModel::fixed(sim::millis(5));
  sim::DelayModel client_link_delay = sim::DelayModel::fixed(sim::millis(1));
};

class Overlay {
 public:
  /// Classic single-threaded construction.
  Overlay(sim::Executor& sim, const net::Topology& topology,
          OverlayConfig config);

  /// Sharded construction: broker i runs on shard broker_shards[i].
  Overlay(sim::ShardedSimulation& engine, const net::Topology& topology,
          OverlayConfig config, std::vector<std::size_t> broker_shards);

  /// The executor of the client plane: the classic Simulation, or the
  /// sharded engine's control lane.
  [[nodiscard]] sim::Executor& sim() { return *control_exec_; }
  [[nodiscard]] std::size_t broker_count() const { return brokers_.size(); }
  [[nodiscard]] Broker& broker(std::size_t i) { return *brokers_.at(i); }
  [[nodiscard]] const net::Topology& topology() const { return topology_; }
  [[nodiscard]] bool sharded() const { return engine_ != nullptr; }
  [[nodiscard]] const std::vector<std::size_t>& broker_shards() const {
    return broker_shards_;
  }

  /// The classic mode's shared counter set (live; benches reset it).
  [[nodiscard]] metrics::MessageCounters& counters() { return counters_; }
  /// All message accounting, both modes: the shared set plus every
  /// shard's set, merged. Quiescent use only in sharded mode.
  [[nodiscard]] metrics::MessageCounters total_counters() const;

  /// Connects a client to a border broker: creates the client link and
  /// triggers the client's hello (which re-issues subscriptions when the
  /// client was connected before).
  net::Link& connect_client(client::Client& client, std::size_t broker_index);

 private:
  sim::Executor* control_exec_;
  sim::ShardedSimulation* engine_ = nullptr;
  net::Topology topology_;
  OverlayConfig config_;
  metrics::MessageCounters counters_;
  /// Sharded mode: one counter set per shard, cache-line separated so
  /// concurrent shards never write the same line.
  struct ShardCounters {
    alignas(64) metrics::MessageCounters c;
  };
  std::vector<ShardCounters> shard_counters_;
  std::vector<std::size_t> broker_shards_;
  std::vector<sim::LaneExecutor*> broker_exec_;  // sharded mode only
  std::vector<std::unique_ptr<Broker>> brokers_;
  // Links are kept alive for the whole run: in-flight lambdas reference
  // them, and dead client links stay down harmlessly.
  std::vector<std::unique_ptr<net::Link>> links_;
  std::uint32_t next_link_id_ = 0;
};

}  // namespace rebeca::broker

#endif  // REBECA_BROKER_OVERLAY_HPP
