#include "src/filter/value.hpp"

#include <sstream>

namespace rebeca::filter {

std::optional<int> Value::compare(const Value& other) const {
  if (is_numeric() && other.is_numeric()) {
    // Compare int/int exactly; mixed pairs via double (the magnitudes in
    // this domain — prices, coordinates, sequence numbers — are far below
    // 2^53, so the promotion is lossless in practice).
    if (is_int() && other.is_int()) {
      const auto a = as_int();
      const auto b = other.as_int();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    const double a = *numeric();
    const double b = *other.numeric();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (is_string() && other.is_string()) {
    const int c = as_string().compare(other.as_string());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  if (is_bool() && other.is_bool()) {
    const int a = as_bool() ? 1 : 0;
    const int b = other.as_bool() ? 1 : 0;
    return a - b;
  }
  return std::nullopt;
}

std::string Value::to_string() const {
  std::ostringstream os;
  if (is_int()) {
    os << as_int();
  } else if (is_double()) {
    os << as_double();
  } else if (is_bool()) {
    os << (as_bool() ? "true" : "false");
  } else {
    os << '"' << as_string() << '"';
  }
  return os.str();
}

}  // namespace rebeca::filter
