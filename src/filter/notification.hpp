// Event notifications: name/value-pair messages that reify occurred
// events (paper Sec. 2.1).
//
// Attributes are stored as a flat vector sorted by interned AttrId, so
// the matching hot path (Filter::matches, MatchIndex::collect) walks
// both sides with integer key comparisons — no string-map lookups per
// probe. The fluent set() builder keeps its shape and interns on entry.
//
// Besides its attributes, a notification carries identity metadata the
// mobility machinery depends on: a globally unique id (duplicate
// suppression during relocation), its producer and producer-local
// sequence number (the sender-FIFO checker), and its publish time (the
// blackout/epoch analyses).
#ifndef REBECA_FILTER_NOTIFICATION_HPP
#define REBECA_FILTER_NOTIFICATION_HPP

#include <algorithm>
#include <string>
#include <string_view>
#include <vector>

#include "src/filter/attr.hpp"
#include "src/filter/value.hpp"
#include "src/sim/time.hpp"
#include "src/util/domain_ids.hpp"

namespace rebeca::filter {

class Notification {
 public:
  struct Attr {
    AttrId id;
    Value value;

    friend bool operator==(const Attr&, const Attr&) = default;
  };

  Notification() = default;

  /// Fluent attribute setter: Notification().set("service", "parking").
  Notification& set(std::string_view name, Value value) {
    return set(AttrTable::global().intern(name), std::move(value));
  }

  Notification& set(AttrId id, Value value) {
    auto it = lower_bound(id);
    if (it != attrs_.end() && it->id == id) {
      it->value = std::move(value);
    } else {
      attrs_.insert(it, Attr{id, std::move(value)});
    }
    return *this;
  }

  [[nodiscard]] bool has(std::string_view name) const {
    return get(name) != nullptr;
  }
  [[nodiscard]] bool has(AttrId id) const { return get(id) != nullptr; }

  /// Attribute value, or nullptr when absent — a borrowed pointer into
  /// this notification, valid until the next mutation. (Returning the
  /// Value by value copied the string payload on every hot-path probe.)
  [[nodiscard]] const Value* get(std::string_view name) const {
    return get(AttrTable::global().find(name));
  }

  [[nodiscard]] const Value* get(AttrId id) const {
    if (!id.valid()) return nullptr;
    auto it = lower_bound(id);
    return it != attrs_.end() && it->id == id ? &it->value : nullptr;
  }

  /// Attributes in ascending AttrId order.
  [[nodiscard]] const std::vector<Attr>& attrs() const { return attrs_; }
  [[nodiscard]] std::size_t size() const { return attrs_.size(); }
  [[nodiscard]] bool empty() const { return attrs_.empty(); }

  // --- identity metadata (stamped by the client library on publish) ---

  [[nodiscard]] NotificationId id() const { return id_; }
  [[nodiscard]] ClientId producer() const { return producer_; }
  [[nodiscard]] std::uint64_t producer_seq() const { return producer_seq_; }
  [[nodiscard]] sim::TimePoint publish_time() const { return publish_time_; }

  void stamp(NotificationId id, ClientId producer, std::uint64_t producer_seq,
             sim::TimePoint publish_time) {
    id_ = id;
    producer_ = producer;
    producer_seq_ = producer_seq;
    publish_time_ = publish_time;
  }

  [[nodiscard]] std::string to_string() const;

 private:
  [[nodiscard]] std::vector<Attr>::const_iterator lower_bound(AttrId id) const {
    return std::lower_bound(
        attrs_.begin(), attrs_.end(), id,
        [](const Attr& a, AttrId key) { return a.id < key; });
  }
  [[nodiscard]] std::vector<Attr>::iterator lower_bound(AttrId id) {
    return std::lower_bound(
        attrs_.begin(), attrs_.end(), id,
        [](const Attr& a, AttrId key) { return a.id < key; });
  }

  std::vector<Attr> attrs_;  // sorted by AttrId
  NotificationId id_;
  ClientId producer_;
  std::uint64_t producer_seq_ = 0;
  sim::TimePoint publish_time_ = 0;
};

}  // namespace rebeca::filter

#endif  // REBECA_FILTER_NOTIFICATION_HPP
