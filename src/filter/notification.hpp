// Event notifications: name/value-pair messages that reify occurred
// events (paper Sec. 2.1).
//
// Besides its attributes, a notification carries identity metadata the
// mobility machinery depends on: a globally unique id (duplicate
// suppression during relocation), its producer and producer-local
// sequence number (the sender-FIFO checker), and its publish time (the
// blackout/epoch analyses).
#ifndef REBECA_FILTER_NOTIFICATION_HPP
#define REBECA_FILTER_NOTIFICATION_HPP

#include <map>
#include <optional>
#include <string>

#include "src/filter/value.hpp"
#include "src/sim/time.hpp"
#include "src/util/domain_ids.hpp"

namespace rebeca::filter {

class Notification {
 public:
  Notification() = default;

  /// Fluent attribute setter: Notification().set("service", "parking").
  Notification& set(std::string name, Value value) {
    attrs_.insert_or_assign(std::move(name), std::move(value));
    return *this;
  }

  [[nodiscard]] bool has(const std::string& name) const {
    return attrs_.count(name) != 0;
  }

  [[nodiscard]] std::optional<Value> get(const std::string& name) const {
    auto it = attrs_.find(name);
    if (it == attrs_.end()) return std::nullopt;
    return it->second;
  }

  [[nodiscard]] const std::map<std::string, Value>& attrs() const { return attrs_; }

  // --- identity metadata (stamped by the client library on publish) ---

  [[nodiscard]] NotificationId id() const { return id_; }
  [[nodiscard]] ClientId producer() const { return producer_; }
  [[nodiscard]] std::uint64_t producer_seq() const { return producer_seq_; }
  [[nodiscard]] sim::TimePoint publish_time() const { return publish_time_; }

  void stamp(NotificationId id, ClientId producer, std::uint64_t producer_seq,
             sim::TimePoint publish_time) {
    id_ = id;
    producer_ = producer;
    producer_seq_ = producer_seq;
    publish_time_ = publish_time;
  }

  [[nodiscard]] std::string to_string() const;

 private:
  std::map<std::string, Value> attrs_;
  NotificationId id_;
  ClientId producer_;
  std::uint64_t producer_seq_ = 0;
  sim::TimePoint publish_time_ = 0;
};

}  // namespace rebeca::filter

#endif  // REBECA_FILTER_NOTIFICATION_HPP
