#include "src/filter/filter.hpp"

#include <sstream>

namespace rebeca::filter {

bool Filter::matches(const Notification& n) const {
  for (const auto& [attr, c] : constraints_) {
    auto v = n.get(attr);
    if (!v.has_value() || !c.matches(*v)) return false;
  }
  return true;
}

bool Filter::covers(const Filter& other) const {
  // Every constraint of the (broader) cover must be implied by a
  // constraint of `other` on the same attribute. An attribute this
  // filter constrains but `other` leaves free makes covering impossible:
  // `other` accepts notifications with arbitrary values there.
  for (const auto& [attr, c] : constraints_) {
    const Constraint* oc = other.find(attr);
    if (oc == nullptr || !c.covers(*oc)) return false;
  }
  return true;
}

bool Filter::overlaps(const Filter& other) const {
  for (const auto& [attr, c] : constraints_) {
    const Constraint* oc = other.find(attr);
    if (oc != nullptr && !c.overlaps(*oc)) return false;
  }
  return true;
}

std::optional<Filter> Filter::try_merge(const Filter& other) const {
  if (covers(other)) return *this;
  if (other.covers(*this)) return other;

  // Exact merging needs identical attribute sets differing in exactly
  // one constraint whose union is representable; anything else would
  // change the accepted set (conjunctions don't distribute over union).
  if (constraints_.size() != other.constraints_.size()) return std::nullopt;

  const std::string* diff_attr = nullptr;
  for (const auto& [attr, c] : constraints_) {
    const Constraint* oc = other.find(attr);
    if (oc == nullptr) return std::nullopt;
    if (c == *oc) continue;
    if (diff_attr != nullptr) return std::nullopt;  // more than one differs
    diff_attr = &attr;
  }
  if (diff_attr == nullptr) return *this;  // structurally identical

  const Constraint& a = constraints_.at(*diff_attr);
  const Constraint& b = *other.find(*diff_attr);
  auto merged_c = a.try_merge(b);
  if (!merged_c.has_value()) return std::nullopt;

  Filter merged = *this;
  merged.where(*diff_attr, std::move(*merged_c));
  return merged;
}

std::string Filter::to_string() const {
  if (constraints_.empty()) return "(true)";
  std::ostringstream os;
  bool first = true;
  for (const auto& [attr, c] : constraints_) {
    if (!first) os << " and ";
    os << "(" << attr << " " << c << ")";
    first = false;
  }
  return os.str();
}

std::string Notification::to_string() const {
  std::ostringstream os;
  os << "n" << id_ << "{";
  bool first = true;
  for (const auto& [attr, v] : attrs_) {
    if (!first) os << ", ";
    os << attr << "=" << v;
    first = false;
  }
  os << "}";
  return os.str();
}

}  // namespace rebeca::filter
