#include "src/filter/filter.hpp"

#include <algorithm>
#include <sstream>

#include "src/util/assert.hpp"

namespace rebeca::filter {

namespace {

/// Indices of `terms` reordered so attribute names ascend (cold paths:
/// printing).
void name_order(const std::vector<Filter::Term>& terms,
                std::vector<std::uint32_t>& idx) {
  idx.resize(terms.size());
  for (std::uint32_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::sort(idx.begin(), idx.end(), [&](std::uint32_t a, std::uint32_t b) {
    return *terms[a].name < *terms[b].name;
  });
}

/// Allocation-free variant for operator< — the comparator behind every
/// Filter-keyed map, so it must not heap-allocate per comparison.
/// Filters beyond kInlineTerms terms fall back to the heap.
constexpr std::size_t kInlineTerms = 16;

const std::uint32_t* name_order_buf(const std::vector<Filter::Term>& terms,
                                    std::uint32_t* inline_buf,
                                    std::vector<std::uint32_t>& fallback) {
  std::uint32_t* idx = inline_buf;
  if (terms.size() > kInlineTerms) {
    fallback.resize(terms.size());
    idx = fallback.data();
  }
  for (std::uint32_t i = 0; i < terms.size(); ++i) idx[i] = i;
  std::sort(idx, idx + terms.size(), [&](std::uint32_t a, std::uint32_t b) {
    return *terms[a].name < *terms[b].name;
  });
  return idx;
}

}  // namespace

Filter& Filter::where(std::string_view attr, Constraint c) {
  auto [id, name] = AttrTable::global().intern_ref(attr);
  auto it = std::lower_bound(
      terms_.begin(), terms_.end(), id,
      [](const Term& t, AttrId key) { return t.attr < key; });
  if (it != terms_.end() && it->attr == id) {
    it->c = std::move(c);
  } else {
    terms_.insert(it, Term{id, name, std::move(c)});
  }
  return *this;
}

Filter& Filter::where(AttrId attr, Constraint c) {
  const std::string* name = AttrTable::global().name_ptr(attr);
  REBECA_ASSERT(name != nullptr, "where() with unminted attr id");
  auto it = std::lower_bound(
      terms_.begin(), terms_.end(), attr,
      [](const Term& t, AttrId key) { return t.attr < key; });
  if (it != terms_.end() && it->attr == attr) {
    it->c = std::move(c);
  } else {
    terms_.insert(it, Term{attr, name, std::move(c)});
  }
  return *this;
}

const Constraint* Filter::find(std::string_view attr) const {
  return find(AttrTable::global().find(attr));
}

const Constraint* Filter::find(AttrId attr) const {
  if (!attr.valid()) return nullptr;
  auto it = std::lower_bound(
      terms_.begin(), terms_.end(), attr,
      [](const Term& t, AttrId key) { return t.attr < key; });
  return it != terms_.end() && it->attr == attr ? &it->c : nullptr;
}

void Filter::erase(std::string_view attr) {
  const AttrId id = AttrTable::global().find(attr);
  if (!id.valid()) return;
  auto it = std::lower_bound(
      terms_.begin(), terms_.end(), id,
      [](const Term& t, AttrId key) { return t.attr < key; });
  if (it != terms_.end() && it->attr == id) terms_.erase(it);
}

bool Filter::matches(const Notification& n) const {
  // Linear merge: both sides sorted by AttrId.
  auto ait = n.attrs().begin();
  const auto aend = n.attrs().end();
  for (const Term& t : terms_) {
    while (ait != aend && ait->id < t.attr) ++ait;
    if (ait == aend || ait->id != t.attr) return false;  // attr absent
    if (!t.c.matches(ait->value)) return false;
  }
  return true;
}

bool Filter::covers(const Filter& other) const {
  // Every constraint of the (broader) cover must be implied by a
  // constraint of `other` on the same attribute. An attribute this
  // filter constrains but `other` leaves free makes covering impossible:
  // `other` accepts notifications with arbitrary values there.
  auto oit = other.terms_.begin();
  const auto oend = other.terms_.end();
  for (const Term& t : terms_) {
    while (oit != oend && oit->attr < t.attr) ++oit;
    if (oit == oend || oit->attr != t.attr) return false;
    if (!t.c.covers(oit->c)) return false;
  }
  return true;
}

bool Filter::overlaps(const Filter& other) const {
  auto a = terms_.begin();
  auto b = other.terms_.begin();
  while (a != terms_.end() && b != other.terms_.end()) {
    if (a->attr < b->attr) {
      ++a;
    } else if (b->attr < a->attr) {
      ++b;
    } else {
      if (!a->c.overlaps(b->c)) return false;
      ++a;
      ++b;
    }
  }
  return true;
}

std::optional<Filter> Filter::try_merge(const Filter& other) const {
  if (covers(other)) return *this;
  if (other.covers(*this)) return other;

  // Exact merging needs identical attribute sets differing in exactly
  // one constraint whose union is representable; anything else would
  // change the accepted set (conjunctions don't distribute over union).
  if (terms_.size() != other.terms_.size()) return std::nullopt;

  std::size_t diff = terms_.size();  // sentinel: none
  for (std::size_t i = 0; i < terms_.size(); ++i) {
    if (terms_[i].attr != other.terms_[i].attr) return std::nullopt;
    if (terms_[i].c == other.terms_[i].c) continue;
    if (diff != terms_.size()) return std::nullopt;  // more than one differs
    diff = i;
  }
  if (diff == terms_.size()) return *this;  // structurally identical

  auto merged_c = terms_[diff].c.try_merge(other.terms_[diff].c);
  if (!merged_c.has_value()) return std::nullopt;

  Filter merged = *this;
  merged.terms_[diff].c = std::move(*merged_c);
  return merged;
}

bool operator<(const Filter& a, const Filter& b) {
  std::uint32_t abuf[kInlineTerms], bbuf[kInlineTerms];
  std::vector<std::uint32_t> aheap, bheap;
  const std::uint32_t* ai = name_order_buf(a.terms_, abuf, aheap);
  const std::uint32_t* bi = name_order_buf(b.terms_, bbuf, bheap);
  const std::size_t n = std::min(a.terms_.size(), b.terms_.size());
  for (std::size_t i = 0; i < n; ++i) {
    const Filter::Term& ta = a.terms_[ai[i]];
    const Filter::Term& tb = b.terms_[bi[i]];
    if (*ta.name != *tb.name) return *ta.name < *tb.name;
    if (!(ta.c == tb.c)) return ta.c < tb.c;
  }
  return a.terms_.size() < b.terms_.size();
}

std::string Filter::to_string() const {
  if (terms_.empty()) return "(true)";
  std::vector<std::uint32_t> idx;
  name_order(terms_, idx);
  std::ostringstream os;
  bool first = true;
  for (std::uint32_t i : idx) {
    if (!first) os << " and ";
    os << "(" << *terms_[i].name << " " << terms_[i].c << ")";
    first = false;
  }
  return os.str();
}

std::string Notification::to_string() const {
  std::ostringstream os;
  os << "n" << id_ << "{";
  // Name order, so logs are independent of attr-id mint order.
  std::vector<std::uint32_t> idx(attrs_.size());
  for (std::uint32_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::sort(idx.begin(), idx.end(), [&](std::uint32_t a, std::uint32_t b) {
    return attr_name(attrs_[a].id) < attr_name(attrs_[b].id);
  });
  bool first = true;
  for (std::uint32_t i : idx) {
    if (!first) os << ", ";
    os << attr_name(attrs_[i].id) << "=" << attrs_[i].value;
    first = false;
  }
  os << "}";
  return os.str();
}

}  // namespace rebeca::filter
